// Package thrifty is the public API of Thrifty, a reproduction of
// "Parallel Analytics as a Service" (SIGMOD 2013): massively parallel
// processing database-as-a-service (MPPDBaaS) with tenant consolidation.
//
// Thrifty consolidates thousands of MPPDB tenants onto a shared cluster
// while guaranteeing, for P% of time, that each tenant's queries run as fast
// as on its own dedicated machines. The pipeline is:
//
//  1. GenerateWorkload — build the §7.1 testbed: per-size-class session
//     logs and composed multi-day tenant activity logs;
//  2. PlanDeployment — run the Deployment Advisor: tenant grouping
//     (the LIVBPwFC optimization), cluster design, and tenant placement;
//  3. Deploy — execute the plan on a simulated cluster, producing live
//     MPPDB instances with per-group query routers and activity monitors;
//  4. Replay / Serve — drive the deployment with logged or interactive
//     queries, optionally with lightweight elastic scaling armed.
//
// Everything is deterministic from the seeds in the configs. The underlying
// packages (internal/...) expose the individual subsystems; this package
// wires the common paths.
package thrifty

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/admission"
	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/online"
	"repro/internal/queries"
	"repro/internal/recovery"
	"repro/internal/replay"
	"repro/internal/scaling"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// WorkloadConfig parameterizes testbed generation (§7.1).
type WorkloadConfig struct {
	// Tenants is the population size T (paper default: 5000).
	Tenants int
	// Theta is the Zipf skew of tenant sizes (default 0.8).
	Theta float64
	// Sizes are the requestable node counts (default 2/4/8/16/32).
	Sizes []int
	// Days is the log horizon (default 30).
	Days int
	// SessionsPerClass sizes the step-1 library (default 100).
	SessionsPerClass int
	// Variant selects the Fig 7.6 high-activity modifications.
	Variant workload.HighActivityVariant
	// Seed drives all randomness.
	Seed int64
}

// DefaultWorkloadConfig returns the paper's Table 7.1 defaults.
func DefaultWorkloadConfig(seed int64) WorkloadConfig {
	return WorkloadConfig{
		Tenants:          5000,
		Theta:            0.8,
		Sizes:            append([]int(nil), tenant.DefaultSizes...),
		Days:             30,
		SessionsPerClass: 100,
		Seed:             seed,
	}
}

// Workload is a generated multi-tenant testbed.
type Workload struct {
	Catalog *queries.Catalog
	Library *workload.Library
	Logs    []*workload.TenantLog
	Horizon sim.Time
}

// Tenants returns the tenant index of the workload.
func (w *Workload) Tenants() map[string]*tenant.Tenant {
	out := make(map[string]*tenant.Tenant, len(w.Logs))
	for _, tl := range w.Logs {
		out[tl.Tenant.ID] = tl.Tenant
	}
	return out
}

// GenerateWorkload runs both steps of the paper's log generation.
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) {
	if cfg.Tenants < 1 {
		return nil, fmt.Errorf("thrifty: %d tenants", cfg.Tenants)
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.8
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = append([]int(nil), tenant.DefaultSizes...)
	}
	if cfg.Days == 0 {
		cfg.Days = 30
	}
	if cfg.SessionsPerClass == 0 {
		cfg.SessionsPerClass = 100
	}
	cat := queries.Default()
	lib, err := workload.BuildLibrary(cat, cfg.Sizes, cfg.SessionsPerClass, cfg.Seed)
	if err != nil {
		return nil, err
	}
	logs, err := workload.ComposeVariant(lib, cat, cfg.Tenants, cfg.Theta, cfg.Sizes,
		cfg.Variant, cfg.Days, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Catalog: cat,
		Library: lib,
		Logs:    logs,
		Horizon: sim.Time(cfg.Days) * sim.Day,
	}, nil
}

// PlanConfig re-exports the Deployment Advisor configuration.
type PlanConfig = advisor.Config

// DefaultPlanConfig returns R=3, P=99.9%, E=10 s with the 2-step solver.
func DefaultPlanConfig() PlanConfig { return advisor.DefaultConfig() }

// Plan re-exports the deployment plan.
type Plan = advisor.Plan

// PlanDeployment computes cluster design and tenant placement for the
// workload.
func PlanDeployment(w *Workload, cfg PlanConfig) (*Plan, error) {
	adv, err := advisor.New(cfg)
	if err != nil {
		return nil, err
	}
	return adv.Plan(w.Logs, w.Horizon)
}

// ReconsolidationReport re-exports the advisor's cycle report.
type ReconsolidationReport = advisor.ReconsolidationReport

// Reconsolidate runs one (re)-consolidation cycle (§3c, §5.1): groups
// untouched by churn keep their placement; members of flagged groups,
// groups with departed tenants, and new tenants are re-grouped. The
// workload w carries the *current* population and fresh history.
func Reconsolidate(w *Workload, prev *Plan, cfg PlanConfig, flaggedGroups []string) (*Plan, *ReconsolidationReport, error) {
	adv, err := advisor.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	return adv.Reconsolidate(advisor.ReconsolidationInput{
		Previous:      prev,
		Logs:          w.Logs,
		FlaggedGroups: flaggedGroups,
	}, w.Horizon)
}

// System is a deployed MPPDBaaS: the engine, node pool, and live deployment.
type System struct {
	Engine     *sim.Engine
	Pool       *cluster.Pool
	Deployment *master.Deployment
	Plan       *Plan
	Workload   *Workload
	// Online is the continuous re-consolidation loop, nil until EnableOnline.
	Online *OnlineController
}

// DeployOptions controls plan execution.
type DeployOptions struct {
	// SpareNodes is how many nodes beyond the plan the pool holds (for
	// elastic scaling and node replacement).
	SpareNodes int
	// Immediate skips provisioning delays.
	Immediate bool
	// ParallelLoad enables the MPPDB parallel-loading option.
	ParallelLoad bool
	// MonitorWindow is the RT-TTP window (default 24 h).
	MonitorWindow time.Duration
	// Sharded gives each tenant-group a private engine and clock domain:
	// the service path handles submits to different groups fully in
	// parallel, and Replay drives groups concurrently. Leave false for
	// experiments — the shared domain keeps event interleaving globally
	// ordered, so same-seed runs are byte-identical.
	Sharded bool
	// Recovery arms an autonomous recovery controller per tenant-group
	// (§4.4): a heartbeat failure detector plus replacement acquisition,
	// Table 5.1 reload modeling, and repair. Nil leaves groups bare — the
	// service path typically sets it, replay arms controllers itself when
	// failures are injected.
	Recovery *RecoveryConfig
	// Admission arms an overload-protection controller per tenant-group:
	// per-tenant contract enforcement (token buckets derived from the
	// workload's per-tenant arrival model), a bounded admission queue with
	// deadline-aware shedding, and a brownout loop watching the group's
	// live RT-TTP and recovery state. When the config carries no explicit
	// Contracts, Deploy derives them from the workload's logs with the
	// config's Headroom. Nil leaves groups ungoverned (byte-identical
	// replay).
	Admission *AdmissionConfig
	// Gray arms a fail-slow (gray-failure) detector per tenant-group:
	// peer-relative completion-latency anomaly detection driving a hedge →
	// drain-and-replace response ladder. Setting it with a nil Recovery
	// auto-arms the default recovery controller — the drain rung replaces
	// the slow node through it. Nil disables detection (byte-identical
	// replay).
	Gray *GrayConfig
	// Domains splits the pool into that many failure domains (racks/zones
	// that fail together). Values ≤1 keep the classic single-domain pool —
	// the layout every byte-deterministic replay pins.
	Domains int
	// NoSpread keeps the pre-domain first-fit placement even on a
	// multi-domain pool (an instance may land entirely in one rack). Only
	// meaningful with Domains > 1; used for A/B-ing correlated-failure
	// exposure.
	NoSpread bool
	// Triage arms the cluster-wide scarcity triage allocator: when the pool
	// runs dry, exhausted recovery lifecycles queue a claim ranked by
	// SLA-at-risk (sliding RT-TTP deficit × tenant count) instead of
	// fighting with uncoordinated backoff. Requires Recovery (or Gray,
	// which auto-arms it). Nil keeps classic per-group retry cycles.
	Triage *TriageConfig
	// Sharing enables shared-work execution on every MPPDB instance:
	// concurrent same-class queries merge into one shared scan
	// (mppdb.SetSharing), and the admission controller reads effective,
	// batch-collapsed concurrency. Pair with PlanConfig.Sharing so the plan
	// packs for the capacity the executor actually delivers. Strictly
	// opt-in (byte-identical replay when off).
	Sharing bool
}

// Deploy brings the plan up on a fresh simulated cluster.
func Deploy(w *Workload, plan *Plan, opts DeployOptions) (*System, error) {
	if opts.MonitorWindow == 0 {
		opts.MonitorWindow = 24 * time.Hour
	}
	if opts.Admission != nil && opts.Admission.Contracts == nil {
		cfg := *opts.Admission
		cfg.Contracts = admission.ContractsFromLogs(w.Logs, cfg.Headroom)
		opts.Admission = &cfg
	}
	eng := sim.NewEngine()
	var pool *cluster.Pool
	if opts.Domains > 1 {
		pool = cluster.NewPoolDomains(plan.NodesUsed()+opts.SpareNodes, opts.Domains)
	} else {
		pool = cluster.NewPool(plan.NodesUsed() + opts.SpareNodes)
	}
	m := master.New(eng, pool, master.Options{
		Immediate:     opts.Immediate,
		ParallelLoad:  opts.ParallelLoad,
		MonitorWindow: opts.MonitorWindow,
		Sharded:       opts.Sharded,
		Recovery:      opts.Recovery,
		Admission:     opts.Admission,
		Gray:          opts.Gray,
		NoSpread:      opts.NoSpread,
		Triage:        opts.Triage,
		Sharing:       opts.Sharing,
	})
	dep, err := m.Deploy(plan, w.Tenants())
	if err != nil {
		return nil, err
	}
	return &System{Engine: eng, Pool: pool, Deployment: dep, Plan: plan, Workload: w}, nil
}

// ReplayOptions re-exports the replay options.
type ReplayOptions = replay.Options

// TakeOver re-exports the §7.5 take-over injection spec.
type TakeOver = replay.TakeOver

// Failure re-exports the node-failure injection spec. Injected failures
// only break a node; detection and repair run autonomously through the
// §4.4 recovery controllers replay arms alongside them.
type Failure = replay.Failure

// ReplayReport re-exports the replay report.
type ReplayReport = replay.Report

// RecoveryConfig re-exports the autonomous recovery controller
// configuration (heartbeat interval, acquisition attempts, backoff).
type RecoveryConfig = recovery.Config

// DefaultRecoveryConfig returns 30 s heartbeats and 5 acquisition attempts
// backing off 1→16 min with an hour between cycles.
func DefaultRecoveryConfig() RecoveryConfig { return recovery.DefaultConfig() }

// GrayConfig re-exports the fail-slow detector configuration (beat
// interval, peer-relative suspicion thresholds, confirm/clear beats, drain
// timing, flap strike-out).
type GrayConfig = recovery.GrayConfig

// DefaultGrayConfig returns 1 min beats, a 1.5× peer-median suspicion
// threshold, 3 confirm / 2 clear beats, a 10 min hedge-first grace before
// drain, and a 3-strike flap cutoff.
func DefaultGrayConfig() GrayConfig { return recovery.DefaultGrayConfig() }

// TriageConfig re-exports the cluster-wide scarcity triage configuration
// (claim poll interval).
type TriageConfig = recovery.TriageConfig

// DefaultTriageConfig returns one-minute claim polls.
func DefaultTriageConfig() TriageConfig { return recovery.DefaultTriageConfig() }

// AdmissionConfig re-exports the overload-protection configuration
// (per-tenant contracts, queue bound, deadline factor, brownout
// thresholds).
type AdmissionConfig = admission.Config

// DefaultAdmissionConfig returns 2× contract headroom, a 32-slot admission
// queue, a 1.25 deadline factor, and 30 s brownout evaluation.
func DefaultAdmissionConfig() AdmissionConfig { return admission.DefaultConfig() }

// Contract re-exports a tenant's contracted arrival process (token-bucket
// rate + burst).
type Contract = admission.Contract

// OnlineConfig re-exports the continuous re-consolidation loop's
// configuration (control period, drain slack, drift threshold, local-move
// budget, migration cost model).
type OnlineConfig = online.Config

// DefaultOnlineConfig returns the loop's standard settings: 15-minute
// control period, 1-hour drain slack, 32-epoch drift threshold, 4 local
// moves per group per tick, parallel bulk-load migrations.
func DefaultOnlineConfig(plan PlanConfig, horizon sim.Time) OnlineConfig {
	return online.DefaultConfig(plan, horizon)
}

// OnlineController re-exports the per-deployment online control loop.
type OnlineController = online.Controller

// EnableOnline arms continuous incremental re-consolidation on the system:
// every control period the loop streams observed activity deltas into live
// per-tenant profiles, detects drift, churn, and broken fuzzy-capacity
// constraints, repairs the partition with bounded local moves (escalating to
// a scoped offline re-solve only when necessary), and executes the outcome
// as live migrations — provision in the background, drain through the old
// group, flip the routing index atomically at cutover.
//
// Requires a shared-domain deployment (DeployOptions.Sharded=false).
// Migrations run through a second master on the same engine and node pool,
// paying the Table 5.1 startup and reload costs unless cfg.Immediate.
func (s *System) EnableOnline(cfg OnlineConfig) (*OnlineController, error) {
	mig := master.New(s.Engine, s.Pool, master.Options{
		Immediate:     cfg.Immediate,
		ParallelLoad:  cfg.ParallelLoad,
		MonitorWindow: 24 * time.Hour,
	})
	ctl, err := online.New(s.Engine, s.Deployment, mig, s.Plan, s.Workload.Logs, cfg)
	if err != nil {
		return nil, err
	}
	ctl.Start()
	s.Online = ctl
	return ctl, nil
}

// ScalerConfig re-exports the elastic scaler configuration.
type ScalerConfig = scaling.Config

// DefaultScalerConfig returns the thesis' scaler settings for the given
// guarantee and replication factor.
func DefaultScalerConfig(p float64, r int) ScalerConfig { return scaling.DefaultConfig(p, r) }

// Replay drives the system with its workload's logged queries. A shared
// deployment is driven on its one engine (deterministic, byte-identical per
// seed); a sharded one replays every tenant-group in parallel on its own
// clock domain with a deterministic merge of the resulting records.
func (s *System) Replay(opts ReplayOptions) (*ReplayReport, error) {
	if s.Deployment.Sharded() {
		return replay.RunParallel(s.Deployment, s.Workload.Catalog, s.Workload.Logs, opts)
	}
	return replay.Run(s.Engine, s.Deployment, s.Workload.Catalog, s.Workload.Logs, opts)
}

// ServeOptions configures the HTTP front end.
type ServeOptions struct {
	// TimeScale is virtual seconds per wall second (default 60).
	TimeScale float64
	// DisableMetrics removes the Prometheus GET /metrics endpoint.
	DisableMetrics bool
	// SubmitRetries bounds retries of a transiently failed submit (all
	// replicas down, e.g. mid-recovery) before giving up with 504
	// (default 3; negative disables retries).
	SubmitRetries int
	// SubmitBackoff is the virtual-time wait between submit attempts
	// (default 30 s).
	SubmitBackoff time.Duration
	// SubmitTimeout is the virtual-time budget per submit (default 5 min).
	SubmitTimeout time.Duration
	// DisableCoalesce turns off server-side coalescing of concurrent single
	// submits into shard-local batches (on by default).
	DisableCoalesce bool
	// MaxBatch caps how many coalesced submits one batched routing call
	// takes (default 64).
	MaxBatch int
}

// Handler returns the MPPDBaaS HTTP API over the system. Deploy with
// Sharded for a front end whose submits to different tenant-groups proceed
// in parallel. An online control loop armed via EnableOnline is surfaced at
// GET /v1/online and GET /v1/reconsolidation.
func (s *System) Handler(opts ServeOptions) (http.Handler, error) {
	srv, err := service.New(s.Deployment, s.Workload.Catalog, s.Plan, service.Config{
		TimeScale:       opts.TimeScale,
		DisableMetrics:  opts.DisableMetrics,
		SubmitRetries:   opts.SubmitRetries,
		SubmitBackoff:   opts.SubmitBackoff,
		SubmitTimeout:   opts.SubmitTimeout,
		DisableCoalesce: opts.DisableCoalesce,
		MaxBatch:        opts.MaxBatch,
	})
	if err != nil {
		return nil, err
	}
	if s.Online != nil {
		srv.SetOnline(s.Online)
	}
	return srv, nil
}

// Telemetry returns the system's telemetry hub: the metrics registry, query
// tracer, SLA-event stream, and per-tenant SLA accounting every subsystem
// reports into.
func (s *System) Telemetry() *telemetry.Hub { return s.Deployment.Telemetry() }
