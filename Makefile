GO ?= go

.PHONY: check vet build test race bench

# The full pre-commit gate: static checks, build, and the race-enabled suite.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
