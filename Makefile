GO ?= go

.PHONY: check vet build test race chaos-smoke overload-smoke gray-smoke domain-smoke grouping-smoke online-smoke service-smoke shared-smoke bench bench-grouping bench-online bench-service bench-shareddb

# The full pre-commit gate: static checks, build, the bounded chaos,
# overload, gray-failure, domain, grouping, online, service and shared-work
# smokes, and the race-enabled suite.
check: vet build chaos-smoke overload-smoke gray-smoke domain-smoke grouping-smoke online-smoke service-smoke shared-smoke race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bounded failure-injection smoke: a small sharded deployment under the
# chaos harness with the race detector on (~1 s), exercising parallel
# injection, heartbeat detection, and autonomous recovery end to end.
chaos-smoke:
	$(GO) test -race -short -run TestChaosSmoke ./internal/recovery/chaos

# Bounded noisy-tenant smoke with the race detector on: a seeded storm
# against an admission-armed group, verifying the aggressor is throttled
# and compliant tenants hold their guarantee.
overload-smoke:
	$(GO) test -race -short -run TestOverloadSmoke ./internal/recovery/chaos

# Bounded fail-slow smoke with the race detector on: a seeded gray-failure
# storm (stuck, gradual, flapping slowdowns) against a detector-armed group,
# verifying the hedge → drain-and-replace ladder restores attainment and
# leaves the pool leak-free.
gray-smoke:
	$(GO) test -race -short -run TestGraySmoke ./internal/recovery/chaos

# Bounded correlated-failure smoke with the race detector on: a seeded
# whole-domain outage against a spread-placed, triage-armed deployment,
# verifying quarantine re-routing, the scarcity triage queue, and
# restoration re-spread leave zero dropped queries and a leak-free pool.
domain-smoke:
	$(GO) test -race -short -run TestDomainSmoke ./internal/recovery/chaos

# Solver-equivalence property tests under the race detector plus a one-shot
# pass over the solver-scale benchmarks, so a pruning bug or a benchmark
# bit-rot is caught before commit without paying full benchmark time.
grouping-smoke:
	$(GO) test -race -run 'TestSolverMatchesReference' -count=1 ./internal/grouping
	$(GO) test -bench 'BenchmarkTwoStep2000|BenchmarkPickBest' -benchtime=1x -run '^$$' ./internal/grouping

# Bounded online-re-consolidation smoke with the race detector on: a seeded
# drift run (churn, activity shift, live migrations, oracle comparison) plus
# the same-seed byte-determinism guard over the telemetry dumps.
online-smoke:
	$(GO) test -race -short -run 'TestDriftSmoke|TestOnlineDeterminism' -count=1 ./internal/experiments

# Shared-work execution smoke with the race detector on: the weighted
# shared-scan executor's unit surface (merge, late-join, degraded, hedge
# cancel, member cancel), the sharing-aware admission pressure read, and the
# small-scale experiment end to end — including the off-mode golden-hash
# equivalence guard (same-seed sharing-OFF replays must reproduce
# byte-for-byte).
shared-smoke:
	$(GO) test -race -run 'TestShared|TestSharing' -count=1 ./internal/mppdb
	$(GO) test -race -run 'TestBrownoutSharingEffectiveCapacity' -count=1 ./internal/admission
	$(GO) test -race -short -run 'TestSharingSmoke' -count=1 -timeout 20m ./internal/experiments

bench:
	$(GO) test -bench=. -benchmem ./...

# Full solver-scale benchmark run; persists ns/op, allocs/op, bytes/op and
# solution effectiveness to BENCH_grouping.json (committed, so perf
# regressions show up in review).
bench-grouping:
	BENCH_JSON_OUT=$(CURDIR)/BENCH_grouping.json $(GO) test -run TestWriteBenchJSON -count=1 -v ./internal/grouping

# Batched-submit smoke with the race detector on: per-item error
# partitioning over /v1/submit-batch (a 429/503/504 never drops a healthy
# batch-mate), batched-vs-per-query telemetry equivalence in both clock
# layouts, and the coalesced concurrent single-submit path.
service-smoke:
	$(GO) test -race -run 'TestBatchErrorPartitioning|TestConcurrentSubmitsAndScrapes|TestShardedConcurrentSubmits' -count=1 ./internal/service
	$(GO) test -race -run 'TestBatchSubmitEquivalence' -count=1 .

# Submit-path benchmark run: single vs 64-query batched submits over HTTP in
# both clock layouts, plus the runtime-layer batched path (which must stay
# allocation-free). Persists to BENCH_service.json (committed) and fails if
# the batched path drops below 3x the recorded pre-PR baseline.
bench-service:
	BENCH_JSON_OUT=$(CURDIR)/BENCH_service.json $(GO) test -run TestWriteServiceBenchJSON -count=1 -v -timeout 20m .

# Online-loop benchmark run: steady-state re-plan latency at 10k and 100k
# tenants against the epoch width, plus the drift scenario's online-vs-oracle
# SLA attainment. Persists to BENCH_online.json (committed) and fails if the
# acceptance bars (100× under the epoch width, no drops, within 1% of the
# oracle) regress.
bench-online:
	BENCH_JSON_OUT=$(CURDIR)/BENCH_online.json $(GO) test -run TestWriteOnlineBenchJSON -count=1 -v ./internal/experiments

# Shared-work executor benchmark run: the submit hot path with and without
# sharing, the merged batch's virtual-time work ratio against k independent
# scans, and the full consolidation-vs-attainment experiment outcome.
# Persists to BENCH_shareddb.json (committed) and fails if the acceptance
# bars (work ratio (1+(k-1)sigma)/k, hot path within 5x of plain, experiment
# verdict PASS) regress.
bench-shareddb:
	BENCH_JSON_OUT=$(CURDIR)/BENCH_shareddb.json $(GO) test -run TestWriteSharedBenchJSON -count=1 -v -timeout 20m ./internal/experiments
