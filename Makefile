GO ?= go

.PHONY: check vet build test race chaos-smoke bench

# The full pre-commit gate: static checks, build, the bounded chaos smoke,
# and the race-enabled suite.
check: vet build chaos-smoke race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bounded failure-injection smoke: a small sharded deployment under the
# chaos harness with the race detector on (~1 s), exercising parallel
# injection, heartbeat detection, and autonomous recovery end to end.
chaos-smoke:
	$(GO) test -race -short -run TestChaosSmoke ./internal/recovery/chaos

bench:
	$(GO) test -bench=. -benchmem
