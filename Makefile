GO ?= go

.PHONY: check vet build test race chaos-smoke overload-smoke bench

# The full pre-commit gate: static checks, build, the bounded chaos and
# overload smokes, and the race-enabled suite.
check: vet build chaos-smoke overload-smoke race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bounded failure-injection smoke: a small sharded deployment under the
# chaos harness with the race detector on (~1 s), exercising parallel
# injection, heartbeat detection, and autonomous recovery end to end.
chaos-smoke:
	$(GO) test -race -short -run TestChaosSmoke ./internal/recovery/chaos

# Bounded noisy-tenant smoke with the race detector on: a seeded storm
# against an admission-armed group, verifying the aggressor is throttled
# and compliant tenants hold their guarantee.
overload-smoke:
	$(GO) test -race -short -run TestOverloadSmoke ./internal/recovery/chaos

bench:
	$(GO) test -bench=. -benchmem
