package thrifty

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// Golden SHA-256 hashes of the canonical shared-domain replay's telemetry
// dumps, captured on the pre-sharding runtime (before internal/runtime and
// the per-group clock domains existed). The shared-domain experiment path
// must stay byte-identical across refactors: every figure in §7 depends on
// the globally ordered event interleaving these dumps encode. If a change
// legitimately alters the replay (new workload defaults, new telemetry
// sites), re-capture with:
//
//	go test -run TestSharedDomainReplayGolden -v . 2>&1 | grep -E 'traces|events'
const (
	goldenTraceSum = "8265c95382af48593f08e1c97fa6f3ffe1807a03e989d7b25215b2bef86fa4e7"
	goldenEventSum = "f7b23992bddc97af98cfd6830968e7e6b8e02cd936e642534959045e48835d44"
)

// goldenDump runs the canonical shared-domain replay (replayOnce) and hashes
// its telemetry dumps.
func goldenDump(t *testing.T) (traceSum, eventSum string) {
	t.Helper()
	sys, _ := replayOnce(t)
	var traces, events bytes.Buffer
	if err := sys.Telemetry().Tracer.Dump(&traces); err != nil {
		t.Fatal(err)
	}
	if err := sys.Telemetry().Events.Dump(&events); err != nil {
		t.Fatal(err)
	}
	ts := sha256.Sum256(traces.Bytes())
	es := sha256.Sum256(events.Bytes())
	return hex.EncodeToString(ts[:]), hex.EncodeToString(es[:])
}

// TestSharedDomainReplayGolden pins the shared-domain replay to the
// pre-refactor output: same seed, byte-identical telemetry dumps.
func TestSharedDomainReplayGolden(t *testing.T) {
	traceSum, eventSum := goldenDump(t)
	t.Logf("traces: %s", traceSum)
	t.Logf("events: %s", eventSum)
	if traceSum != goldenTraceSum {
		t.Errorf("trace dump drifted from pre-refactor golden:\n got  %s\n want %s", traceSum, goldenTraceSum)
	}
	if eventSum != goldenEventSum {
		t.Errorf("event dump drifted from pre-refactor golden:\n got  %s\n want %s", eventSum, goldenEventSum)
	}
}
