package thrifty

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/recovery/chaos"
	"repro/internal/sim"
)

// Golden SHA-256 hashes of the canonical shared-domain replay's telemetry
// dumps, captured on the pre-sharding runtime (before internal/runtime and
// the per-group clock domains existed). The shared-domain experiment path
// must stay byte-identical across refactors: every figure in §7 depends on
// the globally ordered event interleaving these dumps encode. If a change
// legitimately alters the replay (new workload defaults, new telemetry
// sites), re-capture with:
//
//	go test -run TestSharedDomainReplayGolden -v . 2>&1 | grep -E 'traces|events'
const (
	goldenTraceSum = "8265c95382af48593f08e1c97fa6f3ffe1807a03e989d7b25215b2bef86fa4e7"
	goldenEventSum = "f7b23992bddc97af98cfd6830968e7e6b8e02cd936e642534959045e48835d44"
)

// goldenDump runs the canonical shared-domain replay (replayOnce) and hashes
// its telemetry dumps.
func goldenDump(t *testing.T) (traceSum, eventSum string) {
	t.Helper()
	sys, _ := replayOnce(t)
	var traces, events bytes.Buffer
	if err := sys.Telemetry().Tracer.Dump(&traces); err != nil {
		t.Fatal(err)
	}
	if err := sys.Telemetry().Events.Dump(&events); err != nil {
		t.Fatal(err)
	}
	ts := sha256.Sum256(traces.Bytes())
	es := sha256.Sum256(events.Bytes())
	return hex.EncodeToString(ts[:]), hex.EncodeToString(es[:])
}

// overloadDump deploys the small workload with admission armed, drives the
// seeded noisy-tenant storm against it, and hashes the telemetry dumps.
// Identical inputs every call.
func overloadDump(t *testing.T) (traceSum, eventSum string) {
	t.Helper()
	w := smallWorkload(t)
	plan, err := PlanDeployment(w, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	acfg := DefaultAdmissionConfig()
	sys, err := Deploy(w, plan, DeployOptions{Immediate: true, SpareNodes: 64, Admission: &acfg})
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaos.DefaultOverloadConfig()
	cfg.Seed = 7
	cfg.From, cfg.To = 0, sim.Day
	if _, err := chaos.RunOverload(sys.Engine, sys.Deployment, w.Catalog, w.Logs, cfg); err != nil {
		t.Fatal(err)
	}
	var traces, events bytes.Buffer
	if err := sys.Telemetry().Tracer.Dump(&traces); err != nil {
		t.Fatal(err)
	}
	if err := sys.Telemetry().Events.Dump(&events); err != nil {
		t.Fatal(err)
	}
	if traces.Len() == 0 || events.Len() == 0 {
		t.Fatal("empty telemetry dump after overload run")
	}
	ts := sha256.Sum256(traces.Bytes())
	es := sha256.Sum256(events.Bytes())
	return hex.EncodeToString(ts[:]), hex.EncodeToString(es[:])
}

// TestOverloadReplayDeterminism runs the same seeded overload storm twice —
// admission controller, brownout ticks, punitive policing and all — and
// demands byte-identical telemetry. The storm path must be as replayable as
// the plain replay path, or overload experiments stop being evidence.
func TestOverloadReplayDeterminism(t *testing.T) {
	t1, e1 := overloadDump(t)
	t2, e2 := overloadDump(t)
	if t1 != t2 {
		t.Errorf("trace dumps differ between identical overload runs:\n run1 %s\n run2 %s", t1, t2)
	}
	if e1 != e2 {
		t.Errorf("event dumps differ between identical overload runs:\n run1 %s\n run2 %s", e1, e2)
	}
}

// TestSharedDomainReplayGolden pins the shared-domain replay to the
// pre-refactor output: same seed, byte-identical telemetry dumps.
func TestSharedDomainReplayGolden(t *testing.T) {
	traceSum, eventSum := goldenDump(t)
	t.Logf("traces: %s", traceSum)
	t.Logf("events: %s", eventSum)
	if traceSum != goldenTraceSum {
		t.Errorf("trace dump drifted from pre-refactor golden:\n got  %s\n want %s", traceSum, goldenTraceSum)
	}
	if eventSum != goldenEventSum {
		t.Errorf("event dump drifted from pre-refactor golden:\n got  %s\n want %s", eventSum, goldenEventSum)
	}
}
