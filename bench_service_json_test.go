package thrifty

import (
	"encoding/json"
	"os"
	"testing"
)

// ServiceBenchRecord is one submit-path benchmark's measurements as
// persisted to BENCH_service.json by `make bench-service`.
type ServiceBenchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	NsPerQuery  float64 `json:"ns_per_query"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SpeedupVsBaseline is ops/sec per query relative to the pre-PR
	// single-submit baseline on the matching clock layout.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// ServiceBenchFile is the schema of BENCH_service.json.
type ServiceBenchFile struct {
	Method   string               `json:"method"`
	Baseline []ServiceBenchRecord `json:"baseline_pre_pr"`
	Results  []ServiceBenchRecord `json:"results"`
}

// Pre-PR single-submit baseline (ns/op == ns/query; 63 allocs per submit),
// measured on the commit before the batched submit pipeline landed, via a
// git worktree running the identical steady-state harness (TimeScale 36000,
// one tenant per group, 64-tenant seed-7 workload) interleaved with the
// post-PR runs on the same machine; minimum of 3 × 2 s runs. The pre-PR
// code has no batch endpoint, so this cannot be re-measured in-tree —
// treat it as the recorded denominator for SpeedupVsBaseline.
const (
	baselineSharedNs  = 17814
	baselineShardedNs = 16262
	baselineAllocs    = 63
)

// TestWriteServiceBenchJSON runs the service submit benchmarks (best of 3
// each) and writes their measurements to the path in BENCH_JSON_OUT. It is
// skipped unless that variable is set (`make bench-service` sets it), so the
// regular test suite stays fast. The batched path must hold its ≥3× per-query
// speedup over the pre-PR single-submit baseline.
func TestWriteServiceBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON_OUT")
	if out == "" {
		t.Skip("BENCH_JSON_OUT not set; run via `make bench-service`")
	}
	best := func(run func(*testing.B)) testing.BenchmarkResult {
		var r testing.BenchmarkResult
		for i := 0; i < 3; i++ {
			c := testing.Benchmark(run)
			if i == 0 || c.NsPerOp() < r.NsPerOp() {
				r = c
			}
		}
		return r
	}
	record := func(name string, r testing.BenchmarkResult, baseNs float64) ServiceBenchRecord {
		perQuery := float64(r.NsPerOp())
		if q, ok := r.Extra["ns/query"]; ok {
			perQuery = q
		}
		rec := ServiceBenchRecord{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			NsPerQuery:  perQuery,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if baseNs > 0 && perQuery > 0 {
			rec.SpeedupVsBaseline = baseNs / perQuery
		}
		return rec
	}
	file := ServiceBenchFile{
		Method: "best of 3 testing.Benchmark runs per bench; ns_per_query is the per-submit cost " +
			"(ns_per_op for singles, the ns/query metric for whole-batch and runtime ops)",
		Baseline: []ServiceBenchRecord{
			{Name: "baseline-single-shared", NsPerOp: baselineSharedNs, NsPerQuery: baselineSharedNs, AllocsPerOp: baselineAllocs},
			{Name: "baseline-single-sharded", NsPerOp: baselineShardedNs, NsPerQuery: baselineShardedNs, AllocsPerOp: baselineAllocs},
		},
	}
	for _, bm := range []struct {
		name   string
		baseNs float64
		run    func(*testing.B)
	}{
		{"single-shared", baselineSharedNs, func(b *testing.B) { benchConcurrentSubmits(b, false) }},
		{"single-sharded", baselineShardedNs, func(b *testing.B) { benchConcurrentSubmits(b, true) }},
		{"batch64-shared", baselineSharedNs, func(b *testing.B) { benchBatchSubmits(b, false, 64) }},
		{"batch64-sharded", baselineShardedNs, func(b *testing.B) { benchBatchSubmits(b, true, 64) }},
		{"runtime-batch64", 0, BenchmarkRuntime_BatchSubmit},
	} {
		r := best(bm.run)
		rec := record(bm.name, r, bm.baseNs)
		file.Results = append(file.Results, rec)
		t.Logf("%s: %.0f ns/query, %d allocs/op (%.2fx baseline)",
			rec.Name, rec.NsPerQuery, rec.AllocsPerOp, rec.SpeedupVsBaseline)
	}
	for _, rec := range file.Results {
		switch rec.Name {
		case "batch64-shared", "batch64-sharded":
			if rec.SpeedupVsBaseline < 3 {
				t.Errorf("%s speedup %.2fx, acceptance bar is 3x over the pre-PR baseline",
					rec.Name, rec.SpeedupVsBaseline)
			}
		case "runtime-batch64":
			if rec.AllocsPerOp != 0 {
				t.Errorf("runtime batched path allocates (%d allocs per 64-query batch), want 0",
					rec.AllocsPerOp)
			}
		}
	}
	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
