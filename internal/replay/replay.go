// Package replay drives a live deployment with recorded tenant logs: it
// materializes every query submission in a time window, routes each through
// the deployment's per-group routers at its logged time (open loop), and
// samples run-time statistics. This is the run-time half of the evaluation
// testbed — the §7.5 elastic-scaling experiment and the SLA-attainment
// validation both run on it.
package replay

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/queries"
	"repro/internal/recovery"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// TakeOver reproduces the §7.5 intervention: "we manually took over a tenant
// at time Y and continuously submitted queries to the system on behalf of
// that tenant".
type TakeOver struct {
	// Tenant to take over.
	Tenant string
	// Start of the continuous submission.
	Start sim.Time
	// Interval between submissions (continuous = shorter than the query
	// latency).
	Interval time.Duration
	// ClassID of the query to hammer with.
	ClassID string
}

// Failure injects a node failure (§4.4): at At, one node of the group's
// MPPDB fails (at the instance and, when the pool holds an active node for
// it, at the pool too). The MPPDB stays online with degraded throughput;
// detection and repair are autonomous — the group's recovery.Controller
// notices the failure on its next heartbeat, swaps the node at the pool,
// prices replacement startup plus the Table 5.1 bulk reload, and restores
// full speed. Scripted and service-path recovery share that one code path.
type Failure struct {
	// At is the failure instant.
	At sim.Time
	// Group identifies the tenant-group.
	Group string
	// Instance indexes the group's MPPDBs (0 = the tuning MPPDB G₀).
	Instance int
}

// Options configures a replay run.
type Options struct {
	// From and To bound the replayed window.
	From, To sim.Time
	// EnableScaling arms the lightweight elastic scaler.
	EnableScaling bool
	// ScalerConfig parameterizes the scaler when enabled.
	ScalerConfig scaling.Config
	// SampleEvery sets the statistics sampling period (default 10 min).
	SampleEvery time.Duration
	// TakeOver, when non-nil, injects the §7.5 over-activity.
	TakeOver *TakeOver
	// Failures injects node failures.
	Failures []Failure
	// Recovery overrides the recovery controllers' config when failures are
	// injected (default recovery.DefaultConfig).
	Recovery *recovery.Config
	// DrainSlack extends the post-window drain that lets in-flight queries —
	// and, with failures, recoveries and re-images — settle (default one
	// day). Long reloads of data-heavy groups can need more.
	DrainSlack time.Duration
}

// drainUntil returns the absolute end of the post-window drain.
func (o Options) drainUntil() sim.Time {
	if o.DrainSlack > 0 {
		return o.To.Add(o.DrainSlack)
	}
	return o.To + sim.Day
}

// FailureEvent records an injected failure's lifecycle.
type FailureEvent struct {
	Failure
	// MPPDB is the degraded instance's ID, filled at injection.
	MPPDB string
	// Node is the pool node failed alongside the instance, -1 when the pool
	// held no active node for it.
	Node int
	// RepairedAt is when autonomous recovery restored full speed (zero when
	// recovery had not completed by the end of the drain).
	RepairedAt sim.Time
	// Err is non-empty when the injection could not be applied.
	Err string
}

// Sample is one point of a group's run-time timeline.
type Sample struct {
	At     sim.Time
	RTTTP  float64
	Active int
}

// Report is the outcome of a replay.
type Report struct {
	// Samples holds each group's timeline.
	Samples map[string][]Sample
	// Records are all completed queries.
	Records []monitor.QueryRecord
	// ScalingEvents are the elastic-scaling actions taken (empty when
	// scaling is disabled).
	ScalingEvents []scaling.Event
	// FailureEvents are the injected node failures and their repairs.
	FailureEvents []FailureEvent
	// RecoveryEvents are the controllers' recovery lifecycles (empty when no
	// failures were injected), in deployment group order.
	RecoveryEvents []recovery.Event
	// Submitted and SubmitErrors count routing attempts and failures.
	Submitted    int
	SubmitErrors int
}

// SLAAttainment returns the fraction of completed queries that met their
// latency SLA.
func (r *Report) SLAAttainment() float64 {
	if len(r.Records) == 0 {
		return 1
	}
	met := 0
	for _, rec := range r.Records {
		if rec.SLAMet() {
			met++
		}
	}
	return float64(met) / float64(len(r.Records))
}

// MinRTTTP returns the lowest sampled RT-TTP of the group.
func (r *Report) MinRTTTP(group string) float64 {
	min := 1.0
	for _, s := range r.Samples[group] {
		if s.RTTTP < min {
			min = s.RTTTP
		}
	}
	return min
}

// Run replays the logs' query events in [From, To) against the deployment.
// Tenants in the logs that are not deployed (e.g. excluded ones) are
// skipped. The engine is run to completion of the window plus any in-flight
// queries.
func Run(eng *sim.Engine, dep *master.Deployment, cat *queries.Catalog,
	logs []*workload.TenantLog, opts Options) (*Report, error) {
	if opts.To <= opts.From {
		return nil, fmt.Errorf("replay: window [%v,%v)", opts.From, opts.To)
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 10 * time.Minute
	}
	if dep.Sharded() {
		return nil, fmt.Errorf("replay: Run drives one shared engine; use RunParallel for a sharded deployment")
	}
	if eng.Now() > opts.From {
		return nil, fmt.Errorf("replay: engine already at %v, window starts %v", eng.Now(), opts.From)
	}
	rep := &Report{Samples: make(map[string][]Sample)}

	// Schedule query submissions.
	for _, tl := range logs {
		if _, ok := dep.GroupFor(tl.Tenant.ID); !ok {
			continue
		}
		for _, ev := range tl.Materialize(opts.From, opts.To) {
			ev := ev
			class, ok := cat.ByID(ev.ClassID)
			if !ok {
				return nil, fmt.Errorf("replay: unknown query class %s", ev.ClassID)
			}
			eng.Schedule(ev.At, func(sim.Time) {
				rep.Submitted++
				if _, err := dep.SubmitWithTarget(ev.Tenant, class, ev.SLATarget); err != nil {
					rep.SubmitErrors++
				}
			})
		}
	}

	// Take-over injection. The interval is a floor, not an open-loop rate:
	// a new query is only submitted once the previous one finishes — the
	// paper's tester "continuously submitted queries" one after another
	// (§7.5). An open loop with an interval under the query latency would
	// grow an unbounded queue, which no real client does, and the victim's
	// self-inflicted slowdown would drown the group's numbers.
	if to := opts.TakeOver; to != nil {
		class, ok := cat.ByID(to.ClassID)
		if !ok {
			return nil, fmt.Errorf("replay: unknown take-over class %s", to.ClassID)
		}
		group, ok := dep.GroupFor(to.Tenant)
		if !ok {
			return nil, fmt.Errorf("replay: take-over tenant %s not deployed", to.Tenant)
		}
		eng.Schedule(to.Start, func(sim.Time) {
			if h := dep.Telemetry(); h != nil {
				h.Events.Publish(telemetry.Event{
					Type:   telemetry.EventTakeOver,
					Group:  group.Plan.ID,
					Tenant: to.Tenant,
					Detail: fmt.Sprintf("continuous %s every %v", to.ClassID, to.Interval),
				})
			}
		})
		var hammer func(now sim.Time)
		hammer = func(now sim.Time) {
			if now >= opts.To {
				return
			}
			// Re-resolve the victim's group every round: the online control
			// loop may have live-migrated the tenant since the last query
			// (for a static deployment this is the same group every time).
			g, ok := dep.GroupFor(to.Tenant)
			if ok && g.Router.TenantInFlight(to.Tenant) == 0 {
				rep.Submitted++
				if _, err := dep.Submit(to.Tenant, class); err != nil {
					rep.SubmitErrors++
				}
			}
			eng.After(to.Interval, hammer)
		}
		eng.Schedule(to.Start, hammer)
	}

	// Failure injection (§4.4). The injector only breaks things: it degrades
	// the instance and fails the backing pool node. Detection and repair run
	// on the groups' recovery controllers — the same autonomous path the
	// service uses — armed here only when there are failures to recover, so
	// failure-free replays keep their pre-controller event schedule
	// bit-identically.
	var controllers []*recovery.Controller
	if len(opts.Failures) > 0 {
		for _, g := range dep.Groups() {
			if g.Recovery == nil {
				rc, err := recovery.New(eng, dep.Pool(), g.Plan.ID, g.Instances, recoveryConfig(opts))
				if err != nil {
					return nil, err
				}
				rc.SetTelemetry(dep.Telemetry())
				rc.Start()
				g.Recovery = rc
			}
			controllers = append(controllers, g.Recovery)
		}
	}
	for fi, f := range opts.Failures {
		fi, f := fi, f
		rep.FailureEvents = append(rep.FailureEvents, FailureEvent{Failure: f, Node: -1})
		eng.Schedule(f.At, func(sim.Time) {
			injectFailure(dep, &rep.FailureEvents[fi])
		})
	}

	// Statistics sampling. Each sample also lands on the telemetry RT-TTP
	// gauge, so a /metrics scrape sees the timeline the report sees.
	var sample func(now sim.Time)
	sample = func(now sim.Time) {
		for _, g := range dep.Groups() {
			rt := g.Monitor.RTTTP()
			rep.Samples[g.Plan.ID] = append(rep.Samples[g.Plan.ID], Sample{
				At:     now,
				RTTTP:  rt,
				Active: g.Monitor.ActiveTenants(),
			})
			if h := dep.Telemetry(); h != nil {
				h.Registry.Gauge("thrifty_group_rt_ttp", "group", g.Plan.ID).Set(rt)
			}
		}
		if now < opts.To {
			eng.After(opts.SampleEvery, sample)
		}
	}
	eng.Schedule(opts.From, sample)

	// Elastic scaling.
	var scaler *scaling.Scaler
	if opts.EnableScaling {
		var err error
		scaler, err = scaling.New(eng, dep.Pool(), opts.ScalerConfig)
		if err != nil {
			return nil, err
		}
		scaler.SetTelemetry(dep.Telemetry())
		for _, t := range dep.ScalerTargets() {
			scaler.Watch(t)
		}
		scaler.Start()
	}

	eng.Run(opts.To)
	// Let in-flight queries finish; the scaler's periodic tick (and the
	// recovery heartbeat) would run forever, so bound the drain.
	eng.Run(opts.drainUntil())

	rep.Records = dep.Records()
	if scaler != nil {
		rep.ScalingEvents = scaler.Events()
	}
	for _, rc := range controllers {
		rep.RecoveryEvents = append(rep.RecoveryEvents, rc.Events()...)
	}
	fillRepairs(rep.FailureEvents, rep.RecoveryEvents)
	return rep, nil
}

// recoveryConfig resolves the controllers' config for a run with failures.
func recoveryConfig(opts Options) recovery.Config {
	if opts.Recovery != nil {
		return *opts.Recovery
	}
	return recovery.DefaultConfig()
}

// injectFailure applies one scripted failure against the deployment: the
// instance loses a node and the pool's backing node (if any is active for
// that instance) is marked Failed, so the controller's swap has a node to
// cart away. The caller must own the deployment's engine.
func injectFailure(dep *master.Deployment, ev *FailureEvent) {
	var g *master.DeployedGroup
	for _, cand := range dep.Groups() {
		if cand.Plan.ID == ev.Group {
			g = cand
		}
	}
	if g == nil {
		ev.Err = fmt.Sprintf("no group %q", ev.Group)
		return
	}
	injectFailureOn(dep, g, ev)
}

// injectFailureOn is injectFailure with the group already resolved; the
// parallel path calls it from the group's own clock domain.
func injectFailureOn(dep *master.Deployment, g *master.DeployedGroup, ev *FailureEvent) {
	if ev.Instance < 0 || ev.Instance >= len(g.Instances) {
		ev.Err = fmt.Sprintf("group %s has no instance %d", ev.Group, ev.Instance)
		return
	}
	inst := g.Instances[ev.Instance]
	if err := inst.FailNode(); err != nil {
		ev.Err = err.Error()
		return
	}
	ev.MPPDB = inst.ID()
	if id, err := dep.Pool().FailAny(inst.ID()); err == nil {
		ev.Node = id
	}
	if h := dep.Telemetry(); h != nil {
		h.Events.Publish(telemetry.Event{
			Type:   telemetry.EventNodeFailure,
			Group:  ev.Group,
			MPPDB:  inst.ID(),
			Value:  float64(inst.FailedNodes()),
			Detail: "degraded; awaiting autonomous recovery",
		})
	}
}

// fillRepairs back-fills FailureEvent.RepairedAt from the controllers'
// lifecycles: the k-th applied injection against an instance (by failure
// instant) maps to the instance's k-th detected recovery.
func fillRepairs(fails []FailureEvent, recs []recovery.Event) {
	byDB := make(map[string][]recovery.Event)
	for _, r := range recs {
		byDB[r.MPPDB] = append(byDB[r.MPPDB], r)
	}
	order := make([]int, 0, len(fails))
	for i := range fails {
		if fails[i].Err == "" && fails[i].MPPDB != "" {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return fails[order[a]].At < fails[order[b]].At
	})
	next := make(map[string]int)
	for _, i := range order {
		db := fails[i].MPPDB
		k := next[db]
		next[db] = k + 1
		if k < len(byDB[db]) && byDB[db][k].Recovered() {
			fails[i].RepairedAt = byDB[db][k].Completed
		}
	}
}

// groupReport accumulates one group's share of a parallel replay. All fields
// are written only by the goroutine driving that group's clock domain.
type groupReport struct {
	samples      []Sample
	records      []monitor.QueryRecord
	scaling      []scaling.Event
	recovery     []recovery.Event
	submitted    int
	submitErrors int
	err          error
}

// RunParallel replays the logs against a sharded deployment, driving every
// tenant-group's clock domain in its own goroutine. Tenant-groups share
// nothing at query time (§3–§5), so each group's replay is independently
// deterministic: per-group record sequences, samples, and scaling events are
// identical run to run (and, with scaling disabled, identical to a shared
// domain Run of the same seed). The merged Records are deterministic too —
// stable-sorted by submit time, with deployment group order breaking ties.
// Only cross-group telemetry ordering (event sequence numbers, trace
// timestamps from the max-clock) is best-effort under parallelism.
func RunParallel(dep *master.Deployment, cat *queries.Catalog,
	logs []*workload.TenantLog, opts Options) (*Report, error) {
	if opts.To <= opts.From {
		return nil, fmt.Errorf("replay: window [%v,%v)", opts.From, opts.To)
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 10 * time.Minute
	}
	if !dep.Sharded() {
		return nil, fmt.Errorf("replay: RunParallel needs a sharded deployment; use Run")
	}
	groups := dep.Groups()

	// Partition the inputs by group up front, so each goroutine touches only
	// its own slice.
	index := make(map[*master.DeployedGroup]int, len(groups))
	for i, g := range groups {
		index[g] = i
	}
	logsBy := make([][]*workload.TenantLog, len(groups))
	for _, tl := range logs {
		if g, ok := dep.GroupFor(tl.Tenant.ID); ok {
			logsBy[index[g]] = append(logsBy[index[g]], tl)
		}
	}
	takeOverBy := -1
	var takeOverClass *queries.Class
	if to := opts.TakeOver; to != nil {
		cl, ok := cat.ByID(to.ClassID)
		if !ok {
			return nil, fmt.Errorf("replay: unknown take-over class %s", to.ClassID)
		}
		g, ok := dep.GroupFor(to.Tenant)
		if !ok {
			return nil, fmt.Errorf("replay: take-over tenant %s not deployed", to.Tenant)
		}
		takeOverBy = index[g]
		takeOverClass = cl
	}
	failEvents := make([]FailureEvent, len(opts.Failures))
	failuresBy := make([][]int, len(groups))
	for fi, f := range opts.Failures {
		failEvents[fi] = FailureEvent{Failure: f, Node: -1}
		found := false
		for i, g := range groups {
			if g.Plan.ID == f.Group {
				failuresBy[i] = append(failuresBy[i], fi)
				found = true
				break
			}
		}
		if !found {
			failEvents[fi].Err = fmt.Sprintf("no group %q", f.Group)
		}
	}

	reports := make([]groupReport, len(groups))
	var wg sync.WaitGroup
	for i := range groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i] = replayGroup(dep, groups[i], cat, logsBy[i],
				takeOverBy == i, takeOverClass, failuresBy[i], failEvents, opts)
		}(i)
	}
	wg.Wait()

	rep := &Report{Samples: make(map[string][]Sample), FailureEvents: failEvents}
	for i, g := range groups {
		r := &reports[i]
		if r.err != nil {
			return nil, r.err
		}
		rep.Samples[g.Plan.ID] = r.samples
		rep.Records = append(rep.Records, r.records...)
		rep.ScalingEvents = append(rep.ScalingEvents, r.scaling...)
		rep.RecoveryEvents = append(rep.RecoveryEvents, r.recovery...)
		rep.Submitted += r.submitted
		rep.SubmitErrors += r.submitErrors
	}
	fillRepairs(rep.FailureEvents, rep.RecoveryEvents)
	// Deterministic merge: per-group sequences are already deterministic;
	// a stable sort by submit time (concatenation group order breaking
	// ties) yields one canonical global order.
	sort.SliceStable(rep.Records, func(i, j int) bool {
		return rep.Records[i].Submit < rep.Records[j].Submit
	})
	return rep, nil
}

// replayGroup runs one group's slice of the replay on its own clock domain.
// Everything is scheduled first under the domain (Do), then the domain is
// advanced through the window; callbacks run while the domain is held, so
// they use the group's raw subsystems directly and never re-enter locked
// GroupRuntime methods.
func replayGroup(dep *master.Deployment, g *master.DeployedGroup, cat *queries.Catalog,
	logs []*workload.TenantLog, takeOver bool, takeOverClass *queries.Class,
	failures []int, failEvents []FailureEvent, opts Options) groupReport {
	var res groupReport
	dom := g.Domain()
	var scaler *scaling.Scaler
	dom.Do(func(eng *sim.Engine) {
		if eng.Now() > opts.From {
			res.err = fmt.Errorf("replay: group %s already at %v, window starts %v",
				g.Plan.ID, eng.Now(), opts.From)
			return
		}
		// All logged submissions go through one ScheduleBatch: the engine
		// builds its heap once (heap.Init) instead of sifting per event, the
		// tenant's interned ref resolves once per log instead of once per
		// query, and submissions fire through the router's ref path. Batch
		// order matches the old per-event Schedule order, so event sequence
		// numbers — and therefore the replay — are unchanged.
		var batch []sim.TimedFunc
		for _, tl := range logs {
			ref := g.Router.Ref(tl.Tenant.ID)
			for _, ev := range tl.Materialize(opts.From, opts.To) {
				ev := ev
				class, ok := cat.ByID(ev.ClassID)
				if !ok {
					res.err = fmt.Errorf("replay: unknown query class %s", ev.ClassID)
					return
				}
				fn := func(sim.Time) {
					res.submitted++
					if _, err := g.Router.SubmitWithTarget(ev.Tenant, class, ev.SLATarget); err != nil {
						res.submitErrors++
					}
				}
				if ref != tenant.NoRef {
					fn = func(sim.Time) {
						res.submitted++
						if _, err := g.Router.SubmitRef(ref, class, ev.SLATarget); err != nil {
							res.submitErrors++
						}
					}
				}
				batch = append(batch, sim.TimedFunc{At: ev.At, Fn: fn})
			}
		}
		eng.ScheduleBatch(batch)

		// Take-over injection (§7.5), closed loop as in Run.
		if takeOver {
			to := opts.TakeOver
			eng.Schedule(to.Start, func(sim.Time) {
				if h := dep.Telemetry(); h != nil {
					h.Events.Publish(telemetry.Event{
						Type:   telemetry.EventTakeOver,
						Group:  g.Plan.ID,
						Tenant: to.Tenant,
						Detail: fmt.Sprintf("continuous %s every %v", to.ClassID, to.Interval),
					})
				}
			})
			var hammer func(now sim.Time)
			hammer = func(now sim.Time) {
				if now >= opts.To {
					return
				}
				if g.Router.TenantInFlight(to.Tenant) == 0 {
					res.submitted++
					if _, err := g.Router.SubmitWithTarget(to.Tenant, takeOverClass, 0); err != nil {
						res.submitErrors++
					}
				}
				eng.After(to.Interval, hammer)
			}
			eng.Schedule(to.Start, hammer)
		}

		// Failure injection for this group's instances (§4.4): the injector
		// breaks, the group's recovery controller detects and repairs. The
		// controller is armed whenever the run injects failures anywhere —
		// matching Run's shared-mode behaviour group for group.
		if len(opts.Failures) > 0 && g.Recovery == nil {
			rc, err := recovery.New(eng, dep.Pool(), g.Plan.ID, g.Instances, recoveryConfig(opts))
			if err != nil {
				res.err = err
				return
			}
			rc.SetTelemetry(dep.Telemetry())
			rc.Start()
			g.Recovery = rc
		}
		for _, fi := range failures {
			fi := fi
			eng.Schedule(failEvents[fi].At, func(sim.Time) {
				injectFailureOn(dep, g, &failEvents[fi])
			})
		}

		// Statistics sampling for this group.
		var sample func(now sim.Time)
		sample = func(now sim.Time) {
			rt := g.Monitor.RTTTP()
			res.samples = append(res.samples, Sample{
				At:     now,
				RTTTP:  rt,
				Active: g.Monitor.ActiveTenants(),
			})
			if h := dep.Telemetry(); h != nil {
				h.Registry.Gauge("thrifty_group_rt_ttp", "group", g.Plan.ID).Set(rt)
			}
			if now < opts.To {
				eng.After(opts.SampleEvery, sample)
			}
		}
		eng.Schedule(opts.From, sample)

		// Elastic scaling: one scaler per group, all drawing from the shared
		// (mutex-protected) node pool. Scale-up MPPDB IDs stay deterministic:
		// each scaler numbers its own group's instances.
		if opts.EnableScaling {
			var err error
			scaler, err = scaling.New(eng, dep.Pool(), opts.ScalerConfig)
			if err != nil {
				res.err = err
				return
			}
			scaler.SetTelemetry(dep.Telemetry())
			scaler.Watch(&scaling.Target{Router: g.Router, Monitor: g.Monitor, Members: g.Members})
			scaler.Start()
		}
	})
	if res.err != nil {
		return res
	}

	dom.Advance(opts.To, nil)
	// Let in-flight queries finish; the scaler's periodic tick (and the
	// recovery heartbeat) would run forever, so bound the drain.
	dom.Advance(opts.drainUntil(), nil)

	dom.Do(func(*sim.Engine) {
		res.records = append(res.records, g.Monitor.Records()...)
		if scaler != nil {
			res.scaling = scaler.Events()
		}
		if g.Recovery != nil {
			res.recovery = g.Recovery.Events()
		}
	})
	return res
}
