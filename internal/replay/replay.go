// Package replay drives a live deployment with recorded tenant logs: it
// materializes every query submission in a time window, routes each through
// the deployment's per-group routers at its logged time (open loop), and
// samples run-time statistics. This is the run-time half of the evaluation
// testbed — the §7.5 elastic-scaling experiment and the SLA-attainment
// validation both run on it.
package replay

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/queries"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TakeOver reproduces the §7.5 intervention: "we manually took over a tenant
// at time Y and continuously submitted queries to the system on behalf of
// that tenant".
type TakeOver struct {
	// Tenant to take over.
	Tenant string
	// Start of the continuous submission.
	Start sim.Time
	// Interval between submissions (continuous = shorter than the query
	// latency).
	Interval time.Duration
	// ClassID of the query to hammer with.
	ClassID string
}

// Failure injects a node failure (§4.4): at At, one node of the group's
// MPPDB fails; the MPPDB stays online with degraded throughput while a
// replacement node starts (cluster.StartupTime for a single node), after
// which full speed is restored.
type Failure struct {
	// At is the failure instant.
	At sim.Time
	// Group identifies the tenant-group.
	Group string
	// Instance indexes the group's MPPDBs (0 = the tuning MPPDB G₀).
	Instance int
}

// Options configures a replay run.
type Options struct {
	// From and To bound the replayed window.
	From, To sim.Time
	// EnableScaling arms the lightweight elastic scaler.
	EnableScaling bool
	// ScalerConfig parameterizes the scaler when enabled.
	ScalerConfig scaling.Config
	// SampleEvery sets the statistics sampling period (default 10 min).
	SampleEvery time.Duration
	// TakeOver, when non-nil, injects the §7.5 over-activity.
	TakeOver *TakeOver
	// Failures injects node failures.
	Failures []Failure
}

// FailureEvent records an injected failure's lifecycle.
type FailureEvent struct {
	Failure
	// RepairedAt is when the replacement node restored full speed.
	RepairedAt sim.Time
	// Err is non-empty when the injection could not be applied.
	Err string
}

// Sample is one point of a group's run-time timeline.
type Sample struct {
	At     sim.Time
	RTTTP  float64
	Active int
}

// Report is the outcome of a replay.
type Report struct {
	// Samples holds each group's timeline.
	Samples map[string][]Sample
	// Records are all completed queries.
	Records []monitor.QueryRecord
	// ScalingEvents are the elastic-scaling actions taken (empty when
	// scaling is disabled).
	ScalingEvents []scaling.Event
	// FailureEvents are the injected node failures and their repairs.
	FailureEvents []FailureEvent
	// Submitted and SubmitErrors count routing attempts and failures.
	Submitted    int
	SubmitErrors int
}

// SLAAttainment returns the fraction of completed queries that met their
// latency SLA.
func (r *Report) SLAAttainment() float64 {
	if len(r.Records) == 0 {
		return 1
	}
	met := 0
	for _, rec := range r.Records {
		if rec.SLAMet() {
			met++
		}
	}
	return float64(met) / float64(len(r.Records))
}

// MinRTTTP returns the lowest sampled RT-TTP of the group.
func (r *Report) MinRTTTP(group string) float64 {
	min := 1.0
	for _, s := range r.Samples[group] {
		if s.RTTTP < min {
			min = s.RTTTP
		}
	}
	return min
}

// Run replays the logs' query events in [From, To) against the deployment.
// Tenants in the logs that are not deployed (e.g. excluded ones) are
// skipped. The engine is run to completion of the window plus any in-flight
// queries.
func Run(eng *sim.Engine, dep *master.Deployment, cat *queries.Catalog,
	logs []*workload.TenantLog, opts Options) (*Report, error) {
	if opts.To <= opts.From {
		return nil, fmt.Errorf("replay: window [%v,%v)", opts.From, opts.To)
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 10 * time.Minute
	}
	if eng.Now() > opts.From {
		return nil, fmt.Errorf("replay: engine already at %v, window starts %v", eng.Now(), opts.From)
	}
	rep := &Report{Samples: make(map[string][]Sample)}

	// Schedule query submissions.
	for _, tl := range logs {
		if _, ok := dep.GroupFor(tl.Tenant.ID); !ok {
			continue
		}
		for _, ev := range tl.Materialize(opts.From, opts.To) {
			ev := ev
			class, ok := cat.ByID(ev.ClassID)
			if !ok {
				return nil, fmt.Errorf("replay: unknown query class %s", ev.ClassID)
			}
			eng.Schedule(ev.At, func(sim.Time) {
				rep.Submitted++
				if _, err := dep.SubmitWithTarget(ev.Tenant, class, ev.SLATarget); err != nil {
					rep.SubmitErrors++
				}
			})
		}
	}

	// Take-over injection. The interval is a floor, not an open-loop rate:
	// a new query is only submitted once the previous one finishes — the
	// paper's tester "continuously submitted queries" one after another
	// (§7.5). An open loop with an interval under the query latency would
	// grow an unbounded queue, which no real client does, and the victim's
	// self-inflicted slowdown would drown the group's numbers.
	if to := opts.TakeOver; to != nil {
		class, ok := cat.ByID(to.ClassID)
		if !ok {
			return nil, fmt.Errorf("replay: unknown take-over class %s", to.ClassID)
		}
		group, ok := dep.GroupFor(to.Tenant)
		if !ok {
			return nil, fmt.Errorf("replay: take-over tenant %s not deployed", to.Tenant)
		}
		eng.Schedule(to.Start, func(sim.Time) {
			if h := dep.Telemetry(); h != nil {
				h.Events.Publish(telemetry.Event{
					Type:   telemetry.EventTakeOver,
					Group:  group.Plan.ID,
					Tenant: to.Tenant,
					Detail: fmt.Sprintf("continuous %s every %v", to.ClassID, to.Interval),
				})
			}
		})
		var hammer func(now sim.Time)
		hammer = func(now sim.Time) {
			if now >= opts.To {
				return
			}
			if group.Router.TenantInFlight(to.Tenant) == 0 {
				rep.Submitted++
				if _, err := dep.Submit(to.Tenant, class); err != nil {
					rep.SubmitErrors++
				}
			}
			eng.After(to.Interval, hammer)
		}
		eng.Schedule(to.Start, hammer)
	}

	// Failure injection: degrade the instance at the failure instant, start
	// a replacement node, restore full speed when it is up (§4.4).
	for fi, f := range opts.Failures {
		fi, f := fi, f
		rep.FailureEvents = append(rep.FailureEvents, FailureEvent{Failure: f})
		eng.Schedule(f.At, func(sim.Time) {
			ev := &rep.FailureEvents[fi]
			var g *master.DeployedGroup
			for _, cand := range dep.Groups() {
				if cand.Plan.ID == f.Group {
					g = cand
				}
			}
			if g == nil {
				ev.Err = fmt.Sprintf("no group %q", f.Group)
				return
			}
			if f.Instance < 0 || f.Instance >= len(g.Instances) {
				ev.Err = fmt.Sprintf("group %s has no instance %d", f.Group, f.Instance)
				return
			}
			inst := g.Instances[f.Instance]
			if err := inst.FailNode(); err != nil {
				ev.Err = err.Error()
				return
			}
			if h := dep.Telemetry(); h != nil {
				h.Events.Publish(telemetry.Event{
					Type:   telemetry.EventNodeFailure,
					Group:  f.Group,
					MPPDB:  inst.ID(),
					Value:  float64(inst.FailedNodes()),
					Detail: "degraded; replacement node starting",
				})
			}
			eng.After(cluster.StartupTime(1), func(now sim.Time) {
				if err := inst.RepairNode(); err != nil {
					ev.Err = err.Error()
					return
				}
				ev.RepairedAt = now
				if h := dep.Telemetry(); h != nil {
					h.Events.Publish(telemetry.Event{
						Type:  telemetry.EventNodeRepair,
						Group: f.Group,
						MPPDB: inst.ID(),
					})
				}
			})
		})
	}

	// Statistics sampling. Each sample also lands on the telemetry RT-TTP
	// gauge, so a /metrics scrape sees the timeline the report sees.
	var sample func(now sim.Time)
	sample = func(now sim.Time) {
		for _, g := range dep.Groups() {
			rt := g.Monitor.RTTTP()
			rep.Samples[g.Plan.ID] = append(rep.Samples[g.Plan.ID], Sample{
				At:     now,
				RTTTP:  rt,
				Active: g.Monitor.ActiveTenants(),
			})
			if h := dep.Telemetry(); h != nil {
				h.Registry.Gauge("thrifty_group_rt_ttp", "group", g.Plan.ID).Set(rt)
			}
		}
		if now < opts.To {
			eng.After(opts.SampleEvery, sample)
		}
	}
	eng.Schedule(opts.From, sample)

	// Elastic scaling.
	var scaler *scaling.Scaler
	if opts.EnableScaling {
		var err error
		scaler, err = scaling.New(eng, dep.Pool(), opts.ScalerConfig)
		if err != nil {
			return nil, err
		}
		scaler.SetTelemetry(dep.Telemetry())
		for _, t := range dep.ScalerTargets() {
			scaler.Watch(t)
		}
		scaler.Start()
	}

	eng.Run(opts.To)
	// Let in-flight queries finish; the scaler's periodic tick would run
	// forever, so bound the drain at the window end plus a slack day.
	eng.Run(opts.To + sim.Day)

	rep.Records = dep.Records()
	if scaler != nil {
		rep.ScalingEvents = scaler.Events()
	}
	return rep, nil
}
