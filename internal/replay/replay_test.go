package replay

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/queries"
	"repro/internal/recovery"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// world builds a small consolidated deployment plus its logs.
type world struct {
	eng  *sim.Engine
	cat  *queries.Catalog
	dep  *master.Deployment
	logs []*workload.TenantLog
	plan *advisor.Plan
}

func newWorld(t *testing.T, tenants, days int, r int) *world {
	t.Helper()
	return newWorldMode(t, tenants, days, r, false)
}

func newWorldMode(t *testing.T, tenants, days int, r int, sharded bool) *world {
	t.Helper()
	cat := queries.Default()
	lib, err := workload.BuildLibrary(cat, []int{2}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pop, err := tenant.Population(rng, tenants, 0.8, []int{2}, tenant.ZoneOffsets)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultComposeConfig(3)
	cfg.Days = days
	cfg.Holidays = 0 // short horizons would otherwise be all holiday
	logs, err := workload.Compose(lib, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := advisor.DefaultConfig()
	acfg.R = r
	adv, err := advisor.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adv.Plan(logs, cfg.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	pool := cluster.NewPool(10 * plan.NodesUsed())
	m := master.New(eng, pool, master.Options{Immediate: true, Sharded: sharded})
	byID := map[string]*tenant.Tenant{}
	for _, tn := range pop {
		byID[tn.ID] = tn
	}
	dep, err := m.Deploy(plan, byID)
	if err != nil {
		t.Fatal(err)
	}
	return &world{eng: eng, cat: cat, dep: dep, logs: logs, plan: plan}
}

func TestReplayBasics(t *testing.T) {
	w := newWorld(t, 10, 2, 3)
	rep, err := Run(w.eng, w.dep, w.cat, w.logs, Options{From: 0, To: sim.Day})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted == 0 {
		t.Fatal("nothing replayed")
	}
	if rep.SubmitErrors != 0 {
		t.Errorf("%d submit errors", rep.SubmitErrors)
	}
	if len(rep.Records) == 0 {
		t.Fatal("no completed queries")
	}
	// Guarantee 1 at work: with R=3 and a plan respecting P, nearly every
	// query meets its SLA. The guarantee is over *time* (TTP ≥ P); per-query
	// attainment runs a little lower because >R-active windows are exactly
	// the busiest ones.
	if got := rep.SLAAttainment(); got < 0.97 {
		t.Errorf("SLA attainment = %.4f, want ≥ 0.97", got)
	}
	// Samples for every group.
	for _, g := range w.dep.Groups() {
		if len(rep.Samples[g.Plan.ID]) == 0 {
			t.Errorf("no samples for group %s", g.Plan.ID)
		}
	}
	if rep.MinRTTTP(w.dep.Groups()[0].Plan.ID) < 0 {
		t.Error("MinRTTTP negative")
	}
}

func TestReplayValidation(t *testing.T) {
	w := newWorld(t, 4, 1, 2)
	if _, err := Run(w.eng, w.dep, w.cat, w.logs, Options{From: sim.Day, To: 0}); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := Run(w.eng, w.dep, w.cat, w.logs, Options{From: 0, To: sim.Day,
		TakeOver: &TakeOver{Tenant: "ghost", ClassID: "TPCH-Q1", Interval: time.Minute}}); err == nil {
		t.Error("take-over of undeployed tenant accepted")
	}
	if _, err := Run(w.eng, w.dep, w.cat, w.logs, Options{From: 0, To: sim.Day,
		TakeOver: &TakeOver{Tenant: w.logs[0].Tenant.ID, ClassID: "NOPE", Interval: time.Minute}}); err == nil {
		t.Error("take-over with unknown class accepted")
	}
}

// TestReplayTakeOverTriggersScaling is the §7.5 mechanism at miniature
// scale: hammering one tenant drives its group's RT-TTP below P; the scaler
// carves it out; RT-TTP recovers.
func TestReplayTakeOverTriggersScaling(t *testing.T) {
	w := newWorld(t, 30, 3, 1) // R=1 so a single overlap already violates
	// P is looser than the plan's 99.9% so that violations must accumulate
	// before detection — by then the hammered tenant's observed activity
	// dwarfs its groupmates' and identification singles it out (the paper's
	// 24 h window achieves the same separation at full scale).
	scfg := scaling.Config{
		P:             0.995,
		R:             1,
		CheckInterval: 10 * time.Minute,
		Window:        6 * time.Hour,
		Epoch:         10 * sim.Second,
		ParallelLoad:  true,
	}
	// The take-over only hurts if the victim shares a group: a hammered
	// singleton never exceeds R=1 active tenants.
	victim := ""
	for _, g := range w.dep.Groups() {
		if len(g.Plan.TenantIDs) >= 2 {
			victim = g.Plan.TenantIDs[0]
			break
		}
	}
	if victim == "" {
		t.Fatal("no multi-member group in the plan")
	}
	rep, err := Run(w.eng, w.dep, w.cat, w.logs, Options{
		From:          0,
		To:            2 * sim.Day,
		EnableScaling: true,
		ScalerConfig:  scfg,
		TakeOver: &TakeOver{
			Tenant:   victim,
			Start:    sim.Hour,
			Interval: 2 * time.Second,
			ClassID:  "TPCH-Q1",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ScalingEvents) == 0 {
		g, _ := w.dep.GroupFor(victim)
		t.Fatalf("no scaling events; min RT-TTP of %s = %v",
			g.Plan.ID, rep.MinRTTTP(g.Plan.ID))
	}
	ev := rep.ScalingEvents[0]
	if ev.Err != "" {
		t.Fatalf("scaling failed: %s", ev.Err)
	}
	found := false
	for _, id := range ev.OverActive {
		if id == victim {
			found = true
		}
	}
	if !found {
		t.Errorf("victim %s not identified; over-active = %v", victim, ev.OverActive)
	}
	// The group's RT-TTP dipped below P at some point.
	g, _ := w.dep.GroupFor(victim)
	if min := rep.MinRTTTP(g.Plan.ID); min >= scfg.P {
		t.Errorf("RT-TTP never dipped: min %v", min)
	}
}

// TestReplayFailureInjection: a node failure degrades the instance, the
// group's recovery controller detects it on a heartbeat and restores it
// (§4.4, Table 5.1), and bad specs surface as event errors.
func TestReplayFailureInjection(t *testing.T) {
	w := newWorld(t, 6, 2, 2)
	g := w.dep.Groups()[0]
	activeBefore := w.dep.Pool().CountState(cluster.Active)
	rep, err := Run(w.eng, w.dep, w.cat, w.logs, Options{
		From: 0,
		To:   sim.Day,
		Failures: []Failure{
			{At: 2 * sim.Hour, Group: g.Plan.ID, Instance: 0},
			{At: 3 * sim.Hour, Group: "TG-NOPE", Instance: 0},
			{At: 4 * sim.Hour, Group: g.Plan.ID, Instance: 99},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FailureEvents) != 3 {
		t.Fatalf("%d failure events", len(rep.FailureEvents))
	}
	ok := rep.FailureEvents[0]
	if ok.Err != "" {
		t.Fatalf("valid injection failed: %s", ok.Err)
	}
	inst := g.Instances[0]
	if ok.MPPDB != inst.ID() || ok.Node < 0 {
		t.Errorf("injection recorded MPPDB %q node %d", ok.MPPDB, ok.Node)
	}
	// Autonomous repair: detection within one heartbeat, then single-node
	// startup plus the Table 5.1 reload of the node's data share.
	share := inst.TenantDataGB() / float64(inst.Nodes())
	base := cluster.StartupTime(1) + cluster.LoadTime(share, 1, false)
	hb := recovery.DefaultConfig().HeartbeatInterval
	if got := ok.RepairedAt.Sub(ok.At); got < base || got > base+hb {
		t.Errorf("repair took %v, want within [%v, %v]", got, base, base+hb)
	}
	if inst.FailedNodes() != 0 || inst.SpeedFactor() != 1.0 {
		t.Error("instance still degraded after repair")
	}
	// One recovery lifecycle, detected after the failure, on the heartbeat.
	var rec *recovery.Event
	for i := range rep.RecoveryEvents {
		if rep.RecoveryEvents[i].MPPDB == inst.ID() {
			rec = &rep.RecoveryEvents[i]
		}
	}
	if rec == nil {
		t.Fatal("no recovery lifecycle recorded")
	}
	if !rec.Recovered() || rec.Detected < ok.At || rec.Detected > ok.At.Add(hb) {
		t.Errorf("recovery lifecycle %+v not detected within a heartbeat of %v", rec, ok.At)
	}
	if rec.FailedNode != ok.Node {
		t.Errorf("controller swapped node %d, injector failed %d", rec.FailedNode, ok.Node)
	}
	// The swapped-out node re-imaged during the drain: no leaks, full pool.
	if n := w.dep.Pool().CountState(cluster.Failed) + w.dep.Pool().CountState(cluster.Repairing); n != 0 {
		t.Errorf("%d nodes stuck failed/repairing", n)
	}
	if got := w.dep.Pool().CountState(cluster.Active); got != activeBefore {
		t.Errorf("active nodes %d, want %d", got, activeBefore)
	}
	if rep.FailureEvents[1].Err == "" || rep.FailureEvents[2].Err == "" {
		t.Error("bad failure specs did not surface errors")
	}
}

// canonicalRecords sorts a copy of recs by a total order on the observable
// fields, so record sets from differently ordered replays compare equal.
func canonicalRecords(recs []monitor.QueryRecord) []monitor.QueryRecord {
	out := append([]monitor.QueryRecord(nil), recs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Submit != b.Submit {
			return a.Submit < b.Submit
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		if a.Finish != b.Finish {
			return a.Finish < b.Finish
		}
		if a.Class.ID != b.Class.ID {
			return a.Class.ID < b.Class.ID
		}
		return a.MPPDB < b.MPPDB
	})
	return out
}

func recordsEqual(a, b monitor.QueryRecord) bool {
	return a.Tenant == b.Tenant && a.Class.ID == b.Class.ID &&
		a.Submit == b.Submit && a.Finish == b.Finish &&
		a.SLATarget == b.SLATarget && a.MPPDB == b.MPPDB
}

func TestReplayParallelBasics(t *testing.T) {
	w := newWorldMode(t, 10, 2, 3, true)
	if !w.dep.Sharded() {
		t.Fatal("deployment not sharded")
	}
	rep, err := RunParallel(w.dep, w.cat, w.logs, Options{From: 0, To: sim.Day})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted == 0 {
		t.Fatal("nothing replayed")
	}
	if rep.SubmitErrors != 0 {
		t.Errorf("%d submit errors", rep.SubmitErrors)
	}
	if len(rep.Records) == 0 {
		t.Fatal("no completed queries")
	}
	if got := rep.SLAAttainment(); got < 0.97 {
		t.Errorf("SLA attainment = %.4f, want ≥ 0.97", got)
	}
	for _, g := range w.dep.Groups() {
		if len(rep.Samples[g.Plan.ID]) == 0 {
			t.Errorf("no samples for group %s", g.Plan.ID)
		}
	}
	// The merged record stream is globally ordered by submit time.
	for i := 1; i < len(rep.Records); i++ {
		if rep.Records[i].Submit < rep.Records[i-1].Submit {
			t.Fatalf("records not merged by submit time at %d", i)
		}
	}
}

// TestReplayParallelMatchesShared: without scaling or failures every group's
// trajectory is independent of the others, so the per-group clock domains
// must produce exactly the records the single shared engine does.
func TestReplayParallelMatchesShared(t *testing.T) {
	shared := newWorldMode(t, 10, 2, 3, false)
	sharded := newWorldMode(t, 10, 2, 3, true)
	opts := Options{From: 0, To: sim.Day}
	repShared, err := Run(shared.eng, shared.dep, shared.cat, shared.logs, opts)
	if err != nil {
		t.Fatal(err)
	}
	repPar, err := RunParallel(sharded.dep, sharded.cat, sharded.logs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if repShared.Submitted != repPar.Submitted {
		t.Fatalf("submitted: shared %d, parallel %d", repShared.Submitted, repPar.Submitted)
	}
	a := canonicalRecords(repShared.Records)
	b := canonicalRecords(repPar.Records)
	if len(a) != len(b) {
		t.Fatalf("records: shared %d, parallel %d", len(a), len(b))
	}
	for i := range a {
		if !recordsEqual(a[i], b[i]) {
			t.Fatalf("record %d differs:\n shared   %+v\n parallel %+v", i, a[i], b[i])
		}
	}
}

// TestReplayParallelDeterministic: two identical sharded worlds replayed
// concurrently yield the same merged record sequence, submit counts and
// samples — goroutine scheduling must not leak into results.
func TestReplayParallelDeterministic(t *testing.T) {
	run := func() (*Report, *master.Deployment) {
		w := newWorldMode(t, 8, 2, 2, true)
		rep, err := RunParallel(w.dep, w.cat, w.logs, Options{From: 0, To: sim.Day})
		if err != nil {
			t.Fatal(err)
		}
		return rep, w.dep
	}
	rep1, dep1 := run()
	rep2, dep2 := run()
	if rep1.Submitted != rep2.Submitted || rep1.SubmitErrors != rep2.SubmitErrors {
		t.Fatalf("counters differ: (%d,%d) vs (%d,%d)",
			rep1.Submitted, rep1.SubmitErrors, rep2.Submitted, rep2.SubmitErrors)
	}
	if len(rep1.Records) != len(rep2.Records) {
		t.Fatalf("records: %d vs %d", len(rep1.Records), len(rep2.Records))
	}
	// Merged order itself must be reproducible, not just the multiset.
	for i := range rep1.Records {
		if !recordsEqual(rep1.Records[i], rep2.Records[i]) {
			t.Fatalf("record %d differs:\n run1 %+v\n run2 %+v", i, rep1.Records[i], rep2.Records[i])
		}
	}
	for _, g := range dep1.Groups() {
		if len(rep1.Samples[g.Plan.ID]) != len(rep2.Samples[g.Plan.ID]) {
			t.Errorf("sample count differs for %s", g.Plan.ID)
		}
	}
	_ = dep2
}

// TestReplayModeValidation: each driver rejects the other's deployment mode.
func TestReplayModeValidation(t *testing.T) {
	sharded := newWorldMode(t, 4, 1, 2, true)
	if _, err := Run(sharded.eng, sharded.dep, sharded.cat, sharded.logs,
		Options{From: 0, To: sim.Day}); err == nil {
		t.Error("Run accepted a sharded deployment")
	}
	shared := newWorldMode(t, 4, 1, 2, false)
	if _, err := RunParallel(shared.dep, shared.cat, shared.logs,
		Options{From: 0, To: sim.Day}); err == nil {
		t.Error("RunParallel accepted a shared deployment")
	}
	// Parallel pre-validation mirrors the shared driver's.
	if _, err := RunParallel(sharded.dep, sharded.cat, sharded.logs, Options{From: sim.Day, To: 0}); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := RunParallel(sharded.dep, sharded.cat, sharded.logs, Options{From: 0, To: sim.Day,
		TakeOver: &TakeOver{Tenant: "ghost", ClassID: "TPCH-Q1", Interval: time.Minute}}); err == nil {
		t.Error("take-over of undeployed tenant accepted")
	}
}

// TestReplayParallelFailureInjection: failures are partitioned to their
// group's domain; bad specs still surface as event errors in the merged
// report.
func TestReplayParallelFailureInjection(t *testing.T) {
	w := newWorldMode(t, 6, 2, 2, true)
	g := w.dep.Groups()[0]
	rep, err := RunParallel(w.dep, w.cat, w.logs, Options{
		From: 0,
		To:   sim.Day,
		Failures: []Failure{
			{At: 2 * sim.Hour, Group: g.Plan.ID, Instance: 0},
			{At: 3 * sim.Hour, Group: "TG-NOPE", Instance: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FailureEvents) != 2 {
		t.Fatalf("%d failure events", len(rep.FailureEvents))
	}
	var okEv, badEv *FailureEvent
	for i := range rep.FailureEvents {
		if rep.FailureEvents[i].Group == g.Plan.ID {
			okEv = &rep.FailureEvents[i]
		} else {
			badEv = &rep.FailureEvents[i]
		}
	}
	if okEv == nil || badEv == nil {
		t.Fatalf("events not partitioned: %+v", rep.FailureEvents)
	}
	if okEv.Err != "" {
		t.Fatalf("valid injection failed: %s", okEv.Err)
	}
	inst := g.Instances[0]
	share := inst.TenantDataGB() / float64(inst.Nodes())
	base := cluster.StartupTime(1) + cluster.LoadTime(share, 1, false)
	hb := recovery.DefaultConfig().HeartbeatInterval
	if got := okEv.RepairedAt.Sub(okEv.At); got < base || got > base+hb {
		t.Errorf("repair took %v, want within [%v, %v]", got, base, base+hb)
	}
	if len(rep.RecoveryEvents) == 0 {
		t.Error("no recovery lifecycles in merged report")
	}
	if badEv.Err == "" {
		t.Error("unknown group did not surface an error")
	}
}
