package cluster

import "testing"

func TestPoolAcquireRelease(t *testing.T) {
	p := NewPool(10)
	if p.Size() != 10 || p.CountState(Hibernated) != 10 {
		t.Fatalf("fresh pool wrong: size=%d hib=%d", p.Size(), p.CountState(Hibernated))
	}
	nodes, err := p.Acquire("mppdb-0", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 {
		t.Fatalf("acquired %d nodes, want 4", len(nodes))
	}
	for _, nd := range nodes {
		if nd.State != Active || nd.Owner != "mppdb-0" {
			t.Errorf("node %d: state=%v owner=%q", nd.ID, nd.State, nd.Owner)
		}
	}
	if p.CountState(Active) != 4 || p.CountState(Hibernated) != 6 {
		t.Errorf("after acquire: active=%d hib=%d", p.CountState(Active), p.CountState(Hibernated))
	}
	if n := p.Release("mppdb-0"); n != 4 {
		t.Errorf("released %d, want 4", n)
	}
	if p.CountState(Hibernated) != 10 {
		t.Errorf("after release: hib=%d, want 10", p.CountState(Hibernated))
	}
}

func TestPoolAcquireExhaustion(t *testing.T) {
	p := NewPool(3)
	if _, err := p.Acquire("a", 5); err == nil {
		t.Fatal("over-acquire succeeded")
	}
	// Failure must not leak partial acquisitions.
	if p.CountState(Active) != 0 {
		t.Errorf("partial acquire leaked: %d active", p.CountState(Active))
	}
	if _, err := p.Acquire("a", 0); err == nil {
		t.Error("zero-node acquire accepted")
	}
}

func TestPoolFailAndReplace(t *testing.T) {
	p := NewPool(5)
	nodes, _ := p.Acquire("db", 3)
	owner, err := p.Fail(nodes[1].ID)
	if err != nil || owner != "db" {
		t.Fatalf("Fail: owner=%q err=%v", owner, err)
	}
	if p.CountState(Failed) != 1 {
		t.Errorf("failed count = %d", p.CountState(Failed))
	}
	repl, err := p.Replace(nodes[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	if repl.Owner != "db" || repl.State != Active {
		t.Errorf("replacement: %+v", repl)
	}
	// The failed node is carted away for re-imaging, not instantly recycled.
	if p.CountState(Failed) != 0 || p.CountState(Active) != 3 || p.CountState(Repairing) != 1 {
		t.Errorf("after replace: failed=%d active=%d repairing=%d",
			p.CountState(Failed), p.CountState(Active), p.CountState(Repairing))
	}
	// Only Reimage returns it to the hibernated free list.
	if err := p.Reimage(nodes[1].ID); err != nil {
		t.Fatal(err)
	}
	if p.CountState(Repairing) != 0 || p.CountState(Hibernated) != 2 {
		t.Errorf("after reimage: repairing=%d hib=%d",
			p.CountState(Repairing), p.CountState(Hibernated))
	}
	// Error paths.
	if _, err := p.Fail(99); err == nil {
		t.Error("failing unknown node accepted")
	}
	if _, err := p.Fail(repl.ID); err != nil {
		t.Error("failing active node rejected")
	}
	if _, err := p.Replace(nodes[0].ID); err == nil {
		t.Error("replacing non-failed node accepted")
	}
	if _, err := p.Replace(-1); err == nil {
		t.Error("replacing unknown node accepted")
	}
	if err := p.Reimage(nodes[0].ID); err == nil {
		t.Error("re-imaging non-repairing node accepted")
	}
	if err := p.Reimage(42); err == nil {
		t.Error("re-imaging unknown node accepted")
	}
}

func TestPoolReplaceExhaustion(t *testing.T) {
	p := NewPool(2)
	nodes, _ := p.Acquire("db", 2)
	if _, err := p.Fail(nodes[0].ID); err != nil {
		t.Fatal(err)
	}
	// No hibernated node is free: Replace must fail without side effects —
	// the failed node stays Failed (not consumed into Repairing).
	if _, err := p.Replace(nodes[0].ID); err == nil {
		t.Fatal("replace succeeded on an exhausted pool")
	}
	if p.CountState(Failed) != 1 || p.CountState(Repairing) != 0 {
		t.Errorf("exhausted replace left failed=%d repairing=%d",
			p.CountState(Failed), p.CountState(Repairing))
	}
}

func TestFailedNodesOfAndFailAny(t *testing.T) {
	p := NewPool(8)
	p.Acquire("a", 3)
	p.Acquire("b", 2)
	if got := p.FailedNodesOf("a"); len(got) != 0 {
		t.Errorf("fresh FailedNodesOf = %v", got)
	}
	id, err := p.FailAny("a")
	if err != nil || id != 0 {
		t.Fatalf("FailAny(a) = %d, %v; want lowest active ID 0", id, err)
	}
	id2, err := p.FailAny("a")
	if err != nil || id2 != 1 {
		t.Fatalf("second FailAny(a) = %d, %v; want 1", id2, err)
	}
	if got := p.FailedNodesOf("a"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("FailedNodesOf(a) = %v, want [0 1]", got)
	}
	if got := p.FailedNodesOf("b"); len(got) != 0 {
		t.Errorf("FailedNodesOf(b) = %v, want none", got)
	}
	if _, err := p.FailAny("nobody"); err == nil {
		t.Error("FailAny of unknown owner accepted")
	}
	// Exhaust a's active nodes, then FailAny must error.
	if _, err := p.FailAny("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.FailAny("a"); err == nil {
		t.Error("FailAny with no active nodes accepted")
	}
}

func TestReimageTime(t *testing.T) {
	if ReimageTime() <= 0 {
		t.Error("ReimageTime not positive")
	}
	// Re-imaging is an offline background chore; it must not be cheaper than
	// starting the single replacement node, or the state would be pointless.
	if ReimageTime() < StartupTime(1) {
		t.Error("ReimageTime cheaper than single-node startup")
	}
}

func TestOwners(t *testing.T) {
	p := NewPool(10)
	p.Acquire("b", 2)
	p.Acquire("a", 2)
	owners := p.Owners()
	if len(owners) != 2 || owners[0] != "a" || owners[1] != "b" {
		t.Errorf("Owners = %v, want [a b]", owners)
	}
}

// TestStartupTimeMatchesTable51 pins the provisioning model to the paper's
// Table 5.1 "Node Starting & MPPDB Initialization" column within 12%.
func TestStartupTimeMatchesTable51(t *testing.T) {
	paper := map[int]float64{2: 462, 4: 850, 6: 1248, 8: 1504, 10: 1779}
	for n, want := range paper {
		got := StartupTime(n).Seconds()
		if rel := abs(got-want) / want; rel > 0.12 {
			t.Errorf("StartupTime(%d) = %.0fs, paper %.0fs (%.0f%% off)", n, got, want, rel*100)
		}
	}
	if StartupTime(0) != 0 {
		t.Error("StartupTime(0) != 0")
	}
}

// TestLoadTimeMatchesTable51 pins the serial bulk-loading model to the
// paper's Table 5.1 "Bulk Loading" column within 12% (1 TB = 1024 GB there).
func TestLoadTimeMatchesTable51(t *testing.T) {
	paper := []struct {
		gb   float64
		want float64
	}{
		{200, 10172}, {400, 20302}, {600, 30121}, {800, 40853}, {1024, 50446},
	}
	for _, c := range paper {
		got := LoadTime(c.gb, 2, false).Seconds()
		if rel := abs(got-c.want) / c.want; rel > 0.12 {
			t.Errorf("LoadTime(%vGB) = %.0fs, paper %.0fs (%.0f%% off)", c.gb, got, c.want, rel*100)
		}
	}
	if LoadTime(0, 4, true) != 0 {
		t.Error("LoadTime(0) != 0")
	}
}

// TestParallelLoadMatchesFig77 reproduces the elastic-scaling load in §7.5:
// a 4-node tenant's 400 GB loads in about 5000 s with parallel loading.
func TestParallelLoadMatchesFig77(t *testing.T) {
	got := LoadTime(400, 4, true).Seconds()
	if got < 4000 || got > 6000 {
		t.Errorf("parallel LoadTime(400GB, 4 nodes) = %.0fs, paper ≈5000s", got)
	}
	// Parallel loading must beat serial loading on multi-node instances.
	if LoadTime(400, 4, true) >= LoadTime(400, 4, false) {
		t.Error("parallel load not faster than serial")
	}
	// ... and be identical on a single node.
	if LoadTime(400, 1, true) != LoadTime(400, 1, false) {
		t.Error("single-node parallel load differs from serial")
	}
}

func TestProvisionTime(t *testing.T) {
	want := StartupTime(4) + LoadTime(400, 4, true)
	if got := ProvisionTime(400, 4, true); got != want {
		t.Errorf("ProvisionTime = %v, want %v", got, want)
	}
	// Load time dominates startup for real tenant sizes (§5.1's motivation
	// for lightweight scaling).
	if LoadTime(1024, 10, false) < 10*StartupTime(10) {
		t.Error("serial load should dominate startup by an order of magnitude")
	}
}

func TestNodeStateString(t *testing.T) {
	if Hibernated.String() != "hibernated" || Active.String() != "active" ||
		Failed.String() != "failed" || Repairing.String() != "repairing" {
		t.Error("state names wrong")
	}
	if NodeState(9).String() == "" {
		t.Error("unknown state empty")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
