// Package cluster models the shared hardware infrastructure Thrifty
// consolidates tenants onto: a pool of identical machine nodes (the thesis
// assumes homogeneous configurations, §3) with a provisioning model
// calibrated to the paper's Table 5.1 measurements.
//
// Two operations dominate elastic scaling cost (§5.1): starting machine
// nodes + initializing an MPPDB instance on them, and bulk-loading tenant
// data. Both are modeled here so that the Deployment Master and the elastic
// scaler pay realistic virtual-time costs.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// NodeState is the lifecycle state of one machine node.
type NodeState int

const (
	// Hibernated nodes are switched off; they cost nothing but must be
	// started before use (§3c: the Deployment Master "switches
	// off/hibernates nodes that are not listed in the deployment plan").
	Hibernated NodeState = iota
	// Active nodes are running as part of some MPPDB instance.
	Active
	// Failed nodes have crashed and await replacement.
	Failed
	// Repairing nodes were swapped out of their instance and are being
	// carted away and re-imaged (§4.4); they become Hibernated — and thus
	// acquirable again — only after ReimageTime.
	Repairing
)

// String returns the state name.
func (s NodeState) String() string {
	switch s {
	case Hibernated:
		return "hibernated"
	case Active:
		return "active"
	case Failed:
		return "failed"
	case Repairing:
		return "repairing"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// Node is one machine node in the pool.
type Node struct {
	ID    int
	State NodeState
	// Owner is the ID of the MPPDB instance the node belongs to, or ""
	// when unassigned.
	Owner string
	// Domain is the failure domain (rack/zone) the node lives in. Nodes in
	// one domain share power and network uplinks, so they fail together;
	// correlated-failure resilience is placing an instance group's replicas
	// across ≥2 domains.
	Domain int
}

// Pool is the cluster-wide node inventory. It is safe for concurrent use:
// in a sharded deployment the per-group elastic scalers and the failure
// injector draw replacement and scale-up nodes from one shared pool while
// running on different clock domains.
type Pool struct {
	mu      sync.Mutex
	nodes   []*Node
	domains int
	down    map[int]bool // failure domains currently offline
}

// NewPool creates a pool of n hibernated nodes in a single failure domain —
// the pre-domain layout every byte-deterministic replay pins.
func NewPool(n int) *Pool { return NewPoolDomains(n, 1) }

// NewPoolDomains creates a pool of n hibernated nodes striped over d failure
// domains as contiguous equal blocks (rack-style: consecutive node IDs share
// a rack). d is clamped to [1, n].
func NewPoolDomains(n, d int) *Pool {
	if d < 1 {
		d = 1
	}
	if d > n && n > 0 {
		d = n
	}
	p := &Pool{nodes: make([]*Node, n), domains: d, down: make(map[int]bool)}
	for i := range p.nodes {
		p.nodes[i] = &Node{ID: i, State: Hibernated, Domain: i * d / n}
	}
	return p
}

// Size returns the total number of nodes in the pool.
func (p *Pool) Size() int { return len(p.nodes) }

// Domains returns the number of failure domains the pool is striped over.
func (p *Pool) Domains() int { return p.domains }

// DomainOf returns the failure domain of the node with the given ID, or -1
// for an unknown ID.
func (p *Pool) DomainOf(id int) int {
	if id < 0 || id >= len(p.nodes) {
		return -1
	}
	return p.nodes[id].Domain
}

// CountState returns the number of nodes in the given state.
func (p *Pool) CountState(s NodeState) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, nd := range p.nodes {
		if nd.State == s {
			n++
		}
	}
	return n
}

// Acquire marks n hibernated nodes Active on behalf of owner and returns
// them. It fails without side effects when fewer than n nodes are free.
func (p *Pool) Acquire(owner string, n int) ([]*Node, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acquireLocked(owner, n)
}

// acquireLocked is the shared acquisition core. It collects candidates
// first and mutates only once n are found, so a failed acquire — like a
// failed Replace — leaves the pool untouched (no partial acquisition).
// Nodes in a down failure domain are never handed out.
func (p *Pool) acquireLocked(owner string, n int) ([]*Node, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: acquire of %d nodes", n)
	}
	var free []*Node
	for _, nd := range p.nodes {
		if nd.State == Hibernated && !p.down[nd.Domain] {
			free = append(free, nd)
			if len(free) == n {
				break
			}
		}
	}
	if len(free) < n {
		return nil, fmt.Errorf("cluster: need %d nodes, only %d hibernated (pool %d)", n, len(free), len(p.nodes))
	}
	for _, nd := range free {
		nd.State = Active
		nd.Owner = owner
	}
	return free, nil
}

// AcquireSpread marks n hibernated nodes Active for owner with a spread
// preference: it tries to place all n inside one up failure domain that is
// not in avoid (the domains the owner's sibling instances already occupy),
// choosing the domain with the most free nodes (ties to the lowest index).
// When no avoided-free domain can host n whole, it falls back to any single
// up domain, and finally to a plain cross-domain acquire — capacity beats
// spread purity. Like Acquire, a failure leaves no side effects. It returns
// the nodes plus the sorted distinct domains they landed in.
func (p *Pool) AcquireSpread(owner string, n int, avoid []int) ([]*Node, []int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n <= 0 {
		return nil, nil, fmt.Errorf("cluster: acquire of %d nodes", n)
	}
	avoided := make(map[int]bool, len(avoid))
	for _, d := range avoid {
		avoided[d] = true
	}
	freeBy := make([]int, p.domains)
	for _, nd := range p.nodes {
		if nd.State == Hibernated && !p.down[nd.Domain] {
			freeBy[nd.Domain]++
		}
	}
	pick := func(skipAvoided bool) int {
		best, bestFree := -1, 0
		for d := 0; d < p.domains; d++ {
			if skipAvoided && avoided[d] {
				continue
			}
			if freeBy[d] >= n && freeBy[d] > bestFree {
				best, bestFree = d, freeBy[d]
			}
		}
		return best
	}
	dom := pick(true)
	if dom < 0 {
		dom = pick(false)
	}
	if dom < 0 {
		// No single domain fits; spread the instance itself across domains
		// rather than refuse (the fallback keeps deployments working on a
		// fragmented pool).
		nodes, err := p.acquireLocked(owner, n)
		if err != nil {
			return nil, nil, err
		}
		return nodes, distinctDomains(nodes), nil
	}
	free := make([]*Node, 0, n)
	for _, nd := range p.nodes {
		if nd.Domain == dom && nd.State == Hibernated {
			free = append(free, nd)
			if len(free) == n {
				break
			}
		}
	}
	for _, nd := range free {
		nd.State = Active
		nd.Owner = owner
	}
	return free, []int{dom}, nil
}

func distinctDomains(nodes []*Node) []int {
	seen := map[int]bool{}
	for _, nd := range nodes {
		seen[nd.Domain] = true
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Release returns all of owner's nodes to the hibernated state and reports
// how many were released.
func (p *Pool) Release(owner string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, nd := range p.nodes {
		if nd.Owner == owner {
			nd.State = Hibernated
			nd.Owner = ""
			n++
		}
	}
	return n
}

// Fail marks the node with the given ID failed. It returns the node's owner
// so the caller can notify the hosting MPPDB.
func (p *Pool) Fail(id int) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= len(p.nodes) {
		return "", fmt.Errorf("cluster: no node %d", id)
	}
	nd := p.nodes[id]
	if nd.State != Active {
		return "", fmt.Errorf("cluster: node %d is %v, cannot fail", id, nd.State)
	}
	nd.State = Failed
	return nd.Owner, nil
}

// Replace swaps a failed node for a fresh hibernated one on behalf of the
// same owner (§4.4: "Thrifty will replace a failed node by starting a new
// node upon receiving node failure notification"). The failed node enters
// the Repairing state — carted away and re-imaged — and only re-joins the
// hibernated free list when the caller invokes Reimage after ReimageTime.
// Replace fails without side effects when no hibernated node is free.
func (p *Pool) Replace(id int) (*Node, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= len(p.nodes) {
		return nil, fmt.Errorf("cluster: no node %d", id)
	}
	failed := p.nodes[id]
	if failed.State != Failed {
		return nil, fmt.Errorf("cluster: node %d is %v, not failed", id, failed.State)
	}
	repl, err := p.acquireLocked(failed.Owner, 1)
	if err != nil {
		return nil, err
	}
	failed.State = Repairing
	failed.Owner = ""
	return repl[0], nil
}

// Reimage completes a repairing node's re-image: it becomes Hibernated and
// acquirable again. Callers schedule it ReimageTime after Replace.
func (p *Pool) Reimage(id int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= len(p.nodes) {
		return fmt.Errorf("cluster: no node %d", id)
	}
	nd := p.nodes[id]
	if nd.State != Repairing {
		return fmt.Errorf("cluster: node %d is %v, not repairing", id, nd.State)
	}
	nd.State = Hibernated
	return nil
}

// FailedNodesOf returns the IDs of owner's failed nodes, ascending.
func (p *Pool) FailedNodesOf(owner string) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []int
	for _, nd := range p.nodes {
		if nd.State == Failed && nd.Owner == owner {
			out = append(out, nd.ID)
		}
	}
	return out
}

// FailAny fails owner's lowest-ID active node and returns its ID — the
// pool-side half of a node-failure injection (the instance side is
// mppdb.FailNode).
func (p *Pool) FailAny(owner string) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, nd := range p.nodes {
		if nd.State == Active && nd.Owner == owner {
			nd.State = Failed
			return nd.ID, nil
		}
	}
	return -1, fmt.Errorf("cluster: owner %q has no active node", owner)
}

// Casualty is one node a domain outage took down: the node's ID and the
// MPPDB instance that owned it (so the injector/operator can propagate the
// failure to the instance).
type Casualty struct {
	NodeID int
	Owner  string
}

// FailDomain takes a whole failure domain offline: every Active node in the
// domain goes Failed (returned as casualties, ascending node ID), hibernated
// and repairing nodes stay in their states but become unacquirable until
// RestoreDomain. Failing an already-down domain is an error.
func (p *Pool) FailDomain(d int) ([]Casualty, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d < 0 || d >= p.domains {
		return nil, fmt.Errorf("cluster: no domain %d (pool has %d)", d, p.domains)
	}
	if p.down[d] {
		return nil, fmt.Errorf("cluster: domain %d already down", d)
	}
	p.down[d] = true
	var out []Casualty
	for _, nd := range p.nodes {
		if nd.Domain == d && nd.State == Active {
			nd.State = Failed
			out = append(out, Casualty{NodeID: nd.ID, Owner: nd.Owner})
		}
	}
	return out, nil
}

// RestoreDomain brings a failed domain back: its hibernated nodes become
// acquirable again. Nodes the outage marked Failed stay Failed — a crashed
// node is re-imaged through the normal Replace/Reimage cycle even after its
// rack returns.
func (p *Pool) RestoreDomain(d int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d < 0 || d >= p.domains {
		return fmt.Errorf("cluster: no domain %d (pool has %d)", d, p.domains)
	}
	if !p.down[d] {
		return fmt.Errorf("cluster: domain %d is not down", d)
	}
	delete(p.down, d)
	return nil
}

// DownDomains returns the currently offline failure domains, ascending.
func (p *Pool) DownDomains() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.down))
	for d := range p.down {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Free returns the number of nodes acquirable right now: hibernated and not
// in a down domain.
func (p *Pool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.freeLocked()
}

func (p *Pool) freeLocked() int {
	n := 0
	for _, nd := range p.nodes {
		if nd.State == Hibernated && !p.down[nd.Domain] {
			n++
		}
	}
	return n
}

// OwnerDomains returns the sorted distinct failure domains of owner's
// active nodes.
func (p *Pool) OwnerDomains(owner string) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[int]bool{}
	for _, nd := range p.nodes {
		if nd.State == Active && nd.Owner == owner {
			seen[nd.Domain] = true
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// ActiveNodesOf returns the IDs of owner's active nodes, ascending.
func (p *Pool) ActiveNodesOf(owner string) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []int
	for _, nd := range p.nodes {
		if nd.State == Active && nd.Owner == owner {
			out = append(out, nd.ID)
		}
	}
	return out
}

// CompleteRespread atomically flips a live cross-domain instance move: the
// nodes tempOwner staged in the target domain (all of which must still be
// Active) are adopted under owner, and owner's previous active nodes are
// released back to the hibernated free list. It returns the released node
// IDs. On any precondition failure nothing changes — the caller aborts the
// move by releasing tempOwner instead.
func (p *Pool) CompleteRespread(owner, tempOwner string) ([]int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	staged := 0
	for _, nd := range p.nodes {
		if nd.Owner != tempOwner {
			continue
		}
		if nd.State != Active {
			return nil, fmt.Errorf("cluster: staged node %d is %v, not active", nd.ID, nd.State)
		}
		staged++
	}
	if staged == 0 {
		return nil, fmt.Errorf("cluster: no staged nodes for %q", tempOwner)
	}
	var released []int
	for _, nd := range p.nodes {
		switch {
		case nd.Owner == tempOwner:
			nd.Owner = owner
		case nd.Owner == owner && nd.State == Active:
			nd.State = Hibernated
			nd.Owner = ""
			released = append(released, nd.ID)
		}
	}
	return released, nil
}

// OwnerPoolState summarizes one instance's pool footprint.
type OwnerPoolState struct {
	Owner   string `json:"owner"`
	Active  int    `json:"active"`
	Failed  int    `json:"failed"`
	Domains []int  `json:"domains"`
}

// DomainPoolState summarizes one failure domain.
type DomainPoolState struct {
	Domain     int  `json:"domain"`
	Down       bool `json:"down"`
	Hibernated int  `json:"hibernated"`
	Active     int  `json:"active"`
	Failed     int  `json:"failed"`
	Repairing  int  `json:"repairing"`
}

// PoolSnapshot is a consistent point-in-time view of the pool for
// observability endpoints.
type PoolSnapshot struct {
	Total    int               `json:"total"`
	Domains  int               `json:"domains"`
	Down     []int             `json:"down_domains,omitempty"`
	ByState  map[string]int    `json:"by_state"`
	ByDomain []DomainPoolState `json:"by_domain"`
	ByOwner  []OwnerPoolState  `json:"by_owner"`
}

// Snapshot returns the pool's current state: totals by node state, the
// per-domain breakdown (with down markers), and the per-owner footprint
// sorted by owner ID.
func (p *Pool) Snapshot() PoolSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := PoolSnapshot{
		Total:    len(p.nodes),
		Domains:  p.domains,
		ByState:  map[string]int{},
		ByDomain: make([]DomainPoolState, p.domains),
	}
	for d := range snap.ByDomain {
		snap.ByDomain[d] = DomainPoolState{Domain: d, Down: p.down[d]}
	}
	for d := range p.down {
		snap.Down = append(snap.Down, d)
	}
	sort.Ints(snap.Down)
	owners := map[string]*OwnerPoolState{}
	ownerDoms := map[string]map[int]bool{}
	for _, nd := range p.nodes {
		snap.ByState[nd.State.String()]++
		ds := &snap.ByDomain[nd.Domain]
		switch nd.State {
		case Hibernated:
			ds.Hibernated++
		case Active:
			ds.Active++
		case Failed:
			ds.Failed++
		case Repairing:
			ds.Repairing++
		}
		if nd.Owner == "" {
			continue
		}
		o := owners[nd.Owner]
		if o == nil {
			o = &OwnerPoolState{Owner: nd.Owner}
			owners[nd.Owner] = o
			ownerDoms[nd.Owner] = map[int]bool{}
		}
		switch nd.State {
		case Active:
			o.Active++
			ownerDoms[nd.Owner][nd.Domain] = true
		case Failed:
			o.Failed++
		}
	}
	names := make([]string, 0, len(owners))
	for name := range owners {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := owners[name]
		for d := range ownerDoms[name] {
			o.Domains = append(o.Domains, d)
		}
		sort.Ints(o.Domains)
		snap.ByOwner = append(snap.ByOwner, *o)
	}
	return snap
}

// Owners returns the distinct owner IDs with at least one active node,
// sorted for deterministic iteration.
func (p *Pool) Owners() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[string]bool{}
	for _, nd := range p.nodes {
		if nd.State == Active && nd.Owner != "" {
			seen[nd.Owner] = true
		}
	}
	out := make([]string, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Provisioning model, calibrated to Table 5.1.
//
// Node starting + MPPDB initialization was measured at 462 s for 2 nodes up
// to 1779 s for 10 nodes; a least-squares fit gives ~182 s fixed + ~164 s per
// node. Bulk loading ran at ≈1.2 GB/min (≈50.5 s/GB) regardless of instance
// size; with the MPPDB's parallel-loading option the rate scales with the
// node count (the thesis' Fig 7.7 scaling event loads a 4-node tenant's
// 400 GB in ≈5000 s, i.e. 50 s/GB spread over 4 loader streams).
const (
	startupFixed   = 182 * time.Second
	startupPerNode = 164 * time.Second
	loadSecPerGB   = 50.4
	loadFixed      = 60 * time.Second
	// reimageTime is how long a swapped-out node spends being carted away
	// and re-imaged before it can hibernate in the free list again. The
	// thesis gives no measurement; re-writing a machine image is of the same
	// order as starting + initializing one node, so we model it at twice the
	// single-node startup cost.
	reimageTime = 2 * (startupFixed + startupPerNode)
)

// ReimageTime returns the modeled time to re-image a swapped-out node before
// it becomes acquirable again.
func ReimageTime() time.Duration { return reimageTime }

// StartupTime returns the modeled time to start n machine nodes and
// initialize an MPPDB instance across them.
func StartupTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return startupFixed + time.Duration(n)*startupPerNode
}

// LoadTime returns the modeled time to bulk load dataGB of tenant data into
// an n-node MPPDB. With parallel loading the per-GB cost is divided across
// the nodes; without it, the loader is a single stream at ≈1.2 GB/min.
func LoadTime(dataGB float64, n int, parallel bool) time.Duration {
	if dataGB <= 0 {
		return 0
	}
	sec := loadSecPerGB * dataGB
	if parallel && n > 1 {
		sec /= float64(n)
	}
	return loadFixed + time.Duration(sec*float64(time.Second))
}

// ProvisionTime returns the full time to bring up an n-node MPPDB holding
// dataGB: startup plus bulk load.
func ProvisionTime(dataGB float64, n int, parallel bool) time.Duration {
	return StartupTime(n) + LoadTime(dataGB, n, parallel)
}
