// Package cluster models the shared hardware infrastructure Thrifty
// consolidates tenants onto: a pool of identical machine nodes (the thesis
// assumes homogeneous configurations, §3) with a provisioning model
// calibrated to the paper's Table 5.1 measurements.
//
// Two operations dominate elastic scaling cost (§5.1): starting machine
// nodes + initializing an MPPDB instance on them, and bulk-loading tenant
// data. Both are modeled here so that the Deployment Master and the elastic
// scaler pay realistic virtual-time costs.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// NodeState is the lifecycle state of one machine node.
type NodeState int

const (
	// Hibernated nodes are switched off; they cost nothing but must be
	// started before use (§3c: the Deployment Master "switches
	// off/hibernates nodes that are not listed in the deployment plan").
	Hibernated NodeState = iota
	// Active nodes are running as part of some MPPDB instance.
	Active
	// Failed nodes have crashed and await replacement.
	Failed
	// Repairing nodes were swapped out of their instance and are being
	// carted away and re-imaged (§4.4); they become Hibernated — and thus
	// acquirable again — only after ReimageTime.
	Repairing
)

// String returns the state name.
func (s NodeState) String() string {
	switch s {
	case Hibernated:
		return "hibernated"
	case Active:
		return "active"
	case Failed:
		return "failed"
	case Repairing:
		return "repairing"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// Node is one machine node in the pool.
type Node struct {
	ID    int
	State NodeState
	// Owner is the ID of the MPPDB instance the node belongs to, or ""
	// when unassigned.
	Owner string
}

// Pool is the cluster-wide node inventory. It is safe for concurrent use:
// in a sharded deployment the per-group elastic scalers and the failure
// injector draw replacement and scale-up nodes from one shared pool while
// running on different clock domains.
type Pool struct {
	mu    sync.Mutex
	nodes []*Node
}

// NewPool creates a pool of n hibernated nodes.
func NewPool(n int) *Pool {
	p := &Pool{nodes: make([]*Node, n)}
	for i := range p.nodes {
		p.nodes[i] = &Node{ID: i, State: Hibernated}
	}
	return p
}

// Size returns the total number of nodes in the pool.
func (p *Pool) Size() int { return len(p.nodes) }

// CountState returns the number of nodes in the given state.
func (p *Pool) CountState(s NodeState) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, nd := range p.nodes {
		if nd.State == s {
			n++
		}
	}
	return n
}

// Acquire marks n hibernated nodes Active on behalf of owner and returns
// them. It fails without side effects when fewer than n nodes are free.
func (p *Pool) Acquire(owner string, n int) ([]*Node, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acquireLocked(owner, n)
}

func (p *Pool) acquireLocked(owner string, n int) ([]*Node, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: acquire of %d nodes", n)
	}
	var free []*Node
	for _, nd := range p.nodes {
		if nd.State == Hibernated {
			free = append(free, nd)
			if len(free) == n {
				break
			}
		}
	}
	if len(free) < n {
		return nil, fmt.Errorf("cluster: need %d nodes, only %d hibernated (pool %d)", n, len(free), len(p.nodes))
	}
	for _, nd := range free {
		nd.State = Active
		nd.Owner = owner
	}
	return free, nil
}

// Release returns all of owner's nodes to the hibernated state and reports
// how many were released.
func (p *Pool) Release(owner string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, nd := range p.nodes {
		if nd.Owner == owner {
			nd.State = Hibernated
			nd.Owner = ""
			n++
		}
	}
	return n
}

// Fail marks the node with the given ID failed. It returns the node's owner
// so the caller can notify the hosting MPPDB.
func (p *Pool) Fail(id int) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= len(p.nodes) {
		return "", fmt.Errorf("cluster: no node %d", id)
	}
	nd := p.nodes[id]
	if nd.State != Active {
		return "", fmt.Errorf("cluster: node %d is %v, cannot fail", id, nd.State)
	}
	nd.State = Failed
	return nd.Owner, nil
}

// Replace swaps a failed node for a fresh hibernated one on behalf of the
// same owner (§4.4: "Thrifty will replace a failed node by starting a new
// node upon receiving node failure notification"). The failed node enters
// the Repairing state — carted away and re-imaged — and only re-joins the
// hibernated free list when the caller invokes Reimage after ReimageTime.
// Replace fails without side effects when no hibernated node is free.
func (p *Pool) Replace(id int) (*Node, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= len(p.nodes) {
		return nil, fmt.Errorf("cluster: no node %d", id)
	}
	failed := p.nodes[id]
	if failed.State != Failed {
		return nil, fmt.Errorf("cluster: node %d is %v, not failed", id, failed.State)
	}
	repl, err := p.acquireLocked(failed.Owner, 1)
	if err != nil {
		return nil, err
	}
	failed.State = Repairing
	failed.Owner = ""
	return repl[0], nil
}

// Reimage completes a repairing node's re-image: it becomes Hibernated and
// acquirable again. Callers schedule it ReimageTime after Replace.
func (p *Pool) Reimage(id int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= len(p.nodes) {
		return fmt.Errorf("cluster: no node %d", id)
	}
	nd := p.nodes[id]
	if nd.State != Repairing {
		return fmt.Errorf("cluster: node %d is %v, not repairing", id, nd.State)
	}
	nd.State = Hibernated
	return nil
}

// FailedNodesOf returns the IDs of owner's failed nodes, ascending.
func (p *Pool) FailedNodesOf(owner string) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []int
	for _, nd := range p.nodes {
		if nd.State == Failed && nd.Owner == owner {
			out = append(out, nd.ID)
		}
	}
	return out
}

// FailAny fails owner's lowest-ID active node and returns its ID — the
// pool-side half of a node-failure injection (the instance side is
// mppdb.FailNode).
func (p *Pool) FailAny(owner string) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, nd := range p.nodes {
		if nd.State == Active && nd.Owner == owner {
			nd.State = Failed
			return nd.ID, nil
		}
	}
	return -1, fmt.Errorf("cluster: owner %q has no active node", owner)
}

// Owners returns the distinct owner IDs with at least one active node,
// sorted for deterministic iteration.
func (p *Pool) Owners() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[string]bool{}
	for _, nd := range p.nodes {
		if nd.State == Active && nd.Owner != "" {
			seen[nd.Owner] = true
		}
	}
	out := make([]string, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Provisioning model, calibrated to Table 5.1.
//
// Node starting + MPPDB initialization was measured at 462 s for 2 nodes up
// to 1779 s for 10 nodes; a least-squares fit gives ~182 s fixed + ~164 s per
// node. Bulk loading ran at ≈1.2 GB/min (≈50.5 s/GB) regardless of instance
// size; with the MPPDB's parallel-loading option the rate scales with the
// node count (the thesis' Fig 7.7 scaling event loads a 4-node tenant's
// 400 GB in ≈5000 s, i.e. 50 s/GB spread over 4 loader streams).
const (
	startupFixed   = 182 * time.Second
	startupPerNode = 164 * time.Second
	loadSecPerGB   = 50.4
	loadFixed      = 60 * time.Second
	// reimageTime is how long a swapped-out node spends being carted away
	// and re-imaged before it can hibernate in the free list again. The
	// thesis gives no measurement; re-writing a machine image is of the same
	// order as starting + initializing one node, so we model it at twice the
	// single-node startup cost.
	reimageTime = 2 * (startupFixed + startupPerNode)
)

// ReimageTime returns the modeled time to re-image a swapped-out node before
// it becomes acquirable again.
func ReimageTime() time.Duration { return reimageTime }

// StartupTime returns the modeled time to start n machine nodes and
// initialize an MPPDB instance across them.
func StartupTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return startupFixed + time.Duration(n)*startupPerNode
}

// LoadTime returns the modeled time to bulk load dataGB of tenant data into
// an n-node MPPDB. With parallel loading the per-GB cost is divided across
// the nodes; without it, the loader is a single stream at ≈1.2 GB/min.
func LoadTime(dataGB float64, n int, parallel bool) time.Duration {
	if dataGB <= 0 {
		return 0
	}
	sec := loadSecPerGB * dataGB
	if parallel && n > 1 {
		sec /= float64(n)
	}
	return loadFixed + time.Duration(sec*float64(time.Second))
}

// ProvisionTime returns the full time to bring up an n-node MPPDB holding
// dataGB: startup plus bulk load.
func ProvisionTime(dataGB float64, n int, parallel bool) time.Duration {
	return StartupTime(n) + LoadTime(dataGB, n, parallel)
}
