package cluster

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestPoolDomainsLayout(t *testing.T) {
	p := NewPoolDomains(10, 3)
	if p.Domains() != 3 || p.Size() != 10 {
		t.Fatalf("domains=%d size=%d", p.Domains(), p.Size())
	}
	counts := map[int]int{}
	last := 0
	for id := 0; id < p.Size(); id++ {
		d := p.DomainOf(id)
		if d < last || d > 2 {
			t.Fatalf("node %d in domain %d after domain %d — not contiguous", id, d, last)
		}
		last = d
		counts[d]++
	}
	for d := 0; d < 3; d++ {
		if counts[d] < 3 || counts[d] > 4 {
			t.Fatalf("domain %d holds %d of 10 nodes — not balanced", d, counts[d])
		}
	}
	if NewPool(5).Domains() != 1 {
		t.Fatalf("NewPool must stay single-domain")
	}
}

func TestAcquireSpread(t *testing.T) {
	p := NewPoolDomains(12, 3) // 4 nodes per domain
	_, doms, err := p.AcquireSpread("a", 3, nil)
	if err != nil || len(doms) != 1 {
		t.Fatalf("a: doms=%v err=%v", doms, err)
	}
	_, doms2, err := p.AcquireSpread("b", 3, doms)
	if err != nil || len(doms2) != 1 || doms2[0] == doms[0] {
		t.Fatalf("b landed in %v, sibling already holds %v (err=%v)", doms2, doms, err)
	}
	_, doms3, err := p.AcquireSpread("c", 3, append(doms, doms2...))
	if err != nil || len(doms3) != 1 || doms3[0] == doms[0] || doms3[0] == doms2[0] {
		t.Fatalf("c landed in %v after %v,%v (err=%v)", doms3, doms, doms2, err)
	}
	// One node left per domain: no single domain fits 3, so the fallback
	// spreads the instance itself cross-domain rather than refuse.
	nodes, doms4, err := p.AcquireSpread("d", 3, nil)
	if err != nil || len(nodes) != 3 || len(doms4) != 3 {
		t.Fatalf("fallback: nodes=%d doms=%v err=%v", len(nodes), doms4, err)
	}
	// Exhausted: error and no side effects.
	free := p.Free()
	if _, _, err := p.AcquireSpread("e", 1, nil); err == nil {
		t.Fatalf("acquire on an empty pool succeeded")
	}
	if p.Free() != free {
		t.Fatalf("failed spread acquire changed the free list: %d → %d", free, p.Free())
	}
}

func TestFailDomainRestore(t *testing.T) {
	p := NewPoolDomains(12, 3)
	if _, _, err := p.AcquireSpread("a", 4, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.AcquireSpread("b", 4, []int{0}); err != nil {
		t.Fatal(err)
	}
	cas, err := p.FailDomain(0)
	if err != nil || len(cas) != 4 {
		t.Fatalf("casualties=%v err=%v", cas, err)
	}
	for i, c := range cas {
		if c.Owner != "a" {
			t.Fatalf("casualty %d owner %q", i, c.Owner)
		}
		if i > 0 && cas[i].NodeID <= cas[i-1].NodeID {
			t.Fatalf("casualties not ascending: %v", cas)
		}
	}
	if got := p.DownDomains(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("down domains %v", got)
	}
	// Domain 2 is untouched free capacity (4 nodes); the down domain's
	// hibernated nodes must not be acquirable.
	if p.Free() != 4 {
		t.Fatalf("free=%d, want only the up domain's 4", p.Free())
	}
	if nodes, err := p.Acquire("c", 4); err != nil {
		t.Fatal(err)
	} else {
		for _, nd := range nodes {
			if nd.Domain == 0 {
				t.Fatalf("acquired node %d from a down domain", nd.ID)
			}
		}
	}
	if _, err := p.FailDomain(0); err == nil {
		t.Fatalf("double FailDomain must error")
	}
	if err := p.RestoreDomain(1); err == nil {
		t.Fatalf("restoring an up domain must error")
	}
	if _, err := p.FailDomain(7); err == nil {
		t.Fatalf("failing an out-of-range domain must error")
	}
	if err := p.RestoreDomain(0); err != nil {
		t.Fatal(err)
	}
	if p.Free() != 0 || len(p.DownDomains()) != 0 {
		t.Fatalf("after restore: free=%d down=%v", p.Free(), p.DownDomains())
	}
	// The outage's casualties stay Failed through restoration — they re-join
	// via the normal Replace/Reimage cycle.
	if got := p.FailedNodesOf("a"); len(got) != 4 {
		t.Fatalf("a's failed nodes after restore: %v", got)
	}
}

// TestAcquireNoPartialFailure is the multi-node acquisition audit: a failed
// acquire — plain or spread — must leave the pool byte-identical, never a
// partial grab.
func TestAcquireNoPartialFailure(t *testing.T) {
	p := NewPoolDomains(6, 2)
	if _, err := p.Acquire("a", 4); err != nil {
		t.Fatal(err)
	}
	before := p.Snapshot()
	if _, err := p.Acquire("x", 3); err == nil {
		t.Fatalf("acquire of 3 with 2 free succeeded")
	}
	if _, _, err := p.AcquireSpread("x", 3, nil); err == nil {
		t.Fatalf("spread acquire of 3 with 2 free succeeded")
	}
	after := p.Snapshot()
	if len(p.ActiveNodesOf("x")) != 0 {
		t.Fatalf("failed acquire left x owning nodes: %v", p.ActiveNodesOf("x"))
	}
	if before.ByState["hibernated"] != after.ByState["hibernated"] ||
		before.ByState["active"] != after.ByState["active"] {
		t.Fatalf("failed acquire mutated the pool: %+v → %+v", before.ByState, after.ByState)
	}
}

func TestCompleteRespread(t *testing.T) {
	p := NewPoolDomains(8, 2)
	nodes, _, err := p.AcquireSpread("inst", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	oldIDs := make([]int, len(nodes))
	for i, nd := range nodes {
		oldIDs[i] = nd.ID
	}
	oldDom := nodes[0].Domain
	// No staged nodes yet: error, nothing changes.
	if _, err := p.CompleteRespread("inst", "inst/respread"); err == nil {
		t.Fatalf("respread with no staged nodes succeeded")
	}
	if _, _, err := p.AcquireSpread("inst/respread", 3, []int{oldDom}); err != nil {
		t.Fatal(err)
	}
	released, err := p.CompleteRespread("inst", "inst/respread")
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(released)
	if len(released) != 3 {
		t.Fatalf("released %v, want the 3 old nodes", released)
	}
	for i, id := range released {
		if id != oldIDs[i] {
			t.Fatalf("released %v, want %v", released, oldIDs)
		}
	}
	if doms := p.OwnerDomains("inst"); len(doms) != 1 || doms[0] == oldDom {
		t.Fatalf("inst still in domain %v after respread from %d", doms, oldDom)
	}
	if len(p.ActiveNodesOf("inst/respread")) != 0 {
		t.Fatalf("staging owner still holds nodes")
	}
	if p.Free() != p.Size()-3 {
		t.Fatalf("free=%d, want %d (everything but the 3 live nodes)", p.Free(), p.Size()-3)
	}
	// A staged node that failed mid-copy blocks the flip atomically.
	if _, _, err := p.AcquireSpread("inst/respread", 2, nil); err != nil {
		t.Fatal(err)
	}
	staged := p.ActiveNodesOf("inst/respread")
	if _, err := p.Fail(staged[0]); err != nil {
		t.Fatal(err)
	}
	beforeActive := p.ActiveNodesOf("inst")
	if _, err := p.CompleteRespread("inst", "inst/respread"); err == nil {
		t.Fatalf("respread with a failed staged node succeeded")
	}
	if got := p.ActiveNodesOf("inst"); len(got) != len(beforeActive) {
		t.Fatalf("failed respread mutated the owner: %v → %v", beforeActive, got)
	}
}

func TestPoolSnapshotView(t *testing.T) {
	p := NewPoolDomains(10, 2)
	if _, _, err := p.AcquireSpread("a", 3, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.FailAny("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.FailDomain(1); err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	if snap.Total != 10 || snap.Domains != 2 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	if len(snap.Down) != 1 || snap.Down[0] != 1 || !snap.ByDomain[1].Down {
		t.Fatalf("down markers: %+v", snap)
	}
	sum := 0
	for _, n := range snap.ByState {
		sum += n
	}
	if sum != snap.Total {
		t.Fatalf("by_state sums to %d of %d: %+v", sum, snap.Total, snap.ByState)
	}
	var a *OwnerPoolState
	for i := range snap.ByOwner {
		if snap.ByOwner[i].Owner == "a" {
			a = &snap.ByOwner[i]
		}
	}
	if a == nil || a.Active != 2 || a.Failed != 1 {
		t.Fatalf("owner a footprint: %+v", a)
	}
	perDomain := 0
	for _, ds := range snap.ByDomain {
		perDomain += ds.Active + ds.Hibernated + ds.Failed + ds.Repairing
	}
	if perDomain != snap.Total {
		t.Fatalf("by_domain sums to %d of %d", perDomain, snap.Total)
	}
}

// TestPoolConcurrentLifecycles interleaves Acquire/FailAny/Replace/Reimage/
// Release from many goroutines under -race. Each goroutine owns a private
// owner ID and keeps its own book of node IDs; at the end every owner's view
// must match the pool exactly (no double-owned nodes) and every node must be
// accounted for (no leaks).
func TestPoolConcurrentLifecycles(t *testing.T) {
	const (
		workers = 8
		iters   = 400
	)
	p := NewPoolDomains(64, 4)
	var wg sync.WaitGroup
	type book struct {
		owner     string
		active    map[int]bool
		failed    map[int]bool
		repairing map[int]bool
	}
	books := make([]*book, workers)
	for w := 0; w < workers; w++ {
		books[w] = &book{
			owner:     string(rune('a' + w)),
			active:    map[int]bool{},
			failed:    map[int]bool{},
			repairing: map[int]bool{},
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(b *book, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				switch rng.Intn(5) {
				case 0: // acquire a couple of nodes
					if nodes, err := p.Acquire(b.owner, 1+rng.Intn(2)); err == nil {
						for _, nd := range nodes {
							if b.active[nd.ID] || b.failed[nd.ID] {
								t.Errorf("%s acquired node %d it already owns", b.owner, nd.ID)
							}
							b.active[nd.ID] = true
						}
					}
				case 1: // fail one of ours
					if id, err := p.FailAny(b.owner); err == nil {
						if !b.active[id] {
							t.Errorf("%s failed node %d it did not own", b.owner, id)
						}
						delete(b.active, id)
						b.failed[id] = true
					}
				case 2: // swap a failed node
					for id := range b.failed {
						if repl, err := p.Replace(id); err == nil {
							delete(b.failed, id)
							b.repairing[id] = true
							b.active[repl.ID] = true
						}
						break
					}
				case 3: // finish a re-image
					for id := range b.repairing {
						if err := p.Reimage(id); err == nil {
							delete(b.repairing, id)
						}
						break
					}
				case 4: // occasionally walk away entirely
					if rng.Intn(8) == 0 {
						p.Release(b.owner)
						b.active = map[int]bool{}
						b.failed = map[int]bool{}
					}
				}
			}
		}(books[w], int64(w+1))
	}
	wg.Wait()

	// Every owner's book must match the pool exactly.
	total := 0
	for _, b := range books {
		got := p.ActiveNodesOf(b.owner)
		if len(got) != len(b.active) {
			t.Fatalf("%s: pool says %v active, book says %v", b.owner, got, b.active)
		}
		for _, id := range got {
			if !b.active[id] {
				t.Fatalf("%s: pool lists %d, book does not", b.owner, id)
			}
		}
		gotF := p.FailedNodesOf(b.owner)
		if len(gotF) != len(b.failed) {
			t.Fatalf("%s: pool says %v failed, book says %v", b.owner, gotF, b.failed)
		}
		total += len(b.active) + len(b.failed) + len(b.repairing)
	}
	// No leaks: everything not in a book is hibernated and unowned.
	if free := p.CountState(Hibernated); free != p.Size()-total {
		t.Fatalf("hibernated=%d, want %d (books account for %d of %d)",
			free, p.Size()-total, total, p.Size())
	}
}
