// Package sqlmatch classifies submitted SQL text against the query catalog.
//
// Requirement R5 (thesis §1): "Tenants' query templates may be known or
// unknown beforehand. For report generating applications, the query
// templates could be found in the applications' stored procedures. For
// interactive analysis, however, a data analyst may craft and submit an
// ad-hoc query at any time." The MPPDBaaS front end therefore accepts raw
// SQL: statements matching a known template are classified as that template
// (and get its calibrated latency profile); anything else is an ad-hoc
// query, for which a conservative profile is estimated from the statement's
// structure — tables touched, join count, aggregation shape.
package sqlmatch

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/queries"
)

// Matcher resolves SQL text to query classes.
type Matcher struct {
	cat    *queries.Catalog
	byFp   map[string]*queries.Class
	tables map[string]float64 // table name → share of a tenant's data volume
}

// New builds a matcher over the catalog.
func New(cat *queries.Catalog) *Matcher {
	m := &Matcher{
		cat:    cat,
		byFp:   make(map[string]*queries.Class, cat.Len()),
		tables: tableWeights(),
	}
	for _, cl := range cat.Classes() {
		m.byFp[Fingerprint(cl.SQL)] = cl
	}
	return m
}

// Fingerprint normalizes SQL for template matching: case-folded, comments
// stripped, literals and numbers replaced with '?', whitespace collapsed.
// Two instantiations of one template (different dates, brands, limits)
// produce the same fingerprint.
func Fingerprint(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	i := 0
	lastSpace := true
	writeByte := func(c byte) {
		if c == ' ' {
			if lastSpace {
				return
			}
			lastSpace = true
		} else {
			lastSpace = false
		}
		b.WriteByte(c)
	}
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == '-' && i+1 < len(sql) && sql[i+1] == '-':
			// Line comment.
			for i < len(sql) && sql[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(sql) && sql[i+1] == '*':
			// Block comment.
			i += 2
			for i+1 < len(sql) && !(sql[i] == '*' && sql[i+1] == '/') {
				i++
			}
			i += 2
		case c == '\'':
			// String literal → ?
			i++
			for i < len(sql) && sql[i] != '\'' {
				i++
			}
			i++
			writeByte('?')
		case c >= '0' && c <= '9':
			// Number literal → ? (identifiers with digits are handled in
			// the identifier branch below, so a leading digit means a
			// literal).
			for i < len(sql) && (sql[i] >= '0' && sql[i] <= '9' || sql[i] == '.') {
				i++
			}
			writeByte('?')
		case isIdent(c):
			start := i
			for i < len(sql) && (isIdent(sql[i]) || sql[i] >= '0' && sql[i] <= '9') {
				i++
			}
			word := strings.ToLower(sql[start:i])
			for _, r := range word {
				writeByte(byte(r))
			}
		case unicode.IsSpace(rune(c)):
			writeByte(' ')
			i++
		default:
			writeByte(c)
			i++
		}
	}
	return strings.TrimSpace(b.String())
}

func isIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

// Result is a classification outcome.
type Result struct {
	// Class is the query class to execute as. For ad-hoc queries this is a
	// synthesized class (not part of the catalog).
	Class *queries.Class
	// Template reports whether a known template matched.
	Template bool
}

// Classify resolves sql. Empty or non-SELECT statements are rejected — the
// service hosts analytical workloads.
func (m *Matcher) Classify(sql string) (Result, error) {
	fp := Fingerprint(sql)
	if fp == "" {
		return Result{}, fmt.Errorf("sqlmatch: empty statement")
	}
	if cl, ok := m.byFp[fp]; ok {
		return Result{Class: cl, Template: true}, nil
	}
	if !strings.HasPrefix(fp, "select") && !strings.HasPrefix(fp, "with") {
		return Result{}, fmt.Errorf("sqlmatch: only SELECT statements are served (got %q...)", head(fp, 20))
	}
	return Result{Class: m.estimate(fp, sql)}, nil
}

func head(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// estimate synthesizes a conservative latency profile for ad-hoc SQL from
// statement structure: the data share of the referenced tables drives the
// scan term; joins add shuffle and coordination; grouping/ordering adds a
// serial tail. The constants mirror the calibrated catalog's ranges.
func (m *Matcher) estimate(fp, raw string) *queries.Class {
	_ = raw
	scanShare := 0.0
	for table, share := range m.tables {
		if containsWord(fp, table) {
			scanShare += share
		}
	}
	if scanShare == 0 {
		scanShare = 0.6 // unknown tables: assume a substantial scan
	}
	if scanShare > 1 {
		scanShare = 1
	}
	joins := strings.Count(fp, " join ")
	// Implicit joins: comma-separated relations in FROM.
	if f := fromClause(fp); f != "" {
		joins += strings.Count(f, ",")
	}
	agg := 0.0
	for _, kw := range []string{"group by", "order by", "distinct", "over ("} {
		if strings.Contains(fp, kw) {
			agg += 0.05
		}
	}
	cl := &queries.Class{
		ID:        "ADHOC",
		SQL:       raw,
		FixedSec:  0.2,
		SerialSec: 0.1 + agg,
		// The calibrated catalog's scan terms span ~0.003–0.05 s/GB; an
		// ad-hoc estimate takes the upper-middle of that range, scaled by
		// the share of the tenant's data the statement touches.
		ScanSecGB: 0.02 * scanShare,
		ShufSecGB: 0.004 * float64(joins),
		CoordSec:  0.02 * float64(joins),
	}
	return cl
}

// fromClause extracts the FROM clause (up to WHERE/GROUP/ORDER/LIMIT).
func fromClause(fp string) string {
	i := strings.Index(fp, " from ")
	if i < 0 {
		return ""
	}
	rest := fp[i+6:]
	for _, stop := range []string{" where ", " group by ", " order by ", " limit ", " having "} {
		if j := strings.Index(rest, stop); j >= 0 {
			rest = rest[:j]
		}
	}
	return rest
}

// containsWord reports whether fp contains the identifier as a whole word.
func containsWord(fp, word string) bool {
	for start := 0; ; {
		i := strings.Index(fp[start:], word)
		if i < 0 {
			return false
		}
		i += start
		before := i == 0 || !isIdentOrDigit(fp[i-1])
		afterIdx := i + len(word)
		after := afterIdx >= len(fp) || !isIdentOrDigit(fp[afterIdx])
		if before && after {
			return true
		}
		start = i + len(word)
	}
}

func isIdentOrDigit(c byte) bool {
	return isIdent(c) || c >= '0' && c <= '9'
}

// tableWeights returns each benchmark table's approximate share of a
// tenant's data volume (TPC-H and TPC-DS row-size-weighted shares; fact
// tables dominate).
func tableWeights() map[string]float64 {
	return map[string]float64{
		// TPC-H (lineitem ≈ 70% of the database).
		"lineitem": 0.70, "orders": 0.17, "partsupp": 0.08,
		"part": 0.02, "customer": 0.02, "supplier": 0.005,
		"nation": 0.001, "region": 0.001,
		// TPC-DS (store_sales dominates; the channel facts follow).
		"store_sales": 0.45, "catalog_sales": 0.20, "web_sales": 0.10,
		"store_returns": 0.05, "catalog_returns": 0.03, "web_returns": 0.02,
		"inventory": 0.08, "customer_demographics": 0.01,
		"customer_address": 0.01, "item": 0.01, "date_dim": 0.005,
		"time_dim": 0.005, "store": 0.001, "promotion": 0.001,
		"household_demographics": 0.001,
	}
}
