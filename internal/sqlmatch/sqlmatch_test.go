package sqlmatch

import (
	"strings"
	"testing"

	"repro/internal/queries"
)

func TestFingerprintNormalization(t *testing.T) {
	cases := []struct {
		a, b string
	}{
		{"SELECT * FROM t", "select  *  from   t"},
		{"select x from t where d >= date '1994-01-01'", "select x from t where d >= date '1998-06-30'"},
		{"select x from t limit 100", "select x from t limit 10"},
		{"select x -- comment\nfrom t", "select x from t"},
		{"select x /* block */ from t", "select x from t"},
		{"select sum(a*0.5) from t", "select sum(a*0.07) from t"},
	}
	for i, c := range cases {
		if Fingerprint(c.a) != Fingerprint(c.b) {
			t.Errorf("case %d: %q != %q", i, Fingerprint(c.a), Fingerprint(c.b))
		}
	}
	// Different structure ⇒ different fingerprints.
	if Fingerprint("select a from t") == Fingerprint("select b from t") {
		t.Error("distinct columns collided")
	}
	// Identifiers with digits survive; pure numbers do not.
	fp := Fingerprint("select l_shipdate from lineitem where l_quantity < 24")
	if !strings.Contains(fp, "l_shipdate") || !strings.Contains(fp, "l_quantity") {
		t.Errorf("identifiers mangled: %q", fp)
	}
	if strings.Contains(fp, "24") {
		t.Errorf("literal survived: %q", fp)
	}
}

func TestClassifyTemplates(t *testing.T) {
	cat := queries.Default()
	m := New(cat)
	// Every catalog template must classify back to itself.
	for _, cl := range cat.Classes() {
		res, err := m.Classify(cl.SQL)
		if err != nil {
			t.Fatalf("%s: %v", cl.ID, err)
		}
		if !res.Template || res.Class.ID != cl.ID {
			t.Errorf("%s classified as %s (template=%v)", cl.ID, res.Class.ID, res.Template)
		}
	}
	// A re-parameterized template still matches.
	q6, _ := cat.ByID("TPCH-Q6")
	modified := strings.ReplaceAll(q6.SQL, "1994-01-01", "1997-01-01")
	modified = strings.ReplaceAll(modified, "24", "25")
	res, err := m.Classify(modified)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Template || res.Class.ID != "TPCH-Q6" {
		t.Errorf("re-parameterized Q6 classified as %s", res.Class.ID)
	}
}

func TestClassifyAdHoc(t *testing.T) {
	m := New(queries.Default())
	res, err := m.Classify("select count(*) from lineitem where l_tax > 0.05")
	if err != nil {
		t.Fatal(err)
	}
	if res.Template {
		t.Fatal("ad-hoc classified as a template")
	}
	cl := res.Class
	if cl.ID != "ADHOC" || cl.ScanSecGB <= 0 {
		t.Errorf("ad-hoc class: %+v", cl)
	}
	// lineitem is ~70% of the data; a nation-only query scans far less.
	small, err := m.Classify("select count(*) from nation")
	if err != nil {
		t.Fatal(err)
	}
	if small.Class.ScanSecGB >= cl.ScanSecGB {
		t.Errorf("nation scan %v ≥ lineitem scan %v", small.Class.ScanSecGB, cl.ScanSecGB)
	}
	// Joins add shuffle/coordination.
	join, err := m.Classify("select * from lineitem, orders, customer where l_orderkey = o_orderkey group by c_name")
	if err != nil {
		t.Fatal(err)
	}
	if join.Class.ShufSecGB <= 0 || join.Class.CoordSec <= 0 {
		t.Errorf("join query has no shuffle/coord: %+v", join.Class)
	}
	if join.Class.SerialSec <= cl.SerialSec {
		t.Error("grouped query should carry a serial tail")
	}
	// Unknown tables get a conservative default.
	unk, err := m.Classify("select * from mystery_table")
	if err != nil {
		t.Fatal(err)
	}
	if unk.Class.ScanSecGB <= 0 {
		t.Error("unknown table got a zero profile")
	}
}

func TestClassifyRejects(t *testing.T) {
	m := New(queries.Default())
	for _, bad := range []string{"", "   ", "-- just a comment", "drop table lineitem", "update t set x=1"} {
		if _, err := m.Classify(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// WITH-prefixed analytical statements are fine.
	if _, err := m.Classify("with r as (select 1 as x from lineitem) select x from r"); err != nil {
		t.Errorf("WITH rejected: %v", err)
	}
}

func TestContainsWord(t *testing.T) {
	if containsWord("select part_name from partsupp", "part") {
		t.Error("matched inside identifiers")
	}
	if !containsWord("select p from part", "part") {
		t.Error("missed whole word at end")
	}
	if !containsWord("part p join x", "part") {
		t.Error("missed whole word at start")
	}
}

func TestAdHocLatencyIsPlausible(t *testing.T) {
	m := New(queries.Default())
	res, _ := m.Classify("select count(*) from lineitem")
	// On a 4-node tenant with 400 GB, an ad-hoc full fact scan should be in
	// the same regime as the catalog (seconds, not hours).
	lat := res.Class.Latency(400, 4)
	if lat.Seconds() < 0.3 || lat.Seconds() > 60 {
		t.Errorf("ad-hoc latency %v outside sane range", lat)
	}
}
