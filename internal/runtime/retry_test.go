package runtime

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mppdb"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// degrade parks every instance of the group in Provisioning so the router
// has no Ready replica — the transient condition SubmitWithRetry shields.
func degrade(g *GroupRuntime) {
	for _, inst := range g.Instances {
		inst.SetState(mppdb.Provisioning)
	}
}

func TestSubmitWithRetrySucceedsWhenReplicaReturns(t *testing.T) {
	eng := sim.NewEngine()
	g := newGroup(t, eng, "TG-0001", "t1")
	g.Bind(sim.NewDomain(eng))
	hub := telemetry.NewHub(eng, 0.999)
	g.SetTelemetry(hub)
	degrade(g)
	// One replica comes back mid-retry (recovery completing).
	eng.Schedule(40*sim.Second, func(sim.Time) { g.Instances[0].SetState(mppdb.Ready) })

	pol := RetryPolicy{MaxRetries: 5, Backoff: 15 * time.Second, Timeout: 5 * time.Minute}
	db, retries, err := g.SubmitWithRetry(sim.Second, "t1", q1(t), 0, pol)
	if err != nil {
		t.Fatal(err)
	}
	if db != "TG-0001-db0" {
		t.Errorf("routed to %q", db)
	}
	// Attempts at 1 s, 16 s, 31 s fail; the 46 s attempt lands after the
	// replica returned.
	if retries != 3 {
		t.Errorf("retries = %d, want 3", retries)
	}
	if got := hub.Registry.Counter("thrifty_query_retried_total", "group", "TG-0001").Value(); got != 3 {
		t.Errorf("retried counter = %d, want 3", got)
	}
	n := 0
	for _, ev := range hub.Events.Recent(0) {
		if ev.Type == telemetry.EventQueryRetried {
			n++
		}
	}
	if n != 3 {
		t.Errorf("%d query_retried events, want 3", n)
	}
	if got := hub.Registry.Histogram("thrifty_query_retries", nil, "group", "TG-0001").Sum(); got != 3 {
		t.Errorf("retries histogram sum = %v, want 3", got)
	}
}

func TestSubmitWithRetryTimesOut(t *testing.T) {
	eng := sim.NewEngine()
	g := newGroup(t, eng, "TG-0001", "t1")
	g.Bind(sim.NewDomain(eng))
	hub := telemetry.NewHub(eng, 0.999)
	g.SetTelemetry(hub)
	degrade(g)

	pol := RetryPolicy{MaxRetries: 10, Backoff: 15 * time.Second, Timeout: 30 * time.Second}
	start := sim.Second
	_, retries, err := g.SubmitWithRetry(start, "t1", q1(t), 0, pol)
	if err == nil {
		t.Fatal("submit succeeded with no ready replica")
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T (%v), want *TimeoutError", err, err)
	}
	// Attempts at 1 s, 16 s, 31 s; the next slot (46 s) would overrun the
	// 31 s deadline.
	if te.Attempts != 3 || retries != 2 {
		t.Errorf("Attempts = %d retries = %d, want 3 and 2", te.Attempts, retries)
	}
	if te.Unwrap() == nil {
		t.Error("TimeoutError lost the routing cause")
	}
	if got := hub.Registry.Counter("thrifty_query_timeout_total", "group", "TG-0001").Value(); got != 1 {
		t.Errorf("timeout counter = %d", got)
	}
	found := false
	for _, ev := range hub.Events.Recent(0) {
		if ev.Type == telemetry.EventQueryTimeout && ev.Tenant == "t1" {
			found = true
		}
	}
	if !found {
		t.Error("no query_timeout event published")
	}
	// The domain kept moving (never hung): it sits at the last attempt.
	if g.Now() != 31*sim.Second {
		t.Errorf("domain at %v, want 31s", g.Now())
	}
}

func TestSubmitWithRetryPermanentErrorNoRetry(t *testing.T) {
	eng := sim.NewEngine()
	g := newGroup(t, eng, "TG-0001", "t1")
	g.Bind(sim.NewDomain(eng))

	_, retries, err := g.SubmitWithRetry(sim.Second, "stranger", q1(t), 0, DefaultRetryPolicy())
	if err == nil {
		t.Fatal("unknown tenant accepted")
	}
	var te *TimeoutError
	if errors.As(err, &te) {
		t.Error("permanent routing error reported as timeout")
	}
	if retries != 0 {
		t.Errorf("retried %d times on a permanent error", retries)
	}
}

func TestSubmitWithRetryZeroRetriesFailsFast(t *testing.T) {
	eng := sim.NewEngine()
	g := newGroup(t, eng, "TG-0001", "t1")
	g.Bind(sim.NewDomain(eng))
	degrade(g)

	_, retries, err := g.SubmitWithRetry(sim.Second, "t1", q1(t), 0,
		RetryPolicy{MaxRetries: 0, Backoff: time.Second, Timeout: time.Minute})
	var te *TimeoutError
	if !errors.As(err, &te) || retries != 0 || te.Attempts != 1 {
		t.Errorf("zero-retry policy: retries=%d err=%v", retries, err)
	}
}
