// Package runtime bundles one deployed tenant-group's execution state — its
// MPPDB instances, query router, activity monitor, and member tenants —
// behind a clock domain, and composes the groups into a Plane, the runtime
// half of a deployment.
//
// The paper's architecture (§3–§5) makes tenant-groups independent units of
// execution: each group has its own MPPDBs, router, monitor, and scaling
// loop, and nothing crosses group boundaries at query time. GroupRuntime is
// that unit made explicit. In sharded mode every group owns a private
// sim.Engine wrapped in a sim.Domain, so submits against different groups
// proceed fully in parallel; in shared mode all groups sit on one engine
// behind one domain, preserving the globally ordered event interleaving the
// experiments (Figs 7.1–7.7) rely on for bit-identical replay.
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/advisor"
	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/recovery"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// TenantRef is a dense, group-local tenant handle (see package tenant):
// resolved once at the front door, it replaces per-submit string-map lookups
// in the router, instances, and admission controller.
type TenantRef = tenant.Ref

// NoTenantRef marks an unresolved handle.
const NoTenantRef = tenant.NoRef

// GroupRuntime is one tenant-group brought up on the cluster. The exported
// fields are the group's subsystems; they are safe to touch directly only
// from the engine's single driver (the experiment/replay path) or from
// inside the group's clock domain. Concurrent callers — the HTTP service —
// must go through the locked methods below.
type GroupRuntime struct {
	Plan      advisor.PlannedGroup
	Instances []*mppdb.Instance // index 0 is the tuning MPPDB G₀
	Router    *router.GroupRouter
	Monitor   *monitor.GroupMonitor
	Members   []*tenant.Tenant
	// Recovery, when non-nil, is the group's autonomous failure-recovery
	// controller (§4.4), armed by the Deployment Master or the replay
	// failure injector. It lives on the group's engine.
	Recovery *recovery.Controller
	// Gray, when non-nil, is the group's fail-slow detector: peer-relative
	// completion-latency anomaly detection driving the hedge → drain
	// response ladder. It lives on the group's engine and requires Recovery
	// (the drain rung replaces the slow node through it).
	Gray *recovery.GrayDetector
	// Admission, when non-nil, is the group's overload-protection
	// controller: per-tenant contract buckets, the bounded admission
	// queue, and the brownout loop. It lives on the group's engine and is
	// consulted by SubmitGoverned.
	Admission *admission.Controller

	dom *sim.Domain

	// memberIdx indexes Members by tenant ID for O(1) membership checks on
	// the migration paths. It is built lazily (deploy populates Members via
	// a struct literal) and maintained by AddMember/RemoveMember. In-domain
	// only, like the methods that use it.
	memberIdx map[string]int

	// sheddingOnly is set by the brownout controller at its top level:
	// stats readers then serve the cached snapshot instead of advancing or
	// locking the overloaded group's domain.
	sheddingOnly atomic.Bool
	lastStats    atomic.Pointer[Stats]

	// Telemetry (optional): submit-path retry/timeout instrumentation.
	tel      *telemetry.Hub
	mRetried *telemetry.Counter
	mTimeout *telemetry.Counter
	hRetries *telemetry.Histogram
}

// SetTelemetry attaches a telemetry hub for the group's submit-path retry
// instrumentation. A nil hub disables it.
func (g *GroupRuntime) SetTelemetry(h *telemetry.Hub) {
	g.tel = h
	if h == nil {
		return
	}
	g.mRetried = h.Registry.Counter("thrifty_query_retried_total", "group", g.Plan.ID)
	g.mTimeout = h.Registry.Counter("thrifty_query_timeout_total", "group", g.Plan.ID)
	g.hRetries = h.Registry.Histogram("thrifty_query_retries",
		[]float64{0, 1, 2, 3, 5, 8}, "group", g.Plan.ID)
}

// Bind attaches the group's clock domain. The Deployment Master calls it
// once, right after constructing the group's subsystems on the domain's
// engine.
func (g *GroupRuntime) Bind(dom *sim.Domain) { g.dom = dom }

// Domain returns the group's clock domain. Groups of a shared-mode
// deployment all return the same domain.
func (g *GroupRuntime) Domain() *sim.Domain { return g.dom }

// Now returns the group's virtual time without blocking.
func (g *GroupRuntime) Now() sim.Time { return g.dom.Now() }

// AdvanceTo drives the group's domain up to the target time.
func (g *GroupRuntime) AdvanceTo(at sim.Time) { g.dom.Advance(at, nil) }

// SubmitAt advances the group to at and routes one query for the tenant
// through the group's router (TDD Algorithm 1). A non-positive sla falls
// back to the tenant's isolated latency. It returns the chosen MPPDB's ID.
func (g *GroupRuntime) SubmitAt(at sim.Time, tenantID string, class *queries.Class, sla sim.Time) (string, error) {
	var db string
	var err error
	g.dom.Advance(at, func(*sim.Engine) {
		db, err = g.Router.SubmitWithTarget(tenantID, class, sla)
	})
	return db, err
}

// rebuildMemberIdx (re)derives the membership index from Members.
func (g *GroupRuntime) rebuildMemberIdx() {
	g.memberIdx = make(map[string]int, len(g.Members))
	for i, m := range g.Members {
		g.memberIdx[m.ID] = i
	}
}

// HasMember reports whether the tenant is in the group's member list — O(1)
// against the membership index. In-domain only.
func (g *GroupRuntime) HasMember(id string) bool {
	if g.memberIdx == nil {
		g.rebuildMemberIdx()
	}
	_, ok := g.memberIdx[id]
	return ok
}

// AddMember appends a tenant to the group's member list. In-domain only —
// the migration cutover calls it from an engine callback.
func (g *GroupRuntime) AddMember(tn *tenant.Tenant) {
	if g.memberIdx == nil {
		g.rebuildMemberIdx()
	}
	if _, ok := g.memberIdx[tn.ID]; ok {
		return
	}
	g.memberIdx[tn.ID] = len(g.Members)
	g.Members = append(g.Members, tn)
}

// RemoveMember drops a tenant from the group's member list, preserving
// member order. In-domain only.
func (g *GroupRuntime) RemoveMember(id string) {
	if g.memberIdx == nil {
		g.rebuildMemberIdx()
	}
	i, ok := g.memberIdx[id]
	if !ok {
		return
	}
	delete(g.memberIdx, id)
	// The three-index slice forces a fresh backing array so snapshots of
	// Members held elsewhere are not clobbered (as before the index).
	g.Members = append(g.Members[:i:i], g.Members[i+1:]...)
	for j := i; j < len(g.Members); j++ {
		g.memberIdx[g.Members[j].ID] = j
	}
}

// RetryPolicy shapes SubmitWithRetry: how often a transiently failed submit
// is re-tried against the group's replica set, and when to give up.
type RetryPolicy struct {
	// MaxRetries bounds the re-tries after the first attempt.
	MaxRetries int
	// Backoff is the virtual-time wait between attempts (default 15 s).
	Backoff time.Duration
	// Timeout is the total virtual-time budget from the submit instant;
	// 0 means no deadline beyond MaxRetries.
	Timeout time.Duration
}

// DefaultRetryPolicy matches the service front end's defaults: three retries
// 30 s apart within a 5-minute budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, Backoff: 30 * time.Second, Timeout: 5 * time.Minute}
}

// TimeoutError is returned when a submit exhausted its retry policy — the
// typed alternative to hanging the caller on a group that cannot currently
// place the query (e.g. every replica mid-recovery).
type TimeoutError struct {
	Group   string
	Tenant  string
	Timeout time.Duration
	// Attempts is the total number of submit attempts made.
	Attempts int
	// Last is the final attempt's routing error.
	Last error
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("runtime: query for tenant %s in group %s timed out after %d attempts (budget %v): %v",
		e.Tenant, e.Group, e.Attempts, e.Timeout, e.Last)
}

// Unwrap exposes the final routing error.
func (e *TimeoutError) Unwrap() error { return e.Last }

// SubmitWithRetry routes like SubmitAt but shields the caller from transient
// routing failures: when the router cannot place the query (every replica of
// the set R busy recovering or not Ready), the submit is re-tried at
// virtual-time backoff — the domain is released between attempts, so other
// callers and the group's own recovery keep progressing. Once the policy is
// exhausted it returns a *TimeoutError. The second return value is the
// number of retries used by a successful submit.
func (g *GroupRuntime) SubmitWithRetry(at sim.Time, tenantID string, class *queries.Class,
	sla sim.Time, pol RetryPolicy) (string, int, error) {
	return g.SubmitGoverned(at, tenantID, class, sla, pol, false)
}

// SubmitGoverned is SubmitWithRetry behind the group's admission controller
// (when armed): the first attempt must pass the tenant's contract bucket and
// the brownout policy — a typed *admission.ContractExceededError (429) or
// *admission.ShedError (503) is returned immediately, before any routing
// work. A submit that fails transiently claims a slot in the bounded
// admission queue for the wait; if the queue is full, or the projected start
// delay alone would blow the query's SLA deadline, the query is shed with a
// typed *admission.ShedError instead of occupying the group. bestEffort
// marks traffic the brownout controller may drop wholesale at its top level.
//
// SubmitGoverned is a one-item batch: there is a single retry/admission
// implementation, SubmitBatchAt, and this is its scalar shim.
func (g *GroupRuntime) SubmitGoverned(at sim.Time, tenantID string, class *queries.Class,
	sla sim.Time, pol RetryPolicy, bestEffort bool) (string, int, error) {
	items := [1]BatchItem{{Tenant: tenantID, Class: class, SLA: sla, BestEffort: bestEffort}}
	var outs [1]BatchOutcome
	g.SubmitBatchAt(at, items[:], outs[:], pol)
	return outs[0].DB, outs[0].Retries, outs[0].Err
}

// BatchItem is one query of a batched submit.
type BatchItem struct {
	// Tenant is the tenant's string ID (used for resolution when HasRef is
	// unset, and for error reporting).
	Tenant string
	// Ref carries the tenant's group-local ref pre-resolved at the front
	// door (Plane.ForTenantRef); only consulted when HasRef is true, so the
	// zero value stays safe (ref 0 is a valid tenant).
	Ref    tenant.Ref
	HasRef bool
	Class  *queries.Class
	// SLA is the per-query latency target; non-positive falls back to the
	// tenant's isolated latency.
	SLA sim.Time
	// BestEffort marks traffic the brownout controller may shed wholesale.
	BestEffort bool
}

// BatchOutcome is one item's result: the chosen MPPDB and retries used on
// success, or the typed error (*admission.ContractExceededError,
// *admission.ShedError, *TimeoutError, or a permanent routing error).
// Outcomes are strictly per item — one item's failure never affects its
// batch-mates.
type BatchOutcome struct {
	DB      string
	Retries int
	Err     error
}

// SubmitBatchAt advances the group to at once and routes all items inside a
// single engine callback — one domain lock and one Advance per batch (plus
// one per backoff round while any item retries), instead of one per query.
// Results land in outs (which must be at least as long as items); item i's
// outcome is outs[i].
//
// Per-item semantics are identical to SubmitGoverned: admission is consulted
// once per item, transient routing failures claim an admission-queue slot
// and retry on the policy's backoff, and exhaustion yields a *TimeoutError.
// Items are processed in slice order, so a batch at time t is
// operation-for-operation equivalent to submitting its items sequentially at
// t — same-seed telemetry is byte-identical (the determinism guard pins
// this). Retry rounds run round-major: every live item attempts once per
// round before the clock moves again.
// batchScratch is the reusable round-tracking state of one SubmitBatchAt
// call, pooled so steady-state batched submits allocate nothing here.
type batchScratch struct {
	live   []int
	queued []bool
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (g *GroupRuntime) SubmitBatchAt(at sim.Time, items []BatchItem, outs []BatchOutcome, pol RetryPolicy) {
	n := len(items)
	if n == 0 {
		return
	}
	if len(outs) < n {
		panic("runtime: SubmitBatchAt outs shorter than items")
	}
	if pol.Backoff <= 0 {
		pol.Backoff = 15 * time.Second
	}
	deadline := sim.MaxTime
	if pol.Timeout > 0 {
		deadline = at + sim.Duration(pol.Timeout)
	}
	adm := g.Admission
	for i := range outs[:n] {
		outs[i] = BatchOutcome{}
	}

	// live holds the indices of items still in flight across rounds; queued
	// marks items holding an admission-queue slot. Both come from a pool so
	// a steady stream of batches allocates nothing here.
	sc := batchScratchPool.Get().(*batchScratch)
	live := sc.live[:0]
	defer func() {
		sc.live = live[:0]
		batchScratchPool.Put(sc)
	}()
	if cap(sc.queued) < n {
		sc.queued = make([]bool, n)
	}
	queued := sc.queued[:n]
	clear(queued)

	// attempt runs one routing attempt for item i at round `retries` and
	// reports whether the item stays live. In-domain only.
	attempt := func(i, retries int, t sim.Time) bool {
		it := &items[i]
		ref := tenant.NoRef
		if it.HasRef {
			ref = it.Ref
		} else if r := g.Router; r != nil {
			ref = r.Ref(it.Tenant)
		}
		if adm != nil && retries == 0 {
			var admErr error
			if ref != tenant.NoRef {
				admErr = adm.AdmitRef(ref, it.SLA, it.BestEffort)
			} else {
				admErr = adm.Admit(it.Tenant, it.SLA, it.BestEffort)
			}
			if admErr != nil {
				outs[i].Err = admErr
				return false
			}
		}
		var db string
		var err error
		if ref != tenant.NoRef {
			db, err = g.Router.SubmitRef(ref, it.Class, it.SLA)
		} else {
			db, err = g.Router.SubmitWithTarget(it.Tenant, it.Class, it.SLA)
		}
		if err == nil {
			if queued[i] {
				adm.LeaveQueue()
				queued[i] = false
			}
			outs[i].DB = db
			outs[i].Retries = retries
			if g.hRetries != nil {
				g.hRetries.Observe(float64(retries))
			}
			return false
		}
		if !g.Router.HasTenant(it.Tenant) {
			// Permanent: this group will never accept the tenant.
			if queued[i] {
				adm.LeaveQueue()
				queued[i] = false
			}
			outs[i].Retries = retries
			outs[i].Err = err
			return false
		}
		if next := t + sim.Duration(pol.Backoff); retries < pol.MaxRetries && next <= deadline {
			if adm != nil && !queued[i] {
				if shedErr := adm.EnterQueue(it.Tenant, it.SLA, next-at); shedErr != nil {
					outs[i].Retries = retries
					outs[i].Err = shedErr
					return false
				}
				queued[i] = true
			}
			if g.tel != nil {
				g.mRetried.Inc()
				g.tel.Events.Publish(telemetry.Event{
					Type:   telemetry.EventQueryRetried,
					Group:  g.Plan.ID,
					Tenant: it.Tenant,
					Value:  float64(retries + 1),
					Detail: err.Error(),
				})
			}
			return true
		}
		if queued[i] {
			adm.LeaveQueue()
			queued[i] = false
		}
		if g.tel != nil {
			g.mTimeout.Inc()
			g.hRetries.Observe(float64(retries))
			g.tel.Events.Publish(telemetry.Event{
				Type:   telemetry.EventQueryTimeout,
				Group:  g.Plan.ID,
				Tenant: it.Tenant,
				Value:  float64(retries),
				Detail: err.Error(),
			})
		}
		outs[i].Retries = retries
		outs[i].Err = &TimeoutError{
			Group:    g.Plan.ID,
			Tenant:   it.Tenant,
			Timeout:  pol.Timeout,
			Attempts: retries + 1,
			Last:     err,
		}
		return false
	}

	t := at
	for retries := 0; ; retries++ {
		r := retries
		now := t
		g.dom.Advance(now, func(*sim.Engine) {
			if r == 0 {
				for i := 0; i < n; i++ {
					if attempt(i, 0, now) {
						live = append(live, i)
					}
				}
				return
			}
			keep := live[:0]
			for _, i := range live {
				if attempt(i, r, now) {
					keep = append(keep, i)
				}
			}
			live = keep
		})
		if len(live) == 0 {
			return
		}
		t += sim.Duration(pol.Backoff)
	}
}

// Stats is a point-in-time snapshot of a group's run-time state, safe to
// read outside the group's clock domain.
type Stats struct {
	Group         string
	Members       int
	ActiveTenants int
	RTTTP         float64
	SLAAttainment float64
	Routed        int64
	Overflowed    int64
	Instances     []mppdb.Snapshot
}

// snapshot collects Stats; the caller must hold the group's domain. The
// snapshot is also cached for shedding-only readers.
func (g *GroupRuntime) snapshot() Stats {
	st := Stats{
		Group:         g.Plan.ID,
		Members:       len(g.Members),
		ActiveTenants: g.Monitor.ActiveTenants(),
		RTTTP:         g.Monitor.RTTTP(),
		SLAAttainment: g.Monitor.SLAAttainment(),
		Routed:        g.Router.Routed(),
		Overflowed:    g.Router.Overflowed(),
	}
	for _, inst := range g.Instances {
		st.Instances = append(st.Instances, inst.Snapshot())
	}
	g.lastStats.Store(&st)
	return st
}

// CacheStats refreshes the cached snapshot; the caller must hold the
// group's domain. The admission controller's brownout tick calls it so
// shedding-only readers see stats no staler than one tick.
func (g *GroupRuntime) CacheStats() { g.snapshot() }

// SetSheddingOnly marks the group shedding-only: stats readers serve the
// cached snapshot instead of advancing or locking the group's domain, so
// read endpoints stay fast while the group digs out of overload. The
// brownout controller toggles it at its top level.
func (g *GroupRuntime) SetSheddingOnly(v bool) { g.sheddingOnly.Store(v) }

// SheddingOnly reports whether the group is marked shedding-only.
func (g *GroupRuntime) SheddingOnly() bool { return g.sheddingOnly.Load() }

// Stats snapshots the group at its current virtual time. A shedding-only
// group returns its cached snapshot without touching the domain.
func (g *GroupRuntime) Stats() Stats {
	if g.sheddingOnly.Load() {
		if st := g.lastStats.Load(); st != nil {
			return *st
		}
	}
	var st Stats
	g.dom.Do(func(*sim.Engine) { st = g.snapshot() })
	return st
}

// StatsAt advances the group to at and snapshots it. A shedding-only group
// returns its cached snapshot without advancing or locking the domain.
func (g *GroupRuntime) StatsAt(at sim.Time) Stats {
	if g.sheddingOnly.Load() {
		if st := g.lastStats.Load(); st != nil {
			return *st
		}
	}
	var st Stats
	g.dom.Advance(at, func(*sim.Engine) { st = g.snapshot() })
	return st
}

// RecordsAt advances the group to at and returns a copy of its completed
// query records.
func (g *GroupRuntime) RecordsAt(at sim.Time) []monitor.QueryRecord {
	var out []monitor.QueryRecord
	g.dom.Advance(at, func(*sim.Engine) {
		out = append(out, g.Monitor.Records()...)
	})
	return out
}

// RecordCountAt advances the group to at and returns how many completed
// query records it holds. The record log is append-only, so an unchanged
// count means an unchanged log — the service's records cache keys on it to
// skip re-copying and re-sorting.
func (g *GroupRuntime) RecordCountAt(at sim.Time) int {
	var n int
	g.dom.Advance(at, func(*sim.Engine) { n = g.Monitor.RecordCount() })
	return n
}

// Plane is the runtime half of a deployment: the deployed groups, a
// tenant→group index for O(1) dispatch at the front door, and the deduped
// set of clock domains driving them.
//
// The plane is mutable at run time: the online re-consolidation loop
// attaches new groups while they provision, flips the tenant→group index
// atomically at migration cutover, and detaches drained groups. All
// membership state is guarded by one RWMutex; the lock is never held across
// a domain advance, so index flips performed from inside an engine callback
// cannot deadlock against concurrent readers driving the clock.
type Plane struct {
	mu      sync.RWMutex
	groups  []*GroupRuntime
	byTen   map[string]tenantEntry
	domains sim.Domains
	byDom   map[*sim.Domain][]*GroupRuntime
	sharded bool
	hub     *telemetry.Hub
}

// tenantEntry is one front-door index entry: the tenant's group plus its
// interned ref in that group, resolved once at deploy/cutover so the submit
// hot path never hashes the tenant string below the plane.
type tenantEntry struct {
	g   *GroupRuntime
	ref tenant.Ref
}

// NewPlane creates an empty plane. sharded records whether groups run on
// private clock domains (service mode) or share one (experiment mode).
func NewPlane(hub *telemetry.Hub, sharded bool) *Plane {
	return &Plane{
		byTen:   make(map[string]tenantEntry),
		byDom:   make(map[*sim.Domain][]*GroupRuntime),
		sharded: sharded,
		hub:     hub,
	}
}

// entry builds a tenant's index entry, resolving its ref in g's router.
func entry(g *GroupRuntime, id string) tenantEntry {
	e := tenantEntry{g: g, ref: tenant.NoRef}
	if g.Router != nil {
		e.ref = g.Router.Ref(id)
	}
	return e
}

// Add registers a bound group: it is indexed by member tenant and its domain
// joins the plane's domain set (shared domains are deduplicated).
func (p *Plane) Add(g *GroupRuntime) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.register(g)
	for _, tn := range g.Members {
		p.byTen[tn.ID] = entry(g, tn.ID)
	}
}

// Attach registers a bound group without indexing its members — the live
// migration path: the group provisions in the background while every member
// still routes to its current group, until Index flips them over at cutover.
func (p *Plane) Attach(g *GroupRuntime) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.register(g)
}

// register adds the group to the group list and domain set; the caller holds
// the write lock.
func (p *Plane) register(g *GroupRuntime) {
	p.groups = append(p.groups, g)
	p.byDom[g.dom] = append(p.byDom[g.dom], g)
	for _, d := range p.domains {
		if d == g.dom {
			return
		}
	}
	p.domains = append(p.domains, g.dom)
}

// Index atomically points the given tenants at g — the migration cutover
// flip. Lookups before the call route to the tenants' previous groups,
// lookups after it route to g; no lookup ever observes a torn state.
func (p *Plane) Index(tenantIDs []string, g *GroupRuntime) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range tenantIDs {
		p.byTen[id] = entry(g, id)
	}
}

// Unindex removes tenants from the front-door index (tenant departure);
// subsequent lookups fail.
func (p *Plane) Unindex(tenantIDs []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range tenantIDs {
		delete(p.byTen, id)
	}
}

// Detach removes a drained group from the plane. Its domain leaves the
// domain set when no other group shares it. Any tenants still indexed to the
// group are unindexed.
func (p *Plane) Detach(g *GroupRuntime) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, og := range p.groups {
		if og == g {
			p.groups = append(p.groups[:i:i], p.groups[i+1:]...)
			break
		}
	}
	gs := p.byDom[g.dom]
	for i, og := range gs {
		if og == g {
			gs = append(gs[:i:i], gs[i+1:]...)
			break
		}
	}
	if len(gs) == 0 {
		delete(p.byDom, g.dom)
		for i, d := range p.domains {
			if d == g.dom {
				p.domains = append(p.domains[:i:i], p.domains[i+1:]...)
				break
			}
		}
	} else {
		p.byDom[g.dom] = gs
	}
	for id, e := range p.byTen {
		if e.g == g {
			delete(p.byTen, id)
		}
	}
}

// Groups returns a snapshot of the plane's groups in deployment order.
func (p *Plane) Groups() []*GroupRuntime {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*GroupRuntime, len(p.groups))
	copy(out, p.groups)
	return out
}

// GroupByID returns the group with the given plan ID.
func (p *Plane) GroupByID(id string) (*GroupRuntime, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, g := range p.groups {
		if g.Plan.ID == id {
			return g, true
		}
	}
	return nil, false
}

// InstanceByID resolves an MPPDB instance ID (a pool owner string) to its
// group and instance — the lookup the correlated-failure injector uses to
// turn pool casualties back into instance degradations.
func (p *Plane) InstanceByID(id string) (*GroupRuntime, *mppdb.Instance, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, g := range p.groups {
		for _, inst := range g.Instances {
			if inst.ID() == id {
				return g, inst, true
			}
		}
	}
	return nil, nil, false
}

// ForTenant returns the group hosting the tenant.
func (p *Plane) ForTenant(id string) (*GroupRuntime, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	e, ok := p.byTen[id]
	return e.g, ok
}

// ForTenantRef returns the group hosting the tenant together with the
// tenant's interned ref in that group, resolved once at deploy or cutover.
// The ref is NoRef when the group's router runs in string mode.
func (p *Plane) ForTenantRef(id string) (*GroupRuntime, tenant.Ref, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	e, ok := p.byTen[id]
	return e.g, e.ref, ok
}

// Tenants returns the number of indexed tenants.
func (p *Plane) Tenants() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.byTen)
}

// Sharded reports whether groups run on private clock domains.
func (p *Plane) Sharded() bool { return p.sharded }

// Hub returns the plane's telemetry hub.
func (p *Plane) Hub() *telemetry.Hub { return p.hub }

// Domains returns a snapshot of the plane's distinct clock domains.
func (p *Plane) Domains() sim.Domains {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(sim.Domains, len(p.domains))
	copy(out, p.domains)
	return out
}

// Now returns the most advanced group clock.
func (p *Plane) Now() sim.Time { return p.Domains().Now() }

// AdvanceAll drives every domain up to the target time. Read-side endpoints
// use it so a scrape reflects everything that should have happened by now.
// A domain whose groups are all shedding-only is skipped: the brownout
// controller owns its pacing, and a scrape must not queue behind — or pile
// extra work onto — an overloaded group. The membership lock is released
// before any domain advances: callbacks running inside an advance (the
// online control loop) are free to mutate the plane.
func (p *Plane) AdvanceAll(at sim.Time) {
	for _, d := range p.Domains() {
		if p.allShedding(d) {
			continue
		}
		d.Advance(at, nil)
	}
}

func (p *Plane) allShedding(d *sim.Domain) bool {
	p.mu.RLock()
	gs := append([]*GroupRuntime(nil), p.byDom[d]...)
	p.mu.RUnlock()
	if len(gs) == 0 {
		return false
	}
	for _, g := range gs {
		if !g.SheddingOnly() {
			return false
		}
	}
	return true
}

// Records returns a copy of all completed query records, concatenated in
// deployment group order (each group's records in completion order).
func (p *Plane) Records() []monitor.QueryRecord {
	var out []monitor.QueryRecord
	for _, g := range p.Groups() {
		g.dom.Do(func(*sim.Engine) {
			out = append(out, g.Monitor.Records()...)
		})
	}
	return out
}
