package runtime

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// newGroup hand-builds a two-MPPDB group on the engine, mirroring the
// Deployment Master's wiring (master itself can't be imported — it depends
// on this package).
func newGroup(t *testing.T, eng *sim.Engine, id string, tenantIDs ...string) *GroupRuntime {
	t.Helper()
	members := make([]*tenant.Tenant, 0, len(tenantIDs))
	for _, tid := range tenantIDs {
		members = append(members, &tenant.Tenant{
			ID: tid, Nodes: 2, DataGB: 10, Suite: queries.TPCH, Users: 1,
		})
	}
	var insts []*mppdb.Instance
	for i := 0; i < 2; i++ {
		inst := mppdb.New(eng, fmt.Sprintf("%s-db%d", id, i), 2)
		for _, m := range members {
			inst.DeployTenant(m.ID, m.DataGB)
		}
		insts = append(insts, inst)
	}
	mon, err := monitor.NewGroup(eng, id, 2, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := router.NewGroup(eng, id, insts, members, mon)
	if err != nil {
		t.Fatal(err)
	}
	return &GroupRuntime{
		Plan:      advisor.PlannedGroup{ID: id, TenantIDs: tenantIDs},
		Instances: insts,
		Router:    rt,
		Monitor:   mon,
		Members:   members,
	}
}

func q1(t *testing.T) *queries.Class {
	t.Helper()
	c, ok := queries.Default().ByID("TPCH-Q1")
	if !ok {
		t.Fatal("TPCH-Q1 missing from default catalog")
	}
	return c
}

func TestGroupRuntimeSubmitStatsRecords(t *testing.T) {
	eng := sim.NewEngine()
	g := newGroup(t, eng, "TG-0001", "t1", "t2")
	g.Bind(sim.NewDomain(eng))

	db, err := g.SubmitAt(sim.Second, "t1", q1(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(db, "TG-0001-db") {
		t.Errorf("routed to %q", db)
	}
	st := g.Stats()
	if st.Group != "TG-0001" || st.Members != 2 {
		t.Errorf("stats identity: %+v", st)
	}
	if st.Routed != 1 {
		t.Errorf("routed = %d, want 1", st.Routed)
	}
	if len(st.Instances) != 2 {
		t.Fatalf("%d instance snapshots", len(st.Instances))
	}
	// The query is still running somewhere in the group.
	running := 0
	for _, is := range st.Instances {
		running += is.Running
	}
	if running != 1 {
		t.Errorf("%d running, want 1", running)
	}

	// StatsAt drives the clock; the query finishes well within a day.
	st = g.StatsAt(sim.Day)
	if g.Now() != sim.Day {
		t.Errorf("Now = %v after StatsAt(Day)", g.Now())
	}
	recs := g.RecordsAt(sim.Day)
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	if recs[0].Tenant != "t1" || recs[0].MPPDB != db {
		t.Errorf("record %+v", recs[0])
	}
	if st.SLAAttainment != 1 {
		t.Errorf("attainment = %v", st.SLAAttainment)
	}
}

func TestGroupRuntimeSubmitUnknownTenant(t *testing.T) {
	eng := sim.NewEngine()
	g := newGroup(t, eng, "TG-0001", "t1")
	g.Bind(sim.NewDomain(eng))
	if _, err := g.SubmitAt(sim.Second, "ghost", q1(t), 0); err == nil {
		t.Error("submit for non-member accepted")
	}
}

func TestPlaneShardedIndexAndClocks(t *testing.T) {
	p := NewPlane(nil, true)
	var groups []*GroupRuntime
	for i := 0; i < 3; i++ {
		eng := sim.NewEngine()
		g := newGroup(t, eng, fmt.Sprintf("TG-%04d", i), fmt.Sprintf("t%d", i))
		g.Bind(sim.NewDomain(eng))
		p.Add(g)
		groups = append(groups, g)
	}
	if !p.Sharded() {
		t.Error("plane not sharded")
	}
	if len(p.Domains()) != 3 {
		t.Fatalf("%d domains, want 3", len(p.Domains()))
	}
	if p.Tenants() != 3 {
		t.Errorf("%d tenants indexed", p.Tenants())
	}
	for i, g := range groups {
		got, ok := p.ForTenant(fmt.Sprintf("t%d", i))
		if !ok || got != g {
			t.Errorf("ForTenant(t%d) = %v, %v", i, got, ok)
		}
	}
	if _, ok := p.ForTenant("ghost"); ok {
		t.Error("ghost tenant resolved")
	}
	// Clocks are independent; Plane.Now is the max.
	groups[1].AdvanceTo(5 * sim.Minute)
	if groups[0].Now() != 0 || groups[1].Now() != 5*sim.Minute {
		t.Errorf("clocks coupled: %v %v", groups[0].Now(), groups[1].Now())
	}
	if p.Now() != 5*sim.Minute {
		t.Errorf("plane Now = %v", p.Now())
	}
	p.AdvanceAll(sim.Hour)
	for i, g := range groups {
		if g.Now() != sim.Hour {
			t.Errorf("group %d at %v after AdvanceAll", i, g.Now())
		}
	}
}

func TestPlaneSharedDomainDedup(t *testing.T) {
	eng := sim.NewEngine()
	dom := sim.NewDomain(eng)
	p := NewPlane(nil, false)
	for i := 0; i < 3; i++ {
		g := newGroup(t, eng, fmt.Sprintf("TG-%04d", i), fmt.Sprintf("t%d", i))
		g.Bind(dom)
		p.Add(g)
	}
	if p.Sharded() {
		t.Error("plane reports sharded")
	}
	if len(p.Domains()) != 1 {
		t.Fatalf("%d domains, want 1 (shared)", len(p.Domains()))
	}
}

func TestPlaneRecordsGroupOrder(t *testing.T) {
	p := NewPlane(nil, true)
	class := q1(t)
	for i := 0; i < 2; i++ {
		eng := sim.NewEngine()
		g := newGroup(t, eng, fmt.Sprintf("TG-%04d", i), fmt.Sprintf("t%d", i))
		g.Bind(sim.NewDomain(eng))
		p.Add(g)
	}
	// Submit in reverse group order; Records still returns group order.
	if _, err := p.Groups()[1].SubmitAt(sim.Second, "t1", class, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Groups()[0].SubmitAt(2*sim.Second, "t0", class, 0); err != nil {
		t.Fatal(err)
	}
	p.AdvanceAll(sim.Day)
	recs := p.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Tenant != "t0" || recs[1].Tenant != "t1" {
		t.Errorf("records out of group order: %s, %s", recs[0].Tenant, recs[1].Tenant)
	}
}

// TestGroupRuntimeConcurrentSubmits exercises the locked methods from many
// goroutines — meaningful under -race.
func TestGroupRuntimeConcurrentSubmits(t *testing.T) {
	eng := sim.NewEngine()
	g := newGroup(t, eng, "TG-0001", "t1", "t2", "t3", "t4")
	g.Bind(sim.NewDomain(eng))
	class := q1(t)
	var wg sync.WaitGroup
	const per = 25
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid := fmt.Sprintf("t%d", w+1)
			for i := 0; i < per; i++ {
				at := sim.Time(i+1) * sim.Second
				if _, err := g.SubmitAt(at, tid, class, 0); err != nil {
					t.Errorf("submit %s: %v", tid, err)
					return
				}
				_ = g.Stats()
			}
		}()
	}
	wg.Wait()
	st := g.StatsAt(sim.Day)
	if st.Routed != 4*per {
		t.Errorf("routed = %d, want %d", st.Routed, 4*per)
	}
	if got := len(g.RecordsAt(sim.Day)); got != 4*per {
		t.Errorf("%d records, want %d", got, 4*per)
	}
}
