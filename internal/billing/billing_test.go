package billing

import (
	"math"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/tenant"
)

func meterWith(t *testing.T, rates Rates) *Meter {
	t.Helper()
	tenants := map[string]*tenant.Tenant{
		"a": {ID: "a", Nodes: 4, DataGB: 400, Users: 1},
		"b": {ID: "b", Nodes: 2, DataGB: 200, Users: 1},
	}
	m, err := NewMeter(rates, tenants)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func rec(tenantID string, start, end sim.Time) monitor.QueryRecord {
	return monitor.QueryRecord{Tenant: tenantID, Submit: start, Finish: end, SLATarget: sim.MaxTime}
}

func TestRatesValidate(t *testing.T) {
	if err := (Rates{BasePerNodeHour: -1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := DefaultRates().Validate(); err != nil {
		t.Errorf("default rates rejected: %v", err)
	}
	if _, err := NewMeter(Rates{UsagePerNodeHour: -1}, nil); err == nil {
		t.Error("NewMeter accepted bad rates")
	}
}

func TestMeterBasics(t *testing.T) {
	m := meterWith(t, Rates{BasePerNodeHour: 1, UsagePerNodeHour: 10})
	// Tenant a: two overlapping queries (1h total busy, not 1.5h).
	if err := m.RecordAll([]monitor.QueryRecord{
		rec("a", 0, sim.Hour),
		rec("a", 30*sim.Minute, sim.Hour),
		rec("b", 2*sim.Hour, 3*sim.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	inv, err := m.Invoices(0, 24*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv) != 2 || inv[0].Tenant != "a" || inv[1].Tenant != "b" {
		t.Fatalf("invoices = %+v", inv)
	}
	a := inv[0]
	if a.ActiveTime != time.Hour {
		t.Errorf("a active = %v, want 1h (union, not sum)", a.ActiveTime)
	}
	if a.Queries != 2 {
		t.Errorf("a queries = %d", a.Queries)
	}
	// Base: 1 $/nh × 4 nodes × 24h = 96; usage: 10 × 4 × 1 = 40.
	if math.Abs(a.Base-96) > 1e-9 || math.Abs(a.Usage-40) > 1e-9 || math.Abs(a.Total-136) > 1e-9 {
		t.Errorf("a bill = %+v", a)
	}
	b := inv[1]
	// Base: 1×2×24 = 48; usage: 10×2×1 = 20.
	if math.Abs(b.Total-68) > 1e-9 {
		t.Errorf("b bill = %+v", b)
	}
}

func TestMeterPeriodClipping(t *testing.T) {
	m := meterWith(t, Rates{BasePerNodeHour: 0, UsagePerNodeHour: 1})
	// Activity straddles the period boundary: only the in-period half bills.
	m.Record(rec("a", 23*sim.Hour, 25*sim.Hour))
	inv, err := m.Invoices(0, 24*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if inv[0].ActiveTime != time.Hour {
		t.Errorf("clipped active = %v, want 1h", inv[0].ActiveTime)
	}
}

func TestMeterErrors(t *testing.T) {
	m := meterWith(t, DefaultRates())
	if err := m.Record(rec("ghost", 0, sim.Hour)); err == nil {
		t.Error("unknown tenant accepted")
	}
	if err := m.Record(rec("a", sim.Hour, 0)); err == nil {
		t.Error("negative-duration record accepted")
	}
	if _, err := m.Invoices(sim.Hour, 0); err == nil {
		t.Error("inverted period accepted")
	}
	if err := m.RecordAll([]monitor.QueryRecord{rec("ghost", 0, 1)}); err == nil {
		t.Error("RecordAll swallowed the error")
	}
}

func TestIdleTenantPaysBaseOnly(t *testing.T) {
	m := meterWith(t, Rates{BasePerNodeHour: 2, UsagePerNodeHour: 100})
	inv, err := m.Invoices(0, 12*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range inv {
		if i.Usage != 0 {
			t.Errorf("%s billed usage while idle: %+v", i.Tenant, i)
		}
		want := 2 * float64(i.Nodes) * 12
		if math.Abs(i.Base-want) > 1e-9 {
			t.Errorf("%s base = %v, want %v", i.Tenant, i.Base, want)
		}
	}
}

// TestMarginConsolidationUpside is the §1 economics: tenants pay for the
// nodes they request; the provider runs the consolidated cluster. With the
// paper's 18.7% consolidation, the same tariff flips from break-even to
// profitable.
func TestMarginConsolidationUpside(t *testing.T) {
	m := meterWith(t, Rates{BasePerNodeHour: 1, UsagePerNodeHour: 0})
	inv, err := m.Invoices(0, 24*sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Unconsolidated: the provider runs all 6 requested nodes at cost 1/nh
	// — revenue 6·24 = cost 6·24.
	flat := Margin(inv, 6, 1)
	if math.Abs(flat.Margin) > 1e-9 {
		t.Errorf("unconsolidated margin = %v, want 0", flat.Margin)
	}
	// Consolidated onto 2 nodes: margin = (6-2)·24.
	con := Margin(inv, 2, 1)
	if math.Abs(con.Margin-96) > 1e-9 {
		t.Errorf("consolidated margin = %v, want 96", con.Margin)
	}
	if con.RequestedNodeHours != 144 || con.ProvisionedNodeHours != 48 {
		t.Errorf("node-hours: %+v", con)
	}
}
