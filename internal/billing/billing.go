// Package billing implements Thrifty's pricing model (thesis §3): "Thrifty
// adopts a pricing model that charges a tenant based on the number of
// requested nodes (the degree of parallelism) and its active usage."
//
// A tenant's bill for a period is
//
//	base rate · nodes · period  +  usage rate · nodes · active time
//
// where active time uses the same strong notion as routing: the union of
// intervals during which the tenant had at least one query executing. The
// meter consumes completed query records (from the Tenant Activity Monitor
// or a replay report) and produces per-tenant invoices; the provider-margin
// report contrasts revenue-bearing requested nodes with the consolidated
// cluster the provider actually runs.
package billing

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/epoch"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// Rates configures the tariff.
type Rates struct {
	// BasePerNodeHour is charged for every requested node, active or not
	// (the reservation component).
	BasePerNodeHour float64
	// UsagePerNodeHour is charged per requested node while the tenant is
	// active.
	UsagePerNodeHour float64
	// Currency labels the amounts (display only).
	Currency string
}

// DefaultRates returns a plausible 2013-era tariff: the thesis quotes
// commercial MPPDB software at ~USD 15K per core, which consolidation lets
// the provider amortize across tenants.
func DefaultRates() Rates {
	return Rates{BasePerNodeHour: 0.35, UsagePerNodeHour: 1.40, Currency: "USD"}
}

// Validate checks the tariff.
func (r Rates) Validate() error {
	if r.BasePerNodeHour < 0 || r.UsagePerNodeHour < 0 {
		return fmt.Errorf("billing: negative rate in %+v", r)
	}
	return nil
}

// Invoice is one tenant's bill for a metering period.
type Invoice struct {
	Tenant string
	Nodes  int
	// Period is the metered span.
	Period time.Duration
	// ActiveTime is the tenant's summed busy time within the period.
	ActiveTime time.Duration
	// Queries is the number of completed queries.
	Queries int
	// Base and Usage are the two charge components; Total is their sum.
	Base, Usage, Total float64
}

// Meter accumulates usage per tenant.
type Meter struct {
	rates   Rates
	tenants map[string]*tenant.Tenant
	// busy accumulates activity intervals per tenant.
	busy map[string][]epoch.Interval
	// queries counts completions per tenant.
	queries map[string]int
}

// NewMeter creates a meter for the given tenants.
func NewMeter(rates Rates, tenants map[string]*tenant.Tenant) (*Meter, error) {
	if err := rates.Validate(); err != nil {
		return nil, err
	}
	return &Meter{
		rates:   rates,
		tenants: tenants,
		busy:    make(map[string][]epoch.Interval),
		queries: make(map[string]int),
	}, nil
}

// Record meters one completed query.
func (m *Meter) Record(rec monitor.QueryRecord) error {
	if _, ok := m.tenants[rec.Tenant]; !ok {
		return fmt.Errorf("billing: unknown tenant %s", rec.Tenant)
	}
	if rec.Finish < rec.Submit {
		return fmt.Errorf("billing: record for %s finishes before it starts", rec.Tenant)
	}
	m.busy[rec.Tenant] = append(m.busy[rec.Tenant], epoch.Interval{Start: rec.Submit, End: rec.Finish})
	m.queries[rec.Tenant]++
	return nil
}

// RecordAll meters a batch of records.
func (m *Meter) RecordAll(recs []monitor.QueryRecord) error {
	for _, r := range recs {
		if err := m.Record(r); err != nil {
			return err
		}
	}
	return nil
}

// Invoices produces per-tenant bills for the period [from, to), sorted by
// tenant ID. Concurrent queries of one tenant are not double-billed: the
// active time is the union of the query intervals.
func (m *Meter) Invoices(from, to sim.Time) ([]Invoice, error) {
	if to <= from {
		return nil, fmt.Errorf("billing: period [%v,%v)", from, to)
	}
	period := to.Sub(from)
	out := make([]Invoice, 0, len(m.tenants))
	for id, tn := range m.tenants {
		act := epoch.Normalize(m.busy[id]).Clip(from, to)
		activeDur := time.Duration(act.Total())
		inv := Invoice{
			Tenant:     id,
			Nodes:      tn.Nodes,
			Period:     period,
			ActiveTime: activeDur,
			Queries:    m.queries[id],
		}
		inv.Base = m.rates.BasePerNodeHour * float64(tn.Nodes) * period.Hours()
		inv.Usage = m.rates.UsagePerNodeHour * float64(tn.Nodes) * activeDur.Hours()
		inv.Total = inv.Base + inv.Usage
		out = append(out, inv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out, nil
}

// MarginReport contrasts the revenue side (tenants pay for requested nodes)
// with the cost side (the provider runs the consolidated cluster) — the
// provider's consolidation upside (§1: "a lower total cost of ownership").
type MarginReport struct {
	// Revenue is the summed invoice total.
	Revenue float64
	// RequestedNodeHours is what tenants believe they rent.
	RequestedNodeHours float64
	// ProvisionedNodeHours is what the provider actually runs.
	ProvisionedNodeHours float64
	// CostPerNodeHour is the provider's node cost assumption.
	CostPerNodeHour float64
	// Cost and Margin follow.
	Cost, Margin float64
}

// Margin computes the provider-side economics for invoices issued against a
// deployment of provisionedNodes over the same period.
func Margin(invoices []Invoice, provisionedNodes int, costPerNodeHour float64) MarginReport {
	rep := MarginReport{CostPerNodeHour: costPerNodeHour}
	var period time.Duration
	for _, inv := range invoices {
		rep.Revenue += inv.Total
		rep.RequestedNodeHours += float64(inv.Nodes) * inv.Period.Hours()
		if inv.Period > period {
			period = inv.Period
		}
	}
	rep.ProvisionedNodeHours = float64(provisionedNodes) * period.Hours()
	rep.Cost = rep.ProvisionedNodeHours * costPerNodeHour
	rep.Margin = rep.Revenue - rep.Cost
	return rep
}
