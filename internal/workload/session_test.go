package workload

import (
	"math/rand"
	"testing"

	"repro/internal/queries"
	"repro/internal/sim"
)

func TestCollectSessionBasics(t *testing.T) {
	cat := queries.Default()
	rng := rand.New(rand.NewSource(11))
	s, err := CollectSession(cat, 4, queries.TPCH, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 4 || s.Suite != queries.TPCH {
		t.Errorf("log header: %+v", s)
	}
	if s.Users < 1 || s.Users > MaxUsers {
		t.Errorf("users = %d", s.Users)
	}
	if len(s.Events) == 0 {
		t.Fatal("no events collected in 3 hours")
	}
	horizon := sim.Duration(SessionLength)
	prev := sim.Time(-1)
	for i, ev := range s.Events {
		if ev.Offset < prev {
			t.Fatalf("event %d out of order: %v < %v", i, ev.Offset, prev)
		}
		prev = ev.Offset
		if ev.Offset >= horizon+sim.Duration(PauseMaxSec)*sim.Second {
			t.Errorf("event %d submitted at %v, far beyond the session", i, ev.Offset)
		}
		if ev.Duration <= 0 {
			t.Errorf("event %d has duration %v", i, ev.Duration)
		}
		if _, ok := cat.ByID(ev.ClassID); !ok {
			t.Errorf("event %d references unknown class %q", i, ev.ClassID)
		}
		if ev.User < 0 || ev.User >= s.Users {
			t.Errorf("event %d by user %d of %d", i, ev.User, s.Users)
		}
	}
	if !s.Activity.Valid() {
		t.Error("activity not normalized")
	}
	if s.Activity.Total() <= 0 {
		t.Error("no activity recorded")
	}
}

func TestCollectSessionSuiteRespected(t *testing.T) {
	cat := queries.Default()
	s, err := CollectSession(cat, 2, queries.TPCDS, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range s.Events {
		cl, _ := cat.ByID(ev.ClassID)
		if cl.Suite != queries.TPCDS {
			t.Fatalf("TPC-DS session contains %s", ev.ClassID)
		}
	}
}

func TestCollectSessionDeterministic(t *testing.T) {
	cat := queries.Default()
	a, err := CollectSession(cat, 8, queries.TPCH, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectSession(cat, 8, queries.TPCH, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) || a.Users != b.Users {
		t.Fatalf("non-deterministic: %d/%d events, %d/%d users",
			len(a.Events), len(b.Events), a.Users, b.Users)
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

func TestCollectSessionErrors(t *testing.T) {
	cat := queries.Default()
	if _, err := CollectSession(cat, 0, queries.TPCH, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero-node session accepted")
	}
	empty, _ := queries.NewCatalog(nil)
	if _, err := CollectSession(empty, 2, queries.TPCH, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty catalog accepted")
	}
}

func TestBatchesShareBatchID(t *testing.T) {
	cat := queries.Default()
	s, err := CollectSession(cat, 2, queries.TPCH, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	// All members of one batch are submitted at the same instant.
	byBatch := map[int][]SessionEvent{}
	for _, ev := range s.Events {
		byBatch[ev.Batch] = append(byBatch[ev.Batch], ev)
	}
	sawMulti := false
	for b, evs := range byBatch {
		if len(evs) > MaxBatch {
			t.Errorf("batch %d has %d members (max %d)", b, len(evs), MaxBatch)
		}
		if len(evs) > 1 {
			sawMulti = true
			for _, ev := range evs {
				if ev.Offset != evs[0].Offset || ev.User != evs[0].User {
					t.Errorf("batch %d not a simultaneous single-user submission", b)
				}
			}
		}
	}
	if !sawMulti {
		t.Log("note: no multi-query batch in this seed (p=0.22); not a failure")
	}
}

func TestBuildLibraryAndPick(t *testing.T) {
	cat := queries.Default()
	lib, err := BuildLibrary(cat, []int{2, 4}, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.Sizes(); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("Sizes = %v", got)
	}
	rng := rand.New(rand.NewSource(1))
	s, err := lib.Pick(rng, 4, queries.TPCDS)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 4 || s.Suite != queries.TPCDS {
		t.Errorf("picked wrong class: %d-node %v", s.Nodes, s.Suite)
	}
	if _, err := lib.Pick(rng, 16, queries.TPCH); err == nil {
		t.Error("pick of missing class accepted")
	}
	if _, err := BuildLibrary(cat, []int{2}, 0, 1); err == nil {
		t.Error("perClass=0 accepted")
	}
	if f := lib.MeanBusyFraction(); f <= 0 || f >= 1 {
		t.Errorf("MeanBusyFraction = %v", f)
	}
	if (&Library{logs: map[libKey][]*SessionLog{}}).MeanBusyFraction() != 0 {
		t.Error("empty library busy fraction not 0")
	}
}

// TestSessionBusyCalibration pins the within-session activity level the
// paper's consolidation numbers depend on: a tenant is instantaneously busy
// only a few percent of its office-hour sessions (queries of seconds between
// think times of minutes) — the regime in which ~16-tenant groups satisfy
// R=3 / P=99.9% and the per-minute active tenant ratio reads ≈11.9%.
func TestSessionBusyCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs a sample of sessions")
	}
	cat := queries.Default()
	lib, err := BuildLibrary(cat, []int{2, 8, 32}, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := lib.MeanBusyFraction()
	if f < 0.02 || f > 0.12 {
		t.Errorf("mean session busy fraction = %.3f, want 0.02..0.12", f)
	}
}
