package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/epoch"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// MonitorEpoch is the Tenant Activity Monitor's reporting granularity for
// the *active tenant ratio* statistic: a tenant counts as active in a
// reporting interval if any of its queries ran during it. The paper quotes
// ratios of 8.9–12% (11.9% at defaults) from its monitor; with per-minute
// reporting our generated populations read the same (≈11%), while the
// instantaneous (10 s epoch) ratio is ≈3% — queries last seconds, think
// times minutes. Grouping always uses the fine epoch grid; this constant
// only standardizes the reported statistic.
const MonitorEpoch = 60 * sim.Second

// ComposeConfig controls step 2 of log generation (§7.1): how per-tenant
// 30-day activity logs are assembled from the step-1 session library.
type ComposeConfig struct {
	// Days is the log horizon in days (paper: 30). Day 0 is a Monday.
	Days int
	// Lunch inserts the two-hour lunch break between the morning and
	// afternoon sessions. Disabling it is the paper's Fig 7.6 modification
	// (2)/(3) that raises the active tenant ratio.
	Lunch bool
	// Holidays is the number of weekday public holidays within the horizon
	// (paper: 2). Holidays are random weekdays, shared by all tenants in the
	// same time zone.
	Holidays int
	// Seed drives all randomness of the composition.
	Seed int64
}

// DefaultComposeConfig returns the paper's defaults.
func DefaultComposeConfig(seed int64) ComposeConfig {
	return ComposeConfig{Days: 30, Lunch: true, Holidays: 2, Seed: seed}
}

// Horizon returns the total virtual-time span of the composed logs.
func (c ComposeConfig) Horizon() sim.Time {
	return sim.Time(c.Days) * sim.Day
}

// SessionRef schedules one session-log template at an absolute start time.
type SessionRef struct {
	Start sim.Time
	Log   *SessionLog
}

// TenantLog is a tenant's composed multi-day activity log.
type TenantLog struct {
	Tenant *tenant.Tenant
	// Sessions are the scheduled session templates, in start order. The
	// runtime simulator materializes query submissions from these.
	Sessions []SessionRef
	// Activity is the merged interval set over [0, Horizon) during which
	// the tenant has at least one query executing.
	Activity epoch.Activity
}

// Compose builds the multi-tenant activity logs (§7.1 step 2). Each tenant
// schedules three sessions per working day at its zone offset O: morning
// office hours at O, afternoon at O+3(+2 with lunch), and report
// generation / remote-office activity 9 hours after the afternoon session
// begins. Weekends (two days in seven) and per-zone holidays are inactive.
func Compose(lib *Library, tenants []*tenant.Tenant, cfg ComposeConfig) ([]*TenantLog, error) {
	if cfg.Days < 1 {
		return nil, fmt.Errorf("workload: %d-day horizon", cfg.Days)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	horizon := cfg.Horizon()

	// Pre-draw holiday weekdays per time zone: "that two days are randomly
	// chosen, but they are the same for the tenants in the same time zone".
	var weekdays []int
	for d := 0; d < cfg.Days; d++ {
		if d%7 < 5 {
			weekdays = append(weekdays, d)
		}
	}
	holidayByZone := make(map[int]map[int]bool)
	zones := map[int]bool{}
	for _, t := range tenants {
		zones[t.ZoneOffsetHours] = true
	}
	zoneList := make([]int, 0, len(zones))
	for z := range zones {
		zoneList = append(zoneList, z)
	}
	sort.Ints(zoneList)
	for _, z := range zoneList {
		h := make(map[int]bool)
		perm := rng.Perm(len(weekdays))
		for i := 0; i < cfg.Holidays && i < len(weekdays); i++ {
			h[weekdays[perm[i]]] = true
		}
		holidayByZone[z] = h
	}

	// Daily session-start offsets relative to the zone offset.
	afternoon := 3 * sim.Hour
	if cfg.Lunch {
		afternoon += 2 * sim.Hour
	}
	report := afternoon + 9*sim.Hour

	out := make([]*TenantLog, 0, len(tenants))
	for _, tn := range tenants {
		tl := &TenantLog{Tenant: tn}
		holidays := holidayByZone[tn.ZoneOffsetHours]
		base := sim.Time(tn.ZoneOffsetHours) * sim.Hour
		var intervals []epoch.Interval
		for d := 0; d < cfg.Days; d++ {
			if d%7 >= 5 || holidays[d] {
				continue // weekend or public holiday
			}
			dayStart := sim.Time(d)*sim.Day + base
			for _, off := range []sim.Time{0, afternoon, report} {
				s, err := lib.Pick(rng, tn.Nodes, tn.Suite)
				if err != nil {
					return nil, err
				}
				start := dayStart + off
				if start >= horizon {
					continue
				}
				tl.Sessions = append(tl.Sessions, SessionRef{Start: start, Log: s})
				for _, iv := range s.Activity {
					ivs := epoch.Interval{Start: start + iv.Start, End: start + iv.End}
					if ivs.Start >= horizon {
						break
					}
					if ivs.End > horizon {
						ivs.End = horizon
					}
					intervals = append(intervals, ivs)
				}
			}
		}
		tl.Activity = epoch.Normalize(intervals)
		out = append(out, tl)
	}
	return out, nil
}

// QueryEvent is one materialized query submission for runtime replay.
type QueryEvent struct {
	At      sim.Time
	Tenant  string
	ClassID string
	User    int
	Batch   int
	// SLATarget is the query's before-consolidation latency: its duration
	// as recorded on the tenant's own requested-size MPPDB during step-1
	// collection, *including* contention from the tenant's own concurrent
	// queries ("load balancing within a tenant is not TDD's but the
	// tenant's own issue", §4.4).
	SLATarget sim.Time
}

// Materialize expands a tenant log into the individual query submissions of
// the window [from, to). The runtime simulator (Fig 7.7) replays these
// against a deployment; submissions are open-loop at their logged times.
func (tl *TenantLog) Materialize(from, to sim.Time) []QueryEvent {
	var out []QueryEvent
	for _, ref := range tl.Sessions {
		if ref.Start >= to {
			break
		}
		for _, ev := range ref.Log.Events {
			at := ref.Start + ev.Offset
			if at < from || at >= to {
				continue
			}
			out = append(out, QueryEvent{
				At:        at,
				Tenant:    tl.Tenant.ID,
				ClassID:   ev.ClassID,
				User:      ev.User,
				Batch:     ev.Batch,
				SLATarget: ev.Duration,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// MaterializeAll merges the query events of several tenant logs in time
// order.
func MaterializeAll(logs []*TenantLog, from, to sim.Time) []QueryEvent {
	var out []QueryEvent
	for _, tl := range logs {
		out = append(out, tl.Materialize(from, to)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Stats summarizes a composed tenant population's activity.
type Stats struct {
	// Tenants is the population size.
	Tenants int
	// MeanActiveRatio is the average, over epochs in which at least one
	// tenant is active, of the fraction of tenants active in that epoch —
	// the paper's "active tenant ratio" (11.9% under default parameters).
	MeanActiveRatio float64
	// MaxActive is the peak number of concurrently active tenants.
	MaxActive int
	// PerTenantActiveRatio is the mean fraction of the horizon each tenant
	// is active.
	PerTenantActiveRatio float64
}

// ComputeStats derives population activity statistics on the given grid.
func ComputeStats(logs []*TenantLog, grid epoch.Grid) Stats {
	cs := epoch.NewCountSet(grid.D)
	var perTenant float64
	horizon := sim.Time(grid.D) * grid.Width
	for _, tl := range logs {
		cs.Add(grid.Quantize(tl.Activity))
		perTenant += tl.Activity.Ratio(horizon)
	}
	hist := cs.Hist()
	var busyEpochs, tenantEpochs int64
	for c := 1; c < len(hist); c++ {
		busyEpochs += hist[c]
		tenantEpochs += int64(c) * hist[c]
	}
	st := Stats{Tenants: len(logs), MaxActive: cs.MaxCount()}
	if busyEpochs > 0 && len(logs) > 0 {
		st.MeanActiveRatio = float64(tenantEpochs) / float64(busyEpochs) / float64(len(logs))
	}
	if len(logs) > 0 {
		st.PerTenantActiveRatio = perTenant / float64(len(logs))
	}
	return st
}

// HighActivityVariant describes the Fig 7.6 composition modifications that
// raise the active tenant ratio.
type HighActivityVariant int

const (
	// VariantDefault is the unmodified composition (≈11.9% in the paper).
	VariantDefault HighActivityVariant = iota
	// VariantNorthAmerica restricts tenants to the +0/+3 offsets
	// (≈25.1%).
	VariantNorthAmerica
	// VariantNorthAmericaNoLunch additionally removes the lunch break
	// (≈30.7%).
	VariantNorthAmericaNoLunch
	// VariantSingleZoneNoLunch puts every tenant at +0 with no lunch
	// (≈34.4%).
	VariantSingleZoneNoLunch
)

// String names the variant as in §7.4.
func (v HighActivityVariant) String() string {
	switch v {
	case VariantDefault:
		return "default"
	case VariantNorthAmerica:
		return "north-america"
	case VariantNorthAmericaNoLunch:
		return "north-america-no-lunch"
	case VariantSingleZoneNoLunch:
		return "single-zone-no-lunch"
	default:
		return fmt.Sprintf("HighActivityVariant(%d)", int(v))
	}
}

// Offsets returns the allowed time-zone offsets for the variant.
func (v HighActivityVariant) Offsets() []int {
	switch v {
	case VariantNorthAmerica, VariantNorthAmericaNoLunch:
		return []int{0, 3}
	case VariantSingleZoneNoLunch:
		return []int{0}
	default:
		return tenant.ZoneOffsets
	}
}

// Lunch reports whether the variant keeps the lunch break.
func (v HighActivityVariant) Lunch() bool {
	return v == VariantDefault || v == VariantNorthAmerica
}

// ComposeVariant draws a tenant population and composes logs under one of
// the Fig 7.6 variants.
func ComposeVariant(lib *Library, cat *queries.Catalog, n int, theta float64, sizes []int,
	v HighActivityVariant, days int, seed int64) ([]*TenantLog, error) {
	_ = cat // reserved: variants may later reweight suites
	rng := rand.New(rand.NewSource(seed))
	pop, err := tenant.Population(rng, n, theta, sizes, v.Offsets())
	if err != nil {
		return nil, err
	}
	cfg := ComposeConfig{Days: days, Lunch: v.Lunch(), Holidays: 2, Seed: seed + 1}
	return Compose(lib, pop, cfg)
}
