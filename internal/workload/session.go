// Package workload implements the paper's tenant-log generation methodology
// (§7.1) — the experimental testbed contribution.
//
// Step 1 (this file) imitates individual tenants of each size class and
// collects 3-hour "real query logs" by running user populations against a
// dedicated simulated MPPDB. Step 2 (compose.go) composes 30-day
// multi-tenant activity logs from those session logs using time-zone
// offsets, office-hour schedules, weekends, and holidays.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/epoch"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/sim"
)

// SessionLength is the duration of one collected query log (§7.1: "each time
// the above procedure is carried out for 3 hours").
const SessionLength = 3 * time.Hour

// Step-1 user behaviour parameters (§7.1).
const (
	// MaxUsers is the upper bound of S, the tenant's autonomous users.
	MaxUsers = 5
	// MaxBatch is the upper bound of M, the batch size.
	MaxBatch = 10
	// PauseMinSec / PauseMaxSec bound the think time W in seconds.
	PauseMinSec = 3
	PauseMaxSec = 600
)

// BatchProb is the probability that a user action is a batch submission (b)
// rather than a single query (a). The thesis leaves the action distribution
// P underspecified ("using a uniform distribution as P"); 0.2 is the
// calibration that reproduces the paper's reported average active tenant
// ratios (8.9–12%, 11.9% at defaults) given our query latency profiles.
const BatchProb = 0.2

// MeanActionQueries is the expected number of queries one user action puts
// in flight: a single query with probability 1−BatchProb, otherwise a batch
// of M ~ U[1, MaxBatch] submitted at once. The shared-work capacity model
// uses it as the in-flight draw count per active stream.
const MeanActionQueries = (1-BatchProb)*1 + BatchProb*(1+MaxBatch)/2

// SessionEvent is one query submission within a session log.
type SessionEvent struct {
	// Offset is the submission time relative to the session start.
	Offset sim.Time
	// ClassID identifies the query class (resolve via a queries.Catalog).
	ClassID string
	// User is the submitting user's index within the tenant (0-based).
	User int
	// Batch is a per-session batch sequence number; single submissions and
	// all members of one batch share one value.
	Batch int
	// Duration is the observed execution time during collection (on the
	// tenant's own requested-size MPPDB, including contention from the
	// tenant's other concurrent queries).
	Duration sim.Time
}

// SessionLog is one collected 3-hour query log of an artificial tenant
// (§7.1 step 1): "Each query log collected is essentially a 3-hour real
// query log of an artificial tenant, which requests, say, a 16-node MPPDB
// with a maximum of 4 active users."
type SessionLog struct {
	// Nodes is the size class the log was collected on.
	Nodes int
	// Suite is the benchmark the users drew queries from.
	Suite queries.Suite
	// Users is S, the number of autonomous users during collection.
	Users int
	// Events are the submissions in time order.
	Events []SessionEvent
	// Activity is the merged set of intervals (relative to session start)
	// during which at least one query was executing.
	Activity epoch.Activity
}

// CollectSession runs the paper's step-1 procedure once: S ∈ [1, MaxUsers]
// autonomous users submit either a single random query or a batch of
// M ∈ [1, MaxBatch] random queries to a dedicated nodes-node MPPDB holding
// 100 GB per node, wait for completion, pause W ∈ [PauseMin, PauseMax]
// seconds, and repeat; no new action starts after the 3-hour mark.
func CollectSession(cat *queries.Catalog, nodes int, suite queries.Suite, rng *rand.Rand) (*SessionLog, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("workload: size class %d", nodes)
	}
	eng := sim.NewEngine()
	inst := mppdb.New(eng, "collector", nodes)
	const self = "self"
	inst.DeployTenant(self, 100*float64(nodes))

	log := &SessionLog{
		Nodes: nodes,
		Suite: suite,
		Users: 1 + rng.Intn(MaxUsers),
	}
	horizon := sim.Duration(SessionLength)
	var intervals []epoch.Interval
	batchSeq := 0

	// submit one query and return its event index so completion can fill in
	// the duration.
	submit := func(user, batch int, onDone func()) error {
		class := cat.Random(rng, suite)
		if class == nil {
			return fmt.Errorf("workload: empty suite %v", suite)
		}
		idx := len(log.Events)
		log.Events = append(log.Events, SessionEvent{
			Offset:  eng.Now(),
			ClassID: class.ID,
			User:    user,
			Batch:   batch,
		})
		_, err := inst.Submit(self, class, func(r mppdb.Result) {
			log.Events[idx].Duration = r.Latency()
			intervals = append(intervals, epoch.Interval{Start: r.Submit, End: r.Finish})
			onDone()
		})
		return err
	}

	var act func(user int) // one user's action loop
	var submitErr error
	act = func(user int) {
		if submitErr != nil || eng.Now() >= horizon {
			return
		}
		next := func() {
			// Pause W seconds, then act again (if within the session).
			w := time.Duration(PauseMinSec+rng.Intn(PauseMaxSec-PauseMinSec+1)) * time.Second
			eng.After(w, func(sim.Time) { act(user) })
		}
		batchSeq++
		if rng.Float64() >= BatchProb {
			// (a) single random query.
			if err := submit(user, batchSeq, next); err != nil {
				submitErr = err
			}
			return
		}
		// (b) batch of M random queries, complete only when all finish.
		m := 1 + rng.Intn(MaxBatch)
		remaining := m
		done := func() {
			remaining--
			if remaining == 0 {
				next()
			}
		}
		for i := 0; i < m; i++ {
			if err := submit(user, batchSeq, done); err != nil {
				submitErr = err
				return
			}
		}
	}
	// Users log in over the first think-time window rather than all at the
	// session's first instant; a synchronized burst at every 9:00:00 would
	// be an artifact of the generator, not of office-hour behaviour.
	for u := 0; u < log.Users; u++ {
		u := u
		w0 := sim.Time(PauseMinSec+rng.Intn(PauseMaxSec-PauseMinSec+1)) * sim.Second
		eng.Schedule(w0, func(sim.Time) { act(u) })
	}
	eng.RunAll() // in-flight queries at the 3-hour mark run to completion
	if submitErr != nil {
		return nil, submitErr
	}
	log.Activity = epoch.Normalize(intervals)
	return log, nil
}

// BusyFraction returns the share of the 3-hour session during which the
// tenant had at least one query running — the within-session activity level
// that, composed over office hours, produces the paper's ~10–12% active
// tenant ratios.
func (l *SessionLog) BusyFraction() float64 {
	return l.Activity.Ratio(sim.Duration(SessionLength))
}

// Library is the step-1 output: a pool of collected session logs per
// (size class, suite), from which step 2 composes tenant activity.
type Library struct {
	logs map[libKey][]*SessionLog
}

type libKey struct {
	nodes int
	suite queries.Suite
}

// BuildLibrary collects perClass session logs for every (size, suite)
// combination (the paper repeats the procedure 100 times per size class).
func BuildLibrary(cat *queries.Catalog, sizes []int, perClass int, seed int64) (*Library, error) {
	if perClass < 1 {
		return nil, fmt.Errorf("workload: perClass %d", perClass)
	}
	lib := &Library{logs: make(map[libKey][]*SessionLog)}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range sizes {
		for _, suite := range []queries.Suite{queries.TPCH, queries.TPCDS} {
			key := libKey{n, suite}
			for i := 0; i < perClass; i++ {
				s, err := CollectSession(cat, n, suite, rng)
				if err != nil {
					return nil, err
				}
				lib.logs[key] = append(lib.logs[key], s)
			}
		}
	}
	return lib, nil
}

// Sizes returns the size classes present in the library.
func (l *Library) Sizes() []int {
	seen := map[int]bool{}
	for k := range l.logs {
		seen[k.nodes] = true
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	for i := 1; i < len(out); i++ { // insertion sort; tiny
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Pick draws a uniformly random session log for the given class ("the
// tenant randomly picks a 3-hour query log from the logs prepared in
// Step 1", §7.1 step 2).
func (l *Library) Pick(rng *rand.Rand, nodes int, suite queries.Suite) (*SessionLog, error) {
	set := l.logs[libKey{nodes, suite}]
	if len(set) == 0 {
		return nil, fmt.Errorf("workload: no session logs for %d-node %v", nodes, suite)
	}
	return set[rng.Intn(len(set))], nil
}

// MeanBusyFraction reports the library-wide mean session busy fraction,
// used to validate workload calibration.
func (l *Library) MeanBusyFraction() float64 {
	var sum float64
	n := 0
	for _, set := range l.logs {
		for _, s := range set {
			sum += s.BusyFraction()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
