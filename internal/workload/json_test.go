package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	lib := testLibrary(t)
	tenants := testTenants(6)
	cfg := DefaultComposeConfig(3)
	cfg.Days = 7
	logs, err := Compose(lib, tenants, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, logs, cfg.Days); err != nil {
		t.Fatal(err)
	}
	got, days, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if days != 7 || len(got) != len(logs) {
		t.Fatalf("days=%d len=%d", days, len(got))
	}
	for i := range logs {
		a, b := logs[i], got[i]
		if a.Tenant.ID != b.Tenant.ID || a.Tenant.Nodes != b.Tenant.Nodes ||
			a.Tenant.Suite != b.Tenant.Suite || a.Tenant.DataGB != b.Tenant.DataGB {
			t.Fatalf("tenant %d differs: %+v vs %+v", i, a.Tenant, b.Tenant)
		}
		if len(a.Activity) != len(b.Activity) {
			t.Fatalf("tenant %d activity length differs", i)
		}
		for j := range a.Activity {
			if a.Activity[j] != b.Activity[j] {
				t.Fatalf("tenant %d interval %d differs", i, j)
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		"{",
		`{"version":2,"days":7,"tenants":[]}`,
		`{"version":1,"days":0,"tenants":[]}`,
		`{"version":1,"days":7,"tenants":[{"id":"a","nodes":2,"data_gb":200,"suite":"NOPE","users":1}]}`,
		`{"version":1,"days":7,"tenants":[{"id":"","nodes":2,"data_gb":200,"suite":"TPC-H","users":1}]}`,
	}
	for i, c := range cases {
		if _, _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("bad input %d accepted", i)
		}
	}
}
