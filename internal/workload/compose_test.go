package workload

import (
	"math/rand"
	"testing"

	"repro/internal/epoch"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// testLibrary builds a small shared library once; sessions are expensive
// enough that per-test construction would dominate the suite.
func testLibrary(t *testing.T) *Library {
	t.Helper()
	lib, err := BuildLibrary(queries.Default(), []int{2, 4}, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func testTenants(n int) []*tenant.Tenant {
	rng := rand.New(rand.NewSource(31))
	pop, err := tenant.Population(rng, n, 0.8, []int{2, 4}, tenant.ZoneOffsets)
	if err != nil {
		panic(err)
	}
	return pop
}

func TestComposeBasics(t *testing.T) {
	lib := testLibrary(t)
	tenants := testTenants(20)
	cfg := DefaultComposeConfig(5)
	cfg.Days = 14
	logs, err := Compose(lib, tenants, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 20 {
		t.Fatalf("%d logs, want 20", len(logs))
	}
	horizon := cfg.Horizon()
	for _, tl := range logs {
		if !tl.Activity.Valid() {
			t.Fatalf("%s: invalid activity", tl.Tenant.ID)
		}
		for _, iv := range tl.Activity {
			if iv.Start < 0 || iv.End > horizon {
				t.Fatalf("%s: interval %v outside horizon", tl.Tenant.ID, iv)
			}
		}
		// 14 days = 10 weekdays; minus up to 2 holidays, 3 sessions/day.
		ns := len(tl.Sessions)
		if ns < 8*3 || ns > 10*3 {
			t.Errorf("%s: %d sessions, want 24..30", tl.Tenant.ID, ns)
		}
		for _, ref := range tl.Sessions {
			if ref.Log.Nodes != tl.Tenant.Nodes {
				t.Errorf("%s: session of size %d for a %d-node tenant",
					tl.Tenant.ID, ref.Log.Nodes, tl.Tenant.Nodes)
			}
			if ref.Log.Suite != tl.Tenant.Suite {
				t.Errorf("%s: session suite mismatch", tl.Tenant.ID)
			}
		}
	}
}

func TestComposeWeekendsInactive(t *testing.T) {
	lib := testLibrary(t)
	tenants := testTenants(10)
	cfg := DefaultComposeConfig(5)
	cfg.Days = 14
	logs, err := Compose(lib, tenants, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Days 5,6 and 12,13 are weekends. Sessions start at zone offsets up to
	// +19h, and a +19h Friday report session can spill into Saturday, so we
	// check the *start* day of every session is a weekday.
	for _, tl := range logs {
		for _, ref := range tl.Sessions {
			day := int((ref.Start - sim.Time(tl.Tenant.ZoneOffsetHours)*sim.Hour) / sim.Day)
			if day%7 >= 5 {
				t.Fatalf("%s: session scheduled on weekend day %d", tl.Tenant.ID, day)
			}
		}
	}
}

func TestComposeHolidaysSharedPerZone(t *testing.T) {
	lib := testLibrary(t)
	tenants := testTenants(40)
	cfg := DefaultComposeConfig(9)
	cfg.Days = 21
	logs, err := Compose(lib, tenants, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Derive each tenant's set of inactive weekdays; within one zone all
	// tenants must share the same holidays.
	inactive := func(tl *TenantLog) map[int]bool {
		days := map[int]bool{}
		for _, ref := range tl.Sessions {
			day := int((ref.Start - sim.Time(tl.Tenant.ZoneOffsetHours)*sim.Hour) / sim.Day)
			days[day] = true
		}
		out := map[int]bool{}
		for d := 0; d < cfg.Days; d++ {
			if d%7 < 5 && !days[d] {
				out[d] = true
			}
		}
		return out
	}
	byZone := map[int]map[int]bool{}
	for _, tl := range logs {
		h := inactive(tl)
		if len(h) != cfg.Holidays {
			t.Fatalf("%s: %d holidays, want %d", tl.Tenant.ID, len(h), cfg.Holidays)
		}
		z := tl.Tenant.ZoneOffsetHours
		if prev, ok := byZone[z]; ok {
			for d := range h {
				if !prev[d] {
					t.Fatalf("zone %+d: holiday sets differ between tenants", z)
				}
			}
		} else {
			byZone[z] = h
		}
	}
}

func TestComposeDeterministic(t *testing.T) {
	lib := testLibrary(t)
	tenants := testTenants(5)
	cfg := DefaultComposeConfig(77)
	cfg.Days = 7
	a, err := Compose(lib, tenants, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compose(lib, tenants, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].Sessions) != len(b[i].Sessions) {
			t.Fatal("session counts differ")
		}
		for j := range a[i].Sessions {
			if a[i].Sessions[j].Start != b[i].Sessions[j].Start ||
				a[i].Sessions[j].Log != b[i].Sessions[j].Log {
				t.Fatal("session schedule differs between runs with equal seeds")
			}
		}
	}
}

func TestComposeErrors(t *testing.T) {
	lib := testLibrary(t)
	if _, err := Compose(lib, testTenants(2), ComposeConfig{Days: 0}); err == nil {
		t.Error("zero-day horizon accepted")
	}
	// Tenants of a size class absent from the library.
	bad := []*tenant.Tenant{{ID: "X", Nodes: 16, DataGB: 1600, Users: 1, Suite: queries.TPCH}}
	if _, err := Compose(lib, bad, DefaultComposeConfig(1)); err == nil {
		t.Error("missing size class accepted")
	}
}

func TestMaterialize(t *testing.T) {
	lib := testLibrary(t)
	tenants := testTenants(3)
	cfg := DefaultComposeConfig(13)
	cfg.Days = 7
	logs, err := Compose(lib, tenants, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := logs[0]
	all := tl.Materialize(0, cfg.Horizon())
	if len(all) == 0 {
		t.Fatal("no events materialized")
	}
	prev := sim.Time(-1)
	for _, ev := range all {
		if ev.At < prev {
			t.Fatal("events out of order")
		}
		prev = ev.At
		if ev.Tenant != tl.Tenant.ID {
			t.Errorf("event tenant %q", ev.Tenant)
		}
	}
	// Windowing: a sub-window returns a subset.
	some := tl.Materialize(sim.Day, 2*sim.Day)
	for _, ev := range some {
		if ev.At < sim.Day || ev.At >= 2*sim.Day {
			t.Errorf("event at %v outside requested window", ev.At)
		}
	}
	if len(some) >= len(all) {
		t.Error("sub-window did not reduce the event count")
	}
	merged := MaterializeAll(logs, 0, cfg.Horizon())
	if len(merged) <= len(all) {
		t.Error("MaterializeAll lost events")
	}
	prev = -1
	for _, ev := range merged {
		if ev.At < prev {
			t.Fatal("merged events out of order")
		}
		prev = ev.At
	}
}

func TestComputeStats(t *testing.T) {
	// Two tenants, hand-built activities over a 10-epoch horizon.
	grid := epoch.MustGrid(sim.Second, 10*sim.Second)
	logs := []*TenantLog{
		{Tenant: &tenant.Tenant{ID: "a"}, Activity: epoch.Activity{{Start: 0, End: 4 * sim.Second}}},
		{Tenant: &tenant.Tenant{ID: "b"}, Activity: epoch.Activity{{Start: 2 * sim.Second, End: 6 * sim.Second}}},
	}
	st := ComputeStats(logs, grid)
	if st.Tenants != 2 {
		t.Errorf("Tenants = %d", st.Tenants)
	}
	if st.MaxActive != 2 {
		t.Errorf("MaxActive = %d", st.MaxActive)
	}
	// Busy epochs: 0..5 (6 epochs); tenant-epochs: 4+4=8; ratio = 8/(6·2).
	want := 8.0 / 12.0
	if diff := st.MeanActiveRatio - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("MeanActiveRatio = %v, want %v", st.MeanActiveRatio, want)
	}
	if st.PerTenantActiveRatio != 0.4 {
		t.Errorf("PerTenantActiveRatio = %v, want 0.4", st.PerTenantActiveRatio)
	}
	// Degenerate: no logs.
	empty := ComputeStats(nil, grid)
	if empty.MeanActiveRatio != 0 || empty.MaxActive != 0 {
		t.Errorf("empty stats: %+v", empty)
	}
}

func TestHighActivityVariants(t *testing.T) {
	for _, c := range []struct {
		v       HighActivityVariant
		offsets int
		lunch   bool
	}{
		{VariantDefault, len(tenant.ZoneOffsets), true},
		{VariantNorthAmerica, 2, true},
		{VariantNorthAmericaNoLunch, 2, false},
		{VariantSingleZoneNoLunch, 1, false},
	} {
		if got := len(c.v.Offsets()); got != c.offsets {
			t.Errorf("%v: %d offsets, want %d", c.v, got, c.offsets)
		}
		if c.v.Lunch() != c.lunch {
			t.Errorf("%v: lunch = %v", c.v, c.v.Lunch())
		}
		if c.v.String() == "" {
			t.Errorf("variant %d has no name", int(c.v))
		}
	}
	if HighActivityVariant(9).String() == "" {
		t.Error("unknown variant name empty")
	}
}

// TestVariantActivityOrdering reproduces the *ordering* of Fig 7.6's active
// tenant ratios: default < north-america < no-lunch < single-zone. (The
// absolute calibration is covered by the experiments harness.)
func TestVariantActivityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("composes four tenant populations")
	}
	cat := queries.Default()
	lib, err := BuildLibrary(cat, []int{2, 4}, 4, 51)
	if err != nil {
		t.Fatal(err)
	}
	days := 14
	grid := epoch.MustGrid(MonitorEpoch, sim.Time(days)*sim.Day)
	var prev float64
	for _, v := range []HighActivityVariant{
		VariantDefault, VariantNorthAmerica, VariantNorthAmericaNoLunch, VariantSingleZoneNoLunch,
	} {
		logs, err := ComposeVariant(lib, cat, 200, 0.8, []int{2, 4}, v, days, 303)
		if err != nil {
			t.Fatal(err)
		}
		st := ComputeStats(logs, grid)
		if st.MeanActiveRatio <= prev {
			t.Errorf("%v: ratio %.3f not above previous %.3f", v, st.MeanActiveRatio, prev)
		}
		prev = st.MeanActiveRatio
	}
	// The default composition lands near the paper's 11.9%.
	logs, _ := ComposeVariant(lib, cat, 200, 0.8, []int{2, 4}, VariantDefault, days, 303)
	st := ComputeStats(logs, grid)
	if st.MeanActiveRatio < 0.07 || st.MeanActiveRatio > 0.18 {
		t.Errorf("default active ratio %.3f (per-minute) outside 7%%..18%%", st.MeanActiveRatio)
	}
}
