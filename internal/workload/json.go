package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/epoch"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// The JSON interchange format carries what the Deployment Advisor needs:
// tenant descriptors and activity intervals. Session templates (needed only
// for run-time replay) are not serialized — replay works from in-process
// generation, mirroring how the paper's testbed feeds its own planner.

type logsJSON struct {
	Version int         `json:"version"`
	Days    int         `json:"days"`
	Tenants []tenantLog `json:"tenants"`
}

type tenantLog struct {
	ID       string     `json:"id"`
	Nodes    int        `json:"nodes"`
	DataGB   float64    `json:"data_gb"`
	Suite    string     `json:"suite"`
	Users    int        `json:"users"`
	Zone     int        `json:"zone_offset_hours"`
	Activity [][2]int64 `json:"activity_ns"`
}

// WriteJSON serializes tenant logs (descriptors + activity) for the CLI
// tool chain.
func WriteJSON(w io.Writer, logs []*TenantLog, days int) error {
	out := logsJSON{Version: 1, Days: days}
	for _, tl := range logs {
		e := tenantLog{
			ID:     tl.Tenant.ID,
			Nodes:  tl.Tenant.Nodes,
			DataGB: tl.Tenant.DataGB,
			Suite:  tl.Tenant.Suite.String(),
			Users:  tl.Tenant.Users,
			Zone:   tl.Tenant.ZoneOffsetHours,
		}
		for _, iv := range tl.Activity {
			e.Activity = append(e.Activity, [2]int64{int64(iv.Start), int64(iv.End)})
		}
		out.Tenants = append(out.Tenants, e)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON deserializes tenant logs written by WriteJSON. It returns the
// logs and the horizon in days.
func ReadJSON(r io.Reader) ([]*TenantLog, int, error) {
	var in logsJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, 0, fmt.Errorf("workload: decode logs: %w", err)
	}
	if in.Version != 1 {
		return nil, 0, fmt.Errorf("workload: unsupported log version %d", in.Version)
	}
	if in.Days < 1 {
		return nil, 0, fmt.Errorf("workload: %d-day horizon in logs", in.Days)
	}
	var out []*TenantLog
	for i, e := range in.Tenants {
		suite := queries.TPCH
		if e.Suite == queries.TPCDS.String() {
			suite = queries.TPCDS
		} else if e.Suite != queries.TPCH.String() {
			return nil, 0, fmt.Errorf("workload: tenant %d has unknown suite %q", i, e.Suite)
		}
		tn := &tenant.Tenant{
			ID:              e.ID,
			Nodes:           e.Nodes,
			DataGB:          e.DataGB,
			Suite:           suite,
			Users:           e.Users,
			ZoneOffsetHours: e.Zone,
		}
		if err := tn.Validate(); err != nil {
			return nil, 0, err
		}
		var ivs []epoch.Interval
		for _, a := range e.Activity {
			ivs = append(ivs, epoch.Interval{Start: sim.Time(a[0]), End: sim.Time(a[1])})
		}
		act := epoch.Normalize(ivs)
		out = append(out, &TenantLog{Tenant: tn, Activity: act})
	}
	return out, in.Days, nil
}
