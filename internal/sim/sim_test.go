package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0d00:00:00.000"},
		{Second, "0d00:00:01.000"},
		{90*Minute + 250*Millisecond, "0d01:30:00.250"},
		{3*Day + 4*Hour + 5*Minute + 6*Second, "3d04:05:06.000"},
		{-Second, "-0d00:00:01.000"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := 5 * Second
	if got := a.Add(2 * time.Second); got != 7*Second {
		t.Errorf("Add: got %v, want %v", got, 7*Second)
	}
	if got := a.Sub(2 * Second); got != 3*time.Second {
		t.Errorf("Sub: got %v, want %v", got, 3*time.Second)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds: got %v, want 1.5", got)
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*Second, func(Time) { order = append(order, 3) })
	e.Schedule(1*Second, func(Time) { order = append(order, 1) })
	e.Schedule(2*Second, func(Time) { order = append(order, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*Second {
		t.Errorf("Now() = %v, want %v", e.Now(), 3*Second)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func(Time) { order = append(order, i) })
	}
	e.RunAll()
	for i := range order {
		if order[i] != i {
			t.Fatalf("simultaneous events fired out of order: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(Second, func(Time) {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(0, func(Time) {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(Second, func(Time) { fired = true })
	e.Cancel(ev)
	if !ev.Canceled() {
		t.Error("event not marked canceled")
	}
	e.RunAll()
	if fired {
		t.Error("canceled event fired")
	}
	// Double cancel and cancel of nil are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelDuringRun(t *testing.T) {
	e := NewEngine()
	var fired []string
	var ev2 *Event
	e.Schedule(Second, func(Time) {
		fired = append(fired, "a")
		e.Cancel(ev2)
	})
	ev2 = e.Schedule(2*Second, func(Time) { fired = append(fired, "b") })
	e.Schedule(3*Second, func(Time) { fired = append(fired, "c") })
	e.RunAll()
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "c" {
		t.Errorf("fired = %v, want [a c]", fired)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for i := 1; i <= 5; i++ {
		at := Time(i) * Second
		e.Schedule(at, func(now Time) { fired = append(fired, now) })
	}
	e.Run(3 * Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3*Second {
		t.Errorf("Now() = %v, want 3s", e.Now())
	}
	// Remaining events still pending.
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.Run(10 * Second)
	if len(fired) != 5 {
		t.Errorf("fired %d events after second run, want 5", len(fired))
	}
	if e.Now() != 10*Second {
		t.Errorf("Now() advanced to %v, want 10s (horizon)", e.Now())
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(2*Second, func(now Time) {
		e.After(3*time.Second, func(now Time) { at = now })
	})
	e.RunAll()
	if at != 5*Second {
		t.Errorf("After fired at %v, want 5s", at)
	}
	// Negative delays clamp to "now".
	e2 := NewEngine()
	ran := false
	e2.After(-time.Second, func(Time) { ran = true })
	e2.RunAll()
	if !ran {
		t.Error("negative-delay event did not run")
	}
}

func TestEventsScheduledFromEvents(t *testing.T) {
	// A chain of events each scheduling the next; verifies the heap stays
	// consistent under interleaved push/pop.
	e := NewEngine()
	count := 0
	var step func(now Time)
	step = func(now Time) {
		count++
		if count < 100 {
			e.After(time.Millisecond, step)
		}
	}
	e.Schedule(0, step)
	e.RunAll()
	if count != 100 {
		t.Errorf("chain executed %d steps, want 100", count)
	}
	if e.Now() != 99*Millisecond {
		t.Errorf("Now() = %v, want 99ms", e.Now())
	}
}

// TestRandomizedHeap cross-checks the event queue against a sorted reference
// under a random workload of schedules and cancels.
func TestRandomizedHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine()
	type ref struct {
		at  Time
		seq int
	}
	var want []ref
	var got []ref
	var events []*Event
	seq := 0
	for i := 0; i < 500; i++ {
		at := Time(rng.Intn(1000)) * Millisecond
		seq++
		s := seq
		ev := e.Schedule(at, func(now Time) { got = append(got, ref{now, s}) })
		events = append(events, ev)
		want = append(want, ref{at, s})
	}
	// Cancel a random 20%.
	canceled := map[int]bool{}
	for i := 0; i < 100; i++ {
		k := rng.Intn(len(events))
		e.Cancel(events[k])
		canceled[k] = true
	}
	var filtered []ref
	for i, r := range want {
		if !canceled[i] {
			filtered = append(filtered, r)
		}
	}
	sort.SliceStable(filtered, func(i, j int) bool {
		if filtered[i].at != filtered[j].at {
			return filtered[i].at < filtered[j].at
		}
		return filtered[i].seq < filtered[j].seq
	})
	e.RunAll()
	if len(got) != len(filtered) {
		t.Fatalf("executed %d events, want %d", len(got), len(filtered))
	}
	for i := range got {
		if got[i] != filtered[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], filtered[i])
		}
	}
}

func TestSteps(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i)*Second, func(Time) {})
	}
	e.RunAll()
	if e.Steps() != 7 {
		t.Errorf("Steps() = %d, want 7", e.Steps())
	}
}
