package sim

import (
	"sync"
	"testing"
	"time"
)

func TestDomainAdvanceRunsDueEventsAndBumpsClock(t *testing.T) {
	eng := NewEngine()
	d := NewDomain(eng)
	var fired []Time
	eng.Schedule(2*Second, func(now Time) { fired = append(fired, now) })
	eng.Schedule(5*Second, func(now Time) { fired = append(fired, now) })
	eng.Schedule(9*Second, func(now Time) { fired = append(fired, now) })

	d.Advance(6*Second, nil)
	if len(fired) != 2 || fired[0] != 2*Second || fired[1] != 5*Second {
		t.Fatalf("fired = %v", fired)
	}
	if d.Now() != 6*Second {
		t.Errorf("Now = %v, want 6s", d.Now())
	}
	// Advancing backwards is a no-op, not a rewind.
	d.Advance(3*Second, nil)
	if d.Now() != 6*Second {
		t.Errorf("Now after backwards advance = %v", d.Now())
	}
	d.Advance(20*Second, nil)
	if len(fired) != 3 || d.Now() != 20*Second {
		t.Errorf("fired = %v, Now = %v", fired, d.Now())
	}
}

func TestDomainAdvanceRunsFnAtTarget(t *testing.T) {
	eng := NewEngine()
	d := NewDomain(eng)
	var at Time
	d.Advance(4*Second, func(e *Engine) { at = e.Now() })
	if at != 4*Second {
		t.Errorf("fn saw %v, want 4s", at)
	}
	// Events scheduled by fn fire on the next Advance.
	var fired bool
	d.Advance(4*Second, func(e *Engine) {
		e.After(time.Second, func(Time) { fired = true })
	})
	d.Advance(5*Second, nil)
	if !fired {
		t.Error("event scheduled inside fn did not fire")
	}
}

func TestDomainNowIsFreshDuringSteps(t *testing.T) {
	// The mirror must be updated before each event executes so code inside a
	// callback that consults another clock (e.g. the telemetry hub reading a
	// Domains set) sees this domain at the event's own timestamp.
	eng := NewEngine()
	d := NewDomain(eng)
	var seen Time
	eng.Schedule(7*Second, func(Time) { seen = d.Now() })
	d.Advance(10*Second, nil)
	if seen != 7*Second {
		t.Errorf("callback saw mirror at %v, want 7s", seen)
	}
}

func TestDomainConcurrentDrivers(t *testing.T) {
	// Many goroutines advancing and scheduling on one domain must serialize
	// cleanly (run with -race) and execute every event exactly once.
	eng := NewEngine()
	d := NewDomain(eng)
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				target := Time(g*50+i+1) * Millisecond
				d.Advance(target, func(e *Engine) {
					e.After(time.Millisecond, func(Time) {
						mu.Lock()
						count++
						mu.Unlock()
					})
				})
			}
		}(g)
	}
	wg.Wait()
	d.Advance(Hour, nil)
	if count != 400 {
		t.Errorf("executed %d events, want 400", count)
	}
}

func TestDomainsClockReportsMax(t *testing.T) {
	a, b := NewDomain(NewEngine()), NewDomain(NewEngine())
	set := Domains{a, b}
	if set.Now() != 0 {
		t.Errorf("empty clocks Now = %v", set.Now())
	}
	a.Advance(3*Second, nil)
	b.Advance(8*Second, nil)
	if set.Now() != 8*Second {
		t.Errorf("Now = %v, want 8s", set.Now())
	}
	if (Domains{}).Now() != 0 {
		t.Error("no-member clock should read 0")
	}
}

func TestEngineNextAt(t *testing.T) {
	eng := NewEngine()
	if _, ok := eng.NextAt(); ok {
		t.Error("empty engine reported a pending event")
	}
	ev := eng.Schedule(4*Second, func(Time) {})
	eng.Schedule(6*Second, func(Time) {})
	if at, ok := eng.NextAt(); !ok || at != 4*Second {
		t.Errorf("NextAt = %v,%v", at, ok)
	}
	eng.Cancel(ev)
	if at, ok := eng.NextAt(); !ok || at != 6*Second {
		t.Errorf("NextAt after cancel = %v,%v", at, ok)
	}
}
