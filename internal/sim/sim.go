// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, which makes
// every simulation in this repository exactly reproducible from its seed.
// All subsystems that need the passage of time (MPPDB query execution, bulk
// loading, activity monitoring, elastic scaling) are driven by one Engine.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp, measured in nanoseconds since the start of the
// simulation. It is a distinct type (rather than time.Time) because simulated
// experiments span weeks of virtual time and have no wall-clock anchor.
type Time int64

// Common time constants expressed as durations from the simulation origin.
const (
	Millisecond Time = Time(time.Millisecond)
	Second      Time = Time(time.Second)
	Minute      Time = Time(time.Minute)
	Hour        Time = Time(time.Hour)
	Day              = 24 * Hour
)

// MaxTime is the largest representable virtual timestamp.
const MaxTime Time = math.MaxInt64

// Duration converts a time.Duration into the engine's tick unit.
func Duration(d time.Duration) Time { return Time(d) }

// Seconds returns t expressed in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Sub returns the duration between t and u as a time.Duration.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// String formats the timestamp as d:hh:mm:ss.mmm for logs and traces.
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	d := t / Day
	t %= Day
	h := t / Hour
	t %= Hour
	m := t / Minute
	t %= Minute
	s := t / Second
	ms := (t % Second) / Millisecond
	return fmt.Sprintf("%s%dd%02d:%02d:%02d.%03d", neg, d, h, m, s, ms)
}

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel pending events (for example, a processor-sharing executor cancels
// the previously predicted completion whenever a new query arrives).
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index; -1 once removed
	canceled bool
	// owned events belong to the engine: they are recycled onto the
	// engine's freelist the moment they fire (or are CancelOwned-ed), so
	// holders of an owned handle must drop it at that point. Events from
	// plain Schedule are never recycled — callers may Cancel them at any
	// later time.
	owned bool
	fn    func(now Time)
}

// At reports the virtual time at which the event fires (or would have fired).
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event simulator. The zero value is not usable; create
// engines with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	nsteps uint64
	// free recycles owned events. The engine is single-threaded (callers
	// serialize through a Domain), so a plain freelist needs no locking —
	// and unlike a sync.Pool it is deterministic and never drained by GC.
	free []*Event
}

// NewEngine returns an engine with the clock at time zero and no pending
// events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far (useful for tests and
// for guarding against runaway simulations).
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending returns the number of events currently scheduled (including
// canceled events that have not yet been discarded).
func (e *Engine) Pending() int { return e.queue.Len() }

// NextAt reports the fire time of the earliest pending (non-canceled) event.
// Clock-domain drivers use it to step an engine event-by-event while keeping
// a lock-free mirror of the clock fresh for concurrent readers.
func (e *Engine) NextAt() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// Schedule registers fn to run at the absolute virtual time at. Scheduling in
// the past panics: it always indicates a logic error in the caller, and
// silently clamping would hide it.
func (e *Engine) Schedule(at Time, fn func(now Time)) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleOwned is Schedule with the allocation recycled: the event comes
// from the engine's freelist and returns to it the moment it fires or is
// CancelOwned-ed. The returned handle is valid only until then — callers
// must drop their reference at that point and never pass it to Cancel.
// Firing order is identical to Schedule (the global sequence counter is
// shared), so mixing the two never perturbs a deterministic run.
func (e *Engine) ScheduleOwned(at Time, fn func(now Time)) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	ev := e.acquire()
	ev.at, ev.seq, ev.fn = at, e.seq, fn
	heap.Push(&e.queue, ev)
	return ev
}

// CancelOwned cancels an event obtained from ScheduleOwned and recycles it
// immediately. The caller must drop its reference: the engine will hand the
// same Event out again on a later ScheduleOwned.
func (e *Engine) CancelOwned(ev *Event) {
	if ev == nil {
		return
	}
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
	e.release(ev)
}

// TimedFunc is one entry of a ScheduleBatch bulk insertion.
type TimedFunc struct {
	At Time
	Fn func(now Time)
}

// ScheduleBatch inserts a whole batch of events at once: every entry is
// appended to the queue and the heap property is re-established with one
// heap.Init — O(n + m) for n new events over m pending, versus the
// O(n log(n+m)) of push-per-event. Entries fire in (time, batch order),
// exactly as if scheduled one by one; the events are engine-owned (no
// handles are returned) and recycle through the freelist after firing.
// Replay uses this to materialize a full window of query submissions in one
// shot.
func (e *Engine) ScheduleBatch(batch []TimedFunc) {
	if len(batch) == 0 {
		return
	}
	for _, tf := range batch {
		if tf.At < e.now {
			panic(fmt.Sprintf("sim: schedule at %v before now %v", tf.At, e.now))
		}
		e.seq++
		ev := e.acquire()
		ev.at, ev.seq, ev.fn = tf.At, e.seq, tf.Fn
		ev.index = len(e.queue)
		e.queue = append(e.queue, ev)
	}
	heap.Init(&e.queue)
}

// acquire pops a recycled event from the freelist (or allocates one) and
// marks it owned.
func (e *Engine) acquire() *Event {
	n := len(e.free)
	if n == 0 {
		return &Event{owned: true}
	}
	ev := e.free[n-1]
	e.free[n-1] = nil
	e.free = e.free[:n-1]
	ev.canceled = false
	return ev
}

// release returns an owned event to the freelist.
func (e *Engine) release(ev *Event) {
	if !ev.owned {
		return
	}
	ev.fn = nil
	e.free = append(e.free, ev)
}

// After registers fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func(now Time)) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel marks ev so that it will not fire. Canceling an already-fired or
// already-canceled event is a no-op. The event is removed from the queue
// immediately so canceled events do not accumulate.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step executes the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		ev.index = -1
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic("sim: event time moved backwards")
		}
		e.now = ev.at
		e.nsteps++
		ev.fn(e.now)
		// Recycle only after fn returns: fn may itself ScheduleOwned, and
		// releasing first would hand it this very event mid-flight.
		e.release(ev)
		return true
	}
	return false
}

// Run executes events until the queue drains or the next event would fire
// after until. The clock is finally advanced to until (never backwards), so
// time-based measurements cover the full horizon even if activity ends early.
func (e *Engine) Run(until Time) {
	for e.queue.Len() > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > until {
			break
		}
		e.Step()
	}
	if until > e.now {
		e.now = until
	}
}

// RunAll executes events until the queue is empty.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// peek returns the earliest non-canceled event without executing it.
func (e *Engine) peek() *Event {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// eventHeap orders events by (time, sequence) so simultaneous events fire in
// the order they were scheduled.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
