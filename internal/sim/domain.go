// Clock domains: the concurrency boundary around an Engine.
//
// The Engine itself is deliberately single-threaded — determinism comes from
// one driver executing events in (time, sequence) order. A Domain wraps one
// Engine with a mutex so multiple goroutines can share it safely, and keeps a
// lock-free mirror of the clock so other domains (and the telemetry hub) can
// read "now" without contending for the engine.
//
// Two configurations cover the repository's needs:
//
//   - Shared domain (experiment/replay mode): every subsystem is built on one
//     Engine and a single driver runs it directly. Event interleaving across
//     tenant-groups is globally ordered, so same-seed runs are byte-identical.
//   - Domain per tenant-group (service mode): each group's MPPDBs, router,
//     monitor, and scaling run against their own Engine. Requests touching
//     different groups proceed fully in parallel; each domain is paced
//     against the wall clock independently.
package sim

import (
	"sync"
	"sync/atomic"
)

// Domain is an exclusive handle on one Engine. All engine access — advancing
// the clock, scheduling, submitting work to subsystems built on the engine —
// must go through Advance or Do, which serialize callers. Now is safe to call
// from any goroutine at any time, including from inside another domain's
// callbacks, and never blocks.
type Domain struct {
	mu  sync.Mutex
	eng *Engine
	now atomic.Int64 // mirror of eng.Now(), readable without the lock
}

// NewDomain wraps the engine in a domain. The engine must not be driven
// directly by another goroutine afterwards; a single-threaded driver that
// owns the engine exclusively (the replay/experiment path) may keep using it
// directly, in which case the domain's mirror is refreshed the next time the
// domain is entered.
func NewDomain(eng *Engine) *Domain {
	d := &Domain{eng: eng}
	d.now.Store(int64(eng.Now()))
	return d
}

// Now returns the domain's virtual time without taking the domain lock. The
// value is exact while the domain is quiescent and at most one event stale
// while Advance is mid-run.
func (d *Domain) Now() Time { return Time(d.now.Load()) }

// Advance acquires the domain, runs the engine up to target — stepping
// event-by-event so concurrent Now readers observe a fresh clock — and then,
// when fn is non-nil, runs fn with exclusive engine access at the advanced
// clock. A target at or before the current clock only runs fn. fn must not
// re-enter this domain (Advance/Do on the same domain deadlocks); it may read
// other domains' clocks freely.
func (d *Domain) Advance(target Time, fn func(*Engine)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		at, ok := d.eng.NextAt()
		if !ok || at > target {
			break
		}
		d.now.Store(int64(at))
		d.eng.Step()
	}
	if target > d.eng.Now() {
		d.eng.Run(target) // due events are drained: this is the final clock bump
	}
	d.now.Store(int64(d.eng.Now()))
	if fn != nil {
		fn(d.eng)
		d.now.Store(int64(d.eng.Now()))
	}
}

// Do runs fn with exclusive engine access without advancing the clock first.
// Batch drivers (parallel replay) use it to schedule a whole window of events
// before driving the domain with Advance.
func (d *Domain) Do(fn func(*Engine)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fn(d.eng)
	d.now.Store(int64(d.eng.Now()))
}

// Domains bundles several clock domains into one read-only clock whose Now is
// the most advanced member clock. A sharded deployment's telemetry hub uses
// this as its timestamp source: it is lock-free, so instrumentation sites may
// call it while holding any single domain's lock without deadlock.
type Domains []*Domain

// Now returns the most advanced member clock (zero with no members).
func (ds Domains) Now() Time {
	var max Time
	for _, d := range ds {
		if t := d.Now(); t > max {
			max = t
		}
	}
	return max
}
