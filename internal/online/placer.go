// Package online is the continuous incremental re-consolidation subsystem:
// a per-deployment control loop on the sim clock that streams observed
// activity deltas into live per-tenant epoch structures, detects drift,
// joins, leaves, and shape changes, repairs the partition locally with the
// planner's own machinery (bounded transition previews, patchable
// transitions), and executes the resulting placement changes as live
// migrations costed by the Table 5.1 startup + reload model.
//
// The paper treats (re)-consolidation as an offline periodic batch (§3c,
// §5.1): the advisor plans from a full log and Install swaps whole
// deployments. This package is the production version of that loop — the
// deployment stays live while single tenants move, groups split or retire,
// and only when local repair cannot restore the fuzzy-capacity constraint
// does the loop fall back to a scoped advisor.Reconsolidate over the broken
// group.
//
// The package splits into two layers. Placer (this file) is the pure
// in-memory partition state — tenants with epoch-quantized activity
// profiles, groups with live CountSets — and the single-tenant re-plan hot
// path: BestGroup is the T_best scan of the offline solver restated for one
// tenant against all live groups, with the same monotone-bound abort
// (epoch.PreviewBounded) that makes the PR-5 solver scale. Controller
// (online.go) drives a Placer from the runtime: monitors feed deltas in,
// placement decisions come out as live migrations.
package online

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/epoch"
)

// feasSlack absorbs float rounding in TTP comparisons, matching the
// tolerance grouping.Verify accepts.
const feasSlack = 1e-12

// PTenant is one tenant in the live partition.
type PTenant struct {
	// ID identifies the tenant.
	ID string
	// Nodes is the tenant's requested node count.
	Nodes int
	// Spans is the tenant's effective planning profile on the grid: the
	// planned activity united with every observed delta streamed in since.
	Spans epoch.Spans
	// Group is the ID of the group the tenant is assigned to; empty while
	// unplaced.
	Group string
	// DeltaEpochs counts observed epochs that were not in the planned
	// profile — the tenant's accumulated drift.
	DeltaEpochs int64
}

// PGroup is one tenant-group of the live partition.
type PGroup struct {
	// ID identifies the group.
	ID string
	// Nodes is the group's MPPDB size (the cluster design's n₁): a tenant
	// requesting more nodes than this cannot be placed here.
	Nodes int
	// CS is the group's live active-count function.
	CS *epoch.CountSet
	// members is kept sorted for deterministic iteration.
	members []string
}

// Members returns the group's member tenant IDs, sorted.
func (g *PGroup) Members() []string {
	out := make([]string, len(g.members))
	copy(out, g.members)
	return out
}

// Size returns the number of member tenants.
func (g *PGroup) Size() int { return len(g.members) }

// Placer is the in-memory partition the online control loop maintains: the
// live counterpart of an advisor plan. All methods are single-threaded; the
// controller serializes access on the deployment's clock domain.
type Placer struct {
	// D, R, P are the LIVBPwFC instance parameters: epochs in the horizon,
	// replication factor, and the fuzzy-capacity guarantee.
	D int64
	R int
	P float64
	// Share, when non-nil, applies the sharing-credited capacity test
	// (grouping.Problem.Share): the live partition of a sharing-enabled plan
	// is denser than the plain test allows, and feasibility checks here must
	// match the test that licensed it or every group would read as broken.
	Share []float64

	tenants map[string]*PTenant
	groups  map[string]*PGroup
	order   []*PGroup // creation order: the deterministic scan order
	buf     []int64   // transition scratch, reused across previews
}

// NewPlacer creates an empty partition over d epochs with threshold r and
// guarantee p.
func NewPlacer(d int64, r int, p float64) *Placer {
	return &Placer{
		D:       d,
		R:       r,
		P:       p,
		tenants: make(map[string]*PTenant),
		groups:  make(map[string]*PGroup),
	}
}

// AddGroup registers an empty group with the given MPPDB size.
func (pl *Placer) AddGroup(id string, nodes int) (*PGroup, error) {
	if _, ok := pl.groups[id]; ok {
		return nil, fmt.Errorf("online: duplicate group %s", id)
	}
	g := &PGroup{ID: id, Nodes: nodes, CS: epoch.NewCountSet(pl.D)}
	pl.groups[id] = g
	pl.order = append(pl.order, g)
	return g, nil
}

// RemoveGroup drops an empty group from the partition.
func (pl *Placer) RemoveGroup(id string) error {
	g, ok := pl.groups[id]
	if !ok {
		return fmt.Errorf("online: unknown group %s", id)
	}
	if len(g.members) > 0 {
		return fmt.Errorf("online: group %s still has %d members", id, len(g.members))
	}
	delete(pl.groups, id)
	for i, og := range pl.order {
		if og == g {
			pl.order = append(pl.order[:i:i], pl.order[i+1:]...)
			break
		}
	}
	return nil
}

// Register adds an unplaced tenant with its planning profile.
func (pl *Placer) Register(id string, nodes int, sp epoch.Spans) (*PTenant, error) {
	if _, ok := pl.tenants[id]; ok {
		return nil, fmt.Errorf("online: duplicate tenant %s", id)
	}
	t := &PTenant{ID: id, Nodes: nodes, Spans: sp}
	pl.tenants[id] = t
	return t, nil
}

// Assign commits a tenant into a group: its profile joins the group's count
// function. No feasibility check is made — callers decide via BestGroup or
// Feasible.
func (pl *Placer) Assign(tenantID, groupID string) error {
	t, ok := pl.tenants[tenantID]
	if !ok {
		return fmt.Errorf("online: unknown tenant %s", tenantID)
	}
	g, ok := pl.groups[groupID]
	if !ok {
		return fmt.Errorf("online: unknown group %s", groupID)
	}
	if t.Group != "" {
		return fmt.Errorf("online: tenant %s already in group %s", tenantID, t.Group)
	}
	g.CS.Add(t.Spans)
	t.Group = groupID
	i := sort.SearchStrings(g.members, tenantID)
	g.members = append(g.members, "")
	copy(g.members[i+1:], g.members[i:])
	g.members[i] = tenantID
	return nil
}

// Unassign withdraws a tenant from its group, removing its profile from the
// group's count function. The tenant remains registered (re-assignable).
func (pl *Placer) Unassign(tenantID string) error {
	t, ok := pl.tenants[tenantID]
	if !ok {
		return fmt.Errorf("online: unknown tenant %s", tenantID)
	}
	if t.Group == "" {
		return fmt.Errorf("online: tenant %s is unplaced", tenantID)
	}
	g := pl.groups[t.Group]
	g.CS.Remove(t.Spans)
	i := sort.SearchStrings(g.members, tenantID)
	if i < len(g.members) && g.members[i] == tenantID {
		g.members = append(g.members[:i:i], g.members[i+1:]...)
	}
	t.Group = ""
	return nil
}

// Drop deregisters a tenant entirely (departure), unassigning it first if
// needed.
func (pl *Placer) Drop(tenantID string) error {
	t, ok := pl.tenants[tenantID]
	if !ok {
		return fmt.Errorf("online: unknown tenant %s", tenantID)
	}
	if t.Group != "" {
		if err := pl.Unassign(tenantID); err != nil {
			return err
		}
	}
	delete(pl.tenants, tenantID)
	return nil
}

// Ingest streams an observed activity delta into a tenant's live profile:
// delta must be the newly observed epochs NOT already in the tenant's
// profile (Spans.Diff against it). The group's count function rises by one
// exactly on the delta, the profile grows by union, and the tenant's drift
// counter advances. Returns the tenant's group ID (empty if unplaced).
func (pl *Placer) Ingest(tenantID string, delta epoch.Spans) (string, error) {
	t, ok := pl.tenants[tenantID]
	if !ok {
		return "", fmt.Errorf("online: unknown tenant %s", tenantID)
	}
	if len(delta) == 0 {
		return t.Group, nil
	}
	if t.Group != "" {
		g := pl.groups[t.Group]
		// The delta is disjoint from the profile, so adding it alone raises
		// the count by one exactly on the new epochs — the tenant's total
		// contribution stays one per profile epoch, and a later Remove of
		// the full profile is the exact inverse.
		g.CS.Add(delta)
	}
	t.Spans = t.Spans.Union(delta)
	t.DeltaEpochs += delta.Len()
	return t.Group, nil
}

// Tenant returns the tenant's live state.
func (pl *Placer) Tenant(id string) (*PTenant, bool) {
	t, ok := pl.tenants[id]
	return t, ok
}

// Group returns the group's live state.
func (pl *Placer) Group(id string) (*PGroup, bool) {
	g, ok := pl.groups[id]
	return g, ok
}

// Groups returns the live groups in creation order.
func (pl *Placer) Groups() []*PGroup {
	out := make([]*PGroup, len(pl.order))
	copy(out, pl.order)
	return out
}

// Tenants returns the number of registered tenants.
func (pl *Placer) Tenants() int { return len(pl.tenants) }

// ttp evaluates the partition's capacity test on a count set: the plain TTP
// at threshold R, or the sharing-credited variant when Share is set.
func (pl *Placer) ttp(cs *epoch.CountSet) float64 {
	if len(pl.Share) == 0 {
		return cs.TTP(pl.R)
	}
	return cs.TTPShare(pl.R, pl.Share)
}

// newTTP evaluates the capacity test after applying tr (see ttp).
func (pl *Placer) newTTP(cs *epoch.CountSet, tr epoch.Transition) float64 {
	if len(pl.Share) == 0 {
		return cs.NewTTP(pl.R, tr)
	}
	return cs.NewTTPShare(pl.R, pl.Share, tr)
}

// Feasible reports whether the group satisfies the fuzzy-capacity
// constraint: TTP at threshold R is at least P.
func (pl *Placer) Feasible(groupID string) bool {
	g, ok := pl.groups[groupID]
	if !ok {
		return false
	}
	return pl.ttp(g.CS) >= pl.P-feasSlack
}

// Infeasible returns the IDs of groups currently violating the constraint,
// in creation order.
func (pl *Placer) Infeasible() []string {
	var out []string
	for _, g := range pl.order {
		if pl.ttp(g.CS) < pl.P-feasSlack {
			out = append(out, g.ID)
		}
	}
	return out
}

// BestGroup finds the best existing group for a tenant with the given size
// and profile under the T_best rule, restricted to groups that (a) are
// large enough (group MPPDB size ≥ the tenant's request — the deployed
// cluster design is physical and cannot grow per-move), (b) stay feasible
// after the addition, and (c) are not the excluded group (the tenant's
// current home during a repair move). Candidates are compared by resulting
// maximum active count, then by the resulting top-level histogram share
// (epoch.NewHistAt), ties broken by creation order — a deterministic total
// order.
//
// The scan is the planner's bounded-preview loop: once an incumbent exists,
// a group whose current maximum already exceeds the incumbent's resulting
// maximum is skipped in O(1), and PreviewBounded aborts the merge walk for
// any candidate as soon as a partial transition proves its resulting
// maximum worse. That keeps the steady-state re-plan latency far under the
// epoch width even at 100k tenants (see BENCH_online.json).
func (pl *Placer) BestGroup(nodes int, sp epoch.Spans, exclude string) (string, bool) {
	bestID := ""
	bestMax := 0
	var bestShare int64
	for _, g := range pl.order {
		if g.ID == exclude || g.Nodes < nodes {
			continue
		}
		cs := g.CS
		var tr epoch.Transition
		var km int
		var ok bool
		if bestID == "" {
			tr = cs.PreviewInto(sp, pl.buf)
			km, _ = cs.NewTopUp(tr)
			ok = true
		} else {
			if cs.MaxCount() > bestMax {
				// Adding anything only raises the maximum: proven worse.
				pl.buf = pl.buf[:0]
				continue
			}
			// Max-only bound: bestUp = MaxInt64 disables the top-level tie
			// abort, which is only sound within one CountSet — across
			// groups the tie is decided by NewHistAt below instead.
			tr, km, _, ok = cs.PreviewBounded(sp, pl.buf, bestMax, math.MaxInt64)
		}
		pl.buf = tr.Up // recover (possibly regrown) scratch
		if !ok {
			continue // resulting max exceeds the incumbent's
		}
		if pl.newTTP(cs, tr) < pl.P-feasSlack {
			continue // addition would break the group
		}
		share := cs.NewHistAt(tr, km)
		if bestID == "" || km < bestMax || (km == bestMax && share < bestShare) {
			bestID, bestMax, bestShare = g.ID, km, share
		}
	}
	return bestID, bestID != ""
}

// EvictionOrder ranks a group's members by how much their departure would
// reduce the group's over-budget epochs: previewing a member's own spans
// against the live count function yields Up[c] = epochs at current count c
// along the member's activity, and removing the member converts exactly the
// epochs at count R+1 back under the threshold. Members are returned most
// relieving first, ties broken by ID.
func (pl *Placer) EvictionOrder(groupID string) []string {
	g, ok := pl.groups[groupID]
	if !ok {
		return nil
	}
	type scored struct {
		id     string
		relief int64
	}
	ranked := make([]scored, 0, len(g.members))
	for _, id := range g.members {
		t := pl.tenants[id]
		tr := g.CS.PreviewInto(t.Spans, pl.buf)
		pl.buf = tr.Up
		var relief int64
		if pl.R+1 < len(tr.Up) {
			relief = tr.Up[pl.R+1]
		}
		ranked = append(ranked, scored{id, relief})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].relief != ranked[j].relief {
			return ranked[i].relief > ranked[j].relief
		}
		return ranked[i].id < ranked[j].id
	})
	out := make([]string, len(ranked))
	for i, s := range ranked {
		out[i] = s.id
	}
	return out
}
