package online

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/grouping"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/sim"
	"repro/internal/tdd"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// Config tunes the control loop.
type Config struct {
	// Plan carries the planning parameters (R, P, epoch width, exclusion
	// thresholds) — normally the deployed plan's advisor.Config.
	Plan advisor.Config
	// Horizon is the planning grid's span (activity beyond it is clipped).
	Horizon sim.Time
	// Interval is the virtual-time control period (default 15 min).
	Interval time.Duration
	// DrainSlack is how long after a cutover a vacated source group keeps
	// serving stragglers before its nodes return to the pool (default 1 h).
	DrainSlack time.Duration
	// DriftEpochs is how many unforeseen active epochs a tenant accumulates
	// before the loop reports it drifted (default 32).
	DriftEpochs int64
	// MaxLocalMoves bounds single-tenant repair moves per group per tick
	// before the loop escalates to a scoped offline re-consolidation
	// (default 4).
	MaxLocalMoves int
	// ParallelLoad selects the parallel bulk-load cost model for migrations
	// (Table 5.1; default true via DefaultConfig).
	ParallelLoad bool
	// Immediate zeroes migration provisioning delays — unit tests only; the
	// drift experiment keeps the Table 5.1 costs.
	Immediate bool
}

// DefaultConfig returns the control loop's standard settings over the given
// planning config and horizon.
func DefaultConfig(plan advisor.Config, horizon sim.Time) Config {
	return Config{
		Plan:          plan,
		Horizon:       horizon,
		Interval:      15 * time.Minute,
		DrainSlack:    time.Hour,
		DriftEpochs:   32,
		MaxLocalMoves: 4,
		ParallelLoad:  true,
	}
}

// Stats counts what the loop has done so far. All fields are cumulative.
type Stats struct {
	Ticks              int      `json:"ticks"`
	LastTickAt         sim.Time `json:"last_tick_at"`
	DeltaEpochs        int64    `json:"delta_epochs"`
	Drifts             int      `json:"drifts"`
	Joins              int      `json:"joins"`
	Leaves             int      `json:"leaves"`
	LocalMoves         int      `json:"local_moves"`
	Fallbacks          int      `json:"fallbacks"`
	MigrationsStarted  int      `json:"migrations_started"`
	MigrationsCutOver  int      `json:"migrations_cut_over"`
	MigrationsAborted  int      `json:"migrations_aborted"`
	MigrationsPromoted int      `json:"migrations_promoted"`
	GroupsRetired      int      `json:"groups_retired"`
	Groups             int      `json:"groups"`
	Tenants            int      `json:"tenants"`
	Infeasible         int      `json:"infeasible"`
}

// Migration is one live placement change in flight or completed.
type Migration struct {
	ID      int      `json:"id"`
	Kind    string   `json:"kind"` // "join", "move", "split"
	Tenants []string `json:"tenants"`
	From    string   `json:"from,omitempty"`
	To      string   `json:"to"`
	Started sim.Time `json:"started"`
	ReadyAt sim.Time `json:"ready_at"`
	CutOver bool     `json:"cut_over"`
	// Failed marks a migration whose destination died during the background
	// reload; Failure names the cause ("destination_died") and the tenants
	// were re-placed elsewhere. Resolution records how a non-standard
	// completion went: "re_placed" after an abort, "promoted_early" when the
	// source died mid-drain and the destination opened at degraded speed.
	Failed     bool   `json:"failed,omitempty"`
	Failure    string `json:"failure,omitempty"`
	Resolution string `json:"resolution,omitempty"`
}

// flight is the engine-side runtime context of one in-flight migration: the
// crash watchers need the destination group pointer and the source mapping
// after the closures that started the migration are gone. done latches when
// the migration reaches any terminal state so the originally scheduled
// cutover callback can no-op after an abort or an early promotion.
type flight struct {
	mid     int
	kind    string
	ids     []string
	from    map[string]string // tenant → source gid ("" for a join)
	to      string
	grt     *master.DeployedGroup
	readyAt sim.Time
	newGrp  bool
	done    bool
}

// promotedSlowdown is the degraded serving speed of a destination promoted
// before its background reload finished: the surviving replicas answer the
// drain remainder at half speed until the reload would have completed.
const promotedSlowdown = 0.5

// Controller is the per-deployment online re-consolidation loop. It runs on
// the deployment's sim clock — every decision happens inside an engine
// callback, so same-seed runs are byte-deterministic — and requires a
// shared-domain deployment (the experiment/replay clock layout).
//
// Join and Leave are the churn intake and are safe to call from any
// goroutine; everything else the loop does by itself at each tick:
//
//  1. stream activity deltas from the group monitors into the live placer
//     profiles (drift detection),
//  2. process departures and joins,
//  3. repair infeasible groups locally — single-tenant moves chosen by
//     bounded T_best scans — falling back to a scoped
//     advisor.Reconsolidate when local moves cannot restore the
//     fuzzy-capacity constraint,
//  4. execute placements as live migrations: provision in the background
//     (Table 5.1 startup + reload), drain through the source group, then
//     flip the tenant→group index atomically at cutover.
type Controller struct {
	cfg  Config
	grid epoch.Grid
	eng  *sim.Engine
	dep  *master.Deployment
	mst  *master.Master
	adv  *advisor.Advisor
	pl   *Placer

	// Engine-side state (touched only inside engine callbacks).
	logs     map[string]*workload.TenantLog
	tenants  map[string]*tenant.Tenant
	drifted  map[string]bool
	retiring map[string]bool
	inflight map[int]*flight
	nextGID  int
	nextMig  int

	// Cross-goroutine state.
	mu         sync.Mutex
	joinQ      []*workload.TenantLog
	leaveQ     []string
	stats      Stats
	migrations []Migration
	drained    []monitor.QueryRecord
	lastReport *advisor.ReconsolidationReport
	stopped    bool
	started    bool
}

// New builds a controller for a live shared-domain deployment. plan is the
// deployed plan, logs the planning-time activity of every deployed tenant.
func New(eng *sim.Engine, dep *master.Deployment, mst *master.Master,
	plan *advisor.Plan, logs []*workload.TenantLog, cfg Config) (*Controller, error) {
	if dep.Sharded() {
		return nil, fmt.Errorf("online: sharded deployments are not supported; deploy with a shared domain")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("online: non-positive horizon %v", cfg.Horizon)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 15 * time.Minute
	}
	if cfg.DrainSlack <= 0 {
		cfg.DrainSlack = time.Hour
	}
	if cfg.DriftEpochs <= 0 {
		cfg.DriftEpochs = 32
	}
	if cfg.MaxLocalMoves <= 0 {
		cfg.MaxLocalMoves = 4
	}
	grid, err := epoch.NewGrid(cfg.Plan.Epoch, cfg.Horizon)
	if err != nil {
		return nil, err
	}
	adv, err := advisor.New(cfg.Plan)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:      cfg,
		grid:     grid,
		eng:      eng,
		dep:      dep,
		mst:      mst,
		adv:      adv,
		pl:       NewPlacer(grid.D, cfg.Plan.R, cfg.Plan.P),
		logs:     make(map[string]*workload.TenantLog),
		tenants:  make(map[string]*tenant.Tenant),
		drifted:  make(map[string]bool),
		retiring: make(map[string]bool),
		inflight: make(map[int]*flight),
	}
	// Placer feasibility must use the same capacity test that licensed the
	// plan (nil when the advisor's sharing mode is off).
	c.pl.Share = cfg.Plan.ShareWeights()
	byID := make(map[string]*workload.TenantLog, len(logs))
	for _, tl := range logs {
		byID[tl.Tenant.ID] = tl
	}
	for _, pg := range plan.Groups {
		if _, err := c.pl.AddGroup(pg.ID, pg.Design.N1); err != nil {
			return nil, err
		}
		for _, id := range pg.TenantIDs {
			tl, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("online: no log for deployed tenant %s", id)
			}
			if _, err := c.pl.Register(id, tl.Tenant.Nodes, grid.Quantize(tl.Activity)); err != nil {
				return nil, err
			}
			if err := c.pl.Assign(id, pg.ID); err != nil {
				return nil, err
			}
			c.logs[id] = tl
			c.tenants[id] = tl.Tenant
		}
	}
	c.stats.Groups = len(plan.Groups)
	c.stats.Tenants = len(c.tenants)
	return c, nil
}

// Placer exposes the live partition (tests and diagnostics; engine-side
// callers only).
func (c *Controller) Placer() *Placer { return c.pl }

// Start arms the control loop: the first tick fires one interval from now.
// Strictly opt-in — an unarmed deployment replays byte-identically to the
// pre-online code.
func (c *Controller) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	c.eng.After(c.cfg.Interval, c.tick)
}

// Stop halts the loop after the current tick.
func (c *Controller) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
}

// Join registers a tenant arriving with its (possibly short) activity
// history; the next tick places it. Safe from any goroutine.
func (c *Controller) Join(tl *workload.TenantLog) {
	c.mu.Lock()
	c.joinQ = append(c.joinQ, tl)
	c.mu.Unlock()
}

// Leave registers a tenant's departure; the next tick withdraws it. Safe
// from any goroutine.
func (c *Controller) Leave(tenantID string) {
	c.mu.Lock()
	c.leaveQ = append(c.leaveQ, tenantID)
	c.mu.Unlock()
}

// Status returns a snapshot of the loop's counters.
func (c *Controller) Status() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Migrations returns a copy of every migration the loop has executed or
// has in flight.
func (c *Controller) Migrations() []Migration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Migration, len(c.migrations))
	copy(out, c.migrations)
	return out
}

// DrainedRecords returns the completed-query records of every group the
// loop has retired (a retired group's monitor leaves the deployment when its
// nodes are released, so Deployment.Records alone undercounts).
func (c *Controller) DrainedRecords() []monitor.QueryRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]monitor.QueryRecord, len(c.drained))
	copy(out, c.drained)
	return out
}

// LastReport returns the most recent scoped re-consolidation report, or nil
// when local repair has handled everything so far.
func (c *Controller) LastReport() *advisor.ReconsolidationReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastReport
}

func (c *Controller) events() *telemetry.EventLog { return c.dep.Telemetry().Events }

// tick is one control period; it runs as an engine callback.
func (c *Controller) tick(now sim.Time) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	joins := c.joinQ
	leaves := c.leaveQ
	c.joinQ = nil
	c.leaveQ = nil
	c.mu.Unlock()

	c.watchMigrations(now)
	c.ingestDeltas(now)
	for _, id := range leaves {
		c.processLeave(now, id)
	}
	for _, tl := range joins {
		c.processJoin(now, tl)
	}
	for _, gid := range c.pl.Infeasible() {
		c.repairGroup(now, gid)
	}

	c.mu.Lock()
	c.stats.Ticks++
	c.stats.LastTickAt = now
	c.stats.Groups = len(c.pl.order)
	c.stats.Tenants = c.pl.Tenants()
	c.stats.Infeasible = len(c.pl.Infeasible())
	stopped := c.stopped
	c.mu.Unlock()
	if !stopped {
		c.eng.After(c.cfg.Interval, c.tick)
	}
}

// ingestDeltas streams each tenant's newly observed activity epochs into
// the live partition — the "as queries complete" feed: the group monitors
// record completions, and each tick the loop quantizes the trailing
// observed activity and diffs it against the tenant's running profile.
func (c *Controller) ingestDeltas(now sim.Time) {
	ids := make([]string, 0, len(c.pl.tenants))
	for id := range c.pl.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var total int64
	for _, id := range ids {
		grt, ok := c.dep.GroupFor(id)
		if !ok {
			continue // mid-migration: not currently routable
		}
		obs := c.grid.Quantize(grt.Monitor.TenantActivity(id))
		if len(obs) == 0 {
			continue
		}
		t, _ := c.pl.Tenant(id)
		delta := obs.Diff(t.Spans)
		if len(delta) == 0 {
			continue
		}
		if _, err := c.pl.Ingest(id, delta); err != nil {
			continue
		}
		total += delta.Len()
		if !c.drifted[id] && t.DeltaEpochs >= c.cfg.DriftEpochs {
			c.drifted[id] = true
			c.events().Publish(telemetry.Event{
				Type:   telemetry.EventDriftDetected,
				Group:  t.Group,
				Tenant: id,
				Value:  float64(t.DeltaEpochs),
				Detail: "observed activity diverged from planned profile",
			})
			c.mu.Lock()
			c.stats.Drifts++
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	c.stats.DeltaEpochs += total
	c.mu.Unlock()
}

// processLeave withdraws a departed tenant: it stops routing immediately,
// its profile leaves the partition, and a fully vacated group retires after
// the drain slack.
func (c *Controller) processLeave(now sim.Time, id string) {
	t, ok := c.pl.Tenant(id)
	if !ok {
		return
	}
	gid := t.Group
	if err := c.pl.Drop(id); err != nil {
		return
	}
	delete(c.logs, id)
	delete(c.tenants, id)
	delete(c.drifted, id)
	c.dep.Plane().Unindex([]string{id})
	if grt, ok := c.dep.Plane().GroupByID(gid); ok {
		grt.Router.RemoveTenant(id)
		grt.Monitor.Exclude(id)
		grt.RemoveMember(id)
	}
	c.events().Publish(telemetry.Event{
		Type:   telemetry.EventOnlineReplan,
		Group:  gid,
		Tenant: id,
		Detail: "departed",
	})
	c.mu.Lock()
	c.stats.Leaves++
	c.mu.Unlock()
	c.maybeRetire(gid)
}

// maybeRetire removes a fully vacated group from the live partition and
// hands it to retireWhenDrained. The partition-level removal is immediate —
// no new tenant can be placed there — but the runtime group keeps serving
// until every outbound migration has cut over and the drain slack expires.
func (c *Controller) maybeRetire(gid string) {
	if g, ok := c.pl.Group(gid); ok {
		if g.Size() > 0 {
			return
		}
		if err := c.pl.RemoveGroup(gid); err != nil {
			return
		}
	}
	c.retireWhenDrained(gid)
}

// retireWhenDrained retires a group that has left the partition once no
// member routes through it anymore. While outbound migrations are still
// provisioning, their tenants keep draining queries through this group; the
// last cutover removes the final member and retries the retirement, and only
// then does the drain-slack clock start.
func (c *Controller) retireWhenDrained(gid string) {
	if c.retiring[gid] {
		return
	}
	if _, ok := c.pl.Group(gid); ok {
		return // back in the partition (shouldn't happen, but stay safe)
	}
	grt, ok := c.dep.Plane().GroupByID(gid)
	if !ok || len(grt.Members) > 0 {
		return
	}
	c.retiring[gid] = true
	c.eng.After(c.cfg.DrainSlack, func(at sim.Time) {
		grt, ok := c.dep.Plane().GroupByID(gid)
		if !ok {
			return
		}
		// Releasing the group takes its monitor out of the deployment, so
		// keep its completed-query records for end-of-run accounting.
		recs := grt.Monitor.Records()
		c.mu.Lock()
		c.drained = append(c.drained, recs...)
		c.mu.Unlock()
		freed := c.dep.ReleaseGroup(grt)
		c.events().Publish(telemetry.Event{
			Type:   telemetry.EventGroupRetired,
			Group:  gid,
			Value:  float64(freed),
			Detail: "drained after migration",
		})
		c.mu.Lock()
		c.stats.GroupsRetired++
		c.mu.Unlock()
	})
}

// processJoin places an arriving tenant: into the best existing group when
// one stays feasible (a pure reload migration), otherwise into a freshly
// provisioned group (startup + reload).
func (c *Controller) processJoin(now sim.Time, tl *workload.TenantLog) {
	id := tl.Tenant.ID
	if _, ok := c.pl.Tenant(id); ok {
		return // duplicate join
	}
	profile := c.grid.Quantize(tl.Activity)
	if _, err := c.pl.Register(id, tl.Tenant.Nodes, profile); err != nil {
		return
	}
	c.logs[id] = tl
	c.tenants[id] = tl.Tenant
	c.mu.Lock()
	c.stats.Joins++
	c.mu.Unlock()

	if gid, ok := c.pl.BestGroup(tl.Tenant.Nodes, profile, ""); ok {
		c.pl.Assign(id, gid)
		c.events().Publish(telemetry.Event{
			Type:   telemetry.EventOnlineReplan,
			Group:  gid,
			Tenant: id,
			Detail: "join placed in existing group",
		})
		c.migrateInto(now, "join", id, "", gid)
		return
	}
	// No feasible home: provision a new group for the tenant.
	gid, err := c.deployNewGroup(now, "join", []string{id}, nil)
	if err != nil {
		// Placement failed (e.g. pool exhausted): withdraw the join.
		c.pl.Drop(id)
		delete(c.logs, id)
		delete(c.tenants, id)
		return
	}
	c.events().Publish(telemetry.Event{
		Type:   telemetry.EventOnlineReplan,
		Group:  gid,
		Tenant: id,
		Detail: "join provisioned new group",
	})
}

// migrateInto executes a single-tenant live migration into an existing
// group: the tenant's data bulk-loads onto the target's MPPDBs while
// queries keep draining through the source (or, for a join, while the
// tenant is not yet routable), then the tenant→group index flips at
// cutover.
func (c *Controller) migrateInto(now sim.Time, kind, id, from, to string) {
	tn := c.tenants[id]
	grt, ok := c.dep.Plane().GroupByID(to)
	if !ok {
		return
	}
	for _, inst := range grt.Instances {
		inst.DeployTenant(tn.ID, tn.DataGB)
	}
	cost := sim.Duration(cluster.LoadTime(tn.DataGB, grt.Plan.Design.N1, c.cfg.ParallelLoad))
	if c.cfg.Immediate {
		cost = 0
	}
	readyAt := now + cost
	mid := c.recordMigration(Migration{
		Kind: kind, Tenants: []string{id}, From: from, To: to,
		Started: now, ReadyAt: readyAt,
	})
	fl := &flight{
		mid: mid, kind: kind, ids: []string{id},
		from: map[string]string{id: from}, to: to, grt: grt, readyAt: readyAt,
	}
	c.inflight[mid] = fl
	c.events().Publish(telemetry.Event{
		Type:   telemetry.EventMigrationStarted,
		Group:  to,
		Tenant: id,
		Value:  float64(cost) / float64(sim.Second),
		Detail: fmt.Sprintf("kind=%s from=%s", kind, from),
	})
	c.eng.Schedule(readyAt, func(at sim.Time) {
		c.cutOverTenant(at, fl)
	})
}

// cutOverTenant flips one tenant to its provisioned target group. The
// source keeps the tenant's routing entry until the drain slack expires, so
// a submit that resolved the source just before the flip still lands there
// — live migration never drops queries. A destination that died during the
// background reload aborts the cutover instead: the nodes come back, the
// tenant is re-placed, and it keeps draining through the live source.
func (c *Controller) cutOverTenant(at sim.Time, fl *flight) {
	if fl.done {
		return // aborted or promoted before the reload finished
	}
	if groupDead(fl.grt) {
		c.abortMigration(at, fl, "destination_died")
		return
	}
	fl.done = true
	delete(c.inflight, fl.mid)
	id := fl.ids[0]
	grt, ok := c.dep.Plane().GroupByID(fl.to)
	if !ok {
		return
	}
	tn, ok := c.tenants[id]
	if !ok {
		return // departed while migrating
	}
	if err := grt.Router.AddTenant(tn); err != nil {
		return
	}
	grt.AddMember(tn)
	c.dep.Plane().Index([]string{id}, grt)
	c.releaseSource(id, fl.from[id])
	c.events().Publish(telemetry.Event{
		Type:   telemetry.EventMigrationCutover,
		Group:  fl.to,
		Tenant: id,
		Detail: fmt.Sprintf("from=%s", fl.from[id]),
	})
	c.finishMigration(fl.mid)
}

// groupDead reports whether any of the group's instances has died. Stopped
// only gates new submits — executions already in flight still finish — so
// death itself never drops queries; what it kills is the group's ability to
// absorb the drain remainder, which is what the crash watchers repair.
func groupDead(grt *master.DeployedGroup) bool {
	for _, inst := range grt.Instances {
		if inst.State() == mppdb.Stopped {
			return true
		}
	}
	return false
}

// watchMigrations is the tick-time crash watch over in-flight migrations. A
// dead destination aborts the migration before its cutover would fire and
// re-places the tenants; a dead source promotes the destination early so the
// drain remainder routes through degraded serving instead of a black hole.
func (c *Controller) watchMigrations(now sim.Time) {
	if len(c.inflight) == 0 {
		return
	}
	mids := make([]int, 0, len(c.inflight))
	for mid := range c.inflight {
		mids = append(mids, mid)
	}
	sort.Ints(mids)
	for _, mid := range mids {
		fl, ok := c.inflight[mid]
		if !ok || fl.done {
			continue
		}
		if groupDead(fl.grt) {
			c.abortMigration(now, fl, "destination_died")
			continue
		}
		for _, id := range fl.ids {
			src := fl.from[id]
			if src == "" {
				continue
			}
			sg, ok := c.dep.Plane().GroupByID(src)
			if !ok {
				continue
			}
			if groupDead(sg) {
				c.promoteMigration(now, fl)
				break
			}
		}
	}
}

// abortMigration unwinds a migration whose destination died during the
// background reload: the half-loaded data is scrubbed from the surviving
// replicas, a destination provisioned just for this migration releases its
// nodes back to the pool, and every tenant is re-placed — into the best
// surviving group when one is feasible, onto a freshly provisioned group
// otherwise, or back onto its live source as a last resort. The sources
// kept serving throughout, so no query is dropped.
func (c *Controller) abortMigration(at sim.Time, fl *flight, cause string) {
	fl.done = true
	delete(c.inflight, fl.mid)
	for _, id := range fl.ids {
		for _, inst := range fl.grt.Instances {
			inst.RemoveTenant(id)
		}
		c.pl.Unassign(id)
	}
	freed := 0
	if fl.newGrp {
		// The group never served a query; forget it and free its nodes
		// (release also covers the dead instance's — the repair pipeline is
		// the pool's own concern).
		c.pl.RemoveGroup(fl.to)
		freed = c.dep.ReleaseGroup(fl.grt)
	}
	c.mu.Lock()
	for i := range c.migrations {
		if c.migrations[i].ID == fl.mid {
			c.migrations[i].Failed = true
			c.migrations[i].Failure = cause
			c.migrations[i].Resolution = "re_placed"
			break
		}
	}
	c.stats.MigrationsAborted++
	c.mu.Unlock()
	c.events().Publish(telemetry.Event{
		Type:   telemetry.EventMigrationAborted,
		Group:  fl.to,
		Value:  float64(freed),
		Detail: fmt.Sprintf("cause=%s kind=%s tenants=%d", cause, fl.kind, len(fl.ids)),
	})
	for _, id := range fl.ids {
		t, ok := c.pl.Tenant(id)
		if !ok {
			continue // departed while migrating
		}
		src := fl.from[id]
		if gid, ok := c.pl.BestGroup(t.Nodes, t.Spans, fl.to); ok {
			c.pl.Assign(id, gid)
			if gid != src {
				c.migrateInto(at, fl.kind, id, src, gid)
			}
			continue
		}
		if _, err := c.deployNewGroup(at, fl.kind, []string{id}, map[string]string{id: src}); err == nil {
			continue
		}
		if src != "" {
			c.pl.Assign(id, src) // revert: stays routed through the live source
			continue
		}
		// A join whose only home died and nothing else fits: withdraw it.
		c.pl.Drop(id)
		delete(c.logs, id)
		delete(c.tenants, id)
	}
}

// promoteMigration cuts a migration over early because its source died
// mid-drain: the surviving destination replicas open for serving now — at
// promotedSlowdown until the background reload would have finished — and the
// tenant→group index flips immediately, so the drain remainder routes
// through degraded serving instead of the dead source.
func (c *Controller) promoteMigration(now sim.Time, fl *flight) {
	fl.done = true
	delete(c.inflight, fl.mid)
	for _, inst := range fl.grt.Instances {
		if inst.State() == mppdb.Stopped {
			continue
		}
		if inst.State() != mppdb.Ready {
			inst.SetState(mppdb.Ready)
		}
		if now < fl.readyAt && inst.Slowdown() == 1 {
			inst := inst
			_ = inst.SetSlowdown(promotedSlowdown)
			c.eng.Schedule(fl.readyAt, func(sim.Time) {
				// Lift the degradation unless something else (a chaos
				// injection) has re-pinned the speed meanwhile.
				if inst.Slowdown() == promotedSlowdown {
					_ = inst.SetSlowdown(1)
				}
			})
		}
	}
	if fl.newGrp {
		// DeployGroup already registered the tenants on the new group's
		// router; only the index flip was pending.
		c.dep.Plane().Index(fl.ids, fl.grt)
	} else if tn, ok := c.tenants[fl.ids[0]]; ok {
		if err := fl.grt.Router.AddTenant(tn); err == nil {
			fl.grt.AddMember(tn)
		}
		c.dep.Plane().Index(fl.ids[:1], fl.grt)
	}
	for _, id := range fl.ids {
		c.releaseSource(id, fl.from[id])
	}
	c.mu.Lock()
	for i := range c.migrations {
		if c.migrations[i].ID == fl.mid {
			c.migrations[i].CutOver = true
			c.migrations[i].Resolution = "promoted_early"
			break
		}
	}
	c.stats.MigrationsCutOver++
	c.stats.MigrationsPromoted++
	c.mu.Unlock()
	c.events().Publish(telemetry.Event{
		Type:  telemetry.EventMigrationPromoted,
		Group: fl.to,
		Detail: fmt.Sprintf("source died mid-drain; destination serving at %.2gx until %v",
			promotedSlowdown, fl.readyAt),
	})
}

// releaseSource detaches a migrated-away tenant from its source group at
// cutover: the monitor stops attributing it, and after the drain slack the
// stale routing entry and the data copy go away. If this was the last routed
// member of a group the partition has already dropped, the source's own
// drain-out can now begin.
func (c *Controller) releaseSource(id, from string) {
	if from == "" {
		return
	}
	src, ok := c.dep.Plane().GroupByID(from)
	if !ok {
		return
	}
	src.Monitor.Exclude(id)
	src.RemoveMember(id)
	c.eng.After(c.cfg.DrainSlack, func(sim.Time) {
		src.Router.RemoveTenant(id)
		for _, inst := range src.Instances {
			inst.RemoveTenant(id)
		}
	})
	c.retireWhenDrained(from)
}

// deployNewGroup provisions a fresh group for the given tenants (already
// registered in the placer, unassigned) and schedules its cutover; from maps
// each tenant to the group it is migrating away from ("" or absent for a
// join). Until cutover the tenants keep draining queries through their
// sources. Returns the new group's ID.
func (c *Controller) deployNewGroup(now sim.Time, kind string, ids []string, from map[string]string) (string, error) {
	n1 := 0
	for _, id := range ids {
		if c.tenants[id].Nodes > n1 {
			n1 = c.tenants[id].Nodes
		}
	}
	design, err := tdd.NewClusterDesign(c.cfg.Plan.R, n1, n1)
	if err != nil {
		return "", err
	}
	gid := fmt.Sprintf("TG-ON%04d", c.nextGID)
	c.nextGID++
	pg := advisor.PlannedGroup{ID: gid, TenantIDs: append([]string(nil), ids...), Design: design}
	grt, readyAt, err := c.mst.DeployGroup(c.dep, pg, c.cfg.Plan.P, c.tenants)
	if err != nil {
		return "", err
	}
	if c.cfg.Immediate {
		readyAt = now
	}
	if _, err := c.pl.AddGroup(gid, n1); err != nil {
		return "", err
	}
	for _, id := range ids {
		c.pl.Assign(id, gid)
	}
	// When every tenant shares one source (the usual split), record it.
	src := from[ids[0]]
	for _, id := range ids[1:] {
		if from[id] != src {
			src = ""
			break
		}
	}
	mid := c.recordMigration(Migration{
		Kind: kind, Tenants: append([]string(nil), ids...), From: src, To: gid,
		Started: now, ReadyAt: readyAt,
	})
	srcOf := make(map[string]string, len(ids))
	for _, id := range ids {
		srcOf[id] = from[id]
	}
	fl := &flight{
		mid: mid, kind: kind, ids: pg.TenantIDs,
		from: srcOf, to: gid, grt: grt, readyAt: readyAt, newGrp: true,
	}
	c.inflight[mid] = fl
	c.events().Publish(telemetry.Event{
		Type:   telemetry.EventMigrationStarted,
		Group:  gid,
		Value:  float64(readyAt-now) / float64(sim.Second),
		Detail: fmt.Sprintf("kind=%s tenants=%d", kind, len(ids)),
	})
	c.eng.Schedule(readyAt, func(at sim.Time) {
		c.cutOverGroup(at, fl)
	})
	return gid, nil
}

// cutOverGroup flips a freshly provisioned group's tenants live once the
// background reload finishes — unless the group died while loading, in which
// case the migration aborts and the tenants re-place from their still-serving
// sources.
func (c *Controller) cutOverGroup(at sim.Time, fl *flight) {
	if fl.done {
		return // aborted or promoted before the reload finished
	}
	if groupDead(fl.grt) {
		c.abortMigration(at, fl, "destination_died")
		return
	}
	fl.done = true
	delete(c.inflight, fl.mid)
	c.dep.Plane().Index(fl.ids, fl.grt)
	for _, id := range fl.ids {
		c.releaseSource(id, fl.from[id])
	}
	c.events().Publish(telemetry.Event{
		Type:   telemetry.EventMigrationCutover,
		Group:  fl.to,
		Detail: fmt.Sprintf("tenants=%d", len(fl.ids)),
	})
	c.finishMigration(fl.mid)
}

// repairGroup restores an infeasible group. Local repair first: members are
// ranked by how much their departure relieves the over-budget epochs, and
// the loop tries to move the most relieving member whose profile fits some
// other group under the T_best rule — each examined candidate costs one
// bounded preview per group, so a repair decision is several orders of
// magnitude cheaper than a re-solve. Only when the budget of local moves is
// exhausted (or no member can move anywhere) does the loop escalate to a
// scoped advisor.Reconsolidate of just this group.
func (c *Controller) repairGroup(now sim.Time, gid string) {
	moves := 0
	for !c.pl.Feasible(gid) && moves < c.cfg.MaxLocalMoves {
		progress := false
		for _, id := range c.pl.EvictionOrder(gid) {
			t, _ := c.pl.Tenant(id)
			if err := c.pl.Unassign(id); err != nil {
				continue
			}
			target, ok := c.pl.BestGroup(t.Nodes, t.Spans, gid)
			if ok {
				c.pl.Assign(id, target)
				c.events().Publish(telemetry.Event{
					Type:   telemetry.EventOnlineReplan,
					Group:  gid,
					Tenant: id,
					Detail: fmt.Sprintf("local repair move to %s", target),
				})
				c.mu.Lock()
				c.stats.LocalMoves++
				c.mu.Unlock()
				c.migrateInto(now, "move", id, gid, target)
				moves++
				progress = true
				break
			}
			c.pl.Assign(id, gid) // revert: nowhere to go
		}
		if !progress {
			break
		}
	}
	if !c.pl.Feasible(gid) {
		c.fallbackReconsolidate(now, gid)
	} else {
		c.maybeRetire(gid)
	}
}

// fallbackReconsolidate re-solves one broken group offline: the scoped
// advisor run sees only this group's members (with their drifted, live
// profiles), and its output — one or more replacement groups plus possible
// exclusions onto dedicated groups — is executed as a split migration. The
// vacated source group drains and retires.
func (c *Controller) fallbackReconsolidate(now sim.Time, gid string) {
	g, ok := c.pl.Group(gid)
	if !ok {
		return
	}
	grt, ok := c.dep.Plane().GroupByID(gid)
	if !ok {
		return
	}
	members := g.Members()
	prev := &advisor.Plan{
		Config: c.cfg.Plan,
		Groups: []advisor.PlannedGroup{{
			ID:        gid,
			TenantIDs: members,
			Design:    grt.Plan.Design,
		}},
	}
	logs := make([]*workload.TenantLog, 0, len(members))
	for _, id := range members {
		t, _ := c.pl.Tenant(id)
		logs = append(logs, &workload.TenantLog{
			Tenant:   c.tenants[id],
			Activity: c.activityFromSpans(t.Spans),
		})
	}
	next, rep, err := c.adv.Reconsolidate(advisor.ReconsolidationInput{
		Previous:      prev,
		Logs:          logs,
		FlaggedGroups: []string{gid},
	}, c.cfg.Horizon)
	if err != nil {
		return
	}
	c.events().Publish(telemetry.Event{
		Type:   telemetry.EventOnlineFallback,
		Group:  gid,
		Value:  float64(rep.RepackedTenants),
		Detail: fmt.Sprintf("scoped re-consolidation into %d groups, %d excluded", len(next.Groups), len(next.Excluded)),
	})
	c.mu.Lock()
	c.stats.Fallbacks++
	c.lastReport = rep
	c.mu.Unlock()

	place := func(ids []string) {
		from := make(map[string]string, len(ids))
		for _, id := range ids {
			if t, ok := c.pl.Tenant(id); ok {
				from[id] = t.Group
			}
			c.pl.Unassign(id)
		}
		c.deployNewGroup(now, "split", ids, from)
	}
	for _, pg := range next.Groups {
		place(pg.TenantIDs)
	}
	for _, e := range next.Excluded {
		// Over-active or bursty member: a dedicated single-tenant group.
		place([]string{e.TenantID})
	}
	// Anyone the re-solve failed to place stays put (the group remains
	// infeasible and will be retried next tick).
	c.maybeRetire(gid)
}

// Audit re-expresses the live partition as a grouping.Solution and checks it
// against the LIVBPwFC constraint with the same Verify the offline solvers
// answer to. Engine-side callers only (it reads the live placer).
func (c *Controller) Audit() error {
	// A sharing-planned partition is denser than the plain test allows;
	// audit it against the same credited test that licensed it.
	p := &grouping.Problem{D: c.grid.D, R: c.cfg.Plan.R, P: c.cfg.Plan.P,
		Share: c.cfg.Plan.ShareWeights()}
	var groups [][]string
	for _, g := range c.pl.Groups() {
		if g.Size() == 0 {
			continue
		}
		members := g.Members()
		groups = append(groups, members)
		for _, id := range members {
			t, _ := c.pl.Tenant(id)
			p.Items = append(p.Items, &grouping.Item{ID: id, Nodes: t.Nodes, Spans: t.Spans})
		}
	}
	sol, err := grouping.SolutionFromMembers(p, groups, "online")
	if err != nil {
		return err
	}
	return grouping.Verify(p, sol)
}

// recordMigration appends a migration record and bumps the started counter.
func (c *Controller) recordMigration(m Migration) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m.ID = c.nextMig
	c.nextMig++
	c.migrations = append(c.migrations, m)
	c.stats.MigrationsStarted++
	return m.ID
}

// finishMigration marks a migration cut over.
func (c *Controller) finishMigration(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.migrations {
		if c.migrations[i].ID == id {
			c.migrations[i].CutOver = true
			break
		}
	}
	c.stats.MigrationsCutOver++
}

// activityFromSpans converts a grid profile back to interval form for the
// scoped offline re-solve (sub-epoch detail is gone, which is exactly the
// planner's own resolution).
func (c *Controller) activityFromSpans(sp epoch.Spans) epoch.Activity {
	out := make(epoch.Activity, 0, len(sp))
	for _, s := range sp {
		out = append(out, epoch.Interval{
			Start: sim.Time(s.S) * c.grid.Width,
			End:   sim.Time(s.E) * c.grid.Width,
		})
	}
	return out
}
