package online

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/master"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tdd"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// win returns a one-hour activity window starting at hour h.
func win(h int) epoch.Activity {
	return epoch.Activity{{Start: sim.Time(h) * sim.Hour, End: sim.Time(h)*sim.Hour + sim.Hour}}
}

func mkLog(id string, act epoch.Activity) *workload.TenantLog {
	return &workload.TenantLog{
		Tenant:   &tenant.Tenant{ID: id, Nodes: 2, DataGB: 100, Users: 1, Suite: queries.TPCH},
		Activity: act,
	}
}

type world struct {
	eng  *sim.Engine
	pool *cluster.Pool
	dep  *master.Deployment
	ctl  *Controller
	logs map[string]*workload.TenantLog
}

// liveWorld deploys a hand-built R=1 plan (each group's members have disjoint
// windows, so any overlap injected later breaks the group) and arms a
// controller over it. groups maps group index -> member IDs; acts maps member
// ID -> activity.
func liveWorld(t *testing.T, groups [][]string, acts map[string]epoch.Activity, ctlImmediate bool) *world {
	t.Helper()
	acfg := advisor.DefaultConfig()
	acfg.R = 1
	design, err := tdd.NewClusterDesign(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := &advisor.Plan{Config: acfg}
	tenants := map[string]*tenant.Tenant{}
	var logs []*workload.TenantLog
	logByID := map[string]*workload.TenantLog{}
	for gi, members := range groups {
		pg := advisor.PlannedGroup{
			ID:     gidOf(gi),
			Design: design,
			TTP:    1,
		}
		for _, id := range members {
			tl := mkLog(id, acts[id])
			tenants[id] = tl.Tenant
			logs = append(logs, tl)
			logByID[id] = tl
			pg.TenantIDs = append(pg.TenantIDs, id)
		}
		plan.Groups = append(plan.Groups, pg)
	}
	eng := sim.NewEngine()
	pool := cluster.NewPool(60)
	m := master.New(eng, pool, master.Options{Immediate: true, ParallelLoad: true, MonitorWindow: 24 * time.Hour})
	dep, err := m.Deploy(plan, tenants)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(acfg, sim.Day)
	cfg.Immediate = ctlImmediate
	ctl, err := New(eng, dep, m, plan, logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &world{eng: eng, pool: pool, dep: dep, ctl: ctl, logs: logByID}
}

func gidOf(i int) string {
	return []string{"TG-0000", "TG-0001", "TG-0002"}[i]
}

// inject streams extra observed activity into a deployed tenant's live
// profile, as the monitor feed would.
func (w *world) inject(t *testing.T, id string, act epoch.Activity) {
	t.Helper()
	tn, ok := w.ctl.pl.Tenant(id)
	if !ok {
		t.Fatalf("tenant %s not in placer", id)
	}
	delta := w.ctl.grid.Quantize(act).Diff(tn.Spans)
	if _, err := w.ctl.pl.Ingest(id, delta); err != nil {
		t.Fatal(err)
	}
}

func (w *world) submit(t *testing.T, id string) string {
	t.Helper()
	cl, _ := queries.Default().ByID("TPCH-Q1")
	db, err := w.dep.Submit(id, cl)
	if err != nil {
		t.Fatalf("submit for %s: %v", id, err)
	}
	return db
}

func twoGroups() ([][]string, map[string]epoch.Activity) {
	return [][]string{{"Ta", "Tb"}, {"Tc", "Td"}},
		map[string]epoch.Activity{"Ta": win(0), "Tb": win(2), "Tc": win(4), "Td": win(6)}
}

func TestNewRejectsShardedDeployment(t *testing.T) {
	groups, acts := twoGroups()
	w := liveWorld(t, groups, acts, true) // build the plan pieces cheaply
	eng := sim.NewEngine()
	m := master.New(eng, cluster.NewPool(60), master.Options{Immediate: true, Sharded: true})
	acfg := advisor.DefaultConfig()
	acfg.R = 1
	design, _ := tdd.NewClusterDesign(1, 2, 0)
	plan := &advisor.Plan{Config: acfg, Groups: []advisor.PlannedGroup{
		{ID: "TG-0000", TenantIDs: []string{"Ta", "Tb"}, Design: design, TTP: 1},
	}}
	tenants := map[string]*tenant.Tenant{"Ta": w.logs["Ta"].Tenant, "Tb": w.logs["Tb"].Tenant}
	dep, err := m.Deploy(plan, tenants)
	if err != nil {
		t.Fatal(err)
	}
	logs := []*workload.TenantLog{w.logs["Ta"], w.logs["Tb"]}
	if _, err := New(eng, dep, m, plan, logs, DefaultConfig(acfg, sim.Day)); err == nil {
		t.Error("sharded deployment accepted")
	}
}

func TestJoinPlacedInExistingGroup(t *testing.T) {
	groups, acts := twoGroups()
	w := liveWorld(t, groups, acts, true)
	w.ctl.Start()
	// The joiner overlaps Tb: TG-0000 would break (R=1), TG-0001 stays
	// feasible — the T_best scan must pick TG-0001.
	w.ctl.Join(mkLog("Te", win(2)))
	w.eng.Run(20 * sim.Minute)

	st := w.ctl.Status()
	if st.Joins != 1 {
		t.Fatalf("joins = %d", st.Joins)
	}
	tn, ok := w.ctl.pl.Tenant("Te")
	if !ok || tn.Group != "TG-0001" {
		t.Fatalf("joiner in %q, want TG-0001", tn.Group)
	}
	if g, ok := w.dep.GroupFor("Te"); !ok || g.Plan.ID != "TG-0001" {
		t.Fatal("joiner not routable to TG-0001")
	}
	if db := w.submit(t, "Te"); !strings.HasPrefix(db, "TG-0001") {
		t.Errorf("query routed to %s", db)
	}
	migs := w.ctl.Migrations()
	if len(migs) != 1 || migs[0].Kind != "join" || !migs[0].CutOver {
		t.Errorf("migrations = %+v", migs)
	}
	if err := w.ctl.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
}

func TestJoinProvisionsNewGroup(t *testing.T) {
	groups, acts := twoGroups()
	w := liveWorld(t, groups, acts, true)
	before := w.dep.NodesUsed()
	w.ctl.Start()
	// Active across every window: no existing group can absorb it under R=1.
	w.ctl.Join(mkLog("Tx", epoch.Activity{{Start: 0, End: 8 * sim.Hour}}))
	w.eng.Run(20 * sim.Minute)

	tn, ok := w.ctl.pl.Tenant("Tx")
	if !ok || tn.Group != "TG-ON0000" {
		t.Fatalf("joiner in %q, want a fresh TG-ON group", tn.Group)
	}
	if g, ok := w.dep.GroupFor("Tx"); !ok || g.Plan.ID != "TG-ON0000" {
		t.Fatal("joiner not routable to the new group")
	}
	if db := w.submit(t, "Tx"); !strings.HasPrefix(db, "TG-ON0000") {
		t.Errorf("query routed to %s", db)
	}
	if got := w.dep.NodesUsed(); got != before+2 {
		t.Errorf("nodes used %d, want %d (one new 2-node MPPDB)", got, before+2)
	}
	if err := w.ctl.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
}

func TestLeaveRetiresEmptyGroup(t *testing.T) {
	groups, acts := twoGroups()
	w := liveWorld(t, groups, acts, true)
	before := w.dep.NodesUsed()
	w.ctl.Start()
	w.ctl.Leave("Tc")
	w.ctl.Leave("Td")
	w.eng.Run(3 * sim.Hour) // past the tick and the drain slack

	st := w.ctl.Status()
	if st.Leaves != 2 || st.GroupsRetired != 1 {
		t.Fatalf("leaves=%d retired=%d", st.Leaves, st.GroupsRetired)
	}
	if _, ok := w.dep.Plane().GroupByID("TG-0001"); ok {
		t.Error("retired group still on the plane")
	}
	if got := w.dep.NodesUsed(); got != before-2 {
		t.Errorf("nodes used %d, want %d after retiring a 2-node MPPDB", got, before-2)
	}
	cl, _ := queries.Default().ByID("TPCH-Q1")
	if _, err := w.dep.Submit("Tc", cl); err == nil {
		t.Error("departed tenant still routable")
	}
	if db := w.submit(t, "Ta"); !strings.HasPrefix(db, "TG-0000") {
		t.Errorf("surviving tenant routed to %s", db)
	}
}

func TestDriftRepairLocalMove(t *testing.T) {
	groups, acts := twoGroups()
	w := liveWorld(t, groups, acts, true)
	w.ctl.Start()
	// Ta's observed activity now also covers Tb's window: TG-0000 spends an
	// hour at count 2 > R=1 and violates the constraint. Local repair must
	// move one member into TG-0001 (whose windows are disjoint from both).
	w.inject(t, "Ta", win(2))
	if got := w.ctl.pl.Infeasible(); len(got) != 1 || got[0] != "TG-0000" {
		t.Fatalf("infeasible = %v", got)
	}
	w.eng.Run(20 * sim.Minute)

	st := w.ctl.Status()
	if st.LocalMoves != 1 || st.Fallbacks != 0 {
		t.Fatalf("moves=%d fallbacks=%d, want local repair only", st.LocalMoves, st.Fallbacks)
	}
	if got := w.ctl.pl.Infeasible(); len(got) != 0 {
		t.Fatalf("still infeasible: %v", got)
	}
	// The move is live: the tenant routes to its new group after cutover.
	tn, _ := w.ctl.pl.Tenant("Ta")
	if tn.Group != "TG-0001" {
		t.Fatalf("Ta in %q after repair", tn.Group)
	}
	if g, ok := w.dep.GroupFor("Ta"); !ok || g.Plan.ID != "TG-0001" {
		t.Fatal("Ta not routable to TG-0001")
	}
	if err := w.ctl.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
}

func TestDriftRepairFallsBackToScopedReconsolidate(t *testing.T) {
	// A single group: local repair has nowhere to move anyone, so the loop
	// must escalate to the scoped offline re-solve and split the group.
	groups := [][]string{{"Ta", "Tb"}}
	acts := map[string]epoch.Activity{"Ta": win(0), "Tb": win(2)}
	w := liveWorld(t, groups, acts, true)
	w.ctl.Start()
	w.inject(t, "Ta", win(2))
	w.eng.Run(20 * sim.Minute)

	st := w.ctl.Status()
	if st.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d", st.Fallbacks)
	}
	rep := w.ctl.LastReport()
	if rep == nil {
		t.Fatal("no reconsolidation report")
	}
	if len(rep.Decisions) != 1 || rep.Decisions[0].Kept || rep.Decisions[0].Reason != advisor.ReasonFlagged {
		t.Errorf("decisions = %+v, want one flagged repack", rep.Decisions)
	}
	// The split landed both tenants in fresh feasible groups.
	if got := w.ctl.pl.Infeasible(); len(got) != 0 {
		t.Fatalf("still infeasible: %v", got)
	}
	for _, id := range []string{"Ta", "Tb"} {
		tn, _ := w.ctl.pl.Tenant(id)
		if !strings.HasPrefix(tn.Group, "TG-ON") {
			t.Errorf("%s in %q, want a fresh TG-ON group", id, tn.Group)
		}
		w.submit(t, id)
	}
	if err := w.ctl.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
	// The vacated source group drains and retires.
	w.eng.Run(3 * sim.Hour)
	if _, ok := w.dep.Plane().GroupByID("TG-0000"); ok {
		t.Error("vacated group never retired")
	}
}

// TestMoveCutoverNeverDropsQueries drives submissions across a costed live
// migration: every submit before cutover lands on the source group, every
// submit after lands on the target, and none fail.
func TestMoveCutoverNeverDropsQueries(t *testing.T) {
	groups, acts := twoGroups()
	w := liveWorld(t, groups, acts, false) // costed migrations
	w.ctl.Start()
	w.inject(t, "Ta", win(2))

	// The move decision fires at the first tick; cutover after the bulk load.
	decisionAt := 15 * sim.Minute
	cost := sim.Duration(cluster.LoadTime(100, 2, true))
	cutoverAt := decisionAt + cost
	if cost < sim.Minute {
		t.Fatalf("load cost %v too small to straddle", cost)
	}

	var routed []string
	at := func(ts sim.Time) {
		w.eng.Schedule(ts, func(sim.Time) { routed = append(routed, w.submit(t, "Ta")) })
	}
	at(decisionAt - 5*sim.Minute) // before the decision
	at(decisionAt + sim.Minute)   // in flight: must still drain through source
	at(cutoverAt - sim.Second)    // just before the flip
	at(cutoverAt + sim.Second)    // just after the flip
	at(cutoverAt + 5*sim.Minute)
	w.eng.Run(cutoverAt + 10*sim.Minute)

	if len(routed) != 5 {
		t.Fatalf("%d of 5 submits succeeded", len(routed))
	}
	for i, db := range routed[:3] {
		if !strings.HasPrefix(db, "TG-0000") {
			t.Errorf("submit %d routed to %s, want source TG-0000", i, db)
		}
	}
	for i, db := range routed[3:] {
		if !strings.HasPrefix(db, "TG-0001") {
			t.Errorf("submit %d routed to %s, want target TG-0001", i+3, db)
		}
	}
	// Drain everything; every submitted query must have completed.
	w.ctl.Stop()
	w.eng.RunAll()
	if got := len(w.dep.Records()); got != 5 {
		t.Errorf("%d query records, want 5 (no drops)", got)
	}
}

// killGroup stops every instance of a deployed group in place, as a crash
// would: new submits stop resolving there, but executions already in flight
// still finish.
func (w *world) killGroup(t *testing.T, gid string) {
	t.Helper()
	grt, ok := w.dep.Plane().GroupByID(gid)
	if !ok {
		t.Fatalf("group %s not deployed", gid)
	}
	for _, inst := range grt.Instances {
		inst.SetState(mppdb.Stopped)
	}
}

// TestMigrationDestinationDiesAborts kills the destination group in the
// middle of a costed live migration's background reload. The crash watch must
// abort the cutover and re-place the tenant — onto a freshly provisioned
// group here, since the source conflicts under R=1 and the dead destination
// is excluded — while every query keeps draining through the live source.
func TestMigrationDestinationDiesAborts(t *testing.T) {
	groups, acts := twoGroups()
	w := liveWorld(t, groups, acts, false) // costed migrations
	w.ctl.Start()
	w.inject(t, "Ta", win(2))

	// The move TG-0000 → TG-0001 is decided at the first tick; the crash
	// lands mid-reload, so the 30-minute tick's watch catches it well before
	// the scheduled cutover would.
	decisionAt := 15 * sim.Minute
	cost := sim.Duration(cluster.LoadTime(100, 2, true))
	if cost < 20*sim.Minute {
		t.Fatalf("load cost %v too small for a mid-reload crash", cost)
	}
	w.eng.Schedule(20*sim.Minute, func(sim.Time) { w.killGroup(t, "TG-0001") })

	var routed []string
	at := func(ts sim.Time) {
		w.eng.Schedule(ts, func(sim.Time) { routed = append(routed, w.submit(t, "Ta")) })
	}
	at(decisionAt - 5*sim.Minute) // before the decision
	at(25 * sim.Minute)           // destination dead, abort not yet observed
	at(40 * sim.Minute)           // after the abort and re-placement
	w.eng.Run(decisionAt + cost + sim.Minute)

	migs := w.ctl.Migrations()
	if len(migs) < 2 {
		t.Fatalf("%d migrations recorded, want aborted move + re-placement", len(migs))
	}
	if m := migs[0]; !m.Failed || m.Failure != "destination_died" ||
		m.Resolution != "re_placed" || m.CutOver {
		t.Errorf("first migration = %+v, want failed destination_died/re_placed", m)
	}
	if m := migs[1]; !strings.HasPrefix(m.To, "TG-ON") || m.From != "TG-0000" {
		t.Errorf("re-placement = %+v, want TG-0000 -> fresh TG-ON group", m)
	}
	if st := w.ctl.Status(); st.MigrationsAborted != 1 {
		t.Errorf("aborted = %d, want 1", st.MigrationsAborted)
	}
	// The live source absorbed every submit until the re-placement group
	// (provisioned immediately by this harness's master) took over.
	for i, db := range routed[:2] {
		if !strings.HasPrefix(db, "TG-0000") {
			t.Errorf("submit %d routed to %s, want live source TG-0000", i, db)
		}
	}
	if len(routed) == 3 && !strings.HasPrefix(routed[2], "TG-ON") {
		t.Errorf("post-abort submit routed to %s, want the fresh TG-ON group", routed[2])
	}
	w.ctl.Stop()
	w.eng.RunAll()
	if got := len(w.dep.Records()); got != 3 {
		t.Errorf("%d query records, want 3 (no drops)", got)
	}
	tn, ok := w.ctl.pl.Tenant("Ta")
	if !ok || !strings.HasPrefix(tn.Group, "TG-ON") {
		t.Errorf("Ta placed in %q, want the fresh TG-ON group", tn.Group)
	}
}

// TestMigrationSourceDiesPromotes kills the source group mid-drain. The crash
// watch must promote the destination early — open for serving at
// promotedSlowdown until the background reload would have finished, full
// speed after — so the drain remainder routes through degraded serving
// instead of the dead source.
func TestMigrationSourceDiesPromotes(t *testing.T) {
	groups, acts := twoGroups()
	w := liveWorld(t, groups, acts, false) // costed migrations
	w.ctl.Start()
	w.inject(t, "Ta", win(2))

	decisionAt := 15 * sim.Minute
	cost := sim.Duration(cluster.LoadTime(100, 2, true))
	readyAt := decisionAt + cost
	if cost < 20*sim.Minute {
		t.Fatalf("load cost %v too small for a mid-drain crash", cost)
	}
	w.eng.Schedule(20*sim.Minute, func(sim.Time) { w.killGroup(t, "TG-0000") })

	var routed []string
	at := func(ts sim.Time) {
		w.eng.Schedule(ts, func(sim.Time) { routed = append(routed, w.submit(t, "Ta")) })
	}
	at(decisionAt - 5*sim.Minute) // drains through the still-live source
	at(31 * sim.Minute)           // after the promotion at the 30-minute tick

	// Degraded serving holds from promotion until the reload would have
	// finished.
	dest, ok := w.dep.Plane().GroupByID("TG-0001")
	if !ok {
		t.Fatal("destination group not deployed")
	}
	w.eng.Schedule(31*sim.Minute, func(sim.Time) {
		for _, inst := range dest.Instances {
			if got := inst.Slowdown(); got != promotedSlowdown {
				t.Errorf("promoted %s slowdown = %v, want %v", inst.ID(), got, promotedSlowdown)
			}
		}
	})
	w.eng.Run(readyAt + sim.Minute)

	migs := w.ctl.Migrations()
	if len(migs) != 1 {
		t.Fatalf("%d migrations recorded, want 1", len(migs))
	}
	if m := migs[0]; !m.CutOver || m.Failed || m.Resolution != "promoted_early" {
		t.Errorf("migration = %+v, want cut over promoted_early", m)
	}
	st := w.ctl.Status()
	if st.MigrationsPromoted != 1 || st.MigrationsAborted != 0 {
		t.Errorf("promoted/aborted = %d/%d, want 1/0", st.MigrationsPromoted, st.MigrationsAborted)
	}
	if len(routed) != 2 {
		t.Fatalf("%d of 2 submits succeeded", len(routed))
	}
	if !strings.HasPrefix(routed[0], "TG-0000") {
		t.Errorf("pre-crash submit routed to %s, want source TG-0000", routed[0])
	}
	if !strings.HasPrefix(routed[1], "TG-0001") {
		t.Errorf("post-promotion submit routed to %s, want destination TG-0001", routed[1])
	}
	for _, inst := range dest.Instances {
		if got := inst.Slowdown(); got != 1 {
			t.Errorf("%s slowdown = %v after readyAt, want 1 (degradation lifted)", inst.ID(), got)
		}
	}
	w.ctl.Stop()
	w.eng.RunAll()
	if got := len(w.dep.Records()); got != 2 {
		t.Errorf("%d query records, want 2 (no drops)", got)
	}
}

func TestPlacerBestGroupMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const D = 240
	randSpans := func() epoch.Spans {
		var sp epoch.Spans
		at := int32(rng.Intn(20))
		for int64(at) < D {
			ln := int32(1 + rng.Intn(12))
			end := at + ln
			if int64(end) > D {
				end = int32(D)
			}
			sp = append(sp, epoch.Span{S: at, E: end})
			at = end + int32(1+rng.Intn(30))
		}
		return sp
	}
	brute := func(pl *Placer, nodes int, sp epoch.Spans, exclude string) (string, bool) {
		bestID := ""
		bestMax := 0
		var bestShare int64
		for _, g := range pl.Groups() {
			if g.ID == exclude || g.Nodes < nodes {
				continue
			}
			tr := g.CS.Preview(sp)
			if g.CS.NewTTP(pl.R, tr) < pl.P-feasSlack {
				continue
			}
			km, _ := g.CS.NewTopUp(tr)
			share := g.CS.NewHistAt(tr, km)
			if bestID == "" || km < bestMax || (km == bestMax && share < bestShare) {
				bestID, bestMax, bestShare = g.ID, km, share
			}
		}
		return bestID, bestID != ""
	}

	pl := NewPlacer(D, 3, 0.85)
	for gi := 0; gi < 8; gi++ {
		nodes := 2 + rng.Intn(3)
		if _, err := pl.AddGroup(string(rune('A'+gi)), nodes); err != nil {
			t.Fatal(err)
		}
	}
	gs := pl.Groups()
	for i := 0; i < 40; i++ {
		id := string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := pl.Register(id, 1+rng.Intn(4), randSpans()); err != nil {
			t.Fatal(err)
		}
		pl.Assign(id, gs[rng.Intn(len(gs))].ID)
	}
	for probe := 0; probe < 200; probe++ {
		nodes := 1 + rng.Intn(4)
		sp := randSpans()
		exclude := ""
		if probe%3 == 0 {
			exclude = gs[rng.Intn(len(gs))].ID
		}
		wantID, wantOK := brute(pl, nodes, sp, exclude)
		gotID, gotOK := pl.BestGroup(nodes, sp, exclude)
		if gotID != wantID || gotOK != wantOK {
			t.Fatalf("probe %d: BestGroup = %q/%v, brute force = %q/%v",
				probe, gotID, gotOK, wantID, wantOK)
		}
	}
}

func TestPlacerEvictionOrderRanksByRelief(t *testing.T) {
	pl := NewPlacer(10, 1, 0.5)
	pl.AddGroup("G", 2)
	pl.Register("A", 2, epoch.Spans{{S: 0, E: 6}})
	pl.Register("B", 2, epoch.Spans{{S: 0, E: 3}})
	pl.Register("C", 2, epoch.Spans{{S: 8, E: 9}})
	for _, id := range []string{"A", "B", "C"} {
		if err := pl.Assign(id, "G"); err != nil {
			t.Fatal(err)
		}
	}
	// Counts: [0,3)=2, [3,6)=1, [8,9)=1. Over-budget epochs (count 2) lie in
	// [0,3): A and B both relieve 3 epochs (tie broken by ID), C none.
	got := pl.EvictionOrder("G")
	want := []string{"A", "B", "C"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("eviction order = %v, want %v", got, want)
		}
	}
}

func TestPlacerUnassignIsExactInverse(t *testing.T) {
	pl := NewPlacer(100, 2, 0.9)
	pl.AddGroup("G", 2)
	pl.Register("X", 2, epoch.Spans{{S: 10, E: 30}})
	pl.Assign("X", "G")
	// Drift in two installments, overlapping the profile and each other's
	// neighborhood: Ingest must add only the disjoint delta.
	for _, obs := range []epoch.Spans{{{S: 20, E: 40}}, {{S: 5, E: 15}, {S: 60, E: 70}}} {
		tn, _ := pl.Tenant("X")
		if _, err := pl.Ingest("X", obs.Diff(tn.Spans)); err != nil {
			t.Fatal(err)
		}
	}
	tn, _ := pl.Tenant("X")
	if tn.DeltaEpochs != 10+5+10 {
		t.Errorf("DeltaEpochs = %d, want 25", tn.DeltaEpochs)
	}
	g, _ := pl.Group("G")
	if g.CS.MaxCount() != 1 {
		t.Fatalf("count exceeded 1: profile and deltas must not double-count")
	}
	if err := pl.Unassign("X"); err != nil {
		t.Fatal(err)
	}
	if g.CS.MaxCount() != 0 || g.CS.TTP(2) != 1 {
		t.Errorf("group not empty after unassign: max=%d", g.CS.MaxCount())
	}
}
