package master

import (
	"testing"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// plannedWorld builds a 6-tenant plan (two disjoint office windows) plus the
// tenant index the master needs.
func plannedWorld(t *testing.T) (*advisor.Plan, map[string]*tenant.Tenant) {
	t.Helper()
	var logs []*workload.TenantLog
	tenants := map[string]*tenant.Tenant{}
	for i := 0; i < 6; i++ {
		id := "T" + string(rune('a'+i))
		tn := &tenant.Tenant{ID: id, Nodes: 2, DataGB: 200, Users: 1, Suite: queries.TPCH}
		tenants[id] = tn
		w := sim.Time(i%3) * 4 * sim.Hour
		logs = append(logs, &workload.TenantLog{
			Tenant:   tn,
			Activity: epoch.Activity{{Start: w, End: w + sim.Hour}},
		})
	}
	cfg := advisor.DefaultConfig()
	cfg.R = 2
	a, err := advisor.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) == 0 {
		t.Fatal("planner produced no groups")
	}
	return plan, tenants
}

func TestDeployImmediate(t *testing.T) {
	plan, tenants := plannedWorld(t)
	eng := sim.NewEngine()
	pool := cluster.NewPool(100)
	m := New(eng, pool, Options{Immediate: true})
	dep, err := m.Deploy(plan, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if got := dep.NodesUsed(); got != plan.NodesUsed() {
		t.Errorf("NodesUsed = %d, plan says %d", got, plan.NodesUsed())
	}
	// Unused nodes remain hibernated.
	if got := pool.CountState(cluster.Hibernated); got != 100-plan.NodesUsed() {
		t.Errorf("hibernated = %d", got)
	}
	for _, g := range dep.Groups() {
		if len(g.Instances) != g.Plan.Design.A {
			t.Errorf("group %s has %d instances, want %d", g.Plan.ID, len(g.Instances), g.Plan.Design.A)
		}
		for _, inst := range g.Instances {
			if inst.State() != mppdb.Ready {
				t.Errorf("instance %s is %v, want ready (immediate)", inst.ID(), inst.State())
			}
			// TDD placement: every member on every instance.
			for _, id := range g.Plan.TenantIDs {
				if !inst.HasTenant(id) {
					t.Errorf("instance %s lacks tenant %s", inst.ID(), id)
				}
			}
		}
		if dep.ReadyAt(g.Plan.ID) != 0 {
			t.Errorf("immediate deployment has ReadyAt %v", dep.ReadyAt(g.Plan.ID))
		}
	}
	// Query flow end to end.
	cl, _ := queries.Default().ByID("TPCH-Q1")
	db, err := dep.Submit("Ta", cl)
	if err != nil {
		t.Fatal(err)
	}
	if db == "" {
		t.Error("no instance chosen")
	}
	eng.RunAll()
	recs := dep.Records()
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	if !recs[0].SLAMet() {
		t.Errorf("query missed SLA: %.2f", recs[0].Normalized())
	}
	if _, err := dep.Submit("ghost", cl); err == nil {
		t.Error("unknown tenant accepted")
	}
	if _, ok := dep.GroupFor("Ta"); !ok {
		t.Error("GroupFor failed")
	}
	if len(dep.ScalerTargets()) != len(dep.Groups()) {
		t.Error("ScalerTargets wrong")
	}
}

func TestDeployWithProvisioningDelay(t *testing.T) {
	plan, tenants := plannedWorld(t)
	eng := sim.NewEngine()
	pool := cluster.NewPool(100)
	m := New(eng, pool, DefaultOptions())
	dep, err := m.Deploy(plan, tenants)
	if err != nil {
		t.Fatal(err)
	}
	g := dep.Groups()[0]
	for _, inst := range g.Instances {
		if inst.State() != mppdb.Provisioning {
			t.Errorf("instance %s is %v before provisioning completes", inst.ID(), inst.State())
		}
	}
	ready := dep.ReadyAt(g.Plan.ID)
	if ready <= 0 {
		t.Fatal("no provisioning delay recorded")
	}
	// Until ready, routing fails (no ready MPPDB).
	cl, _ := queries.Default().ByID("TPCH-Q6")
	if _, err := dep.Submit(g.Plan.TenantIDs[0], cl); err == nil {
		t.Error("query accepted before provisioning completed")
	}
	eng.Run(ready)
	for _, inst := range g.Instances {
		if inst.State() != mppdb.Ready {
			t.Errorf("instance %s is %v after ReadyAt", inst.ID(), inst.State())
		}
	}
	if _, err := dep.Submit(g.Plan.TenantIDs[0], cl); err != nil {
		t.Errorf("query after provisioning: %v", err)
	}
}

func TestDeployPoolTooSmall(t *testing.T) {
	plan, tenants := plannedWorld(t)
	eng := sim.NewEngine()
	pool := cluster.NewPool(plan.NodesUsed() - 1)
	m := New(eng, pool, Options{Immediate: true})
	if _, err := m.Deploy(plan, tenants); err == nil {
		t.Error("deployment on an undersized pool accepted")
	}
}

func TestDeployUnknownTenant(t *testing.T) {
	plan, tenants := plannedWorld(t)
	delete(tenants, plan.Groups[0].TenantIDs[0])
	eng := sim.NewEngine()
	m := New(eng, cluster.NewPool(100), Options{Immediate: true})
	if _, err := m.Deploy(plan, tenants); err == nil {
		t.Error("plan with unknown tenant accepted")
	}
}
