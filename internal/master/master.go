// Package master implements the Deployment Master (thesis §3c): it executes
// a deployment plan on the shared cluster — acquiring machine nodes,
// starting the MPPDB instances of every tenant-group, bulk loading every
// member tenant onto each of its group's A MPPDBs, and keeping unused nodes
// hibernated. The resulting Deployment bundles the per-group runtimes
// (router, activity monitor, clock domain) the run-time side operates on.
//
// Deploy supports two clock layouts (see internal/sim's domain
// documentation): shared mode builds every group on the master's engine
// behind one domain, so a single driver reproduces experiments
// bit-identically; sharded mode gives each group a private engine and
// domain, so the service path can run groups fully in parallel.
package master

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/recovery"
	"repro/internal/router"
	"repro/internal/runtime"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// Options controls plan execution.
type Options struct {
	// Immediate skips provisioning delays: instances are Ready at once.
	// Experiments that study steady-state behaviour use this; the elastic
	// scaling experiment does not.
	Immediate bool
	// ParallelLoad enables the MPPDB parallel loading option (§7.2).
	ParallelLoad bool
	// MonitorWindow is the RT-TTP window (default 24 h).
	MonitorWindow time.Duration
	// Telemetry overrides the deployment's telemetry hub. When nil, Deploy
	// creates one over the deployment's clock with the plan's P.
	Telemetry *telemetry.Hub
	// Sharded gives each tenant-group a private engine and clock domain so
	// groups can be driven concurrently (the service path). The default —
	// one shared domain over the master's engine — keeps event interleaving
	// globally ordered for bit-identical experiment replay.
	Sharded bool
	// Recovery, when non-nil, arms an autonomous failure-recovery controller
	// (§4.4) per group with this config. The service path sets it; replay
	// arms controllers itself when failures are injected.
	Recovery *recovery.Config
	// Admission, when non-nil, arms an overload-protection controller per
	// group with this config: per-tenant contract buckets, a bounded
	// admission queue, and a brownout loop watching the group's live
	// RT-TTP and recovery state. Strictly opt-in so the bare replay path
	// stays byte-identical.
	Admission *admission.Config
	// Gray, when non-nil, arms a fail-slow detector per group with this
	// config: peer-relative completion-latency outlier detection and the
	// hedge → drain response ladder. The drain rung needs a recovery
	// controller, so a nil Recovery is auto-armed with recovery.DefaultConfig.
	// Strictly opt-in, like Admission.
	Gray *recovery.GrayConfig
	// NoSpread disables domain-aware spread placement. By default a group
	// deployed on a multi-domain pool lands its instances on ≥2 failure
	// domains when capacity allows (each instance whole within one domain,
	// siblings avoiding each other's); single-domain pools are unaffected,
	// so every pre-domain replay stays byte-identical.
	NoSpread bool
	// Sharing enables shared-work execution on every instance (and tells the
	// admission controller to read effective, batch-collapsed concurrency):
	// concurrent same-class queries merge into one shared scan per
	// mppdb.SetSharing. Strictly opt-in so existing replays stay
	// byte-identical.
	Sharing bool
	// Triage, when non-nil, arms the cluster-wide scarcity triage: one
	// allocator per deployment, shared by every group's recovery controller.
	// On pool exhaustion lifecycles queue ranked by SLA-at-risk (sliding
	// RT-TTP deficit × tenant count) instead of burning backoff cycles, and
	// scarce nodes go to the worst-off group first. Needs Recovery (or Gray,
	// which auto-arms it).
	Triage *recovery.TriageConfig
}

// DefaultOptions returns the thesis' run-time settings.
func DefaultOptions() Options {
	return Options{ParallelLoad: true, MonitorWindow: 24 * time.Hour}
}

// DeployedGroup is one tenant-group brought up on the cluster.
type DeployedGroup = runtime.GroupRuntime

// Deployment is a live MPPDBaaS deployment.
type Deployment struct {
	eng    *sim.Engine // shared-mode engine; unused by groups when sharded
	pool   *cluster.Pool
	plane  *runtime.Plane
	dom    *sim.Domain // shared-mode domain; nil when sharded
	triage *recovery.Triage

	mu    sync.Mutex
	ready map[string]sim.Time
}

// Master executes deployment plans.
type Master struct {
	eng  *sim.Engine
	pool *cluster.Pool
	opts Options
}

// New creates a master over the engine and node pool.
func New(eng *sim.Engine, pool *cluster.Pool, opts Options) *Master {
	if opts.MonitorWindow <= 0 {
		opts.MonitorWindow = 24 * time.Hour
	}
	return &Master{eng: eng, pool: pool, opts: opts}
}

// Deploy brings a plan up. tenants must contain every tenant referenced by
// the plan's groups.
func (m *Master) Deploy(plan *advisor.Plan, tenants map[string]*tenant.Tenant) (*Deployment, error) {
	// Clock layout first: the telemetry hub needs its clock before any
	// instrumented subsystem is built. Shared mode keeps the hub on the
	// master's engine (the pre-sharding layout, byte-for-byte); sharded mode
	// reads the max over the per-group domain mirrors, which is lock-free
	// and therefore safe to call while any single domain is held.
	engines := make([]*sim.Engine, len(plan.Groups))
	domains := make([]*sim.Domain, len(plan.Groups))
	var shared *sim.Domain
	if m.opts.Sharded {
		for i := range plan.Groups {
			engines[i] = sim.NewEngine()
			domains[i] = sim.NewDomain(engines[i])
		}
	} else {
		shared = sim.NewDomain(m.eng)
		for i := range plan.Groups {
			engines[i] = m.eng
			domains[i] = shared
		}
	}
	tel := m.opts.Telemetry
	if tel == nil {
		if m.opts.Sharded {
			tel = telemetry.NewHub(sim.Domains(domains), plan.Config.P)
		} else {
			tel = telemetry.NewHub(m.eng, plan.Config.P)
		}
	}
	dep := &Deployment{
		eng:   m.eng,
		pool:  m.pool,
		plane: runtime.NewPlane(tel, m.opts.Sharded),
		dom:   shared,
		ready: make(map[string]sim.Time),
	}
	if m.opts.Triage != nil {
		dep.triage = recovery.NewTriage(m.pool, *m.opts.Triage)
	}
	for gi, pg := range plan.Groups {
		g, readyAt, err := m.buildGroup(engines[gi], domains[gi], tel, dep.triage, pg, plan.Config.P, tenants)
		if err != nil {
			return nil, err
		}
		dep.plane.Add(g)
		dep.ready[pg.ID] = readyAt
	}
	return dep, nil
}

// buildGroup constructs one tenant-group on the given engine and domain:
// node acquisition (spread across failure domains on a multi-domain pool),
// MPPDB instances with every member bulk-loaded, provisioning delays
// (Table 5.1 startup + load) unless Immediate, monitor, router, and the
// optional recovery and admission controllers.
func (m *Master) buildGroup(eng *sim.Engine, dom *sim.Domain, tel *telemetry.Hub, tri *recovery.Triage,
	pg advisor.PlannedGroup, p float64, tenants map[string]*tenant.Tenant) (*DeployedGroup, sim.Time, error) {
	members := make([]*tenant.Tenant, 0, len(pg.TenantIDs))
	var groupGB float64
	for _, id := range pg.TenantIDs {
		tn, ok := tenants[id]
		if !ok {
			return nil, 0, fmt.Errorf("master: plan references unknown tenant %s", id)
		}
		members = append(members, tn)
		groupGB += tn.DataGB
	}
	g := &DeployedGroup{Plan: pg, Members: members}
	// One interner per group, shared by every instance (and adopted by the
	// router and admission controller): tenant refs resolved once at the
	// front door stay valid across the whole group.
	interner := tenant.NewInterner()
	// On a multi-domain pool, spread the group's replicas: each instance
	// lands whole in one failure domain, siblings avoid the domains already
	// used, so the group survives losing any single domain when capacity
	// allows. Single-domain pools take the classic lowest-ID scan, keeping
	// pre-domain replays byte-identical.
	spread := m.pool.Domains() > 1 && !m.opts.NoSpread
	var usedDomains []int
	var readyAt sim.Time
	for i := 0; i < pg.Design.A; i++ {
		nodes, err := pg.Design.GroupNodes(i)
		if err != nil {
			return nil, 0, err
		}
		id := fmt.Sprintf("%s-db%d", pg.ID, i)
		if spread {
			_, doms, err := m.pool.AcquireSpread(id, nodes, usedDomains)
			if err != nil {
				return nil, 0, fmt.Errorf("master: group %s: %w", pg.ID, err)
			}
			usedDomains = append(usedDomains, doms...)
		} else if _, err := m.pool.Acquire(id, nodes); err != nil {
			return nil, 0, fmt.Errorf("master: group %s: %w", pg.ID, err)
		}
		inst := mppdb.NewInterned(eng, id, nodes, interner)
		if m.opts.Sharing {
			if err := inst.SetSharing(true); err != nil {
				return nil, 0, err
			}
		}
		inst.SetTelemetry(tel)
		for _, tn := range members {
			inst.DeployTenant(tn.ID, tn.DataGB)
		}
		if !m.opts.Immediate {
			inst.SetState(mppdb.Provisioning)
			delay := cluster.StartupTime(nodes) + cluster.LoadTime(groupGB, nodes, m.opts.ParallelLoad)
			at := eng.Now().Add(delay)
			if at > readyAt {
				readyAt = at
			}
			eng.After(delay, func(sim.Time) { inst.SetState(mppdb.Ready) })
		}
		g.Instances = append(g.Instances, inst)
	}
	mon, err := monitor.NewGroup(eng, pg.ID, pg.Design.A, m.opts.MonitorWindow)
	if err != nil {
		return nil, 0, err
	}
	rt, err := router.NewGroup(eng, pg.ID, g.Instances, members, mon)
	if err != nil {
		return nil, 0, err
	}
	mon.SetTelemetry(tel)
	rt.SetTelemetry(tel)
	g.Monitor = mon
	g.Router = rt
	g.Bind(dom)
	g.SetTelemetry(tel)
	rcfg := m.opts.Recovery
	if rcfg == nil && m.opts.Gray != nil {
		// The gray ladder's drain rung executes through the crash controller;
		// arming Gray without Recovery implies the default crash config.
		def := recovery.DefaultConfig()
		rcfg = &def
	}
	if rcfg != nil {
		rc, err := recovery.New(eng, m.pool, pg.ID, g.Instances, *rcfg)
		if err != nil {
			return nil, 0, err
		}
		rc.SetTelemetry(tel)
		if tri != nil {
			// SLA-at-risk priority for the scarcity triage ladder: sliding
			// RT-TTP deficit below the guarantee × the group's blast radius.
			rc.SetTriage(tri, func() (float64, int) {
				d := p - mon.RTTTP()
				if d < 0 {
					d = 0
				}
				return d, len(members)
			})
		}
		if m.pool.Domains() > 1 {
			// Lets the controller pull a fully-dead instance out of routing
			// during a domain outage and re-admit it once repaired.
			rc.SetQuarantine(rt.SetQuarantine)
		}
		if spread {
			rc.SetRespread(recovery.RespreadConfig{ParallelLoad: m.opts.ParallelLoad})
		}
		rc.Start()
		g.Recovery = rc
	}
	if m.opts.Gray != nil {
		gd, err := recovery.NewGrayDetector(eng, m.pool, pg.ID, g.Instances, rt, g.Recovery, *m.opts.Gray)
		if err != nil {
			return nil, 0, err
		}
		gd.SetTelemetry(tel)
		gd.Start()
		g.Gray = gd
	}
	if m.opts.Admission != nil {
		ac, err := admission.New(eng, pg.ID, p, pg.TenantIDs,
			g.Instances, mon, g.Recovery, *m.opts.Admission)
		if err != nil {
			return nil, 0, err
		}
		ac.SetTelemetry(tel)
		ac.AdoptInterner(interner)
		grt := g
		ac.OnLevelChange(func(level int) {
			grt.SetSheddingOnly(level >= admission.LevelShedBestEffort)
		})
		ac.OnTick(grt.CacheStats)
		ac.Start()
		g.Admission = ac
	}
	return g, readyAt, nil
}

// DeployGroup provisions one additional tenant-group into a live deployment
// — the online re-consolidation migration path. The group's MPPDBs acquire
// nodes from the pool and provision with the Table 5.1 startup + bulk-load
// delay (unless the master runs Immediate); the group joins the
// deployment's plane *unindexed*, so no tenant routes to it until the
// caller flips the tenant→group index at cutover (runtime.Plane.Index).
// Shared-mode deployments put the group on the shared engine and domain
// (the call must come from the engine's driver); sharded deployments give
// it a private engine and domain. p is the run-time guarantee for the
// optional admission controller. The returned time is when provisioning
// completes (the engine's now under Immediate).
func (m *Master) DeployGroup(dep *Deployment, pg advisor.PlannedGroup, p float64,
	tenants map[string]*tenant.Tenant) (*DeployedGroup, sim.Time, error) {
	eng, dom := m.eng, dep.dom
	if dep.Sharded() {
		eng = sim.NewEngine()
		dom = sim.NewDomain(eng)
	}
	tel := dep.plane.Hub()
	g, readyAt, err := m.buildGroup(eng, dom, tel, dep.triage, pg, p, tenants)
	if err != nil {
		return nil, 0, err
	}
	if readyAt == 0 {
		readyAt = eng.Now()
	}
	dep.plane.Attach(g)
	dep.mu.Lock()
	dep.ready[pg.ID] = readyAt
	dep.mu.Unlock()
	return g, readyAt, nil
}

// ReleaseGroup detaches a drained group from the deployment and returns its
// machine nodes to the pool. The caller must have migrated every member
// away (the group no longer appears in the tenant→group index) and allowed
// in-flight queries to finish.
func (d *Deployment) ReleaseGroup(g *DeployedGroup) int {
	d.plane.Detach(g)
	freed := 0
	for _, inst := range g.Instances {
		freed += d.pool.Release(inst.ID())
	}
	return freed
}

// Groups returns the deployed tenant-groups.
func (d *Deployment) Groups() []*DeployedGroup { return d.plane.Groups() }

// Plane returns the deployment's runtime plane (groups, tenant index, clock
// domains).
func (d *Deployment) Plane() *runtime.Plane { return d.plane }

// Sharded reports whether groups run on private clock domains.
func (d *Deployment) Sharded() bool { return d.plane.Sharded() }

// Triage returns the cluster-wide scarcity allocator (nil unless deployed
// with Options.Triage).
func (d *Deployment) Triage() *recovery.Triage { return d.triage }

// Telemetry returns the deployment's telemetry hub (never nil after Deploy).
func (d *Deployment) Telemetry() *telemetry.Hub { return d.plane.Hub() }

// GroupFor returns the group hosting the tenant.
func (d *Deployment) GroupFor(tenantID string) (*DeployedGroup, bool) {
	return d.plane.ForTenant(tenantID)
}

// ReadyAt returns when a group's provisioning completes (zero when deployed
// with Options.Immediate).
func (d *Deployment) ReadyAt(groupID string) sim.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ready[groupID]
}

// Submit routes a query for the tenant through its group's router. It is a
// single-driver path: the caller must own the group's engine (shared-mode
// replay does). Concurrent callers use the group's SubmitAt instead.
func (d *Deployment) Submit(tenantID string, class *queries.Class) (string, error) {
	return d.SubmitWithTarget(tenantID, class, 0)
}

// SubmitWithTarget routes a query with an explicit SLA target (see
// router.SubmitWithTarget). Single-driver path, like Submit.
func (d *Deployment) SubmitWithTarget(tenantID string, class *queries.Class, target sim.Time) (string, error) {
	g, ok := d.plane.ForTenant(tenantID)
	if !ok {
		return "", fmt.Errorf("master: tenant %s not deployed", tenantID)
	}
	return g.Router.SubmitWithTarget(tenantID, class, target)
}

// NodesUsed returns the number of active nodes in the pool.
func (d *Deployment) NodesUsed() int { return d.pool.CountState(cluster.Active) }

// Pool returns the deployment's node pool (the elastic scaler draws
// replacement and scale-up nodes from it).
func (d *Deployment) Pool() *cluster.Pool { return d.pool }

// Tenants returns the deployed tenant index.
func (d *Deployment) Tenants() map[string]*tenant.Tenant {
	out := make(map[string]*tenant.Tenant)
	for _, g := range d.plane.Groups() {
		for _, tn := range g.Members {
			out[tn.ID] = tn
		}
	}
	return out
}

// ScalerTargets adapts the deployment's groups for the elastic scaler.
func (d *Deployment) ScalerTargets() []*scaling.Target {
	groups := d.plane.Groups()
	out := make([]*scaling.Target, 0, len(groups))
	for _, g := range groups {
		out = append(out, &scaling.Target{Router: g.Router, Monitor: g.Monitor, Members: g.Members})
	}
	return out
}

// Records returns all completed query records across groups, in deployment
// group order.
func (d *Deployment) Records() []monitor.QueryRecord {
	var out []monitor.QueryRecord
	for _, g := range d.plane.Groups() {
		out = append(out, g.Monitor.Records()...)
	}
	return out
}
