// Package epoch represents tenant activity over time and supports the
// fuzzy-capacity arithmetic of the LIVBPwFC problem (thesis §5).
//
// A tenant's activity is the set of instants at which it has at least one
// query executing ("strong notion of inactive", §4.3). We store it as a
// normalized list of half-open intervals in virtual time. For grouping, the
// intervals are quantized onto a fixed-width epoch grid (Fig 5.1): an epoch
// counts as active if any part of it overlaps an activity interval.
//
// The packing algorithms never materialize one slot per epoch. A group's
// active-count function is kept as a list of (start, end, count) segments
// plus an active-count histogram, and candidate tenants are evaluated by a
// merge-walk that produces the transition vector up[c] — the number of epochs
// whose count would rise from c to c+1. This makes the cost of evaluating a
// candidate proportional to the number of *intervals* involved, independent
// of the epoch width, so sweeping the epoch size from 1800 s down to 0.1 s
// (Fig 7.1) does not change the planner's complexity.
package epoch

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Interval is a half-open span of virtual time [Start, End) during which a
// tenant is active.
type Interval struct {
	Start, End sim.Time
}

// Dur returns the length of the interval.
func (iv Interval) Dur() sim.Time { return iv.End - iv.Start }

// Activity is a normalized activity set: intervals are non-empty, sorted by
// start, and pairwise disjoint with positive gaps between them. Construct
// with Normalize (or from another Activity's methods) to maintain the
// invariant.
type Activity []Interval

// Normalize sorts ivs, drops empty intervals, and merges overlapping or
// touching ones. The input slice is not modified.
func Normalize(ivs []Interval) Activity {
	work := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if iv.End > iv.Start {
			work = append(work, iv)
		}
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].Start != work[j].Start {
			return work[i].Start < work[j].Start
		}
		return work[i].End < work[j].End
	})
	out := work[:0]
	for _, iv := range work {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return Activity(out)
}

// Valid reports whether a satisfies the Activity invariant. It is used by
// tests and by consistency checks after deserialization.
func (a Activity) Valid() bool {
	for i, iv := range a {
		if iv.End <= iv.Start {
			return false
		}
		if i > 0 && iv.Start <= a[i-1].End {
			return false
		}
	}
	return true
}

// Total returns the summed length of all intervals.
func (a Activity) Total() sim.Time {
	var t sim.Time
	for _, iv := range a {
		t += iv.Dur()
	}
	return t
}

// ActiveAt reports whether the activity covers instant t.
func (a Activity) ActiveAt(t sim.Time) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i].End > t })
	return i < len(a) && a[i].Start <= t
}

// Ratio returns the fraction of [0, horizon) covered by a. Intervals outside
// the horizon are clipped.
func (a Activity) Ratio(horizon sim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	var t sim.Time
	for _, iv := range a {
		s, e := iv.Start, iv.End
		if s < 0 {
			s = 0
		}
		if e > horizon {
			e = horizon
		}
		if e > s {
			t += e - s
		}
	}
	return float64(t) / float64(horizon)
}

// Shift returns a copy of a translated by d.
func (a Activity) Shift(d sim.Time) Activity {
	out := make(Activity, len(a))
	for i, iv := range a {
		out[i] = Interval{iv.Start + d, iv.End + d}
	}
	return out
}

// Clip returns the portion of a that lies within [from, to).
func (a Activity) Clip(from, to sim.Time) Activity {
	var out Activity
	for _, iv := range a {
		s, e := iv.Start, iv.End
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			out = append(out, Interval{s, e})
		}
	}
	return out
}

// Union merges a and b into a new normalized Activity.
func (a Activity) Union(b Activity) Activity {
	merged := make([]Interval, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	return Normalize(merged)
}

// Spans is a tenant's activity quantized onto an epoch grid: sorted,
// disjoint, non-adjacent half-open ranges of epoch indices.
type Spans []Span

// Span is a half-open range [S, E) of epoch indices.
type Span struct {
	S, E int32
}

// Len returns the number of epochs covered by sp.
func (sp Spans) Len() int64 {
	var n int64
	for _, s := range sp {
		n += int64(s.E - s.S)
	}
	return n
}

// Valid reports whether sp satisfies the Spans invariant (sorted, disjoint,
// gaps of at least one epoch between consecutive spans).
func (sp Spans) Valid() bool {
	for i, s := range sp {
		if s.E <= s.S {
			return false
		}
		if i > 0 && s.S <= sp[i-1].E {
			return false
		}
	}
	return true
}

// Overlaps reports whether sp and other share at least one epoch. Both must
// satisfy the Spans invariant; the merge walk is O(len(sp)+len(other)).
func (sp Spans) Overlaps(other Spans) bool {
	i, j := 0, 0
	for i < len(sp) && j < len(other) {
		if sp[i].E <= other[j].S {
			i++
		} else if other[j].E <= sp[i].S {
			j++
		} else {
			return true
		}
	}
	return false
}

// Grid describes an epoch quantization: Width is the epoch length, D the
// number of epochs covering the horizon.
type Grid struct {
	Width sim.Time
	D     int64
}

// NewGrid builds a grid of epochs of the given width covering [0, horizon).
// The horizon is rounded up to a whole number of epochs, matching the paper's
// fixed-width epoch model.
func NewGrid(width, horizon sim.Time) (Grid, error) {
	if width <= 0 {
		return Grid{}, fmt.Errorf("epoch: non-positive epoch width %v", width)
	}
	if horizon <= 0 {
		return Grid{}, fmt.Errorf("epoch: non-positive horizon %v", horizon)
	}
	d := int64((horizon + width - 1) / width)
	if d > int64(1)<<31-2 {
		return Grid{}, fmt.Errorf("epoch: %d epochs exceed the int32 index space", d)
	}
	return Grid{Width: width, D: d}, nil
}

// MustGrid is NewGrid for statically known-good parameters; it panics on
// error and is intended for tests and examples.
func MustGrid(width, horizon sim.Time) Grid {
	g, err := NewGrid(width, horizon)
	if err != nil {
		panic(err)
	}
	return g
}

// Quantize maps a onto the grid: an epoch is active when it overlaps any
// interval of a. Intervals outside [0, horizon) are clipped. Spans that
// become adjacent after rounding are merged.
func (g Grid) Quantize(a Activity) Spans {
	var out Spans
	for _, iv := range a {
		s64 := int64(iv.Start / g.Width)
		e64 := int64((iv.End + g.Width - 1) / g.Width)
		if s64 < 0 {
			s64 = 0
		}
		if e64 > g.D {
			e64 = g.D
		}
		if e64 <= s64 {
			continue
		}
		s, e := int32(s64), int32(e64)
		if n := len(out); n > 0 && s <= out[n-1].E {
			if e > out[n-1].E {
				out[n-1].E = e
			}
			continue
		}
		out = append(out, Span{s, e})
	}
	return out
}

// Dense expands sp into a []bool of length g.D. Only used by tests and small
// diagnostics; the planner never densifies.
func (g Grid) Dense(sp Spans) []bool {
	out := make([]bool, g.D)
	for _, s := range sp {
		for i := s.S; i < s.E; i++ {
			out[i] = true
		}
	}
	return out
}
