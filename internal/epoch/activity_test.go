package epoch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func iv(s, e int64) Interval { return Interval{sim.Time(s) * sim.Second, sim.Time(e) * sim.Second} }

func TestNormalize(t *testing.T) {
	cases := []struct {
		name string
		in   []Interval
		want Activity
	}{
		{"empty", nil, nil},
		{"single", []Interval{iv(1, 2)}, Activity{iv(1, 2)}},
		{"drops empty", []Interval{iv(1, 1), iv(3, 2)}, nil},
		{"merges overlap", []Interval{iv(1, 5), iv(3, 8)}, Activity{iv(1, 8)}},
		{"merges touching", []Interval{iv(1, 3), iv(3, 5)}, Activity{iv(1, 5)}},
		{"keeps gap", []Interval{iv(1, 2), iv(4, 5)}, Activity{iv(1, 2), iv(4, 5)}},
		{"sorts", []Interval{iv(6, 7), iv(1, 2)}, Activity{iv(1, 2), iv(6, 7)}},
		{"nested", []Interval{iv(1, 10), iv(2, 3), iv(4, 5)}, Activity{iv(1, 10)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Normalize(c.in)
			if len(got) != len(c.want) {
				t.Fatalf("got %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("got %v, want %v", got, c.want)
				}
			}
			if !got.Valid() {
				t.Errorf("result %v not valid", got)
			}
		})
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	in := []Interval{iv(5, 6), iv(1, 2)}
	_ = Normalize(in)
	if in[0] != iv(5, 6) || in[1] != iv(1, 2) {
		t.Errorf("input mutated: %v", in)
	}
}

// TestNormalizeProperties checks, for random interval soups, that the result
// is valid, covers the same set of instants, and is idempotent.
func TestNormalizeProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ivs := make([]Interval, int(n)%20)
		for i := range ivs {
			s := rng.Int63n(100)
			ivs[i] = iv(s, s+rng.Int63n(10))
		}
		a := Normalize(ivs)
		if !a.Valid() {
			return false
		}
		// Same coverage, probed at a sample of instants.
		for p := int64(0); p < 120; p++ {
			at := sim.Time(p)*sim.Second + sim.Second/2
			covered := false
			for _, x := range ivs {
				if x.Start <= at && at < x.End {
					covered = true
					break
				}
			}
			if a.ActiveAt(at) != covered {
				return false
			}
		}
		// Idempotent.
		b := Normalize(a)
		if len(b) != len(a) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestActivityTotalAndRatio(t *testing.T) {
	a := Activity{iv(0, 10), iv(20, 25)}
	if got := a.Total(); got != 15*sim.Second {
		t.Errorf("Total = %v, want 15s", got)
	}
	if got := a.Ratio(30 * sim.Second); got != 0.5 {
		t.Errorf("Ratio = %v, want 0.5", got)
	}
	// Clipping at the horizon.
	if got := a.Ratio(22 * sim.Second); got != 12.0/22.0 {
		t.Errorf("clipped Ratio = %v, want %v", got, 12.0/22.0)
	}
	if got := Activity(nil).Ratio(10 * sim.Second); got != 0 {
		t.Errorf("empty Ratio = %v, want 0", got)
	}
	if got := a.Ratio(0); got != 0 {
		t.Errorf("zero-horizon Ratio = %v, want 0", got)
	}
}

func TestShiftClipUnion(t *testing.T) {
	a := Activity{iv(0, 5), iv(10, 15)}
	s := a.Shift(100 * sim.Second)
	if s[0] != iv(100, 105) || s[1] != iv(110, 115) {
		t.Errorf("Shift = %v", s)
	}
	c := a.Clip(2*sim.Second, 12*sim.Second)
	if len(c) != 2 || c[0] != iv(2, 5) || c[1] != iv(10, 12) {
		t.Errorf("Clip = %v", c)
	}
	u := a.Union(Activity{iv(4, 11)})
	if len(u) != 1 || u[0] != iv(0, 15) {
		t.Errorf("Union = %v", u)
	}
}

func TestActiveAt(t *testing.T) {
	a := Activity{iv(1, 2), iv(5, 7)}
	probes := []struct {
		t    sim.Time
		want bool
	}{
		{0, false},
		{1 * sim.Second, true},
		{2*sim.Second - 1, true},
		{2 * sim.Second, false}, // half-open
		{6 * sim.Second, true},
		{100 * sim.Second, false},
	}
	for _, p := range probes {
		if got := a.ActiveAt(p.t); got != p.want {
			t.Errorf("ActiveAt(%v) = %v, want %v", p.t, got, p.want)
		}
	}
}

func TestNewGrid(t *testing.T) {
	g, err := NewGrid(10*sim.Second, 100*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g.D != 10 {
		t.Errorf("D = %d, want 10", g.D)
	}
	// Horizon rounds up.
	g, err = NewGrid(10*sim.Second, 101*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g.D != 11 {
		t.Errorf("rounded D = %d, want 11", g.D)
	}
	if _, err := NewGrid(0, sim.Second); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewGrid(sim.Second, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewGrid(1, sim.Time(1)<<40); err == nil {
		t.Error("int32 overflow accepted")
	}
}

func TestQuantize(t *testing.T) {
	g := MustGrid(10*sim.Second, 100*sim.Second)
	cases := []struct {
		name string
		a    Activity
		want Spans
	}{
		{"empty", nil, nil},
		{"aligned", Activity{iv(10, 30)}, Spans{{1, 3}}},
		{"rounds out", Activity{iv(11, 29)}, Spans{{1, 3}}},
		{"sub-epoch query lights one epoch", Activity{iv(15, 16)}, Spans{{1, 2}}},
		{"merges after rounding", Activity{iv(5, 14), iv(16, 25)}, Spans{{0, 3}}},
		{"clips to horizon", Activity{iv(95, 200)}, Spans{{9, 10}}},
		{"fully outside", Activity{iv(150, 200)}, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := g.Quantize(c.a)
			if len(got) != len(c.want) {
				t.Fatalf("got %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("got %v, want %v", got, c.want)
				}
			}
			if !got.Valid() {
				t.Errorf("result %v invalid", got)
			}
		})
	}
}

// TestQuantizeMatchesDense verifies span quantization against a per-epoch
// dense recomputation for random activities.
func TestQuantizeMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ivs []Interval
		for i := 0; i < rng.Intn(15); i++ {
			s := rng.Int63n(500)
			ivs = append(ivs, Interval{sim.Time(s), sim.Time(s + 1 + rng.Int63n(60))})
		}
		a := Normalize(ivs)
		g := MustGrid(7, 500) // deliberately non-divisible width
		sp := g.Quantize(a)
		if !sp.Valid() {
			return false
		}
		dense := g.Dense(sp)
		for e := int64(0); e < g.D; e++ {
			lo, hi := sim.Time(e*7), sim.Time((e+1)*7)
			overlap := false
			for _, x := range a {
				if x.Start < hi && x.End > lo {
					overlap = true
					break
				}
			}
			if dense[e] != overlap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPaperFig51Quantization(t *testing.T) {
	// Figure 5.1's tenant T1 is active in epochs t1..t6 of ten. With 1-epoch
	// wide grid units this is the vector <1,1,1,1,1,1,0,0,0,0>.
	g := MustGrid(sim.Second, 10*sim.Second)
	a := Activity{iv(0, 6)}
	sp := g.Quantize(a)
	if len(sp) != 1 || sp[0] != (Span{0, 6}) {
		t.Fatalf("spans = %v, want [{0 6}]", sp)
	}
	if sp.Len() != 6 {
		t.Errorf("Len = %d, want 6", sp.Len())
	}
}
