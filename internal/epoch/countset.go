package epoch

import (
	"fmt"
)

// CountSet maintains the per-epoch active-tenant count of a tenant-group as
// tenants are added, without storing one slot per epoch. It supports the two
// queries the grouping heuristic needs:
//
//   - Preview(spans): the transition vector of adding a candidate tenant,
//     from which the new active-count histogram, the new maximum, and the new
//     TTP all follow in O(max count);
//   - Add(spans): commit the candidate.
//
// Internally the count function is a sorted list of segments with count ≥ 1;
// epochs outside every segment have count 0.
type CountSet struct {
	d     int64      // total epochs in the horizon
	segs  []countSeg // disjoint, sorted, count ≥ 1, no equal-count adjacency
	hist  []int64    // hist[c] = number of epochs with count c, c ≥ 1
	n     int        // number of activities added
	spare []countSeg // retired segment buffer, reused by the next Add
}

type countSeg struct {
	s, e int32
	c    int32
}

// NewCountSet returns an empty count function over d epochs.
func NewCountSet(d int64) *CountSet {
	if d <= 0 {
		panic(fmt.Sprintf("epoch: non-positive epoch count %d", d))
	}
	return &CountSet{d: d, hist: make([]int64, 1)}
}

// D returns the number of epochs in the horizon.
func (cs *CountSet) D() int64 { return cs.d }

// Size returns the number of activities (tenants) added so far.
func (cs *CountSet) Size() int { return cs.n }

// MaxCount returns the current maximum active count over all epochs.
func (cs *CountSet) MaxCount() int { return len(cs.hist) - 1 }

// EpochsAt returns the number of epochs whose active count is exactly c.
func (cs *CountSet) EpochsAt(c int) int64 {
	if c == 0 {
		var busy int64
		for _, h := range cs.hist {
			busy += h
		}
		return cs.d - busy
	}
	if c < 0 || c >= len(cs.hist) {
		return 0
	}
	return cs.hist[c]
}

// Hist returns a copy of the histogram indexed by active count; index 0 is
// the number of fully idle epochs.
func (cs *CountSet) Hist() []int64 {
	out := make([]int64, len(cs.hist))
	copy(out, cs.hist)
	out[0] = cs.EpochsAt(0)
	return out
}

// Reset empties the count function, retaining internal buffers for reuse.
func (cs *CountSet) Reset() {
	cs.segs = cs.segs[:0]
	cs.hist = append(cs.hist[:0], 0)
	cs.n = 0
}

// OverCount returns the number of epochs with active count strictly greater
// than r.
func (cs *CountSet) OverCount(r int) int64 {
	var over int64
	for c := r + 1; c < len(cs.hist); c++ {
		over += cs.hist[c]
	}
	return over
}

// TTP returns the Total Time Percentage (thesis §5): the fraction of epochs
// whose active count is at most r, in [0, 1].
func (cs *CountSet) TTP(r int) float64 {
	return float64(cs.d-cs.OverCount(r)) / float64(cs.d)
}

// Transition describes the effect of adding one candidate's spans: Up[c] is
// the number of epochs whose count would rise from c to c+1. Σ Up[c] equals
// the candidate's active epoch count (spans clipped to the grid).
type Transition struct {
	Up []int64
}

// Top returns the highest count level the transition raises epochs from, or
// -1 when it raises none (an all-idle candidate). Top() <= 0 means the
// candidate overlaps no currently-active epoch — "zero overlap": every one of
// its active epochs lands on an idle one.
func (tr Transition) Top() int {
	for c := len(tr.Up) - 1; c >= 0; c-- {
		if tr.Up[c] > 0 {
			return c
		}
	}
	return -1
}

// NewOver returns the number of epochs that would exceed count r after the
// transition, given the set's current state.
func (cs *CountSet) NewOver(r int, tr Transition) int64 {
	over := cs.OverCount(r)
	if r < len(tr.Up) {
		over += tr.Up[r]
	}
	return over
}

// NewTTP returns the TTP at threshold r after applying tr.
func (cs *CountSet) NewTTP(r int, tr Transition) float64 {
	return float64(cs.d-cs.NewOver(r, tr)) / float64(cs.d)
}

// NewMax returns the maximum active count after applying tr.
func (cs *CountSet) NewMax(tr Transition) int {
	m := cs.MaxCount()
	for c := len(tr.Up) - 1; c >= 0; c-- {
		if tr.Up[c] > 0 {
			if c+1 > m {
				m = c + 1
			}
			break
		}
	}
	return m
}

// NewHist returns the histogram (indices ≥ 1) after applying tr.
func (cs *CountSet) NewHist(tr Transition) []int64 {
	max := cs.NewMax(tr)
	out := make([]int64, max+1)
	copy(out, cs.hist)
	for c, up := range tr.Up {
		if up == 0 {
			continue
		}
		out[c] -= up // hist[0] slot is unused for c==0; fixed below
		out[c+1] += up
	}
	if len(out) > 0 {
		out[0] = 0
	}
	// Recompute idle epochs.
	var busy int64
	for c := 1; c < len(out); c++ {
		busy += out[c]
	}
	out[0] = cs.d - busy
	return out
}

// Preview computes the transition vector of adding sp without modifying the
// set. sp must be valid (see Spans.Valid) and within [0, D).
func (cs *CountSet) Preview(sp Spans) Transition {
	tr, _, _, _ := cs.preview(sp, make([]int64, cs.MaxCount()+1), -1, 0)
	return tr
}

// PreviewInto is Preview with a caller-provided scratch buffer: the returned
// transition's Up aliases buf when buf has sufficient capacity, so a search
// loop can evaluate candidates without per-candidate heap allocations.
func (cs *CountSet) PreviewInto(sp Spans, buf []int64) Transition {
	tr, _, _, _ := cs.preview(sp, cs.prepBuf(buf), -1, 0)
	return tr
}

// PreviewBounded is PreviewInto with an early abort against an incumbent
// candidate under the T_best rule (see CompareTransitions): bestMax is the
// incumbent's resulting maximum active count and bestUp the number of epochs
// its transition raises into that maximum (its Up[bestMax-1]). Comparing
// Up[max-1] values is equivalent to comparing the resulting top-level
// histogram entries hist[max]+Up[max-1], since both candidates see the same
// live hist[max] — but unlike the absolute share it does not drift as the
// group grows, so callers can cache it across rounds.
//
// On success (ok true) tr is the exact transition and (keyMax, keyUp) is its
// key head as NewTopUp would report it. When the partial transition proves
// the candidate lexicographically worse than the incumbent at the top
// histogram levels, ok is false, tr only serves to recover the scratch
// buffer, and (keyMax, keyUp) is a lower bound on the candidate's key head —
// the partial sums at the moment the loss became certain. (Continuing the
// walk to compute the exact top-level mass would make the bound stronger and
// future skips more durable, but measured on dense workloads the extra
// traversal costs more than the walks it later saves.)
func (cs *CountSet) PreviewBounded(sp Spans, buf []int64, bestMax int, bestUp int64) (tr Transition, keyMax int, keyUp int64, ok bool) {
	return cs.preview(sp, cs.prepBuf(buf), bestMax, bestUp)
}

// prepBuf returns buf resized and zeroed for one transition, reallocating
// only when its capacity is insufficient.
func (cs *CountSet) prepBuf(buf []int64) []int64 {
	need := cs.MaxCount() + 1
	if cap(buf) < need {
		return make([]int64, need)
	}
	buf = buf[:need]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// preview is the shared merge walk. up must be zeroed with length
// MaxCount()+1; bestMax < 0 disables the abort bound.
//
// The abort test runs inside the segment loop, not once per span: nearly
// every bounded walk in a T_best scan ends in an abort, and candidate spans
// routinely cross a dozen segments, so deciding after one or two segment
// pieces instead of at the span boundary matters. Both abort triggers are
// O(1): the partial maximum exceeds the incumbent's as soon as a piece lands
// above level bestMax-1, and the top-level tie breaks as soon as the mass
// accumulated at level bestMax-1 passes bestUp (a piece at bestMax-1 implies
// the candidate's maximum reaches bestMax, so the tie comparison is the live
// one). On abort the partial top-level sums are returned as the caller's
// cacheable lower bound.
func (cs *CountSet) preview(sp Spans, up []int64, bestMax int, bestUp int64) (Transition, int, int64, bool) {
	segs := cs.segs
	// Index of the first segment that could overlap the current span.
	si := 0
	top := -1 // highest index with up[top] > 0 so far
	bounded := bestMax >= 0
	watch := int32(bestMax - 1) // level whose mass decides a top-level tie
	for _, s := range sp {
		// Advance si to the first segment ending after s.S. Manual binary
		// search — the sort.Search closure is measurable at this call rate —
		// and spans arrive in order, so the cursor only moves forward.
		if si < len(segs) && segs[si].e <= s.S {
			lo, hi := si+1, len(segs)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if segs[mid].e <= s.S {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			si = lo
		}
		cur := s.S
		k := si
		for cur < s.E {
			if k >= len(segs) || segs[k].s >= s.E {
				// Remaining range is all idle.
				up[0] += int64(s.E - cur)
				if top < 0 {
					top = 0
				}
				if bounded && watch <= 0 {
					if watch < 0 || up[0] > bestUp {
						// max(MaxCount, top+1) == 1 in both branches: bestMax
						// is 0 or 1 here and bestMax >= MaxCount always.
						return Transition{Up: up}, 1, up[0], false
					}
				}
				break
			}
			seg := segs[k]
			if seg.s > cur {
				// Idle gap before the segment.
				gapEnd := seg.s
				if gapEnd > s.E {
					gapEnd = s.E
				}
				up[0] += int64(gapEnd - cur)
				if top < 0 {
					top = 0
				}
				if bounded && watch <= 0 {
					if watch < 0 || up[0] > bestUp {
						return Transition{Up: up}, 1, up[0], false
					}
				}
				cur = gapEnd
				if cur >= s.E {
					break
				}
			}
			// Overlap with segment k.
			lo := cur
			if seg.s > lo {
				lo = seg.s
			}
			hi := s.E
			if seg.e < hi {
				hi = seg.e
			}
			if hi > lo {
				c := seg.c
				up[c] += int64(hi - lo)
				if int(c) > top {
					top = int(c)
				}
				cur = hi
				if bounded && c >= watch {
					if c > watch {
						// A piece at level > bestMax-1 pushes the candidate's
						// new maximum past bestMax — already a bound strong
						// enough to skip the candidate until the group's
						// maximum itself catches up.
						return Transition{Up: up}, int(c) + 1, up[c], false
					}
					if up[c] > bestUp {
						// A piece at bestMax-1 means the candidate's maximum
						// reaches exactly bestMax (a higher piece would have
						// aborted above), so the top-level tie is decided by
						// the mass raised into it.
						return Transition{Up: up}, int(c) + 1, up[c], false
					}
				}
			}
			if seg.e <= s.E {
				k++
			}
		}
	}
	m := cs.MaxCount()
	if top+1 > m {
		m = top + 1
	}
	var u int64
	if m >= 1 && m-1 < len(up) {
		u = up[m-1]
	}
	return Transition{Up: up}, m, u, true
}

// NewTopUp returns the maximum active count after applying tr together with
// the number of epochs tr raises into that maximum (Up[m-1]) — the head of
// the T_best comparison key in the drift-free form PreviewBounded accepts.
// Within one round, candidates all see the same live hist[m], so comparing
// (m, Up[m-1]) pairs orders them exactly like comparing (m, hist[m]+Up[m-1]);
// across rounds the pair is a monotone lower bound on the candidate's future
// key head, because counts only grow while tenants join a group: the implied
// maximum cannot shrink, and an epoch counted in Up[m-1] can only leave it by
// pushing the candidate's maximum past m.
func (cs *CountSet) NewTopUp(tr Transition) (int, int64) {
	m := cs.NewMax(tr)
	var u int64
	if m >= 1 && m-1 < len(tr.Up) {
		u = tr.Up[m-1]
	}
	return m, u
}

// newHistAt returns the post-transition histogram value at level c ≥ 1
// without materializing the histogram.
func (cs *CountSet) newHistAt(tr Transition, c int) int64 {
	var v int64
	if c < len(cs.hist) {
		v = cs.hist[c]
	}
	if c < len(tr.Up) {
		v -= tr.Up[c]
	}
	if c-1 < len(tr.Up) {
		v += tr.Up[c-1]
	}
	return v
}

// CompareTransitions applies the CompareNewHists order to the histograms the
// set would have after transitions a and b, without materializing either:
// negative when a is preferable under the T_best rule, positive when b is,
// 0 on a tie.
func (cs *CountSet) CompareTransitions(a, b Transition) int {
	maxA, maxB := cs.NewMax(a), cs.NewMax(b)
	if maxA != maxB {
		return maxA - maxB
	}
	for c := maxA; c >= 1; c-- {
		av, bv := cs.newHistAt(a, c), cs.newHistAt(b, c)
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// PatchTransition takes a transition tr that was exact for sp against the
// state the set had before the most recent Add(added), and updates it in
// place to be exact against the current state. Committing `added` raised the
// count by one exactly on its own epochs, so tr changes only on sp ∩ added:
// an epoch there at current count c used to contribute to Up[c-1] and now
// contributes to Up[c]. The walk costs O(len(sp) + len(added) + segments
// overlapping the intersection) — far less than re-previewing sp when the
// overlap is a small part of the candidate's footprint. The returned Up may
// be a grown copy of tr.Up. maxTouched is the highest level the patch moved
// mass into, or -1 when the spans were disjoint and tr is unchanged; callers
// maintaining the transition's top level incrementally take the max of the
// old top and maxTouched.
func (cs *CountSet) PatchTransition(sp, added Spans, tr Transition) (Transition, int) {
	up := tr.Up
	segs := cs.segs
	maxTouched := -1
	i, j, k := 0, 0, 0
	for i < len(sp) && j < len(added) {
		if sp[i].E <= added[j].S {
			i++
			continue
		}
		if added[j].E <= sp[i].S {
			j++
			continue
		}
		// Intersection piece [lo, hi).
		lo, hi := sp[i].S, sp[i].E
		if added[j].S > lo {
			lo = added[j].S
		}
		if added[j].E < hi {
			hi = added[j].E
		}
		// Every epoch of `added` is covered by the current segment list
		// (its counts are ≥ 1 after the Add), so walk the segments across
		// the piece. Pieces arrive in ascending order: the cursor k only
		// moves forward, with a binary-search skip over far gaps.
		if k < len(segs) && segs[k].e <= lo {
			a, b := k+1, len(segs)
			for a < b {
				mid := int(uint(a+b) >> 1)
				if segs[mid].e <= lo {
					a = mid + 1
				} else {
					b = mid
				}
			}
			k = a
		}
		for cur := lo; cur < hi; {
			seg := segs[k] // cannot run out: segments cover all of `added`
			pe := seg.e
			if pe > hi {
				pe = hi
			}
			n := int64(pe - cur)
			c := int(seg.c)
			for c >= len(up) {
				if cap(up) > len(up) {
					up = up[:len(up)+1]
					up[len(up)-1] = 0
				} else {
					up = append(up, 0)
				}
			}
			up[c-1] -= n
			up[c] += n
			if c > maxTouched {
				maxTouched = c
			}
			cur = pe
			if seg.e <= hi {
				k++
			}
		}
		// Advance whichever list's span is exhausted first.
		if sp[i].E <= added[j].E {
			i++
		} else {
			j++
		}
	}
	return Transition{Up: up}, maxTouched
}

// Add commits sp into the count function. sp must be valid and within
// [0, D). The histogram is maintained incrementally during the same merge
// walk — only the epochs whose count actually rises are touched — and the
// retired segment list is kept as a spare buffer for the next Add, so
// committing a tenant allocates only when the segment list outgrows both
// buffers.
func (cs *CountSet) Add(sp Spans) {
	cs.n++
	if len(sp) == 0 {
		return
	}
	segs := cs.segs
	newSegs := cs.spare[:0]
	if need := len(segs) + 2*len(sp); cap(newSegs) < need {
		newSegs = make([]countSeg, 0, need)
	}
	si := 0
	emit := func(s, e, c int32) {
		if e <= s || c == 0 {
			return
		}
		if n := len(newSegs); n > 0 && newSegs[n-1].e == s && newSegs[n-1].c == c {
			newSegs[n-1].e = e
			return
		}
		newSegs = append(newSegs, countSeg{s, e, c})
	}
	// bump records n epochs rising from count c to c+1 in the histogram.
	bump := func(c int32, n int64) {
		if c > 0 {
			cs.hist[c] -= n
		}
		for int(c)+1 >= len(cs.hist) {
			cs.hist = append(cs.hist, 0)
		}
		cs.hist[c+1] += n
	}
	for _, s := range sp {
		// Copy segments that end before this span starts.
		for si < len(segs) && segs[si].e <= s.S {
			seg := segs[si]
			emit(seg.s, seg.e, seg.c)
			si++
		}
		// A segment may straddle the span start: split it.
		if si < len(segs) && segs[si].s < s.S {
			emit(segs[si].s, s.S, segs[si].c)
			segs[si].s = s.S // consume the head; remainder handled below
		}
		cur := s.S
		for cur < s.E {
			if si >= len(segs) || segs[si].s >= s.E {
				emit(cur, s.E, 1)
				bump(0, int64(s.E-cur))
				cur = s.E
				break
			}
			seg := segs[si]
			if seg.s > cur {
				emit(cur, seg.s, 1)
				bump(0, int64(seg.s-cur))
				cur = seg.s
			}
			hi := s.E
			if seg.e < hi {
				hi = seg.e
			}
			emit(cur, hi, seg.c+1)
			bump(seg.c, int64(hi-cur))
			cur = hi
			if seg.e <= s.E {
				si++
			} else {
				segs[si].s = s.E // tail of the straddling segment
			}
		}
	}
	// Copy the remaining untouched segments.
	for si < len(segs) {
		seg := segs[si]
		emit(seg.s, seg.e, seg.c)
		si++
	}
	cs.spare = cs.segs[:0] // retire the old list as the next Add's buffer
	cs.segs = newSegs
}

// Remove is the inverse of Add: it commits the departure of a previously
// added activity, decrementing the count on sp's epochs. Every epoch of sp
// must currently have count ≥ 1 — callers remove exactly the spans they
// added (the online control loop removes a tenant's running profile, the
// union of its planned spans and every streamed delta). The merge walk
// mirrors Add's: segments are rewritten in one pass, the histogram is
// maintained on exactly the epochs whose count falls, and the retired
// segment list is kept as the spare buffer for the next commit.
func (cs *CountSet) Remove(sp Spans) {
	cs.n--
	if len(sp) == 0 {
		return
	}
	segs := cs.segs
	newSegs := cs.spare[:0]
	if need := len(segs) + 2*len(sp); cap(newSegs) < need {
		newSegs = make([]countSeg, 0, need)
	}
	si := 0
	emit := func(s, e, c int32) {
		if e <= s || c == 0 {
			return
		}
		if n := len(newSegs); n > 0 && newSegs[n-1].e == s && newSegs[n-1].c == c {
			newSegs[n-1].e = e
			return
		}
		newSegs = append(newSegs, countSeg{s, e, c})
	}
	// drop records n epochs falling from count c to c-1 in the histogram.
	drop := func(c int32, n int64) {
		cs.hist[c] -= n
		if c > 1 {
			cs.hist[c-1] += n
		}
	}
	for _, s := range sp {
		// Copy segments that end before this span starts.
		for si < len(segs) && segs[si].e <= s.S {
			seg := segs[si]
			emit(seg.s, seg.e, seg.c)
			si++
		}
		// A segment may straddle the span start: split it.
		if si < len(segs) && segs[si].s < s.S {
			emit(segs[si].s, s.S, segs[si].c)
			segs[si].s = s.S // consume the head; remainder handled below
		}
		cur := s.S
		for cur < s.E {
			if si >= len(segs) || segs[si].s > cur {
				panic(fmt.Sprintf("epoch: Remove of epochs at count 0 (at epoch %d)", cur))
			}
			seg := segs[si]
			hi := s.E
			if seg.e < hi {
				hi = seg.e
			}
			emit(cur, hi, seg.c-1)
			drop(seg.c, int64(hi-cur))
			cur = hi
			if seg.e <= s.E {
				si++
			} else {
				segs[si].s = s.E // tail of the straddling segment
			}
		}
	}
	// Copy the remaining untouched segments.
	for si < len(segs) {
		seg := segs[si]
		emit(seg.s, seg.e, seg.c)
		si++
	}
	cs.spare = cs.segs[:0]
	cs.segs = newSegs
	// Shrink the histogram to the new maximum count.
	top := len(cs.hist) - 1
	for top > 0 && cs.hist[top] == 0 {
		top--
	}
	cs.hist = cs.hist[:top+1]
}

// NewHistAt returns the post-transition histogram value at level c ≥ 1
// without materializing the histogram. The online placer uses it to compare
// candidate target groups: each group reports its own resulting top-level
// share (hist[newMax] after the move), so unlike the drift-free Up[m-1] form
// the values are comparable across different CountSets.
func (cs *CountSet) NewHistAt(tr Transition, c int) int64 { return cs.newHistAt(tr, c) }

// clone returns a deep copy; used by the grouping search when it needs to
// explore tentative additions.
func (cs *CountSet) clone() *CountSet {
	out := &CountSet{d: cs.d, n: cs.n}
	out.segs = append([]countSeg(nil), cs.segs...)
	out.hist = append([]int64(nil), cs.hist...)
	return out
}

// Clone returns a deep copy of the count set.
func (cs *CountSet) Clone() *CountSet { return cs.clone() }

// Counts expands the count function into a dense []int32 of length D. For
// tests and diagnostics only.
func (cs *CountSet) Counts() []int32 {
	out := make([]int32, cs.d)
	for _, seg := range cs.segs {
		for i := seg.s; i < seg.e; i++ {
			out[i] = seg.c
		}
	}
	return out
}

// CompareNewHists orders two candidate outcomes by the paper's T_best rule
// (§5, Fig 5.3): prefer the candidate whose resulting histogram, read from
// the highest active count downward, is lexicographically smaller — i.e.
// first minimize the new maximum number of active tenants, then the time
// share at that maximum, then at the next level down, and so on. Returns a
// negative number when a is preferable, positive when b is, 0 on a tie.
func CompareNewHists(a, b []int64) int {
	maxA, maxB := len(a)-1, len(b)-1
	for maxA > 0 && a[maxA] == 0 {
		maxA--
	}
	for maxB > 0 && b[maxB] == 0 {
		maxB--
	}
	if maxA != maxB {
		return maxA - maxB
	}
	for c := maxA; c >= 1; c-- {
		av, bv := int64(0), int64(0)
		if c < len(a) {
			av = a[c]
		}
		if c < len(b) {
			bv = b[c]
		}
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// OverShare returns the effective number of violating epochs at threshold r
// when an epoch at raw count r+1+i is credited with weight w[i] ∈ [0,1]:
// shared-work execution absorbs that fraction of the epoch's violation, so
// only (1−w[i]) of it counts against the budget (fractional epochs are
// fine — TTP is a ratio). Counts beyond r+len(w) get no credit; a nil or
// empty w degenerates to OverCount.
func (cs *CountSet) OverShare(r int, w []float64) float64 {
	var over float64
	for c := r + 1; c < len(cs.hist); c++ {
		h := float64(cs.hist[c])
		if i := c - r - 1; i >= 0 && i < len(w) {
			h *= 1 - w[i]
		}
		over += h
	}
	return over
}

// TTPShare is TTP under the sharing credit weights (see OverShare).
func (cs *CountSet) TTPShare(r int, w []float64) float64 {
	if len(w) == 0 {
		return cs.TTP(r)
	}
	return (float64(cs.d) - cs.OverShare(r, w)) / float64(cs.d)
}

// NewTTPShare is NewTTP under the sharing credit weights: the TTPShare the
// set would have after applying tr. O(new maximum count) per call — the
// capacity checks sit outside the solvers' candidate-scan hot loop.
func (cs *CountSet) NewTTPShare(r int, w []float64, tr Transition) float64 {
	if len(w) == 0 {
		return cs.NewTTP(r, tr)
	}
	max := cs.NewMax(tr)
	var over float64
	for c := r + 1; c <= max; c++ {
		h := float64(cs.newHistAt(tr, c))
		if i := c - r - 1; i >= 0 && i < len(w) {
			h *= 1 - w[i]
		}
		over += h
	}
	return (float64(cs.d) - over) / float64(cs.d)
}
