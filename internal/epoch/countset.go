package epoch

import (
	"fmt"
	"sort"
)

// CountSet maintains the per-epoch active-tenant count of a tenant-group as
// tenants are added, without storing one slot per epoch. It supports the two
// queries the grouping heuristic needs:
//
//   - Preview(spans): the transition vector of adding a candidate tenant,
//     from which the new active-count histogram, the new maximum, and the new
//     TTP all follow in O(max count);
//   - Add(spans): commit the candidate.
//
// Internally the count function is a sorted list of segments with count ≥ 1;
// epochs outside every segment have count 0.
type CountSet struct {
	d    int64      // total epochs in the horizon
	segs []countSeg // disjoint, sorted, count ≥ 1, no equal-count adjacency
	hist []int64    // hist[c] = number of epochs with count c, c ≥ 1
	n    int        // number of activities added
}

type countSeg struct {
	s, e int32
	c    int32
}

// NewCountSet returns an empty count function over d epochs.
func NewCountSet(d int64) *CountSet {
	if d <= 0 {
		panic(fmt.Sprintf("epoch: non-positive epoch count %d", d))
	}
	return &CountSet{d: d, hist: make([]int64, 1)}
}

// D returns the number of epochs in the horizon.
func (cs *CountSet) D() int64 { return cs.d }

// Size returns the number of activities (tenants) added so far.
func (cs *CountSet) Size() int { return cs.n }

// MaxCount returns the current maximum active count over all epochs.
func (cs *CountSet) MaxCount() int { return len(cs.hist) - 1 }

// EpochsAt returns the number of epochs whose active count is exactly c.
func (cs *CountSet) EpochsAt(c int) int64 {
	if c == 0 {
		var busy int64
		for _, h := range cs.hist {
			busy += h
		}
		return cs.d - busy
	}
	if c < 0 || c >= len(cs.hist) {
		return 0
	}
	return cs.hist[c]
}

// Hist returns a copy of the histogram indexed by active count; index 0 is
// the number of fully idle epochs.
func (cs *CountSet) Hist() []int64 {
	out := make([]int64, len(cs.hist))
	copy(out, cs.hist)
	if len(out) == 0 {
		out = []int64{0}
	}
	out[0] = cs.EpochsAt(0)
	return out
}

// OverCount returns the number of epochs with active count strictly greater
// than r.
func (cs *CountSet) OverCount(r int) int64 {
	var over int64
	for c := r + 1; c < len(cs.hist); c++ {
		over += cs.hist[c]
	}
	return over
}

// TTP returns the Total Time Percentage (thesis §5): the fraction of epochs
// whose active count is at most r, in [0, 1].
func (cs *CountSet) TTP(r int) float64 {
	return float64(cs.d-cs.OverCount(r)) / float64(cs.d)
}

// Transition describes the effect of adding one candidate's spans: Up[c] is
// the number of epochs whose count would rise from c to c+1. Σ Up[c] equals
// the candidate's active epoch count (spans clipped to the grid).
type Transition struct {
	Up []int64
}

// NewOver returns the number of epochs that would exceed count r after the
// transition, given the set's current state.
func (cs *CountSet) NewOver(r int, tr Transition) int64 {
	over := cs.OverCount(r)
	if r < len(tr.Up) {
		over += tr.Up[r]
	}
	return over
}

// NewTTP returns the TTP at threshold r after applying tr.
func (cs *CountSet) NewTTP(r int, tr Transition) float64 {
	return float64(cs.d-cs.NewOver(r, tr)) / float64(cs.d)
}

// NewMax returns the maximum active count after applying tr.
func (cs *CountSet) NewMax(tr Transition) int {
	m := cs.MaxCount()
	for c := len(tr.Up) - 1; c >= 0; c-- {
		if tr.Up[c] > 0 {
			if c+1 > m {
				m = c + 1
			}
			break
		}
	}
	return m
}

// NewHist returns the histogram (indices ≥ 1) after applying tr.
func (cs *CountSet) NewHist(tr Transition) []int64 {
	max := cs.NewMax(tr)
	out := make([]int64, max+1)
	copy(out, cs.hist)
	for c, up := range tr.Up {
		if up == 0 {
			continue
		}
		out[c] -= up // hist[0] slot is unused for c==0; fixed below
		out[c+1] += up
	}
	if len(out) > 0 {
		out[0] = 0
	}
	// Recompute idle epochs.
	var busy int64
	for c := 1; c < len(out); c++ {
		busy += out[c]
	}
	out[0] = cs.d - busy
	return out
}

// Preview computes the transition vector of adding sp without modifying the
// set. sp must be valid (see Spans.Valid) and within [0, D).
func (cs *CountSet) Preview(sp Spans) Transition {
	up := make([]int64, cs.MaxCount()+1)
	segs := cs.segs
	// Index of the first segment that could overlap the current span.
	si := 0
	for _, s := range sp {
		// Advance si to the first segment ending after s.S. Binary search
		// when far away, linear otherwise: spans arrive in order, so the
		// cursor only moves forward.
		if si < len(segs) && segs[si].e <= s.S {
			j := sort.Search(len(segs)-si, func(k int) bool { return segs[si+k].e > s.S })
			si = si + j
		}
		cur := s.S
		k := si
		for cur < s.E {
			if k >= len(segs) || segs[k].s >= s.E {
				// Remaining range is all idle.
				up[0] += int64(s.E - cur)
				break
			}
			seg := segs[k]
			if seg.s > cur {
				// Idle gap before the segment.
				gapEnd := seg.s
				if gapEnd > s.E {
					gapEnd = s.E
				}
				up[0] += int64(gapEnd - cur)
				cur = gapEnd
				if cur >= s.E {
					break
				}
			}
			// Overlap with segment k.
			lo := cur
			if seg.s > lo {
				lo = seg.s
			}
			hi := s.E
			if seg.e < hi {
				hi = seg.e
			}
			if hi > lo {
				up[seg.c] += int64(hi - lo)
				cur = hi
			}
			if seg.e <= s.E {
				k++
			}
		}
	}
	return Transition{Up: up}
}

// Add commits sp into the count function. sp must be valid and within
// [0, D).
func (cs *CountSet) Add(sp Spans) {
	if len(sp) == 0 {
		cs.n++
		return
	}
	newSegs := make([]countSeg, 0, len(cs.segs)+2*len(sp))
	segs := cs.segs
	si := 0
	emit := func(s, e, c int32) {
		if e <= s || c == 0 {
			return
		}
		if n := len(newSegs); n > 0 && newSegs[n-1].e == s && newSegs[n-1].c == c {
			newSegs[n-1].e = e
			return
		}
		newSegs = append(newSegs, countSeg{s, e, c})
	}
	for _, s := range sp {
		// Copy segments that end before this span starts.
		for si < len(segs) && segs[si].e <= s.S {
			seg := segs[si]
			emit(seg.s, seg.e, seg.c)
			si++
		}
		// A segment may straddle the span start: split it.
		if si < len(segs) && segs[si].s < s.S {
			emit(segs[si].s, s.S, segs[si].c)
			segs[si].s = s.S // consume the head; remainder handled below
		}
		cur := s.S
		for cur < s.E {
			if si >= len(segs) || segs[si].s >= s.E {
				emit(cur, s.E, 1)
				cur = s.E
				break
			}
			seg := segs[si]
			if seg.s > cur {
				emit(cur, seg.s, 1)
				cur = seg.s
			}
			hi := s.E
			if seg.e < hi {
				hi = seg.e
			}
			emit(cur, hi, seg.c+1)
			cur = hi
			if seg.e <= s.E {
				si++
			} else {
				segs[si].s = s.E // tail of the straddling segment
			}
		}
		// Update the histogram incrementally using the same walk? Done below
		// via transition for clarity.
	}
	// Copy the remaining untouched segments.
	for si < len(segs) {
		seg := segs[si]
		emit(seg.s, seg.e, seg.c)
		si++
	}
	// Update histogram from the transition (computed before mutation order
	// matters: Preview only reads cs.segs, which we have not replaced yet —
	// but we mutated segs[si].s in place above, so recompute from newSegs).
	hist := make([]int64, 1)
	for _, seg := range newSegs {
		for int(seg.c) >= len(hist) {
			hist = append(hist, 0)
		}
		hist[seg.c] += int64(seg.e - seg.s)
	}
	cs.segs = newSegs
	cs.hist = hist
	cs.n++
}

// clone returns a deep copy; used by the grouping search when it needs to
// explore tentative additions.
func (cs *CountSet) clone() *CountSet {
	out := &CountSet{d: cs.d, n: cs.n}
	out.segs = append([]countSeg(nil), cs.segs...)
	out.hist = append([]int64(nil), cs.hist...)
	return out
}

// Clone returns a deep copy of the count set.
func (cs *CountSet) Clone() *CountSet { return cs.clone() }

// Counts expands the count function into a dense []int32 of length D. For
// tests and diagnostics only.
func (cs *CountSet) Counts() []int32 {
	out := make([]int32, cs.d)
	for _, seg := range cs.segs {
		for i := seg.s; i < seg.e; i++ {
			out[i] = seg.c
		}
	}
	return out
}

// CompareNewHists orders two candidate outcomes by the paper's T_best rule
// (§5, Fig 5.3): prefer the candidate whose resulting histogram, read from
// the highest active count downward, is lexicographically smaller — i.e.
// first minimize the new maximum number of active tenants, then the time
// share at that maximum, then at the next level down, and so on. Returns a
// negative number when a is preferable, positive when b is, 0 on a tie.
func CompareNewHists(a, b []int64) int {
	maxA, maxB := len(a)-1, len(b)-1
	for maxA > 0 && a[maxA] == 0 {
		maxA--
	}
	for maxB > 0 && b[maxB] == 0 {
		maxB--
	}
	if maxA != maxB {
		return maxA - maxB
	}
	for c := maxA; c >= 1; c-- {
		av, bv := int64(0), int64(0)
		if c < len(a) {
			av = a[c]
		}
		if c < len(b) {
			bv = b[c]
		}
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}
