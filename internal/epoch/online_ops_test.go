package epoch

import (
	"math/rand"
	"testing"
)

// randSpans draws a valid Spans over [0, d) with roughly n spans.
func randSpans(rng *rand.Rand, d int64, n int) Spans {
	var out Spans
	cur := int32(rng.Intn(3))
	for i := 0; i < n && int64(cur) < d-1; i++ {
		s := cur + int32(rng.Intn(4))
		e := s + 1 + int32(rng.Intn(6))
		if int64(e) > d {
			e = int32(d)
		}
		if e <= s {
			break
		}
		out = append(out, Span{s, e})
		cur = e + 1 + int32(rng.Intn(5))
	}
	return out
}

func denseOf(sp Spans, d int64) []bool {
	out := make([]bool, d)
	for _, s := range sp {
		for i := s.S; i < s.E; i++ {
			out[i] = true
		}
	}
	return out
}

func spansEqualDense(t *testing.T, got Spans, want []bool) {
	t.Helper()
	if !got.Valid() {
		t.Fatalf("invalid spans %v", got)
	}
	gd := denseOf(got, int64(len(want)))
	for i := range want {
		if gd[i] != want[i] {
			t.Fatalf("epoch %d: got %v want %v (spans %v)", i, gd[i], want[i], got)
		}
	}
}

func TestSpansUnionDiffRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const d = 200
	for iter := 0; iter < 500; iter++ {
		a := randSpans(rng, d, 12)
		b := randSpans(rng, d, 12)
		da, db := denseOf(a, d), denseOf(b, d)
		wantU := make([]bool, d)
		wantD := make([]bool, d)
		for i := 0; i < d; i++ {
			wantU[i] = da[i] || db[i]
			wantD[i] = da[i] && !db[i]
		}
		spansEqualDense(t, a.Union(b), wantU)
		spansEqualDense(t, b.Union(a), wantU)
		spansEqualDense(t, a.Diff(b), wantD)
	}
}

func TestSpansUnionDiffEdges(t *testing.T) {
	a := Spans{{0, 5}, {10, 15}}
	if got := a.Union(nil); got.Len() != a.Len() {
		t.Fatalf("union with empty: %v", got)
	}
	if got := Spans(nil).Union(a); got.Len() != a.Len() {
		t.Fatalf("empty union: %v", got)
	}
	if got := a.Diff(a); len(got) != 0 {
		t.Fatalf("self diff: %v", got)
	}
	// Adjacent spans merge.
	got := Spans{{0, 5}}.Union(Spans{{5, 9}})
	if len(got) != 1 || got[0] != (Span{0, 9}) {
		t.Fatalf("adjacent union: %v", got)
	}
	// Diff splitting one span into two.
	got = Spans{{0, 10}}.Diff(Spans{{3, 6}})
	if len(got) != 2 || got[0] != (Span{0, 3}) || got[1] != (Span{6, 10}) {
		t.Fatalf("split diff: %v", got)
	}
}

// TestCountSetRemoveRandom checks that Remove is the exact inverse of Add:
// after a random interleaving of adds and removes, the segment list,
// histogram, and TTP all match a dense recomputation from the surviving
// activities.
func TestCountSetRemoveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const d = 150
	for iter := 0; iter < 200; iter++ {
		cs := NewCountSet(d)
		live := make(map[int]Spans)
		next := 0
		steps := 30 + rng.Intn(40)
		for s := 0; s < steps; s++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				// Remove a random live activity.
				ks := make([]int, 0, len(live))
				for k := range live {
					ks = append(ks, k)
				}
				k := ks[rng.Intn(len(ks))]
				cs.Remove(live[k])
				delete(live, k)
			} else {
				sp := randSpans(rng, d, 8)
				cs.Add(sp)
				live[next] = sp
				next++
			}
			// Dense reference.
			counts := make([]int32, d)
			for _, sp := range live {
				for _, s := range sp {
					for i := s.S; i < s.E; i++ {
						counts[i]++
					}
				}
			}
			got := cs.Counts()
			for i := int64(0); i < d; i++ {
				if got[i] != counts[i] {
					t.Fatalf("iter %d step %d: count[%d]=%d want %d", iter, s, i, got[i], counts[i])
				}
			}
			// Histogram reference.
			wantHist := make(map[int32]int64)
			maxC := int32(0)
			for _, c := range counts {
				if c > 0 {
					wantHist[c]++
				}
				if c > maxC {
					maxC = c
				}
			}
			if cs.MaxCount() != int(maxC) {
				t.Fatalf("iter %d step %d: MaxCount=%d want %d", iter, s, cs.MaxCount(), maxC)
			}
			for c := int32(1); c <= maxC; c++ {
				if cs.EpochsAt(int(c)) != wantHist[c] {
					t.Fatalf("iter %d step %d: hist[%d]=%d want %d",
						iter, s, c, cs.EpochsAt(int(c)), wantHist[c])
				}
			}
		}
	}
}

// TestCountSetRemoveSpareReuse checks the add/remove cycle keeps reusing the
// retired segment buffers (the steady-state allocation discipline the online
// loop depends on).
func TestCountSetRemoveSpareReuse(t *testing.T) {
	cs := NewCountSet(1000)
	base := Spans{{0, 100}, {200, 300}, {500, 600}}
	cs.Add(base)
	churn := Spans{{50, 150}, {250, 400}}
	cs.Add(churn)
	allocs := testing.AllocsPerRun(200, func() {
		cs.Remove(churn)
		cs.Add(churn)
	})
	if allocs > 0.5 {
		t.Fatalf("add/remove cycle allocates %.1f per op", allocs)
	}
}

func TestNewHistAtExported(t *testing.T) {
	cs := NewCountSet(100)
	cs.Add(Spans{{0, 10}})
	cs.Add(Spans{{5, 15}})
	tr := cs.Preview(Spans{{8, 12}})
	max := cs.NewMax(tr)
	hist := cs.NewHist(tr)
	if got := cs.NewHistAt(tr, max); got != hist[max] {
		t.Fatalf("NewHistAt(%d)=%d want %d", max, got, hist[max])
	}
	for c := 1; c <= max; c++ {
		if got := cs.NewHistAt(tr, c); got != hist[c] {
			t.Fatalf("NewHistAt(%d)=%d want %d", c, got, hist[c])
		}
	}
}

func TestCountSetRemovePanicsOnUncovered(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic removing uncovered epochs")
		}
	}()
	cs := NewCountSet(100)
	cs.Add(Spans{{0, 10}})
	cs.Remove(Spans{{5, 20}})
}
