package epoch

import (
	"math"
	"testing"
)

// addSpans commits one activity covering [s, e).
func addSpans(cs *CountSet, s, e int32) {
	cs.Add(Spans{{S: s, E: e}})
}

func TestTTPShareDegenerate(t *testing.T) {
	cs := NewCountSet(100)
	addSpans(cs, 0, 50)
	addSpans(cs, 10, 60)
	addSpans(cs, 20, 70)
	for r := 0; r <= 3; r++ {
		if got, want := cs.TTPShare(r, nil), cs.TTP(r); got != want {
			t.Fatalf("r=%d: nil weights TTPShare %v != TTP %v", r, got, want)
		}
		if got, want := cs.TTPShare(r, []float64{0, 0, 0}), cs.TTP(r); got != want {
			t.Fatalf("r=%d: zero weights TTPShare %v != TTP %v", r, got, want)
		}
	}
}

func TestTTPShareCredit(t *testing.T) {
	cs := NewCountSet(100)
	// Counts: [0,10) ×3 tenants? Build: three spans stacked over [0,10),
	// two over [10,30), one over [30,60).
	addSpans(cs, 0, 60)
	addSpans(cs, 0, 30)
	addSpans(cs, 0, 10)
	// hist: count3=10, count2=20, count1=30, idle=40.
	r := 1
	// Unweighted: 30 epochs over r → TTP = 0.70.
	if got := cs.TTP(r); got != 0.70 {
		t.Fatalf("TTP=%v", got)
	}
	// Credit 50% at r+1 (count 2), 20% at r+2 (count 3):
	// over = 20·0.5 + 10·0.8 = 18 → TTPShare = 0.82.
	got := cs.TTPShare(r, []float64{0.5, 0.2})
	if math.Abs(got-0.82) > 1e-12 {
		t.Fatalf("TTPShare=%v want 0.82", got)
	}
	// Counts past the weight vector get no credit: weights only at r+1.
	got = cs.TTPShare(r, []float64{0.5})
	if math.Abs(got-0.80) > 1e-12 {
		t.Fatalf("short-weights TTPShare=%v want 0.80", got)
	}
}

func TestNewTTPShareMatchesCommit(t *testing.T) {
	w := []float64{0.4, 0.15, 0.05}
	cs := NewCountSet(200)
	addSpans(cs, 0, 120)
	addSpans(cs, 40, 160)
	addSpans(cs, 80, 200)
	cand := Spans{{S: 30, E: 90}, {S: 150, E: 190}}
	for r := 0; r <= 3; r++ {
		tr := cs.Preview(cand)
		pred := cs.NewTTPShare(r, w, tr)
		clone := cs.Clone()
		clone.Add(cand)
		if got := clone.TTPShare(r, w); math.Abs(got-pred) > 1e-12 {
			t.Fatalf("r=%d: predicted %v committed %v", r, pred, got)
		}
		// And the nil-weight path stays NewTTP exactly.
		if got, want := cs.NewTTPShare(r, nil, tr), cs.NewTTP(r, tr); got != want {
			t.Fatalf("r=%d: nil weights NewTTPShare %v != NewTTP %v", r, got, want)
		}
	}
}
