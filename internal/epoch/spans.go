package epoch

// Span-set algebra for the online re-consolidation path. The offline planner
// only ever quantizes a full activity log once; the online control loop
// instead maintains each tenant's epoch profile incrementally — observed
// activity arrives as the monitor closes query intervals, and the loop needs
// the *new* epochs (Diff) to stream into the group's live CountSet and the
// running profile (Union) to remove on departure. Both are merge walks over
// the sorted span lists, O(len(sp)+len(other)), independent of epoch width —
// the same property the planner's interval representation guarantees.

// Union returns the epochs covered by sp, other, or both, as a fresh
// normalized Spans (adjacent ranges are merged). Both inputs must satisfy
// the Spans invariant.
func (sp Spans) Union(other Spans) Spans {
	if len(other) == 0 {
		return append(Spans(nil), sp...)
	}
	if len(sp) == 0 {
		return append(Spans(nil), other...)
	}
	out := make(Spans, 0, len(sp)+len(other))
	i, j := 0, 0
	for i < len(sp) || j < len(other) {
		var s Span
		if j >= len(other) || (i < len(sp) && sp[i].S <= other[j].S) {
			s = sp[i]
			i++
		} else {
			s = other[j]
			j++
		}
		if n := len(out); n > 0 && s.S <= out[n-1].E {
			if s.E > out[n-1].E {
				out[n-1].E = s.E
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// Diff returns the epochs covered by sp but not by other, as a fresh
// normalized Spans. Both inputs must satisfy the Spans invariant.
func (sp Spans) Diff(other Spans) Spans {
	if len(sp) == 0 {
		return nil
	}
	if len(other) == 0 {
		return append(Spans(nil), sp...)
	}
	var out Spans
	j := 0
	for _, s := range sp {
		cur := s.S
		for cur < s.E {
			for j < len(other) && other[j].E <= cur {
				j++
			}
			if j >= len(other) || other[j].S >= s.E {
				out = append(out, Span{cur, s.E})
				break
			}
			if o := other[j]; o.S > cur {
				out = append(out, Span{cur, o.S})
				cur = o.E
			} else {
				cur = o.E
			}
		}
	}
	return out
}
