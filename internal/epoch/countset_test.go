package epoch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// denseCounts is the reference implementation: one int per epoch.
type denseCounts struct {
	counts []int64
}

func newDense(d int64) *denseCounts { return &denseCounts{counts: make([]int64, d)} }

func (dc *denseCounts) add(sp Spans) {
	for _, s := range sp {
		for i := s.S; i < s.E; i++ {
			dc.counts[i]++
		}
	}
}

func (dc *denseCounts) hist() []int64 {
	max := int64(0)
	for _, c := range dc.counts {
		if c > max {
			max = c
		}
	}
	h := make([]int64, max+1)
	for _, c := range dc.counts {
		h[c]++
	}
	return h
}

func (dc *denseCounts) up(sp Spans) []int64 {
	max := int64(0)
	for _, c := range dc.counts {
		if c > max {
			max = c
		}
	}
	u := make([]int64, max+1)
	for _, s := range sp {
		for i := s.S; i < s.E; i++ {
			u[dc.counts[i]]++
		}
	}
	return u
}

func randomSpans(rng *rand.Rand, d int64) Spans {
	var sp Spans
	pos := int32(0)
	for pos < int32(d) {
		gap := int32(rng.Intn(int(d)/3 + 1))
		s := pos + gap + 1
		if s >= int32(d) {
			break
		}
		e := s + 1 + int32(rng.Intn(int(d)/4+1))
		if e > int32(d) {
			e = int32(d)
		}
		sp = append(sp, Span{s, e})
		pos = e
	}
	return sp
}

func spansEqualInt64(a, b []int64) bool {
	// Compare ignoring trailing zeros.
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	get := func(x []int64, i int) int64 {
		if i < len(x) {
			return x[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		if get(a, i) != get(b, i) {
			return false
		}
	}
	return true
}

// TestCountSetMatchesDense is the central property test: over random
// sequences of span additions, CountSet's histogram, max count, TTP, dense
// expansion, and Preview transitions all agree with the slot-per-epoch
// reference.
func TestCountSetMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := int64(20 + rng.Intn(200))
		cs := NewCountSet(d)
		ref := newDense(d)
		for round := 0; round < 12; round++ {
			sp := randomSpans(rng, d)
			// Preview must match the dense transition.
			tr := cs.Preview(sp)
			wantUp := ref.up(sp)
			if !spansEqualInt64(tr.Up, wantUp) {
				t.Logf("seed %d round %d: up %v want %v", seed, round, tr.Up, wantUp)
				return false
			}
			// Predicted new histogram must match post-add dense histogram.
			predicted := cs.NewHist(tr)
			cs.Add(sp)
			ref.add(sp)
			if !spansEqualInt64(cs.Hist(), ref.hist()) {
				t.Logf("seed %d round %d: hist %v want %v", seed, round, cs.Hist(), ref.hist())
				return false
			}
			if !spansEqualInt64(predicted, ref.hist()) {
				t.Logf("seed %d round %d: predicted %v want %v", seed, round, predicted, ref.hist())
				return false
			}
			// Dense expansion matches.
			got := cs.Counts()
			for i := int64(0); i < d; i++ {
				if int64(got[i]) != ref.counts[i] {
					return false
				}
			}
			// TTP at random thresholds.
			r := rng.Intn(6)
			var under int64
			for _, c := range ref.counts {
				if c <= int64(r) {
					under++
				}
			}
			if cs.TTP(r) != float64(under)/float64(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCountSetBasics(t *testing.T) {
	cs := NewCountSet(10)
	if cs.MaxCount() != 0 || cs.TTP(0) != 1.0 || cs.Size() != 0 {
		t.Fatalf("empty set: max=%d ttp=%v size=%d", cs.MaxCount(), cs.TTP(0), cs.Size())
	}
	cs.Add(Spans{{0, 5}})
	cs.Add(Spans{{3, 8}})
	// counts: 1 1 1 2 2 1 1 1 0 0
	if cs.MaxCount() != 2 {
		t.Errorf("max = %d, want 2", cs.MaxCount())
	}
	if got := cs.EpochsAt(1); got != 6 {
		t.Errorf("EpochsAt(1) = %d, want 6", got)
	}
	if got := cs.EpochsAt(2); got != 2 {
		t.Errorf("EpochsAt(2) = %d, want 2", got)
	}
	if got := cs.EpochsAt(0); got != 2 {
		t.Errorf("EpochsAt(0) = %d, want 2", got)
	}
	if got := cs.TTP(1); got != 0.8 {
		t.Errorf("TTP(1) = %v, want 0.8", got)
	}
	if got := cs.TTP(2); got != 1.0 {
		t.Errorf("TTP(2) = %v, want 1.0", got)
	}
	if cs.Size() != 2 {
		t.Errorf("Size = %d, want 2", cs.Size())
	}
}

func TestCountSetEmptySpansAdd(t *testing.T) {
	cs := NewCountSet(10)
	cs.Add(nil)
	if cs.Size() != 1 || cs.MaxCount() != 0 {
		t.Errorf("adding an all-idle tenant: size=%d max=%d", cs.Size(), cs.MaxCount())
	}
	tr := cs.Preview(nil)
	if len(tr.Up) != 1 || tr.Up[0] != 0 {
		t.Errorf("Preview(nil).Up = %v", tr.Up)
	}
}

func TestCountSetClone(t *testing.T) {
	cs := NewCountSet(10)
	cs.Add(Spans{{0, 5}})
	cl := cs.Clone()
	cl.Add(Spans{{0, 10}})
	if cs.MaxCount() != 1 {
		t.Errorf("clone mutation leaked into original: max=%d", cs.MaxCount())
	}
	if cl.MaxCount() != 2 || cl.Size() != 2 {
		t.Errorf("clone wrong: max=%d size=%d", cl.MaxCount(), cl.Size())
	}
}

func TestNewOverAndNewMax(t *testing.T) {
	cs := NewCountSet(10)
	cs.Add(Spans{{0, 6}}) // counts 1×6
	tr := cs.Preview(Spans{{4, 8}})
	// epochs 4,5 go 1→2; epochs 6,7 go 0→1.
	if tr.Up[0] != 2 || tr.Up[1] != 2 {
		t.Fatalf("Up = %v, want [2 2]", tr.Up)
	}
	if got := cs.NewMax(tr); got != 2 {
		t.Errorf("NewMax = %d, want 2", got)
	}
	if got := cs.NewOver(1, tr); got != 2 {
		t.Errorf("NewOver(1) = %d, want 2", got)
	}
	if got := cs.NewTTP(1, tr); got != 0.8 {
		t.Errorf("NewTTP(1) = %v, want 0.8", got)
	}
	if got := cs.NewOver(2, tr); got != 0 {
		t.Errorf("NewOver(2) = %d, want 0", got)
	}
}

func TestCompareNewHists(t *testing.T) {
	cases := []struct {
		a, b []int64
		want int // sign
	}{
		{[]int64{0, 5}, []int64{0, 3, 1}, -1},      // lower max wins
		{[]int64{0, 5, 2}, []int64{0, 9, 1}, 1},    // same max, fewer at max wins
		{[]int64{0, 5, 2}, []int64{0, 4, 2}, 1},    // tie at max, fewer one level down
		{[]int64{0, 5, 2}, []int64{0, 5, 2}, 0},    // identical
		{[]int64{0, 5, 2, 0}, []int64{0, 5, 2}, 0}, // trailing zeros ignored
		{[]int64{10}, []int64{3, 1}, -1},           // all-idle beats any activity
	}
	for i, c := range cases {
		got := CompareNewHists(c.a, c.b)
		switch {
		case c.want < 0 && got >= 0, c.want > 0 && got <= 0, c.want == 0 && got != 0:
			t.Errorf("case %d: Compare(%v,%v) = %d, want sign %d", i, c.a, c.b, got, c.want)
		}
		// Antisymmetry.
		rev := CompareNewHists(c.b, c.a)
		if (got < 0) != (rev > 0) || (got == 0) != (rev == 0) {
			t.Errorf("case %d: not antisymmetric: %d vs %d", i, got, rev)
		}
	}
}

// TestPaperFig53Arithmetic reproduces the time-percentage bookkeeping of the
// worked example in Figure 5.3 using Figure 5.1's tenant activities
// (10 epochs; see grouping tests for the full algorithm trace).
func TestPaperFig53Arithmetic(t *testing.T) {
	// Activities transcribed from Figure 5.1 (epoch indices, 0-based).
	// T1 active t1..t6; T3 active t2,t3,t4 (so that adding T1 raises the
	// 2-active share from 0% to 30%, as the text states).
	T1 := Spans{{0, 6}}
	T3 := Spans{{1, 4}}
	cs := NewCountSet(10)
	cs.Add(T3)
	tr := cs.Preview(T1)
	// "when putting T1 into TG1, the total time percentage that has two
	// active tenants is increased from 0% to 30%".
	nh := cs.NewHist(tr)
	if nh[2] != 3 {
		t.Errorf("epochs with 2 active after adding T1 = %d, want 3", nh[2])
	}
}

func TestCountSetPreviewDoesNotMutate(t *testing.T) {
	cs := NewCountSet(50)
	cs.Add(Spans{{0, 30}})
	before := cs.Hist()
	_ = cs.Preview(Spans{{10, 40}})
	after := cs.Hist()
	if !spansEqualInt64(before, after) {
		t.Errorf("Preview mutated histogram: %v -> %v", before, after)
	}
}

func BenchmarkPreview(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := int64(259200) // 30 days of 10 s epochs
	cs := NewCountSet(d)
	for i := 0; i < 15; i++ {
		cs.Add(randomSpans(rng, d))
	}
	cand := randomSpans(rng, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cs.Preview(cand)
	}
}
