package scaling

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// scenario wires a 2-MPPDB tenant-group with a well-behaved tenant and a
// hog, plus a scaler with a shared pool.
type scenario struct {
	eng     *sim.Engine
	pool    *cluster.Pool
	mon     *monitor.GroupMonitor
	rt      *router.GroupRouter
	scaler  *Scaler
	cl      *queries.Class
	members []*tenant.Tenant
}

func newScenario(t *testing.T, cfg Config, poolNodes int) *scenario {
	t.Helper()
	eng := sim.NewEngine()
	pool := cluster.NewPool(poolNodes)
	members := []*tenant.Tenant{
		{ID: "hog", Nodes: 2, DataGB: 200, Users: 1},
		{ID: "good", Nodes: 2, DataGB: 200, Users: 1},
	}
	var dbs []*mppdb.Instance
	for i := 0; i < cfg.R+0; i++ { // A = R MPPDBs
		db := mppdb.New(eng, "g0-db"+string(rune('0'+i)), 2)
		for _, m := range members {
			db.DeployTenant(m.ID, m.DataGB)
		}
		dbs = append(dbs, db)
	}
	mon, err := monitor.NewGroup(eng, "g0", cfg.R, cfg.Window)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := router.NewGroup(eng, "g0", dbs, members, mon)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := New(eng, pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc.Watch(&Target{Router: rt, Monitor: mon, Members: members})
	return &scenario{
		eng: eng, pool: pool, mon: mon, rt: rt, scaler: sc,
		cl:      &queries.Class{ID: "q", FixedSec: 0.5, ScanSecGB: 0.05}, // 10.5 s on 200GB/2n
		members: members,
	}
}

func testCfg() Config {
	return Config{
		P:             0.99,
		R:             1,
		CheckInterval: 5 * time.Minute,
		Window:        time.Hour,
		Epoch:         10 * sim.Second,
		ParallelLoad:  true,
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	pool := cluster.NewPool(4)
	bad := []Config{
		{P: 0, R: 1, CheckInterval: 1, Window: 1, Epoch: 1},
		{P: 1.5, R: 1, CheckInterval: 1, Window: 1, Epoch: 1},
		{P: 0.9, R: 0, CheckInterval: 1, Window: 1, Epoch: 1},
		{P: 0.9, R: 1, CheckInterval: 0, Window: 1, Epoch: 1},
		{P: 0.9, R: 1, CheckInterval: 1, Window: 0, Epoch: 1},
		{P: 0.9, R: 1, CheckInterval: 1, Window: 1, Epoch: 0},
	}
	for i, cfg := range bad {
		if _, err := New(eng, pool, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if cfg := DefaultConfig(0.999, 3); cfg.P != 0.999 || cfg.R != 3 || !cfg.ParallelLoad {
		t.Error("DefaultConfig wrong")
	}
}

// driveHog submits back-to-back queries for the hog and periodic short
// queries for the good tenant, from 0 until the given horizon.
func (s *scenario) driveHog(t *testing.T, until sim.Time) {
	var hogLoop func(now sim.Time)
	hogLoop = func(now sim.Time) {
		if now >= until {
			return
		}
		// Route through the router so overrides apply.
		if _, err := s.rt.Submit("hog", s.cl); err != nil {
			t.Errorf("hog submit at %v: %v", now, err)
			return
		}
		// Resubmit before the previous query ends: the hog is continuously
		// active (its queries take ≈11 s under self-contention).
		s.eng.After(5*time.Second, hogLoop)
	}
	s.eng.After(0, hogLoop)

	var goodLoop func(now sim.Time)
	goodLoop = func(now sim.Time) {
		if now >= until {
			return
		}
		if _, err := s.rt.Submit("good", s.cl); err != nil {
			t.Errorf("good submit at %v: %v", now, err)
			return
		}
		s.eng.After(170*time.Second, goodLoop)
	}
	s.eng.After(30*time.Second, goodLoop)
}

// TestElasticScalingEndToEnd reproduces the §7.5 mechanism: a continuously
// active tenant drives RT-TTP below P; the scaler identifies it, provisions
// a dedicated MPPDB, and re-points it; the group's RT-TTP recovers.
func TestElasticScalingEndToEnd(t *testing.T) {
	s := newScenario(t, testCfg(), 8)
	s.scaler.Start()
	horizon := 6 * sim.Hour
	s.driveHog(t, horizon)
	s.eng.Run(horizon)

	evs := s.scaler.Events()
	if len(evs) == 0 {
		t.Fatalf("no scaling events; RTTTP=%v active=%d", s.mon.RTTTP(), s.mon.ActiveTenants())
	}
	ev := evs[0]
	if ev.Err != "" {
		t.Fatalf("scaling failed: %s", ev.Err)
	}
	if len(ev.OverActive) != 1 || ev.OverActive[0] != "hog" {
		t.Errorf("over-active = %v, want [hog]", ev.OverActive)
	}
	if ev.Nodes != 2 {
		t.Errorf("new MPPDB size = %d, want 2", ev.Nodes)
	}
	if ev.Ready <= ev.Detected {
		t.Errorf("ready %v not after detection %v", ev.Ready, ev.Detected)
	}
	// Provisioning takes startup + parallel load of 200 GB on 2 nodes.
	wantDelay := cluster.StartupTime(2) + cluster.LoadTime(200, 2, true)
	if got := ev.Ready.Sub(ev.Detected); got != wantDelay {
		t.Errorf("provisioning took %v, want %v", got, wantDelay)
	}
	// The hog is now overridden and excluded.
	if _, ok := s.rt.Override("hog"); !ok {
		t.Error("no override installed for the hog")
	}
	if !s.mon.Excluded("hog") {
		t.Error("hog not excluded from the monitor")
	}
	// Re-consolidation list includes the group.
	if list := s.scaler.ReconsolidationList(); len(list) != 1 || list[0] != "g0" {
		t.Errorf("reconsolidation list = %v", list)
	}
	// RT-TTP recovers: run 30 more hours so the window forgets the episode.
	s.driveHog(t, horizon) // note: loops ended; re-arm from now
	s.eng.Run(horizon + 30*sim.Hour)
	if got := s.mon.RTTTP(); got < 0.999 {
		t.Errorf("RT-TTP did not recover: %v", got)
	}
}

func TestScalingDisabled(t *testing.T) {
	s := newScenario(t, testCfg(), 8)
	s.scaler.Disable("g0")
	s.scaler.Start()
	s.driveHog(t, 4*sim.Hour)
	s.eng.Run(4 * sim.Hour)
	if len(s.scaler.Events()) != 0 {
		t.Errorf("disabled group scaled anyway: %+v", s.scaler.Events())
	}
	s.scaler.Enable("g0")
	s.driveHog(t, 5*sim.Hour)
	s.eng.Run(5 * sim.Hour)
	if len(s.scaler.Events()) == 0 {
		t.Error("re-enabled group never scaled")
	}
}

func TestScalingPoolExhausted(t *testing.T) {
	// Pool too small for a new 2-node MPPDB (all 2 nodes go to... give 0
	// spare).
	s := newScenario(t, testCfg(), 0)
	s.scaler.Start()
	s.driveHog(t, 4*sim.Hour)
	s.eng.Run(4 * sim.Hour)
	evs := s.scaler.Events()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	if evs[0].Err == "" {
		t.Error("exhausted pool did not surface an error")
	}
}

func TestIdentifyOverActiveEmptyWhenCalm(t *testing.T) {
	s := newScenario(t, testCfg(), 8)
	// Only the good tenant is mildly active.
	s.eng.Schedule(0, func(sim.Time) { s.rt.Submit("good", s.cl) })
	s.eng.Run(sim.Hour)
	over, err := s.scaler.IdentifyOverActive(&Target{Router: s.rt, Monitor: s.mon, Members: s.members})
	if err != nil {
		t.Fatal(err)
	}
	if len(over) != 0 {
		t.Errorf("calm group identified over-active tenants: %v", over)
	}
}

func TestIdentifyOverActiveZeroHorizon(t *testing.T) {
	s := newScenario(t, testCfg(), 8)
	over, err := s.scaler.IdentifyOverActive(&Target{Router: s.rt, Monitor: s.mon, Members: s.members})
	if err != nil {
		t.Fatal(err)
	}
	if over != nil {
		t.Errorf("zero-horizon identification returned %v", over)
	}
}

func TestStartIsIdempotent(t *testing.T) {
	s := newScenario(t, testCfg(), 8)
	s.scaler.Start()
	s.scaler.Start()
	// One tick per interval, not two: run 2 intervals and count pending
	// indirectly via no panic / no duplicate events on a calm group.
	s.eng.Run(sim.Time(2 * testCfg().CheckInterval.Nanoseconds()))
	if len(s.scaler.Events()) != 0 {
		t.Error("calm group produced events")
	}
}
