// Package scaling implements Thrifty's lightweight elastic scaling (thesis
// §5.1). When a tenant-group's run-time TTP over the trailing 24-hour window
// drops below the performance SLA guarantee P, the scaler identifies the
// over-active tenant(s) — the ones whose recent activity no longer fits the
// group under the grouping algorithm — provisions a new MPPDB sized for just
// those tenants, bulk loads only their data (the lightweight part: loading a
// tenant's 400 GB takes ≈5000 s with parallel loading, versus many hours for
// the whole group), and re-points their queries to the new instance.
//
// Groups that scaled are flagged for the next re-consolidation cycle.
package scaling

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/grouping"
	"repro/internal/monitor"
	"repro/internal/mppdb"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// Config controls the scaler.
type Config struct {
	// P is the performance SLA guarantee (fraction, e.g. 0.999).
	P float64
	// R is the replication factor used by over-active identification.
	R int
	// CheckInterval is how often RT-TTP is evaluated.
	CheckInterval time.Duration
	// Window is the RT-TTP window (must match the monitors'; 24 h in the
	// thesis).
	Window time.Duration
	// Epoch is the epoch width for over-active identification.
	Epoch sim.Time
	// ParallelLoad enables the MPPDB's parallel bulk loading.
	ParallelLoad bool
	// SolverWorkers bounds the over-active identification solver's
	// parallelism (see grouping.Solver); 0 or 1 solves serially. The
	// identified split is identical at any worker count.
	SolverWorkers int
}

// DefaultConfig returns the thesis' settings.
func DefaultConfig(p float64, r int) Config {
	return Config{
		P:             p,
		R:             r,
		CheckInterval: 10 * time.Minute,
		Window:        24 * time.Hour,
		Epoch:         3 * sim.Second,
		ParallelLoad:  true,
	}
}

// Target is one tenant-group under the scaler's watch.
type Target struct {
	Router  *router.GroupRouter
	Monitor *monitor.GroupMonitor
	Members []*tenant.Tenant
}

// Event records one elastic-scaling action.
type Event struct {
	// Group is the tenant-group that scaled.
	Group string
	// Detected is when RT-TTP fell below P.
	Detected sim.Time
	// RTTTP is the group's RT-TTP at detection.
	RTTTP float64
	// OverActive lists the tenants moved to the new MPPDB.
	OverActive []string
	// MPPDB is the new instance's ID.
	MPPDB string
	// Nodes is the new instance's size.
	Nodes int
	// Ready is when the new MPPDB began serving (after startup + load).
	Ready sim.Time
	// Err is non-empty when the action failed (e.g. node pool exhausted).
	Err string
}

// Scaler watches tenant-groups and reacts to RT-TTP drops.
type Scaler struct {
	eng  *sim.Engine
	pool *cluster.Pool
	cfg  Config

	targets  []*Target
	scaling  map[string]bool // group currently provisioning
	disabled map[string]bool // administrator override (§6)
	reconsol map[string]bool // groups flagged for re-consolidation
	events   []Event
	nextID   int
	started  bool

	// Telemetry (optional): RT-TTP gauges sampled at every check, dip events
	// on the below-P transition, and the scaling-phase event timeline.
	tel      *telemetry.Hub
	belowP   map[string]bool
	mActions *telemetry.Counter
	mActive  *telemetry.Gauge
}

// New creates a scaler over the shared node pool.
func New(eng *sim.Engine, pool *cluster.Pool, cfg Config) (*Scaler, error) {
	if cfg.P <= 0 || cfg.P > 1 {
		return nil, fmt.Errorf("scaling: P=%v", cfg.P)
	}
	if cfg.R < 1 {
		return nil, fmt.Errorf("scaling: R=%d", cfg.R)
	}
	if cfg.CheckInterval <= 0 || cfg.Window <= 0 || cfg.Epoch <= 0 {
		return nil, fmt.Errorf("scaling: non-positive intervals in %+v", cfg)
	}
	if cfg.SolverWorkers < 0 {
		return nil, fmt.Errorf("scaling: SolverWorkers=%d", cfg.SolverWorkers)
	}
	return &Scaler{
		eng:      eng,
		pool:     pool,
		cfg:      cfg,
		scaling:  make(map[string]bool),
		disabled: make(map[string]bool),
		reconsol: make(map[string]bool),
	}, nil
}

// SetTelemetry attaches a telemetry hub. A nil hub disables instrumentation.
func (s *Scaler) SetTelemetry(h *telemetry.Hub) {
	s.tel = h
	if h == nil {
		return
	}
	s.belowP = make(map[string]bool)
	s.mActions = h.Registry.Counter("thrifty_scaling_actions_total")
	s.mActive = h.Registry.Gauge("thrifty_scaling_in_progress")
}

// Watch adds a tenant-group to the scaler.
func (s *Scaler) Watch(t *Target) { s.targets = append(s.targets, t) }

// Disable suppresses automatic scaling for a group — the §6 manual-tuning
// path where the administrator instead raises U on the tuning MPPDB.
func (s *Scaler) Disable(group string) { s.disabled[group] = true }

// Enable re-enables automatic scaling for a group.
func (s *Scaler) Enable(group string) { delete(s.disabled, group) }

// Events returns all scaling actions so far.
func (s *Scaler) Events() []Event { return s.events }

// ReconsolidationList returns the groups flagged for the next
// (re)-consolidation cycle, sorted.
func (s *Scaler) ReconsolidationList() []string {
	out := make([]string, 0, len(s.reconsol))
	for g := range s.reconsol {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Start schedules the periodic RT-TTP checks.
func (s *Scaler) Start() {
	if s.started {
		return
	}
	s.started = true
	var tick func(now sim.Time)
	tick = func(now sim.Time) {
		s.check()
		s.eng.After(s.cfg.CheckInterval, tick)
	}
	s.eng.After(s.cfg.CheckInterval, tick)
}

// check evaluates every watched group once.
func (s *Scaler) check() {
	for _, t := range s.targets {
		g := t.Router.Group()
		rt := t.Monitor.RTTTP()
		if s.tel != nil {
			s.tel.Registry.Gauge("thrifty_group_rt_ttp", "group", g).Set(rt)
			// Publish the dip once per crossing, not on every low sample.
			below := rt < s.cfg.P
			if below && !s.belowP[g] {
				s.tel.Events.Publish(telemetry.Event{
					Type:   telemetry.EventRTTTPDip,
					Group:  g,
					Value:  rt,
					Detail: fmt.Sprintf("RT-TTP below P=%v", s.cfg.P),
				})
			}
			s.belowP[g] = below
		}
		if s.scaling[g] || s.disabled[g] {
			continue
		}
		if rt >= s.cfg.P {
			continue
		}
		s.scaleUp(t, rt)
	}
}

// IdentifyOverActive runs the over-active-tenant-identification algorithm
// (§5.1): the tenant-grouping algorithm applied to just this group's tenants
// using their *observed* activity of the trailing window. Tenants that no
// longer fit into the group's main tenant-group are over-active.
func (s *Scaler) IdentifyOverActive(t *Target) ([]*tenant.Tenant, error) {
	now := s.eng.Now()
	from := now - sim.Duration(s.cfg.Window)
	if from < 0 {
		from = 0
	}
	horizon := now - from
	if horizon <= 0 {
		return nil, nil
	}
	grid, err := epoch.NewGrid(s.cfg.Epoch, horizon)
	if err != nil {
		return nil, err
	}
	prob := &grouping.Problem{D: grid.D, R: s.cfg.R, P: s.cfg.P}
	members := make(map[string]*tenant.Tenant, len(t.Members))
	for _, m := range t.Members {
		if _, overridden := t.Router.Override(m.ID); overridden {
			continue // already moved out by a previous scaling action
		}
		members[m.ID] = m
		act := t.Monitor.TenantActivity(m.ID).Shift(-from)
		prob.Items = append(prob.Items, &grouping.Item{
			ID:    m.ID,
			Nodes: m.Nodes,
			Spans: grid.Quantize(act),
		})
	}
	sol, err := grouping.Solver{Workers: s.cfg.SolverWorkers}.TwoStep(prob)
	if err != nil {
		return nil, err
	}
	// The largest resulting group stays; everyone else is over-active.
	stay := 0
	for i := range sol.Groups {
		if len(sol.Groups[i].Items) > len(sol.Groups[stay].Items) {
			stay = i
		}
	}
	var over []*tenant.Tenant
	for gi := range sol.Groups {
		if gi == stay {
			continue
		}
		for _, idx := range sol.Groups[gi].Items {
			over = append(over, members[prob.Items[idx].ID])
		}
	}
	sort.Slice(over, func(i, j int) bool { return over[i].ID < over[j].ID })
	return over, nil
}

// scaleUp performs one lightweight scaling action for the group.
func (s *Scaler) scaleUp(t *Target, rtttp float64) {
	g := t.Router.Group()
	ev := Event{Group: g, Detected: s.eng.Now(), RTTTP: rtttp}
	over, err := s.IdentifyOverActive(t)
	if err != nil {
		ev.Err = err.Error()
		s.events = append(s.events, ev)
		s.publishFailure(g, err.Error())
		return
	}
	if len(over) == 0 {
		// Nothing identifiable (e.g. a one-off spike already over); record
		// nothing and let the next check re-evaluate.
		return
	}
	nodes := 0
	var dataGB float64
	for _, m := range over {
		ev.OverActive = append(ev.OverActive, m.ID)
		if m.Nodes > nodes {
			nodes = m.Nodes
		}
		dataGB += m.DataGB
	}
	s.nextID++
	id := fmt.Sprintf("%s-scale%d", g, s.nextID)
	if _, err := s.pool.Acquire(id, nodes); err != nil {
		ev.Err = err.Error()
		s.events = append(s.events, ev)
		s.publishFailure(g, err.Error())
		return
	}
	s.scaling[g] = true
	if s.tel != nil {
		s.mActions.Inc()
		s.mActive.Add(1)
		s.tel.Events.Publish(telemetry.Event{
			Type:   telemetry.EventScalingTriggered,
			Group:  g,
			MPPDB:  id,
			Value:  rtttp,
			Detail: fmt.Sprintf("over-active %v → %d-node MPPDB", ev.OverActive, nodes),
		})
	}
	inst := mppdb.New(s.eng, id, nodes)
	inst.SetTelemetry(s.tel)
	inst.SetState(mppdb.Provisioning)
	for _, m := range over {
		inst.DeployTenant(m.ID, m.DataGB)
	}
	ev.MPPDB = id
	ev.Nodes = nodes
	delay := cluster.StartupTime(nodes) + cluster.LoadTime(dataGB, nodes, s.cfg.ParallelLoad)
	overCopy := over
	evIdx := len(s.events)
	s.events = append(s.events, ev)
	s.eng.After(delay, func(now sim.Time) {
		inst.SetState(mppdb.Ready)
		for _, m := range overCopy {
			if err := t.Router.SetOverride(m.ID, inst); err != nil {
				s.events[evIdx].Err = err.Error()
			}
		}
		s.events[evIdx].Ready = now
		s.scaling[g] = false
		s.reconsol[g] = true
		if s.tel != nil {
			s.mActive.Add(-1)
			s.tel.Events.Publish(telemetry.Event{
				Type:   telemetry.EventScalingReady,
				Group:  g,
				MPPDB:  id,
				Value:  float64(nodes),
				Detail: fmt.Sprintf("queries of %v re-pointed", s.events[evIdx].OverActive),
			})
		}
	})
}

// publishFailure emits a scaling_failed event when telemetry is attached.
func (s *Scaler) publishFailure(group, detail string) {
	if s.tel == nil {
		return
	}
	s.tel.Events.Publish(telemetry.Event{
		Type:   telemetry.EventScalingFailed,
		Group:  group,
		Detail: detail,
	})
}
