// Package tdd implements the Tenant-Driven Design (thesis §4): the cluster
// design that arranges machine nodes into groups running one MPPDB each, the
// tenant placement that replicates every tenant onto all A MPPDBs of its
// group, and the query-routing policy (Algorithm 1) that gives each active
// tenant a dedicated MPPDB.
//
// TDD's guarantee (Guarantee 1): whatever the tenants' query shapes —
// linear or non-linear scale-out, sequential ad-hoc analysis or concurrent
// report batches at any multi-programming level — the SLAs of up to A
// concurrently active tenants are met, because each active tenant's queries
// run exclusively on an MPPDB with at least its requested degree of
// parallelism.
package tdd

import (
	"fmt"

	"repro/internal/tenant"
)

// ClusterDesign describes how one tenant-group's machine nodes are arranged
// (§4.1): A groups of nodes, each running a single MPPDB. Group G₀ is the
// "tuning MPPDB" with U ≥ n₁ nodes (§6); groups G₁…G_{A−1} have n₁ nodes,
// where n₁ is the largest member tenant's request.
type ClusterDesign struct {
	// A is the number of MPPDBs (= the replication factor, Property 1).
	A int
	// N1 is n₁, the largest tenant's requested node count.
	N1 int
	// U is the tuning MPPDB's node count, n₁ ≤ U.
	U int
}

// NewClusterDesign validates and builds a design. U=0 means "default", i.e.
// U = n₁ (§4.1: "now we assume U = n₁").
func NewClusterDesign(a, n1, u int) (ClusterDesign, error) {
	if a < 1 {
		return ClusterDesign{}, fmt.Errorf("tdd: A=%d MPPDBs", a)
	}
	if n1 < 1 {
		return ClusterDesign{}, fmt.Errorf("tdd: n₁=%d", n1)
	}
	if u == 0 {
		u = n1
	}
	if u < n1 {
		return ClusterDesign{}, fmt.Errorf("tdd: U=%d below n₁=%d", u, n1)
	}
	return ClusterDesign{A: a, N1: n1, U: u}, nil
}

// TotalNodes returns the nodes the design consumes: U + (A−1)·n₁.
func (d ClusterDesign) TotalNodes() int { return d.U + (d.A-1)*d.N1 }

// GroupNodes returns the node count of MPPDB i (0 = the tuning MPPDB).
func (d ClusterDesign) GroupNodes(i int) (int, error) {
	if i < 0 || i >= d.A {
		return 0, fmt.Errorf("tdd: MPPDB index %d outside [0,%d)", i, d.A)
	}
	if i == 0 {
		return d.U, nil
	}
	return d.N1, nil
}

// Placement is the tenant placement of one tenant-group (§4.2): every member
// tenant is deployed on all A MPPDBs, which enforces a replication factor of
// A (Property 1).
type Placement struct {
	Design ClusterDesign
	// Tenants are the member tenant IDs.
	Tenants []string
}

// ReplicationFactor returns the number of copies of each tenant's data.
func (p Placement) ReplicationFactor() int { return p.Design.A }

// Hosts reports whether the placement includes the tenant.
func (p Placement) Hosts(tenant string) bool {
	for _, t := range p.Tenants {
		if t == tenant {
			return true
		}
	}
	return false
}

// MPPDBState is the router's view of one MPPDB at routing time.
type MPPDBState interface {
	// Busy reports whether the MPPDB is executing any query.
	Busy() bool
	// TenantRunning returns the number of queries the given tenant
	// currently has executing on this MPPDB.
	TenantRunning(tenant string) int
}

// Route implements Algorithm 1 against the live states of a tenant-group's
// A MPPDBs (index 0 is the tuning MPPDB G₀). It returns the index of the
// MPPDB the query must go to:
//
//  1. if the tenant already has queries running on some MPPDB, follow them
//     (tenant affinity — one MPPDB serves all of an active tenant's
//     concurrent queries until it goes inactive);
//  2. otherwise prefer a free G₀;
//  3. otherwise any free MPPDB;
//  4. otherwise G₀, accepting concurrent processing (this is the overload
//     path whose pain the administrator can tune away by raising U, §6).
func Route(tenant string, dbs []MPPDBState) (int, error) {
	if len(dbs) == 0 {
		return 0, fmt.Errorf("tdd: no MPPDBs to route to")
	}
	for i, db := range dbs {
		if db.TenantRunning(tenant) > 0 {
			return i, nil // line 2: follow the tenant's in-flight queries
		}
	}
	if !dbs[0].Busy() {
		return 0, nil // line 5: the tuning MPPDB is free
	}
	for i := 1; i < len(dbs); i++ {
		if !dbs[i].Busy() {
			return i, nil // line 8: any free MPPDB
		}
	}
	return 0, nil // line 10: concurrent processing on G₀
}

// MPPDBStateRef is the interned-handle view of one MPPDB at routing time:
// the tenant is identified by its dense group-local Ref instead of a string,
// so the in-flight check is a slice index rather than a map hash.
type MPPDBStateRef interface {
	// Busy reports whether the MPPDB is executing any query.
	Busy() bool
	// RefRunning returns the number of queries the given tenant ref
	// currently has executing on this MPPDB.
	RefRunning(ref tenant.Ref) int
}

// RouteRef is Route (Algorithm 1) over interned tenant handles. The decision
// sequence is byte-for-byte identical to Route; only the tenant lookup
// changes representation.
func RouteRef(ref tenant.Ref, dbs []MPPDBStateRef) (int, error) {
	if len(dbs) == 0 {
		return 0, fmt.Errorf("tdd: no MPPDBs to route to")
	}
	for i, db := range dbs {
		if db.RefRunning(ref) > 0 {
			return i, nil // line 2: follow the tenant's in-flight queries
		}
	}
	if !dbs[0].Busy() {
		return 0, nil // line 5: the tuning MPPDB is free
	}
	for i := 1; i < len(dbs); i++ {
		if !dbs[i].Busy() {
			return i, nil // line 8: any free MPPDB
		}
	}
	return 0, nil // line 10: concurrent processing on G₀
}
