package tdd

import "testing"

// fakeDB implements MPPDBState for routing tests.
type fakeDB struct {
	busy    bool
	running map[string]int
}

func (f *fakeDB) Busy() bool                      { return f.busy || len(f.running) > 0 }
func (f *fakeDB) TenantRunning(tenant string) int { return f.running[tenant] }

func free() *fakeDB             { return &fakeDB{} }
func busyWith(t string) *fakeDB { return &fakeDB{running: map[string]int{t: 1}} }

func TestNewClusterDesign(t *testing.T) {
	d, err := NewClusterDesign(3, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.U != 6 {
		t.Errorf("default U = %d, want n₁ = 6", d.U)
	}
	if d.TotalNodes() != 18 {
		t.Errorf("TotalNodes = %d, want 18 (the Fig 4.1 toy example)", d.TotalNodes())
	}
	if n, _ := d.GroupNodes(0); n != 6 {
		t.Errorf("G0 nodes = %d", n)
	}
	if n, _ := d.GroupNodes(2); n != 6 {
		t.Errorf("G2 nodes = %d", n)
	}
	if _, err := d.GroupNodes(3); err == nil {
		t.Error("out-of-range group accepted")
	}
	if _, err := NewClusterDesign(0, 6, 0); err == nil {
		t.Error("A=0 accepted")
	}
	if _, err := NewClusterDesign(3, 0, 0); err == nil {
		t.Error("n₁=0 accepted")
	}
	if _, err := NewClusterDesign(3, 6, 4); err == nil {
		t.Error("U < n₁ accepted")
	}
}

func TestManualTuningU(t *testing.T) {
	// §6: the administrator raises U from 10 to 12 to give G₀ headroom.
	d, err := NewClusterDesign(3, 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalNodes() != 32 {
		t.Errorf("TotalNodes = %d, want 12 + 2·10 = 32", d.TotalNodes())
	}
	if n, _ := d.GroupNodes(0); n != 12 {
		t.Errorf("tuning MPPDB nodes = %d, want 12", n)
	}
}

func TestPlacement(t *testing.T) {
	d, _ := NewClusterDesign(3, 6, 0)
	p := Placement{Design: d, Tenants: []string{"T1", "T2"}}
	if p.ReplicationFactor() != 3 {
		t.Errorf("replication = %d, want A = 3 (Property 1)", p.ReplicationFactor())
	}
	if !p.Hosts("T1") || p.Hosts("T9") {
		t.Error("Hosts wrong")
	}
}

// TestRouteFollowsPaperWalkthrough replays the §4.3 walkthrough of Figure
// 4.2 decision by decision.
func TestRouteFollowsPaperWalkthrough(t *testing.T) {
	db0, db1, db2 := free(), free(), free()
	dbs := []MPPDBState{db0, db1, db2}
	route := func(tenant string) int {
		i, err := Route(tenant, dbs)
		if err != nil {
			t.Fatal(err)
		}
		return i
	}

	// Q1 by T4: all free → MPPDB0 (line 5).
	if got := route("T4"); got != 0 {
		t.Fatalf("Q1 routed to %d, want 0", got)
	}
	db0.running = map[string]int{"T4": 1}

	// Q2 by T2: MPPDB0 busy → free MPPDB1 (line 8).
	if got := route("T2"); got != 1 {
		t.Fatalf("Q2 routed to %d, want 1", got)
	}
	db1.running = map[string]int{"T2": 1}

	// Q3 by T4 while Q1 still running → follow to MPPDB0 (line 2).
	if got := route("T4"); got != 0 {
		t.Fatalf("Q3 routed to %d, want 0", got)
	}
	db0.running["T4"] = 2

	// Q4 by T2 while Q2 running → MPPDB1 (line 2).
	if got := route("T2"); got != 1 {
		t.Fatalf("Q4 routed to %d, want 1", got)
	}

	// Q5 by T9: MPPDB0 and MPPDB1 busy → free MPPDB2 (line 8).
	if got := route("T9"); got != 2 {
		t.Fatalf("Q5 routed to %d, want 2", got)
	}
	db2.running = map[string]int{"T9": 1}

	// T4 finishes Q1 and Q3; T1 submits Q6 → MPPDB0 free again (line 5).
	db0.running = nil
	if got := route("T1"); got != 0 {
		t.Fatalf("Q6 routed to %d, want 0", got)
	}
	db0.running = map[string]int{"T1": 1}

	// Q7 by T4 (its queries finished, so no affinity): MPPDB0 busy with T1,
	// MPPDB1 busy with T2... in the thesis MPPDB1 had just become free and
	// Q7 goes there. Clear MPPDB1 to match the timeline.
	db1.running = nil
	if got := route("T4"); got != 1 {
		t.Fatalf("Q7 routed to %d, want 1", got)
	}
	db1.running = map[string]int{"T4": 1}

	// Q8 by T1 — T1 is briefly inactive in the thesis but all other MPPDBs
	// are busy, so Q8 still lands on MPPDB0... here T1's Q6 is still
	// running, so affinity (line 2) routes it to MPPDB0 anyway.
	if got := route("T1"); got != 0 {
		t.Fatalf("Q8 routed to %d, want 0", got)
	}
}

func TestRouteOverloadGoesToTuningMPPDB(t *testing.T) {
	// All MPPDBs busy with other tenants → line 10: concurrent processing
	// on G₀.
	dbs := []MPPDBState{busyWith("a"), busyWith("b"), busyWith("c")}
	got, err := Route("d", dbs)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("overload routed to %d, want 0", got)
	}
}

func TestRouteAffinityBeatsFreeDB(t *testing.T) {
	// Tenant has a query on MPPDB2; MPPDB0 is free. Affinity wins: the
	// tenant's concurrent queries must share one MPPDB.
	dbs := []MPPDBState{free(), free(), busyWith("t")}
	got, err := Route("t", dbs)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("routed to %d, want 2 (affinity)", got)
	}
}

func TestRouteErrors(t *testing.T) {
	if _, err := Route("t", nil); err == nil {
		t.Error("routing with no MPPDBs accepted")
	}
}

func TestRouteBusyFlagWithoutRunningMap(t *testing.T) {
	// A loading/hibernating DB can present Busy()==true with no running
	// queries; the router must skip it.
	dbs := []MPPDBState{&fakeDB{busy: true}, free()}
	got, err := Route("t", dbs)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("routed to %d, want 1", got)
	}
}
