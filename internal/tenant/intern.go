// Tenant interning: the submit hot path's string killer.
//
// Every layer of the per-query pipeline used to key its tenant state by the
// tenant's string ID — the router's member map, each MPPDB's deployed-data
// and running-query maps, the admission controller's bucket map. One submit
// paid five or six string hashes before any real work happened. An Interner
// assigns each tenant of a group a dense int index (a Ref) exactly once — at
// deploy or migration time — and every per-tenant structure below the front
// door becomes a flat slice indexed by that Ref.
//
// Refs are group-local: each tenant-group owns one Interner, shared by its
// router, its MPPDB instances, and its admission controller, so a Ref
// resolved at the front door stays valid across all of them. The string API
// everywhere remains as a thin shim that resolves through the Interner once
// and delegates to the Ref path.
package tenant

import "sync"

// Ref is a dense per-group tenant index assigned by an Interner. The zero
// Ref is a valid index; use NoRef for "absent".
type Ref int32

// NoRef marks an unresolved or unknown tenant.
const NoRef Ref = -1

// Interner assigns dense Refs to tenant IDs. Interning happens at deploy and
// migration time only; the hot path never touches the Interner — it carries
// Refs resolved once at the front door. The internal lock therefore guards
// only cold-path string resolution and growth, never per-query work.
type Interner struct {
	mu   sync.RWMutex
	byID map[string]Ref
	ids  []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{byID: make(map[string]Ref)}
}

// Intern returns the tenant's Ref, assigning the next dense index on first
// sight.
func (in *Interner) Intern(id string) Ref {
	in.mu.Lock()
	defer in.mu.Unlock()
	if ref, ok := in.byID[id]; ok {
		return ref
	}
	ref := Ref(len(in.ids))
	in.byID[id] = ref
	in.ids = append(in.ids, id)
	return ref
}

// Lookup resolves an already-interned tenant ID.
func (in *Interner) Lookup(id string) (Ref, bool) {
	in.mu.RLock()
	ref, ok := in.byID[id]
	in.mu.RUnlock()
	return ref, ok
}

// ID returns the tenant ID behind a Ref (empty for out-of-range refs).
func (in *Interner) ID(ref Ref) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if ref < 0 || int(ref) >= len(in.ids) {
		return ""
	}
	return in.ids[ref]
}

// Len returns the number of interned tenants. Refs are always < Len.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.ids)
}
