package tenant

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/queries"
)

func TestValidate(t *testing.T) {
	good := &Tenant{ID: "T1", Nodes: 2, DataGB: 200, Users: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid tenant rejected: %v", err)
	}
	bad := []*Tenant{
		{Nodes: 2, DataGB: 200, Users: 1},
		{ID: "T", Nodes: 0, DataGB: 200, Users: 1},
		{ID: "T", Nodes: 2, DataGB: 0, Users: 1},
		{ID: "T", Nodes: 2, DataGB: 200, Users: 0},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad tenant %d accepted", i)
		}
	}
}

func TestSampleSizesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes, err := SampleSizes(rng, 100000, 0.8, DefaultSizes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, s := range sizes {
		counts[s]++
	}
	// Monotone decreasing counts with rank: smaller tenants more common.
	prev := 1 << 30
	for _, sz := range DefaultSizes {
		if counts[sz] > prev {
			t.Errorf("size %d count %d exceeds smaller class count %d", sz, counts[sz], prev)
		}
		prev = counts[sz]
		if counts[sz] == 0 {
			t.Errorf("size class %d never drawn", sz)
		}
	}
	// Zipf θ=0.8 over 5 ranks: smallest class ≈ 38.6% of the population.
	frac := float64(counts[2]) / 100000
	if frac < 0.36 || frac < 0 || frac > 0.41 {
		t.Errorf("2-node share = %.3f, want ≈0.386", frac)
	}
}

func TestSampleSizesThetaShapesSkew(t *testing.T) {
	// A larger θ must give a larger small-tenant share.
	share := func(theta float64) float64 {
		rng := rand.New(rand.NewSource(7))
		sizes, err := SampleSizes(rng, 50000, theta, DefaultSizes)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, s := range sizes {
			if s == 2 {
				n++
			}
		}
		return float64(n) / 50000
	}
	if s1, s2 := share(0.1), share(0.99); s1 >= s2 {
		t.Errorf("θ=0.1 share %.3f ≥ θ=0.99 share %.3f; skew not increasing", s1, s2)
	}
}

func TestSampleSizesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SampleSizes(rng, 5, 0.8, nil); err == nil {
		t.Error("empty size classes accepted")
	}
	for _, theta := range []float64{0, 1, -0.5, 2} {
		if _, err := SampleSizes(rng, 5, theta, DefaultSizes); err == nil {
			t.Errorf("θ=%v accepted", theta)
		}
	}
}

func TestPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ts, err := Population(rng, 500, 0.8, DefaultSizes, ZoneOffsets)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 500 {
		t.Fatalf("population size %d", len(ts))
	}
	ids := map[string]bool{}
	hasTPCH, hasTPCDS := false, false
	for i, tn := range ts {
		if err := tn.Validate(); err != nil {
			t.Fatalf("tenant %d invalid: %v", i, err)
		}
		if ids[tn.ID] {
			t.Fatalf("duplicate ID %s", tn.ID)
		}
		ids[tn.ID] = true
		if tn.DataGB != DataGBPerNode*float64(tn.Nodes) {
			t.Errorf("%s: DataGB %.0f for %d nodes", tn.ID, tn.DataGB, tn.Nodes)
		}
		if tn.Users < 1 || tn.Users > 5 {
			t.Errorf("%s: users %d outside [1,5]", tn.ID, tn.Users)
		}
		if tn.Suite == queries.TPCH {
			hasTPCH = true
		} else {
			hasTPCDS = true
		}
		if i > 0 && ts[i-1].Nodes < tn.Nodes {
			t.Fatalf("population not sorted by descending size at %d", i)
		}
	}
	if !hasTPCH || !hasTPCDS {
		t.Error("population lacks one of the suites")
	}
}

func TestPopulationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Population(rng, 5, 0.8, DefaultSizes, nil); err == nil {
		t.Error("empty offsets accepted")
	}
	if _, err := Population(rng, 5, 0, DefaultSizes, ZoneOffsets); err == nil {
		t.Error("bad theta accepted")
	}
}

func TestTotalNodesAndHistogram(t *testing.T) {
	ts := []*Tenant{
		{ID: "a", Nodes: 6, DataGB: 600, Users: 1},
		{ID: "b", Nodes: 6, DataGB: 600, Users: 1},
		{ID: "c", Nodes: 2, DataGB: 200, Users: 1},
	}
	if got := TotalNodes(ts); got != 14 {
		t.Errorf("TotalNodes = %d, want 14", got)
	}
	h := SizeHistogram(ts)
	if h[6] != 2 || h[2] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

// TestPaperToyExampleNodeCount reproduces the Figure 4.1 arithmetic: ten
// tenants requesting 6,6,5,5,5,4,4,3,2,2 nodes total 42 nodes.
func TestPaperToyExampleNodeCount(t *testing.T) {
	sizes := []int{6, 6, 5, 5, 5, 4, 4, 3, 2, 2}
	var ts []*Tenant
	for i, n := range sizes {
		ts = append(ts, &Tenant{ID: string(rune('A' + i)), Nodes: n, DataGB: float64(100 * n), Users: 1})
	}
	if got := TotalNodes(ts); got != 42 {
		t.Errorf("toy example total = %d, want 42", got)
	}
}

// TestSampleSizesDeterministic: equal seeds give equal populations.
func TestSampleSizesDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		a, _ := SampleSizes(rand.New(rand.NewSource(seed)), 100, 0.8, DefaultSizes)
		b, _ := SampleSizes(rand.New(rand.NewSource(seed)), 100, 0.8, DefaultSizes)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
