// Package tenant models MPPDBaaS tenants: who requests how many nodes, how
// much data they hold, and how tenant populations are sampled (§7.1 step 2).
//
// A tenant requests an n-node MPPDB and holds 100 GB of TPC-H or TPC-DS data
// per requested node (2-node/200 GB up to 32-node/3.2 TB in the paper's
// evaluation). Tenant sizes follow a Zipf distribution over the available
// size classes — companies' database sizes are skewed [Gray et al.], and
// parallel database users size their clusters by data volume.
package tenant

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/queries"
)

// DataGBPerNode is the per-node data volume of every tenant (§7.1: "each
// node gets a 100GB data partition").
const DataGBPerNode = 100.0

// DefaultSizes are the node counts tenants may request in the paper's
// evaluation (§7.1 step 2).
var DefaultSizes = []int{2, 4, 8, 16, 32}

// Tenant is one MPPDBaaS customer.
type Tenant struct {
	// ID is the unique tenant identifier, e.g. "T0042".
	ID string
	// Nodes is the requested degree of parallelism nᵢ.
	Nodes int
	// DataGB is the tenant's total data volume.
	DataGB float64
	// Suite is the benchmark family the tenant's workload draws from.
	Suite queries.Suite
	// Users is the tenant's maximum number of autonomous users S ∈ [1,5].
	Users int
	// ZoneOffsetHours is the tenant's office-hour time-zone offset O.
	ZoneOffsetHours int
}

// Validate checks internal consistency.
func (t *Tenant) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("tenant: empty ID")
	}
	if t.Nodes < 1 {
		return fmt.Errorf("tenant %s: %d nodes", t.ID, t.Nodes)
	}
	if t.DataGB <= 0 {
		return fmt.Errorf("tenant %s: %.1f GB data", t.ID, t.DataGB)
	}
	if t.Users < 1 {
		return fmt.Errorf("tenant %s: %d users", t.ID, t.Users)
	}
	return nil
}

// ZoneOffsets are the time-zone offsets used for multi-tenant log
// composition (§7.1 step 2: Seattle, New York, São Paulo, London, Beijing,
// Japan, Sydney).
var ZoneOffsets = []int{0, 3, 5, 8, 16, 17, 19}

// SampleSizes draws n tenant sizes from the given size classes using the
// paper's Zipf CDF sampling: class rank k (1 = the smallest class) receives
// probability ∝ 1/k^θ, so small tenants dominate and a larger θ skews the
// population further toward them. θ must lie in (0, 1).
func SampleSizes(rng *rand.Rand, n int, theta float64, sizes []int) ([]int, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("tenant: no size classes")
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("tenant: θ=%v outside (0,1)", theta)
	}
	// Build the Zipf CDF over ranks 1..len(sizes).
	weights := make([]float64, len(sizes))
	var sum float64
	for k := range weights {
		weights[k] = 1 / math.Pow(float64(k+1), theta)
		sum += weights[k]
	}
	cdf := make([]float64, len(sizes))
	acc := 0.0
	for k := range weights {
		acc += weights[k] / sum
		cdf[k] = acc
	}
	out := make([]int, n)
	for i := range out {
		u := rng.Float64()
		k := sort.SearchFloat64s(cdf, u)
		if k >= len(sizes) {
			k = len(sizes) - 1
		}
		out[i] = sizes[k]
	}
	return out, nil
}

// Population generates n tenants with Zipf-distributed sizes, random suites
// (TPC-H or TPC-DS with equal probability, §7.1), S ∈ [1,5] users, and
// time-zone offsets drawn uniformly from offsets. The result is ordered by
// descending node count (the tenant-driven design indexes tenants so that
// n₁ is the largest, §4.1).
func Population(rng *rand.Rand, n int, theta float64, sizes []int, offsets []int) ([]*Tenant, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("tenant: no time-zone offsets")
	}
	drawn, err := SampleSizes(rng, n, theta, sizes)
	if err != nil {
		return nil, err
	}
	out := make([]*Tenant, n)
	for i := range out {
		suite := queries.TPCH
		if rng.Intn(2) == 1 {
			suite = queries.TPCDS
		}
		out[i] = &Tenant{
			ID:              fmt.Sprintf("T%04d", i),
			Nodes:           drawn[i],
			DataGB:          DataGBPerNode * float64(drawn[i]),
			Suite:           suite,
			Users:           1 + rng.Intn(5),
			ZoneOffsetHours: offsets[rng.Intn(len(offsets))],
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Nodes > out[j].Nodes })
	return out, nil
}

// TotalNodes returns Σ nᵢ, the number of machine nodes the tenants would
// need without consolidation — the denominator of consolidation
// effectiveness.
func TotalNodes(ts []*Tenant) int {
	n := 0
	for _, t := range ts {
		n += t.Nodes
	}
	return n
}

// SizeHistogram returns the tenant count per requested node count, for
// reports like Fig 5.2.
func SizeHistogram(ts []*Tenant) map[int]int {
	h := make(map[int]int)
	for _, t := range ts {
		h[t.Nodes]++
	}
	return h
}
