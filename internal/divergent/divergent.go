// Package divergent implements the specialized tenant-driven design the
// thesis sketches as future work (§8) for its second tenant class: tenants
// that never submit ad-hoc queries — report-generation applications whose
// query templates are known up front.
//
// For those tenants Thrifty can (a) size the tuning MPPDB G₀ with U > n₁
// nodes *upfront* so that several concurrently active tenants can share it
// without SLA violations (instead of reacting with elastic scaling), and
// (b) give each of the group's A MPPDBs a *different physical design*
// (divergent design, after Consens et al., SIGMOD 2012): each replica's
// tables are partitioned to favour a subset of the templates, which removes
// the repartitioning (shuffle) cost for aligned queries — exactly the cost
// that makes non-linear templates stop scaling out.
//
// The crux the thesis names — "identify the minimum value of U that can
// afford different degrees of concurrent query processing on MPPDB₀ without
// performance SLA violations" — is MinU below: under processor sharing, k
// concurrent queries on a U-node MPPDB each run k× slower than alone, so U
// must satisfy k · L(template, U) ≤ L(template, nᵢ) for every member
// template.
package divergent

import (
	"fmt"
	"sort"

	"repro/internal/queries"
)

// Template is one known query template of a report-generation tenant.
type Template struct {
	// Class is the underlying query class.
	Class *queries.Class
	// Tenant identifies the owning tenant.
	Tenant string
	// DataGB is the owning tenant's data volume.
	DataGB float64
	// RequestedNodes is the owning tenant's nᵢ — the SLA reference.
	RequestedNodes int
}

// SLATarget returns the template's latency entitlement: isolated execution
// on the tenant's requested configuration.
func (t Template) SLATarget() float64 {
	return t.Class.Latency(t.DataGB, t.RequestedNodes).Seconds()
}

// alignedLatency returns the template's isolated latency on an n-node MPPDB
// whose physical design is partition-aligned with it: co-partitioned tables
// make the repartitioning shuffle unnecessary and halve coordination.
func (t Template) alignedLatency(n int) float64 {
	c := *t.Class
	c.ShufSecGB = 0
	c.CoordSec /= 2
	return c.Latency(t.DataGB, n).Seconds()
}

// latency returns the template's isolated latency on an unaligned n-node
// MPPDB.
func (t Template) latency(n int) float64 {
	return t.Class.Latency(t.DataGB, n).Seconds()
}

// MinU returns the smallest U ≤ maxU such that k concurrently executing
// member templates on a U-node MPPDB (processor sharing: each k× slower)
// all still meet their SLA. The bool reports feasibility: templates with
// plateauing scale-out may not admit any U — the very problem divergent
// physical designs address.
func MinU(templates []Template, k, maxU int) (int, bool) {
	if k < 1 || len(templates) == 0 {
		return 0, false
	}
	minNodes := 1
	for _, t := range templates {
		if t.RequestedNodes > minNodes {
			minNodes = t.RequestedNodes
		}
	}
	for u := minNodes; u <= maxU; u++ {
		ok := true
		for _, t := range templates {
			if float64(k)*t.latency(u) > t.SLATarget() {
				ok = false
				break
			}
		}
		if ok {
			return u, true
		}
	}
	return 0, false
}

// MinUAligned is MinU under the assumption that every template runs on a
// partition-aligned replica (shuffle removed). Non-linear templates become
// tractable: the component that refused to shrink with U is gone.
func MinUAligned(templates []Template, k, maxU int) (int, bool) {
	if k < 1 || len(templates) == 0 {
		return 0, false
	}
	minNodes := 1
	for _, t := range templates {
		if t.RequestedNodes > minNodes {
			minNodes = t.RequestedNodes
		}
	}
	for u := minNodes; u <= maxU; u++ {
		ok := true
		for _, t := range templates {
			if float64(k)*t.alignedLatency(u) > t.SLATarget() {
				ok = false
				break
			}
		}
		if ok {
			return u, true
		}
	}
	return 0, false
}

// Design is a divergent cluster design for one report-only tenant-group.
type Design struct {
	// A is the number of MPPDBs (= replication factor).
	A int
	// N1 is the largest member's requested node count.
	N1 int
	// U is the upfront-widened tuning MPPDB size.
	U int
	// MaxConcurrency is the number of concurrently active tenants G₀ can
	// absorb without SLA violations.
	MaxConcurrency int
	// Assignment maps each template (by Class.ID + Tenant) to the replica
	// index whose physical design is aligned with it. Replica 0 is G₀.
	Assignment map[string]int
}

// key identifies a template within a group.
func key(t Template) string { return t.Tenant + "/" + t.Class.ID }

// Plan computes a divergent design: it balances templates across the A
// replicas (each replica's partition scheme favours its assigned templates,
// heaviest templates spread first), then finds the minimum U that lets G₀
// absorb extraConcurrency concurrently active tenants beyond the A
// guaranteed by TDD. maxU caps the search.
func Plan(templates []Template, a int, extraConcurrency, maxU int) (*Design, error) {
	if a < 1 {
		return nil, fmt.Errorf("divergent: A=%d", a)
	}
	if len(templates) == 0 {
		return nil, fmt.Errorf("divergent: no templates")
	}
	d := &Design{A: a, Assignment: make(map[string]int, len(templates))}
	for _, t := range templates {
		if t.RequestedNodes > d.N1 {
			d.N1 = t.RequestedNodes
		}
	}

	// Balance templates across replicas by descending unaligned latency on
	// the group MPPDB size: the worst-scaling template gets first pick.
	order := make([]int, len(templates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return templates[order[x]].latency(d.N1) > templates[order[y]].latency(d.N1)
	})
	load := make([]float64, a)
	for _, idx := range order {
		t := templates[idx]
		best := 0
		for r := 1; r < a; r++ {
			if load[r] < load[best] {
				best = r
			}
		}
		d.Assignment[key(t)] = best
		load[best] += t.latency(d.N1)
	}

	// Size G₀: it must carry 1 tenant at SLA speed (TDD's own requirement)
	// plus the requested extra concurrency. Aligned latencies apply only to
	// templates assigned to replica 0; the rest run unaligned on G₀ when
	// they overflow there.
	want := 1 + extraConcurrency
	u := d.N1
	for ; u <= maxU; u++ {
		ok := true
		for _, t := range templates {
			var lat float64
			if d.Assignment[key(t)] == 0 {
				lat = t.alignedLatency(u)
			} else {
				lat = t.latency(u)
			}
			if float64(want)*lat > t.SLATarget() {
				ok = false
				break
			}
		}
		if ok {
			break
		}
	}
	if u > maxU {
		return nil, fmt.Errorf("divergent: no U ≤ %d supports %d concurrent tenants", maxU, want)
	}
	d.U = u
	// Report the actual concurrency the chosen U affords (it may exceed the
	// request when the next feasible U jumps past it).
	d.MaxConcurrency = want
	for {
		ok := true
		for _, t := range templates {
			var lat float64
			if d.Assignment[key(t)] == 0 {
				lat = t.alignedLatency(u)
			} else {
				lat = t.latency(u)
			}
			if float64(d.MaxConcurrency+1)*lat > t.SLATarget() {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		d.MaxConcurrency++
	}
	return d, nil
}

// Replica returns the replica index aligned with the template, or 0 when
// the template is unknown (G₀ is the safe default).
func (d *Design) Replica(tenantID, classID string) int {
	return d.Assignment[tenantID+"/"+classID]
}

// TotalNodes returns the design's node consumption: U + (A−1)·n₁.
func (d *Design) TotalNodes() int { return d.U + (d.A-1)*d.N1 }
