package divergent

import (
	"testing"

	"repro/internal/queries"
)

func tmpl(t *testing.T, classID, tenant string, nodes int) Template {
	t.Helper()
	cl, ok := queries.Default().ByID(classID)
	if !ok {
		t.Fatalf("no class %s", classID)
	}
	return Template{
		Class:          cl,
		Tenant:         tenant,
		DataGB:         100 * float64(nodes),
		RequestedNodes: nodes,
	}
}

func TestMinULinearTemplates(t *testing.T) {
	// Q1 and Q6 scale out nearly linearly: doubling the nodes roughly
	// halves the latency, so k=2 concurrent queries need roughly 2× nodes.
	ts := []Template{tmpl(t, "TPCH-Q1", "a", 4), tmpl(t, "TPCH-Q6", "b", 4)}
	u1, ok := MinU(ts, 1, 64)
	if !ok || u1 != 4 {
		t.Fatalf("MinU(k=1) = %d,%v — one query at requested size must just fit", u1, ok)
	}
	u2, ok := MinU(ts, 2, 64)
	if !ok {
		t.Fatal("k=2 infeasible for linear templates")
	}
	if u2 < 7 || u2 > 16 {
		t.Errorf("MinU(k=2) = %d, want roughly 2× the requested 4 nodes", u2)
	}
	u3, ok := MinU(ts, 3, 128)
	if !ok || u3 <= u2 {
		t.Errorf("MinU(k=3) = %d,%v — must exceed MinU(k=2)=%d", u3, ok, u2)
	}
}

// TestMinUNonLinearInfeasible reproduces the §8 motivation: a plateauing
// template (Q19's shuffle/coordination floor) cannot be fixed by any U —
// extra nodes stop helping — so concurrent processing on G₀ is impossible
// without changing the physical design.
func TestMinUNonLinearInfeasible(t *testing.T) {
	ts := []Template{tmpl(t, "TPCH-Q19", "a", 4)}
	if _, ok := MinU(ts, 3, 256); ok {
		t.Fatal("k=3 for a plateauing template should be infeasible at any U")
	}
	// With an aligned partition scheme the shuffle disappears and the
	// template scales again: a feasible U exists.
	if u, ok := MinUAligned(ts, 3, 256); !ok {
		t.Fatal("aligned k=3 infeasible — divergent design should fix the plateau")
	} else if u <= 4 {
		t.Errorf("aligned MinU = %d, want more than the requested size", u)
	}
}

func TestMinUDegenerate(t *testing.T) {
	if _, ok := MinU(nil, 2, 64); ok {
		t.Error("no templates accepted")
	}
	if _, ok := MinU([]Template{tmpl(t, "TPCH-Q1", "a", 2)}, 0, 64); ok {
		t.Error("k=0 accepted")
	}
	if _, ok := MinUAligned(nil, 2, 64); ok {
		t.Error("aligned: no templates accepted")
	}
	if _, ok := MinUAligned([]Template{tmpl(t, "TPCH-Q1", "a", 2)}, 0, 64); ok {
		t.Error("aligned: k=0 accepted")
	}
}

func TestPlanBalancesAndSizes(t *testing.T) {
	ts := []Template{
		tmpl(t, "TPCH-Q1", "a", 4),
		tmpl(t, "TPCH-Q6", "a", 4),
		tmpl(t, "TPCH-Q19", "b", 4),
		tmpl(t, "TPCDS-Q3", "b", 4),
		tmpl(t, "TPCH-Q12", "c", 4),
		tmpl(t, "TPCDS-Q96", "c", 4),
	}
	d, err := Plan(ts, 3, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if d.A != 3 || d.N1 != 4 {
		t.Errorf("design header: %+v", d)
	}
	if d.U < d.N1 {
		t.Errorf("U = %d below n₁", d.U)
	}
	if d.MaxConcurrency < 2 {
		t.Errorf("MaxConcurrency = %d, want the requested 1+1", d.MaxConcurrency)
	}
	if d.TotalNodes() != d.U+2*d.N1 {
		t.Errorf("TotalNodes = %d", d.TotalNodes())
	}
	// Every template is assigned to a valid replica; assignments spread.
	used := map[int]bool{}
	for _, tp := range ts {
		r := d.Replica(tp.Tenant, tp.Class.ID)
		if r < 0 || r >= d.A {
			t.Fatalf("template %s/%s on replica %d", tp.Tenant, tp.Class.ID, r)
		}
		used[r] = true
	}
	if len(used) < 2 {
		t.Errorf("assignments did not spread: %v", d.Assignment)
	}
	// Unknown template defaults to G₀.
	if d.Replica("nobody", "TPCH-Q1") != 0 {
		t.Error("unknown template should default to replica 0")
	}
}

func TestPlanErrors(t *testing.T) {
	ts := []Template{tmpl(t, "TPCH-Q1", "a", 4)}
	if _, err := Plan(ts, 0, 1, 64); err == nil {
		t.Error("A=0 accepted")
	}
	if _, err := Plan(nil, 3, 1, 64); err == nil {
		t.Error("no templates accepted")
	}
	// Impossible concurrency with a tiny U cap.
	if _, err := Plan(ts, 3, 50, 5); err == nil {
		t.Error("infeasible U cap accepted")
	}
}

// TestPlanUpfrontBeatsReactive pins the §8 claim: for report-only tenants
// the divergent design affords concurrent processing on G₀ (fewer elastic
// scalings) at a modest node premium over the plain TDD design.
func TestPlanUpfrontBeatsReactive(t *testing.T) {
	ts := []Template{
		tmpl(t, "TPCH-Q1", "a", 4),
		tmpl(t, "TPCH-Q12", "b", 4),
		tmpl(t, "TPCDS-Q96", "c", 4),
	}
	d, err := Plan(ts, 3, 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	plain := 3 * 4 // TDD: A·n₁
	if d.TotalNodes() <= plain {
		t.Logf("divergent design is free here (U=%d)", d.U)
	}
	// The premium buys ≥3 concurrent tenants on G₀ vs TDD's 1.
	if d.MaxConcurrency < 3 {
		t.Errorf("MaxConcurrency = %d, want ≥3", d.MaxConcurrency)
	}
	// And it must not be absurd: less than 4× the plain design.
	if d.TotalNodes() > 4*plain {
		t.Errorf("divergent design costs %d nodes vs plain %d", d.TotalNodes(), plain)
	}
}
