package grouping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/epoch"
)

// fig51 reconstructs the six-tenant instance of Figure 5.1, reverse-derived
// from the time-percentage trace in Figure 5.3 (10 epochs, 0-based):
//
//	T1 {0..5}          T2 {6..9}       T3 {1,2,3}
//	T4 {0,4,5,6,7}     T5 {0,3,4,5}    T6 {0,1,2,6,7,8}
//
// With this instance the published trace holds step for step: T3 is seeded
// (least active), T2 joins (1-active 30%→70%), then T5 (2-active →10%),
// then T4 (2-active →60%), then T6 (3-active →30%), and adding T1 would
// drop the TTP at R=3 from 100% to 90% — so T1 is rejected, exactly as in
// Figure 5.3e.
func fig51() *Problem {
	mk := func(id string, spans ...epoch.Span) *Item {
		return &Item{ID: id, Nodes: 4, Spans: epoch.Spans(spans)}
	}
	return &Problem{
		D: 10, R: 3, P: 0.999,
		Items: []*Item{
			mk("T1", epoch.Span{S: 0, E: 6}),
			mk("T2", epoch.Span{S: 6, E: 10}),
			mk("T3", epoch.Span{S: 1, E: 4}),
			mk("T4", epoch.Span{S: 0, E: 1}, epoch.Span{S: 4, E: 8}),
			mk("T5", epoch.Span{S: 0, E: 1}, epoch.Span{S: 3, E: 6}),
			mk("T6", epoch.Span{S: 0, E: 3}, epoch.Span{S: 6, E: 9}),
		},
	}
}

// TestPaperWorkedExample replays the Figure 5.3 trace.
func TestPaperWorkedExample(t *testing.T) {
	p := fig51()
	sol, err := TwoStep(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, sol); err != nil {
		t.Fatal(err)
	}
	if len(sol.Groups) != 2 {
		t.Fatalf("%d groups, want 2 (TG1 = {T2..T6}, TG2 = {T1})", len(sol.Groups))
	}
	g1 := sol.Groups[0]
	// Membership order reproduces the published selection sequence.
	wantOrder := []string{"T3", "T2", "T5", "T4", "T6"}
	if len(g1.Items) != len(wantOrder) {
		t.Fatalf("TG1 has %d members, want 5", len(g1.Items))
	}
	for i, idx := range g1.Items {
		if got := p.Items[idx].ID; got != wantOrder[i] {
			t.Errorf("TG1 member %d = %s, want %s", i, got, wantOrder[i])
		}
	}
	if g1.MaxActive != 3 {
		t.Errorf("TG1 max active = %d, want 3 (thesis: 'the maximum number of active tenants is only three')", g1.MaxActive)
	}
	if g1.TTP != 1.0 {
		t.Errorf("TG1 TTP = %v, want 100%%", g1.TTP)
	}
	g2 := sol.Groups[1]
	if len(g2.Items) != 1 || p.Items[g2.Items[0]].ID != "T1" {
		t.Errorf("TG2 = %v, want just T1", g2.Items)
	}
}

// TestPaperWorkedExampleRejection pins the Fig 5.3e arithmetic directly:
// with TG1 = {T2..T6}, adding T1 drops TTP(R=3) from 100% to 90%.
func TestPaperWorkedExampleRejection(t *testing.T) {
	p := fig51()
	cs := epoch.NewCountSet(p.D)
	for _, id := range []string{"T2", "T3", "T4", "T5", "T6"} {
		for _, it := range p.Items {
			if it.ID == id {
				cs.Add(it.Spans)
			}
		}
	}
	if got := cs.TTP(3); got != 1.0 {
		t.Fatalf("TTP before adding T1 = %v, want 1.0", got)
	}
	var t1 *Item
	for _, it := range p.Items {
		if it.ID == "T1" {
			t1 = it
		}
	}
	tr := cs.Preview(t1.Spans)
	if got := cs.NewTTP(3, tr); got != 0.9 {
		t.Fatalf("TTP if T1 added = %v, want 0.9", got)
	}
}

func randomProblem(rng *rand.Rand, n, d, r int, p float64, sizes []int) *Problem {
	pr := &Problem{D: int64(d), R: r, P: p}
	for i := 0; i < n; i++ {
		var spans epoch.Spans
		pos := int32(0)
		for pos < int32(d) {
			gap := 1 + int32(rng.Intn(d/2+1))
			s := pos + gap
			if s >= int32(d) {
				break
			}
			e := s + 1 + int32(rng.Intn(d/3+1))
			if e > int32(d) {
				e = int32(d)
			}
			spans = append(spans, epoch.Span{S: s, E: e})
			pos = e
		}
		pr.Items = append(pr.Items, &Item{
			ID:    string(rune('A'+i%26)) + string(rune('0'+i/26)),
			Nodes: sizes[rng.Intn(len(sizes))],
			Spans: spans,
		})
	}
	return pr
}

// TestSolversProduceValidSolutions: both heuristics always produce feasible
// partitions on random instances.
func TestSolversProduceValidSolutions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 3+rng.Intn(20), 30+rng.Intn(60), 1+rng.Intn(3), 0.9, []int{2, 4, 8})
		for _, solve := range []func(*Problem) (*Solution, error){TwoStep, FFD} {
			sol, err := solve(p)
			if err != nil {
				t.Log(err)
				return false
			}
			if err := Verify(p, sol); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTwoStepNeverWorseThanOptimalBound: on tiny instances the heuristics
// are sandwiched between the optimum and the trivial one-group-per-tenant
// upper bound.
func TestTwoStepNeverWorseThanOptimalBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 3+rng.Intn(6), 20+rng.Intn(20), 1+rng.Intn(2), 0.9, []int{2, 4})
		opt, err := Exact(p)
		if err != nil {
			t.Log(err)
			return false
		}
		if err := Verify(p, opt); err != nil {
			t.Log(err)
			return false
		}
		two, err := TwoStep(p)
		if err != nil {
			return false
		}
		ffd, err := FFD(p)
		if err != nil {
			return false
		}
		optCost := opt.NodesUsed(p.R)
		trivial := 0
		for _, it := range p.Items {
			trivial += p.R * it.Nodes
		}
		for _, s := range []*Solution{two, ffd} {
			c := s.NodesUsed(p.R)
			if c < optCost {
				t.Logf("seed %d: %s beat the optimum: %d < %d", seed, s.Algorithm, c, optCost)
				return false
			}
			if c > trivial {
				t.Logf("seed %d: %s worse than trivial: %d > %d", seed, s.Algorithm, c, trivial)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTwoStepKeepsInitialGroupsHomogeneous: step 1 guarantees every group
// contains a single node size.
func TestTwoStepKeepsInitialGroupsHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 40, 100, 3, 0.99, []int{2, 4, 8, 16})
	sol, err := TwoStep(p)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range sol.Groups {
		for _, idx := range g.Items {
			if p.Items[idx].Nodes != g.MaxNodes {
				t.Fatalf("group %d mixes %d-node and %d-node tenants",
					gi, p.Items[idx].Nodes, g.MaxNodes)
			}
		}
	}
}

// TestFFDGlobalMixingIsRuinous: the size-oblivious ablation mixes a 16-node
// tenant with 2-node tenants in one bin and pays R·16 for all of them; the
// size-aware FFD baseline (like the two-step heuristic) keeps sizes apart.
func TestFFDGlobalMixingIsRuinous(t *testing.T) {
	p := &Problem{D: 100, R: 1, P: 0.5}
	// Four tenants, pairwise-disjoint tiny activities, sizes 16 and 2.
	for i, n := range []int{16, 2, 2, 2} {
		p.Items = append(p.Items, &Item{
			ID:    string(rune('a' + i)),
			Nodes: n,
			Spans: epoch.Spans{{S: int32(i * 10), E: int32(i*10 + 2)}},
		})
	}
	global, err := FFDGlobal(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, global); err != nil {
		t.Fatal(err)
	}
	// Global FFD puts everything into one bin of max 16 → cost 16 here;
	// on realistic populations where bins cannot absorb everyone, the same
	// mixing explodes the cost (covered by the experiments).
	if got := global.NodesUsed(p.R); got != 16 {
		t.Errorf("FFDGlobal cost = %d, want 16", got)
	}
	ffd, err := FFD(p)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range ffd.Groups {
		for _, idx := range g.Items {
			if p.Items[idx].Nodes != g.MaxNodes {
				t.Fatalf("FFD group %d mixes sizes", gi)
			}
		}
	}
	if got := ffd.NodesUsed(p.R); got != 18 {
		t.Errorf("FFD cost = %d, want 18 (16 + 2, homogeneous bins)", got)
	}
	two, err := TwoStep(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := two.NodesUsed(p.R); got != 18 {
		t.Errorf("TwoStep cost = %d, want 18", got)
	}
}

// TestTwoStepBeatsFFDOnSkewedPopulation reproduces the paper's central
// comparison on a synthetic population: many small tenants plus a few large
// ones, office-hour-style correlated activity. The two-step heuristic must
// save at least as many nodes as FFD.
func TestTwoStepBeatsFFDOnSkewedPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := &Problem{D: 8640, R: 3, P: 0.999} // one day of 10 s epochs
	sizes := []int{2, 2, 2, 2, 4, 4, 8, 16}
	for i := 0; i < 80; i++ {
		// Each tenant is active during a 9-hour "office window" with a few
		// busy intervals inside it.
		window := int32(rng.Intn(5) * 1080) // one of 5 time-zone starts
		var spans epoch.Spans
		pos := window
		for k := 0; k < 6; k++ {
			s := pos + int32(rng.Intn(300))
			e := s + 10 + int32(rng.Intn(200))
			if e > window+3240 || int64(e) > 8640 {
				break
			}
			spans = append(spans, epoch.Span{S: s, E: e})
			pos = e + 10
		}
		p.Items = append(p.Items, &Item{
			ID:    string(rune('A'+i%26)) + string(rune('a'+i/26)),
			Nodes: sizes[rng.Intn(len(sizes))],
			Spans: spans,
		})
	}
	two, err := TwoStep(p)
	if err != nil {
		t.Fatal(err)
	}
	ffd, err := FFD(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, two); err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, ffd); err != nil {
		t.Fatal(err)
	}
	// On small synthetic instances either greedy can get lucky; the paper's
	// 3.6–11.1% advantage is statistical over realistic populations (the
	// experiments package asserts it on generated logs). Here we pin the
	// robust invariants: the two heuristics stay close, and both crush the
	// size-oblivious ablation.
	twoCost, ffdCost := two.NodesUsed(p.R), ffd.NodesUsed(p.R)
	if float64(twoCost) > 1.25*float64(ffdCost) {
		t.Errorf("2-step used %d nodes vs FFD %d — more than 25%% apart", twoCost, ffdCost)
	}
	global, err := FFDGlobal(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, global); err != nil {
		t.Fatal(err)
	}
	if global.NodesUsed(p.R) < twoCost {
		t.Errorf("size-oblivious FFD (%d) beat the 2-step heuristic (%d) on a skewed population",
			global.NodesUsed(p.R), twoCost)
	}
}

func TestProblemValidate(t *testing.T) {
	good := fig51()
	if err := good.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	bad := []*Problem{
		{D: 0, R: 1, P: 0.9},
		{D: 10, R: 0, P: 0.9},
		{D: 10, R: 1, P: 1.5},
		{D: 10, R: 1, P: 0.9, Items: []*Item{{ID: "", Nodes: 1}}},
		{D: 10, R: 1, P: 0.9, Items: []*Item{{ID: "a", Nodes: 0}}},
		{D: 10, R: 1, P: 0.9, Items: []*Item{{ID: "a", Nodes: 1}, {ID: "a", Nodes: 1}}},
		{D: 10, R: 1, P: 0.9, Items: []*Item{{ID: "a", Nodes: 1, Spans: epoch.Spans{{S: 5, E: 20}}}}},
		{D: 10, R: 1, P: 0.9, Items: []*Item{{ID: "a", Nodes: 1, Spans: epoch.Spans{{S: 5, E: 5}}}}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	p := fig51()
	sol, _ := TwoStep(p)
	// Drop an item.
	mut := *sol
	mut.Groups = append([]Group(nil), sol.Groups...)
	mut.Groups[1] = Group{Items: nil}
	if err := Verify(p, &mut); err == nil {
		t.Error("empty group accepted")
	}
	// Duplicate an item.
	mut.Groups = append([]Group(nil), sol.Groups...)
	g0 := sol.Groups[0]
	mut.Groups[1] = Group{Items: []int{g0.Items[0]}, MaxNodes: 4, TTP: 1, MaxActive: 1}
	if err := Verify(p, &mut); err == nil {
		t.Error("duplicated item accepted")
	}
	// Wrong MaxNodes.
	mut.Groups = append([]Group(nil), sol.Groups...)
	mut.Groups[0].MaxNodes = 99
	if err := Verify(p, &mut); err == nil {
		t.Error("wrong MaxNodes accepted")
	}
}

func TestSolutionMetrics(t *testing.T) {
	p := fig51()
	sol, _ := TwoStep(p)
	// Groups: {5 tenants of 4 nodes}, {1 tenant of 4 nodes} at R=3:
	// cost = 12+12 = 24 of 24 requested.
	if got := sol.NodesUsed(3); got != 24 {
		t.Errorf("NodesUsed = %d, want 24", got)
	}
	if got := sol.MeanGroupSize(); got != 3 {
		t.Errorf("MeanGroupSize = %v, want 3", got)
	}
	if got := sol.Effectiveness(p); got != 0 {
		t.Errorf("Effectiveness = %v, want 0 (toy too small to save nodes)", got)
	}
	empty := &Solution{}
	if empty.MeanGroupSize() != 0 {
		t.Error("empty solution group size")
	}
	if (&Solution{}).Effectiveness(&Problem{}) != 0 {
		t.Error("effectiveness of empty problem")
	}
}

func TestExactLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, ExactLimit+1, 20, 1, 0.9, []int{2})
	if _, err := Exact(p); err == nil {
		t.Error("oversized exact instance accepted")
	}
}

// TestExactBeatsOrMatchesHeuristicsExample: a crafted instance where FFD's
// size-mixing is strictly suboptimal and Exact finds the better partition.
func TestExactFindsOptimum(t *testing.T) {
	// Two always-active 16-node tenants and two always-active 2-node
	// tenants, R=1, P=1: every tenant needs its own group (any pairing has
	// 2 active > R in all busy epochs... choose disjoint activity so
	// pairing is feasible and the optimum pairs equal sizes).
	p := &Problem{D: 40, R: 1, P: 1.0}
	p.Items = []*Item{
		{ID: "big1", Nodes: 16, Spans: epoch.Spans{{S: 0, E: 10}}},
		{ID: "big2", Nodes: 16, Spans: epoch.Spans{{S: 10, E: 20}}},
		{ID: "small1", Nodes: 2, Spans: epoch.Spans{{S: 0, E: 10}}},
		{ID: "small2", Nodes: 2, Spans: epoch.Spans{{S: 10, E: 20}}},
	}
	opt, err := Exact(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, opt); err != nil {
		t.Fatal(err)
	}
	// Optimal: {big1,big2} (16) + {small1,small2} (2) = 18.
	if got := opt.NodesUsed(1); got != 18 {
		t.Errorf("optimal cost = %d, want 18", got)
	}
}

func BenchmarkTwoStep200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, 200, 8640, 3, 0.999, []int{2, 4, 8, 16, 32})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TwoStep(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFD200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, 200, 8640, 3, 0.999, []int{2, 4, 8, 16, 32})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFD(p); err != nil {
			b.Fatal(err)
		}
	}
}
