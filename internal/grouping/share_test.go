package grouping

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/epoch"
)

// TestShareValidation: weights must be probabilities strictly below 1.
func TestShareValidation(t *testing.T) {
	p := &Problem{
		Items: []*Item{{ID: "a", Nodes: 1, Spans: epoch.Spans{{S: 0, E: 10}}}},
		D:     100, R: 1, P: 0.9,
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("base: %v", err)
	}
	p.Share = []float64{0.3, 0.1}
	if err := p.Validate(); err != nil {
		t.Fatalf("weights: %v", err)
	}
	p.Share = []float64{1.0}
	if err := p.Validate(); err == nil {
		t.Fatal("weight 1.0 accepted")
	}
	p.Share = []float64{-0.1}
	if err := p.Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// TestSharePacksDenser: two tenants whose overlap fails the plain fuzzy
// capacity test but passes the sharing-credited one must merge into one
// group when weights are set, and must not when they are nil.
func TestSharePacksDenser(t *testing.T) {
	// Both active on [0,120) of 1000 epochs: 120 epochs at count 2.
	items := []*Item{
		{ID: "a", Nodes: 4, Spans: epoch.Spans{{S: 0, E: 120}}},
		{ID: "b", Nodes: 4, Spans: epoch.Spans{{S: 0, E: 120}}},
	}
	base := &Problem{Items: items, D: 1000, R: 1, P: 0.9}
	for _, alg := range []string{"2-step", "ffd"} {
		solve := func(p *Problem) *Solution {
			t.Helper()
			var s *Solution
			var err error
			if alg == "2-step" {
				s, err = Solver{}.TwoStep(p)
			} else {
				s, err = FFD(p)
			}
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if err := Verify(p, s); err != nil {
				t.Fatalf("%s: verify: %v", alg, err)
			}
			return s
		}
		plain := solve(base)
		if got := len(plain.Groups); got != 2 {
			t.Fatalf("%s plain: %d groups, want 2 (TTP 0.88 < 0.9)", alg, got)
		}
		shared := &Problem{Items: items, D: 1000, R: 1, P: 0.9, Share: []float64{0.5}}
		dense := solve(shared)
		if got := len(dense.Groups); got != 1 {
			t.Fatalf("%s shared: %d groups, want 1 (credited TTP 0.94)", alg, got)
		}
		if plain.NodesUsed(base.R) <= dense.NodesUsed(base.R) {
			t.Fatalf("%s: sharing did not save nodes: %d vs %d", alg, plain.NodesUsed(base.R), dense.NodesUsed(base.R))
		}
	}
}

// TestSolverMatchesReferenceShared re-runs the solver-equivalence property
// under sharing weights: the pruned/parallel solver must stay byte-identical
// to the reference when both use the credited capacity test.
func TestSolverMatchesReferenceShared(t *testing.T) {
	sizePools := [][]int{{2}, {2, 4}, {2, 4, 8}}
	for seed := int64(100); seed < 112; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		d := 50 + rng.Intn(400)
		r := 1 + rng.Intn(3)
		pGuar := 0.9 + 0.099*rng.Float64()
		p := randomProblem(rng, n, d, r, pGuar, sizePools[rng.Intn(len(sizePools))])
		p.Share = []float64{0.15, 0.12, 0.1, 0.08}
		want, err := referenceTwoStep(p)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		if err := Verify(p, want); err != nil {
			t.Fatalf("seed %d: reference invalid under sharing: %v", seed, err)
		}
		for _, workers := range []int{1, 4} {
			got, err := Solver{Workers: workers}.TwoStep(p)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(stripTiming(got), stripTiming(want)) {
				t.Errorf("seed %d workers %d: shared-mode solver diverged from reference", seed, workers)
			}
		}
	}
}

// Greedy T_best is NOT monotone under constraint relaxation: on some
// instances the credited test leads the greedy down a worse packing (seed
// 106 above packs 174 vs 168 nodes). The advisor therefore solves both
// tests and keeps the cheaper plan; see advisor.Config.Sharing.
