package grouping

import (
	"fmt"
	"time"

	"repro/internal/epoch"
)

// ExactLimit bounds the instance size Exact accepts. Set partitions grow as
// the Bell numbers; beyond a dozen items even pruned search is hopeless —
// which is the paper's own finding for its MINLP formulation (DIRECT took
// 12 days for 20 tenants).
const ExactLimit = 12

// Exact finds an optimal tenant-group formation by branch-and-bound over set
// partitions. It replaces the paper's MINLP/DIRECT reference solution for
// validating heuristic quality on toy instances (Appendix 9.1).
func Exact(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Items) > ExactLimit {
		return nil, fmt.Errorf("grouping: exact solver limited to %d items, got %d", ExactLimit, len(p.Items))
	}
	start := time.Now()

	type state struct {
		cs       *epoch.CountSet
		items    []int
		maxNodes int
	}
	var groups []*state
	bestCost := 1 << 30
	var best [][]int

	// Process items in descending node order: the largest item of each group
	// is then the first one placed in it, making the group cost fixed at
	// creation — a tight bound for pruning.
	order := make([]int, len(p.Items))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && p.Items[order[j-1]].Nodes < p.Items[order[j]].Nodes; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}

	cost := func() int {
		c := 0
		for _, g := range groups {
			c += p.R * g.maxNodes
		}
		return c
	}

	var rec func(k int)
	rec = func(k int) {
		if cost() >= bestCost {
			return // no placement can lower the cost of existing groups
		}
		if k == len(order) {
			bestCost = cost()
			best = best[:0]
			for _, g := range groups {
				best = append(best, append([]int(nil), g.items...))
			}
			return
		}
		idx := order[k]
		it := p.Items[idx]
		// Try existing groups. Symmetric groups (same contents class) are
		// not deduplicated — instances are tiny.
		for _, g := range groups {
			tr := g.cs.Preview(it.Spans)
			if p.NewTTP(g.cs, tr) < p.P {
				continue
			}
			saved := g.cs
			g.cs = g.cs.Clone()
			g.cs.Add(it.Spans)
			g.items = append(g.items, idx)
			rec(k + 1)
			g.items = g.items[:len(g.items)-1]
			g.cs = saved
		}
		// Open a new group.
		cs := epoch.NewCountSet(p.D)
		cs.Add(it.Spans)
		groups = append(groups, &state{cs: cs, items: []int{idx}, maxNodes: it.Nodes})
		rec(k + 1)
		groups = groups[:len(groups)-1]
	}
	rec(0)

	sol := &Solution{Algorithm: "exact"}
	for _, items := range best {
		cs := epoch.NewCountSet(p.D)
		g := Group{Items: items}
		for _, idx := range items {
			cs.Add(p.Items[idx].Spans)
			if p.Items[idx].Nodes > g.MaxNodes {
				g.MaxNodes = p.Items[idx].Nodes
			}
		}
		g.TTP = p.TTP(cs)
		g.MaxActive = cs.MaxCount()
		sol.Groups = append(sol.Groups, g)
	}
	sol.Elapsed = time.Since(start)
	return sol, nil
}
