package grouping

import (
	"encoding/json"
	"os"
	"testing"
)

// BenchRecord is one solver benchmark's measurements as persisted to
// BENCH_grouping.json by `make bench-grouping`.
type BenchRecord struct {
	Name          string  `json:"name"`
	Iterations    int     `json:"iterations"`
	NsPerOp       int64   `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	Effectiveness float64 `json:"effectiveness,omitempty"`
}

// TestWriteBenchJSON runs the solver-scale benchmarks and writes their
// measurements to the path in BENCH_JSON_OUT. It is skipped unless that
// variable is set (`make bench-grouping` sets it), so the regular test suite
// stays fast. Effectiveness is recorded alongside the timings to document
// that the optimized solver's solution quality is that of the reference
// algorithm — the speedups never trade away consolidation.
func TestWriteBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON_OUT")
	if out == "" {
		t.Skip("BENCH_JSON_OUT not set; run via `make bench-grouping`")
	}
	eff := func(n int) float64 {
		p := scaleProblem(n)
		sol, err := TwoStep(p)
		if err != nil {
			t.Fatal(err)
		}
		return sol.Effectiveness(p)
	}
	var recs []BenchRecord
	for _, bm := range []struct {
		name string
		eff  float64
		run  func(*testing.B)
	}{
		{"BenchmarkTwoStep2000", eff(2000), BenchmarkTwoStep2000},
		{"BenchmarkTwoStep5000", eff(5000), BenchmarkTwoStep5000},
		{"BenchmarkPickBest", 0, BenchmarkPickBest},
	} {
		r := testing.Benchmark(bm.run)
		recs = append(recs, BenchRecord{
			Name:          bm.name,
			Iterations:    r.N,
			NsPerOp:       r.NsPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
			BytesPerOp:    r.AllocedBytesPerOp(),
			Effectiveness: bm.eff,
		})
	}
	buf, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
