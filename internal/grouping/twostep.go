package grouping

import (
	"sort"
	"time"

	"repro/internal/epoch"
)

// TwoStep runs the paper's two-step tenant-grouping heuristic (Algorithm 2).
//
// Step 1 puts tenants requesting the same number of nodes into the same
// initial group — the total node count of a cluster design is dictated by
// its largest tenant, so mixing sizes wastes the smaller tenants' savings.
//
// Step 2 splits each initial group into tenant-groups: starting from an
// empty group, it repeatedly adds the tenant T_best that minimizes the
// increase in time percentage of the maximum number of active tenants
// (ties broken one activity level down, then by least active time, then by
// input order — reproducing the Fig 5.3 trace), until adding T_best would
// drop the group's TTP below P; then it closes the group and opens the next.
// Note that on an empty group this selection rule degenerates to "insert the
// least active tenant first", exactly as the thesis describes.
func TwoStep(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	sol := &Solution{Algorithm: "2-step"}

	// Step 1: initial groups by node count, processed in descending size
	// order for deterministic output.
	bySize := make(map[int][]int)
	for i, it := range p.Items {
		bySize[it.Nodes] = append(bySize[it.Nodes], i)
	}
	sizes := make([]int, 0, len(bySize))
	for n := range bySize {
		sizes = append(sizes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))

	// Step 2 per initial group.
	for _, n := range sizes {
		remaining := append([]int(nil), bySize[n]...)
		for len(remaining) > 0 {
			g, rest := packOneGroup(p, remaining)
			sol.Groups = append(sol.Groups, g)
			remaining = rest
		}
	}
	sol.Elapsed = time.Since(start)
	return sol, nil
}

// packOneGroup fills a single tenant-group from the remaining items of one
// initial group and returns it together with the items left over.
func packOneGroup(p *Problem, remaining []int) (Group, []int) {
	cs := epoch.NewCountSet(p.D)
	var members []int
	for len(remaining) > 0 {
		best := pickBest(p, cs, remaining)
		it := p.Items[remaining[best]]
		tr := cs.Preview(it.Spans)
		if len(members) > 0 && cs.NewTTP(p.R, tr) < p.P {
			break // Algorithm 2 line 9: T_best no longer fits; close the group.
		}
		// The first member always enters: a single tenant has max count 1 ≤ R.
		members = append(members, remaining[best])
		cs.Add(it.Spans)
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	maxNodes := 0
	for _, idx := range members {
		if p.Items[idx].Nodes > maxNodes {
			maxNodes = p.Items[idx].Nodes
		}
	}
	return Group{
		Items:     members,
		MaxNodes:  maxNodes,
		TTP:       cs.TTP(p.R),
		MaxActive: cs.MaxCount(),
	}, remaining
}

// pickBest returns the index within remaining of T_best under the paper's
// selection rule: lexicographically smallest resulting active-count
// histogram read from the top (first minimize the new maximum, then the
// time share at the maximum, then one level down, …), breaking full ties by
// least active time and finally by position.
func pickBest(p *Problem, cs *epoch.CountSet, remaining []int) int {
	best := 0
	var bestHist []int64
	var bestActive int64
	for i, idx := range remaining {
		it := p.Items[idx]
		tr := cs.Preview(it.Spans)
		h := cs.NewHist(tr)
		if bestHist == nil {
			best, bestHist, bestActive = i, h, it.ActiveEpochs()
			continue
		}
		c := epoch.CompareNewHists(h, bestHist)
		if c < 0 || (c == 0 && it.ActiveEpochs() < bestActive) {
			best, bestHist, bestActive = i, h, it.ActiveEpochs()
		}
	}
	return best
}
