package grouping

import (
	"sort"
	"sync"
	"time"

	"repro/internal/epoch"
)

// TwoStep runs the paper's two-step tenant-grouping heuristic (Algorithm 2)
// with the default serial Solver.
//
// Step 1 puts tenants requesting the same number of nodes into the same
// initial group — the total node count of a cluster design is dictated by
// its largest tenant, so mixing sizes wastes the smaller tenants' savings.
//
// Step 2 splits each initial group into tenant-groups: starting from an
// empty group, it repeatedly adds the tenant T_best that minimizes the
// increase in time percentage of the maximum number of active tenants
// (ties broken one activity level down, then by least active time, then by
// input order — reproducing the Fig 5.3 trace), until adding T_best would
// drop the group's TTP below P; then it closes the group and opens the next.
// Note that on an empty group this selection rule degenerates to "insert the
// least active tenant first", exactly as the thesis describes.
func TwoStep(p *Problem) (*Solution, error) { return Solver{}.TwoStep(p) }

// Solver configures the scalable T_best search. The zero value is the serial
// solver; every configuration produces output byte-identical to the
// reference implementation (reference.go) — the optimizations below only
// change how fast T_best is found, never which tenant it is:
//
//   - candidates are scanned in ascending active-epoch order and the scan
//     short-circuits on the first zero-overlap candidate, whose resulting
//     histogram is unbeatable under the top-down lexicographic rule;
//   - a candidate's transition is cached across insertions and only
//     recomputed when its spans overlap the tenant just committed (the only
//     event that can change it), so steady-state rounds are comparison-only;
//   - fresh previews abort as soon as their partial transition already loses
//     to the incumbent at the top histogram levels (PreviewBounded), and the
//     partial bound is remembered so provably-losing candidates are skipped
//     without another walk;
//   - all transitions live in per-candidate scratch buffers owned by the
//     search, so pickBest performs no steady-state heap allocations;
//   - with Workers > 1, candidate evaluation is sharded across a worker pool
//     with a deterministic lowest-position merge, and independent size
//     classes are solved concurrently.
type Solver struct {
	// Workers bounds the solver's parallelism. 0 or 1 runs serially; larger
	// values shard candidate evaluation and solve size classes concurrently.
	Workers int
}

// minParallelScan is the candidate count below which sharding a pickBest scan
// across workers costs more than it saves.
const minParallelScan = 96

// minShardLen keeps shards large enough that the per-shard dispatch overhead
// stays amortized.
const minShardLen = 32

// TwoStep solves p under the solver's configuration.
func (s Solver) TwoStep(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	sol := &Solution{Algorithm: "2-step"}
	workers := s.Workers
	if workers < 1 {
		workers = 1
	}

	// Step 1: initial groups by node count, processed in descending size
	// order for deterministic output.
	bySize := make(map[int][]int)
	for i, it := range p.Items {
		bySize[it.Nodes] = append(bySize[it.Nodes], i)
	}
	sizes := sortedSizesDesc(bySize)

	// Step 2 per initial group. Size classes are independent subproblems:
	// solve them concurrently and splice the per-class groups back together
	// in the same descending-size order the serial loop would have produced.
	classGroups := make([][]Group, len(sizes))
	if workers > 1 && len(sizes) > 1 {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for ci, n := range sizes {
			wg.Add(1)
			sem <- struct{}{}
			go func(ci int, items []int) {
				defer wg.Done()
				classGroups[ci] = solveClass(p, items, workers)
				<-sem
			}(ci, bySize[n])
		}
		wg.Wait()
	} else {
		for ci, n := range sizes {
			classGroups[ci] = solveClass(p, bySize[n], workers)
		}
	}
	for _, gs := range classGroups {
		sol.Groups = append(sol.Groups, gs...)
	}
	sol.Elapsed = time.Since(start)
	return sol, nil
}

// sortedSizesDesc returns the node-count keys in descending order.
func sortedSizesDesc(bySize map[int][]int) []int {
	sizes := make([]int, 0, len(bySize))
	for n := range bySize {
		sizes = append(sizes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// finishGroup assembles a Group from its committed members and count set.
func finishGroup(p *Problem, cs *epoch.CountSet, members []int) Group {
	maxNodes := 0
	for _, idx := range members {
		if p.Items[idx].Nodes > maxNodes {
			maxNodes = p.Items[idx].Nodes
		}
	}
	return Group{
		Items:     members,
		MaxNodes:  maxNodes,
		TTP:       p.TTP(cs),
		MaxActive: cs.MaxCount(),
	}
}

// solveClass runs step 2 over one size-homogeneous initial group.
func solveClass(p *Problem, items []int, workers int) []Group {
	se := newSearch(p, items, workers)
	defer se.close()
	// order holds the positions (into se.cands) still unassigned.
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	var groups []Group
	for len(order) > 0 {
		var g Group
		g, order = se.packOneGroup(order)
		groups = append(groups, g)
	}
	return groups
}

// Cache states of a candidate's transition.
const (
	cacheNone    = uint8(iota) // no usable information; must preview
	cacheFull    = uint8(1)    // tr is the candidate's exact transition
	cacheAborted = uint8(2)    // a bounded preview aborted; (pM, pU) lower-bounds the final key
)

// candidate is one unassigned tenant of a size class, with its cached
// evaluation state. A candidate's transition against the group under
// construction can only change when the group gains a tenant whose spans
// overlap the candidate's, so between such events the cached transition (or
// the cached abort bound) is reused as-is.
type candidate struct {
	idx    int   // index into Problem.Items
	active int64 // ActiveEpochs, the scan sort key
	spans  epoch.Spans
	sLo    int32 // spans bounding box [sLo, sHi); sLo == sHi when spans empty
	sHi    int32

	state uint8
	buf   []int64          // scratch backing tr.Up, owned by this candidate
	tr    epoch.Transition // valid when state == cacheFull
	// top is tr's highest level with mass (-1 when tr raises nothing), kept
	// current alongside tr: patches only move mass upward, so the new top is
	// the max of the old one and the highest level a patch touched.
	top int
	// (pM, pU) is the candidate's key head in drift-free form (see
	// CountSet.NewTopUp) — the new maximum and the epochs raised into it.
	// When state == cacheFull it is exact, refreshed in O(1) after every
	// commit from top and the patched transition. When state == cacheAborted
	// it is the head at the moment the candidate was last evaluated (a
	// bounded preview that gave up, or a head-of-key loss that demoted it);
	// both components are then monotone lower bounds on the candidate's
	// future key head for the rest of the group, because counts only grow
	// while tenants join: the maximum cannot shrink, and an epoch raised into
	// the maximum can only leave it by pushing the maximum higher. The pair
	// therefore keeps skipping the candidate across rounds without any
	// per-Add maintenance.
	pM int
	pU int64
}

// byActive sorts candidates ascending by active epochs, stable on input
// order (a concrete sort.Interface: the reflection-based sort.SliceStable
// showed up in solver profiles).
type byActive []candidate

func (s byActive) Len() int           { return len(s) }
func (s byActive) Less(a, b int) bool { return s[a].active < s[b].active }
func (s byActive) Swap(a, b int)      { s[a], s[b] = s[b], s[a] }

// pickResult is one shard's best candidate. tr aliases the winning
// candidate's buffer and stays valid until that candidate is re-previewed.
type pickResult struct {
	ok  bool
	pos int              // position in the scanned order slice
	tr  epoch.Transition // the winning candidate's transition
}

// pickJob asks a pool worker to scan one shard of the candidate order.
type pickJob struct {
	order []int
	base  int // offset of order within the full candidate list
	shard int
	wg    *sync.WaitGroup
}

// search is the per-class T_best search state: the group under construction's
// count function, the candidates with their cached transitions, and (when
// parallel) a persistent worker pool fed one shard per pickBest round.
type search struct {
	p       *Problem
	cs      *epoch.CountSet
	cands   []candidate
	results []pickResult
	jobs    chan pickJob
}

func newSearch(p *Problem, items []int, workers int) *search {
	se := &search{
		p:       p,
		cs:      epoch.NewCountSet(p.D),
		cands:   make([]candidate, len(items)),
		results: make([]pickResult, workers),
	}
	for i, idx := range items {
		it := p.Items[idx]
		c := candidate{idx: idx, active: it.ActiveEpochs(), spans: it.Spans}
		if n := len(it.Spans); n > 0 {
			c.sLo, c.sHi = it.Spans[0].S, it.Spans[n-1].E
		}
		se.cands[i] = c
	}
	// Ascending active-epoch order, stable on the input order. This is what
	// makes the pruning sound: the first zero-overlap candidate found is the
	// globally best one (any candidate scanned earlier is at most as
	// active), and histogram ties can only happen between equally active
	// candidates, where the stable order reproduces the reference
	// first-in-input-order tie-break.
	sort.Stable(byActive(se.cands))
	if workers > 1 {
		se.jobs = make(chan pickJob)
		for w := 0; w < workers; w++ {
			go func() {
				for job := range se.jobs {
					se.results[job.shard] = se.scan(job.order, job.base)
					job.wg.Done()
				}
			}()
		}
	}
	return se
}

// close releases the worker pool.
func (se *search) close() {
	if se.jobs != nil {
		close(se.jobs)
	}
}

// packOneGroup fills a single tenant-group from the order slice and returns
// it together with the candidates left over: per-round T_best scans over the
// candidate list (sharded across the worker pool when one is configured and
// the list is large enough), with every cached-exact transition repaired
// in place after each commit.
func (se *search) packOneGroup(order []int) (Group, []int) {
	se.cs.Reset()
	se.seed(order)
	var members []int
	for len(order) > 0 {
		best, tr := se.pickBest(order)
		c := &se.cands[order[best]]
		if len(members) > 0 && se.p.NewTTP(se.cs, tr) < se.p.P {
			break // Algorithm 2 line 9: T_best no longer fits; close the group.
		}
		// The first member always enters: a single tenant has max count 1 ≤ R.
		members = append(members, c.idx)
		order = se.commit(best, order)
	}
	return finishGroup(se.p, se.cs, members), order
}

// seed primes every candidate's cache against the empty count function, where
// its transition is trivially exact: all of its active epochs rise 0 → 1.
// Starting exact means the incremental patches after each Add keep every
// transition exact for the whole group — the hot path never runs a full
// preview walk at all.
func (se *search) seed(order []int) {
	for _, pos := range order {
		c := &se.cands[pos]
		if cap(c.buf) < 1 {
			c.buf = make([]int64, 1)
		}
		c.buf = c.buf[:1]
		c.buf[0] = c.active
		c.tr = epoch.Transition{Up: c.buf}
		c.state = cacheFull
		if c.active > 0 {
			c.top, c.pM, c.pU = 0, 1, c.active
		} else {
			c.top, c.pM, c.pU = -1, 0, 0
		}
	}
}

// commit adds order[best] to the group under construction, removes it from
// order, and repairs the surviving candidates' caches. Committing changes the
// count function only inside the new member's spans, so a cached full
// transition is repaired by patching the overlap region (skipped outright
// when the bounding boxes are disjoint) instead of re-previewed, and its key
// head is refreshed in O(1) from the patched top level and the possibly-
// raised group maximum. Cached abort bounds stay valid untouched: counts only
// grow within a group, so the (new max, epochs at max) key they lower-bound
// only grows too.
func (se *search) commit(best int, order []int) []int {
	c := &se.cands[order[best]]
	se.cs.Add(c.spans)
	order = append(order[:best], order[best+1:]...)
	if added := c.spans; len(added) > 0 {
		aLo, aHi := added[0].S, added[len(added)-1].E
		mc := se.cs.MaxCount()
		for _, pos := range order {
			cc := &se.cands[pos]
			if cc.state != cacheFull {
				continue
			}
			if cc.sHi > aLo && cc.sLo < aHi {
				var mt int
				cc.tr, mt = se.cs.PatchTransition(cc.spans, added, cc.tr)
				cc.buf = cc.tr.Up
				if mt > cc.top {
					cc.top = mt
				}
			}
			pm := mc
			if cc.top+1 > pm {
				pm = cc.top + 1
			}
			cc.pM, cc.pU = pm, 0
			if pm >= 1 && pm-1 < len(cc.tr.Up) {
				cc.pU = cc.tr.Up[pm-1]
			}
		}
	}
	return order
}

// pickBest returns the position within order of T_best, together with its
// transition (so the caller never re-previews the winner).
func (se *search) pickBest(order []int) (int, epoch.Transition) {
	shards := len(se.results)
	if n := len(order) / minShardLen; shards > n {
		shards = n
	}
	if se.jobs == nil || shards < 2 || len(order) < minParallelScan {
		res := se.scan(order, 0)
		return res.pos, res.tr
	}
	// Shard the candidate list contiguously: shard i scans positions
	// [i·chunk, (i+1)·chunk). Each shard's scan is exact over its range, and
	// the merge below visits shards in ascending position order, so ties
	// resolve to the lowest position exactly as a single serial scan would.
	chunk := (len(order) + shards - 1) / shards
	var wg sync.WaitGroup
	wg.Add(shards)
	for i := 0; i < shards; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(order) {
			hi = len(order)
		}
		se.jobs <- pickJob{order: order[lo:hi], base: lo, shard: i, wg: &wg}
	}
	wg.Wait()
	best := -1
	for i := 0; i < shards; i++ {
		if !se.results[i].ok {
			continue
		}
		if best < 0 || se.cs.CompareTransitions(se.results[i].tr, se.results[best].tr) < 0 {
			best = i
		}
	}
	return se.results[best].pos, se.results[best].tr
}

// scan finds T_best within one shard of the candidate order. base is the
// shard's offset in the full list; the returned pos is absolute.
//
// The incumbent is tracked as (bM, bT): its resulting maximum active count
// and the epoch share at that maximum — the head of the comparison key. Both
// quantities of any candidate's partial transition only grow as its preview
// walk proceeds, so a candidate whose cached or partial key already exceeds
// (bM, bT) can be discarded without finishing (or even starting) its walk.
func (se *search) scan(order []int, base int) pickResult {
	cs := se.cs
	var res pickResult
	var bestMax int
	var bestUp int64

	// Pass 1: cached-exact candidates only — O(1) key reads, no walks. This
	// builds the strongest available incumbent before any preview runs, so
	// pass 2 can skip (or shallowly abort) nearly every stale candidate
	// instead of re-walking it against a still-weak early incumbent.
	for i, pos := range order {
		c := &se.cands[pos]
		if c.state != cacheFull {
			continue
		}
		if c.top <= 0 {
			// Zero overlap is unbeatable: a non-zero-overlap incumbent raised
			// some epoch past count 1, so its histogram is strictly larger at
			// some level ≥ 2 that this candidate leaves untouched; and among
			// zero-overlap candidates the ascending scan order meets the
			// winner (least active, then first in input order) first. Such
			// candidates are never demoted (their key head is minimal), so
			// pass 1 always sees them.
			return pickResult{ok: true, pos: base + i, tr: c.tr}
		}
		// The candidate's exact key head, maintained by the patch loop.
		cM, cU := c.pM, c.pU
		if !res.ok {
			res = pickResult{ok: true, pos: base + i, tr: c.tr}
			bestMax, bestUp = cM, cU
			continue
		}
		// Head-of-key rejection before the full comparison. The loser is
		// demoted to the bounded state: its exact head is a valid lower
		// bound on its key for the rest of the group (keys only grow), so
		// it can be skipped in O(1) next round and — crucially — no longer
		// needs to be patched after every Add. It pays a fresh bounded
		// preview if it ever becomes competitive again.
		if cM > bestMax || (cM == bestMax && cU > bestUp) {
			c.state = cacheAborted
			c.pM, c.pU = cM, cU
			continue
		}
		if cs.CompareTransitions(c.tr, res.tr) < 0 {
			res.pos, res.tr = base+i, c.tr
			bestMax, bestUp = cM, cU
		}
		// On a tie the incumbent stands: the ascending scan meets candidates
		// in input order — the reference tie-break.
	}

	// Pass 2: stale candidates, evaluated against the pass-1 incumbent.
	for i, pos := range order {
		c := &se.cands[pos]
		if c.state == cacheFull {
			continue
		}
		if res.ok && (c.pM > bestMax || (c.pM == bestMax && c.pU > bestUp)) {
			// The remembered partial key still exceeds the incumbent's: the
			// candidate's final key can only be larger. Skip without a walk.
			continue
		}
		bm, bt := bestMax, bestUp
		if !res.ok {
			bm = -1 // no incumbent yet: the preview must run to completion
		}
		tr, cM, cU, ok := cs.PreviewBounded(c.spans, c.buf, bm, bt)
		c.buf = tr.Up
		c.tr = tr
		if !ok {
			// Remember the partial key. It strictly exceeds the incumbent
			// bound (that is why the walk aborted), so it is stronger than
			// whatever bound previously failed to skip this candidate.
			c.state = cacheAborted
			c.pM, c.pU = cM, cU
			continue
		}
		c.state = cacheFull
		c.top = tr.Top()
		c.pM, c.pU = cM, cU
		if !res.ok {
			res = pickResult{ok: true, pos: base + i, tr: tr}
			bestMax, bestUp = cM, cU
			continue
		}
		if cM > bestMax || (cM == bestMax && cU > bestUp) {
			c.state = cacheAborted
			c.pM, c.pU = cM, cU
			continue
		}
		// Unlike pass 1, a tie here must fall to whichever candidate comes
		// first in scan-position order — the incumbent may sit at a higher
		// position than this pass-2 candidate.
		if cmp := cs.CompareTransitions(c.tr, res.tr); cmp < 0 || (cmp == 0 && base+i < res.pos) {
			res.pos, res.tr = base+i, c.tr
			bestMax, bestUp = cM, cU
		}
	}
	return res
}
