package grouping

import (
	"math/rand"
	"testing"
)

// scaleProblem builds the benchmark population used by the solver-scale
// benchmarks: n tenants over one day of 10 s epochs with the full size mix.
func scaleProblem(n int) *Problem {
	rng := rand.New(rand.NewSource(1))
	return randomProblem(rng, n, 8640, 3, 0.999, []int{2, 4, 8, 16, 32})
}

func benchTwoStep(b *testing.B, n int) {
	p := scaleProblem(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TwoStep(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoStep2000(b *testing.B) { benchTwoStep(b, 2000) }
func BenchmarkTwoStep5000(b *testing.B) { benchTwoStep(b, 5000) }

// BenchmarkPickBest isolates one steady-state T_best scan: the largest size
// class of the 2000-tenant population with a part-built group, measured per
// pickBest call. The scan must be allocation-free — every transition lives in
// candidate-owned scratch buffers, so allocs/op is the headline number here.
func BenchmarkPickBest(b *testing.B) {
	p := scaleProblem(2000)
	bySize := make(map[int][]int)
	for i, it := range p.Items {
		bySize[it.Nodes] = append(bySize[it.Nodes], i)
	}
	var items []int
	for _, is := range bySize {
		if len(is) > len(items) {
			items = is
		}
	}
	se := newSearch(p, items, 1)
	defer se.close()
	order := make([]int, len(se.cands))
	for i := range order {
		order[i] = i
	}
	se.cs.Reset()
	se.seed(order)
	// Part-build a group so the scan faces a realistic count function, then
	// run one unmeasured scan to warm the preview scratch buffers.
	for k := 0; k < 8 && len(order) > 1; k++ {
		best, _ := se.pickBest(order)
		order = se.commit(best, order)
	}
	se.pickBest(order)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se.pickBest(order)
	}
}
