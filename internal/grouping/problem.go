// Package grouping solves the tenant-grouping optimization at the core of
// Thrifty (thesis §5 and Appendix 9.1): the Largest Item Vector Bin Packing
// Problem with Fuzzy Capacity (LIVBPwFC).
//
// An item is a tenant, characterized by (Aᵢ, nᵢ): its epoch-quantized
// activity vector and its requested node count. A bin is a tenant-group with
// the fuzzy capacity constraint that at least P% of epochs have at most R
// concurrently active member tenants (R is the replication factor; under
// the tenant-driven design a group is served by A = R MPPDBs, so up to R
// active tenants can each have a dedicated MPPDB). The objective is to
// minimize Σ over groups of R × (largest member's node count) — the number
// of machine nodes the group's cluster design consumes.
//
// Three solvers are provided: the paper's two-step heuristic (Algorithm 2),
// the First-Fit-Decreasing baseline it is evaluated against, and an exact
// branch-and-bound for tiny instances (the paper's MINLP-via-DIRECT
// reference, which took 12 days for 20 tenants, is replaced by exhaustive
// search over set partitions with pruning).
package grouping

import (
	"fmt"
	"time"

	"repro/internal/epoch"
)

// Item is one tenant in LIVBPwFC form.
type Item struct {
	// ID identifies the tenant.
	ID string
	// Nodes is nᵢ, the tenant's requested node count.
	Nodes int
	// Spans is the tenant's epoch-quantized activity Aᵢ.
	Spans epoch.Spans
}

// ActiveEpochs returns the number of active epochs (|Aᵢ|).
func (it *Item) ActiveEpochs() int64 { return it.Spans.Len() }

// Problem is one LIVBPwFC instance.
type Problem struct {
	// Items are the tenants to pack.
	Items []*Item
	// D is the number of epochs in the horizon.
	D int64
	// R is the replication factor (bin capacity vector ⟨R,…,R⟩).
	R int
	// P is the performance SLA guarantee in [0,1]: the fraction of epochs
	// that must have at most R active tenants per group.
	P float64
	// Share, when non-nil, relaxes the fuzzy-capacity test for shared-work
	// execution: an epoch with R+1+i active tenants counts only (1−Share[i])
	// against the violation budget, because the executor merges same-class
	// concurrent queries into one shared scan (queries.ShareModel derives
	// the weights from the catalog's class profiles). Nil reproduces the
	// paper's test byte-identically. Weights do not change the T_best
	// search order — only which additions are deemed to fit.
	Share []float64
}

// TTP returns the capacity metric of a group's count set under the
// problem's test: the plain TTP at threshold R, or the sharing-credited
// TTPShare when Share is set.
func (p *Problem) TTP(cs *epoch.CountSet) float64 {
	if len(p.Share) == 0 {
		return cs.TTP(p.R)
	}
	return cs.TTPShare(p.R, p.Share)
}

// NewTTP returns the capacity metric after applying tr, under the
// problem's test (see TTP).
func (p *Problem) NewTTP(cs *epoch.CountSet, tr epoch.Transition) float64 {
	if len(p.Share) == 0 {
		return cs.NewTTP(p.R, tr)
	}
	return cs.NewTTPShare(p.R, p.Share, tr)
}

// Validate checks instance consistency.
func (p *Problem) Validate() error {
	if p.D <= 0 {
		return fmt.Errorf("grouping: D=%d", p.D)
	}
	if p.R < 1 {
		return fmt.Errorf("grouping: replication factor R=%d", p.R)
	}
	if p.P < 0 || p.P > 1 {
		return fmt.Errorf("grouping: P=%v outside [0,1]", p.P)
	}
	for i, w := range p.Share {
		if w < 0 || w >= 1 {
			return fmt.Errorf("grouping: share weight [%d]=%v outside [0,1)", i, w)
		}
	}
	seen := make(map[string]bool, len(p.Items))
	for i, it := range p.Items {
		if it.ID == "" {
			return fmt.Errorf("grouping: item %d has empty ID", i)
		}
		if seen[it.ID] {
			return fmt.Errorf("grouping: duplicate item %q", it.ID)
		}
		seen[it.ID] = true
		if it.Nodes < 1 {
			return fmt.Errorf("grouping: item %q requests %d nodes", it.ID, it.Nodes)
		}
		if !it.Spans.Valid() {
			return fmt.Errorf("grouping: item %q has invalid spans", it.ID)
		}
		for _, s := range it.Spans {
			if s.S < 0 || int64(s.E) > p.D {
				return fmt.Errorf("grouping: item %q span [%d,%d) outside [0,%d)", it.ID, s.S, s.E, p.D)
			}
		}
	}
	return nil
}

// RequestedNodes returns Σ nᵢ over all items.
func (p *Problem) RequestedNodes() int {
	n := 0
	for _, it := range p.Items {
		n += it.Nodes
	}
	return n
}

// Group is one tenant-group of a solution.
type Group struct {
	// Items indexes into Problem.Items.
	Items []int
	// MaxNodes is the largest member's node count; the group's cluster
	// design uses R MPPDBs of MaxNodes nodes each.
	MaxNodes int
	// TTP is the group's total time percentage at threshold R, in [0,1].
	TTP float64
	// MaxActive is the peak number of concurrently active members.
	MaxActive int
}

// Cost returns the machine nodes the group consumes under the tenant-driven
// design: R MPPDBs (including the tuning MPPDB G₀ at U = n₁) of MaxNodes
// nodes each.
func (g *Group) Cost(r int) int { return r * g.MaxNodes }

// Solution is a complete tenant-group formation.
type Solution struct {
	// Algorithm names the solver that produced the solution.
	Algorithm string
	// Groups is the partition of the problem's items.
	Groups []Group
	// Elapsed is the solver's wall-clock running time.
	Elapsed time.Duration
}

// NodesUsed returns the total machine nodes consumed.
func (s *Solution) NodesUsed(r int) int {
	n := 0
	for i := range s.Groups {
		n += s.Groups[i].Cost(r)
	}
	return n
}

// MeanGroupSize returns the average number of tenants per group (the
// Fig 7.x(b) metric).
func (s *Solution) MeanGroupSize() float64 {
	if len(s.Groups) == 0 {
		return 0
	}
	n := 0
	for i := range s.Groups {
		n += len(s.Groups[i].Items)
	}
	return float64(n) / float64(len(s.Groups))
}

// Effectiveness returns the consolidation effectiveness against the problem:
// the fraction of requested nodes saved (§7.3: "a 80% consolidation
// effectiveness means that if the tenants all together request 10000 machine
// nodes, Thrifty can serve all of them using 2000 nodes only").
func (s *Solution) Effectiveness(p *Problem) float64 {
	req := p.RequestedNodes()
	if req == 0 {
		return 0
	}
	return 1 - float64(s.NodesUsed(p.R))/float64(req)
}

// SolutionFromMembers re-expresses an explicit assignment of item IDs to
// groups as a Solution, recomputing every group's statistics. The online
// control loop uses it to audit its live, incrementally maintained
// partition against the LIVBPwFC constraint with the same Verify the
// offline solvers answer to.
func SolutionFromMembers(p *Problem, groups [][]string, algorithm string) (*Solution, error) {
	idx := make(map[string]int, len(p.Items))
	for i, it := range p.Items {
		idx[it.ID] = i
	}
	sol := &Solution{Algorithm: algorithm}
	for gi, members := range groups {
		if len(members) == 0 {
			return nil, fmt.Errorf("grouping: member group %d is empty", gi)
		}
		g := Group{}
		cs := epoch.NewCountSet(p.D)
		for _, id := range members {
			i, ok := idx[id]
			if !ok {
				return nil, fmt.Errorf("grouping: member %q is not a problem item", id)
			}
			g.Items = append(g.Items, i)
			cs.Add(p.Items[i].Spans)
			if p.Items[i].Nodes > g.MaxNodes {
				g.MaxNodes = p.Items[i].Nodes
			}
		}
		g.TTP = p.TTP(cs)
		g.MaxActive = cs.MaxCount()
		sol.Groups = append(sol.Groups, g)
	}
	return sol, nil
}

// Verify checks that the solution is a valid partition of the problem's
// items and that every group satisfies the fuzzy capacity constraint; it
// also recomputes each group's reported statistics.
func Verify(p *Problem, s *Solution) error {
	if err := p.Validate(); err != nil {
		return err
	}
	used := make([]bool, len(p.Items))
	for gi := range s.Groups {
		g := &s.Groups[gi]
		if len(g.Items) == 0 {
			return fmt.Errorf("grouping: group %d is empty", gi)
		}
		cs := epoch.NewCountSet(p.D)
		maxNodes := 0
		for _, idx := range g.Items {
			if idx < 0 || idx >= len(p.Items) {
				return fmt.Errorf("grouping: group %d references item %d", gi, idx)
			}
			if used[idx] {
				return fmt.Errorf("grouping: item %d in multiple groups", idx)
			}
			used[idx] = true
			cs.Add(p.Items[idx].Spans)
			if p.Items[idx].Nodes > maxNodes {
				maxNodes = p.Items[idx].Nodes
			}
		}
		ttp := p.TTP(cs)
		if ttp < p.P-1e-12 {
			return fmt.Errorf("grouping: group %d TTP %.6f < P %.6f", gi, ttp, p.P)
		}
		if g.MaxNodes != maxNodes {
			return fmt.Errorf("grouping: group %d MaxNodes %d, recomputed %d", gi, g.MaxNodes, maxNodes)
		}
		if diff := g.TTP - ttp; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("grouping: group %d TTP %.9f, recomputed %.9f", gi, g.TTP, ttp)
		}
		if g.MaxActive != cs.MaxCount() {
			return fmt.Errorf("grouping: group %d MaxActive %d, recomputed %d", gi, g.MaxActive, cs.MaxCount())
		}
	}
	for i, u := range used {
		if !u {
			return fmt.Errorf("grouping: item %d (%s) unassigned", i, p.Items[i].ID)
		}
	}
	return nil
}
