package grouping

import (
	"sort"
	"time"

	"repro/internal/epoch"
)

// FFD runs the First-Fit-Decreasing baseline the paper evaluates against
// (§5, citing Panigrahy et al.'s study of vector bin packing heuristics):
// items are sorted by a scalar size and inserted into the first bin that
// still satisfies the fuzzy capacity constraint, opening a new bin when none
// fits.
//
// Two concretizations matter here. The classic scalar for d-dimensional
// items — the product of the dimension values — degenerates to zero on 0/1
// activity vectors, so we use the natural analogue, total active epochs.
// And the bins must be size-homogeneous: the paper reports FFD within
// 3.6–11.1% of the two-step heuristic, which is only possible if FFD, too,
// packs tenants of equal node counts together (a size-oblivious FFD pays
// R·max(nᵢ) for every mixed bin and loses 40+ percentage points of
// effectiveness — see TestFFDGlobalMixingIsRuinous). What the baseline
// lacks, relative to Algorithm 2, is the activity-aware T_best selection:
// it considers items in fixed decreasing-activity order and never looks at
// how a candidate's epochs interleave with the bin's.
func FFD(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	sol := &Solution{Algorithm: "FFD"}

	bySize := make(map[int][]int)
	for i, it := range p.Items {
		bySize[it.Nodes] = append(bySize[it.Nodes], i)
	}
	sizes := make([]int, 0, len(bySize))
	for n := range bySize {
		sizes = append(sizes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))

	for _, size := range sizes {
		order := append([]int(nil), bySize[size]...)
		sort.SliceStable(order, func(a, b int) bool {
			return p.Items[order[a]].ActiveEpochs() > p.Items[order[b]].ActiveEpochs()
		})
		type bin struct {
			cs    *epoch.CountSet
			items []int
		}
		var bins []*bin
		for _, idx := range order {
			it := p.Items[idx]
			placed := false
			for _, b := range bins {
				tr := b.cs.Preview(it.Spans)
				if p.NewTTP(b.cs, tr) >= p.P {
					b.cs.Add(it.Spans)
					b.items = append(b.items, idx)
					placed = true
					break
				}
			}
			if !placed {
				b := &bin{cs: epoch.NewCountSet(p.D)}
				b.cs.Add(it.Spans)
				b.items = append(b.items, idx)
				bins = append(bins, b)
			}
		}
		for _, b := range bins {
			sol.Groups = append(sol.Groups, Group{
				Items:     b.items,
				MaxNodes:  size,
				TTP:       p.TTP(b.cs),
				MaxActive: b.cs.MaxCount(),
			})
		}
	}
	sol.Elapsed = time.Since(start)
	return sol, nil
}

// FFDGlobal is the size-oblivious variant: one global decreasing-activity
// order, first-fit into any bin. It is kept as an ablation showing why the
// largest-item objective makes size-mixing ruinous (DESIGN.md's ablation
// index).
func FFDGlobal(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	order := make([]int, len(p.Items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := p.Items[order[a]], p.Items[order[b]]
		if la, lb := ia.ActiveEpochs(), ib.ActiveEpochs(); la != lb {
			return la > lb
		}
		return ia.Nodes > ib.Nodes
	})
	type bin struct {
		cs    *epoch.CountSet
		items []int
	}
	var bins []*bin
	for _, idx := range order {
		it := p.Items[idx]
		placed := false
		for _, b := range bins {
			tr := b.cs.Preview(it.Spans)
			if p.NewTTP(b.cs, tr) >= p.P {
				b.cs.Add(it.Spans)
				b.items = append(b.items, idx)
				placed = true
				break
			}
		}
		if !placed {
			b := &bin{cs: epoch.NewCountSet(p.D)}
			b.cs.Add(it.Spans)
			b.items = append(b.items, idx)
			bins = append(bins, b)
		}
	}
	sol := &Solution{Algorithm: "FFD-global"}
	for _, b := range bins {
		g := Group{Items: b.items, TTP: p.TTP(b.cs), MaxActive: b.cs.MaxCount()}
		for _, idx := range b.items {
			if p.Items[idx].Nodes > g.MaxNodes {
				g.MaxNodes = p.Items[idx].Nodes
			}
		}
		sol.Groups = append(sol.Groups, g)
	}
	sol.Elapsed = time.Since(start)
	return sol, nil
}
