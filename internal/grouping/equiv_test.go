package grouping

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/epoch"
)

// stripTiming zeroes the wall-clock fields so solutions can be compared
// byte-for-byte.
func stripTiming(s *Solution) *Solution {
	out := *s
	out.Elapsed = 0
	return &out
}

// TestSolverMatchesReference is the solver-equivalence property test: over
// seeded random instances, the optimized solver (serial and parallel at
// several worker counts) must produce partitions byte-identical to the
// retained reference implementation — same groups, same member order, same
// statistics. This is what licenses every pruning/scratch-buffer/sharding
// optimization in twostep.go.
func TestSolverMatchesReference(t *testing.T) {
	sizePools := [][]int{{2}, {2, 4}, {2, 4, 8}, {2, 4, 8, 16, 32}}
	instances := 0
	for seed := int64(0); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(120)
		d := 50 + rng.Intn(500)
		r := 1 + rng.Intn(3)
		pGuar := 0.9 + 0.099*rng.Float64()
		p := randomProblem(rng, n, d, r, pGuar, sizePools[rng.Intn(len(sizePools))])
		want, err := referenceTwoStep(p)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		if err := Verify(p, want); err != nil {
			t.Fatalf("seed %d: reference produced invalid solution: %v", seed, err)
		}
		for _, workers := range []int{1, 4, 8} {
			got, err := Solver{Workers: workers}.TwoStep(p)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(stripTiming(got), stripTiming(want)) {
				t.Errorf("seed %d (n=%d d=%d r=%d p=%.4f) workers %d: solver diverged from reference\n got: %+v\nwant: %+v",
					seed, n, d, r, pGuar, workers, stripTiming(got), stripTiming(want))
			}
		}
		instances++
	}
	if instances < 20 {
		t.Fatalf("only %d equivalence instances, want at least 20", instances)
	}
}

// TestSolverMatchesReferenceAdversarial covers the shapes most likely to
// break the pruning arguments: many identical tenants (maximal tie-breaking
// pressure), all-idle tenants (empty spans), and a single size class large
// enough to engage the sharded parallel scan.
func TestSolverMatchesReferenceAdversarial(t *testing.T) {
	build := func(name string, items []*Item, d int64, r int, pg float64) *Problem {
		t.Helper()
		p := &Problem{Items: items, D: d, R: r, P: pg}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return p
	}
	var cases []*Problem

	// Heavy ties: 60 tenants drawn from 4 identical activity patterns.
	pats := []epoch.Spans{
		{{S: 0, E: 10}},
		{{S: 5, E: 15}},
		{{S: 20, E: 25}, {S: 30, E: 40}},
		nil, // all idle
	}
	var tied []*Item
	for i := 0; i < 60; i++ {
		tied = append(tied, &Item{ID: fmt.Sprintf("t%02d", i), Nodes: 4, Spans: pats[i%len(pats)]})
	}
	cases = append(cases, build("ties", tied, 50, 2, 0.9))

	// One large size class: engages the parallel shard path (> minParallelScan).
	rng := rand.New(rand.NewSource(7))
	cases = append(cases, build("one-class", randomProblem(rng, 300, 400, 3, 0.95, []int{8}).Items, 400, 3, 0.95))

	for ci, p := range cases {
		want, err := referenceTwoStep(p)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		for _, workers := range []int{1, 3, 8} {
			got, err := Solver{Workers: workers}.TwoStep(p)
			if err != nil {
				t.Fatalf("case %d workers %d: %v", ci, workers, err)
			}
			if !reflect.DeepEqual(stripTiming(got), stripTiming(want)) {
				t.Errorf("case %d workers %d: diverged from reference", ci, workers)
			}
		}
	}
}
