package grouping

import (
	"time"

	"repro/internal/epoch"
)

// This file retains the original, unoptimized two-step solver verbatim as the
// executable specification of Algorithm 2. The production Solver (twostep.go)
// must produce byte-identical partitions — the seeded equivalence suite in
// equiv_test.go checks every optimization (candidate-order pruning, bounded
// previews, scratch-buffer reuse, worker sharding) against this code. It is
// O(m²) scans with fresh Preview/NewHist allocations per candidate; never use
// it on large instances.

// referenceTwoStep is the unoptimized TwoStep.
func referenceTwoStep(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	sol := &Solution{Algorithm: "2-step"}

	// Step 1: initial groups by node count, processed in descending size
	// order for deterministic output.
	bySize := make(map[int][]int)
	for i, it := range p.Items {
		bySize[it.Nodes] = append(bySize[it.Nodes], i)
	}
	for _, n := range sortedSizesDesc(bySize) {
		remaining := append([]int(nil), bySize[n]...)
		for len(remaining) > 0 {
			g, rest := referencePackOneGroup(p, remaining)
			sol.Groups = append(sol.Groups, g)
			remaining = rest
		}
	}
	sol.Elapsed = time.Since(start)
	return sol, nil
}

// referencePackOneGroup fills a single tenant-group from the remaining items
// of one initial group and returns it together with the items left over.
func referencePackOneGroup(p *Problem, remaining []int) (Group, []int) {
	cs := epoch.NewCountSet(p.D)
	var members []int
	for len(remaining) > 0 {
		best := referencePickBest(p, cs, remaining)
		it := p.Items[remaining[best]]
		tr := cs.Preview(it.Spans)
		if len(members) > 0 && p.NewTTP(cs, tr) < p.P {
			break // Algorithm 2 line 9: T_best no longer fits; close the group.
		}
		// The first member always enters: a single tenant has max count 1 ≤ R.
		members = append(members, remaining[best])
		cs.Add(it.Spans)
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return finishGroup(p, cs, members), remaining
}

// referencePickBest returns the index within remaining of T_best under the
// paper's selection rule: lexicographically smallest resulting active-count
// histogram read from the top (first minimize the new maximum, then the
// time share at the maximum, then one level down, …), breaking full ties by
// least active time and finally by position.
func referencePickBest(p *Problem, cs *epoch.CountSet, remaining []int) int {
	best := 0
	var bestHist []int64
	var bestActive int64
	for i, idx := range remaining {
		it := p.Items[idx]
		tr := cs.Preview(it.Spans)
		h := cs.NewHist(tr)
		if bestHist == nil {
			best, bestHist, bestActive = i, h, it.ActiveEpochs()
			continue
		}
		c := epoch.CompareNewHists(h, bestHist)
		if c < 0 || (c == 0 && it.ActiveEpochs() < bestActive) {
			best, bestHist, bestActive = i, h, it.ActiveEpochs()
		}
	}
	return best
}
