package experiments

import (
	"strings"
	"testing"
)

// TestDomainFailTiny runs the correlated-failure experiment at tiny scale:
// the protected arm (spread placement + scarcity triage + re-spread) must
// pass the restoration bar while the bare arm eats the outages, and the
// whole three-arm experiment must render byte-identically on a re-run —
// the same-seed determinism guarantee the chaos harness promises.
func TestDomainFailTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a domain-outage storm against three deployments")
	}
	env := testEnv(t)
	tables, err := DomainFail(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || len(tables[0].Rows) == 0 || len(tables[1].Rows) == 0 {
		t.Fatalf("tables: %v", tables)
	}
	summary := tables[1].String()
	if !strings.Contains(summary, "PASS") {
		t.Fatalf("restoration verdict not PASS:\n%s", summary)
	}
	for _, row := range tables[1].Rows {
		if row[0] == "dropped queries" {
			for i, cell := range row[1:] {
				if n := atof(t, cell); n != 0 {
					t.Fatalf("arm %d dropped %v queries:\n%s", i, n, summary)
				}
			}
		}
		if row[0] == "node casualties" {
			if n := atof(t, row[3]); n == 0 {
				t.Fatalf("protected arm saw no casualties — the storm never landed:\n%s", summary)
			}
		}
	}

	again, err := DomainFail(env)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tables {
		if tables[i].String() != again[i].String() {
			t.Fatalf("same-seed experiment rendered differently on re-run:\n--- first\n%s\n--- second\n%s",
				tables[i], again[i])
		}
	}
}
