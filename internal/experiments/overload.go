package experiments

import (
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/recovery/chaos"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OverloadStorm replays the same seeded noisy-tenant storm against the
// plan's largest tenant-group twice: once bare and once with per-group
// admission control armed (contract enforcement derived from the tenants'
// own logs, bounded admission queue, brownout controller). The first run
// shows how one over-contract tenant burns its co-tenants' guarantee
// through processor-sharing contention; the second shows the aggressor
// being throttled with typed 429s while every contract-abiding tenant's
// attainment holds.
func OverloadStorm(env *Env) ([]*Table, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	adv, err := advisor.New(advisor.DefaultConfig())
	if err != nil {
		return nil, err
	}
	plan, err := adv.Plan(logs, env.Horizon())
	if err != nil {
		return nil, err
	}
	// The storm targets one group; deploy only the largest so the replay
	// stays bounded.
	gi := 0
	for i := range plan.Groups {
		if len(plan.Groups[i].TenantIDs) > len(plan.Groups[gi].TenantIDs) {
			gi = i
		}
	}
	subPlan := &advisor.Plan{Config: plan.Config, Groups: plan.Groups[gi : gi+1]}
	members := map[string]bool{}
	for _, id := range subPlan.Groups[0].TenantIDs {
		members[id] = true
	}
	var subLogs []*workload.TenantLog
	for _, tl := range logs {
		if members[tl.Tenant.ID] {
			subLogs = append(subLogs, tl)
		}
	}

	// Replay the advisor's whole horizon: the RT-TTP guarantee holds over
	// that window, so any sub-window (e.g. one busy day) can dip below P
	// even without a storm.
	runOne := func(aggressors int, admit bool) (*chaos.OverloadResult, error) {
		cfg := chaos.DefaultOverloadConfig()
		cfg.Seed = env.Seed
		cfg.From, cfg.To = 0, env.Horizon()
		cfg.Aggressors = aggressors
		opts := master.Options{Immediate: true, MonitorWindow: time.Hour}
		if admit {
			acfg := admission.DefaultConfig()
			acfg.Contracts = admission.ContractsFromLogs(subLogs, acfg.Headroom)
			opts.Admission = &acfg
		}
		eng := sim.NewEngine()
		m := master.New(eng, cluster.NewPool(subPlan.NodesUsed()), opts)
		dep, err := m.Deploy(subPlan, Tenants(subLogs))
		if err != nil {
			return nil, err
		}
		return chaos.RunOverload(eng, dep, env.Cat, subLogs, cfg)
	}
	// Three runs over the identical replay: a no-storm control fixing each
	// tenant's intrinsic attainment, the storm bare, and the storm with
	// admission armed.
	ctl, err := runOne(0, false)
	if err != nil {
		return nil, err
	}
	base, err := runOne(1, false)
	if err != nil {
		return nil, err
	}
	prot, err := runOne(1, true)
	if err != nil {
		return nil, err
	}

	p := plan.Config.P
	ctlAtt := map[string]float64{}
	baseAtt := map[string]float64{}
	for _, o := range ctl.Outcomes {
		ctlAtt[o.Tenant] = o.Attainment
	}
	for _, o := range base.Outcomes {
		baseAtt[o.Tenant] = o.Attainment
	}
	outcomes := &Table{
		Title: fmt.Sprintf("Overload storm — per-tenant outcome (group %s, seed %d, 5× over contract)",
			prot.Group, env.Seed),
		Columns: []string{"tenant", "aggressor", "control", "bare", "admission", "admitted", "throttled", "shed"},
	}
	for _, o := range prot.Outcomes {
		outcomes.AddRow(o.Tenant, fmt.Sprint(o.Aggressor), pct(ctlAtt[o.Tenant]),
			pct(baseAtt[o.Tenant]), pct(o.Attainment), o.Admitted, o.Throttled, o.Shed)
	}

	// Verdicts are measured against each tenant's no-storm control: the bare
	// storm must drag some compliant tenant below both its intrinsic
	// attainment and P, and the armed run must hold every compliant tenant at
	// its intrinsic floor (or P, whichever is lower).
	baseVerdict := fmt.Sprintf("storm absorbed without damage (min compliant %s)", pct(base.MinCompliantAttainment))
	for _, o := range base.Outcomes {
		floor := min(p, ctlAtt[o.Tenant])
		if !o.Aggressor && o.Attainment < floor {
			baseVerdict = fmt.Sprintf("storm burned compliant %s from %s to %s (P=%.4f)",
				o.Tenant, pct(ctlAtt[o.Tenant]), pct(o.Attainment), p)
			break
		}
	}
	protVerdict := "PASS"
	if err := prot.Verify(min(p, ctl.MinCompliantAttainment)); err != nil {
		protVerdict = fmt.Sprintf("FAIL: %v", err)
	} else {
		for _, o := range prot.Outcomes {
			if floor := min(p, ctlAtt[o.Tenant]); !o.Aggressor && o.Attainment < floor {
				protVerdict = fmt.Sprintf("FAIL: compliant %s at %s below its control %s",
					o.Tenant, pct(o.Attainment), pct(ctlAtt[o.Tenant]))
				break
			}
		}
	}
	summary := &Table{
		Title:   fmt.Sprintf("Overload storm — control vs bare vs admission-controlled (aggressors %v)", prot.Aggressors),
		Columns: []string{"metric", "control", "bare", "admission"},
	}
	summary.AddRow("storm submitted", ctl.StormSubmitted, base.StormSubmitted, prot.StormSubmitted)
	summary.AddRow("storm admitted", ctl.StormAdmitted, base.StormAdmitted, prot.StormAdmitted)
	summary.AddRow("storm throttled (429)", ctl.StormThrottled, base.StormThrottled, prot.StormThrottled)
	summary.AddRow("storm shed (503)", ctl.StormShed, base.StormShed, prot.StormShed)
	summary.AddRow("compliant throttled", ctl.NormalThrottled, base.NormalThrottled, prot.NormalThrottled)
	summary.AddRow("compliant shed", ctl.NormalShed, base.NormalShed, prot.NormalShed)
	summary.AddRow("min compliant attainment", pct(ctl.MinCompliantAttainment), pct(base.MinCompliantAttainment), pct(prot.MinCompliantAttainment))
	summary.AddRow("min RT-TTP", fmt.Sprintf("%.4f", ctl.MinRTTTP), fmt.Sprintf("%.4f", base.MinRTTTP), fmt.Sprintf("%.4f", prot.MinRTTTP))
	summary.AddRow("bare verdict", "", baseVerdict, "")
	summary.AddRow(fmt.Sprintf("protection verdict (compliant ≥ min(P=%.4f, control))", p), "", "", protVerdict)
	return []*Table{outcomes, summary}, nil
}
