package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/recovery"
	"repro/internal/recovery/chaos"
	"repro/internal/sim"
	"repro/internal/workload"
)

// recoveryBoundSubPlan picks the n groups with the smallest per-node data
// shard (ties: more members, then plan order). A domain outage is a recovery
// experiment: the per-node shard fixes the Table 5.1 reload that bounds how
// long a casualty stays degraded, and the whale groups consolidation produces
// (multi-TB shards packed onto two-node instances) would spend days
// reloading — far past any storm horizon — drowning the placement signal in
// reload tail no matter how the arms place or triage. Bounding the shard
// keeps repair on the storm's timescale, matching the paper's own
// ~hundred-GB-per-node Table 5.1 loads.
func recoveryBoundSubPlan(plan *advisor.Plan, logs []*workload.TenantLog, n int) (*advisor.Plan, []*workload.TenantLog) {
	data := map[string]float64{}
	for _, tl := range logs {
		data[tl.Tenant.ID] = tl.Tenant.DataGB
	}
	type cand struct {
		gi      int
		share   float64
		members int
	}
	cands := make([]cand, 0, len(plan.Groups))
	for i := range plan.Groups {
		pg := &plan.Groups[i]
		var gb float64
		for _, id := range pg.TenantIDs {
			gb += data[id]
		}
		cands = append(cands, cand{i, gb / float64(pg.Design.N1), len(pg.TenantIDs)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].share != cands[j].share {
			return cands[i].share < cands[j].share
		}
		if cands[i].members != cands[j].members {
			return cands[i].members > cands[j].members
		}
		return cands[i].gi < cands[j].gi
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	subPlan := &advisor.Plan{Config: plan.Config}
	members := map[string]bool{}
	for _, c := range cands {
		pg := plan.Groups[c.gi]
		subPlan.Groups = append(subPlan.Groups, pg)
		for _, id := range pg.TenantIDs {
			members[id] = true
		}
	}
	var subLogs []*workload.TenantLog
	for _, tl := range logs {
		if members[tl.Tenant.ID] {
			subLogs = append(subLogs, tl)
		}
	}
	return subPlan, subLogs
}

// DomainFail measures correlated-failure resilience: the same seeded schedule
// of whole-domain outages replays three times against identical tenants on a
// three-domain pool sized scarce (a fifth of spare capacity, so a domain loss
// outstrips the free list). The no-fault arm fixes the attainment ceiling;
// the bare arm (no spread placement, classic per-group backoff) shows what a
// rack loss costs when groups can collapse into one domain; the protected arm
// adds spread-aware placement, quarantine re-routing, the cluster scarcity
// triage, and post-restoration re-spread. The verdict is the paper-style
// restoration bar: protected attainment within two points of no-fault, zero
// dropped queries everywhere, every pool leak-free.
func DomainFail(env *Env) ([]*Table, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	const domains = 3
	acfg := advisor.DefaultConfig()
	acfg.FailureDomains = domains
	adv, err := advisor.New(acfg)
	if err != nil {
		return nil, err
	}
	plan, err := adv.Plan(logs, env.Horizon())
	if err != nil {
		return nil, err
	}
	subPlan, subLogs := recoveryBoundSubPlan(plan, logs, env.Scale.ReplayGroups)

	// One storm config for every arm; an explicit empty schedule turns the
	// injection off for the baseline while keeping the replay identical.
	run := func(spread, triage bool, sched []chaos.DomainOutage) (*chaos.DomainFailResult, error) {
		eng := sim.NewEngine()
		used := subPlan.NodesUsed()
		pool := cluster.NewPoolDomains(used+(used+4)/5, domains)
		rcfg := recovery.DefaultConfig()
		// The protected posture also re-replicates a casualty's shard from
		// its surviving peers in parallel; bare keeps the classic
		// single-stream reload.
		rcfg.ParallelReload = spread
		opts := master.Options{Immediate: true, Recovery: &rcfg, NoSpread: !spread}
		if triage {
			tc := recovery.DefaultTriageConfig()
			opts.Triage = &tc
		}
		m := master.New(eng, pool, opts)
		dep, err := m.Deploy(subPlan, Tenants(subLogs))
		if err != nil {
			return nil, err
		}
		cfg := chaos.DefaultDomainFailConfig()
		cfg.Seed = env.Seed
		cfg.From, cfg.To = 0, sim.Day
		// Recoveries queue behind the outage and pay Table 5.1 reloads that
		// run for hours per node on the largest groups.
		cfg.DrainSlack = 3 * 24 * time.Hour
		cfg.Schedule = sched
		return chaos.RunDomainFail(eng, dep, env.Cat, subLogs, cfg)
	}

	baseline, err := run(true, true, []chaos.DomainOutage{})
	if err != nil {
		return nil, err
	}
	bare, err := run(false, false, nil)
	if err != nil {
		return nil, err
	}
	protected, err := run(true, true, nil)
	if err != nil {
		return nil, err
	}

	schedule := &Table{
		Title:   fmt.Sprintf("Correlated failure — injected domain outages (%d domains, seed %d)", domains, env.Seed),
		Columns: []string{"at", "domain", "duration"},
	}
	for _, o := range bare.Schedule {
		schedule.AddRow(o.At.String(), o.Domain, o.Duration.String())
	}

	verdict := "PASS"
	if err := baseline.Verify(); err != nil {
		verdict = fmt.Sprintf("FAIL: baseline: %v", err)
	} else if err := bare.Verify(); err != nil {
		verdict = fmt.Sprintf("FAIL: bare: %v", err)
	} else if err := protected.Verify(); err != nil {
		verdict = fmt.Sprintf("FAIL: protected: %v", err)
	} else if protected.Attainment < baseline.Attainment-0.02 {
		verdict = fmt.Sprintf("FAIL: protected attainment %.4f more than 2 points below no-fault %.4f",
			protected.Attainment, baseline.Attainment)
	} else if protected.CollapsedGroups != 0 {
		verdict = fmt.Sprintf("FAIL: %d protected groups still collapsed onto one domain", protected.CollapsedGroups)
	}

	outcome := &Table{
		Title: fmt.Sprintf("Correlated failure — bare vs spread+triage (%d groups, seed %d)",
			len(subPlan.Groups), env.Seed),
		Columns: []string{"metric", "no-fault", "bare", "protected"},
	}
	outcome.AddRow("per-query SLA attainment", pct(baseline.Attainment), pct(bare.Attainment), pct(protected.Attainment))
	outcome.AddRow("worst member attainment", pct(baseline.MinAttainment), pct(bare.MinAttainment), pct(protected.MinAttainment))
	outcome.AddRow("min RT-TTP", fmt.Sprintf("%.4f", baseline.MinRTTTP),
		fmt.Sprintf("%.4f", bare.MinRTTTP), fmt.Sprintf("%.4f", protected.MinRTTTP))
	outcome.AddRow("node casualties", baseline.Casualties, bare.Casualties, protected.Casualties)
	outcome.AddRow("instances quarantined", baseline.Quarantines, bare.Quarantines, protected.Quarantines)
	outcome.AddRow("dropped queries", baseline.Errors, bare.Errors, protected.Errors)
	outcome.AddRow("recovery lifecycles (triaged)",
		fmt.Sprintf("%d (%d)", baseline.Lifecycles, baseline.Triaged),
		fmt.Sprintf("%d (%d)", bare.Lifecycles, bare.Triaged),
		fmt.Sprintf("%d (%d)", protected.Lifecycles, protected.Triaged))
	outcome.AddRow("triage claims enqueued/granted",
		fmt.Sprintf("%d/%d", baseline.TriageEnqueued, baseline.TriageGranted),
		"—",
		fmt.Sprintf("%d/%d", protected.TriageEnqueued, protected.TriageGranted))
	outcome.AddRow("re-spread cutovers", baseline.Respreads, bare.Respreads, protected.Respreads)
	outcome.AddRow("groups collapsed at end", baseline.CollapsedGroups, bare.CollapsedGroups, protected.CollapsedGroups)
	outcome.AddRow("pool active/expected",
		fmt.Sprintf("%d/%d", baseline.ActiveNodes, baseline.ExpectedActive),
		fmt.Sprintf("%d/%d", bare.ActiveNodes, bare.ExpectedActive),
		fmt.Sprintf("%d/%d", protected.ActiveNodes, protected.ExpectedActive))
	outcome.AddRow("verdict", "", "", verdict)
	return []*Table{schedule, outcome}, nil
}
