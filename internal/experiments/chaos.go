package experiments

import (
	"fmt"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/recovery/chaos"
	"repro/internal/sim"
)

// ChaosRecovery runs the §4.4 chaos harness against a consolidated
// deployment: a randomized-but-seeded schedule of node crashes, repeat
// crashes mid-recovery, and cross-group bursts lands on the largest
// tenant-groups during a one-day replay. Every repair is autonomous — the
// per-group recovery controllers detect each failure on a heartbeat, swap
// the node at the pool, and price replacement startup plus bulk reload by
// the Table 5.1 model while the instance serves degraded. The outcome table
// records the SLA guarantee (min RT-TTP vs P) and the pool leak check.
func ChaosRecovery(env *Env) ([]*Table, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	acfg := advisor.DefaultConfig()
	adv, err := advisor.New(acfg)
	if err != nil {
		return nil, err
	}
	plan, err := adv.Plan(logs, env.Horizon())
	if err != nil {
		return nil, err
	}
	// One deployment of the largest groups (so failure bursts span groups),
	// bounded like the headline SLA validation.
	subPlan, subLogs := largestSubPlan(plan, logs, env.Scale.ReplayGroups)

	eng := sim.NewEngine()
	pool := cluster.NewPool(2 * subPlan.NodesUsed())
	m := master.New(eng, pool, master.Options{Immediate: true})
	dep, err := m.Deploy(subPlan, Tenants(subLogs))
	if err != nil {
		return nil, err
	}
	cfg := chaos.DefaultConfig()
	cfg.Seed = env.Seed
	cfg.From, cfg.To = 0, sim.Day
	// The largest groups reload for over a day (Table 5.1, single-stream
	// share of the tenant data), so the drain needs enough room to finish
	// every recovery and re-image before the pool is tallied.
	cfg.DrainSlack = 3 * 24 * time.Hour
	res, err := chaos.Run(eng, dep, env.Cat, subLogs, cfg)
	if err != nil {
		return nil, err
	}

	lifecycles := &Table{
		Title:   "Chaos recovery — autonomous lifecycles (heartbeat detection, pool swap, Table 5.1 reload)",
		Columns: []string{"mppdb", "detected", "replaced", "repaired", "attempts", "node out", "node in"},
	}
	for _, rec := range res.Report.RecoveryEvents {
		repaired := "—"
		if rec.Recovered() {
			repaired = rec.Completed.String()
		}
		lifecycles.AddRow(rec.MPPDB, rec.Detected.String(), rec.Replaced.String(),
			repaired, rec.Attempts, rec.FailedNode, rec.ReplacementNode)
	}

	// Two separate verdicts: autonomous recovery must always complete and
	// leave the pool leak-free; the SLA guarantee is reported as observed —
	// when the schedule degrades every replica of a data-heavy group at
	// once, its RT-TTP genuinely dips for the (long, Table 5.1) reload.
	recVerdict := "PASS"
	if res.Recovered < res.Applied || res.InFlight != 0 {
		recVerdict = fmt.Sprintf("FAIL: %d of %d recovered, %d in flight",
			res.Recovered, res.Applied, res.InFlight)
	} else if res.ActiveNodes != res.ExpectedActive || res.FailedNodes != 0 || res.RepairingNodes != 0 {
		recVerdict = fmt.Sprintf("FAIL: pool leak — active %d (want %d), failed %d, repairing %d",
			res.ActiveNodes, res.ExpectedActive, res.FailedNodes, res.RepairingNodes)
	}
	slaVerdict := fmt.Sprintf("held (min RT-TTP %.4f ≥ P=%.4f)", res.MinRTTTP, plan.Config.P)
	if res.MinRTTTP < plan.Config.P {
		slaVerdict = fmt.Sprintf("dipped to %.4f < P=%.4f while concurrent failures degraded a whole group",
			res.MinRTTTP, plan.Config.P)
	}
	outcome := &Table{
		Title:   fmt.Sprintf("Chaos recovery — outcome (%d groups, seed %d)", len(subPlan.Groups), cfg.Seed),
		Columns: []string{"metric", "value"},
	}
	outcome.AddRow("failures injected / applied", fmt.Sprintf("%d / %d", res.Injected, res.Applied))
	outcome.AddRow("recoveries completed / in flight", fmt.Sprintf("%d / %d", res.Recovered, res.InFlight))
	outcome.AddRow("min RT-TTP (guarantee, ≥ P)", fmt.Sprintf("%.4f (P=%.4f)", res.MinRTTTP, plan.Config.P))
	outcome.AddRow("per-query SLA attainment", pct(res.Attainment))
	outcome.AddRow("pool active / expected", fmt.Sprintf("%d / %d", res.ActiveNodes, res.ExpectedActive))
	outcome.AddRow("pool failed / repairing", fmt.Sprintf("%d / %d", res.FailedNodes, res.RepairingNodes))
	outcome.AddRow("recovery verdict", recVerdict)
	outcome.AddRow("SLA guarantee", slaVerdict)
	return []*Table{lifecycles, outcome}, nil
}
