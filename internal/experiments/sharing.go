package experiments

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/replay"
	"repro/internal/sim"
)

// sharingArm is one arm's replay outcome.
type sharingArm struct {
	rep     *replay.Report
	batches uint64
	joins   uint64
	digest  uint64
	minRT   float64
}

// recordsDigest folds every completed query record into one FNV-1a word so
// two same-seed runs can be compared byte-for-byte without persisting traces.
func recordsDigest(recs []monitor.QueryRecord) uint64 {
	h := fnv.New64a()
	for _, r := range recs {
		fmt.Fprintf(h, "%s|%s|%d|%d|%d|%s\n",
			r.Tenant, r.Class.ID, int64(r.Submit), int64(r.Finish), int64(r.SLATarget), r.MPPDB)
	}
	return h.Sum64()
}

// SharingResult is the shared-work experiment's outcome: the two plans and
// the two full-deployment replays (plus the shared arm's determinism
// re-run), exposed numerically so the committed benchmark can enforce the
// same bars the experiment table prints.
type SharingResult struct {
	BarePlan   *advisor.Plan
	SharedPlan *advisor.Plan

	BareQueries, SharedQueries       int
	BareAttainment, SharedAttainment float64
	BareMinRT, SharedMinRT           float64
	Batches, Joins                   uint64

	// Digests of the completion traces; SharedDigest2 is the same-seed
	// re-run of the shared arm.
	BareDigest, SharedDigest, SharedDigest2 uint64
}

// ConsolidationRatio is bare nodes over shared nodes (>1 when sharing packs
// denser).
func (r *SharingResult) ConsolidationRatio() float64 {
	return float64(r.BarePlan.NodesUsed()) / float64(r.SharedPlan.NodesUsed())
}

// Deterministic reports whether the shared arm's same-seed re-run
// reproduced the identical completion trace.
func (r *SharingResult) Deterministic() bool { return r.SharedDigest == r.SharedDigest2 }

// Verdict applies the perf_opt acceptance bar: the sharing plan must use
// strictly fewer nodes, per-query SLA attainment must stay within a point
// of the bare arm, the same-seed re-run must reproduce byte-for-byte, and
// the executor must actually have merged work.
func (r *SharingResult) Verdict() string {
	switch {
	case r.SharedPlan.NodesUsed() >= r.BarePlan.NodesUsed():
		return fmt.Sprintf("FAIL: sharing packs %d nodes, not strictly fewer than bare %d",
			r.SharedPlan.NodesUsed(), r.BarePlan.NodesUsed())
	case r.SharedAttainment < r.BareAttainment-0.01:
		return fmt.Sprintf("FAIL: shared attainment %.4f more than 1%% below bare %.4f",
			r.SharedAttainment, r.BareAttainment)
	case !r.Deterministic():
		return fmt.Sprintf("FAIL: same-seed shared re-run diverged (digest %016x vs %016x)",
			r.SharedDigest, r.SharedDigest2)
	case r.Batches == 0:
		return "FAIL: shared arm merged no batches — the executor never engaged"
	}
	return "PASS"
}

// runSharingArm replays one arm's ENTIRE deployment for a day on a fresh
// engine. Both arms then serve the identical tenant population and query
// stream, so attainment is directly comparable: the sharing arm must defend
// its denser packing with the shared executor actually running. (Replaying
// only each plan's largest groups would bias the sample — the denser plan's
// top groups carry more load by construction.)
func runSharingArm(env *Env, p *advisor.Plan, sharing bool) (*sharingArm, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	pool := cluster.NewPool(p.NodesUsed() + 8)
	m := master.New(eng, pool, master.Options{Immediate: true, Sharing: sharing})
	dep, err := m.Deploy(p, Tenants(logs))
	if err != nil {
		return nil, err
	}
	rep, err := replay.Run(eng, dep, env.Cat, logs, replay.Options{
		From:        0,
		To:          sim.Day,
		SampleEvery: time.Hour,
	})
	if err != nil {
		return nil, err
	}
	arm := &sharingArm{rep: rep, digest: recordsDigest(rep.Records), minRT: 1}
	for _, g := range dep.Groups() {
		for _, inst := range g.Instances {
			b, j := inst.SharedStats()
			arm.batches += b
			arm.joins += j
		}
	}
	for _, pg := range p.Groups {
		if rt := rep.MinRTTTP(pg.ID); rt < arm.minRT {
			arm.minRT = rt
		}
	}
	return arm, nil
}

// SharingOutcome plans and replays both arms of the shared-work experiment:
// the same seeded tenant population is planned and replayed once bare
// (every resident query is an independent processor-sharing participant)
// and once with shared-work execution (concurrent same-class queries merge
// into one weighted shared scan and the advisor packs for the credited
// capacity), plus a same-seed re-run of the shared arm as the determinism
// guard.
func SharingOutcome(env *Env) (*SharingResult, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	plan := func(sharing bool) (*advisor.Plan, error) {
		cfg := advisor.DefaultConfig()
		cfg.SolverWorkers = SolverWorkers
		cfg.Sharing = sharing
		adv, err := advisor.New(cfg)
		if err != nil {
			return nil, err
		}
		return adv.Plan(logs, env.Horizon())
	}
	plainPlan, err := plan(false)
	if err != nil {
		return nil, err
	}
	sharedPlan, err := plan(true)
	if err != nil {
		return nil, err
	}

	bare, err := runSharingArm(env, plainPlan, false)
	if err != nil {
		return nil, err
	}
	shared, err := runSharingArm(env, sharedPlan, true)
	if err != nil {
		return nil, err
	}
	// Same seed, fresh engine: the shared arm must reproduce byte-for-byte.
	shared2, err := runSharingArm(env, sharedPlan, true)
	if err != nil {
		return nil, err
	}
	return &SharingResult{
		BarePlan:         plainPlan,
		SharedPlan:       sharedPlan,
		BareQueries:      len(bare.rep.Records),
		SharedQueries:    len(shared.rep.Records),
		BareAttainment:   bare.rep.SLAAttainment(),
		SharedAttainment: shared.rep.SLAAttainment(),
		BareMinRT:        bare.minRT,
		SharedMinRT:      shared.minRT,
		Batches:          shared.batches,
		Joins:            shared.joins,
		BareDigest:       bare.digest,
		SharedDigest:     shared.digest,
		SharedDigest2:    shared2.digest,
	}, nil
}

// Sharing is the shared-work execution experiment: consolidation and replay
// outcome of SharingOutcome rendered as the two result tables.
func Sharing(env *Env) ([]*Table, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	res, err := SharingOutcome(env)
	if err != nil {
		return nil, err
	}
	bareP, sharedP := res.BarePlan, res.SharedPlan

	consolidation := &Table{
		Title: fmt.Sprintf("Shared-work execution — consolidation (%d tenants, R=%d, P=%.1f%%, seed %d)",
			len(logs), bareP.Config.R, 100*bareP.Config.P, env.Seed),
		Columns: []string{"metric", "bare", "shared"},
	}
	consolidation.AddRow("requested nodes", bareP.RequestedNodes, sharedP.RequestedNodes)
	consolidation.AddRow("nodes used", bareP.NodesUsed(), sharedP.NodesUsed())
	consolidation.AddRow("consolidation effectiveness", pct(bareP.Effectiveness()), pct(sharedP.Effectiveness()))
	consolidation.AddRow("tenant-groups", len(bareP.Groups), len(sharedP.Groups))
	consolidation.AddRow("mean group size",
		fmt.Sprintf("%.1f", bareP.MeanGroupSize()), fmt.Sprintf("%.1f", sharedP.MeanGroupSize()))
	consolidation.AddRow("credited (Plan.Shared)", bareP.Shared, sharedP.Shared)
	consolidation.AddRow("consolidation ratio (bare/shared nodes)", "1.00",
		fmt.Sprintf("%.2f", res.ConsolidationRatio()))

	outcome := &Table{
		Title: fmt.Sprintf("Shared-work execution — one-day full-deployment replay (%d vs %d groups)",
			len(bareP.Groups), len(sharedP.Groups)),
		Columns: []string{"metric", "bare", "shared"},
	}
	outcome.AddRow("queries completed", res.BareQueries, res.SharedQueries)
	outcome.AddRow("per-query SLA attainment", pct(res.BareAttainment), pct(res.SharedAttainment))
	outcome.AddRow("min RT-TTP", fmt.Sprintf("%.4f", res.BareMinRT), fmt.Sprintf("%.4f", res.SharedMinRT))
	outcome.AddRow("shared batches (multi-member)", 0, res.Batches)
	outcome.AddRow("shared joins (attached members)", 0, res.Joins)
	outcome.AddRow("trace digest", fmt.Sprintf("%016x", res.BareDigest),
		fmt.Sprintf("%016x (re-run %016x)", res.SharedDigest, res.SharedDigest2))
	outcome.AddRow("verdict", "", res.Verdict())
	return []*Table{consolidation, outcome}, nil
}
