package experiments

import (
	"fmt"

	"repro/internal/cluster"
)

// Table51Provisioning reproduces Table 5.1: the time to start machine nodes
// + initialize an MPPDB, and to bulk load the tenant data, for 2–10 node /
// 200 GB–1 TB configurations. The paper's measured values are included for
// side-by-side comparison (our provisioning model is calibrated to them).
func Table51Provisioning() *Table {
	t := &Table{
		Title: "Table 5.1 — starting and bulk loading a MPPDB",
		Columns: []string{"tenant / data", "start+init (model)", "start+init (paper)",
			"bulk load (model)", "bulk load (paper)"},
	}
	rows := []struct {
		nodes      int
		gb         float64
		paperStart float64
		paperLoad  float64
	}{
		{2, 200, 462, 10172},
		{4, 400, 850, 20302},
		{6, 600, 1248, 30121},
		{8, 800, 1504, 40853},
		{10, 1024, 1779, 50446},
	}
	for _, r := range rows {
		label := fmt.Sprintf("%d-node / %s", r.nodes, gbLabel(r.gb))
		t.AddRow(label,
			fmt.Sprintf("%.0fs", cluster.StartupTime(r.nodes).Seconds()),
			fmt.Sprintf("%.0fs", r.paperStart),
			fmt.Sprintf("%.0fs", cluster.LoadTime(r.gb, r.nodes, false).Seconds()),
			fmt.Sprintf("%.0fs", r.paperLoad))
	}
	return t
}

func gbLabel(gb float64) string {
	if gb >= 1024 {
		return fmt.Sprintf("%.0fTB", gb/1024)
	}
	return fmt.Sprintf("%.0fGB", gb)
}
