package experiments

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/sim"
)

// sharedBenchFanout is the batch width of one microbench cycle: the number
// of same-class queries a tenant's action submits back to back (the
// workload's batch actions average ~2 with a heavy tail; 4 is a
// representative worst case).
const sharedBenchFanout = 4

// sharedBenchClass picks a mid-σ scan class so the merged demand is neither
// trivially the widest scan (σ→0) nor indistinguishable from independent
// execution (σ→1).
func sharedBenchClass(tb testing.TB) *queries.Class {
	tb.Helper()
	cat := queries.Default()
	if cl, ok := cat.ByID("TPCH-Q8"); ok {
		return cl
	}
	return cat.Classes()[0]
}

// benchSubmitCycle measures one executor cycle — sharedBenchFanout tagged
// same-class submits by one tenant followed by running the engine dry — with
// shared-work execution on or off. This is the submit hot path the service
// layer pays per query; the shared path adds a live-batch map probe and the
// attach bookkeeping and must stay within a small factor of the plain path.
func benchSubmitCycle(b *testing.B, sharing bool) {
	cl := sharedBenchClass(b)
	eng := sim.NewEngine()
	m := mppdb.New(eng, "bench", 8)
	m.DeployTenant("T", 800)
	if sharing {
		if err := m.SetSharing(true); err != nil {
			b.Fatal(err)
		}
	}
	ref, ok := m.Interner().Lookup("T")
	if !ok {
		b.Fatal("tenant ref not interned")
	}
	b.ReportAllocs()
	b.ResetTimer()
	tag := uint64(0)
	for i := 0; i < b.N; i++ {
		for j := 0; j < sharedBenchFanout; j++ {
			tag++
			if _, err := m.SubmitTagged(ref, cl, tag); err != nil {
				b.Fatal(err)
			}
		}
		eng.RunAll()
	}
}

func BenchmarkSharedSubmitCycle(b *testing.B) { benchSubmitCycle(b, true) }
func BenchmarkPlainSubmitCycle(b *testing.B)  { benchSubmitCycle(b, false) }

// cycleDemand returns the virtual-time cost of one cycle: how long the
// instance takes to drain sharedBenchFanout same-instant same-class queries.
func cycleDemand(tb testing.TB, sharing bool) float64 {
	cl := sharedBenchClass(tb)
	eng := sim.NewEngine()
	m := mppdb.New(eng, "bench", 8)
	m.DeployTenant("T", 800)
	if sharing {
		if err := m.SetSharing(true); err != nil {
			tb.Fatal(err)
		}
	}
	ref, ok := m.Interner().Lookup("T")
	if !ok {
		tb.Fatal("tenant ref not interned")
	}
	for j := 0; j < sharedBenchFanout; j++ {
		if _, err := m.SubmitTagged(ref, cl, uint64(j+1)); err != nil {
			tb.Fatal(err)
		}
	}
	eng.RunAll()
	return eng.Now().Seconds()
}

// SharedBenchRecord is one measurement persisted to BENCH_shareddb.json by
// `make bench-shareddb`.
type SharedBenchRecord struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations,omitempty"`
	NsPerOp     int64  `json:"ns_per_op,omitempty"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64  `json:"bytes_per_op,omitempty"`

	// Shared-scan economics of one fanout-k cycle.
	Class     string  `json:"class,omitempty"`
	Fanout    int     `json:"fanout,omitempty"`
	Sigma     float64 `json:"sigma,omitempty"`
	WorkRatio float64 `json:"work_ratio,omitempty"` // merged demand / k independent scans

	// Experiment outcome: the consolidation the credit buys and the replay
	// attainment defending it.
	BareNodes          int     `json:"bare_nodes,omitempty"`
	SharedNodes        int     `json:"shared_nodes,omitempty"`
	ConsolidationRatio float64 `json:"consolidation_ratio,omitempty"`
	BareAttainment     float64 `json:"bare_attainment,omitempty"`
	SharedAttainment   float64 `json:"shared_attainment,omitempty"`
	SharedBatches      uint64  `json:"shared_batches,omitempty"`
	SharedJoins        uint64  `json:"shared_joins,omitempty"`
	Deterministic      *bool   `json:"deterministic,omitempty"`
	Verdict            string  `json:"verdict,omitempty"`
}

// TestWriteSharedBenchJSON measures the shared-work executor's hot-path
// cost against the plain path, the virtual-time work ratio of a merged
// batch, and the full sharing experiment's consolidation-vs-attainment
// outcome, writes them to BENCH_JSON_OUT, and enforces the acceptance bars:
// the merged cycle must cost (1+(k−1)σ)/k of the independent one, the
// shared submit path must stay within 5× of the plain path's wall cost, and
// the experiment verdict must PASS (strictly fewer nodes, attainment within
// a point, byte-deterministic re-run). Skipped unless BENCH_JSON_OUT is set
// (`make bench-shareddb` sets it).
func TestWriteSharedBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON_OUT")
	if out == "" {
		t.Skip("BENCH_JSON_OUT not set; run via `make bench-shareddb`")
	}
	cl := sharedBenchClass(t)
	sigma := cl.ShareSigma()
	var recs []SharedBenchRecord

	rShared := testing.Benchmark(BenchmarkSharedSubmitCycle)
	rPlain := testing.Benchmark(BenchmarkPlainSubmitCycle)
	for _, m := range []struct {
		name string
		r    testing.BenchmarkResult
	}{
		{"BenchmarkSharedSubmitCycle", rShared},
		{"BenchmarkPlainSubmitCycle", rPlain},
	} {
		recs = append(recs, SharedBenchRecord{
			Name:        m.name,
			Iterations:  m.r.N,
			NsPerOp:     m.r.NsPerOp(),
			AllocsPerOp: m.r.AllocsPerOp(),
			BytesPerOp:  m.r.AllocedBytesPerOp(),
			Class:       cl.ID,
			Fanout:      sharedBenchFanout,
		})
	}
	if rShared.NsPerOp() > 5*rPlain.NsPerOp() {
		t.Errorf("shared submit cycle %d ns/op exceeds 5× the plain path's %d ns/op",
			rShared.NsPerOp(), rPlain.NsPerOp())
	}

	mergedSec := cycleDemand(t, true)
	plainSec := cycleDemand(t, false)
	ratio := mergedSec / plainSec
	want := (1 + float64(sharedBenchFanout-1)*sigma) / float64(sharedBenchFanout)
	recs = append(recs, SharedBenchRecord{
		Name:      "SharedWorkRatio",
		Class:     cl.ID,
		Fanout:    sharedBenchFanout,
		Sigma:     sigma,
		WorkRatio: ratio,
	})
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("merged work ratio %.6f, want (1+(k−1)σ)/k = %.6f for σ=%.3f k=%d",
			ratio, want, sigma, sharedBenchFanout)
	}

	env, err := NewEnv(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SharingOutcome(env)
	if err != nil {
		t.Fatal(err)
	}
	det := res.Deterministic()
	recs = append(recs, SharedBenchRecord{
		Name:               "SharingExperimentOutcome",
		BareNodes:          res.BarePlan.NodesUsed(),
		SharedNodes:        res.SharedPlan.NodesUsed(),
		ConsolidationRatio: res.ConsolidationRatio(),
		BareAttainment:     res.BareAttainment,
		SharedAttainment:   res.SharedAttainment,
		SharedBatches:      res.Batches,
		SharedJoins:        res.Joins,
		Deterministic:      &det,
		Verdict:            res.Verdict(),
	})
	if v := res.Verdict(); v != "PASS" {
		t.Errorf("sharing experiment: %s", v)
	}

	buf, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
