package experiments

import (
	"fmt"

	"repro/internal/divergent"
)

// DivergentDesign quantifies the §8 future-work extension for report-only
// tenants with known templates: how many concurrently active tenants a
// single upfront-widened G₀ can absorb at each U, with and without
// partition-aligned (divergent) physical designs — versus plain TDD, where
// absorbing a k-th concurrent tenant means reactively provisioning a whole
// new MPPDB (hours of bulk loading, §5.1).
func DivergentDesign(env *Env) (*Table, error) {
	cat := env.Cat
	mk := func(classID, tenant string, nodes int) divergent.Template {
		cl, ok := cat.ByID(classID)
		if !ok {
			panic("missing class " + classID)
		}
		return divergent.Template{
			Class:          cl,
			Tenant:         tenant,
			DataGB:         100 * float64(nodes),
			RequestedNodes: nodes,
		}
	}
	// A 4-node report-generation group mixing linear and non-linear
	// templates (the non-linear ones are why plain scale-up fails).
	templates := []divergent.Template{
		mk("TPCH-Q1", "T1", 4),
		mk("TPCH-Q6", "T1", 4),
		mk("TPCH-Q19", "T2", 4),
		mk("TPCH-Q12", "T2", 4),
		mk("TPCDS-Q3", "T3", 4),
		mk("TPCDS-Q96", "T3", 4),
	}
	t := &Table{
		Title: "Divergent design (§8) — min U for k concurrent tenants on G₀ (4-node group)",
		Columns: []string{"k concurrent", "min U (plain)", "min U (aligned)",
			"plain feasible", "aligned feasible"},
	}
	const maxU = 256
	for k := 1; k <= 5; k++ {
		pu, pok := divergent.MinU(templates, k, maxU)
		au, aok := divergent.MinUAligned(templates, k, maxU)
		plain, aligned := "—", "—"
		if pok {
			plain = fmt.Sprint(pu)
		}
		if aok {
			aligned = fmt.Sprint(au)
		}
		t.AddRow(k, plain, aligned, pok, aok)
	}
	return t, nil
}
