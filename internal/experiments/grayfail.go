package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/recovery"
	"repro/internal/recovery/chaos"
	"repro/internal/sim"
	"repro/internal/workload"
)

// largestSubPlan extracts the n most-populated groups of a plan (ties in plan
// order) as a standalone sub-plan plus the logs of their members — the shared
// scoping step of the chaos-style experiments.
func largestSubPlan(plan *advisor.Plan, logs []*workload.TenantLog, n int) (*advisor.Plan, []*workload.TenantLog) {
	type cand struct{ gi, members int }
	cands := make([]cand, 0, len(plan.Groups))
	for i := range plan.Groups {
		cands = append(cands, cand{i, len(plan.Groups[i].TenantIDs)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].members > cands[j].members })
	if len(cands) > n {
		cands = cands[:n]
	}
	subPlan := &advisor.Plan{Config: plan.Config}
	members := map[string]bool{}
	for _, c := range cands {
		pg := plan.Groups[c.gi]
		subPlan.Groups = append(subPlan.Groups, pg)
		for _, id := range pg.TenantIDs {
			members[id] = true
		}
	}
	var subLogs []*workload.TenantLog
	for _, tl := range logs {
		if members[tl.Tenant.ID] {
			subLogs = append(subLogs, tl)
		}
	}
	return subPlan, subLogs
}

// GrayFail measures the fail-slow response ladder: the same seeded storm of
// fractional slowdowns (stuck, gradual, flapping) replays three times against
// identical deployments of the largest tenant-groups — once with no faults at
// all (the attainment baseline), once bare (the deployment just eats the
// slowdown), and once with the gray detector armed (peer-relative anomaly
// detection → hedged duplicates → drain-and-replace). The verdict is the
// paper-style restoration bar: the protected run's per-query SLA attainment
// must land within one point of the no-fault baseline, while the bare run
// shows what gray failure costs an undefended deployment.
func GrayFail(env *Env) ([]*Table, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	acfg := advisor.DefaultConfig()
	adv, err := advisor.New(acfg)
	if err != nil {
		return nil, err
	}
	plan, err := adv.Plan(logs, env.Horizon())
	if err != nil {
		return nil, err
	}
	subPlan, subLogs := largestSubPlan(plan, logs, env.Scale.ReplayGroups)

	// One storm config for every arm; an explicit empty schedule turns the
	// injection off for the baseline while keeping the replay identical.
	run := func(gray *recovery.GrayConfig, sched []chaos.Slowdown) (*chaos.GrayFailResult, error) {
		eng := sim.NewEngine()
		pool := cluster.NewPool(2 * subPlan.NodesUsed())
		m := master.New(eng, pool, master.Options{Immediate: true, Gray: gray})
		dep, err := m.Deploy(subPlan, Tenants(subLogs))
		if err != nil {
			return nil, err
		}
		cfg := chaos.DefaultGrayFailConfig()
		cfg.Seed = env.Seed
		cfg.From, cfg.To = 0, sim.Day
		// Drain-and-replace pays the Table 5.1 reload of the group's share,
		// which for the largest groups runs past a day.
		cfg.DrainSlack = 3 * 24 * time.Hour
		cfg.Slowdowns = sched
		return chaos.RunGrayFail(eng, dep, env.Cat, subLogs, cfg)
	}

	baseline, err := run(nil, []chaos.Slowdown{})
	if err != nil {
		return nil, err
	}
	bare, err := run(nil, nil)
	if err != nil {
		return nil, err
	}
	// Affinity routing leaves some instances sample-sparse, so the profile
	// window is short enough for the mean to track an onset within a few
	// completions. Clearing demands a healthy stretch longer than the
	// flapping profile's off-phase (BuildSlowdowns flaps on a Duration/6
	// half-cycle), so a flapper stays hedged across its whole episode
	// instead of being re-admitted and re-detected every cycle. Drain
	// patience must outlast a transient episode (~2 h here) so hedging
	// carries the group through and the multi-day Table 5.1 reload is
	// reserved for instances that stay sick.
	gcfg := recovery.DefaultGrayConfig()
	gcfg.Window = 16
	gcfg.MinSamples = 4
	gcfg.ConfirmBeats = 2
	gcfg.ClearBeats = 30
	gcfg.DrainAfter = 4 * time.Hour
	protected, err := run(&gcfg, nil)
	if err != nil {
		return nil, err
	}

	schedule := &Table{
		Title:   fmt.Sprintf("Gray failure — injected fail-slow schedule (group %s, seed %d)", bare.Group, env.Seed),
		Columns: []string{"at", "instance", "profile", "factor", "duration"},
	}
	for _, e := range bare.Schedule {
		schedule.AddRow(e.At.String(), e.Instance, string(e.Profile),
			fmt.Sprintf("%.2f", e.Factor), e.Duration.String())
	}

	ladder := &Table{
		Title:   "Gray failure — detector episodes (protected run)",
		Columns: []string{"mppdb", "suspected", "confirmed", "drained", "cleared", "resolution", "hedged in-flight"},
	}
	for _, ev := range protected.GrayEvents {
		mark := func(t sim.Time) string {
			if t == 0 {
				return "—"
			}
			return t.String()
		}
		ladder.AddRow(ev.MPPDB, ev.Suspected.String(), mark(ev.Confirmed),
			mark(ev.Drained), mark(ev.Cleared), ev.Resolution, ev.Hedged)
	}

	verdict := "PASS"
	if err := baseline.Verify(); err != nil {
		verdict = fmt.Sprintf("FAIL: baseline: %v", err)
	} else if err := bare.Verify(); err != nil {
		verdict = fmt.Sprintf("FAIL: bare: %v", err)
	} else if err := protected.Verify(); err != nil {
		verdict = fmt.Sprintf("FAIL: protected: %v", err)
	} else if protected.Attainment < baseline.Attainment-0.01 {
		verdict = fmt.Sprintf("FAIL: protected attainment %.4f more than 1%% below no-fault %.4f",
			protected.Attainment, baseline.Attainment)
	}

	outcome := &Table{
		Title:   fmt.Sprintf("Gray failure — bare vs hedge→drain ladder (%d groups, seed %d)", len(subPlan.Groups), env.Seed),
		Columns: []string{"metric", "no-fault", "bare", "protected"},
	}
	outcome.AddRow("per-query SLA attainment", pct(baseline.Attainment), pct(bare.Attainment), pct(protected.Attainment))
	outcome.AddRow("worst member attainment", pct(baseline.MinAttainment), pct(bare.MinAttainment), pct(protected.MinAttainment))
	outcome.AddRow("min RT-TTP", fmt.Sprintf("%.4f", baseline.MinRTTTP),
		fmt.Sprintf("%.4f", bare.MinRTTTP), fmt.Sprintf("%.4f", protected.MinRTTTP))
	outcome.AddRow("episodes suspected/confirmed/drained", "0/0/0",
		fmt.Sprintf("%d/%d/%d", bare.Suspected, bare.Confirmed, bare.Drained),
		fmt.Sprintf("%d/%d/%d", protected.Suspected, protected.Confirmed, protected.Drained))
	outcome.AddRow("queries hedged (peer wins)", "0 (0)",
		fmt.Sprintf("%d (%d)", bare.Hedged, bare.HedgeWins),
		fmt.Sprintf("%d (%d)", protected.Hedged, protected.HedgeWins))
	outcome.AddRow("pool active/expected",
		fmt.Sprintf("%d/%d", baseline.ActiveNodes, baseline.ExpectedActive),
		fmt.Sprintf("%d/%d", bare.ActiveNodes, bare.ExpectedActive),
		fmt.Sprintf("%d/%d", protected.ActiveNodes, protected.ExpectedActive))
	outcome.AddRow("verdict", "", "", verdict)
	return []*Table{schedule, ladder, outcome}, nil
}
