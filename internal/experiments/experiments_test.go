package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// tinyScale keeps unit tests fast; the Small scale is for benchmarks.
var tinyScale = Scale{
	Name:             "tiny",
	Tenants:          120,
	TenantSweep:      []int{60, 120},
	Days:             7,
	SessionsPerClass: 4,
	Sizes:            []int{2, 4, 8},
	EpochSweep:       []float64{10, 600},
	ReplayGroups:     1,
}

var sharedEnv *Env

func testEnv(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		env, err := NewEnv(tinyScale, 42)
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = env
	}
	return sharedEnv
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow(1, "x")
	tb.AddRow(2.5, "yy")
	s := tb.String()
	if !strings.Contains(s, "## demo") || !strings.Contains(s, "2.5") {
		t.Errorf("render:\n%s", s)
	}
}

func TestFig11a(t *testing.T) {
	tb, err := Fig11aSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(fig11Nodes) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Structural assertions on the last (8-node) row:
	last := tb.Rows[len(tb.Rows)-1]
	oneT := atof(t, last[1])
	twoSeq := atof(t, last[2])
	twoCon := atof(t, last[3])
	fourCon := atof(t, last[5])
	if oneT < 5.0 {
		t.Errorf("Q1 8-node speedup %v, want near-linear", oneT)
	}
	// Sequential sharing ≈ free.
	if d := twoSeq / oneT; d < 0.95 || d > 1.05 {
		t.Errorf("2T-SEQ/1T = %v, want ≈1", d)
	}
	// Concurrent sharing halves/quarters the speedup.
	if d := twoCon / oneT; d < 0.45 || d > 0.55 {
		t.Errorf("2T-CON/1T = %v, want ≈0.5", d)
	}
	if d := fourCon / oneT; d < 0.2 || d > 0.3 {
		t.Errorf("4T-CON/1T = %v, want ≈0.25", d)
	}
}

func TestFig11b(t *testing.T) {
	tb, err := Fig11bLatency()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	ratio := func(i int) float64 {
		return atof(t, strings.TrimSuffix(tb.Rows[i][3], "×"))
	}
	// B (6-node, 1 active) beats the SLA; C (2 active) still ≤ 1; E/F blow it.
	if ratio(1) >= 1.0 {
		t.Errorf("point B = %v×, want < 1", ratio(1))
	}
	if ratio(2) > 1.0 {
		t.Errorf("point C = %v×, want ≤ 1", ratio(2))
	}
	if ratio(3) < 1.8 || ratio(4) < 3.5 {
		t.Errorf("points E/F = %v×/%v×, want ≈2×/≈4×", ratio(3), ratio(4))
	}
}

func TestFig11c(t *testing.T) {
	tb, err := Fig11cNonLinear()
	if err != nil {
		t.Fatal(err)
	}
	last := tb.Rows[len(tb.Rows)-1]
	if s := atof(t, last[1]); s > 4.0 {
		t.Errorf("Q19 8-node speedup %v, want a plateau", s)
	}
}

func TestTable51(t *testing.T) {
	tb := Table51Provisioning()
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "2-node / 200GB" || tb.Rows[4][0] != "10-node / 1TB" {
		t.Errorf("labels: %v / %v", tb.Rows[0][0], tb.Rows[4][0])
	}
}

// TestSweepsShape runs the consolidation sweeps at tiny scale and checks
// the paper's qualitative findings hold.
func TestSweepsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps compose several populations")
	}
	env := testEnv(t)

	logs, err := env.DefaultLogs()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := MeasureConsolidation(logs, env.Horizon(), DefaultEpoch, DefaultR, DefaultP, "default")
	if err != nil {
		t.Fatal(err)
	}
	// The central comparison: 2-step beats FFD on node savings.
	if pt.TwoStep.Effectiveness < pt.FFD.Effectiveness {
		t.Errorf("2-step %.3f < FFD %.3f", pt.TwoStep.Effectiveness, pt.FFD.Effectiveness)
	}
	if pt.TwoStep.Effectiveness < 0.4 {
		t.Errorf("2-step effectiveness %.3f implausibly low", pt.TwoStep.Effectiveness)
	}

	// Fig 7.4: higher R ⇒ larger groups.
	r1, err := MeasureConsolidation(logs, env.Horizon(), DefaultEpoch, 1, DefaultP, "R1")
	if err != nil {
		t.Fatal(err)
	}
	r4, err := MeasureConsolidation(logs, env.Horizon(), DefaultEpoch, 4, DefaultP, "R4")
	if err != nil {
		t.Fatal(err)
	}
	if r4.TwoStep.MeanGroupSize <= r1.TwoStep.MeanGroupSize {
		t.Errorf("group size did not grow with R: R1=%.1f R4=%.1f",
			r1.TwoStep.MeanGroupSize, r4.TwoStep.MeanGroupSize)
	}

	// Fig 7.5: a looser SLA saves more nodes.
	p95, err := MeasureConsolidation(logs, env.Horizon(), DefaultEpoch, DefaultR, 0.95, "95")
	if err != nil {
		t.Fatal(err)
	}
	if p95.TwoStep.Effectiveness < pt.TwoStep.Effectiveness {
		t.Errorf("P=95%% effectiveness %.3f below P=99.9%% %.3f",
			p95.TwoStep.Effectiveness, pt.TwoStep.Effectiveness)
	}

	// Fig 7.1: a huge epoch loses effectiveness vs the 10 s default.
	e1800, err := MeasureConsolidation(logs, env.Horizon(), 1800*sim.Second, DefaultR, DefaultP, "1800")
	if err != nil {
		t.Fatal(err)
	}
	if e1800.TwoStep.Effectiveness > pt.TwoStep.Effectiveness {
		t.Errorf("E=1800s effectiveness %.3f above E=10s %.3f",
			e1800.TwoStep.Effectiveness, pt.TwoStep.Effectiveness)
	}

	// Fig 7.6: the single-zone variant collapses effectiveness.
	hot, err := env.ComposeLogs(tinyScale.Tenants, DefaultTheta, workload.VariantSingleZoneNoLunch)
	if err != nil {
		t.Fatal(err)
	}
	hotPt, err := MeasureConsolidation(hot, env.Horizon(), DefaultEpoch, DefaultR, DefaultP, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if hotPt.TwoStep.Effectiveness >= pt.TwoStep.Effectiveness {
		t.Errorf("single-zone effectiveness %.3f not below default %.3f",
			hotPt.TwoStep.Effectiveness, pt.TwoStep.Effectiveness)
	}
	if hotPt.ActiveRatio <= pt.ActiveRatio {
		t.Errorf("single-zone ratio %.3f not above default %.3f",
			hotPt.ActiveRatio, pt.ActiveRatio)
	}
}

func TestHeadlineTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("replays deployments")
	}
	env := testEnv(t)
	res, err := Headline(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summary.Rows) == 0 || len(res.Validation.Rows) == 0 {
		t.Fatal("empty headline result")
	}
	// The SLA guarantee P is over *time* (TTP); per-query attainment runs a
	// little lower because the >R-active windows are exactly the busiest
	// ones (and an overflow query also slows whoever holds G₀). It must
	// still be in the high nineties.
	for _, row := range res.Validation.Rows {
		att := atof(t, strings.TrimSuffix(row[4], "%"))
		if att < 97.0 {
			t.Errorf("group %s attainment %v%%, want ≥97%%", row[0], att)
		}
	}
}

func TestFig77Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("replays deployments twice")
	}
	env := testEnv(t)
	res, err := Fig77ElasticScaling(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline.Rows) == 0 {
		t.Fatal("no timeline")
	}
	// The enabled run must have scaled at least once.
	if len(res.Events.Rows) == 0 {
		t.Fatalf("no scaling events; perf table:\n%s\ntimeline:\n%s", res.Perf, res.Timeline)
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return f
}

func TestAblationSolvers(t *testing.T) {
	if testing.Short() {
		t.Skip("solves the default instance three times")
	}
	env := testEnv(t)
	tb, err := AblationSolvers(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	two := atof(t, strings.TrimSuffix(tb.Rows[0][1], "%"))
	ffd := atof(t, strings.TrimSuffix(tb.Rows[1][1], "%"))
	global := atof(t, strings.TrimSuffix(tb.Rows[2][1], "%"))
	if two < ffd {
		t.Errorf("2-step %.1f%% below FFD %.1f%%", two, ffd)
	}
	if global >= ffd {
		t.Errorf("size-oblivious FFD %.1f%% not below size-aware %.1f%%", global, ffd)
	}
	// Exact ≥ 2-step on the same subsample.
	exact := atof(t, strings.TrimSuffix(tb.Rows[3][1], "%"))
	twoSub := atof(t, strings.TrimSuffix(tb.Rows[4][1], "%"))
	if twoSub > exact+1e-9 {
		t.Errorf("2-step %.1f%% beat the optimum %.1f%%", twoSub, exact)
	}
}

func TestDivergentDesignExperiment(t *testing.T) {
	env := testEnv(t)
	tb, err := DivergentDesign(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// k=1 is feasible either way; some higher k must be aligned-only.
	if tb.Rows[0][3] != "true" || tb.Rows[0][4] != "true" {
		t.Errorf("k=1 row: %v", tb.Rows[0])
	}
	alignedOnly := false
	for _, row := range tb.Rows {
		if row[3] == "false" && row[4] == "true" {
			alignedOnly = true
		}
	}
	if !alignedOnly {
		t.Error("no k where only the divergent design is feasible — the §8 motivation is missing")
	}
}

func TestOverloadStormTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a storm against two deployments")
	}
	env := testEnv(t)
	tables, err := OverloadStorm(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || len(tables[0].Rows) == 0 || len(tables[1].Rows) == 0 {
		t.Fatalf("tables: %v", tables)
	}
	summary := tables[1].String()
	// The admission-controlled run must protect every compliant tenant and
	// actually throttle the storm; baseline damage is asserted at full
	// storm scale in the chaos package.
	if !strings.Contains(summary, "PASS") {
		t.Fatalf("protection verdict not PASS:\n%s", summary)
	}
	for _, row := range tables[1].Rows {
		if row[0] == "storm throttled (429)" {
			if n := atof(t, row[3]); n <= 0 {
				t.Fatalf("admission run throttled %v storm queries:\n%s", n, summary)
			}
		}
	}
}
