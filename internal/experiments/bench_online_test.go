package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/advisor"
	"repro/internal/epoch"
	"repro/internal/online"
	"repro/internal/sim"
)

// benchPlacerWorld builds a live partition of n tenants in feasible 8-member
// groups over the advisor's default planning grid (one day at the default
// epoch width). Activity is a deterministic slot pattern: members of a group
// stagger their single active span so the group trivially satisfies the
// fuzzy-capacity constraint.
func benchPlacerWorld(tb testing.TB, n int) (*online.Placer, []string, int64) {
	tb.Helper()
	cfg := advisor.DefaultConfig()
	d := int64(sim.Day / cfg.Epoch)
	pl := online.NewPlacer(d, cfg.R, cfg.P)
	const perGroup = 8
	nGroups := n / perGroup
	gids := make([]string, 0, nGroups)
	for g := 0; g < nGroups; g++ {
		gid := fmt.Sprintf("G%05d", g)
		if _, err := pl.AddGroup(gid, 2); err != nil {
			tb.Fatal(err)
		}
		gids = append(gids, gid)
		for m := 0; m < perGroup; m++ {
			id := fmt.Sprintf("T%06d", g*perGroup+m)
			s := int32(int64(m) * d / perGroup)
			e := s + int32(d/(2*perGroup))
			if _, err := pl.Register(id, 2, epoch.Spans{{S: s, E: e}}); err != nil {
				tb.Fatal(err)
			}
			if err := pl.Assign(id, gid); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return pl, gids, d
}

// benchReplan measures one steady-state re-plan decision of the online loop:
// rank the members of a (supposedly broken) group by eviction relief, then
// find the lexicographically best feasible target group for a tenant-sized
// probe profile with a bounded T_best scan across every group. This is the
// repair path the controller pays per drift event, so its latency against
// the epoch width is the headline "online beats the epoch clock" number.
func benchReplan(b *testing.B, n int) {
	pl, gids, d := benchPlacerWorld(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gid := gids[i%len(gids)]
		_ = pl.EvictionOrder(gid)
		off := int32(int64(i%16) * d / 16)
		_, _ = pl.BestGroup(2, epoch.Spans{{S: off, E: off + int32(d/16)}}, gid)
	}
}

func BenchmarkReplan10k(b *testing.B)  { benchReplan(b, 10_000) }
func BenchmarkReplan100k(b *testing.B) { benchReplan(b, 100_000) }

// OnlineBenchRecord is one measurement persisted to BENCH_online.json by
// `make bench-online`.
type OnlineBenchRecord struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations,omitempty"`
	NsPerOp     int64  `json:"ns_per_op,omitempty"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64  `json:"bytes_per_op,omitempty"`
	Tenants     int    `json:"tenants,omitempty"`
	Groups      int    `json:"groups,omitempty"`
	// EpochWidthNs and the ratio document that a re-plan decision is far
	// faster than the epoch clock it races.
	EpochWidthNs    int64   `json:"epoch_width_ns,omitempty"`
	EpochOverReplan float64 `json:"epoch_width_over_replan,omitempty"`
	// Drift-scenario outcome: online control loop vs clairvoyant offline
	// re-solve.
	OnlineAttainment float64 `json:"online_attainment,omitempty"`
	OracleAttainment float64 `json:"oracle_attainment,omitempty"`
	AttainmentDelta  float64 `json:"attainment_delta,omitempty"`
	NoDrop           *bool   `json:"no_drop,omitempty"`
}

// TestWriteOnlineBenchJSON measures the online loop's steady-state re-plan
// latency at 10k and 100k tenants and the drift scenario's online-vs-oracle
// SLA attainment, writes them to BENCH_JSON_OUT, and enforces the
// acceptance bars: re-plan at least 100× faster than the epoch width, no
// dropped queries, attainment within 1% of the oracle. Skipped unless
// BENCH_JSON_OUT is set (`make bench-online` sets it).
func TestWriteOnlineBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON_OUT")
	if out == "" {
		t.Skip("BENCH_JSON_OUT not set; run via `make bench-online`")
	}
	epochNs := int64(advisor.DefaultConfig().Epoch)
	var recs []OnlineBenchRecord
	for _, bm := range []struct {
		name    string
		tenants int
		run     func(*testing.B)
	}{
		{"BenchmarkReplan10k", 10_000, BenchmarkReplan10k},
		{"BenchmarkReplan100k", 100_000, BenchmarkReplan100k},
	} {
		r := testing.Benchmark(bm.run)
		ratio := float64(epochNs) / float64(r.NsPerOp())
		recs = append(recs, OnlineBenchRecord{
			Name:            bm.name,
			Iterations:      r.N,
			NsPerOp:         r.NsPerOp(),
			AllocsPerOp:     r.AllocsPerOp(),
			BytesPerOp:      r.AllocedBytesPerOp(),
			Tenants:         bm.tenants,
			Groups:          bm.tenants / 8,
			EpochWidthNs:    epochNs,
			EpochOverReplan: ratio,
		})
		if ratio < 100 {
			t.Errorf("%s: re-plan %d ns/op is only %.1f× under the %d ns epoch width (bar: 100×)",
				bm.name, r.NsPerOp(), ratio, epochNs)
		}
	}

	env, err := NewEnv(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DriftOutcome(env, DefaultDriftConfig())
	if err != nil {
		t.Fatal(err)
	}
	nd := res.NoDrop()
	recs = append(recs, OnlineBenchRecord{
		Name:             "DriftOnlineVsOracle",
		OnlineAttainment: res.OnlineAttainment,
		OracleAttainment: res.OracleAttainment,
		AttainmentDelta:  res.AttainmentDelta(),
		NoDrop:           &nd,
	})
	if !nd {
		t.Errorf("drift scenario dropped queries: %d accepted, %d completed",
			res.Submitted-res.SubmitErrors, res.Completed)
	}
	if d := res.AttainmentDelta(); d > 0.01 {
		t.Errorf("online attainment %.4f is %.2f%% behind the oracle %.4f (bar: 1%%)",
			res.OnlineAttainment, 100*d, res.OracleAttainment)
	}

	buf, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
