package experiments

import (
	"fmt"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/replay"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig77Result carries the elastic-scaling experiment's two runs (scaling
// disabled = panels a/b, enabled = panels c/d).
type Fig77Result struct {
	Group      string
	Members    int
	Timeline   *Table // RT-TTP over time, both runs side by side
	Perf       *Table // normalized query performance of the group
	Events     *Table // scaling actions of the enabled run
	TakeOverAt sim.Time
}

// Tables renders the result.
func (r *Fig77Result) Tables() []*Table {
	return []*Table{r.Timeline, r.Perf, r.Events}
}

// Fig77ElasticScaling reproduces §7.5 / Figure 7.7: pick a tenant-group
// from the default deployment plan, replay its real activity, take over one
// tenant partway in ("we manually took over a tenant at time Y and
// continuously submitted queries on behalf of that tenant"), and compare
// the group's run-time behaviour with elastic scaling disabled (RT-TTP
// stays depressed, queries keep missing the SLA) and enabled (the
// over-active tenant is carved out onto a dedicated MPPDB and RT-TTP
// recovers).
func Fig77ElasticScaling(env *Env) (*Fig77Result, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	acfg := advisor.DefaultConfig()
	acfg.SolverWorkers = SolverWorkers
	adv, err := advisor.New(acfg)
	if err != nil {
		return nil, err
	}
	plan, err := adv.Plan(logs, env.Horizon())
	if err != nil {
		return nil, err
	}
	// Pick a multi-tenant 4-node group (the paper's group has 14 four-node
	// tenants); fall back to the biggest group of any size.
	var pick *advisor.PlannedGroup
	for i := range plan.Groups {
		g := &plan.Groups[i]
		if g.Design.N1 == 4 && len(g.TenantIDs) >= 4 {
			if pick == nil || len(g.TenantIDs) > len(pick.TenantIDs) {
				pick = g
			}
		}
	}
	if pick == nil {
		for i := range plan.Groups {
			g := &plan.Groups[i]
			if pick == nil || len(g.TenantIDs) > len(pick.TenantIDs) {
				pick = g
			}
		}
	}
	if pick == nil {
		return nil, fmt.Errorf("fig77: the plan has no groups")
	}

	// Restrict the world to just this group.
	subPlan := &advisor.Plan{Config: plan.Config, Groups: []advisor.PlannedGroup{*pick}}
	inGroup := map[string]bool{}
	for _, id := range pick.TenantIDs {
		inGroup[id] = true
	}
	var subLogs []*workload.TenantLog
	for _, tl := range logs {
		if inGroup[tl.Tenant.ID] {
			subLogs = append(subLogs, tl)
		}
	}
	victim := pick.TenantIDs[0]
	// Continuous submission: the interval is shorter than TPCH-Q1's latency
	// on the victim's configuration, so the tenant never goes inactive —
	// the paper's "continuously submitted queries on behalf of that tenant".
	takeOver := &replay.TakeOver{
		Tenant:   victim,
		Start:    sim.Time(1) * sim.Day,
		Interval: 3 * time.Second,
		ClassID:  "TPCH-Q1",
	}
	window := sim.Time(min(env.Scale.Days, 4)) * sim.Day

	type run struct {
		name    string
		scaling bool
		rep     *replay.Report
	}
	runs := []*run{{name: "disabled"}, {name: "enabled", scaling: true}}
	for _, r := range runs {
		eng := sim.NewEngine()
		pool := cluster.NewPool(subPlan.NodesUsed() + 64)
		m := master.New(eng, pool, master.Options{Immediate: true})
		dep, err := m.Deploy(subPlan, Tenants(subLogs))
		if err != nil {
			return nil, err
		}
		opts := replay.Options{
			From:        0,
			To:          window,
			SampleEvery: time.Hour,
			TakeOver:    takeOver,
		}
		if r.scaling {
			opts.EnableScaling = true
			opts.ScalerConfig = scaling.DefaultConfig(DefaultP, DefaultR)
		}
		rep, err := replay.Run(eng, dep, env.Cat, subLogs, opts)
		if err != nil {
			return nil, err
		}
		r.rep = rep
	}

	res := &Fig77Result{Group: pick.ID, Members: len(pick.TenantIDs), TakeOverAt: takeOver.Start}

	// Panel a/c: RT-TTP timelines.
	res.Timeline = &Table{
		Title:   fmt.Sprintf("Fig 7.7a/c — RT-TTP of %s (%d tenants; take-over of %s at %v)", pick.ID, res.Members, victim, takeOver.Start),
		Columns: []string{"time", "RT-TTP (scaling disabled)", "RT-TTP (scaling enabled)"},
	}
	dis, en := runs[0].rep.Samples[pick.ID], runs[1].rep.Samples[pick.ID]
	for i := 0; i < len(dis) && i < len(en); i++ {
		if i%6 != 0 { // print every 6 hours
			continue
		}
		res.Timeline.AddRow(dis[i].At.String(),
			fmt.Sprintf("%.4f", dis[i].RTTTP), fmt.Sprintf("%.4f", en[i].RTTTP))
	}

	// Panel b/d: normalized query performance after the take-over.
	res.Perf = &Table{
		Title:   "Fig 7.7b/d — query performance after the take-over (normalized; 1.0 = isolated SLA)",
		Columns: []string{"run", "queries", "SLA attainment", "worst normalized", "mean normalized"},
	}
	for _, r := range runs {
		var n, missed int
		worst, sum := 0.0, 0.0
		for _, rec := range r.rep.Records {
			if rec.Submit < takeOver.Start {
				continue
			}
			n++
			v := rec.Normalized()
			sum += v
			if v > worst {
				worst = v
			}
			if !rec.SLAMet() {
				missed++
			}
		}
		att := 1.0
		if n > 0 {
			att = 1 - float64(missed)/float64(n)
		}
		res.Perf.AddRow("scaling "+r.name, n, pct(att),
			fmt.Sprintf("%.2f×", worst), fmt.Sprintf("%.3f×", sum/float64(max(n, 1))))
	}

	// Scaling events of the enabled run.
	res.Events = &Table{
		Title:   "Fig 7.7 — elastic scaling actions (enabled run)",
		Columns: []string{"detected", "RT-TTP", "over-active", "new MPPDB", "nodes", "ready", "err"},
	}
	for _, ev := range runs[1].rep.ScalingEvents {
		res.Events.AddRow(ev.Detected.String(), fmt.Sprintf("%.4f", ev.RTTTP),
			fmt.Sprint(ev.OverActive), ev.MPPDB, ev.Nodes, ev.Ready.String(), ev.Err)
	}
	return res, nil
}
