package experiments

import (
	"fmt"
	"time"

	"repro/internal/epoch"
	"repro/internal/grouping"
)

// AblationSolvers dissects the two-step heuristic's advantage into its two
// ingredients on the default workload:
//
//   - size-homogeneous grouping (step 1): FFD-global drops it and pays the
//     largest-item objective for every mixed bin;
//   - activity-aware T_best selection (step 2): FFD keeps homogeneous bins
//     but packs in fixed decreasing-activity order, never examining how a
//     candidate's epochs interleave with the bin's.
//
// The exact optimum is included for a tiny subsample as a reference point.
func AblationSolvers(env *Env) (*Table, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	grid, err := epoch.NewGrid(DefaultEpoch, env.Horizon())
	if err != nil {
		return nil, err
	}
	prob := &grouping.Problem{D: grid.D, R: DefaultR, P: DefaultP}
	for _, tl := range logs {
		prob.Items = append(prob.Items, &grouping.Item{
			ID:    tl.Tenant.ID,
			Nodes: tl.Tenant.Nodes,
			Spans: grid.Quantize(tl.Activity),
		})
	}

	t := &Table{
		Title:   "Ablation — what the 2-step heuristic's ingredients buy",
		Columns: []string{"solver", "effectiveness", "mean group size", "time"},
	}
	type solver struct {
		name string
		run  func(*grouping.Problem) (*grouping.Solution, error)
	}
	for _, s := range []solver{
		{"2-step (size split + T_best)", grouping.Solver{Workers: SolverWorkers}.TwoStep},
		{"FFD (size split only)", grouping.FFD},
		{"FFD-global (neither)", grouping.FFDGlobal},
	} {
		sol, err := s.run(prob)
		if err != nil {
			return nil, err
		}
		if err := grouping.Verify(prob, sol); err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		t.AddRow(s.name, pct(sol.Effectiveness(prob)),
			fmt.Sprintf("%.1f", sol.MeanGroupSize()), sol.Elapsed.Round(time.Millisecond))
	}

	// Optimal reference on the first ExactLimit items of the largest size
	// class (exact search explodes beyond that — the paper's DIRECT run
	// took 12 days for 20 tenants).
	bySize := map[int][]*grouping.Item{}
	for _, it := range prob.Items {
		bySize[it.Nodes] = append(bySize[it.Nodes], it)
	}
	var biggest []*grouping.Item
	for _, items := range bySize {
		if len(items) > len(biggest) {
			biggest = items
		}
	}
	if len(biggest) > grouping.ExactLimit {
		biggest = biggest[:grouping.ExactLimit]
	}
	sub := &grouping.Problem{D: prob.D, R: prob.R, P: prob.P, Items: biggest}
	for _, s := range []solver{
		{fmt.Sprintf("exact (first %d same-size tenants)", len(biggest)), grouping.Exact},
		{"2-step on the same subsample", grouping.Solver{Workers: SolverWorkers}.TwoStep},
	} {
		sol, err := s.run(sub)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.name, pct(sol.Effectiveness(sub)),
			fmt.Sprintf("%.1f", sol.MeanGroupSize()), sol.Elapsed.Round(time.Millisecond))
	}
	return t, nil
}
