package experiments

import "testing"

// TestSharingSmoke is the pre-commit gate for shared-work execution. The
// full small-scale experiment must PASS its verdict — the sharing plan packs
// strictly fewer nodes, the full-deployment replay holds per-query SLA
// attainment within a point of the bare arm, the executor actually merged
// batches, and the same-seed shared re-run reproduces byte-for-byte. On top
// of the experiment's own bars, the sharing-OFF arm is replayed a second
// time and must reproduce ITS trace byte-for-byte too: the off-mode
// golden-hash equivalence guard. Off mode runs the weighted scheduler with
// every weight 1, whose arithmetic (·1.0, /(speed·1.0)) is IEEE-exact, so
// any divergence here is a real regression of the plain executor.
func TestSharingSmoke(t *testing.T) {
	env, err := NewEnv(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SharingOutcome(env)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Verdict(); v != "PASS" {
		t.Errorf("sharing experiment: %s", v)
	}
	if res.SharedAttainment < res.BareAttainment-0.01 {
		t.Errorf("shared attainment %.4f vs bare %.4f", res.SharedAttainment, res.BareAttainment)
	}
	bare2, err := runSharingArm(env, res.BarePlan, false)
	if err != nil {
		t.Fatal(err)
	}
	if bare2.digest != res.BareDigest {
		t.Errorf("same-seed sharing-OFF replays diverged: %016x vs %016x",
			bare2.digest, res.BareDigest)
	}
}
