// Package experiments regenerates every table and figure of the paper's
// evaluation (thesis chapters 1 and 7). Each experiment returns plain
// Tables so the cmd harness, the benchmarks, and EXPERIMENTS.md all render
// the same rows the paper reports.
//
// Experiments accept a Scale: Small keeps run times laptop-friendly for
// tests and benchmarks; Full reproduces the paper's parameters (Table 7.1:
// 5000 tenants, 30-day logs, 100 sessions per size class).
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/epoch"
	"repro/internal/grouping"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// Scale bounds an experiment run.
type Scale struct {
	Name string
	// Tenants is T for the default workload (Table 7.1 default: 5000).
	Tenants int
	// TenantSweep is the Fig 7.2 T axis.
	TenantSweep []int
	// Days is the composed log horizon (paper: 30).
	Days int
	// SessionsPerClass sizes the step-1 library (paper: 100).
	SessionsPerClass int
	// Sizes are the requestable node counts.
	Sizes []int
	// EpochSweep is the Fig 7.1 E axis in seconds.
	EpochSweep []float64
	// ReplayGroups bounds how many groups the SLA validation replays.
	ReplayGroups int
}

// Small is the default scale for tests and `go test -bench`.
var Small = Scale{
	Name:             "small",
	Tenants:          400,
	TenantSweep:      []int{100, 400, 800},
	Days:             7,
	SessionsPerClass: 10,
	Sizes:            []int{2, 4, 8, 16, 32},
	EpochSweep:       []float64{0.5, 1, 3, 10, 30, 90, 600, 1800},
	ReplayGroups:     3,
}

// Full reproduces the paper's Table 7.1 parameters.
var Full = Scale{
	Name:             "full",
	Tenants:          5000,
	TenantSweep:      []int{1000, 5000, 10000},
	Days:             30,
	SessionsPerClass: 100,
	Sizes:            []int{2, 4, 8, 16, 32},
	EpochSweep:       []float64{0.1, 0.5, 1, 3, 10, 30, 90, 600, 1800},
	ReplayGroups:     5,
}

// Table 7.1 defaults shared by every consolidation experiment.
const (
	DefaultTheta = 0.8
	DefaultR     = 3
	DefaultP     = 0.999
)

// DefaultEpoch is the default epoch size E. The paper defaults to 10 s for
// queries lasting tens of seconds; with our calibrated ~2–3 s queries the
// same epoch-to-query-duration ratio (and the saturation point of the
// Fig 7.1 sweep) sits at 3s. The interval-based planner's cost is
// epoch-size independent, so the finer grid is free.
var DefaultEpoch = 3 * sim.Second

// SolverWorkers bounds the grouping solver's parallelism in every
// experiment (see grouping.Solver). 0 or 1 solves serially; the solutions —
// and therefore every table — are identical at any worker count, only the
// planning-time column changes. Set from the -solver-workers flag.
var SolverWorkers int

// Env is the shared experimental environment: the query catalog and the
// step-1 session library, built once and reused by every experiment.
type Env struct {
	Scale Scale
	Seed  int64
	Cat   *queries.Catalog
	Lib   *workload.Library

	defaultLogs []*workload.TenantLog
}

// NewEnv builds the environment (collecting the session library is the
// expensive part).
func NewEnv(scale Scale, seed int64) (*Env, error) {
	cat := queries.Default()
	lib, err := workload.BuildLibrary(cat, scale.Sizes, scale.SessionsPerClass, seed)
	if err != nil {
		return nil, err
	}
	return &Env{Scale: scale, Seed: seed, Cat: cat, Lib: lib}, nil
}

// Horizon returns the composed log horizon.
func (e *Env) Horizon() sim.Time { return sim.Time(e.Scale.Days) * sim.Day }

// ComposeLogs generates a tenant population and 30-day (per scale) logs.
func (e *Env) ComposeLogs(tenants int, theta float64, v workload.HighActivityVariant) ([]*workload.TenantLog, error) {
	return workload.ComposeVariant(e.Lib, e.Cat, tenants, theta, e.Scale.Sizes, v, e.Scale.Days, e.Seed+11)
}

// DefaultLogs returns (and caches) the default-parameter logs.
func (e *Env) DefaultLogs() ([]*workload.TenantLog, error) {
	if e.defaultLogs == nil {
		logs, err := e.ComposeLogs(e.Scale.Tenants, DefaultTheta, workload.VariantDefault)
		if err != nil {
			return nil, err
		}
		e.defaultLogs = logs
	}
	return e.defaultLogs, nil
}

// Tenants extracts the tenant index from logs.
func Tenants(logs []*workload.TenantLog) map[string]*tenant.Tenant {
	out := make(map[string]*tenant.Tenant, len(logs))
	for _, tl := range logs {
		out[tl.Tenant.ID] = tl.Tenant
	}
	return out
}

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// ConsolidationPoint is one (E, T, θ, R, P) measurement comparing both
// solvers — the unit of every Fig 7.1–7.6 sweep.
type ConsolidationPoint struct {
	Label string
	// ActiveRatio is the population's measured mean active tenant ratio.
	ActiveRatio float64
	TwoStep     SolverPoint
	FFD         SolverPoint
}

// SolverPoint is one solver's outcome.
type SolverPoint struct {
	Effectiveness float64
	MeanGroupSize float64
	Groups        int
	Elapsed       time.Duration
}

// MeasureConsolidation builds the LIVBPwFC instance from logs at epoch width
// E and solves it with both algorithms.
func MeasureConsolidation(logs []*workload.TenantLog, horizon, E sim.Time, r int, p float64, label string) (*ConsolidationPoint, error) {
	grid, err := epoch.NewGrid(E, horizon)
	if err != nil {
		return nil, err
	}
	prob := &grouping.Problem{D: grid.D, R: r, P: p}
	for _, tl := range logs {
		prob.Items = append(prob.Items, &grouping.Item{
			ID:    tl.Tenant.ID,
			Nodes: tl.Tenant.Nodes,
			Spans: grid.Quantize(tl.Activity),
		})
	}
	pt := &ConsolidationPoint{Label: label}
	ratioGrid, err := epoch.NewGrid(workload.MonitorEpoch, horizon)
	if err != nil {
		return nil, err
	}
	pt.ActiveRatio = workload.ComputeStats(logs, ratioGrid).MeanActiveRatio
	two, err := grouping.Solver{Workers: SolverWorkers}.TwoStep(prob)
	if err != nil {
		return nil, err
	}
	if err := grouping.Verify(prob, two); err != nil {
		return nil, fmt.Errorf("2-step produced invalid solution: %w", err)
	}
	ffd, err := grouping.FFD(prob)
	if err != nil {
		return nil, err
	}
	if err := grouping.Verify(prob, ffd); err != nil {
		return nil, fmt.Errorf("FFD produced invalid solution: %w", err)
	}
	pt.TwoStep = SolverPoint{
		Effectiveness: two.Effectiveness(prob),
		MeanGroupSize: two.MeanGroupSize(),
		Groups:        len(two.Groups),
		Elapsed:       two.Elapsed,
	}
	pt.FFD = SolverPoint{
		Effectiveness: ffd.Effectiveness(prob),
		MeanGroupSize: ffd.MeanGroupSize(),
		Groups:        len(ffd.Groups),
		Elapsed:       ffd.Elapsed,
	}
	return pt, nil
}

// pointsToTable renders consolidation points in the three-panel layout of
// the Fig 7.x plots: effectiveness (a), mean group size (b), runtime (c).
func pointsToTable(title, axis string, pts []*ConsolidationPoint) *Table {
	t := &Table{
		Title: title,
		Columns: []string{axis, "active-ratio",
			"2step-eff", "ffd-eff", "2step-groupsz", "ffd-groupsz", "2step-time", "ffd-time"},
	}
	for _, p := range pts {
		t.AddRow(p.Label, pct(p.ActiveRatio),
			pct(p.TwoStep.Effectiveness), pct(p.FFD.Effectiveness),
			fmt.Sprintf("%.1f", p.TwoStep.MeanGroupSize), fmt.Sprintf("%.1f", p.FFD.MeanGroupSize),
			p.TwoStep.Elapsed, p.FFD.Elapsed)
	}
	return t
}

// seededRand returns a deterministic rand for auxiliary draws.
func (e *Env) seededRand(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(e.Seed ^ salt))
}

// defaultCatalog memoizes the built-in catalog for env-less experiments
// (Fig 1.1 and Table 5.1 depend only on the substrate models).
func defaultCatalog() *queries.Catalog {
	catOnce.Do(func() { catShared = queries.Default() })
	return catShared
}

var (
	catOnce   sync.Once
	catShared *queries.Catalog
)
