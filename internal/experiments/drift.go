package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/online"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/tdd"
	"repro/internal/workload"
)

// DriftConfig parameterizes the churn and activity-shift schedule of the
// continuous re-consolidation experiment.
type DriftConfig struct {
	// Window is the replayed interval.
	Window sim.Time
	// TickEvery is the online control loop's virtual period.
	TickEvery time.Duration
	// Joins is how many reserve tenants register during the window (one
	// every two hours from JoinStart).
	Joins int
	// Leaves is how many deployed tenants de-register during the window.
	Leaves int
	// JoinStart, LeaveStart anchor the churn schedule.
	JoinStart, LeaveStart sim.Time
	// TakeOverStart is when the §7.5 activity shift begins: one deployed
	// tenant turns continuously active and drifts away from its planned
	// profile.
	TakeOverStart sim.Time
}

// DefaultDriftConfig returns the standard one-day drift schedule.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{
		Window:        sim.Day,
		TickEvery:     15 * time.Minute,
		Joins:         2,
		Leaves:        2,
		JoinStart:     2 * sim.Hour,
		LeaveStart:    5 * sim.Hour,
		TakeOverStart: 6 * sim.Hour,
	}
}

// DriftResult is the outcome of the drift scenario: the online run's control
// loop statistics and query accounting against the offline oracle re-solve.
type DriftResult struct {
	// Stats is the online control loop's final counter snapshot.
	Stats online.Stats
	// Migrations is every live migration the loop executed.
	Migrations []online.Migration
	// Report is the loop's last scoped re-consolidation report (nil when
	// local repair sufficed).
	Report *advisor.ReconsolidationReport
	// Submitted / SubmitErrors / Completed account every query of the online
	// run (replayed, take-over, joiner, and leaver submissions combined).
	Submitted, SubmitErrors, Completed int
	// OnlineAttainment and OracleAttainment are the per-query SLA attainment
	// of the online run and of the offline oracle re-solve (which knows the
	// final population and the shifted activity in advance).
	OnlineAttainment, OracleAttainment float64
	// Hash fingerprints the online run's telemetry (events + trace): equal
	// seeds must produce equal hashes.
	Hash string
	// Victim is the taken-over tenant; Joined and Left are the churned IDs.
	Victim string
	Joined []string
	Left   []string
	Groups int
}

// NoDrop reports whether every successfully submitted query completed —
// the live-migration guarantee.
func (r *DriftResult) NoDrop() bool {
	return r.Completed == r.Submitted-r.SubmitErrors
}

// AttainmentDelta returns oracle minus online attainment (positive = online
// is worse).
func (r *DriftResult) AttainmentDelta() float64 {
	return r.OracleAttainment - r.OnlineAttainment
}

// driftWorld is the shared setup of the online and oracle runs.
type driftWorld struct {
	acfg    advisor.Config
	subPlan *advisor.Plan
	subLogs []*workload.TenantLog // initially deployed population
	joiners []*workload.TenantLog
	leavers []string
	victim  string
	logByID map[string]*workload.TenantLog
}

// buildDriftWorld plans the default population and carves the experiment's
// sub-world: the largest groups get deployed, reserve tenants from other
// groups become joiners, members of the second-picked group become leavers,
// and the largest group's first member is the take-over victim.
func buildDriftWorld(env *Env, cfg DriftConfig) (*driftWorld, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	acfg := advisor.DefaultConfig()
	acfg.SolverWorkers = SolverWorkers
	adv, err := advisor.New(acfg)
	if err != nil {
		return nil, err
	}
	plan, err := adv.Plan(logs, env.Horizon())
	if err != nil {
		return nil, err
	}
	type cand struct{ gi, members int }
	cands := make([]cand, 0, len(plan.Groups))
	for i := range plan.Groups {
		cands = append(cands, cand{i, len(plan.Groups[i].TenantIDs)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].members != cands[j].members {
			return cands[i].members > cands[j].members
		}
		return cands[i].gi < cands[j].gi
	})
	picked := cands
	if len(picked) > env.Scale.ReplayGroups {
		picked = picked[:env.Scale.ReplayGroups]
	}
	w := &driftWorld{acfg: acfg, logByID: map[string]*workload.TenantLog{}}
	for _, tl := range logs {
		w.logByID[tl.Tenant.ID] = tl
	}
	w.subPlan = &advisor.Plan{Config: plan.Config}
	inWorld := map[string]bool{}
	for _, c := range picked {
		pg := plan.Groups[c.gi]
		w.subPlan.Groups = append(w.subPlan.Groups, pg)
		for _, id := range pg.TenantIDs {
			inWorld[id] = true
			w.subLogs = append(w.subLogs, w.logByID[id])
		}
	}
	if len(w.subPlan.Groups) == 0 {
		return nil, fmt.Errorf("drift: the plan has no groups")
	}
	// Joiners: reserve tenants from groups outside the sub-world.
	for _, c := range cands[len(picked):] {
		if len(w.joiners) >= cfg.Joins {
			break
		}
		for _, id := range plan.Groups[c.gi].TenantIDs {
			if len(w.joiners) >= cfg.Joins {
				break
			}
			w.joiners = append(w.joiners, w.logByID[id])
		}
	}
	w.victim = w.subPlan.Groups[0].TenantIDs[0]
	// Leavers: from the last picked group, never the victim.
	last := w.subPlan.Groups[len(w.subPlan.Groups)-1]
	for _, id := range last.TenantIDs {
		if len(w.leavers) >= cfg.Leaves {
			break
		}
		if id != w.victim {
			w.leavers = append(w.leavers, id)
		}
	}
	return w, nil
}

// extraTraffic schedules out-of-band submissions (joiners after their join
// time, leavers before their departure) and tallies them.
type extraTraffic struct {
	submitted, errors int
}

func (x *extraTraffic) schedule(eng *sim.Engine, dep *master.Deployment, env *Env,
	tl *workload.TenantLog, from, to sim.Time) {
	for _, ev := range tl.Materialize(from, to) {
		ev := ev
		class, ok := env.Cat.ByID(ev.ClassID)
		if !ok {
			continue
		}
		eng.Schedule(ev.At, func(sim.Time) {
			x.submitted++
			if _, err := dep.SubmitWithTarget(ev.Tenant, class, ev.SLATarget); err != nil {
				x.errors++
			}
		})
	}
}

// telemetryHash fingerprints a deployment's event log and trace.
func telemetryHash(dep *master.Deployment) string {
	h := sha256.New()
	tel := dep.Telemetry()
	if tel != nil {
		tel.Events.Dump(h)
		tel.Tracer.Dump(h)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runDriftOnline executes the online half: deploy the initial sub-plan, arm
// the control loop, schedule churn and the take-over, and replay the window.
func runDriftOnline(env *Env, cfg DriftConfig, w *driftWorld) (*DriftResult, error) {
	eng := sim.NewEngine()
	pool := cluster.NewPool(w.subPlan.NodesUsed() + 64)
	m := master.New(eng, pool, master.Options{Immediate: true, ParallelLoad: true, MonitorWindow: 24 * time.Hour})
	dep, err := m.Deploy(w.subPlan, Tenants(w.subLogs))
	if err != nil {
		return nil, err
	}
	// The initial deployment is up before the window starts (Immediate), but
	// the control loop's migrations pay the Table 5.1 startup + reload costs:
	// new groups provision through a second, costed master on the same
	// engine and pool.
	mig := master.New(eng, pool, master.Options{ParallelLoad: true, MonitorWindow: 24 * time.Hour})
	ocfg := online.DefaultConfig(w.acfg, env.Horizon())
	ocfg.Interval = cfg.TickEvery
	ctl, err := online.New(eng, dep, mig, w.subPlan, w.subLogs, ocfg)
	if err != nil {
		return nil, err
	}
	ctl.Start()

	res := &DriftResult{Victim: w.victim}
	var extra extraTraffic
	for i, jl := range w.joiners {
		jl := jl
		at := cfg.JoinStart + sim.Time(i)*2*sim.Hour
		eng.Schedule(at, func(sim.Time) { ctl.Join(jl) })
		// The joiner's own traffic begins at registration; submissions before
		// its placement cuts over are rejected, not dropped.
		extra.schedule(eng, dep, env, jl, at, cfg.Window)
		res.Joined = append(res.Joined, jl.Tenant.ID)
	}
	for i, id := range w.leavers {
		id := id
		at := cfg.LeaveStart + sim.Time(i)*3*sim.Hour
		eng.Schedule(at, func(sim.Time) { ctl.Leave(id) })
		// The leaver submits normally until departure.
		extra.schedule(eng, dep, env, w.logByID[id], 0, at)
		res.Left = append(res.Left, id)
	}
	// Replay the steady population (leavers and joiners are scheduled above).
	leaving := map[string]bool{}
	for _, id := range w.leavers {
		leaving[id] = true
	}
	var replayLogs []*workload.TenantLog
	for _, tl := range w.subLogs {
		if !leaving[tl.Tenant.ID] {
			replayLogs = append(replayLogs, tl)
		}
	}
	rep, err := replay.Run(eng, dep, env.Cat, replayLogs, replay.Options{
		From:        0,
		To:          cfg.Window,
		SampleEvery: time.Hour,
		TakeOver: &replay.TakeOver{
			Tenant:   w.victim,
			Start:    cfg.TakeOverStart,
			Interval: 3 * time.Second,
			ClassID:  "TPCH-Q1",
		},
	})
	if err != nil {
		return nil, err
	}
	records := append(rep.Records, ctl.DrainedRecords()...)
	res.Stats = ctl.Status()
	res.Migrations = ctl.Migrations()
	res.Report = ctl.LastReport()
	res.Submitted = rep.Submitted + extra.submitted
	res.SubmitErrors = rep.SubmitErrors + extra.errors
	res.Completed = len(records)
	res.OnlineAttainment = attainment(records)
	res.Hash = telemetryHash(dep)
	res.Groups = res.Stats.Groups
	return res, nil
}

// runDriftOracle executes the offline oracle: a fresh advisor re-solve that
// already knows the final population and the victim's shifted activity, then
// the same window replayed against that clairvoyant deployment. Departed
// tenants are gone from the start (the oracle run carries slightly less
// load, which only flatters the oracle — the conservative direction for the
// online-within-1% comparison).
func runDriftOracle(env *Env, cfg DriftConfig, w *driftWorld) (float64, error) {
	adv, err := advisor.New(w.acfg)
	if err != nil {
		return 0, err
	}
	leaving := map[string]bool{}
	for _, id := range w.leavers {
		leaving[id] = true
	}
	var planLogs, replayLogs []*workload.TenantLog
	for _, tl := range w.subLogs {
		if leaving[tl.Tenant.ID] {
			continue
		}
		replayLogs = append(replayLogs, tl)
		if tl.Tenant.ID == w.victim {
			// The oracle plans on the victim's true (shifted) activity; the
			// replayed submissions stay identical to the online run.
			shifted := &workload.TenantLog{
				Tenant:   tl.Tenant,
				Sessions: tl.Sessions,
				Activity: append(append(epoch.Activity{}, tl.Activity...),
					epoch.Interval{Start: cfg.TakeOverStart, End: cfg.Window}),
			}
			planLogs = append(planLogs, shifted)
			continue
		}
		planLogs = append(planLogs, tl)
	}
	planLogs = append(planLogs, w.joiners...)

	plan, err := adv.Plan(planLogs, env.Horizon())
	if err != nil {
		return 0, err
	}
	// Tenants the planner excluded (over-active or bursty) still must be
	// served: give each a dedicated single-tenant group, as the online
	// loop's fallback does.
	tenants := Tenants(planLogs)
	for i, e := range plan.Excluded {
		tn := tenants[e.TenantID]
		design, err := tdd.NewClusterDesign(w.acfg.R, tn.Nodes, tn.Nodes)
		if err != nil {
			return 0, err
		}
		plan.Groups = append(plan.Groups, advisor.PlannedGroup{
			ID:        fmt.Sprintf("TG-X%04d", i),
			TenantIDs: []string{e.TenantID},
			Design:    design,
			TTP:       1,
		})
	}

	eng := sim.NewEngine()
	nodes := 0
	for _, pg := range plan.Groups {
		nodes += pg.Design.TotalNodes()
	}
	pool := cluster.NewPool(nodes + 64)
	m := master.New(eng, pool, master.Options{Immediate: true, ParallelLoad: true, MonitorWindow: 24 * time.Hour})
	dep, err := m.Deploy(plan, tenants)
	if err != nil {
		return 0, err
	}
	var extra extraTraffic
	for i, jl := range w.joiners {
		at := cfg.JoinStart + sim.Time(i)*2*sim.Hour
		extra.schedule(eng, dep, env, jl, at, cfg.Window)
	}
	rep, err := replay.Run(eng, dep, env.Cat, replayLogs, replay.Options{
		From:        0,
		To:          cfg.Window,
		SampleEvery: time.Hour,
		TakeOver: &replay.TakeOver{
			Tenant:   w.victim,
			Start:    cfg.TakeOverStart,
			Interval: 3 * time.Second,
			ClassID:  "TPCH-Q1",
		},
	})
	if err != nil {
		return 0, err
	}
	return attainment(rep.Records), nil
}

func attainment(recs []monitor.QueryRecord) float64 {
	if len(recs) == 0 {
		return 1
	}
	met := 0
	for _, r := range recs {
		if r.SLAMet() {
			met++
		}
	}
	return float64(met) / float64(len(recs))
}

// DriftOutcome runs the full drift scenario: online run plus oracle
// re-solve.
func DriftOutcome(env *Env, cfg DriftConfig) (*DriftResult, error) {
	w, err := buildDriftWorld(env, cfg)
	if err != nil {
		return nil, err
	}
	res, err := runDriftOnline(env, cfg, w)
	if err != nil {
		return nil, err
	}
	res.OracleAttainment, err = runDriftOracle(env, cfg, w)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Drift reproduces the continuous-operation scenario the paper's periodic
// re-consolidation (§3c, §5.1) only approximates: tenants join and leave
// mid-flight, one tenant's activity shifts (§7.5 take-over), and the online
// control loop keeps the deployment consolidated through live migrations —
// no Install swap, no dropped queries. The outcome compares the online run's
// SLA attainment with an offline oracle that re-solves the final population
// with perfect foresight.
func Drift(env *Env) ([]*Table, error) {
	cfg := DefaultDriftConfig()
	res, err := DriftOutcome(env, cfg)
	if err != nil {
		return nil, err
	}
	loop := &Table{
		Title:   fmt.Sprintf("Drift — online control loop (victim %s, %d joins, %d leaves, window %v)", res.Victim, len(res.Joined), len(res.Left), cfg.Window),
		Columns: []string{"metric", "value"},
	}
	loop.AddRow("control ticks", res.Stats.Ticks)
	loop.AddRow("delta epochs ingested", res.Stats.DeltaEpochs)
	loop.AddRow("drifted tenants detected", res.Stats.Drifts)
	loop.AddRow("joins / leaves processed", fmt.Sprintf("%d / %d", res.Stats.Joins, res.Stats.Leaves))
	loop.AddRow("local repair moves", res.Stats.LocalMoves)
	loop.AddRow("scoped re-consolidations", res.Stats.Fallbacks)
	loop.AddRow("migrations started / cut over", fmt.Sprintf("%d / %d", res.Stats.MigrationsStarted, res.Stats.MigrationsCutOver))
	loop.AddRow("groups retired", res.Stats.GroupsRetired)
	loop.AddRow("final groups / tenants", fmt.Sprintf("%d / %d", res.Stats.Groups, res.Stats.Tenants))

	migs := &Table{
		Title:   "Drift — live migrations (provision in background, drain, atomic cutover)",
		Columns: []string{"id", "kind", "tenants", "from", "to", "started", "ready", "cut over"},
	}
	for _, mg := range res.Migrations {
		from := mg.From
		if from == "" {
			from = "—"
		}
		migs.AddRow(mg.ID, mg.Kind, fmt.Sprint(mg.Tenants), from, mg.To,
			mg.Started.String(), mg.ReadyAt.String(), mg.CutOver)
	}

	outcome := &Table{
		Title:   "Drift — outcome (online vs offline oracle re-solve)",
		Columns: []string{"metric", "value"},
	}
	outcome.AddRow("queries submitted", res.Submitted)
	outcome.AddRow("submit rejects (pre-placement / post-departure)", res.SubmitErrors)
	outcome.AddRow("queries completed", res.Completed)
	noDrop := "PASS"
	if !res.NoDrop() {
		noDrop = fmt.Sprintf("FAIL: %d accepted, %d completed", res.Submitted-res.SubmitErrors, res.Completed)
	}
	outcome.AddRow("no dropped queries", noDrop)
	outcome.AddRow("online SLA attainment", pct(res.OnlineAttainment))
	outcome.AddRow("oracle SLA attainment", pct(res.OracleAttainment))
	verdict := "PASS"
	if res.AttainmentDelta() > 0.01 {
		verdict = fmt.Sprintf("FAIL: online %.2f%% behind the oracle", 100*res.AttainmentDelta())
	}
	outcome.AddRow("online within 1% of oracle", verdict)
	outcome.AddRow("telemetry hash", res.Hash[:16])
	return []*Table{loop, migs, outcome}, nil
}
