package experiments

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// driftTestCfg keeps the smoke fast enough for the -short -race gate: a
// half-day window with the full churn schedule compressed into it.
func driftTestCfg() DriftConfig {
	return DriftConfig{
		Window:        12 * sim.Hour,
		TickEvery:     15 * time.Minute,
		Joins:         1,
		Leaves:        1,
		JoinStart:     2 * sim.Hour,
		LeaveStart:    3 * sim.Hour,
		TakeOverStart: 4 * sim.Hour,
	}
}

// driftEnv widens the shared tiny env to two replay groups so local repair
// has somewhere to move tenants and the reserve groups supply joiners.
func driftEnv(t *testing.T) *Env {
	t.Helper()
	base := testEnv(t)
	env := &Env{Scale: base.Scale, Seed: base.Seed, Cat: base.Cat, Lib: base.Lib}
	env.Scale.ReplayGroups = 2
	return env
}

// TestDriftSmoke runs the full drift scenario — churn, activity shift,
// online repair with live migrations, oracle comparison — at tiny scale.
// Part of `make online-smoke` (with -race), so it must stay short-friendly.
func TestDriftSmoke(t *testing.T) {
	env := driftEnv(t)
	cfg := driftTestCfg()
	res, err := DriftOutcome(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Joins != 1 || res.Stats.Leaves != 1 {
		t.Errorf("churn processed: joins=%d leaves=%d, want 1/1", res.Stats.Joins, res.Stats.Leaves)
	}
	if res.Stats.Drifts == 0 {
		t.Error("the take-over victim's drift was never detected")
	}
	if res.Stats.MigrationsStarted == 0 || res.Stats.MigrationsCutOver == 0 {
		t.Errorf("no live migrations ran: %+v", res.Stats)
	}
	// The live-migration guarantee: every accepted query completed.
	if !res.NoDrop() {
		t.Errorf("dropped queries: %d accepted, %d completed",
			res.Submitted-res.SubmitErrors, res.Completed)
	}
	// The online loop must track the clairvoyant offline re-solve.
	if d := res.AttainmentDelta(); d > 0.01 {
		t.Errorf("online attainment %.4f is %.2f%% behind the oracle %.4f (budget 1%%)",
			res.OnlineAttainment, 100*d, res.OracleAttainment)
	}
	if res.Hash == "" {
		t.Error("no telemetry hash")
	}
}

// TestOnlineDeterminism replays the online half twice with the same seed:
// the telemetry dumps (events + trace) must be byte-identical — the online
// loop lives on the sim clock and introduces no nondeterminism.
func TestOnlineDeterminism(t *testing.T) {
	env := driftEnv(t)
	cfg := driftTestCfg()
	run := func() *DriftResult {
		w, err := buildDriftWorld(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runDriftOnline(env, cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Hash != b.Hash {
		t.Fatalf("same-seed online runs diverged:\n  %s\n  %s", a.Hash, b.Hash)
	}
	if a.Stats != b.Stats {
		t.Fatalf("same-seed stats diverged:\n  %+v\n  %+v", a.Stats, b.Stats)
	}
	if a.Submitted != b.Submitted || a.SubmitErrors != b.SubmitErrors || a.Completed != b.Completed {
		t.Fatalf("same-seed accounting diverged: %d/%d/%d vs %d/%d/%d",
			a.Submitted, a.SubmitErrors, a.Completed, b.Submitted, b.SubmitErrors, b.Completed)
	}
}
