package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig71EpochSize reproduces Figure 7.1: consolidation effectiveness, mean
// tenant-group size, and solver runtime as the epoch size E varies from
// sub-second to 1800 s. The paper finds effectiveness rising as E shrinks,
// saturating around E = 10 s (FFD ≈68→73%, 2-step →81.5%).
func Fig71EpochSize(env *Env) (*Table, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	var pts []*ConsolidationPoint
	for _, eSec := range env.Scale.EpochSweep {
		E := sim.Time(eSec * float64(sim.Second))
		pt, err := MeasureConsolidation(logs, env.Horizon(), E, DefaultR, DefaultP,
			fmt.Sprintf("%gs", eSec))
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pointsToTable("Fig 7.1 — varying epoch size E", "E", pts), nil
}

// Fig72Tenants reproduces Figure 7.2: effectiveness is largely insensitive
// to T, creeping up slightly with more tenants (79.3% → 83.3% from 1000 to
// 10000 in the paper) as the packer gets more choices.
func Fig72Tenants(env *Env) (*Table, error) {
	var pts []*ConsolidationPoint
	for _, t := range env.Scale.TenantSweep {
		logs, err := env.ComposeLogs(t, DefaultTheta, workload.VariantDefault)
		if err != nil {
			return nil, err
		}
		pt, err := MeasureConsolidation(logs, env.Horizon(), DefaultEpoch, DefaultR, DefaultP,
			fmt.Sprint(t))
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pointsToTable("Fig 7.2 — varying number of tenants T", "T", pts), nil
}

// Fig73Theta reproduces Figure 7.3: the 2-step heuristic is insensitive to
// the tenant-size distribution skew θ, while FFD degrades as the population
// becomes more uniform (large tenants mix into bins more often).
func Fig73Theta(env *Env) (*Table, error) {
	var pts []*ConsolidationPoint
	for _, theta := range []float64{0.1, 0.2, 0.5, 0.8, 0.99} {
		logs, err := env.ComposeLogs(env.Scale.Tenants, theta, workload.VariantDefault)
		if err != nil {
			return nil, err
		}
		pt, err := MeasureConsolidation(logs, env.Horizon(), DefaultEpoch, DefaultR, DefaultP,
			fmt.Sprintf("%.2f", theta))
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pointsToTable("Fig 7.3 — varying tenant distribution θ", "θ", pts), nil
}

// Fig74Replication reproduces Figure 7.4: a higher replication factor packs
// more tenants per group (4.7 → 22.2 from R=1 to R=4 in the paper) but
// effectiveness grows slowly (78.8% → 82.0%) because every extra replica
// consumes nodes.
func Fig74Replication(env *Env) (*Table, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	var pts []*ConsolidationPoint
	for _, r := range []int{1, 2, 3, 4} {
		pt, err := MeasureConsolidation(logs, env.Horizon(), DefaultEpoch, r, DefaultP,
			fmt.Sprint(r))
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pointsToTable("Fig 7.4 — varying replication factor R", "R", pts), nil
}

// Fig75SLA reproduces Figure 7.5: loosening the guarantee to 95% buys
// effectiveness (≈86.5%), while 99.9% and 99.99% behave alike (≈81.5%).
func Fig75SLA(env *Env) (*Table, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	var pts []*ConsolidationPoint
	for _, p := range []float64{0.95, 0.99, 0.999, 0.9999} {
		pt, err := MeasureConsolidation(logs, env.Horizon(), DefaultEpoch, DefaultR, p,
			fmt.Sprintf("%g%%", 100*p))
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pointsToTable("Fig 7.5 — varying performance SLA guarantee P", "P", pts), nil
}

// Fig76ActiveRatio reproduces Figure 7.6: the high-activity composition
// variants raise the mean active tenant ratio (paper: 11.9% → 25.1% →
// 30.7% → 34.4%) and effectiveness collapses accordingly (81.3% → 34.8%),
// with groups shrinking to ≈5 tenants.
func Fig76ActiveRatio(env *Env) (*Table, error) {
	var pts []*ConsolidationPoint
	for _, v := range []workload.HighActivityVariant{
		workload.VariantDefault,
		workload.VariantNorthAmerica,
		workload.VariantNorthAmericaNoLunch,
		workload.VariantSingleZoneNoLunch,
	} {
		logs, err := env.ComposeLogs(env.Scale.Tenants, DefaultTheta, v)
		if err != nil {
			return nil, err
		}
		pt, err := MeasureConsolidation(logs, env.Horizon(), DefaultEpoch, DefaultR, DefaultP,
			v.String())
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pointsToTable("Fig 7.6 — higher active tenant ratio", "variant", pts), nil
}
