package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/workload"
)

// HeadlineResult is the paper's banner claim (§1, abstract): under default
// parameters, Thrifty serves all tenants with the 99.9% SLA guarantee and
// replication factor 3 using only ~18.7% of the nodes they requested —
// plus a run-time validation that a sample of the deployment actually
// honours the SLA when its logs are replayed.
type HeadlineResult struct {
	Summary    *Table
	Validation *Table
}

// Tables renders the result.
func (r *HeadlineResult) Tables() []*Table { return []*Table{r.Summary, r.Validation} }

// Headline plans the default population and validates the plan at run time.
func Headline(env *Env) (*HeadlineResult, error) {
	logs, err := env.DefaultLogs()
	if err != nil {
		return nil, err
	}
	acfg := advisor.DefaultConfig()
	acfg.SolverWorkers = SolverWorkers
	adv, err := advisor.New(acfg)
	if err != nil {
		return nil, err
	}
	plan, err := adv.Plan(logs, env.Horizon())
	if err != nil {
		return nil, err
	}

	res := &HeadlineResult{}
	res.Summary = &Table{
		Title:   fmt.Sprintf("Headline — %d tenants, R=%d, P=%.1f%%", len(logs), plan.Config.R, 100*plan.Config.P),
		Columns: []string{"metric", "value", "paper"},
	}
	res.Summary.AddRow("requested nodes", plan.RequestedNodes, "—")
	res.Summary.AddRow("nodes used", plan.NodesUsed(), "—")
	res.Summary.AddRow("nodes used / requested", pct(1-plan.Effectiveness()), "18.7%")
	res.Summary.AddRow("consolidation effectiveness", pct(plan.Effectiveness()), "81.3%")
	res.Summary.AddRow("tenant-groups", len(plan.Groups), "—")
	res.Summary.AddRow("mean group size", fmt.Sprintf("%.1f", plan.MeanGroupSize()), "≈16 (derived)")
	res.Summary.AddRow("excluded tenants", len(plan.Excluded), "—")
	res.Summary.AddRow("planning time", plan.SolveTime.Sub(0).String(), "≈30min (Python)")

	// Run-time validation: replay the busiest groups for one day and check
	// SLA attainment against the guarantee.
	type cand struct {
		gi      int
		members int
	}
	var cands []cand
	for i := range plan.Groups {
		cands = append(cands, cand{i, len(plan.Groups[i].TenantIDs)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].members > cands[j].members })
	if len(cands) > env.Scale.ReplayGroups {
		cands = cands[:env.Scale.ReplayGroups]
	}
	res.Validation = &Table{
		Title:   "Headline validation — one-day replay of the largest tenant-groups",
		Columns: []string{"group", "tenants", "A×n", "queries", "SLA attainment", "min RT-TTP", "overflow queries"},
	}
	for _, c := range cands {
		pg := plan.Groups[c.gi]
		subPlan := &advisor.Plan{Config: plan.Config, Groups: []advisor.PlannedGroup{pg}}
		members := map[string]bool{}
		for _, id := range pg.TenantIDs {
			members[id] = true
		}
		var subLogs []*workload.TenantLog
		for _, tl := range logs {
			if members[tl.Tenant.ID] {
				subLogs = append(subLogs, tl)
			}
		}
		eng := sim.NewEngine()
		pool := cluster.NewPool(subPlan.NodesUsed() + 8)
		m := master.New(eng, pool, master.Options{Immediate: true})
		dep, err := m.Deploy(subPlan, Tenants(subLogs))
		if err != nil {
			return nil, err
		}
		// Replay the first two weekdays (day 0–2) of the logs.
		rep, err := replay.Run(eng, dep, env.Cat, subLogs, replay.Options{
			From:        0,
			To:          2 * sim.Day,
			SampleEvery: time.Hour,
		})
		if err != nil {
			return nil, err
		}
		g := dep.Groups()[0]
		res.Validation.AddRow(pg.ID, len(pg.TenantIDs),
			fmt.Sprintf("%d×%d", pg.Design.A, pg.Design.N1),
			len(rep.Records), pct(rep.SLAAttainment()),
			fmt.Sprintf("%.4f", rep.MinRTTTP(pg.ID)),
			g.Router.Overflowed())
	}
	return res, nil
}
