package experiments

import (
	"fmt"

	"repro/internal/mppdb"
	"repro/internal/sim"
)

// fig11Nodes is the node-count axis of the Figure 1.1 speedup plots.
var fig11Nodes = []int{1, 2, 4, 6, 8}

// measureShared runs x tenants' instances of one query class on a shared
// n-node MPPDB (each tenant holding its own TPC-H SF100 = 100 GB dataset)
// and returns the mean observed latency. Sequential submission runs the
// queries one after another; concurrent submits them together.
func measureShared(classID string, nodes, tenants int, concurrent bool) (sim.Time, error) {
	eng := sim.NewEngine()
	inst := mppdb.New(eng, "shared", nodes)
	cat := defaultCatalog()
	class, ok := cat.ByID(classID)
	if !ok {
		return 0, fmt.Errorf("experiments: unknown class %s", classID)
	}
	ids := make([]string, tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("tenant%d", i)
		inst.DeployTenant(ids[i], 100) // SF100
	}
	var total sim.Time
	done := 0
	var submit func(i int)
	submit = func(i int) {
		_, err := inst.Submit(ids[i], class, func(r mppdb.Result) {
			total += r.Latency()
			done++
			if !concurrent && done < tenants {
				submit(done)
			}
		})
		if err != nil {
			panic(err) // deployment above guarantees tenants exist
		}
	}
	if concurrent {
		for i := 0; i < tenants; i++ {
			submit(i)
		}
	} else {
		submit(0)
	}
	eng.RunAll()
	if done != tenants {
		return 0, fmt.Errorf("experiments: %d of %d queries completed", done, tenants)
	}
	return total / sim.Time(tenants), nil
}

// speedupSeries produces the Fig 1.1a/c layout: speedup relative to the
// single-tenant 1-node latency, for 1T, 2T-SEQ, 2T-CON, 4T-SEQ, 4T-CON.
func speedupSeries(classID string) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("speedup of %s on a shared MPPDB (vs 1-node single tenant)", classID),
		Columns: []string{"nodes", "1T", "2T-SEQ", "2T-CON", "4T-SEQ", "4T-CON"},
	}
	base, err := measureShared(classID, 1, 1, false)
	if err != nil {
		return nil, err
	}
	type series struct {
		tenants    int
		concurrent bool
	}
	cfgs := []series{{1, false}, {2, false}, {2, true}, {4, false}, {4, true}}
	for _, n := range fig11Nodes {
		row := []any{n}
		for _, c := range cfgs {
			lat, err := measureShared(classID, n, c.tenants, c.concurrent)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", float64(base)/float64(lat)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig11aSpeedup reproduces Figure 1.1a: TPC-H Q1 scales out linearly for a
// single tenant and for sequential multi-tenancy (xT-SEQ ≈ 1T), while
// concurrent multi-tenancy divides the speedup by the tenant count (xT-CON).
func Fig11aSpeedup() (*Table, error) {
	return speedupSeries("TPCH-Q1")
}

// Fig11cNonLinear reproduces Figure 1.1c: TPC-H Q19 does not scale out
// linearly — its speedup plateaus well below the node count.
func Fig11cNonLinear() (*Table, error) {
	return speedupSeries("TPCH-Q19")
}

// Fig11bLatency reproduces Figure 1.1b's consolidation opportunity: four
// tenants each renting a 2-node MPPDB (point A: the SLA) can be hosted on a
// single 6-node MPPDB; with one active tenant the query is faster than the
// SLA (point B), and even two concurrently active tenants still beat it
// (point C). On the tenants' own 2-node boxes, two or four concurrent
// instances blow through the SLA (points E and F).
func Fig11bLatency() (*Table, error) {
	t := &Table{
		Title:   "Fig 1.1b — TPC-H Q1 latency, 4 × 2-node tenants vs one 6-node MPPDB",
		Columns: []string{"point", "configuration", "latency", "vs SLA (A)"},
	}
	type cfg struct {
		point, desc string
		nodes, act  int
		concurrent  bool
	}
	cfgs := []cfg{
		{"A", "2-node dedicated, 1 active (the SLA)", 2, 1, false},
		{"B", "6-node consolidated, 1 active", 6, 1, false},
		{"C", "6-node consolidated, 2 active concurrently", 6, 2, true},
		{"E", "2-node shared, 2 active concurrently", 2, 2, true},
		{"F", "2-node shared, 4 active concurrently", 2, 4, true},
	}
	var slaSec float64
	for _, c := range cfgs {
		lat, err := measureShared("TPCH-Q1", c.nodes, c.act, c.concurrent)
		if err != nil {
			return nil, err
		}
		sec := lat.Seconds()
		if c.point == "A" {
			slaSec = sec
		}
		t.AddRow(c.point, c.desc, fmt.Sprintf("%.1fs", sec), fmt.Sprintf("%.2f×", sec/slaSec))
	}
	return t, nil
}
