// Batched submit: the POST /v1/submit-batch endpoint routes many queries
// through one SubmitBatchAt per tenant-group (one domain lock, one Advance),
// and the coalescer below batches concurrent single submits the same way —
// the first goroutine to arrive at an idle group becomes the leader and
// drains everything queued behind it in shard-local batches, so N concurrent
// POST /v1/queries to one group cost one lock handoff instead of N.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/admission"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/queries"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// submitFailure maps a submit error to its HTTP status, Retry-After header
// value ("" for none), and JSON body — shared by the single and batch
// endpoints so both speak the same typed errors.
func (s *Server) submitFailure(err error) (int, string, map[string]any) {
	var ce *admission.ContractExceededError
	if errors.As(err, &ce) {
		return http.StatusTooManyRequests, s.wallRetryAfter(ce.RetryAfter), map[string]any{
			"error":               ce.Error(),
			"kind":                "contract_exceeded",
			"retry_after_virtual": ce.RetryAfter.String(),
			"brownout":            ce.Brownout,
		}
	}
	var se *admission.ShedError
	if errors.As(err, &se) {
		return http.StatusServiceUnavailable, s.wallRetryAfter(se.RetryAfter), map[string]any{
			"error":               se.Error(),
			"kind":                "shed",
			"reason":              se.Reason,
			"retry_after_virtual": se.RetryAfter.String(),
		}
	}
	var te *runtime.TimeoutError
	if errors.As(err, &te) {
		return http.StatusGatewayTimeout, s.wallRetryAfter(sim.Duration(s.retry.Backoff)), map[string]any{
			"error":    te.Error(),
			"kind":     "timeout",
			"attempts": te.Attempts,
		}
	}
	return http.StatusUnprocessableEntity, "", map[string]any{"error": err.Error()}
}

// classFor resolves a submit request's query class: a catalog ID, or raw
// SQL matched against the catalog templates (or classified as ad-hoc). The
// bool reports whether the query hit a known template.
func (s *Server) classFor(q *SubmitRequest) (*queries.Class, bool, error) {
	switch {
	case q.Query != "" && q.SQL != "":
		return nil, false, fmt.Errorf("set either query or sql, not both")
	case q.Query != "":
		cl, ok := s.cat.ByID(strings.ToUpper(strings.TrimSpace(q.Query)))
		if !ok {
			return nil, false, fmt.Errorf("unknown query class %q", q.Query)
		}
		return cl, true, nil
	case q.SQL != "":
		res, err := s.matcher.Classify(q.SQL)
		if err != nil {
			return nil, false, err
		}
		return res.Class, res.Template, nil
	default:
		return nil, false, fmt.Errorf("missing query or sql")
	}
}

// pendingSubmit is one coalesced single submit. Entries are pooled per
// coalescer; the done channel (buffered, capacity 1) is reused across
// checkouts, so a steady-state submit allocates nothing here.
type pendingSubmit struct {
	item runtime.BatchItem
	out  runtime.BatchOutcome
	done chan struct{}
}

// coalescer batches concurrent single submits to one tenant-group. The
// first arrival at an idle group becomes the leader: it drains the queue in
// batches through SubmitBatchAt, delivers each follower's outcome over its
// channel, and steps down only when the queue is empty — so followers never
// contend on the group's clock domain at all.
type coalescer struct {
	mu     sync.Mutex
	queue  []*pendingSubmit
	leader bool
	free   []*pendingSubmit

	// Leader scratch, reused across drain rounds (leader-only; the leader is
	// unique per coalescer, so no lock is needed while using them).
	batch []*pendingSubmit
	items []runtime.BatchItem
	outs  []runtime.BatchOutcome
}

// get checks a pooled entry out. Caller holds c.mu.
func (c *coalescer) get() *pendingSubmit {
	if n := len(c.free); n > 0 {
		p := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return p
	}
	return &pendingSubmit{done: make(chan struct{}, 1)}
}

// coalescerFor returns the group's coalescer, creating it on first use.
func (s *Server) coalescerFor(g *runtime.GroupRuntime) *coalescer {
	s.coalMu.Lock()
	defer s.coalMu.Unlock()
	c := s.coalescers[g]
	if c == nil {
		c = &coalescer{}
		s.coalescers[g] = c
	}
	return c
}

// submitCoalesced submits one item through the group's coalescer and blocks
// until its outcome is known. Safe for arbitrary concurrency; per-item
// semantics are identical to a solo SubmitBatchAt (admission, retries,
// typed errors).
func (s *Server) submitCoalesced(g *runtime.GroupRuntime, item runtime.BatchItem) runtime.BatchOutcome {
	c := s.coalescerFor(g)
	c.mu.Lock()
	p := c.get()
	p.item = item
	p.out = runtime.BatchOutcome{}
	c.queue = append(c.queue, p)
	if c.leader {
		// Follower: a leader is draining; wait for it to deliver.
		c.mu.Unlock()
		<-p.done
		out := p.out
		c.mu.Lock()
		c.free = append(c.free, p)
		c.mu.Unlock()
		return out
	}
	c.leader = true
	c.mu.Unlock()

	mine := p
	var myOut runtime.BatchOutcome
	for {
		c.mu.Lock()
		if len(c.queue) == 0 {
			c.leader = false
			c.free = append(c.free, mine)
			c.mu.Unlock()
			return myOut
		}
		take := len(c.queue)
		if s.maxBatch > 0 && take > s.maxBatch {
			take = s.maxBatch
		}
		c.batch = append(c.batch[:0], c.queue[:take]...)
		rest := copy(c.queue, c.queue[take:])
		for i := rest; i < len(c.queue); i++ {
			c.queue[i] = nil
		}
		c.queue = c.queue[:rest]
		c.mu.Unlock()

		c.items = c.items[:0]
		for _, q := range c.batch {
			c.items = append(c.items, q.item)
		}
		if cap(c.outs) < len(c.batch) {
			c.outs = make([]runtime.BatchOutcome, len(c.batch))
		} else {
			c.outs = c.outs[:len(c.batch)]
		}
		// Each drain round targets the current wall clock, so queued items
		// never submit at a stale virtual time.
		g.SubmitBatchAt(s.target(), c.items, c.outs, s.retry)
		for i, q := range c.batch {
			if q == mine {
				myOut = c.outs[i]
				continue
			}
			q.out = c.outs[i]
			q.done <- struct{}{}
		}
	}
}

// recordsCache caches the time-sorted records view behind GET /v1/records.
// The per-group record logs are append-only, so unchanged counts (under an
// unchanged deployment) mean the cached slice is still exact; a rebuild
// allocates a fresh slice so concurrent readers of the old one are safe.
type recordsCache struct {
	mu     sync.Mutex
	dep    *master.Deployment
	counts []int
	recs   []monitor.QueryRecord
}

// BatchSubmitRequest is the body of POST /v1/submit-batch.
type BatchSubmitRequest struct {
	Queries []SubmitRequest `json:"queries"`
}

// BatchResult is one item's outcome in a POST /v1/submit-batch response.
// Status is the per-item HTTP status (202, 400, 422, 429, 503, 504); the
// remaining fields mirror the single-submit success and error bodies.
type BatchResult struct {
	Status      int    `json:"status"`
	Tenant      string `json:"tenant"`
	Query       string `json:"query,omitempty"`
	Template    bool   `json:"template,omitempty"`
	RoutedTo    string `json:"routed_to,omitempty"`
	Retries     int    `json:"retries,omitempty"`
	SubmittedAt string `json:"submitted_at,omitempty"`

	Error             string `json:"error,omitempty"`
	Kind              string `json:"kind,omitempty"`
	RetryAfterVirtual string `json:"retry_after_virtual,omitempty"`
	Brownout          bool   `json:"brownout,omitempty"`
	Reason            string `json:"reason,omitempty"`
	Attempts          int    `json:"attempts,omitempty"`
}

// fillFailure classifies a submit error into a BatchResult — the typed
// mirror of submitFailure, allocation-light for large batches.
func fillFailure(res *BatchResult, err error) {
	var ce *admission.ContractExceededError
	if errors.As(err, &ce) {
		res.Status = http.StatusTooManyRequests
		res.Error = ce.Error()
		res.Kind = "contract_exceeded"
		res.RetryAfterVirtual = ce.RetryAfter.String()
		res.Brownout = ce.Brownout
		return
	}
	var se *admission.ShedError
	if errors.As(err, &se) {
		res.Status = http.StatusServiceUnavailable
		res.Error = se.Error()
		res.Kind = "shed"
		res.Reason = se.Reason
		res.RetryAfterVirtual = se.RetryAfter.String()
		return
	}
	var te *runtime.TimeoutError
	if errors.As(err, &te) {
		res.Status = http.StatusGatewayTimeout
		res.Error = te.Error()
		res.Kind = "timeout"
		res.Attempts = te.Attempts
		return
	}
	res.Status = http.StatusUnprocessableEntity
	res.Error = err.Error()
}

// groupBatch is one tenant-group's slice of a submit batch: the indexes of
// the batch items routed to g, in batch order.
type groupBatch struct {
	g    *runtime.GroupRuntime
	idxs []int
}

// batchScratch is the reusable working state of one handleSubmitBatch call:
// the decoded request, per-item results, partition-by-group structures, and
// the per-group item/outcome slices. Pooled so a steady stream of batches
// allocates only what JSON decoding itself must (the request strings).
type batchScratch struct {
	req     BatchSubmitRequest
	results []BatchResult
	items   []runtime.BatchItem
	order   []*groupBatch
	byGroup map[*runtime.GroupRuntime]*groupBatch
	free    []*groupBatch
	gitems  []runtime.BatchItem
	outs    []runtime.BatchOutcome
}

var batchScratchPool = sync.Pool{New: func() any {
	return &batchScratch{byGroup: make(map[*runtime.GroupRuntime]*groupBatch)}
}}

// reset returns per-call structures to their empty state, keeping capacity.
func (sc *batchScratch) reset() {
	for _, gb := range sc.order {
		gb.g = nil
		gb.idxs = gb.idxs[:0]
		sc.free = append(sc.free, gb)
	}
	sc.order = sc.order[:0]
	clear(sc.byGroup)
}

// grabGroup checks a groupBatch out of the scratch pool.
func (sc *batchScratch) grabGroup(g *runtime.GroupRuntime) *groupBatch {
	var gb *groupBatch
	if n := len(sc.free); n > 0 {
		gb = sc.free[n-1]
		sc.free[n-1] = nil
		sc.free = sc.free[:n-1]
	} else {
		gb = &groupBatch{}
	}
	gb.g = g
	return gb
}

// handleSubmitBatch routes a batch of queries. Items for the same
// tenant-group share one SubmitBatchAt call (one domain lock, one Advance);
// outcomes are strictly per item — a 429/503/504 on one entry never drops a
// healthy batch-mate. The response is always 200 with a per-item results
// array; each result carries its own status code.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	sc := batchScratchPool.Get().(*batchScratch)
	defer func() {
		sc.reset()
		batchScratchPool.Put(sc)
	}()
	// encoding/json reuses a decoded slice's backing array without zeroing
	// recycled elements, so stale fields from the previous request would
	// bleed into items that omit them — clear up to capacity first.
	qs := sc.req.Queries[:cap(sc.req.Queries)]
	clear(qs)
	sc.req.Queries = qs[:0]
	if err := json.NewDecoder(r.Body).Decode(&sc.req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if len(sc.req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	n := len(sc.req.Queries)
	if cap(sc.results) < n {
		sc.results = make([]BatchResult, n)
		sc.items = make([]runtime.BatchItem, n)
	} else {
		sc.results = sc.results[:n]
		clear(sc.results)
		sc.items = sc.items[:n]
		clear(sc.items)
	}
	results, items := sc.results, sc.items
	for i := range sc.req.Queries {
		q := &sc.req.Queries[i]
		results[i].Tenant = q.Tenant
		class, template, err := s.classFor(q)
		if err != nil {
			results[i].Status = http.StatusBadRequest
			results[i].Error = err.Error()
			continue
		}
		items[i] = runtime.BatchItem{
			Tenant:     q.Tenant,
			Class:      class,
			BestEffort: q.BestEffort,
		}
		results[i].Template = template
	}

	// Partition the surviving items by tenant-group, preserving batch order
	// within each group (SubmitBatchAt processes slice order).
	t := s.target()
	s.topo.RLock()
	plane := s.dep.Plane()
	for i := range items {
		if results[i].Status != 0 {
			continue
		}
		g, ref, ok := plane.ForTenantRef(items[i].Tenant)
		if !ok {
			results[i].Status = http.StatusUnprocessableEntity
			results[i].Error = "tenant " + items[i].Tenant + " not deployed"
			continue
		}
		if ref != runtime.NoTenantRef {
			items[i].Ref = ref
			items[i].HasRef = true
		}
		gb := sc.byGroup[g]
		if gb == nil {
			gb = sc.grabGroup(g)
			sc.byGroup[g] = gb
			sc.order = append(sc.order, gb)
		}
		gb.idxs = append(gb.idxs, i)
	}
	for _, gb := range sc.order {
		m := len(gb.idxs)
		if cap(sc.gitems) < m {
			sc.gitems = make([]runtime.BatchItem, m)
			sc.outs = make([]runtime.BatchOutcome, m)
		}
		gitems, outs := sc.gitems[:m], sc.outs[:m]
		for k, i := range gb.idxs {
			gitems[k] = items[i]
		}
		gb.g.SubmitBatchAt(t, gitems, outs, s.retry)
		now := gb.g.Now().String()
		for k, i := range gb.idxs {
			res := &results[i]
			if err := outs[k].Err; err != nil {
				res.Template = false
				fillFailure(res, err)
				continue
			}
			res.Status = http.StatusAccepted
			res.Query = items[i].Class.ID
			res.RoutedTo = outs[k].DB
			res.Retries = outs[k].Retries
			res.SubmittedAt = now
		}
	}
	s.topo.RUnlock()
	accepted, failed := 0, 0
	for i := range results {
		if results[i].Status == http.StatusAccepted {
			accepted++
		} else {
			failed++
		}
	}
	writeJSON(w, http.StatusOK, BatchSubmitResponse{
		Results:  results,
		Accepted: accepted,
		Failed:   failed,
	})
}

// BatchSubmitResponse is the body of a POST /v1/submit-batch response.
type BatchSubmitResponse struct {
	Results  []BatchResult `json:"results"`
	Accepted int           `json:"accepted"`
	Failed   int           `json:"failed"`
}
