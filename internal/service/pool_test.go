package service

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/master"
	"repro/internal/queries"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// poolView mirrors cluster.PoolSnapshot's JSON for decoding.
type poolView struct {
	Total    int            `json:"total"`
	Domains  int            `json:"domains"`
	Down     []int          `json:"down_domains"`
	ByState  map[string]int `json:"by_state"`
	ByDomain []struct {
		Domain     int  `json:"domain"`
		Down       bool `json:"down"`
		Active     int  `json:"active"`
		Hibernated int  `json:"hibernated"`
		Failed     int  `json:"failed"`
		Repairing  int  `json:"repairing"`
	} `json:"by_domain"`
	ByOwner []struct {
		Owner  string `json:"owner"`
		Active int    `json:"active"`
	} `json:"by_owner"`
}

// recoveryView mirrors the GET /v1/recovery response.
type recoveryView struct {
	Enabled bool `json:"enabled"`
	Groups  []struct {
		Group       string           `json:"group"`
		CrashEvents []recovery.Event `json:"crash_events"`
		CrashActive int              `json:"crash_in_progress"`
		Quarantined int              `json:"quarantined"`
	} `json:"groups"`
	Triage *struct {
		Enqueued int                    `json:"enqueued"`
		Granted  int                    `json:"granted"`
		Queued   []recovery.TriageClaim `json:"queued"`
	} `json:"triage"`
}

func TestPoolEndpoint(t *testing.T) {
	_, ts, _ := testServer(t)
	var pv poolView
	if code := get(t, ts, "/v1/pool", &pv); code != 200 {
		t.Fatalf("GET /v1/pool: %d", code)
	}
	if pv.Total != 64 || pv.Domains != 1 || len(pv.ByDomain) != 1 {
		t.Fatalf("pool shape: %+v", pv)
	}
	active := pv.ByState["active"]
	if active == 0 || active+pv.ByState["hibernated"] != pv.Total {
		t.Fatalf("by_state does not tally: %+v", pv.ByState)
	}
	if len(pv.ByOwner) == 0 {
		t.Fatalf("no owners in pool snapshot")
	}
	sum := 0
	for _, o := range pv.ByOwner {
		sum += o.Active
	}
	if sum != active {
		t.Fatalf("per-owner active %d != total active %d", sum, active)
	}
}

// deployScarce deploys 2-node tenants onto a two-domain pool with zero spare
// capacity, recovery and the scarcity triage armed — so an injected node
// failure must park in the triage queue.
func deployScarce(t *testing.T) (*master.Deployment, *advisor.Plan) {
	t.Helper()
	ids := []string{"t1", "t2", "t3", "t4"}
	tenants := map[string]*tenant.Tenant{}
	var logs []*workload.TenantLog
	for i, id := range ids {
		tn := &tenant.Tenant{ID: id, Nodes: 2, DataGB: 200, Users: 1, Suite: queries.TPCH}
		tenants[id] = tn
		w := sim.Time(i) * 6 * sim.Hour
		logs = append(logs, &workload.TenantLog{
			Tenant:   tn,
			Activity: epoch.Activity{{Start: w, End: w + sim.Hour}},
		})
	}
	acfg := advisor.DefaultConfig()
	acfg.R = 2
	adv, err := advisor.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adv.Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	rcfg := recovery.DefaultConfig()
	tc := recovery.DefaultTriageConfig()
	m := master.New(eng, cluster.NewPoolDomains(plan.NodesUsed(), 2),
		master.Options{Immediate: true, Recovery: &rcfg, Triage: &tc})
	dep, err := m.Deploy(plan, tenants)
	if err != nil {
		t.Fatal(err)
	}
	return dep, plan
}

func TestRecoveryEndpointRetryStateAndTriage(t *testing.T) {
	dep, plan := deployScarce(t)
	srv, err := New(dep, queries.Default(), plan, Config{TimeScale: 60})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Unix(0, 0)
	srv.SetClock(func() time.Time { return wall }, time.Unix(0, 0))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var rv recoveryView
	if code := get(t, ts, "/v1/recovery", &rv); code != 200 {
		t.Fatalf("GET /v1/recovery: %d", code)
	}
	if !rv.Enabled || rv.Triage == nil || rv.Triage.Enqueued != 0 {
		t.Fatalf("idle recovery view: %+v", rv)
	}

	// Kill one node of the first instance. The pool has zero spares, so the
	// lifecycle must enqueue a triage claim instead of burning retry cycles.
	g := dep.Groups()[0]
	g.Domain().Advance(0, func(*sim.Engine) {
		if _, err := dep.Pool().FailAny(g.Instances[0].ID()); err != nil {
			t.Fatal(err)
		}
		if err := g.Instances[0].FailNode(); err != nil {
			t.Fatal(err)
		}
		g.Recovery.Notify()
	})
	wall = wall.Add(time.Second) // 60 virtual seconds: one triage poll due

	if code := get(t, ts, "/v1/recovery", &rv); code != 200 {
		t.Fatalf("GET /v1/recovery: %d", code)
	}
	var evs []recovery.Event
	for _, rg := range rv.Groups {
		evs = append(evs, rg.CrashEvents...)
	}
	if len(evs) != 1 {
		t.Fatalf("want 1 crash event, got %+v", rv.Groups)
	}
	ev := evs[0]
	if !ev.Triaged || ev.Attempts < 1 || ev.NextAttemptAt == 0 || ev.Recovered() {
		t.Fatalf("retry-cycle state not surfaced: %+v", ev)
	}
	if rv.Triage.Enqueued != 1 || rv.Triage.Granted != 0 || len(rv.Triage.Queued) != 1 {
		t.Fatalf("triage view: %+v", rv.Triage)
	}
	if cl := rv.Triage.Queued[0]; cl.Owner != g.Instances[0].ID() || cl.Tenants == 0 {
		t.Fatalf("queued claim: %+v", cl)
	}

	// The pool view must show the casualty and the two-domain layout.
	var pv poolView
	if code := get(t, ts, "/v1/pool", &pv); code != 200 {
		t.Fatalf("GET /v1/pool: %d", code)
	}
	if pv.Domains != 2 || len(pv.ByDomain) != 2 {
		t.Fatalf("pool domains: %+v", pv)
	}
	if pv.ByState["failed"] != 1 {
		t.Fatalf("want 1 failed node in pool view: %+v", pv.ByState)
	}
}
