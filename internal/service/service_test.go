package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/master"
	"repro/internal/online"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// deployTenants builds and deploys a plan for 2-node TPC-H tenants with the
// given IDs (R=2, staggered activity windows).
func deployTenants(t *testing.T, ids []string, sharded bool) (*master.Deployment, *advisor.Plan) {
	t.Helper()
	tenants := map[string]*tenant.Tenant{}
	var logs []*workload.TenantLog
	for i, id := range ids {
		tn := &tenant.Tenant{ID: id, Nodes: 2, DataGB: 200, Users: 1, Suite: queries.TPCH}
		tenants[id] = tn
		w := sim.Time(i) * 6 * sim.Hour
		logs = append(logs, &workload.TenantLog{
			Tenant:   tn,
			Activity: epoch.Activity{{Start: w, End: w + sim.Hour}},
		})
	}
	acfg := advisor.DefaultConfig()
	acfg.R = 2
	adv, err := advisor.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adv.Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	m := master.New(eng, cluster.NewPool(64), master.Options{Immediate: true, Sharded: sharded})
	dep, err := m.Deploy(plan, tenants)
	if err != nil {
		t.Fatal(err)
	}
	return dep, plan
}

// testServer deploys four 2-node tenants and wires the HTTP front end with a
// manually driven clock.
func testServer(t *testing.T) (*Server, *httptest.Server, func(d time.Duration)) {
	t.Helper()
	return testServerMode(t, false)
}

// testServerMode is testServer with an explicit clock layout: sharded gives
// each tenant-group a private clock domain.
func testServerMode(t *testing.T, sharded bool) (*Server, *httptest.Server, func(d time.Duration)) {
	t.Helper()
	dep, plan := deployTenants(t, []string{"t1", "t2", "t3", "t4"}, sharded)
	srv, err := New(dep, queries.Default(), plan, Config{TimeScale: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic wall clock.
	wall := time.Unix(0, 0)
	srv.SetClock(func() time.Time { return wall }, time.Unix(0, 0))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, func(d time.Duration) { wall = wall.Add(d) }
}

func get(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func post(t *testing.T, ts *httptest.Server, path string, body any, out any) int {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndClock(t *testing.T) {
	_, ts, tick := testServer(t)
	var h map[string]any
	if code := get(t, ts, "/healthz", &h); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if h["virtual_time"] != "0d00:00:00.000" {
		t.Errorf("virtual time = %v", h["virtual_time"])
	}
	// One wall minute at 60× = one virtual hour.
	tick(time.Minute)
	get(t, ts, "/healthz", &h)
	if h["virtual_time"] != "0d01:00:00.000" {
		t.Errorf("virtual time after tick = %v", h["virtual_time"])
	}
}

func TestCatalogEndpoint(t *testing.T) {
	_, ts, _ := testServer(t)
	var out []map[string]any
	if code := get(t, ts, "/v1/catalog", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out) != 46 {
		t.Errorf("catalog size %d, want 46", len(out))
	}
}

func TestPlanEndpoint(t *testing.T) {
	_, ts, _ := testServer(t)
	var out struct {
		R      int `json:"r"`
		Groups []struct {
			ID      string   `json:"id"`
			Tenants []string `json:"tenants"`
			A       int      `json:"a"`
		} `json:"groups"`
	}
	if code := get(t, ts, "/v1/plan", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.R != 2 || len(out.Groups) == 0 {
		t.Errorf("plan = %+v", out)
	}
	for _, g := range out.Groups {
		if g.A != 2 {
			t.Errorf("group %s A=%d", g.ID, g.A)
		}
	}
}

func TestSubmitAndRecords(t *testing.T) {
	_, ts, tick := testServer(t)
	var acc map[string]any
	code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "tpch-q6"}, &acc)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", code, acc)
	}
	if !strings.HasPrefix(acc["routed_to"].(string), "TG-") {
		t.Errorf("routed_to = %v", acc["routed_to"])
	}
	// Advance enough wall time for the query to finish (Q6 on 200GB/2n ≈
	// 6s virtual = 100ms wall at 60×; give it a minute).
	tick(time.Minute)
	var recs []map[string]any
	if code := get(t, ts, "/v1/records?tenant=t1", &recs); code != 200 {
		t.Fatalf("records status %d", code)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0]["sla_met"] != true {
		t.Errorf("record = %+v", recs[0])
	}
	// Filter excludes other tenants.
	get(t, ts, "/v1/records?tenant=t2", &recs)
	if len(recs) != 0 {
		t.Errorf("t2 records = %v", recs)
	}
}

func TestSubmitErrors(t *testing.T) {
	_, ts, _ := testServer(t)
	var out map[string]any
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "ghost", Query: "TPCH-Q1"}, &out); code != http.StatusUnprocessableEntity {
		t.Errorf("unknown tenant status %d", code)
	}
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "TPCH-Q99"}, &out); code != http.StatusBadRequest {
		t.Errorf("unknown class status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/queries", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status %d", resp.StatusCode)
	}
}

func TestGroupsEndpoints(t *testing.T) {
	_, ts, _ := testServer(t)
	var groups []groupStats
	if code := get(t, ts, "/v1/groups", &groups); code != 200 {
		t.Fatalf("groups status %d", code)
	}
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	var one groupStats
	if code := get(t, ts, "/v1/groups/"+groups[0].ID, &one); code != 200 {
		t.Fatalf("group status %d", code)
	}
	if one.ID != groups[0].ID || len(one.Instances) == 0 {
		t.Errorf("group = %+v", one)
	}
	if code := get(t, ts, "/v1/groups/TG-9999", nil); code != http.StatusNotFound {
		t.Errorf("missing group status %d", code)
	}
}

func TestRegisterTenant(t *testing.T) {
	srv, ts, _ := testServer(t)
	var out map[string]any
	if code := post(t, ts, "/v1/tenants", PendingTenant{ID: "newbie", Nodes: 4, Suite: "TPC-H"}, &out); code != http.StatusAccepted {
		t.Fatalf("register status %d", code)
	}
	if code := post(t, ts, "/v1/tenants", PendingTenant{Nodes: 4}, nil); code != http.StatusBadRequest {
		t.Errorf("empty id status %d", code)
	}
	var pending []PendingTenant
	if code := get(t, ts, "/v1/tenants/pending", &pending); code != 200 {
		t.Fatalf("pending status %d", code)
	}
	if len(pending) != 1 || pending[0].ID != "newbie" {
		t.Errorf("pending = %+v", pending)
	}
	if got := srv.Pending(); len(got) != 1 {
		t.Errorf("Pending() = %+v", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil, Config{}); err == nil {
		t.Error("nil deps accepted")
	}
}

func TestSubmitRawSQL(t *testing.T) {
	_, ts, tick := testServer(t)
	// A re-parameterized catalog template matches and executes as it.
	var acc map[string]any
	sql := `select sum(l_extendedprice*l_discount) as revenue from lineitem
where l_shipdate >= date '1997-03-01' and l_discount between 0.03 and 0.05
  and l_quantity < 25`
	code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", SQL: sql}, &acc)
	if code != http.StatusAccepted {
		t.Fatalf("sql submit status %d: %v", code, acc)
	}
	if acc["query"] != "TPCH-Q6" || acc["template"] != true {
		t.Errorf("sql classified as %v (template=%v)", acc["query"], acc["template"])
	}
	// Ad-hoc SQL is accepted and flagged.
	code = post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t2", SQL: "select count(*) from lineitem where l_tax > 0.01"}, &acc)
	if code != http.StatusAccepted {
		t.Fatalf("ad-hoc status %d: %v", code, acc)
	}
	if acc["query"] != "ADHOC" || acc["template"] != false {
		t.Errorf("ad-hoc classified as %v (template=%v)", acc["query"], acc["template"])
	}
	// Non-SELECT is rejected.
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", SQL: "drop table lineitem"}, nil); code != http.StatusBadRequest {
		t.Errorf("DDL status %d", code)
	}
	// Both query and sql set → rejected.
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "TPCH-Q1", SQL: "select 1 from t"}, nil); code != http.StatusBadRequest {
		t.Errorf("both-set status %d", code)
	}
	// Neither set → rejected.
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1"}, nil); code != http.StatusBadRequest {
		t.Errorf("neither-set status %d", code)
	}
	tick(time.Minute)
	var recs []map[string]any
	get(t, ts, "/v1/records?tenant=t2", &recs)
	if len(recs) != 1 || recs[0]["query"] != "ADHOC" {
		t.Errorf("ad-hoc record = %v", recs)
	}
}

func TestInvoicesEndpoint(t *testing.T) {
	_, ts, tick := testServer(t)
	post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "TPCH-Q6"}, nil)
	tick(time.Hour) // one wall hour = 60 virtual hours at the test scale
	var out []struct {
		Tenant    string  `json:"tenant"`
		ActiveSec float64 `json:"active_sec"`
		Total     float64 `json:"total"`
	}
	if code := get(t, ts, "/v1/invoices", &out); code != 200 {
		t.Fatalf("invoices status %d", code)
	}
	if len(out) != 4 {
		t.Fatalf("%d invoices, want 4 (every deployed tenant)", len(out))
	}
	var active, idle bool
	for _, inv := range out {
		if inv.Total <= 0 {
			t.Errorf("%s billed %v", inv.Tenant, inv.Total)
		}
		if inv.Tenant == "t1" && inv.ActiveSec > 0 {
			active = true
		}
		if inv.Tenant == "t3" && inv.ActiveSec == 0 {
			idle = true
		}
	}
	if !active || !idle {
		t.Errorf("usage metering wrong: %+v", out)
	}
}

func TestInvoicesBeforeAnyTime(t *testing.T) {
	_, ts, _ := testServer(t)
	// Virtual time is still 0: there is nothing to meter yet.
	var out map[string]any
	if code := get(t, ts, "/v1/invoices", &out); code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", code)
	}
	if out["error"] != "no metered time yet" {
		t.Errorf("error = %v", out["error"])
	}
}

// promLine matches a Prometheus text-format sample:
//
//	name{label="v",...} value
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[-+0-9.eE]+|\+Inf)$`)

func TestMetricsEndpoint(t *testing.T) {
	_, ts, tick := testServer(t)
	post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "TPCH-Q6"}, nil)
	tick(time.Minute)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"thrifty_router_routed_total",
		"thrifty_queries_completed_total",
		"thrifty_mppdb_sojourn_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestMetricsDisabled(t *testing.T) {
	srv, _, _ := testServer(t)
	srv2, err := New(srv.dep, srv.cat, srv.plan, Config{TimeScale: 60, DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv2)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled metrics status %d, want 404", resp.StatusCode)
	}
}

func TestEventsEndpoint(t *testing.T) {
	srv, ts, _ := testServer(t)
	// Seed the stream directly; replay-driven event content is covered by the
	// integration tests at the repo root.
	hub := srv.dep.Telemetry()
	for i := 0; i < 5; i++ {
		hub.Events.Publish(telemetry.Event{Type: telemetry.EventScalingTriggered, Group: "TG-0000"})
	}
	var out []struct {
		Seq   uint64 `json:"seq"`
		At    string `json:"at"`
		Type  string `json:"type"`
		Group string `json:"group"`
	}
	if code := get(t, ts, "/v1/events", &out); code != 200 {
		t.Fatalf("events status %d", code)
	}
	if len(out) != 5 {
		t.Fatalf("%d events, want 5", len(out))
	}
	if out[0].Seq != 1 || out[0].Type != "scaling_triggered" || out[0].Group != "TG-0000" || out[0].At == "" {
		t.Errorf("event = %+v", out[0])
	}
	// ?n= caps the count, keeping the most recent.
	if code := get(t, ts, "/v1/events?n=2", &out); code != 200 || len(out) != 2 {
		t.Fatalf("n=2: status/len = %d/%d", code, len(out))
	}
	if out[1].Seq != 5 {
		t.Errorf("last seq = %d, want 5", out[1].Seq)
	}
	for _, bad := range []string{"x", "0", "-3"} {
		if code := get(t, ts, "/v1/events?n="+bad, nil); code != http.StatusBadRequest {
			t.Errorf("n=%s status %d, want 400", bad, code)
		}
	}
}

func TestSLOEndpoint(t *testing.T) {
	_, ts, tick := testServer(t)
	// All four tenants fire the heaviest query at the same instant; under
	// processor sharing the 2-node MPPDBs slow down enough to breach targets.
	for _, tn := range []string{"t1", "t2", "t3", "t4"} {
		for i := 0; i < 3; i++ {
			if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: tn, Query: "TPCH-Q9"}, nil); code != http.StatusAccepted {
				t.Fatalf("submit %s status %d", tn, code)
			}
		}
	}
	tick(time.Hour)
	var out struct {
		P       float64 `json:"p"`
		Overall float64 `json:"overall_attainment"`
		Tenants []struct {
			Tenant     string  `json:"tenant"`
			Met        int64   `json:"met"`
			Missed     int64   `json:"missed"`
			Attainment float64 `json:"attainment"`
			OK         bool    `json:"ok"`
		} `json:"tenants"`
	}
	if code := get(t, ts, "/v1/slo", &out); code != 200 {
		t.Fatalf("slo status %d", code)
	}
	if out.P != 0.999 {
		t.Errorf("p = %v", out.P)
	}
	if len(out.Tenants) == 0 {
		t.Fatal("no tenants in slo report")
	}
	var total, missed int64
	for _, tn := range out.Tenants {
		total += tn.Met + tn.Missed
		missed += tn.Missed
		if got := float64(tn.Met) / float64(tn.Met+tn.Missed); got != tn.Attainment {
			t.Errorf("%s attainment %v, want %v", tn.Tenant, tn.Attainment, got)
		}
	}
	if total != 12 {
		t.Errorf("slo accounts %d queries, want 12", total)
	}
	if missed == 0 {
		t.Error("expected contention to breach some SLAs")
	}
	if out.Overall != float64(total-missed)/float64(total) {
		t.Errorf("overall = %v", out.Overall)
	}
}

// TestConcurrentSubmitsAndScrapes hammers the API from many goroutines while
// scrapes and SLO reads run — the service-level companion to the registry
// race test (run with -race).
func TestConcurrentSubmitsAndScrapes(t *testing.T) {
	_, ts, tick := testServer(t)
	tenants := []string{"t1", "t2", "t3", "t4"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var out map[string]any
				code := post(t, ts, "/v1/queries",
					SubmitRequest{Tenant: tenants[(g+i)%len(tenants)], Query: "TPCH-Q6"}, &out)
				if code != http.StatusAccepted {
					t.Errorf("submit status %d: %v", code, out)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if code := get(t, ts, "/v1/slo", nil); code != 200 {
					t.Errorf("slo status %d", code)
				}
			}
		}()
	}
	wg.Wait()
	tick(time.Minute)
	var recs []map[string]any
	get(t, ts, "/v1/records", &recs)
	if len(recs) != 80 {
		t.Errorf("%d records, want 80", len(recs))
	}
}

// TestShardedConcurrentSubmits runs the same hammer against a sharded
// deployment: every group has a private clock domain, so submits to
// different groups serialize only on their own shard (run with -race).
func TestShardedConcurrentSubmits(t *testing.T) {
	srv, ts, tick := testServerMode(t, true)
	if !srv.dep.Sharded() {
		t.Fatal("deployment not sharded")
	}
	if n := len(srv.dep.Plane().Domains()); n != len(srv.dep.Groups()) {
		t.Fatalf("%d domains for %d groups", n, len(srv.dep.Groups()))
	}
	tenants := []string{"t1", "t2", "t3", "t4"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var out map[string]any
				code := post(t, ts, "/v1/queries",
					SubmitRequest{Tenant: tenants[(g+i)%len(tenants)], Query: "TPCH-Q6"}, &out)
				if code != http.StatusAccepted {
					t.Errorf("submit status %d: %v", code, out)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if code := get(t, ts, "/v1/groups", nil); code != 200 {
					t.Errorf("groups status %d", code)
				}
				if code := get(t, ts, "/v1/slo", nil); code != 200 {
					t.Errorf("slo status %d", code)
				}
			}
		}()
	}
	wg.Wait()
	tick(time.Minute)
	var recs []map[string]any
	get(t, ts, "/v1/records", &recs)
	if len(recs) != 80 {
		t.Errorf("%d records, want 80", len(recs))
	}
}

// TestShardedEndpoints smoke-tests the read endpoints against a sharded
// deployment (per-group domains behind the same HTTP surface).
func TestShardedEndpoints(t *testing.T) {
	_, ts, tick := testServerMode(t, true)
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "TPCH-Q6"}, nil); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	tick(time.Minute)
	var groups []groupStats
	if code := get(t, ts, "/v1/groups", &groups); code != 200 || len(groups) == 0 {
		t.Fatalf("groups status %d (%d groups)", code, len(groups))
	}
	var routed int64
	for _, g := range groups {
		routed += g.Routed
	}
	if routed != 1 {
		t.Errorf("routed = %d, want 1", routed)
	}
	var h map[string]any
	get(t, ts, "/healthz", &h)
	if h["virtual_time"] != "0d01:00:00.000" {
		t.Errorf("virtual time = %v", h["virtual_time"])
	}
	var recs []map[string]any
	get(t, ts, "/v1/records", &recs)
	if len(recs) != 1 {
		t.Errorf("%d records", len(recs))
	}
}

// TestInstallReconsolidation covers the register → cycle → query flow
// through sharded deployments: a pending tenant is picked up by a new plan,
// the re-consolidated deployment is installed, and the tenant's queries
// route to its new group's shard.
func TestInstallReconsolidation(t *testing.T) {
	srv, ts, tick := testServerMode(t, true)
	if code := post(t, ts, "/v1/tenants", PendingTenant{ID: "t9", Nodes: 2, Suite: "TPC-H"}, nil); code != http.StatusAccepted {
		t.Fatalf("register status %d", code)
	}
	// Not deployed yet: submits are rejected until the next cycle.
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t9", Query: "TPCH-Q6"}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("pre-cycle submit status %d, want 422", code)
	}
	// The (re)-consolidation cycle: a fresh plan over the old population
	// plus the pending registration, deployed into new shards.
	dep2, plan2 := deployTenants(t, []string{"t1", "t2", "t3", "t4", "t9"}, true)
	if err := srv.Install(dep2, plan2); err != nil {
		t.Fatal(err)
	}
	if got := srv.Pending(); len(got) != 0 {
		t.Errorf("pending after install = %+v", got)
	}
	var acc map[string]any
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t9", Query: "TPCH-Q6"}, &acc); code != http.StatusAccepted {
		t.Fatalf("post-cycle submit status %d: %v", code, acc)
	}
	if !strings.HasPrefix(acc["routed_to"].(string), "TG-") {
		t.Errorf("routed_to = %v", acc["routed_to"])
	}
	// The query went through the new deployment's shard.
	g, ok := dep2.GroupFor("t9")
	if !ok {
		t.Fatal("t9 not in new deployment")
	}
	if st := g.Stats(); st.Routed != 1 {
		t.Errorf("new shard routed %d queries, want 1", st.Routed)
	}
	// Old tenants keep working, and the record surfaces over HTTP.
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "TPCH-Q6"}, nil); code != http.StatusAccepted {
		t.Fatal("old tenant broken after install")
	}
	tick(time.Minute)
	var recs []map[string]any
	get(t, ts, "/v1/records?tenant=t9", &recs)
	if len(recs) != 1 {
		t.Errorf("t9 records = %d, want 1", len(recs))
	}
}

// TestInstallValidation rejects nil swaps.
func TestInstallValidation(t *testing.T) {
	srv, _, _ := testServer(t)
	if err := srv.Install(nil, nil); err == nil {
		t.Error("nil install accepted")
	}
}

// rawPost is post without t.Fatal, safe to call from worker goroutines.
func rawPost(ts *httptest.Server, path string, body any, out any) (int, error) {
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, nil
}

// TestSubmitDuringInstallWindow hammers submits from every tenant while the
// topology is swapped underneath them, repeatedly. A tenant deployed in both
// the old and the new plan must land every query in one of the two — a
// spurious "not deployed" rejection mid-install would mean the swap exposed
// a torn topology.
func TestSubmitDuringInstallWindow(t *testing.T) {
	srv, ts, _ := testServerMode(t, true)
	ids := []string{"t1", "t2", "t3", "t4"}
	stop := make(chan struct{})
	errCh := make(chan string, len(ids))
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var body map[string]any
				code, err := rawPost(ts, "/v1/queries", SubmitRequest{Tenant: id, Query: "TPCH-Q6"}, &body)
				if err != nil {
					errCh <- err.Error()
					return
				}
				if code != http.StatusAccepted {
					errCh <- fmt.Sprintf("tenant %s: status %d during install window: %v", id, code, body)
					return
				}
			}
		}(id)
	}
	// Eight back-to-back re-consolidation cycles while the hammers run.
	for i := 0; i < 8; i++ {
		dep, plan := deployTenants(t, ids, true)
		if err := srv.Install(dep, plan); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for e := range errCh {
		t.Error(e)
	}
}

// TestOnlineEndpointsDetached covers the default state: no control loop, no
// report.
func TestOnlineEndpointsDetached(t *testing.T) {
	srv, ts, _ := testServer(t)
	var st map[string]any
	if code := get(t, ts, "/v1/online", &st); code != http.StatusOK {
		t.Fatalf("online status %d", code)
	}
	if st["enabled"] != false {
		t.Errorf("online enabled = %v, want false", st["enabled"])
	}
	if code := get(t, ts, "/v1/reconsolidation", nil); code != http.StatusNotFound {
		t.Errorf("reconsolidation status %d, want 404", code)
	}
	srv.SetReconsolidationReport(&advisor.ReconsolidationReport{
		KeptGroups: 1,
		Decisions:  []advisor.GroupDecision{{Group: "TG-0000", Kept: true, Reason: advisor.ReasonUnflagged}},
	})
	var rep struct {
		Source string                        `json:"source"`
		Report advisor.ReconsolidationReport `json:"report"`
	}
	if code := get(t, ts, "/v1/reconsolidation", &rep); code != http.StatusOK {
		t.Fatalf("reconsolidation status %d after set", code)
	}
	if rep.Source != "offline" || len(rep.Report.Decisions) != 1 || rep.Report.Decisions[0].Reason != advisor.ReasonUnflagged {
		t.Errorf("reconsolidation = %+v", rep)
	}
}

// TestOnlineEndpointAttached wires a live controller into the server: the
// endpoint advances virtual time (so due control ticks fire) and reports the
// loop's counters.
func TestOnlineEndpointAttached(t *testing.T) {
	ids := []string{"t1", "t2", "t3", "t4"}
	tenants := map[string]*tenant.Tenant{}
	var logs []*workload.TenantLog
	for i, id := range ids {
		tn := &tenant.Tenant{ID: id, Nodes: 2, DataGB: 200, Users: 1, Suite: queries.TPCH}
		tenants[id] = tn
		w := sim.Time(i) * 6 * sim.Hour
		logs = append(logs, &workload.TenantLog{
			Tenant:   tn,
			Activity: epoch.Activity{{Start: w, End: w + sim.Hour}},
		})
	}
	acfg := advisor.DefaultConfig()
	acfg.R = 2
	adv, err := advisor.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adv.Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	mst := master.New(eng, cluster.NewPool(64), master.Options{Immediate: true})
	dep, err := mst.Deploy(plan, tenants)
	if err != nil {
		t.Fatal(err)
	}
	ocfg := online.DefaultConfig(acfg, sim.Day)
	ocfg.Immediate = true
	ctl, err := online.New(eng, dep, mst, plan, logs, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	srv, err := New(dep, queries.Default(), plan, Config{TimeScale: 60})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetOnline(ctl)
	wall := time.Unix(0, 0)
	srv.SetClock(func() time.Time { return wall }, time.Unix(0, 0))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// One wall minute at 60× = one virtual hour = four 15-minute ticks.
	wall = wall.Add(time.Minute)
	var out struct {
		Enabled    bool               `json:"enabled"`
		Stats      online.Stats       `json:"stats"`
		Migrations []online.Migration `json:"migrations"`
	}
	if code := get(t, ts, "/v1/online", &out); code != http.StatusOK {
		t.Fatalf("online status %d", code)
	}
	if !out.Enabled {
		t.Fatal("online not enabled after SetOnline")
	}
	if out.Stats.Ticks < 1 {
		t.Errorf("control ticks = %d, want >= 1 after an hour", out.Stats.Ticks)
	}
	if out.Stats.Tenants != len(ids) {
		t.Errorf("tracked tenants = %d, want %d", out.Stats.Tenants, len(ids))
	}
	if out.Migrations == nil {
		t.Error("migrations is null, want []")
	}
}
