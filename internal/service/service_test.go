package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/master"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// testServer deploys four 2-node tenants and wires the HTTP front end with a
// manually driven clock.
func testServer(t *testing.T) (*Server, *httptest.Server, func(d time.Duration)) {
	t.Helper()
	cat := queries.Default()
	tenants := map[string]*tenant.Tenant{}
	var logs []*workload.TenantLog
	for i := 0; i < 4; i++ {
		id := "t" + string(rune('1'+i))
		tn := &tenant.Tenant{ID: id, Nodes: 2, DataGB: 200, Users: 1, Suite: queries.TPCH}
		tenants[id] = tn
		w := sim.Time(i) * 6 * sim.Hour
		logs = append(logs, &workload.TenantLog{
			Tenant:   tn,
			Activity: epoch.Activity{{Start: w, End: w + sim.Hour}},
		})
	}
	acfg := advisor.DefaultConfig()
	acfg.R = 2
	adv, err := advisor.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adv.Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	m := master.New(eng, cluster.NewPool(64), master.Options{Immediate: true})
	dep, err := m.Deploy(plan, tenants)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, dep, cat, plan, Config{TimeScale: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic wall clock.
	wall := time.Unix(0, 0)
	srv.SetClock(func() time.Time { return wall }, time.Unix(0, 0))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, func(d time.Duration) { wall = wall.Add(d) }
}

func get(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func post(t *testing.T, ts *httptest.Server, path string, body any, out any) int {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndClock(t *testing.T) {
	_, ts, tick := testServer(t)
	var h map[string]any
	if code := get(t, ts, "/healthz", &h); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if h["virtual_time"] != "0d00:00:00.000" {
		t.Errorf("virtual time = %v", h["virtual_time"])
	}
	// One wall minute at 60× = one virtual hour.
	tick(time.Minute)
	get(t, ts, "/healthz", &h)
	if h["virtual_time"] != "0d01:00:00.000" {
		t.Errorf("virtual time after tick = %v", h["virtual_time"])
	}
}

func TestCatalogEndpoint(t *testing.T) {
	_, ts, _ := testServer(t)
	var out []map[string]any
	if code := get(t, ts, "/v1/catalog", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out) != 46 {
		t.Errorf("catalog size %d, want 46", len(out))
	}
}

func TestPlanEndpoint(t *testing.T) {
	_, ts, _ := testServer(t)
	var out struct {
		R      int `json:"r"`
		Groups []struct {
			ID      string   `json:"id"`
			Tenants []string `json:"tenants"`
			A       int      `json:"a"`
		} `json:"groups"`
	}
	if code := get(t, ts, "/v1/plan", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.R != 2 || len(out.Groups) == 0 {
		t.Errorf("plan = %+v", out)
	}
	for _, g := range out.Groups {
		if g.A != 2 {
			t.Errorf("group %s A=%d", g.ID, g.A)
		}
	}
}

func TestSubmitAndRecords(t *testing.T) {
	_, ts, tick := testServer(t)
	var acc map[string]any
	code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "tpch-q6"}, &acc)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", code, acc)
	}
	if !strings.HasPrefix(acc["routed_to"].(string), "TG-") {
		t.Errorf("routed_to = %v", acc["routed_to"])
	}
	// Advance enough wall time for the query to finish (Q6 on 200GB/2n ≈
	// 6s virtual = 100ms wall at 60×; give it a minute).
	tick(time.Minute)
	var recs []map[string]any
	if code := get(t, ts, "/v1/records?tenant=t1", &recs); code != 200 {
		t.Fatalf("records status %d", code)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0]["sla_met"] != true {
		t.Errorf("record = %+v", recs[0])
	}
	// Filter excludes other tenants.
	get(t, ts, "/v1/records?tenant=t2", &recs)
	if len(recs) != 0 {
		t.Errorf("t2 records = %v", recs)
	}
}

func TestSubmitErrors(t *testing.T) {
	_, ts, _ := testServer(t)
	var out map[string]any
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "ghost", Query: "TPCH-Q1"}, &out); code != http.StatusUnprocessableEntity {
		t.Errorf("unknown tenant status %d", code)
	}
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "TPCH-Q99"}, &out); code != http.StatusBadRequest {
		t.Errorf("unknown class status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/queries", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status %d", resp.StatusCode)
	}
}

func TestGroupsEndpoints(t *testing.T) {
	_, ts, _ := testServer(t)
	var groups []groupStats
	if code := get(t, ts, "/v1/groups", &groups); code != 200 {
		t.Fatalf("groups status %d", code)
	}
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	var one groupStats
	if code := get(t, ts, "/v1/groups/"+groups[0].ID, &one); code != 200 {
		t.Fatalf("group status %d", code)
	}
	if one.ID != groups[0].ID || len(one.Instances) == 0 {
		t.Errorf("group = %+v", one)
	}
	if code := get(t, ts, "/v1/groups/TG-9999", nil); code != http.StatusNotFound {
		t.Errorf("missing group status %d", code)
	}
}

func TestRegisterTenant(t *testing.T) {
	srv, ts, _ := testServer(t)
	var out map[string]any
	if code := post(t, ts, "/v1/tenants", PendingTenant{ID: "newbie", Nodes: 4, Suite: "TPC-H"}, &out); code != http.StatusAccepted {
		t.Fatalf("register status %d", code)
	}
	if code := post(t, ts, "/v1/tenants", PendingTenant{Nodes: 4}, nil); code != http.StatusBadRequest {
		t.Errorf("empty id status %d", code)
	}
	var pending []PendingTenant
	if code := get(t, ts, "/v1/tenants/pending", &pending); code != 200 {
		t.Fatalf("pending status %d", code)
	}
	if len(pending) != 1 || pending[0].ID != "newbie" {
		t.Errorf("pending = %+v", pending)
	}
	if got := srv.Pending(); len(got) != 1 {
		t.Errorf("Pending() = %+v", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil, nil, Config{}); err == nil {
		t.Error("nil deps accepted")
	}
}

func TestSubmitRawSQL(t *testing.T) {
	_, ts, tick := testServer(t)
	// A re-parameterized catalog template matches and executes as it.
	var acc map[string]any
	sql := `select sum(l_extendedprice*l_discount) as revenue from lineitem
where l_shipdate >= date '1997-03-01' and l_discount between 0.03 and 0.05
  and l_quantity < 25`
	code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", SQL: sql}, &acc)
	if code != http.StatusAccepted {
		t.Fatalf("sql submit status %d: %v", code, acc)
	}
	if acc["query"] != "TPCH-Q6" || acc["template"] != true {
		t.Errorf("sql classified as %v (template=%v)", acc["query"], acc["template"])
	}
	// Ad-hoc SQL is accepted and flagged.
	code = post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t2", SQL: "select count(*) from lineitem where l_tax > 0.01"}, &acc)
	if code != http.StatusAccepted {
		t.Fatalf("ad-hoc status %d: %v", code, acc)
	}
	if acc["query"] != "ADHOC" || acc["template"] != false {
		t.Errorf("ad-hoc classified as %v (template=%v)", acc["query"], acc["template"])
	}
	// Non-SELECT is rejected.
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", SQL: "drop table lineitem"}, nil); code != http.StatusBadRequest {
		t.Errorf("DDL status %d", code)
	}
	// Both query and sql set → rejected.
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "TPCH-Q1", SQL: "select 1 from t"}, nil); code != http.StatusBadRequest {
		t.Errorf("both-set status %d", code)
	}
	// Neither set → rejected.
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1"}, nil); code != http.StatusBadRequest {
		t.Errorf("neither-set status %d", code)
	}
	tick(time.Minute)
	var recs []map[string]any
	get(t, ts, "/v1/records?tenant=t2", &recs)
	if len(recs) != 1 || recs[0]["query"] != "ADHOC" {
		t.Errorf("ad-hoc record = %v", recs)
	}
}

func TestInvoicesEndpoint(t *testing.T) {
	_, ts, tick := testServer(t)
	post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "TPCH-Q6"}, nil)
	tick(time.Hour) // one wall hour = 60 virtual hours at the test scale
	var out []struct {
		Tenant    string  `json:"tenant"`
		ActiveSec float64 `json:"active_sec"`
		Total     float64 `json:"total"`
	}
	if code := get(t, ts, "/v1/invoices", &out); code != 200 {
		t.Fatalf("invoices status %d", code)
	}
	if len(out) != 4 {
		t.Fatalf("%d invoices, want 4 (every deployed tenant)", len(out))
	}
	var active, idle bool
	for _, inv := range out {
		if inv.Total <= 0 {
			t.Errorf("%s billed %v", inv.Tenant, inv.Total)
		}
		if inv.Tenant == "t1" && inv.ActiveSec > 0 {
			active = true
		}
		if inv.Tenant == "t3" && inv.ActiveSec == 0 {
			idle = true
		}
	}
	if !active || !idle {
		t.Errorf("usage metering wrong: %+v", out)
	}
}
