package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/master"
	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// deployBatchMix deploys TPC-H tenants with admission armed under explicit
// contracts and a 1-slot admission queue, so one batch can exercise 429
// (contract), 503 (queue full), and 504 (no ready replica) side by side.
// The tenant named "down" gets a 4-node cluster, which lands it in its own
// tenant-group — its replica outage must not touch the others.
func deployBatchMix(t *testing.T, ids []string, contracts map[string]admission.Contract) (*master.Deployment, *advisor.Plan) {
	t.Helper()
	tenants := map[string]*tenant.Tenant{}
	var logs []*workload.TenantLog
	for i, id := range ids {
		nodes := 2
		if id == "down" {
			nodes = 4
		}
		tn := &tenant.Tenant{ID: id, Nodes: nodes, DataGB: 200, Users: 1, Suite: queries.TPCH}
		tenants[id] = tn
		w := sim.Time(i) * 6 * sim.Hour
		logs = append(logs, &workload.TenantLog{
			Tenant:   tn,
			Activity: epoch.Activity{{Start: w, End: w + sim.Hour}},
		})
	}
	acfg := advisor.DefaultConfig()
	acfg.R = 2
	adv, err := advisor.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adv.Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	admCfg := admission.DefaultConfig()
	admCfg.Contracts = contracts
	admCfg.MaxQueue = 1
	eng := sim.NewEngine()
	m := master.New(eng, cluster.NewPool(64), master.Options{
		Immediate:     true,
		MonitorWindow: time.Hour,
		Admission:     &admCfg,
	})
	dep, err := m.Deploy(plan, tenants)
	if err != nil {
		t.Fatal(err)
	}
	return dep, plan
}

// TestBatchErrorPartitioning drives one POST /v1/submit-batch through every
// per-item failure mode at once — 400 (bad request), 422 (unknown tenant),
// 429 (contract exceeded), 503 (admission queue full), 504 (no ready
// replica) — and demands that the healthy batch-mates still come back 202:
// a failing entry never drops or degrades the rest of its batch.
func TestBatchErrorPartitioning(t *testing.T) {
	dep, plan := deployBatchMix(t, []string{"agg", "good", "down"}, map[string]admission.Contract{
		"agg":  {Rate: 1.0 / 60, Burst: 2},
		"good": {Rate: 1, Burst: 16},
		"down": {Rate: 1, Burst: 16},
	})
	gAgg, okA := dep.GroupFor("agg")
	gDown, okD := dep.GroupFor("down")
	if !okA || !okD {
		t.Fatal("tenants not deployed")
	}
	if gAgg == gDown {
		t.Fatal("test needs agg and down in different groups")
	}
	srv, err := New(dep, queries.Default(), plan, Config{
		TimeScale:     60,
		SubmitRetries: 1,
		SubmitBackoff: 10 * time.Second,
		SubmitTimeout: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Unix(0, 0)
	srv.SetClock(func() time.Time { return wall }, time.Unix(0, 0))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Take down's whole replica set: its submits retry, time out (504), and
	// overflow the 1-slot admission queue (503).
	gDown.Domain().Do(func(*sim.Engine) {
		for _, inst := range gDown.Instances {
			inst.SetState(mppdb.Provisioning)
		}
	})

	q6 := func(id string) SubmitRequest { return SubmitRequest{Tenant: id, Query: "TPCH-Q6"} }
	var out BatchSubmitResponse
	code := post(t, ts, "/v1/submit-batch", BatchSubmitRequest{Queries: []SubmitRequest{
		q6("good"),       // 202
		q6("down"),       // 504: queues, retries, times out
		q6("agg"),        // 202: within burst
		q6("agg"),        // 202: within burst
		q6("down"),       // 503: queue already full
		q6("agg"),        // 429: burst exhausted
		q6("nosuch"),     // 422: unknown tenant
		{Tenant: "good"}, // 400: no query or sql
	}}, &out)
	if code != http.StatusOK {
		t.Fatalf("batch status %d, want 200", code)
	}
	want := []struct {
		status int
		kind   string
	}{
		{http.StatusAccepted, ""},
		{http.StatusGatewayTimeout, "timeout"},
		{http.StatusAccepted, ""},
		{http.StatusAccepted, ""},
		{http.StatusServiceUnavailable, "shed"},
		{http.StatusTooManyRequests, "contract_exceeded"},
		{http.StatusUnprocessableEntity, ""},
		{http.StatusBadRequest, ""},
	}
	if len(out.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(out.Results), len(want))
	}
	for i, w := range want {
		r := out.Results[i]
		if r.Status != w.status {
			t.Errorf("item %d: status %d, want %d (result %+v)", i, r.Status, w.status, r)
		}
		if r.Kind != w.kind {
			t.Errorf("item %d: kind %q, want %q", i, r.Kind, w.kind)
		}
		if w.status == http.StatusAccepted && (r.RoutedTo == "" || r.SubmittedAt == "") {
			t.Errorf("item %d: accepted but missing routed_to/submitted_at: %+v", i, r)
		}
		if w.status != http.StatusAccepted && w.status != http.StatusBadRequest && r.Error == "" {
			t.Errorf("item %d: failure with empty error: %+v", i, r)
		}
	}
	if out.Accepted != 3 || out.Failed != 5 {
		t.Errorf("accepted/failed = %d/%d, want 3/5", out.Accepted, out.Failed)
	}
	// The 504 burned one retry; the 503 was shed before any attempt.
	if out.Results[1].Attempts != 2 {
		t.Errorf("504 attempts = %d, want 2", out.Results[1].Attempts)
	}
	if out.Results[5].RetryAfterVirtual == "" {
		t.Errorf("429 lacks retry_after_virtual: %+v", out.Results[5])
	}
}
