package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/mppdb"
	"repro/internal/queries"
	"repro/internal/sim"
)

// TestSubmitRetryTimeout drives the submit path against a group whose whole
// replica set is mid-recovery (no Ready MPPDB): the request must come back as
// a typed 504 after the configured budget instead of a hung connection, and
// succeed again once a replica returns.
func TestSubmitRetryTimeout(t *testing.T) {
	dep, plan := deployTenants(t, []string{"t1", "t2"}, false)
	srv, err := New(dep, queries.Default(), plan, Config{
		TimeScale:     60,
		SubmitRetries: 2,
		SubmitBackoff: 10 * time.Second,
		SubmitTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Unix(0, 0)
	srv.SetClock(func() time.Time { return wall }, time.Unix(0, 0))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	g, ok := dep.GroupFor("t1")
	if !ok {
		t.Fatal("t1 has no group")
	}
	g.Domain().Do(func(*sim.Engine) {
		for _, inst := range g.Instances {
			inst.SetState(mppdb.Provisioning)
		}
	})

	resp, out := postRaw(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "TPCH-Q6"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d with no ready replica, want 504 (body %v)", resp.StatusCode, out)
	}
	if out["kind"] != "timeout" {
		t.Errorf("kind = %v, want timeout", out["kind"])
	}
	// Attempts at 0 s, 10 s, 20 s exhaust MaxRetries=2.
	if out["attempts"] != float64(3) {
		t.Errorf("attempts = %v, want 3", out["attempts"])
	}
	// The 504 advises when to retry: one backoff (10 virtual seconds),
	// scaled to wall time and rounded up to a whole second.
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("504 Retry-After = %q, want \"1\"", ra)
	}

	// A replica returns — the same submit is accepted on the first attempt.
	g.Domain().Do(func(*sim.Engine) {
		for _, inst := range g.Instances {
			inst.SetState(mppdb.Ready)
		}
	})
	var acc map[string]any
	if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "t1", Query: "TPCH-Q6"}, &acc); code != http.StatusAccepted {
		t.Fatalf("status %d after replicas returned, want 202", code)
	}
	if acc["retries"] != float64(0) {
		t.Errorf("retries = %v, want 0", acc["retries"])
	}
}
