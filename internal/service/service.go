// Package service exposes a Thrifty deployment as an MPPDB-as-a-Service
// HTTP front end: tenants submit queries (which the Query Router places per
// Algorithm 1), operators inspect the deployment plan, per-group run-time
// statistics, completed query records, and scaling events. The deployment's
// telemetry hub is exposed too: GET /metrics (Prometheus text),
// GET /v1/events (recent SLA events), and GET /v1/slo (per-tenant SLA
// attainment against the guarantee P). GET /v1/pool snapshots the shared
// node pool (state counts, per-domain breakdown, per-owner footprint) and
// GET /v1/recovery the failure-resilience state: crash lifecycles with their
// retry-cycle positions, gray episodes, quarantines, and the scarcity triage
// queue.
//
// The execution substrate is the virtual-time simulator; the service paces
// it against the wall clock with a configurable time-scale factor (virtual
// seconds per wall second), advancing clocks on every request. At the
// default 60× scale, a one-minute analytical query completes in one wall
// second — fast enough to demo, slow enough to watch queries overlap.
//
// Concurrency is per tenant-group: the front door resolves a submit to its
// group in O(1) and takes only that group's clock domain, so submits to
// different groups of a sharded deployment proceed fully in parallel.
// There is no global lock on the hot path — the server-wide RWMutex is
// read-acquired by every handler and write-acquired only when Install swaps
// in a re-consolidated deployment. Pure-read endpoints (plan, pending) touch
// no clock domain at all, and the telemetry endpoints read the hub, which is
// internally synchronized, outside every lock.
package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/advisor"
	"repro/internal/billing"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/online"
	"repro/internal/queries"
	"repro/internal/recovery"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/sqlmatch"
)

// Server is the HTTP front end. A single Server is safe for concurrent HTTP
// traffic; engine access is serialized per tenant-group by the groups' clock
// domains.
type Server struct {
	// topo guards the deployment topology: Install swaps dep/plan under the
	// write lock, every handler works under the read lock.
	topo sync.RWMutex
	dep  *master.Deployment
	plan *advisor.Plan

	cat       *queries.Catalog
	timeScale float64
	retry     runtime.RetryPolicy

	// clockMu guards the wall-clock pacing origin.
	clockMu sync.Mutex
	started time.Time
	now     func() time.Time // injectable for tests

	// pendMu guards pending registrations; they never touch a clock domain.
	pendMu  sync.Mutex
	pending []PendingTenant

	// onlineMu guards the optional online control loop and the last offline
	// re-consolidation report.
	onlineMu    sync.Mutex
	online      *online.Controller
	reconReport *advisor.ReconsolidationReport

	// coalesce batches concurrent single submits per group (leader/follower);
	// coalescers are lazily created per group and reset on Install.
	coalesce   bool
	maxBatch   int
	coalMu     sync.Mutex
	coalescers map[*runtime.GroupRuntime]*coalescer

	// recCache caches the sorted records view served by GET /v1/records,
	// keyed on the per-group record counts (the record log is append-only).
	recCache recordsCache

	matcher *sqlmatch.Matcher
	mux     *http.ServeMux
}

// PendingTenant is a registration awaiting the next (re)-consolidation
// cycle (§3c: "it is expected that there are new tenants register with and
// existing tenants de-register with the service").
type PendingTenant struct {
	ID    string `json:"id"`
	Nodes int    `json:"nodes"`
	Suite string `json:"suite"`
}

// Config parameterizes the server.
type Config struct {
	// TimeScale is virtual seconds advanced per wall-clock second
	// (default 60).
	TimeScale float64
	// DisableMetrics removes the Prometheus GET /metrics endpoint (the
	// observability JSON endpoints under /v1 stay).
	DisableMetrics bool
	// SubmitRetries bounds how often a transiently failed submit is
	// re-tried against the tenant's replica set before timing out
	// (default 3; negative disables retries).
	SubmitRetries int
	// SubmitBackoff is the virtual-time wait between submit attempts
	// (default 30 s).
	SubmitBackoff time.Duration
	// SubmitTimeout is the virtual-time budget per submit; past it the
	// request fails with 504 instead of hanging the group's clock domain
	// (default 5 min).
	SubmitTimeout time.Duration
	// DisableCoalesce turns off server-side coalescing of concurrent single
	// submits into shard-local batches (on by default). Coalescing is purely
	// a throughput optimization: per-query semantics are unchanged.
	DisableCoalesce bool
	// MaxBatch caps how many coalesced submits one SubmitBatchAt call takes;
	// excess stays queued for the next drain round (default 64).
	MaxBatch int
}

// New builds a server over a live deployment. The deployment may be shared
// (all groups on one clock domain) or sharded (a domain per group); the
// server is oblivious — sharding only widens the parallelism.
func New(dep *master.Deployment, cat *queries.Catalog,
	plan *advisor.Plan, cfg Config) (*Server, error) {
	if dep == nil || cat == nil || plan == nil {
		return nil, fmt.Errorf("service: nil dependency")
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 60
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("service: negative time scale")
	}
	retry := runtime.DefaultRetryPolicy()
	if cfg.SubmitRetries != 0 {
		retry.MaxRetries = max(cfg.SubmitRetries, 0)
	}
	if cfg.SubmitBackoff > 0 {
		retry.Backoff = cfg.SubmitBackoff
	}
	if cfg.SubmitTimeout > 0 {
		retry.Timeout = cfg.SubmitTimeout
	}
	if cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("service: negative max batch")
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 64
	}
	s := &Server{
		dep:        dep,
		cat:        cat,
		plan:       plan,
		timeScale:  cfg.TimeScale,
		retry:      retry,
		started:    time.Now(),
		now:        time.Now,
		coalesce:   !cfg.DisableCoalesce,
		maxBatch:   cfg.MaxBatch,
		coalescers: make(map[*runtime.GroupRuntime]*coalescer),
		matcher:    sqlmatch.New(cat),
		mux:        http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	s.mux.HandleFunc("GET /v1/plan", s.handlePlan)
	s.mux.HandleFunc("GET /v1/groups", s.handleGroups)
	s.mux.HandleFunc("GET /v1/groups/{id}", s.handleGroup)
	s.mux.HandleFunc("POST /v1/queries", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/submit-batch", s.handleSubmitBatch)
	s.mux.HandleFunc("GET /v1/records", s.handleRecords)
	s.mux.HandleFunc("POST /v1/tenants", s.handleRegister)
	s.mux.HandleFunc("GET /v1/tenants/pending", s.handlePending)
	s.mux.HandleFunc("GET /v1/invoices", s.handleInvoices)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/slo", s.handleSLO)
	s.mux.HandleFunc("GET /v1/admission", s.handleAdmission)
	s.mux.HandleFunc("GET /v1/recovery", s.handleRecovery)
	s.mux.HandleFunc("GET /v1/pool", s.handlePool)
	s.mux.HandleFunc("GET /v1/online", s.handleOnline)
	s.mux.HandleFunc("GET /v1/reconsolidation", s.handleReconsolidation)
	if !cfg.DisableMetrics {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// target returns the virtual time matching the scaled wall clock — where
// every group's clock should be by now. Domains never move backwards, so a
// stale target is harmless.
func (s *Server) target() sim.Time {
	s.clockMu.Lock()
	elapsed := s.now().Sub(s.started).Seconds() * s.timeScale
	s.clockMu.Unlock()
	return sim.Time(elapsed * float64(sim.Second))
}

// wallRetryAfter renders a virtual-time backoff as a Retry-After header
// value: whole wall-clock seconds under the service's time scale, at
// least 1 so clients always get a usable hint.
func (s *Server) wallRetryAfter(d sim.Time) string {
	secs := math.Ceil(d.Seconds() / s.timeScale)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(int(secs))
}

// Install swaps in a re-consolidated deployment and its plan (§3c/§5.1: the
// periodic cycle re-groups flagged groups and places pending registrations).
// In-flight requests finish against the old topology; new requests see the
// new one. The wall-clock pacing origin resets so the fresh deployment's
// clocks start at zero, and pending registrations placed by the new plan are
// dropped from the queue.
func (s *Server) Install(dep *master.Deployment, plan *advisor.Plan) error {
	if dep == nil || plan == nil {
		return fmt.Errorf("service: nil deployment or plan")
	}
	s.topo.Lock()
	s.dep = dep
	s.plan = plan
	s.topo.Unlock()
	s.clockMu.Lock()
	s.started = s.now()
	s.clockMu.Unlock()
	s.pendMu.Lock()
	kept := s.pending[:0]
	for _, p := range s.pending {
		if _, placed := dep.GroupFor(p.ID); !placed {
			kept = append(kept, p)
		}
	}
	s.pending = kept
	s.pendMu.Unlock()
	// Drop coalescers bound to the old topology's groups; the write lock
	// above drained every in-flight leader first. The records cache keys on
	// the deployment pointer, so it invalidates itself.
	s.coalMu.Lock()
	s.coalescers = make(map[*runtime.GroupRuntime]*coalescer)
	s.coalMu.Unlock()
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	t := s.target()
	s.topo.RLock()
	plane := s.dep.Plane()
	plane.AdvanceAll(t)
	now := plane.Now()
	s.topo.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"virtual_time": now.String(),
	})
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID     string `json:"id"`
		Suite  string `json:"suite"`
		Linear bool   `json:"linear_scale_out"`
		SQL    string `json:"sql"`
	}
	var out []entry
	for _, cl := range s.cat.Classes() {
		out = append(out, entry{ID: cl.ID, Suite: cl.Suite.String(),
			Linear: cl.LinearScaleOut(), SQL: cl.SQL})
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePlan is a pure read: the plan is immutable once deployed, so no
// clock domain is touched and no submit is ever blocked.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.topo.RLock()
	plan := s.plan
	nodesUsed := s.dep.NodesUsed()
	s.topo.RUnlock()
	type group struct {
		ID        string   `json:"id"`
		Tenants   []string `json:"tenants"`
		A         int      `json:"a"`
		N1        int      `json:"n1"`
		U         int      `json:"u"`
		Nodes     int      `json:"nodes"`
		TTP       float64  `json:"ttp"`
		MaxActive int      `json:"max_active"`
	}
	out := struct {
		Algorithm      string     `json:"algorithm"`
		R              int        `json:"r"`
		P              float64    `json:"p"`
		RequestedNodes int        `json:"requested_nodes"`
		NodesUsed      int        `json:"nodes_used"`
		Effectiveness  float64    `json:"effectiveness"`
		Groups         []group    `json:"groups"`
		Excluded       []exclJSON `json:"excluded,omitempty"`
	}{
		Algorithm:      plan.Algorithm,
		R:              plan.Config.R,
		P:              plan.Config.P,
		RequestedNodes: plan.RequestedNodes,
		NodesUsed:      nodesUsed,
		Effectiveness:  plan.Effectiveness(),
	}
	for _, g := range plan.Groups {
		out.Groups = append(out.Groups, group{
			ID: g.ID, Tenants: g.TenantIDs,
			A: g.Design.A, N1: g.Design.N1, U: g.Design.U,
			Nodes: g.Design.TotalNodes(), TTP: g.TTP, MaxActive: g.MaxActive,
		})
	}
	for _, e := range plan.Excluded {
		out.Excluded = append(out.Excluded, exclJSON{e.TenantID, e.Reason, e.Nodes})
	}
	writeJSON(w, http.StatusOK, out)
}

type exclJSON struct {
	Tenant string `json:"tenant"`
	Reason string `json:"reason"`
	Nodes  int    `json:"nodes"`
}

type groupStats struct {
	ID            string  `json:"id"`
	Members       int     `json:"members"`
	ActiveTenants int     `json:"active_tenants"`
	RTTTP         float64 `json:"rt_ttp"`
	SLAAttainment float64 `json:"sla_attainment"`
	Routed        int64   `json:"routed"`
	Overflowed    int64   `json:"overflowed"`
	Instances     []struct {
		ID      string `json:"id"`
		Nodes   int    `json:"nodes"`
		State   string `json:"state"`
		Running int    `json:"running"`
	} `json:"instances"`
}

func toGroupStats(st runtime.Stats) groupStats {
	out := groupStats{
		ID:            st.Group,
		Members:       st.Members,
		ActiveTenants: st.ActiveTenants,
		RTTTP:         st.RTTTP,
		SLAAttainment: st.SLAAttainment,
		Routed:        st.Routed,
		Overflowed:    st.Overflowed,
	}
	for _, inst := range st.Instances {
		out.Instances = append(out.Instances, struct {
			ID      string `json:"id"`
			Nodes   int    `json:"nodes"`
			State   string `json:"state"`
			Running int    `json:"running"`
		}{inst.ID, inst.Nodes, inst.State.String(), inst.Running})
	}
	return out
}

func (s *Server) handleGroups(w http.ResponseWriter, r *http.Request) {
	t := s.target()
	s.topo.RLock()
	var out []groupStats
	for _, g := range s.dep.Groups() {
		out = append(out, toGroupStats(g.StatsAt(t)))
	}
	s.topo.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGroup(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t := s.target()
	s.topo.RLock()
	var found *groupStats
	for _, g := range s.dep.Groups() {
		if g.Plan.ID == id {
			st := toGroupStats(g.StatsAt(t))
			found = &st
			break
		}
	}
	s.topo.RUnlock()
	if found == nil {
		writeErr(w, http.StatusNotFound, "no group %q", id)
		return
	}
	writeJSON(w, http.StatusOK, found)
}

// SubmitRequest is the body of POST /v1/queries. Exactly one of Query
// (a catalog class ID like "TPCH-Q1") or SQL (raw statement text, matched
// against the catalog templates or classified as ad-hoc — requirement R5)
// must be set.
type SubmitRequest struct {
	Tenant string `json:"tenant"`
	Query  string `json:"query,omitempty"`
	SQL    string `json:"sql,omitempty"`
	// BestEffort marks the query as droppable: during a brownout the
	// admission controller sheds best-effort traffic before it would ever
	// touch contract-abiding SLA traffic.
	BestEffort bool `json:"best_effort,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	class, template, err := s.classFor(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The hot path: resolve the tenant's group — and its interned ref — in
	// O(1) and take only that group's clock domain. Submits to other groups
	// do not contend, and concurrent submits to the same group coalesce into
	// shard-local batches (one domain lock, one Advance per batch).
	t := s.target()
	s.topo.RLock()
	g, ref, ok := s.dep.Plane().ForTenantRef(req.Tenant)
	if !ok {
		s.topo.RUnlock()
		writeErr(w, http.StatusUnprocessableEntity, "tenant %s not deployed", req.Tenant)
		return
	}
	item := runtime.BatchItem{
		Tenant:     req.Tenant,
		Class:      class,
		BestEffort: req.BestEffort,
	}
	if ref != runtime.NoTenantRef {
		item.Ref = ref
		item.HasRef = true
	}
	var out runtime.BatchOutcome
	if s.coalesce {
		out = s.submitCoalesced(g, item)
	} else {
		items := [1]runtime.BatchItem{item}
		var outs [1]runtime.BatchOutcome
		g.SubmitBatchAt(t, items[:], outs[:], s.retry)
		out = outs[0]
	}
	now := g.Now()
	s.topo.RUnlock()
	if out.Err != nil {
		status, retryAfter, body := s.submitFailure(out.Err)
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"tenant":       req.Tenant,
		"query":        class.ID,
		"template":     template,
		"routed_to":    out.DB,
		"retries":      out.Retries,
		"submitted_at": now.String(),
	})
}

// handleRecords serves the completed-query log, sorted by submit time.
// Gathering and sorting every record on every request is O(n log n) in the
// full history; the logs are append-only, so the sorted view is cached and
// revalidated with one O(groups) count sweep — a hit costs no copy and no
// sort. (Sorting compares sim.Time, not the formatted string: string order
// broke past ten virtual days, e.g. "10d0:00:00.000" < "2d0:00:00.000".)
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	tenantFilter := r.URL.Query().Get("tenant")
	t := s.target()
	s.topo.RLock()
	dep := s.dep
	groups := dep.Groups()
	counts := make([]int, len(groups))
	for i, g := range groups {
		counts[i] = g.RecordCountAt(t)
	}
	rc := &s.recCache
	rc.mu.Lock()
	stale := rc.dep != dep || len(rc.counts) != len(counts)
	if !stale {
		for i := range counts {
			if rc.counts[i] != counts[i] {
				stale = true
				break
			}
		}
	}
	if stale {
		// Fresh slice on every rebuild: readers of the previous cached view
		// may still be marshaling it outside the lock.
		recs := make([]monitor.QueryRecord, 0, sum(counts))
		for _, g := range groups {
			recs = append(recs, g.RecordsAt(t)...)
		}
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Submit < recs[j].Submit })
		rc.dep, rc.counts, rc.recs = dep, counts, recs
	}
	recs := rc.recs
	rc.mu.Unlock()
	s.topo.RUnlock()
	type rec struct {
		Tenant     string  `json:"tenant"`
		Query      string  `json:"query"`
		MPPDB      string  `json:"mppdb"`
		Submit     string  `json:"submit"`
		Finish     string  `json:"finish"`
		LatencySec float64 `json:"latency_sec"`
		Normalized float64 `json:"normalized"`
		SLAMet     bool    `json:"sla_met"`
	}
	out := []rec{}
	for _, q := range recs {
		if tenantFilter != "" && q.Tenant != tenantFilter {
			continue
		}
		out = append(out, rec{
			Tenant: q.Tenant, Query: q.Class.ID, MPPDB: q.MPPDB,
			Submit: q.Submit.String(), Finish: q.Finish.String(),
			LatencySec: q.Latency().Seconds(),
			Normalized: q.Normalized(), SLAMet: q.SLAMet(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req PendingTenant
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if req.ID == "" || req.Nodes < 1 {
		writeErr(w, http.StatusBadRequest, "tenant needs id and nodes ≥ 1")
		return
	}
	s.pendMu.Lock()
	s.pending = append(s.pending, req)
	n := len(s.pending)
	s.pendMu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"status":  "pending",
		"detail":  "tenant will be placed at the next (re)-consolidation cycle",
		"pending": n,
	})
}

func (s *Server) handlePending(w http.ResponseWriter, r *http.Request) {
	s.pendMu.Lock()
	out := append([]PendingTenant(nil), s.pending...)
	s.pendMu.Unlock()
	if out == nil {
		out = []PendingTenant{}
	}
	writeJSON(w, http.StatusOK, out)
}

// Pending returns a copy of the pending tenant registrations.
func (s *Server) Pending() []PendingTenant {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	return append([]PendingTenant(nil), s.pending...)
}

// SetClock overrides the wall clock (tests drive time deterministically).
func (s *Server) SetClock(now func() time.Time, started time.Time) {
	s.clockMu.Lock()
	defer s.clockMu.Unlock()
	s.now = now
	s.started = started
}

// Records exposes the deployment's query records (used by examples).
func (s *Server) Records() []monitor.QueryRecord {
	s.topo.RLock()
	defer s.topo.RUnlock()
	return s.dep.Plane().Records()
}

// handleMetrics serves the deployment's metrics registry in the Prometheus
// text exposition format. Virtual time is advanced first so a scrape
// reflects everything that should have happened by now; the registry itself
// is internally synchronized, so it is read outside every lock.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	t := s.target()
	s.topo.RLock()
	s.dep.Plane().AdvanceAll(t)
	hub := s.dep.Telemetry()
	s.topo.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = hub.Registry.WritePrometheus(w)
}

// handleEvents returns the most recent SLA events, oldest first. ?n= bounds
// the count (default 100).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, "bad n %q", q)
			return
		}
		n = v
	}
	t := s.target()
	s.topo.RLock()
	s.dep.Plane().AdvanceAll(t)
	hub := s.dep.Telemetry()
	s.topo.RUnlock()
	type eventJSON struct {
		Seq    uint64  `json:"seq"`
		At     string  `json:"at"`
		Type   string  `json:"type"`
		Group  string  `json:"group,omitempty"`
		Tenant string  `json:"tenant,omitempty"`
		MPPDB  string  `json:"mppdb,omitempty"`
		Value  float64 `json:"value,omitempty"`
		Detail string  `json:"detail,omitempty"`
	}
	events := hub.Events.Recent(n)
	out := make([]eventJSON, 0, len(events))
	for _, ev := range events {
		out = append(out, eventJSON{
			Seq: ev.Seq, At: ev.At.String(), Type: string(ev.Type),
			Group: ev.Group, Tenant: ev.Tenant, MPPDB: ev.MPPDB,
			Value: ev.Value, Detail: ev.Detail,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSLO reports per-tenant SLA attainment against the service guarantee
// P — the externally visible form of the SLA the paper sells.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	t := s.target()
	s.topo.RLock()
	s.dep.Plane().AdvanceAll(t)
	hub := s.dep.Telemetry()
	s.topo.RUnlock()
	type tenantJSON struct {
		Tenant          string  `json:"tenant"`
		Met             int64   `json:"met"`
		Missed          int64   `json:"missed"`
		Attainment      float64 `json:"attainment"`
		WorstNormalized float64 `json:"worst_normalized"`
		OK              bool    `json:"ok"`
		// Admission accounting: queries rejected over contract (429) and
		// shed without running (503). Attainment covers completed queries
		// only, so these surface overload pressure the SLA math cannot.
		Throttled int64 `json:"throttled,omitempty"`
		Shed      int64 `json:"shed,omitempty"`
	}
	// Per-tenant shed/throttle accounting from the groups' admission
	// controllers (lock-free reads; no clock domain touched).
	type admTally struct{ throttled, shed int64 }
	tallies := make(map[string]admTally)
	s.topo.RLock()
	for _, g := range s.dep.Groups() {
		if g.Admission == nil {
			continue
		}
		for _, st := range g.Admission.TenantStats() {
			if st.Throttled != 0 || st.Shed != 0 {
				tallies[st.Tenant] = admTally{throttled: st.Throttled, shed: st.Shed}
			}
		}
	}
	s.topo.RUnlock()
	rep := hub.SLA.Report()
	tenants := make([]tenantJSON, 0, len(rep))
	for _, tn := range rep {
		tj := tenantJSON{
			Tenant: tn.Tenant, Met: tn.Met, Missed: tn.Missed,
			Attainment: tn.Attainment, WorstNormalized: tn.WorstNormalized,
			OK: tn.OK,
		}
		if ad, ok := tallies[tn.Tenant]; ok {
			tj.Throttled, tj.Shed = ad.throttled, ad.shed
			delete(tallies, tn.Tenant)
		}
		tenants = append(tenants, tj)
	}
	// Tenants throttled or shed before completing a single query have no
	// SLA row yet; report them too, in deterministic order.
	rest := make([]string, 0, len(tallies))
	for id := range tallies {
		rest = append(rest, id)
	}
	sort.Strings(rest)
	for _, id := range rest {
		ad := tallies[id]
		tenants = append(tenants, tenantJSON{
			Tenant: id, Attainment: 1, OK: true,
			Throttled: ad.throttled, Shed: ad.shed,
		})
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Tenant < tenants[j].Tenant })
	resp := map[string]any{
		"p":                  hub.SLA.P(),
		"overall_attainment": hub.SLA.Overall(),
		"tenants":            tenants,
	}
	// Shared-work execution accounting, present only when the deployment
	// runs with sharing on (the off-mode response shape is unchanged). The
	// per-instance counters are read through the telemetry registry's
	// atomics — no clock domain is touched.
	type sharedJSON struct {
		MPPDB   string `json:"mppdb"`
		Batches int64  `json:"batches"`
		Joins   int64  `json:"joins"`
	}
	var shared []sharedJSON
	var totalBatches, totalJoins int64
	sharingOn := false
	s.topo.RLock()
	for _, g := range s.dep.Groups() {
		for _, inst := range g.Instances {
			if !inst.Sharing() {
				continue
			}
			sharingOn = true
			b := hub.Registry.Counter("thrifty_mppdb_shared_batches_total", "mppdb", inst.ID()).Value()
			j := hub.Registry.Counter("thrifty_mppdb_shared_joins_total", "mppdb", inst.ID()).Value()
			totalBatches += b
			totalJoins += j
			if b != 0 || j != 0 {
				shared = append(shared, sharedJSON{MPPDB: inst.ID(), Batches: b, Joins: j})
			}
		}
	}
	s.topo.RUnlock()
	if sharingOn {
		sort.Slice(shared, func(i, j int) bool { return shared[i].MPPDB < shared[j].MPPDB })
		resp["sharing"] = map[string]any{
			"batches":   totalBatches,
			"joins":     totalJoins,
			"instances": shared,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdmission exposes the groups' admission state: brownout level,
// queue depth, and per-tenant contract accounting. It is a pure lock-free
// read — no clock domain is advanced or locked — so it stays responsive
// even while groups are overloaded.
func (s *Server) handleAdmission(w http.ResponseWriter, r *http.Request) {
	s.topo.RLock()
	groups := make([]admission.Snapshot, 0)
	for _, g := range s.dep.Groups() {
		if g.Admission == nil {
			continue
		}
		snap := g.Admission.Snapshot()
		snap.SheddingOnly = g.SheddingOnly()
		groups = append(groups, snap)
	}
	s.topo.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": len(groups) > 0,
		"groups":  groups,
	})
}

// handlePool reports the shared node pool: totals by state, the per-domain
// breakdown with down markers, and every owner's footprint. Virtual time is
// advanced first so reimage and recovery transitions due by now have fired.
func (s *Server) handlePool(w http.ResponseWriter, r *http.Request) {
	t := s.target()
	s.topo.RLock()
	s.dep.Plane().AdvanceAll(t)
	snap := s.dep.Pool().Snapshot()
	s.topo.RUnlock()
	writeJSON(w, http.StatusOK, snap)
}

// recoveryGroup is one group's failure-resilience snapshot for
// GET /v1/recovery. Each crash event carries its retry-cycle state (attempt
// count, armed backoff, next attempt, cool-down deadline, triaged flag).
type recoveryGroup struct {
	Group       string               `json:"group"`
	CrashEvents []recovery.Event     `json:"crash_events"`
	CrashActive int                  `json:"crash_in_progress"`
	GrayEvents  []recovery.GrayEvent `json:"gray_events"`
	GrayActive  int                  `json:"gray_in_progress"`
	Hedged      int64                `json:"hedged"`
	HedgeWins   int64                `json:"hedge_peer_wins"`
	Quarantined int                  `json:"quarantined"`
}

// triageStatus is the cluster scarcity allocator's view for GET /v1/recovery.
type triageStatus struct {
	Enqueued int                    `json:"enqueued"`
	Granted  int                    `json:"granted"`
	Queued   []recovery.TriageClaim `json:"queued"`
}

// handleRecovery reports the deployment's failure-resilience state: per-group
// crash-recovery events (node loss → replacement), gray fail-slow episodes
// with their hedge → drain ladder outcomes, the router's hedge tallies, and
// any in-flight or failed live migrations. Each group's state is read under
// its clock domain, advanced to now so due detector beats have fired.
func (s *Server) handleRecovery(w http.ResponseWriter, r *http.Request) {
	t := s.target()
	s.topo.RLock()
	armed := false
	groups := make([]recoveryGroup, 0)
	for _, g := range s.dep.Groups() {
		rg := recoveryGroup{
			Group:       g.Plan.ID,
			CrashEvents: []recovery.Event{},
			GrayEvents:  []recovery.GrayEvent{},
		}
		g.Domain().Advance(t, func(*sim.Engine) {
			if g.Recovery != nil {
				armed = true
				rg.CrashEvents = g.Recovery.Events()
				rg.CrashActive = g.Recovery.InProgress()
			}
			if g.Gray != nil {
				armed = true
				rg.GrayEvents = g.Gray.Events()
				rg.GrayActive = g.Gray.InProgress()
			}
			rg.Hedged, rg.HedgeWins = g.Router.HedgeStats()
			rg.Quarantined = g.Router.Quarantined()
		})
		groups = append(groups, rg)
	}
	var tri *triageStatus
	if tq := s.dep.Triage(); tq != nil {
		armed = true
		tri = &triageStatus{Queued: tq.Queued()}
		tri.Enqueued, tri.Granted = tq.Stats()
	}
	s.topo.RUnlock()

	// In-flight and failed migrations, when the online loop is attached —
	// the crash watchers' abort/promotion outcomes surface here.
	s.onlineMu.Lock()
	ctl := s.online
	s.onlineMu.Unlock()
	migs := []online.Migration{}
	if ctl != nil {
		for _, m := range ctl.Migrations() {
			if m.Failed || m.Resolution != "" || !m.CutOver {
				migs = append(migs, m)
			}
		}
	}
	out := map[string]any{
		"enabled":    armed,
		"groups":     groups,
		"migrations": migs,
	}
	if tri != nil {
		out["triage"] = tri
	}
	writeJSON(w, http.StatusOK, out)
}

// SetOnline attaches the deployment's online re-consolidation loop so
// GET /v1/online can report it. Pass nil to detach.
func (s *Server) SetOnline(ctl *online.Controller) {
	s.onlineMu.Lock()
	s.online = ctl
	s.onlineMu.Unlock()
}

// SetReconsolidationReport stores the report of the last offline
// re-consolidation cycle for GET /v1/reconsolidation.
func (s *Server) SetReconsolidationReport(rep *advisor.ReconsolidationReport) {
	s.onlineMu.Lock()
	s.reconReport = rep
	s.onlineMu.Unlock()
}

// handleOnline reports the online control loop: cumulative counters and every
// live migration executed or in flight. Virtual time is advanced first so
// control ticks due by now have fired.
func (s *Server) handleOnline(w http.ResponseWriter, r *http.Request) {
	s.onlineMu.Lock()
	ctl := s.online
	s.onlineMu.Unlock()
	if ctl == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	t := s.target()
	s.topo.RLock()
	s.dep.Plane().AdvanceAll(t)
	s.topo.RUnlock()
	migs := ctl.Migrations()
	if migs == nil {
		migs = []online.Migration{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":    true,
		"stats":      ctl.Status(),
		"migrations": migs,
	})
}

// handleReconsolidation surfaces the per-group keep/repack decisions of the
// most recent re-consolidation: the online loop's last scoped fallback when
// one has run, otherwise the last offline cycle's stored report.
func (s *Server) handleReconsolidation(w http.ResponseWriter, r *http.Request) {
	s.onlineMu.Lock()
	ctl := s.online
	rep := s.reconReport
	s.onlineMu.Unlock()
	source := "offline"
	if ctl != nil {
		t := s.target()
		s.topo.RLock()
		s.dep.Plane().AdvanceAll(t)
		s.topo.RUnlock()
		if lr := ctl.LastReport(); lr != nil {
			rep = lr
			source = "online"
		}
	}
	if rep == nil {
		writeErr(w, http.StatusNotFound, "no re-consolidation has run yet")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"source": source,
		"report": rep,
	})
}

// handleInvoices bills the metering period from the deployment's completed
// query records under the default tariff (§3's pricing model: requested
// nodes plus active usage). The period defaults to [0, now).
func (s *Server) handleInvoices(w http.ResponseWriter, r *http.Request) {
	t := s.target()
	s.topo.RLock()
	plane := s.dep.Plane()
	plane.AdvanceAll(t)
	now := plane.Now()
	recs := plane.Records()
	tenants := s.dep.Tenants()
	s.topo.RUnlock()
	if now <= 0 {
		writeErr(w, http.StatusUnprocessableEntity, "no metered time yet")
		return
	}
	meter, err := billing.NewMeter(billing.DefaultRates(), tenants)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := meter.RecordAll(recs); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	invoices, err := meter.Invoices(0, now)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	type line struct {
		Tenant    string  `json:"tenant"`
		Nodes     int     `json:"nodes"`
		ActiveSec float64 `json:"active_sec"`
		Queries   int     `json:"queries"`
		Base      float64 `json:"base"`
		Usage     float64 `json:"usage"`
		Total     float64 `json:"total"`
	}
	out := make([]line, 0, len(invoices))
	for _, inv := range invoices {
		out = append(out, line{
			Tenant: inv.Tenant, Nodes: inv.Nodes,
			ActiveSec: inv.ActiveTime.Seconds(), Queries: inv.Queries,
			Base: inv.Base, Usage: inv.Usage, Total: inv.Total,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
