// Package service exposes a Thrifty deployment as an MPPDB-as-a-Service
// HTTP front end: tenants submit queries (which the Query Router places per
// Algorithm 1), operators inspect the deployment plan, per-group run-time
// statistics, completed query records, and scaling events. The deployment's
// telemetry hub is exposed too: GET /metrics (Prometheus text),
// GET /v1/events (recent SLA events), and GET /v1/slo (per-tenant SLA
// attainment against the guarantee P).
//
// The execution substrate is the virtual-time simulator; the service paces
// it against the wall clock with a configurable time-scale factor (virtual
// seconds per wall second), advancing the engine on every request. At the
// default 60× scale, a one-minute analytical query completes in one wall
// second — fast enough to demo, slow enough to watch queries overlap.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/advisor"
	"repro/internal/billing"
	"repro/internal/master"
	"repro/internal/monitor"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/sqlmatch"
)

// Server is the HTTP front end. It serializes all engine access internally,
// so a single Server is safe for concurrent HTTP traffic.
type Server struct {
	mu        sync.Mutex
	eng       *sim.Engine
	dep       *master.Deployment
	cat       *queries.Catalog
	plan      *advisor.Plan
	timeScale float64
	started   time.Time
	now       func() time.Time // injectable for tests

	pending []PendingTenant
	matcher *sqlmatch.Matcher
	mux     *http.ServeMux
}

// PendingTenant is a registration awaiting the next (re)-consolidation
// cycle (§3c: "it is expected that there are new tenants register with and
// existing tenants de-register with the service").
type PendingTenant struct {
	ID    string `json:"id"`
	Nodes int    `json:"nodes"`
	Suite string `json:"suite"`
}

// Config parameterizes the server.
type Config struct {
	// TimeScale is virtual seconds advanced per wall-clock second
	// (default 60).
	TimeScale float64
	// DisableMetrics removes the Prometheus GET /metrics endpoint (the
	// observability JSON endpoints under /v1 stay).
	DisableMetrics bool
}

// New builds a server over a live deployment.
func New(eng *sim.Engine, dep *master.Deployment, cat *queries.Catalog,
	plan *advisor.Plan, cfg Config) (*Server, error) {
	if eng == nil || dep == nil || cat == nil || plan == nil {
		return nil, fmt.Errorf("service: nil dependency")
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 60
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("service: negative time scale")
	}
	s := &Server{
		eng:       eng,
		dep:       dep,
		cat:       cat,
		plan:      plan,
		timeScale: cfg.TimeScale,
		started:   time.Now(),
		now:       time.Now,
		matcher:   sqlmatch.New(cat),
		mux:       http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	s.mux.HandleFunc("GET /v1/plan", s.handlePlan)
	s.mux.HandleFunc("GET /v1/groups", s.handleGroups)
	s.mux.HandleFunc("GET /v1/groups/{id}", s.handleGroup)
	s.mux.HandleFunc("POST /v1/queries", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/records", s.handleRecords)
	s.mux.HandleFunc("POST /v1/tenants", s.handleRegister)
	s.mux.HandleFunc("GET /v1/tenants/pending", s.handlePending)
	s.mux.HandleFunc("GET /v1/invoices", s.handleInvoices)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/slo", s.handleSLO)
	if !cfg.DisableMetrics {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// advance moves virtual time to match the scaled wall clock. Callers must
// hold s.mu.
func (s *Server) advance() sim.Time {
	elapsed := s.now().Sub(s.started).Seconds() * s.timeScale
	target := sim.Time(elapsed * float64(sim.Second))
	if target > s.eng.Now() {
		s.eng.Run(target)
	}
	return s.eng.Now()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	now := s.advance()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"virtual_time": now.String(),
	})
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID     string `json:"id"`
		Suite  string `json:"suite"`
		Linear bool   `json:"linear_scale_out"`
		SQL    string `json:"sql"`
	}
	var out []entry
	for _, cl := range s.cat.Classes() {
		out = append(out, entry{ID: cl.ID, Suite: cl.Suite.String(),
			Linear: cl.LinearScaleOut(), SQL: cl.SQL})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type group struct {
		ID        string   `json:"id"`
		Tenants   []string `json:"tenants"`
		A         int      `json:"a"`
		N1        int      `json:"n1"`
		U         int      `json:"u"`
		Nodes     int      `json:"nodes"`
		TTP       float64  `json:"ttp"`
		MaxActive int      `json:"max_active"`
	}
	out := struct {
		Algorithm      string     `json:"algorithm"`
		R              int        `json:"r"`
		P              float64    `json:"p"`
		RequestedNodes int        `json:"requested_nodes"`
		NodesUsed      int        `json:"nodes_used"`
		Effectiveness  float64    `json:"effectiveness"`
		Groups         []group    `json:"groups"`
		Excluded       []exclJSON `json:"excluded,omitempty"`
	}{
		Algorithm:      s.plan.Algorithm,
		R:              s.plan.Config.R,
		P:              s.plan.Config.P,
		RequestedNodes: s.plan.RequestedNodes,
		NodesUsed:      s.plan.NodesUsed(),
		Effectiveness:  s.plan.Effectiveness(),
	}
	for _, g := range s.plan.Groups {
		out.Groups = append(out.Groups, group{
			ID: g.ID, Tenants: g.TenantIDs,
			A: g.Design.A, N1: g.Design.N1, U: g.Design.U,
			Nodes: g.Design.TotalNodes(), TTP: g.TTP, MaxActive: g.MaxActive,
		})
	}
	for _, e := range s.plan.Excluded {
		out.Excluded = append(out.Excluded, exclJSON{e.TenantID, e.Reason, e.Nodes})
	}
	writeJSON(w, http.StatusOK, out)
}

type exclJSON struct {
	Tenant string `json:"tenant"`
	Reason string `json:"reason"`
	Nodes  int    `json:"nodes"`
}

type groupStats struct {
	ID            string  `json:"id"`
	Members       int     `json:"members"`
	ActiveTenants int     `json:"active_tenants"`
	RTTTP         float64 `json:"rt_ttp"`
	SLAAttainment float64 `json:"sla_attainment"`
	Instances     []struct {
		ID      string `json:"id"`
		Nodes   int    `json:"nodes"`
		State   string `json:"state"`
		Running int    `json:"running"`
	} `json:"instances"`
}

func (s *Server) groupStats(g *master.DeployedGroup) groupStats {
	st := groupStats{
		ID:            g.Plan.ID,
		Members:       len(g.Members),
		ActiveTenants: g.Monitor.ActiveTenants(),
		RTTTP:         g.Monitor.RTTTP(),
		SLAAttainment: g.Monitor.SLAAttainment(),
	}
	for _, inst := range g.Instances {
		st.Instances = append(st.Instances, struct {
			ID      string `json:"id"`
			Nodes   int    `json:"nodes"`
			State   string `json:"state"`
			Running int    `json:"running"`
		}{inst.ID(), inst.Nodes(), inst.State().String(), inst.Running()})
	}
	return st
}

func (s *Server) handleGroups(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.advance()
	var out []groupStats
	for _, g := range s.dep.Groups() {
		out = append(out, s.groupStats(g))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGroup(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	s.advance()
	var found *groupStats
	for _, g := range s.dep.Groups() {
		if g.Plan.ID == id {
			st := s.groupStats(g)
			found = &st
			break
		}
	}
	s.mu.Unlock()
	if found == nil {
		writeErr(w, http.StatusNotFound, "no group %q", id)
		return
	}
	writeJSON(w, http.StatusOK, found)
}

// SubmitRequest is the body of POST /v1/queries. Exactly one of Query
// (a catalog class ID like "TPCH-Q1") or SQL (raw statement text, matched
// against the catalog templates or classified as ad-hoc — requirement R5)
// must be set.
type SubmitRequest struct {
	Tenant string `json:"tenant"`
	Query  string `json:"query,omitempty"`
	SQL    string `json:"sql,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	var class *queries.Class
	template := true
	switch {
	case req.Query != "" && req.SQL != "":
		writeErr(w, http.StatusBadRequest, "set either query or sql, not both")
		return
	case req.Query != "":
		cl, ok := s.cat.ByID(strings.ToUpper(strings.TrimSpace(req.Query)))
		if !ok {
			writeErr(w, http.StatusBadRequest, "unknown query class %q", req.Query)
			return
		}
		class = cl
	case req.SQL != "":
		res, err := s.matcher.Classify(req.SQL)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		class = res.Class
		template = res.Template
	default:
		writeErr(w, http.StatusBadRequest, "missing query or sql")
		return
	}
	s.mu.Lock()
	now := s.advance()
	db, err := s.dep.Submit(req.Tenant, class)
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"tenant":       req.Tenant,
		"query":        class.ID,
		"template":     template,
		"routed_to":    db,
		"submitted_at": now.String(),
	})
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	tenantFilter := r.URL.Query().Get("tenant")
	s.mu.Lock()
	s.advance()
	recs := s.dep.Records()
	s.mu.Unlock()
	type rec struct {
		Tenant     string  `json:"tenant"`
		Query      string  `json:"query"`
		MPPDB      string  `json:"mppdb"`
		Submit     string  `json:"submit"`
		Finish     string  `json:"finish"`
		LatencySec float64 `json:"latency_sec"`
		Normalized float64 `json:"normalized"`
		SLAMet     bool    `json:"sla_met"`
	}
	out := []rec{}
	for _, q := range recs {
		if tenantFilter != "" && q.Tenant != tenantFilter {
			continue
		}
		out = append(out, rec{
			Tenant: q.Tenant, Query: q.Class.ID, MPPDB: q.MPPDB,
			Submit: q.Submit.String(), Finish: q.Finish.String(),
			LatencySec: q.Latency().Seconds(),
			Normalized: q.Normalized(), SLAMet: q.SLAMet(),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Submit < out[j].Submit })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req PendingTenant
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if req.ID == "" || req.Nodes < 1 {
		writeErr(w, http.StatusBadRequest, "tenant needs id and nodes ≥ 1")
		return
	}
	s.mu.Lock()
	s.pending = append(s.pending, req)
	n := len(s.pending)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"status":  "pending",
		"detail":  "tenant will be placed at the next (re)-consolidation cycle",
		"pending": n,
	})
}

func (s *Server) handlePending(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := append([]PendingTenant(nil), s.pending...)
	s.mu.Unlock()
	if out == nil {
		out = []PendingTenant{}
	}
	writeJSON(w, http.StatusOK, out)
}

// Pending returns a copy of the pending tenant registrations.
func (s *Server) Pending() []PendingTenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]PendingTenant(nil), s.pending...)
}

// SetClock overrides the wall clock (tests drive time deterministically).
func (s *Server) SetClock(now func() time.Time, started time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
	s.started = started
}

// Records exposes the deployment's query records (used by examples).
func (s *Server) Records() []monitor.QueryRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dep.Records()
}

// handleMetrics serves the deployment's metrics registry in the Prometheus
// text exposition format. Virtual time is advanced first so a scrape
// reflects everything that should have happened by now.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.advance()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.dep.Telemetry().Registry.WritePrometheus(w)
}

// handleEvents returns the most recent SLA events, oldest first. ?n= bounds
// the count (default 100).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, "bad n %q", q)
			return
		}
		n = v
	}
	s.mu.Lock()
	s.advance()
	s.mu.Unlock()
	type eventJSON struct {
		Seq    uint64  `json:"seq"`
		At     string  `json:"at"`
		Type   string  `json:"type"`
		Group  string  `json:"group,omitempty"`
		Tenant string  `json:"tenant,omitempty"`
		MPPDB  string  `json:"mppdb,omitempty"`
		Value  float64 `json:"value,omitempty"`
		Detail string  `json:"detail,omitempty"`
	}
	events := s.dep.Telemetry().Events.Recent(n)
	out := make([]eventJSON, 0, len(events))
	for _, ev := range events {
		out = append(out, eventJSON{
			Seq: ev.Seq, At: ev.At.String(), Type: string(ev.Type),
			Group: ev.Group, Tenant: ev.Tenant, MPPDB: ev.MPPDB,
			Value: ev.Value, Detail: ev.Detail,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSLO reports per-tenant SLA attainment against the service guarantee
// P — the externally visible form of the SLA the paper sells.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.advance()
	s.mu.Unlock()
	hub := s.dep.Telemetry()
	type tenantJSON struct {
		Tenant          string  `json:"tenant"`
		Met             int64   `json:"met"`
		Missed          int64   `json:"missed"`
		Attainment      float64 `json:"attainment"`
		WorstNormalized float64 `json:"worst_normalized"`
		OK              bool    `json:"ok"`
	}
	rep := hub.SLA.Report()
	tenants := make([]tenantJSON, 0, len(rep))
	for _, t := range rep {
		tenants = append(tenants, tenantJSON{
			Tenant: t.Tenant, Met: t.Met, Missed: t.Missed,
			Attainment: t.Attainment, WorstNormalized: t.WorstNormalized,
			OK: t.OK,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"p":                  hub.SLA.P(),
		"overall_attainment": hub.SLA.Overall(),
		"tenants":            tenants,
	})
}

// handleInvoices bills the metering period from the deployment's completed
// query records under the default tariff (§3's pricing model: requested
// nodes plus active usage). The period defaults to [0, now).
func (s *Server) handleInvoices(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	now := s.advance()
	recs := s.dep.Records()
	tenants := s.dep.Tenants()
	s.mu.Unlock()
	if now <= 0 {
		writeErr(w, http.StatusUnprocessableEntity, "no metered time yet")
		return
	}
	meter, err := billing.NewMeter(billing.DefaultRates(), tenants)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := meter.RecordAll(recs); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	invoices, err := meter.Invoices(0, now)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	type line struct {
		Tenant    string  `json:"tenant"`
		Nodes     int     `json:"nodes"`
		ActiveSec float64 `json:"active_sec"`
		Queries   int     `json:"queries"`
		Base      float64 `json:"base"`
		Usage     float64 `json:"usage"`
		Total     float64 `json:"total"`
	}
	out := make([]line, 0, len(invoices))
	for _, inv := range invoices {
		out = append(out, line{
			Tenant: inv.Tenant, Nodes: inv.Nodes,
			ActiveSec: inv.ActiveTime.Seconds(), Queries: inv.Queries,
			Base: inv.Base, Usage: inv.Usage, Total: inv.Total,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
