package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/master"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// postRaw posts JSON and returns the raw response (headers readable) plus
// the decoded body.
func postRaw(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	return resp, out
}

// deployAdmitted deploys 2-node TPC-H tenants with per-group admission armed
// under the given explicit contracts.
func deployAdmitted(t *testing.T, ids []string, contracts map[string]admission.Contract) (*master.Deployment, *advisor.Plan) {
	t.Helper()
	tenants := map[string]*tenant.Tenant{}
	var logs []*workload.TenantLog
	for i, id := range ids {
		tn := &tenant.Tenant{ID: id, Nodes: 2, DataGB: 200, Users: 1, Suite: queries.TPCH}
		tenants[id] = tn
		w := sim.Time(i) * 6 * sim.Hour
		logs = append(logs, &workload.TenantLog{
			Tenant:   tn,
			Activity: epoch.Activity{{Start: w, End: w + sim.Hour}},
		})
	}
	acfg := advisor.DefaultConfig()
	acfg.R = 2
	adv, err := advisor.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adv.Plan(logs, sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	admCfg := admission.DefaultConfig()
	admCfg.Contracts = contracts
	eng := sim.NewEngine()
	m := master.New(eng, cluster.NewPool(64), master.Options{
		Immediate:     true,
		MonitorWindow: time.Hour,
		Admission:     &admCfg,
	})
	dep, err := m.Deploy(plan, tenants)
	if err != nil {
		t.Fatal(err)
	}
	return dep, plan
}

// TestNoisyNeighborE2E drives the noisy-neighbor scenario end to end over
// HTTP: two tenants in one group, one submitting far over its contract. The
// aggressor sees typed 429s with a sane Retry-After while the compliant
// tenant is untouched, and /v1/slo, /v1/admission, and /metrics account for
// the throttling.
func TestNoisyNeighborE2E(t *testing.T) {
	dep, plan := deployAdmitted(t, []string{"agg", "good"}, map[string]admission.Contract{
		"agg":  {Rate: 1.0 / 60, Burst: 2},
		"good": {Rate: 1, Burst: 16},
	})
	ga, okA := dep.GroupFor("agg")
	gg, okG := dep.GroupFor("good")
	if !okA || !okG || ga != gg {
		t.Fatal("tenants not consolidated into one group")
	}
	srv, err := New(dep, queries.Default(), plan, Config{TimeScale: 60})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Unix(0, 0)
	srv.SetClock(func() time.Time { return wall }, time.Unix(0, 0))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// The aggressor fires 12 back-to-back submits against a burst-2
	// contract: 2 admitted, 10 throttled with typed 429s.
	var accepted, throttled int
	for i := 0; i < 12; i++ {
		resp, out := postRaw(t, ts, "/v1/queries", SubmitRequest{Tenant: "agg", Query: "TPCH-Q6"})
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			throttled++
			if out["kind"] != "contract_exceeded" {
				t.Fatalf("429 kind %v", out["kind"])
			}
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Fatalf("429 Retry-After %q", resp.Header.Get("Retry-After"))
			}
			if out["retry_after_virtual"] == "" {
				t.Fatal("429 lacks retry_after_virtual")
			}
		default:
			t.Fatalf("aggressor submit %d: status %d (%v)", i, resp.StatusCode, out)
		}
	}
	if accepted != 2 || throttled != 10 {
		t.Fatalf("aggressor saw %d accepted / %d throttled, want 2/10", accepted, throttled)
	}

	// The compliant tenant paces its submissions (each query finishes
	// before the next: 10 wall minutes = 10 virtual hours apart) and is
	// never throttled.
	for i := 0; i < 5; i++ {
		if code := post(t, ts, "/v1/queries", SubmitRequest{Tenant: "good", Query: "TPCH-Q6"}, nil); code != http.StatusAccepted {
			t.Fatalf("compliant submit %d: status %d", i, code)
		}
		wall = wall.Add(10 * time.Minute)
	}

	var slo struct {
		P       float64 `json:"p"`
		Tenants []struct {
			Tenant     string  `json:"tenant"`
			Attainment float64 `json:"attainment"`
			OK         bool    `json:"ok"`
			Throttled  int64   `json:"throttled"`
			Shed       int64   `json:"shed"`
		} `json:"tenants"`
	}
	if code := get(t, ts, "/v1/slo", &slo); code != http.StatusOK {
		t.Fatalf("/v1/slo status %d", code)
	}
	rows := map[string]int{}
	for i, tn := range slo.Tenants {
		rows[tn.Tenant] = i
	}
	gi, ok := rows["good"]
	if !ok {
		t.Fatalf("/v1/slo lacks the compliant tenant: %+v", slo.Tenants)
	}
	if g := slo.Tenants[gi]; !g.OK || g.Attainment < plan.Config.P || g.Throttled != 0 {
		t.Fatalf("compliant tenant SLO %+v (P=%v)", g, plan.Config.P)
	}
	ai, ok := rows["agg"]
	if !ok {
		t.Fatalf("/v1/slo lacks the aggressor: %+v", slo.Tenants)
	}
	if a := slo.Tenants[ai]; a.Throttled != 10 {
		t.Fatalf("aggressor SLO %+v, want throttled=10", a)
	}

	var adm struct {
		Enabled bool `json:"enabled"`
		Groups  []struct {
			Group        string `json:"group"`
			Level        int    `json:"level"`
			SheddingOnly bool   `json:"shedding_only"`
			Tenants      []struct {
				Tenant    string  `json:"tenant"`
				Rate      float64 `json:"rate_qps"`
				Admitted  int64   `json:"admitted"`
				Throttled int64   `json:"throttled"`
			} `json:"tenants"`
		} `json:"groups"`
	}
	if code := get(t, ts, "/v1/admission", &adm); code != http.StatusOK {
		t.Fatalf("/v1/admission status %d", code)
	}
	if !adm.Enabled || len(adm.Groups) == 0 {
		t.Fatalf("/v1/admission %+v", adm)
	}
	found := false
	for _, g := range adm.Groups {
		for _, tn := range g.Tenants {
			if tn.Tenant == "agg" {
				found = true
				if tn.Admitted != 2 || tn.Throttled != 10 {
					t.Fatalf("aggressor admission stats %+v", tn)
				}
			}
		}
	}
	if !found {
		t.Fatal("/v1/admission lacks the aggressor")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if !strings.Contains(body, "thrifty_admission_throttled_total") ||
		!strings.Contains(body, "thrifty_admission_admitted_total") {
		t.Fatal("metrics lack admission counters")
	}
}

// TestSheddingOnlyReadPath is the satellite-b regression: while a group is
// shedding-only (brownout level 2) its clock domain may be busy or even
// wedged, and the read endpoints must still answer from cached stats
// instead of advancing or locking the group.
func TestSheddingOnlyReadPath(t *testing.T) {
	dep, plan := deployTenants(t, []string{"t1", "t2", "t3", "t4"}, false)
	srv, err := New(dep, queries.Default(), plan, Config{TimeScale: 60})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Unix(0, 0)
	srv.SetClock(func() time.Time { return wall }, time.Unix(0, 0))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Warm each group's stats cache and mark it shedding-only.
	for _, g := range dep.Groups() {
		g := g
		g.Domain().Do(func(*sim.Engine) { g.CacheStats() })
		g.SetSheddingOnly(true)
	}

	// Wedge the shared clock domain: a stand-in for a group drowning in
	// overload work. Read endpoints must not wait for it.
	release := make(chan struct{})
	held := make(chan struct{})
	go dep.Groups()[0].Domain().Do(func(*sim.Engine) {
		close(held)
		<-release
	})
	<-held
	defer close(release)

	// Move the wall clock so the read path would have to advance virtual
	// time if the shedding-only skip were broken.
	wall = wall.Add(10 * time.Second)

	client := &http.Client{Timeout: 5 * time.Second}
	for _, path := range []string{"/v1/groups", "/metrics", "/healthz", "/v1/admission"} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s while shedding-only: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s while shedding-only: status %d", path, resp.StatusCode)
		}
	}

	var stats []map[string]any
	if code := get(t, ts, "/v1/groups", &stats); code != http.StatusOK || len(stats) == 0 {
		t.Fatalf("/v1/groups status %d len %d", code, len(stats))
	}
}
