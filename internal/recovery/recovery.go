// Package recovery closes the paper's §4.4 high-availability loop: "Thrifty
// will replace a failed node by starting a new node upon receiving node
// failure notification. ... The failed node is carted away and re-imaged."
//
// A Controller watches one tenant-group. Detection is a heartbeat probe on
// the group's own engine (deterministic sim-clock time, no wall clock): each
// beat compares every instance's FailedNodes count against the recoveries
// already in progress, so a crash is noticed at the next beat — including a
// repeat crash of an instance that is already mid-recovery. Callers that
// learn of a failure synchronously (the replay injector) can call Notify to
// skip the detection latency.
//
// Per detected failure the controller drives the full §4.4 lifecycle:
//
//  1. swap at the pool — the failed node goes to Repairing (carted away,
//     re-imaged after cluster.ReimageTime) and a replacement is acquired;
//  2. replacement startup + bulk reload of the instance's per-node data
//     share, priced by the Table 5.1 model (single-node startup plus a
//     single loader stream over TenantDataGB/Nodes);
//  3. RepairNode — the instance returns to full SpeedFactor.
//
// Throughout, the instance keeps serving degraded (mppdb's processor sharing
// slows by 1/SpeedFactor). When the pool is exhausted the controller retries
// with exponential backoff up to MaxAttempts, emits recovery_failed telemetry
// per miss, then rests for CoolDown and starts a fresh attempt cycle — it
// never gives up permanently and never blocks the clock domain.
package recovery

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/mppdb"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config controls a group's recovery controller.
type Config struct {
	// HeartbeatInterval is the failure-detection probe period.
	HeartbeatInterval time.Duration
	// MaxAttempts bounds one cycle of replacement-acquisition attempts.
	MaxAttempts int
	// InitialBackoff is the wait after the first failed attempt; it doubles
	// per miss up to MaxBackoff.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential backoff.
	MaxBackoff time.Duration
	// CoolDown is the rest between exhausted attempt cycles.
	CoolDown time.Duration
	// ParallelReload re-replicates a replacement node's shard from the
	// instance's surviving peers in parallel streams instead of one loader
	// stream (the same Table 5.1 parallel-load modeling provisioning and
	// re-spread use). Off by default: the classic single-stream reload.
	ParallelReload bool
}

// DefaultConfig returns the controller's standard settings: 30 s heartbeats,
// 5 attempts backing off 1→16 min, 1 h between cycles.
func DefaultConfig() Config {
	return Config{
		HeartbeatInterval: 30 * time.Second,
		MaxAttempts:       5,
		InitialBackoff:    time.Minute,
		MaxBackoff:        16 * time.Minute,
		CoolDown:          time.Hour,
	}
}

func (c Config) validate() error {
	if c.HeartbeatInterval <= 0 || c.InitialBackoff <= 0 || c.MaxBackoff <= 0 || c.CoolDown <= 0 {
		return fmt.Errorf("recovery: non-positive intervals in %+v", c)
	}
	if c.MaxAttempts < 1 {
		return fmt.Errorf("recovery: MaxAttempts=%d", c.MaxAttempts)
	}
	return nil
}

// Event records one detected failure's recovery lifecycle.
type Event struct {
	// Group and MPPDB locate the degraded instance.
	Group string
	MPPDB string
	// Detected is when the controller noticed the failure.
	Detected sim.Time
	// Replaced is when a replacement node was acquired (zero while the pool
	// is exhausted).
	Replaced sim.Time
	// Completed is when RepairNode restored full speed (zero until then).
	Completed sim.Time
	// Attempts counts replacement-acquisition tries, across cycles.
	Attempts int
	// ExhaustedCycles counts attempt cycles that ran out of MaxAttempts.
	ExhaustedCycles int
	// FailedNode is the pool ID swapped out for re-imaging, -1 when the
	// failure was injected at the instance only (no pool-side record).
	FailedNode int
	// ReplacementNode is the acquired pool ID, -1 before replacement.
	ReplacementNode int
	// Err is the most recent acquisition error, cleared on success.
	Err string
	// Backoff is the currently armed retry backoff (zero once replaced or
	// while cooling down / queued in triage).
	Backoff time.Duration
	// NextAttemptAt is when the next acquisition attempt or triage poll
	// fires (zero once replaced).
	NextAttemptAt sim.Time
	// CoolingUntil is the end of the current post-exhaustion rest (zero
	// outside a cool-down).
	CoolingUntil sim.Time
	// Triaged marks a lifecycle that waited in the cluster scarcity triage
	// queue instead of the backoff cycle.
	Triaged bool
}

// Recovered reports whether the lifecycle ran to completion.
func (e Event) Recovered() bool { return e.Completed > 0 }

// Controller drives autonomous failure recovery for one tenant-group. It is
// confined to the group's engine: all methods except Events/InProgress must
// be called while holding the group's clock domain (or as the engine's
// single driver).
type Controller struct {
	eng   *sim.Engine
	pool  *cluster.Pool
	group string
	insts []*mppdb.Instance
	cfg   Config

	pending map[string]int // instance ID → recoveries in flight
	// awaitingSwap counts pending lifecycles that have not yet consumed a
	// pool-side Failed record (pre-swap: backing off, queued in triage, or
	// about to fall back to a plain acquire). sweep needs the split: a
	// lifecycle that is mid-reload has already Replaced its pool record, so
	// a fresh pool failure appearing while it reloads — a domain outage
	// killing the very replacement it installed — is new work even though
	// pending already "covers" the instance-side count.
	awaitingSwap map[string]int
	events       []*Event
	started      bool

	// Scarcity triage (nil = classic backoff free-for-all). prio supplies
	// the group's live SLA-at-risk inputs; claimSeq makes claim keys unique
	// per lifecycle.
	triage   *Triage
	prio     func() (deficit float64, tenants int)
	claimSeq int

	// quarantine, when set, gates an instance in/out of routing: the domain
	// injector flags instances whose every node died, and finish lifts the
	// flag once the last failed node is repaired.
	quarantine func(instID string, on bool)

	// respread, when armed, re-spreads the group across failure domains
	// after a collapse (see respread.go).
	respread         *respreadState
	respreadInFlight bool
	respreads        int

	tel        *telemetry.Hub
	mStarted   *telemetry.Counter
	mCompleted *telemetry.Counter
	mRetried   *telemetry.Counter
	mExhausted *telemetry.Counter
	mActive    *telemetry.Gauge
	mDuration  *telemetry.Histogram
}

// New creates a controller for the group's instances over the shared pool.
func New(eng *sim.Engine, pool *cluster.Pool, group string,
	insts []*mppdb.Instance, cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if eng == nil || pool == nil || len(insts) == 0 {
		return nil, fmt.Errorf("recovery: group %q needs an engine, a pool, and instances", group)
	}
	return &Controller{
		eng:          eng,
		pool:         pool,
		group:        group,
		insts:        insts,
		cfg:          cfg,
		pending:      make(map[string]int),
		awaitingSwap: make(map[string]int),
	}, nil
}

// SetTelemetry attaches a telemetry hub. A nil hub disables instrumentation.
func (c *Controller) SetTelemetry(h *telemetry.Hub) {
	c.tel = h
	if h == nil {
		return
	}
	c.mStarted = h.Registry.Counter("thrifty_recovery_started_total", "group", c.group)
	c.mCompleted = h.Registry.Counter("thrifty_recovery_completed_total", "group", c.group)
	c.mRetried = h.Registry.Counter("thrifty_recovery_retry_total", "group", c.group)
	c.mExhausted = h.Registry.Counter("thrifty_recovery_exhausted_total", "group", c.group)
	c.mActive = h.Registry.Gauge("thrifty_recovery_in_progress", "group", c.group)
	c.mDuration = h.Registry.Histogram("thrifty_recovery_duration_seconds",
		[]float64{300, 600, 1200, 1800, 2700, 3600, 7200, 14400, 28800}, "group", c.group)
}

// SetTriage arms the cluster-wide scarcity triage: when replacement
// acquisition hits pool exhaustion the lifecycle enqueues a claim ranked by
// prio (sliding RT-TTP deficit, tenant count) instead of burning backoff
// retry cycles. Call before Start; a nil triage keeps the classic backoff.
func (c *Controller) SetTriage(t *Triage, prio func() (float64, int)) {
	c.triage = t
	if prio == nil {
		prio = func() (float64, int) { return 0, 0 }
	}
	c.prio = prio
}

// SetQuarantine attaches a routing gate (router.SetQuarantine): the domain
// injector flags instances whose nodes all died so new queries route to
// surviving replicas, and finish clears the flag once the instance's last
// failed node is repaired.
func (c *Controller) SetQuarantine(fn func(instID string, on bool)) { c.quarantine = fn }

// Start schedules the periodic heartbeat probes. Idempotent.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	var beat func(now sim.Time)
	beat = func(now sim.Time) {
		c.sweep()
		c.maybeRespread()
		c.eng.After(c.cfg.HeartbeatInterval, beat)
	}
	c.eng.After(c.cfg.HeartbeatInterval, beat)
}

// Started reports whether the heartbeat loop is armed.
func (c *Controller) Started() bool { return c.started }

// Notify prompts an immediate detection sweep — the push half of detection,
// for callers that already know a node just failed. The caller must hold the
// group's domain.
func (c *Controller) Notify() { c.sweep() }

// InProgress returns the number of recoveries currently in flight.
func (c *Controller) InProgress() int {
	n := 0
	for _, v := range c.pending {
		n += v
	}
	return n
}

// Events returns a copy of all recovery lifecycles so far, detection order.
func (c *Controller) Events() []Event {
	out := make([]Event, len(c.events))
	for i, e := range c.events {
		out[i] = *e
	}
	return out
}

// sweep compares every instance's failure counts against the recoveries
// already in flight and begins one lifecycle per unaccounted failure. Two
// counts are reconciled because a domain outage breaks their usual 1:1 pairing:
//
//   - instance-side: FailedNodes() minus all pending lifecycles (each pending
//     lifecycle will RepairNode one failure when its reload finishes). The
//     instance model caps degradation at nodes-1 (§4.4: the MPPDB stays
//     online), so when a whole domain dies this count undershoots.
//   - pool-side: Failed records minus only the pre-swap pending lifecycles
//     (awaitingSwap) — a mid-reload lifecycle has already Replaced its record,
//     so it cannot absorb a fresh pool failure. Without this split, an outage
//     that kills a replacement node mid-reload stays masked until the reload
//     drains, serializing what should be concurrent recoveries and leaking
//     Failed nodes past any drain horizon.
//
// On crash and gray paths the two expressions are provably equal (every
// FailNode pairs 1:1 with a pool FailAny and every swap consumes exactly one
// record), so this is byte-for-byte the old behavior there.
func (c *Controller) sweep() {
	for _, inst := range c.insts {
		id := inst.ID()
		need := inst.FailedNodes() - c.pending[id]
		if m := len(c.pool.FailedNodesOf(id)) - c.awaitingSwap[id]; m > need {
			need = m
		}
		for ; need > 0; need-- {
			c.begin(inst)
		}
	}
}

// begin opens a recovery lifecycle for one failed node of the instance.
func (c *Controller) begin(inst *mppdb.Instance) {
	c.pending[inst.ID()]++
	c.awaitingSwap[inst.ID()]++
	ev := &Event{
		Group:           c.group,
		MPPDB:           inst.ID(),
		Detected:        c.eng.Now(),
		FailedNode:      -1,
		ReplacementNode: -1,
	}
	c.events = append(c.events, ev)
	if c.tel != nil {
		c.mStarted.Inc()
		c.mActive.Add(1)
		c.tel.Events.Publish(telemetry.Event{
			Type:   telemetry.EventRecoveryStarted,
			Group:  c.group,
			MPPDB:  inst.ID(),
			Value:  float64(inst.FailedNodes()),
			Detail: "node failure detected; acquiring replacement",
		})
	}
	c.attempt(ev, inst, 1, c.cfg.InitialBackoff)
}

// attempt tries to acquire a replacement node; on pool exhaustion it hands
// the lifecycle to the scarcity triage when one is armed, otherwise backs
// off exponentially and after MaxAttempts misses rests for CoolDown before
// a fresh cycle.
func (c *Controller) attempt(ev *Event, inst *mppdb.Instance, try int, backoff time.Duration) {
	ev.Attempts++
	failedID, repl, err := c.swap(inst.ID())
	if err != nil {
		ev.Err = err.Error()
		if c.triage != nil {
			c.enqueueTriage(ev, inst)
			return
		}
		if try >= c.cfg.MaxAttempts {
			ev.ExhaustedCycles++
			ev.Backoff = 0
			ev.CoolingUntil = c.eng.Now().Add(c.cfg.CoolDown)
			ev.NextAttemptAt = ev.CoolingUntil
			if c.tel != nil {
				c.mExhausted.Inc()
				c.tel.Events.Publish(telemetry.Event{
					Type:   telemetry.EventRecoveryFailed,
					Group:  c.group,
					MPPDB:  inst.ID(),
					Value:  float64(try),
					Detail: fmt.Sprintf("cycle exhausted after %d attempts (%v); cooling down %v", try, err, c.cfg.CoolDown),
				})
			}
			c.eng.After(c.cfg.CoolDown, func(sim.Time) {
				ev.CoolingUntil = 0
				c.attempt(ev, inst, 1, c.cfg.InitialBackoff)
			})
			return
		}
		if c.tel != nil {
			c.mRetried.Inc()
			c.tel.Events.Publish(telemetry.Event{
				Type:   telemetry.EventRecoveryFailed,
				Group:  c.group,
				MPPDB:  inst.ID(),
				Value:  float64(try),
				Detail: fmt.Sprintf("attempt %d/%d: %v; backing off %v", try, c.cfg.MaxAttempts, err, backoff),
			})
		}
		next := 2 * backoff
		if next > c.cfg.MaxBackoff {
			next = c.cfg.MaxBackoff
		}
		ev.Backoff = backoff
		ev.NextAttemptAt = c.eng.Now().Add(backoff)
		c.eng.After(backoff, func(sim.Time) {
			c.attempt(ev, inst, try+1, next)
		})
		return
	}
	c.replaced(ev, inst, failedID, repl)
}

// enqueueTriage parks the lifecycle in the cluster scarcity queue and polls
// on this group's clock until the allocator ranks it inside the free-node
// budget. No retry cycles are burned while queued: the instance serves
// degraded behind the brownout/admission machinery.
func (c *Controller) enqueueTriage(ev *Event, inst *mppdb.Instance) {
	c.claimSeq++
	key := fmt.Sprintf("%s#%d", inst.ID(), c.claimSeq)
	ev.Triaged = true
	ev.Backoff = 0
	deficit, tenants := c.prio()
	c.triage.Enqueue(key, c.group, inst.ID(), deficit, tenants)
	if c.tel != nil {
		c.tel.Events.Publish(telemetry.Event{
			Type:   telemetry.EventTriageEnqueued,
			Group:  c.group,
			MPPDB:  inst.ID(),
			Value:  deficit * float64(tenants),
			Detail: fmt.Sprintf("pool exhausted; queued for triage (deficit %.4g × %d tenants)", deficit, tenants),
		})
	}
	var poll func(sim.Time)
	poll = func(sim.Time) {
		deficit, tenants := c.prio()
		failedID, repl, ok := c.triage.TryGrant(key, deficit, tenants)
		if !ok {
			ev.NextAttemptAt = c.eng.Now().Add(c.triage.Interval())
			c.eng.After(c.triage.Interval(), poll)
			return
		}
		if failedID >= 0 {
			id := failedID
			c.eng.After(cluster.ReimageTime(), func(sim.Time) { _ = c.pool.Reimage(id) })
		}
		if c.tel != nil {
			c.tel.Events.Publish(telemetry.Event{
				Type:   telemetry.EventTriageGranted,
				Group:  c.group,
				MPPDB:  inst.ID(),
				Value:  float64(repl.ID),
				Detail: fmt.Sprintf("triage granted node %d after %v queued", repl.ID, c.eng.Now()-ev.Detected),
			})
		}
		c.replaced(ev, inst, failedID, repl)
	}
	ev.NextAttemptAt = c.eng.Now().Add(c.triage.Interval())
	c.eng.After(c.triage.Interval(), poll)
}

// replaced is the success half of a lifecycle: a replacement node is in
// hand, Table 5.1 startup + reload run, then finish restores full speed.
func (c *Controller) replaced(ev *Event, inst *mppdb.Instance, failedID int, repl *cluster.Node) {
	c.awaitingSwap[inst.ID()]--
	ev.Err = ""
	ev.Replaced = c.eng.Now()
	ev.FailedNode = failedID
	ev.ReplacementNode = repl.ID
	ev.Backoff = 0
	ev.NextAttemptAt = 0
	ev.CoolingUntil = 0
	// Table 5.1: start + initialize the one replacement node, then reload
	// this node's share of the instance's tenant data — over a single loader
	// stream by default (per-node shard; the surviving nodes keep serving
	// theirs), or re-replicated from the surviving peers in parallel streams
	// when ParallelReload is armed.
	share := inst.TenantDataGB() / float64(inst.Nodes())
	delay := cluster.StartupTime(1) + cluster.LoadTime(share, 1, false)
	if c.cfg.ParallelReload {
		delay = cluster.StartupTime(1) + cluster.LoadTime(share, inst.Nodes(), true)
	}
	if c.tel != nil {
		c.tel.Events.Publish(telemetry.Event{
			Type:   telemetry.EventRecoveryReplaced,
			Group:  c.group,
			MPPDB:  inst.ID(),
			Value:  float64(repl.ID),
			Detail: fmt.Sprintf("replacement node %d starting; %.0f GB reload, ready in %v", repl.ID, share, delay),
		})
	}
	c.eng.After(delay, func(sim.Time) { c.finish(ev, inst) })
}

// swap exchanges a failed pool node of the instance for a fresh one. When the
// pool has no Failed record for the instance (instance-only injection), it
// falls back to a plain acquire. The swapped-out node re-images in the
// background and re-joins the free list after cluster.ReimageTime.
func (c *Controller) swap(owner string) (int, *cluster.Node, error) {
	if ids := c.pool.FailedNodesOf(owner); len(ids) > 0 {
		id := ids[0]
		repl, err := c.pool.Replace(id)
		if err != nil {
			return -1, nil, err
		}
		c.eng.After(cluster.ReimageTime(), func(sim.Time) { _ = c.pool.Reimage(id) })
		return id, repl, nil
	}
	nodes, err := c.pool.Acquire(owner, 1)
	if err != nil {
		return -1, nil, err
	}
	return -1, nodes[0], nil
}

// finish completes the lifecycle: the reloaded replacement joins and the
// instance regains one node of speed.
func (c *Controller) finish(ev *Event, inst *mppdb.Instance) {
	defer func() {
		c.pending[inst.ID()]--
		if c.tel != nil {
			c.mActive.Add(-1)
		}
	}()
	if inst.FailedNodes() > 0 {
		if err := inst.RepairNode(); err != nil {
			// Unreachable in normal operation (each lifecycle repairs a
			// failure it detected); record rather than panic if an operator
			// repaired by hand meanwhile.
			ev.Err = err.Error()
			if c.tel != nil {
				c.tel.Events.Publish(telemetry.Event{
					Type:   telemetry.EventRecoveryFailed,
					Group:  c.group,
					MPPDB:  inst.ID(),
					Detail: fmt.Sprintf("repair: %v", err),
				})
			}
			return
		}
	}
	// else: a capacity-only lifecycle — the instance model had already
	// absorbed its nodes-1 degradation cap when a whole domain died, so
	// this replacement restores pool capacity without a node to repair.
	ev.Completed = c.eng.Now()
	if c.quarantine != nil && inst.FailedNodes() == 0 {
		// The instance is whole again: lift any routing quarantine a domain
		// outage imposed while all its nodes were down.
		c.quarantine(inst.ID(), false)
	}
	if c.tel != nil {
		dur := (ev.Completed - ev.Detected).Seconds()
		c.mCompleted.Inc()
		c.mDuration.Observe(dur)
		c.tel.Events.Publish(telemetry.Event{
			Type:   telemetry.EventRecoveryCompleted,
			Group:  c.group,
			MPPDB:  inst.ID(),
			Value:  dur,
			Detail: fmt.Sprintf("full speed restored after %d attempt(s)", ev.Attempts),
		})
	}
}
