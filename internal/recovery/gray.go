// Gray-failure (fail-slow) detection and response. A crashed node misses
// heartbeats and the crash Controller handles it; a *gray* node keeps
// heart-beating while running at a fraction of nominal speed, which no
// liveness probe can see. The GrayDetector closes that gap with a
// performance-anomaly detector: every completed query feeds a per-instance
// slowdown profile, and because a tenant-group's members run the same query
// classes across all its MPPDBs, peer-relative outlier detection is
// well-posed — an instance whose completion slowdown drifts far above the
// group's peer median is fail-slow, whatever the cause.
//
// The response is a ladder, cheapest rung first:
//
//  1. suspicion (gray_suspected) — observed profile exceeds SuspectRatio ×
//     the peer median. Suspicion is cheap to act on and fully reversible, so
//     hedging engages here: every query routed to the instance is duplicated
//     onto a healthy peer (first completion wins, loser cancelled, nothing
//     double counted), and the queries already stuck on it are hedged
//     immediately;
//  2. confirmation (gray_confirmed) after ConfirmBeats consecutive suspect
//     evaluations — the episode is now real enough to count a strike and to
//     start the drain clock;
//  3. drain (gray_drain) after the instance stays confirmed for DrainAfter —
//     the slow node is treated as failed: it is quarantined from routing,
//     failed administratively at the instance and the pool, and the crash
//     Controller drives the usual §4.4 swap + Table 5.1 reload; when the
//     replacement restores full node count the slowdown is cleared and the
//     instance re-admitted (gray_cleared).
//
// Each confirmed episode costs the instance a strike; at MaxStrikes the
// ladder stops being patient with a flapping node and drains it the moment
// it is confirmed again. Strikes are forgotten once the instance stays clear
// for StrikeDecay — the strike-out targets rapid relapse, not a lifetime
// episode total.
package recovery

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/mppdb"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// GrayConfig controls a group's fail-slow detector.
type GrayConfig struct {
	// Interval is the evaluation period on the group's clock domain.
	Interval time.Duration
	// Window is how many recent load-normalized slowdown samples each
	// instance's profile retains.
	Window int
	// MinSamples is how many samples an instance needs before it is judged
	// (and before it counts as a peer).
	MinSamples int
	// SuspectRatio is the observed-over-peer-median slowdown ratio at which
	// an instance becomes suspect.
	SuspectRatio float64
	// MinSlowdown is an absolute floor: an instance is never suspected while
	// its mean load-normalized slowdown is below it, however idle the peers
	// are. A healthy instance's normalized slowdown never exceeds 1, so any
	// floor above that demands genuine speed loss.
	MinSlowdown float64
	// ConfirmBeats is how many consecutive suspect evaluations confirm a
	// gray failure (and engage hedging).
	ConfirmBeats int
	// ClearBeats is how many consecutive healthy evaluations clear a
	// suspicion or a confirmation.
	ClearBeats int
	// DrainAfter is how long a confirmed-gray instance is tolerated (served
	// by hedging) before it is drained and its slow node replaced.
	DrainAfter time.Duration
	// MaxStrikes is the flapping strike-out: once an instance has been
	// confirmed gray this many times, the next confirmation drains it
	// immediately instead of waiting out DrainAfter.
	MaxStrikes int
	// StrikeDecay forgets an instance's strikes once it has stayed clear for
	// this long: transient episodes far apart never accumulate into a
	// strike-out, while a flapper relapsing within the window still does.
	StrikeDecay time.Duration
}

// DefaultGrayConfig returns the detector's standard settings: minute-level
// evaluation over a 64-sample window, suspect at 1.5× the peer median (and
// at least 1.3× absolute), confirm after 3 beats, drain after 10 further
// minutes, strike out after 3 episodes within a 6 h decay window.
func DefaultGrayConfig() GrayConfig {
	return GrayConfig{
		Interval:     time.Minute,
		Window:       64,
		MinSamples:   8,
		SuspectRatio: 1.5,
		MinSlowdown:  1.3,
		ConfirmBeats: 3,
		ClearBeats:   2,
		DrainAfter:   10 * time.Minute,
		MaxStrikes:   3,
		StrikeDecay:  6 * time.Hour,
	}
}

func (c GrayConfig) validate() error {
	if c.Interval <= 0 || c.DrainAfter < 0 || c.StrikeDecay <= 0 {
		return fmt.Errorf("recovery: gray intervals in %+v", c)
	}
	if c.Window < 1 || c.MinSamples < 1 || c.MinSamples > c.Window {
		return fmt.Errorf("recovery: gray window %d / min samples %d", c.Window, c.MinSamples)
	}
	if c.SuspectRatio <= 1 || c.MinSlowdown < 1 {
		return fmt.Errorf("recovery: gray thresholds ratio=%v floor=%v", c.SuspectRatio, c.MinSlowdown)
	}
	if c.ConfirmBeats < 1 || c.ClearBeats < 1 || c.MaxStrikes < 1 {
		return fmt.Errorf("recovery: gray beats/strikes in %+v", c)
	}
	return nil
}

// HedgeRouter is the router surface the detector drives: flagging engages
// hedged duplication, quarantine removes the instance from routing, and the
// completion observer is the detector's sample feed.
type HedgeRouter interface {
	SetGrayFlag(dbID string, on bool)
	SetQuarantine(dbID string, on bool)
	HedgeInFlight(dbID string) int
	SetCompletionObserver(fn func(dbID string, res mppdb.Result))
}

// GrayEvent records one fail-slow episode's lifecycle.
type GrayEvent struct {
	Group string `json:"group"`
	MPPDB string `json:"mppdb"`
	// Suspected/Confirmed/Drained/Cleared are the ladder timestamps (zero
	// where a rung was never reached).
	Suspected sim.Time `json:"suspected"`
	Confirmed sim.Time `json:"confirmed,omitempty"`
	Drained   sim.Time `json:"drained,omitempty"`
	Cleared   sim.Time `json:"cleared,omitempty"`
	// Observed and PeerMedian are the mean completion slowdowns at the
	// moment of suspicion.
	Observed   float64 `json:"observed_slowdown"`
	PeerMedian float64 `json:"peer_median"`
	// Hedged counts the in-flight queries duplicated when hedging engaged
	// at suspicion.
	Hedged int `json:"hedged_inflight,omitempty"`
	// Strikes is the instance's episode count including this one.
	Strikes int `json:"strikes,omitempty"`
	// Resolution states how the episode ended: "suspicion_cleared",
	// "recovered" (cleared while hedged), "drained_replaced", or
	// "hedge_only" (instance too small to drain; hedging held the line).
	Resolution string `json:"resolution,omitempty"`
}

// Cleared-phase constants of one instance's detector state machine.
const (
	grayHealthy = iota
	graySuspected
	grayConfirmed
	grayDraining
)

// grayState is the per-instance detector state.
type grayState struct {
	ring    []float64
	n, next int

	phase        int
	suspectBeats int
	healthyBeats int
	confirmedAt  sim.Time
	clearedAt    sim.Time
	seen         int64 // completions observed, ever
	lastSeen     int64 // seen at the previous evaluation beat
	strikes      int
	fnBefore     int  // FailedNodes before the administrative drain-fail
	noDrain      bool // instance cannot shed a node; hedge-only episode
	ev           *GrayEvent
}

// GrayDetector watches one tenant-group for fail-slow instances. Like the
// crash Controller it is confined to the group's engine: all methods except
// Events/InProgress must run while holding the group's clock domain.
type GrayDetector struct {
	eng    *sim.Engine
	group  string
	insts  []*mppdb.Instance
	rt     HedgeRouter
	ctrl   *Controller
	pool   *cluster.Pool
	cfg    GrayConfig
	states []grayState
	byID   map[string]int
	events []*GrayEvent

	started bool

	tel        *telemetry.Hub
	mSuspected *telemetry.Counter
	mConfirmed *telemetry.Counter
	mDrained   *telemetry.Counter
	mCleared   *telemetry.Counter
	mActive    *telemetry.Gauge
}

// NewGrayDetector builds a detector over the group's instances. rt must be
// the group's router (its completion stream becomes the sample feed) and
// ctrl the group's crash-recovery controller, which executes the drain
// rung's node replacement.
func NewGrayDetector(eng *sim.Engine, pool *cluster.Pool, group string,
	insts []*mppdb.Instance, rt HedgeRouter, ctrl *Controller, cfg GrayConfig) (*GrayDetector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if eng == nil || pool == nil || len(insts) == 0 || rt == nil || ctrl == nil {
		return nil, fmt.Errorf("recovery: gray detector for %q needs engine, pool, instances, router, and controller", group)
	}
	d := &GrayDetector{
		eng:    eng,
		group:  group,
		insts:  insts,
		rt:     rt,
		ctrl:   ctrl,
		pool:   pool,
		cfg:    cfg,
		states: make([]grayState, len(insts)),
		byID:   make(map[string]int, len(insts)),
	}
	for i, inst := range insts {
		d.states[i].ring = make([]float64, cfg.Window)
		d.byID[inst.ID()] = i
	}
	rt.SetCompletionObserver(d.observe)
	return d, nil
}

// SetTelemetry attaches a telemetry hub. A nil hub disables instrumentation.
func (d *GrayDetector) SetTelemetry(h *telemetry.Hub) {
	d.tel = h
	if h == nil {
		return
	}
	d.mSuspected = h.Registry.Counter("thrifty_gray_suspected_total", "group", d.group)
	d.mConfirmed = h.Registry.Counter("thrifty_gray_confirmed_total", "group", d.group)
	d.mDrained = h.Registry.Counter("thrifty_gray_drained_total", "group", d.group)
	d.mCleared = h.Registry.Counter("thrifty_gray_cleared_total", "group", d.group)
	d.mActive = h.Registry.Gauge("thrifty_gray_active", "group", d.group)
}

// Start schedules the periodic evaluation loop. Idempotent.
func (d *GrayDetector) Start() {
	if d.started {
		return
	}
	d.started = true
	var beat func(now sim.Time)
	beat = func(now sim.Time) {
		d.evaluate()
		d.eng.After(d.cfg.Interval, beat)
	}
	d.eng.After(d.cfg.Interval, beat)
}

// Started reports whether the evaluation loop is armed.
func (d *GrayDetector) Started() bool { return d.started }

// Events returns a copy of all gray episodes so far, suspicion order.
func (d *GrayDetector) Events() []GrayEvent {
	out := make([]GrayEvent, len(d.events))
	for i, e := range d.events {
		out[i] = *e
	}
	return out
}

// InProgress returns how many instances are currently past Healthy.
func (d *GrayDetector) InProgress() int {
	n := 0
	for i := range d.states {
		if d.states[i].phase != grayHealthy {
			n++
		}
	}
	return n
}

// observe is the router's completion feed: one load-normalized slowdown
// sample per really completed query (hedge losers are cancelled and never
// land here). Raw slowdown conflates contention with sickness — under
// processor sharing k concurrent queries each legitimately run k× slower —
// so the sample divides by the peak concurrency the query saw: ≤1 on a
// healthy instance however busy it is, ≈1/speed on a fail-slow one. The
// divisor is the *effective* peak — shared batches count once however many
// queries they merge, since a batch stretches its members by the batch
// demand, not by the member count (identical to MaxConcurrency when sharing
// is off).
func (d *GrayDetector) observe(dbID string, res mppdb.Result) {
	i, ok := d.byID[dbID]
	if !ok {
		return
	}
	s := res.Slowdown()
	if res.EffectiveConcurrency > 1 {
		s /= float64(res.EffectiveConcurrency)
	}
	st := &d.states[i]
	st.seen++
	st.ring[st.next] = s
	st.next = (st.next + 1) % len(st.ring)
	if st.n < len(st.ring) {
		st.n++
	}
}

// mean returns the instance's current profile mean, or 0 with ok=false when
// it has too few samples to judge.
func (st *grayState) mean(minSamples int) (float64, bool) {
	if st.n < minSamples {
		return 0, false
	}
	sum := 0.0
	for _, v := range st.ring[:st.n] {
		sum += v
	}
	return sum / float64(st.n), true
}

// median of a small slice; sorts in place.
func median(v []float64) float64 {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// evaluate runs one detection beat: compare every instance's profile against
// its peers and advance each state machine one step.
func (d *GrayDetector) evaluate() {
	now := d.eng.Now()
	means := make([]float64, len(d.insts))
	valid := make([]bool, len(d.insts))
	for i := range d.states {
		means[i], valid[i] = d.states[i].mean(d.cfg.MinSamples)
	}
	var peers []float64
	for i, inst := range d.insts {
		st := &d.states[i]
		if st.phase == grayDraining {
			d.checkDrained(i, inst, now)
			continue
		}
		fresh := st.seen > st.lastSeen
		st.lastSeen = st.seen
		if st.phase != grayHealthy && !fresh {
			// Hedging starves a flagged instance of samples: its duplicates
			// lose the race and are cancelled before completing, so the ring
			// freezes full of stale values. The silence is weak evidence of
			// continued sickness — a healthy instance wins races — so a
			// starved beat advances confirmation and the drain clock, but it
			// must not touch the healthy streak either way: interleaved race
			// wins still clear the episode, while a frozen ring can never
			// fake a recovery.
			st.suspectBeats++
			d.escalate(i, inst, now, means[i], 0)
			continue
		}
		if !valid[i] {
			continue
		}
		peers = peers[:0]
		for j := range d.insts {
			if j != i && valid[j] {
				peers = append(peers, means[j])
			}
		}
		if len(peers) == 0 {
			continue // no basis for peer-relative judgement
		}
		pm := median(peers)
		suspicious := pm > 0 && means[i] >= d.cfg.SuspectRatio*pm && means[i] >= d.cfg.MinSlowdown
		if suspicious {
			st.healthyBeats = 0
			st.suspectBeats++
			d.escalate(i, inst, now, means[i], pm)
		} else {
			st.suspectBeats = 0
			if st.phase != grayHealthy {
				st.healthyBeats++
				if st.healthyBeats >= d.cfg.ClearBeats {
					d.clear(i, inst, now, "recovered")
				}
			}
		}
	}
}

// escalate advances one suspicious instance up the ladder.
func (d *GrayDetector) escalate(i int, inst *mppdb.Instance, now sim.Time, observed, pm float64) {
	st := &d.states[i]
	switch st.phase {
	case grayHealthy:
		st.phase = graySuspected
		st.ev = &GrayEvent{
			Group:      d.group,
			MPPDB:      inst.ID(),
			Suspected:  now,
			Observed:   observed,
			PeerMedian: pm,
		}
		d.events = append(d.events, st.ev)
		// Hedging is reversible and costs only duplicate work, so it engages
		// on suspicion — the blind window is one beat, not ConfirmBeats.
		d.rt.SetGrayFlag(inst.ID(), true)
		st.ev.Hedged = d.rt.HedgeInFlight(inst.ID())
		if d.tel != nil {
			d.mSuspected.Inc()
			d.mActive.Add(1)
			d.tel.Events.Publish(telemetry.Event{
				Type:  telemetry.EventGraySuspected,
				Group: d.group,
				MPPDB: inst.ID(),
				Value: observed,
				Detail: fmt.Sprintf("completion slowdown %.2f vs peer median %.2f; hedging engaged (%d in-flight duplicated)",
					observed, pm, st.ev.Hedged),
			})
		}
	case graySuspected:
		if st.suspectBeats < d.cfg.ConfirmBeats {
			return
		}
		st.phase = grayConfirmed
		st.confirmedAt = now
		if st.strikes > 0 && st.clearedAt > 0 && now-st.clearedAt >= sim.Duration(d.cfg.StrikeDecay) {
			st.strikes = 0
		}
		st.strikes++
		st.ev.Confirmed = now
		st.ev.Strikes = st.strikes
		if d.tel != nil {
			d.mConfirmed.Inc()
			d.tel.Events.Publish(telemetry.Event{
				Type:   telemetry.EventGrayConfirmed,
				Group:  d.group,
				MPPDB:  inst.ID(),
				Value:  observed,
				Detail: fmt.Sprintf("episode confirmed, strike %d; drain clock started", st.strikes),
			})
		}
		// A flapping instance that has struck out skips the patience window.
		if st.strikes >= d.cfg.MaxStrikes {
			d.drain(i, inst, now)
		}
	case grayConfirmed:
		if !st.noDrain && now-st.confirmedAt >= sim.Duration(d.cfg.DrainAfter) {
			d.drain(i, inst, now)
		}
	}
}

// drain executes the ladder's last rung: quarantine the instance, treat its
// slow node as failed at both the instance and the pool, and hand the
// replacement to the crash controller.
func (d *GrayDetector) drain(i int, inst *mppdb.Instance, now sim.Time) {
	st := &d.states[i]
	st.fnBefore = inst.FailedNodes()
	if err := inst.FailNode(); err != nil {
		// A single-node (or already maximally degraded) instance cannot shed
		// a node; hedging and quarantine-free serving are all we have.
		st.noDrain = true
		st.ev.Resolution = "hedge_only"
		return
	}
	// Fail a pool node of the instance so the controller performs a true
	// swap (replace + re-image) instead of growing the allocation. With no
	// pool-side record (test wiring) the controller's plain-acquire fallback
	// still replaces the capacity.
	_, _ = d.pool.FailAny(inst.ID())
	d.rt.SetQuarantine(inst.ID(), true)
	st.phase = grayDraining
	st.ev.Drained = now
	if d.tel != nil {
		d.mDrained.Inc()
		d.tel.Events.Publish(telemetry.Event{
			Type:   telemetry.EventGrayDrain,
			Group:  d.group,
			MPPDB:  inst.ID(),
			Value:  inst.Slowdown(),
			Detail: "quarantined; slow node failed over to the recovery controller",
		})
	}
	d.ctrl.Notify()
}

// checkDrained watches a draining instance for its replacement completing:
// the crash controller's RepairNode restores the failed-node count, at which
// point the fresh hardware clears the fail-slow fault and the instance is
// re-admitted.
func (d *GrayDetector) checkDrained(i int, inst *mppdb.Instance, now sim.Time) {
	st := &d.states[i]
	if inst.FailedNodes() > st.fnBefore {
		return // replacement still reloading
	}
	_ = inst.SetSlowdown(1)
	d.clear(i, inst, now, "drained_replaced")
}

// clear closes an episode and resets the instance to Healthy.
func (d *GrayDetector) clear(i int, inst *mppdb.Instance, now sim.Time, how string) {
	st := &d.states[i]
	wasSuspectOnly := st.phase == graySuspected
	d.rt.SetGrayFlag(inst.ID(), false)
	d.rt.SetQuarantine(inst.ID(), false)
	if st.ev != nil {
		st.ev.Cleared = now
		if wasSuspectOnly {
			how = "suspicion_cleared"
		}
		st.ev.Resolution = how
	}
	if d.tel != nil {
		d.mCleared.Inc()
		d.mActive.Add(-1)
		d.tel.Events.Publish(telemetry.Event{
			Type:   telemetry.EventGrayCleared,
			Group:  d.group,
			MPPDB:  inst.ID(),
			Detail: how,
		})
	}
	st.phase = grayHealthy
	st.suspectBeats, st.healthyBeats = 0, 0
	st.clearedAt = now
	st.noDrain = false
	st.ev = nil
	// Reset the profile: samples taken while gray must not bias the next
	// judgement.
	st.n, st.next = 0, 0
}
