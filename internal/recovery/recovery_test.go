package recovery

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/mppdb"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// rig is one instrumented group: a 2-node instance holding 10 GB, its pool
// nodes acquired, a started controller, and a telemetry hub.
type rig struct {
	eng  *sim.Engine
	pool *cluster.Pool
	inst *mppdb.Instance
	ctl  *Controller
	hub  *telemetry.Hub
}

func newRig(t *testing.T, poolSize int, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	pool := cluster.NewPool(poolSize)
	inst := mppdb.New(eng, "g0-db0", 2)
	inst.DeployTenant("T0", 10)
	if _, err := pool.Acquire(inst.ID(), 2); err != nil {
		t.Fatal(err)
	}
	ctl, err := New(eng, pool, "g0", []*mppdb.Instance{inst}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.NewHub(eng, 0.999)
	ctl.SetTelemetry(hub)
	ctl.Start()
	return &rig{eng: eng, pool: pool, inst: inst, ctl: ctl, hub: hub}
}

// crash fails one node at the instance and the pool, like the replay injector.
func (r *rig) crash(t *testing.T, at sim.Time) {
	t.Helper()
	r.eng.Schedule(at, func(sim.Time) {
		if err := r.inst.FailNode(); err != nil {
			t.Errorf("FailNode: %v", err)
			return
		}
		if _, err := r.pool.FailAny(r.inst.ID()); err != nil {
			t.Errorf("FailAny: %v", err)
		}
	})
}

func countEvents(hub *telemetry.Hub, typ telemetry.EventType) int {
	n := 0
	for _, ev := range hub.Events.Recent(0) {
		if ev.Type == typ {
			n++
		}
	}
	return n
}

func TestDetectAndRecover(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 3, cfg) // one spare
	r.crash(t, 100*sim.Second)
	r.eng.Run(2 * sim.Day)

	evs := r.ctl.Events()
	if len(evs) != 1 {
		t.Fatalf("%d recovery events, want 1", len(evs))
	}
	ev := evs[0]
	// The heartbeat grid is 30 s; a crash at t=100 is noticed at t=120.
	if ev.Detected != 120*sim.Second {
		t.Errorf("Detected = %v, want 120s (next heartbeat)", ev.Detected)
	}
	if ev.Replaced != ev.Detected {
		t.Errorf("Replaced = %v, want immediate (pool has a spare)", ev.Replaced)
	}
	// Table 5.1: single-node startup + single-stream reload of this node's
	// data share (10 GB / 2 nodes).
	wantDelay := cluster.StartupTime(1) + cluster.LoadTime(5, 1, false)
	if got := ev.Completed - ev.Replaced; got != sim.Duration(wantDelay) {
		t.Errorf("reload took %v, want StartupTime(1)+LoadTime(5GB) = %v", got, wantDelay)
	}
	if ev.Attempts != 1 || ev.ExhaustedCycles != 0 || ev.Err != "" {
		t.Errorf("lifecycle bookkeeping: %+v", ev)
	}
	if ev.FailedNode != 0 || ev.ReplacementNode != 2 {
		t.Errorf("node IDs: failed=%d replacement=%d, want 0 and 2", ev.FailedNode, ev.ReplacementNode)
	}
	if r.inst.FailedNodes() != 0 || r.inst.SpeedFactor() != 1.0 {
		t.Errorf("instance not restored: failed=%d speed=%v", r.inst.FailedNodes(), r.inst.SpeedFactor())
	}
	// The swapped-out node was re-imaged back into the free list; no node
	// leaked (2 active for the instance, 1 hibernated spare).
	if a, h, f, rp := r.pool.CountState(cluster.Active), r.pool.CountState(cluster.Hibernated),
		r.pool.CountState(cluster.Failed), r.pool.CountState(cluster.Repairing); a != 2 || h != 1 || f != 0 || rp != 0 {
		t.Errorf("pool leaked: active=%d hib=%d failed=%d repairing=%d", a, h, f, rp)
	}
	if r.ctl.InProgress() != 0 {
		t.Errorf("InProgress = %d after completion", r.ctl.InProgress())
	}
	// Telemetry: the full started→replaced→completed event trail and the
	// duration histogram.
	for _, typ := range []telemetry.EventType{
		telemetry.EventRecoveryStarted, telemetry.EventRecoveryReplaced, telemetry.EventRecoveryCompleted,
	} {
		if n := countEvents(r.hub, typ); n != 1 {
			t.Errorf("%d %s events, want 1", n, typ)
		}
	}
	if got := r.hub.Registry.Counter("thrifty_recovery_completed_total", "group", "g0").Value(); got != 1 {
		t.Errorf("completed counter = %d", got)
	}
	if got := r.hub.Registry.Histogram("thrifty_recovery_duration_seconds",
		nil, "group", "g0").Count(); got != 1 {
		t.Errorf("duration histogram count = %d", got)
	}
}

// TestRepeatCrashDuringRecovery: a second node of a 3-node instance fails
// while the first recovery is mid-reload; the sweep notices the extra failure
// and both lifecycles complete.
func TestRepeatCrashDuringRecovery(t *testing.T) {
	eng := sim.NewEngine()
	pool := cluster.NewPool(6)
	inst := mppdb.New(eng, "g0-db0", 3)
	inst.DeployTenant("T0", 12)
	if _, err := pool.Acquire(inst.ID(), 3); err != nil {
		t.Fatal(err)
	}
	ctl, err := New(eng, pool, "g0", []*mppdb.Instance{inst}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	crash := func(at sim.Time) {
		eng.Schedule(at, func(sim.Time) {
			if err := inst.FailNode(); err != nil {
				t.Errorf("FailNode: %v", err)
				return
			}
			if _, err := pool.FailAny(inst.ID()); err != nil {
				t.Errorf("FailAny: %v", err)
			}
		})
	}
	crash(100 * sim.Second)
	crash(200 * sim.Second) // first recovery still reloading (≫100 s)
	eng.Run(2 * sim.Day)

	evs := ctl.Events()
	if len(evs) != 2 {
		t.Fatalf("%d recovery events, want 2", len(evs))
	}
	for i, ev := range evs {
		if !ev.Recovered() {
			t.Errorf("event %d not recovered: %+v", i, ev)
		}
	}
	if evs[1].Detected != 210*sim.Second {
		t.Errorf("second detection at %v, want 210s", evs[1].Detected)
	}
	if inst.FailedNodes() != 0 {
		t.Errorf("instance left with %d failed nodes", inst.FailedNodes())
	}
	if a := pool.CountState(cluster.Active); a != 3 {
		t.Errorf("active nodes = %d, want 3", a)
	}
}

// TestPoolExhaustionBacksOff: with no free node, the controller retries with
// exponential backoff, exhausts the cycle, cools down — and succeeds once
// capacity appears. The clock domain never deadlocks (Run simply returns).
func TestPoolExhaustionBacksOff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxAttempts = 3
	cfg.CoolDown = 30 * time.Minute
	r := newRig(t, 2, cfg) // pool exactly covers the instance: no spare
	r.crash(t, 100*sim.Second)
	// First cycle: attempts at 120 s, +1 min, +2 min — all exhausted.
	r.eng.Run(20 * sim.Minute)

	evs := r.ctl.Events()
	if len(evs) != 1 {
		t.Fatalf("%d recovery events, want 1", len(evs))
	}
	if evs[0].Recovered() || evs[0].ExhaustedCycles != 1 || evs[0].Attempts != 3 {
		t.Errorf("after first cycle: %+v", evs[0])
	}
	if evs[0].Err == "" {
		t.Error("exhausted lifecycle has no error")
	}
	if n := countEvents(r.hub, telemetry.EventRecoveryFailed); n != 3 {
		t.Errorf("%d recovery_failed events, want 3 (2 backoffs + 1 exhaustion)", n)
	}
	if got := r.hub.Registry.Counter("thrifty_recovery_exhausted_total", "group", "g0").Value(); got != 1 {
		t.Errorf("exhausted counter = %d", got)
	}
	// Days later, still no capacity: the controller keeps cycling (cool-down
	// + fresh attempts) without recovering, panicking, or deadlocking the
	// engine — Run simply returns at the bound with the recovery open.
	r.eng.Run(3 * sim.Day)
	evs = r.ctl.Events()
	if evs[0].Recovered() {
		t.Fatalf("recovered with no capacity: %+v", evs[0])
	}
	if evs[0].ExhaustedCycles < 2 {
		t.Errorf("ExhaustedCycles = %d, want repeated cycles over 3 days", evs[0].ExhaustedCycles)
	}
	if r.ctl.InProgress() != 1 {
		t.Errorf("InProgress = %d, want 1 (still waiting for capacity)", r.ctl.InProgress())
	}
	// The degraded instance kept serving: SpeedFactor 0.5, not offline.
	if got := r.inst.SpeedFactor(); got != 0.5 {
		t.Errorf("degraded SpeedFactor = %v, want 0.5", got)
	}
}

// TestRecoveryAfterCapacityReturns: an exhausted controller completes the
// recovery in a later cycle when a hibernated node appears.
func TestRecoveryAfterCapacityReturns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxAttempts = 2
	cfg.CoolDown = 10 * time.Minute
	eng := sim.NewEngine()
	pool := cluster.NewPool(3)
	inst := mppdb.New(eng, "g0-db0", 2)
	inst.DeployTenant("T0", 10)
	if _, err := pool.Acquire(inst.ID(), 2); err != nil {
		t.Fatal(err)
	}
	// A second owner keeps the spare busy initially.
	if _, err := pool.Acquire("hog", 1); err != nil {
		t.Fatal(err)
	}
	ctl, err := New(eng, pool, "g0", []*mppdb.Instance{inst}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	eng.Schedule(100*sim.Second, func(sim.Time) {
		if err := inst.FailNode(); err != nil {
			t.Errorf("FailNode: %v", err)
			return
		}
		if _, err := pool.FailAny(inst.ID()); err != nil {
			t.Errorf("FailAny: %v", err)
		}
	})
	// The hog releases its node after the first cycle has exhausted.
	eng.Schedule(30*sim.Minute, func(sim.Time) { pool.Release("hog") })
	eng.Run(2 * sim.Day)

	evs := ctl.Events()
	if len(evs) != 1 || !evs[0].Recovered() {
		t.Fatalf("recovery did not complete after capacity returned: %+v", evs)
	}
	if evs[0].ExhaustedCycles < 1 || evs[0].Attempts <= cfg.MaxAttempts {
		t.Errorf("expected at least one exhausted cycle before success: %+v", evs[0])
	}
	if evs[0].Err != "" {
		t.Errorf("Err not cleared on success: %q", evs[0].Err)
	}
	if inst.FailedNodes() != 0 {
		t.Errorf("instance left degraded")
	}
	if f, rp := pool.CountState(cluster.Failed), pool.CountState(cluster.Repairing); f != 0 || rp != 0 {
		t.Errorf("pool left failed=%d repairing=%d", f, rp)
	}
}

// TestInstanceOnlyFailureFallsBackToAcquire: a failure injected at the
// instance alone (no pool-side Failed record) recovers via a plain acquire.
func TestInstanceOnlyFailureFallsBackToAcquire(t *testing.T) {
	r := newRig(t, 3, DefaultConfig())
	r.eng.Schedule(50*sim.Second, func(sim.Time) {
		if err := r.inst.FailNode(); err != nil {
			t.Errorf("FailNode: %v", err)
		}
	})
	r.eng.Run(sim.Day)
	evs := r.ctl.Events()
	if len(evs) != 1 || !evs[0].Recovered() {
		t.Fatalf("recovery events: %+v", evs)
	}
	if evs[0].FailedNode != -1 {
		t.Errorf("FailedNode = %d, want -1 (no pool record)", evs[0].FailedNode)
	}
	if evs[0].ReplacementNode != 2 {
		t.Errorf("ReplacementNode = %d, want 2", evs[0].ReplacementNode)
	}
}

// TestNotifySkipsDetectionLatency: a push notification recovers without
// waiting for the next heartbeat.
func TestNotifySkipsDetectionLatency(t *testing.T) {
	r := newRig(t, 3, DefaultConfig())
	r.eng.Schedule(100*sim.Second, func(sim.Time) {
		if err := r.inst.FailNode(); err != nil {
			t.Errorf("FailNode: %v", err)
			return
		}
		r.ctl.Notify()
	})
	r.eng.Run(sim.Day)
	evs := r.ctl.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Detected != 100*sim.Second {
		t.Errorf("Detected = %v, want 100s (pushed)", evs[0].Detected)
	}
	// The next heartbeat must not double-start a lifecycle for the same
	// failure.
	if r.ctl.InProgress() != 0 || len(r.ctl.Events()) != 1 {
		t.Error("heartbeat double-counted a notified failure")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	pool := cluster.NewPool(2)
	inst := mppdb.New(eng, "x", 2)
	bad := []Config{
		{},
		{HeartbeatInterval: time.Second, MaxAttempts: 0, InitialBackoff: time.Second, MaxBackoff: time.Second, CoolDown: time.Second},
		{HeartbeatInterval: -time.Second, MaxAttempts: 1, InitialBackoff: time.Second, MaxBackoff: time.Second, CoolDown: time.Second},
	}
	for i, cfg := range bad {
		if _, err := New(eng, pool, "g", []*mppdb.Instance{inst}, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(nil, pool, "g", []*mppdb.Instance{inst}, DefaultConfig()); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(eng, pool, "g", nil, DefaultConfig()); err == nil {
		t.Error("no instances accepted")
	}
	ctl, err := New(eng, pool, "g", []*mppdb.Instance{inst}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	ctl.Start() // idempotent
	if !ctl.Started() {
		t.Error("Started false after Start")
	}
	if n := eng.Pending(); n != 1 {
		t.Errorf("double Start armed %d heartbeats, want 1", n)
	}
}
