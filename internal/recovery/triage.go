// The cluster-wide scarcity triage allocator. When a correlated failure
// (a whole rack/zone) takes the pool scarce, every group's recovery
// controller used to fight for the same few hibernated nodes with
// uncoordinated exponential backoff — whichever group's timer fired first
// won, regardless of how close it was to violating its SLA. The Triage
// replaces that free-for-all: exhausted lifecycles enqueue a claim ranked by
// SLA-at-risk (sliding RT-TTP deficit × tenant count) and poll on their own
// clock domain; a poll is granted only when the claim ranks inside the
// pool's current free-node budget, so scarce nodes always go to the
// worst-off group first and the losers keep serving degraded behind the
// existing brownout/admission machinery instead of burning retry cycles.
//
// The pull design keeps clock domains safe: the allocator never schedules
// onto another group's engine. On a shared domain every poll happens in one
// deterministic engine order, so same-seed runs are byte-identical; on
// sharded deployments grants are as racy as the shared pool itself already
// is (best-effort, like every cross-domain pool acquisition).
package recovery

import (
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
)

// TriageConfig tunes the allocator.
type TriageConfig struct {
	// Interval is the claim poll period (default 1 min). Each queued
	// lifecycle re-evaluates its priority and asks for a grant once per
	// interval on its own clock domain.
	Interval time.Duration
}

// DefaultTriageConfig returns one-minute claim polls.
func DefaultTriageConfig() TriageConfig {
	return TriageConfig{Interval: time.Minute}
}

// TriageClaim is one queued recovery's entry, snapshot for observability.
type TriageClaim struct {
	// Group and Owner locate the starved lifecycle (owner = instance ID).
	Group string `json:"group"`
	Owner string `json:"owner"`
	// Deficit is the group's sliding RT-TTP shortfall below its guarantee P
	// (0 while the guarantee still holds).
	Deficit float64 `json:"deficit"`
	// Tenants is the group's member count — the blast radius of the miss.
	Tenants int `json:"tenants"`
	// Priority is Deficit × Tenants, the SLA-at-risk ranking key.
	Priority float64 `json:"priority"`
	// Polls counts denied grants so far.
	Polls int `json:"polls"`
}

type triageClaim struct {
	key          string
	group, owner string
	deficit      float64
	tenants      int
	polls        int
}

func (c *triageClaim) priority() float64 { return c.deficit * float64(c.tenants) }

// Triage is the cluster-level allocator, shared by every group's recovery
// controller over one pool. Safe for concurrent use across clock domains.
type Triage struct {
	mu     sync.Mutex
	pool   *cluster.Pool
	cfg    TriageConfig
	claims map[string]*triageClaim

	granted  int
	enqueued int
}

// NewTriage builds an allocator over the pool.
func NewTriage(pool *cluster.Pool, cfg TriageConfig) *Triage {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Minute
	}
	return &Triage{pool: pool, cfg: cfg, claims: make(map[string]*triageClaim)}
}

// Interval returns the poll period claimants should use.
func (t *Triage) Interval() time.Duration { return t.cfg.Interval }

// Enqueue registers (or refreshes) a claim under key for owner's group. It
// reports whether the claim is new.
func (t *Triage) Enqueue(key, group, owner string, deficit float64, tenants int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.claims[key]; ok {
		c.deficit, c.tenants = deficit, tenants
		return false
	}
	t.claims[key] = &triageClaim{key: key, group: group, owner: owner, deficit: deficit, tenants: tenants}
	t.enqueued++
	return true
}

// rankLocked returns the claims ordered worst-off first. Ties break toward
// the larger blast radius, then lexical (group, owner, key) — a total order
// independent of enqueue timing, so shared-domain runs are deterministic.
func (t *Triage) rankLocked() []*triageClaim {
	out := make([]*triageClaim, 0, len(t.claims))
	for _, c := range t.claims {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.priority() != b.priority() {
			return a.priority() > b.priority()
		}
		if a.tenants != b.tenants {
			return a.tenants > b.tenants
		}
		if a.group != b.group {
			return a.group < b.group
		}
		if a.owner != b.owner {
			return a.owner < b.owner
		}
		return a.key < b.key
	})
	return out
}

// TryGrant is one claim poll: the claimant refreshes its priority and asks
// for a replacement node. A grant happens only when the claim ranks within
// the pool's free-node budget; the swap itself (Replace of the owner's
// oldest failed node, or a plain acquire for instance-only failures) runs
// under the triage lock so concurrent polls cannot over-commit the pool.
// On success the claim leaves the queue and the caller schedules the
// swapped-out node's re-image; on denial the claim stays queued.
func (t *Triage) TryGrant(key string, deficit float64, tenants int) (failedID int, repl *cluster.Node, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, found := t.claims[key]
	if !found {
		return -1, nil, false
	}
	c.deficit, c.tenants = deficit, tenants
	c.polls++
	free := t.pool.Free()
	if free <= 0 {
		return -1, nil, false
	}
	rank := -1
	for i, rc := range t.rankLocked() {
		if rc.key == key {
			rank = i
			break
		}
	}
	if rank < 0 || rank >= free {
		return -1, nil, false
	}
	if ids := t.pool.FailedNodesOf(c.owner); len(ids) > 0 {
		// Pool-side record: swap the oldest failed node. A lost race against
		// a non-triage acquirer denies the poll rather than stranding the
		// failed node.
		failedID = ids[0]
		repl, err := t.pool.Replace(failedID)
		if err != nil {
			return -1, nil, false
		}
		delete(t.claims, key)
		t.granted++
		return failedID, repl, true
	}
	// Instance-only failure (no pool record): plain acquire.
	nodes, err := t.pool.Acquire(c.owner, 1)
	if err != nil {
		return -1, nil, false
	}
	delete(t.claims, key)
	t.granted++
	return -1, nodes[0], true
}

// Abandon drops a claim (the lifecycle resolved some other way).
func (t *Triage) Abandon(key string) {
	t.mu.Lock()
	delete(t.claims, key)
	t.mu.Unlock()
}

// Queued returns the outstanding claims, worst-off first.
func (t *Triage) Queued() []TriageClaim {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TriageClaim, 0, len(t.claims))
	for _, c := range t.rankLocked() {
		out = append(out, TriageClaim{
			Group: c.group, Owner: c.owner,
			Deficit: c.deficit, Tenants: c.tenants,
			Priority: c.priority(), Polls: c.polls,
		})
	}
	return out
}

// Stats returns cumulative (enqueued, granted) claim counts.
func (t *Triage) Stats() (enqueued, granted int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enqueued, t.granted
}
