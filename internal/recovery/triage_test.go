package recovery

import (
	"testing"

	"repro/internal/cluster"
)

func TestTriagePriorityOrdering(t *testing.T) {
	tr := NewTriage(cluster.NewPool(4), DefaultTriageConfig())
	tr.Enqueue("k1", "g1", "g1/0", 0.05, 2)  // priority 0.10
	tr.Enqueue("k2", "g2", "g2/0", 0.02, 10) // priority 0.20
	tr.Enqueue("k3", "g3", "g3/0", 0.10, 1)  // priority 0.10, fewer tenants than k1
	tr.Enqueue("k4", "g0", "g0/0", 0, 50)    // guarantee holds: priority 0
	q := tr.Queued()
	got := make([]string, len(q))
	for i, c := range q {
		got[i] = c.Group
	}
	want := []string{"g2", "g1", "g3", "g0"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank order %v, want %v", got, want)
		}
	}
	if q[0].Priority != 0.2 || q[0].Polls != 0 {
		t.Fatalf("head claim: %+v", q[0])
	}
	// Re-enqueueing refreshes, never double-counts.
	if tr.Enqueue("k2", "g2", "g2/0", 0.5, 10) {
		t.Fatalf("refresh reported as a new claim")
	}
	if enq, _ := tr.Stats(); enq != 4 {
		t.Fatalf("enqueued=%d after refresh, want 4", enq)
	}
	if tr.Queued()[0].Deficit != 0.5 {
		t.Fatalf("refresh did not update the deficit")
	}
}

func TestTriageGrantBudget(t *testing.T) {
	// Pool with exactly one free node and two claimants: only the worst-off
	// claim fits the budget; the other keeps polling.
	pool := cluster.NewPool(3)
	if _, err := pool.Acquire("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Acquire("b", 1); err != nil {
		t.Fatal(err)
	}
	tr := NewTriage(pool, DefaultTriageConfig())
	tr.Enqueue("a", "ga", "a", 0.01, 1)
	tr.Enqueue("b", "gb", "b", 0.50, 4)
	if _, _, ok := tr.TryGrant("a", 0.01, 1); ok {
		t.Fatalf("rank-1 claim granted with a budget of 1")
	}
	failedID, repl, ok := tr.TryGrant("b", 0.50, 4)
	if !ok || repl == nil || failedID != -1 {
		t.Fatalf("worst-off claim denied: failed=%d repl=%v ok=%v", failedID, repl, ok)
	}
	if got := pool.ActiveNodesOf("b"); len(got) != 2 {
		t.Fatalf("grant did not acquire for b: %v", got)
	}
	// The pool is now empty; the survivor stays queued no matter its rank.
	if _, _, ok := tr.TryGrant("a", 9.0, 9); ok {
		t.Fatalf("grant from an empty pool")
	}
	if q := tr.Queued(); len(q) != 1 || q[0].Polls != 2 {
		t.Fatalf("queue after grants: %+v", q)
	}
	if enq, granted := tr.Stats(); enq != 2 || granted != 1 {
		t.Fatalf("stats: enqueued=%d granted=%d", enq, granted)
	}
}

func TestTriageGrantSwapsFailedNode(t *testing.T) {
	// When the pool holds a Failed record for the owner, a grant is a swap:
	// Replace the oldest casualty so the caller can schedule its re-image.
	pool := cluster.NewPool(3)
	if _, err := pool.Acquire("a", 2); err != nil {
		t.Fatal(err)
	}
	failed, err := pool.FailAny("a")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTriage(pool, DefaultTriageConfig())
	tr.Enqueue("a", "ga", "a", 0.1, 1)
	gotFailed, repl, ok := tr.TryGrant("a", 0.1, 1)
	if !ok || gotFailed != failed || repl == nil {
		t.Fatalf("swap grant: failed=%d (want %d) repl=%v ok=%v", gotFailed, failed, repl, ok)
	}
	if len(pool.FailedNodesOf("a")) != 0 {
		t.Fatalf("swap left a's failed record behind")
	}
	if pool.CountState(cluster.Repairing) != 1 {
		t.Fatalf("swapped-out node not repairing")
	}
	if len(pool.ActiveNodesOf("a")) != 2 {
		t.Fatalf("a not back to strength: %v", pool.ActiveNodesOf("a"))
	}
}

func TestTriageDenyAndAbandon(t *testing.T) {
	pool := cluster.NewPool(2)
	tr := NewTriage(pool, DefaultTriageConfig())
	// Unknown key: denied, nothing granted.
	if _, _, ok := tr.TryGrant("ghost", 1, 1); ok {
		t.Fatalf("granted a claim that was never enqueued")
	}
	tr.Enqueue("k", "g", "g/0", 0.2, 3)
	tr.Abandon("k")
	if q := tr.Queued(); len(q) != 0 {
		t.Fatalf("abandoned claim still queued: %+v", q)
	}
	if _, _, ok := tr.TryGrant("k", 0.2, 3); ok {
		t.Fatalf("granted an abandoned claim")
	}
	if enq, granted := tr.Stats(); enq != 1 || granted != 0 {
		t.Fatalf("stats: enqueued=%d granted=%d", enq, granted)
	}
	if tr.Interval() != DefaultTriageConfig().Interval {
		t.Fatalf("interval: %v", tr.Interval())
	}
	// A zero config falls back to the one-minute default.
	if NewTriage(pool, TriageConfig{}).Interval() <= 0 {
		t.Fatalf("zero-config interval not defaulted")
	}
}
