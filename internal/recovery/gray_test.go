package recovery

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/mppdb"
	"repro/internal/sim"
)

// nopRouter satisfies HedgeRouter for constructor tests.
type nopRouter struct{}

func (nopRouter) SetGrayFlag(string, bool)                         {}
func (nopRouter) SetQuarantine(string, bool)                       {}
func (nopRouter) HedgeInFlight(string) int                         { return 0 }
func (nopRouter) SetCompletionObserver(func(string, mppdb.Result)) {}

func TestGrayConfigValidation(t *testing.T) {
	mut := func(f func(*GrayConfig)) GrayConfig {
		c := DefaultGrayConfig()
		f(&c)
		return c
	}
	bad := map[string]GrayConfig{
		"zero interval":          mut(func(c *GrayConfig) { c.Interval = 0 }),
		"negative drain":         mut(func(c *GrayConfig) { c.DrainAfter = -time.Minute }),
		"zero window":            mut(func(c *GrayConfig) { c.Window = 0 }),
		"zero min samples":       mut(func(c *GrayConfig) { c.MinSamples = 0 }),
		"samples beyond window":  mut(func(c *GrayConfig) { c.MinSamples = c.Window + 1 }),
		"suspect ratio at 1":     mut(func(c *GrayConfig) { c.SuspectRatio = 1 }),
		"slowdown floor below 1": mut(func(c *GrayConfig) { c.MinSlowdown = 0.9 }),
		"zero confirm beats":     mut(func(c *GrayConfig) { c.ConfirmBeats = 0 }),
		"zero clear beats":       mut(func(c *GrayConfig) { c.ClearBeats = 0 }),
		"zero strikes":           mut(func(c *GrayConfig) { c.MaxStrikes = 0 }),
		"zero strike decay":      mut(func(c *GrayConfig) { c.StrikeDecay = 0 }),
	}
	for name, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if err := DefaultGrayConfig().validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNewGrayDetectorRejectsMissingPieces(t *testing.T) {
	eng := sim.NewEngine()
	pool := cluster.NewPool(4)
	inst := mppdb.New(eng, "g0-db0", 2)
	insts := []*mppdb.Instance{inst}
	ctl, err := New(eng, pool, "g0", insts, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGrayConfig()
	if _, err := NewGrayDetector(nil, pool, "g0", insts, nopRouter{}, ctl, cfg); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewGrayDetector(eng, nil, "g0", insts, nopRouter{}, ctl, cfg); err == nil {
		t.Error("nil pool accepted")
	}
	if _, err := NewGrayDetector(eng, pool, "g0", nil, nopRouter{}, ctl, cfg); err == nil {
		t.Error("empty instance set accepted")
	}
	if _, err := NewGrayDetector(eng, pool, "g0", insts, nil, ctl, cfg); err == nil {
		t.Error("nil router accepted")
	}
	if _, err := NewGrayDetector(eng, pool, "g0", insts, nopRouter{}, nil, cfg); err == nil {
		t.Error("nil crash controller accepted")
	}
	bad := cfg
	bad.SuspectRatio = 0.5
	if _, err := NewGrayDetector(eng, pool, "g0", insts, nopRouter{}, ctl, bad); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewGrayDetector(eng, pool, "g0", insts, nopRouter{}, ctl, cfg); err != nil {
		t.Errorf("valid detector rejected: %v", err)
	}
}
