package chaos

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/queries"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// domainWorld builds a shared-domain deployment on a multi-domain pool for
// correlated-failure storms. spread/triage arm the PR-9 defenses; slackPct
// sizes the spare capacity (scarce by design, so a whole-domain loss forces
// the triage queue to form).
func domainWorld(t *testing.T, tenants, days, r, domains int, spread, triage bool, slackPct int) *world {
	t.Helper()
	cat := queries.Default()
	lib, err := workload.BuildLibrary(cat, []int{2}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pop, err := tenant.Population(rng, tenants, 0.8, []int{2}, tenant.ZoneOffsets)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := workload.DefaultComposeConfig(3)
	ccfg.Days = days
	ccfg.Holidays = 0
	logs, err := workload.Compose(lib, pop, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := advisor.DefaultConfig()
	acfg.R = r
	acfg.FailureDomains = domains
	adv, err := advisor.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adv.Plan(logs, ccfg.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	rcfg := recovery.DefaultConfig()
	opts := master.Options{
		Immediate:     true,
		MonitorWindow: time.Hour,
		Recovery:      &rcfg,
		NoSpread:      !spread,
	}
	if triage {
		tc := recovery.DefaultTriageConfig()
		opts.Triage = &tc
	}
	used := plan.NodesUsed()
	pool := cluster.NewPoolDomains(used+(used*slackPct+99)/100, domains)
	eng := sim.NewEngine()
	m := master.New(eng, pool, opts)
	byID := map[string]*tenant.Tenant{}
	for _, tn := range pop {
		byID[tn.ID] = tn
	}
	dep, err := m.Deploy(plan, byID)
	if err != nil {
		t.Fatal(err)
	}
	return &world{eng: eng, cat: cat, dep: dep, logs: logs, plan: plan}
}

func domainStormConfig() DomainFailConfig {
	cfg := DefaultDomainFailConfig()
	cfg.Seed = 7
	cfg.From, cfg.To = 0, 12*sim.Hour
	cfg.Duration = 2 * time.Hour
	// Table 5.1 reloads of the bigger groups run for hours; triage queues
	// drain only after the domain returns.
	cfg.DrainSlack = 48 * time.Hour
	return cfg
}

// TestDomainSmoke is the bounded CI gate (make domain-smoke): a short seeded
// whole-domain outage against a protected deployment (spread placement +
// scarcity triage) must be absorbed — zero dropped queries, every recovery
// and triage claim drained, pool leak-free.
func TestDomainSmoke(t *testing.T) {
	w := domainWorld(t, 12, 1, 3, 3, true, true, 20)
	res, err := RunDomainFail(w.eng, w.dep, w.cat, w.logs, domainStormConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("domain smoke: %v (%+v)", err, res)
	}
	if !res.TriageArmed {
		t.Fatal("smoke deployment has no triage allocator")
	}
	if res.Casualties == 0 {
		t.Fatalf("outages killed no nodes: %+v", res.Schedule)
	}
	if res.Quarantines == 0 {
		t.Error("no fully covered instance was quarantined — spread placement should put whole instances in one domain")
	}
	if res.Lifecycles == 0 || res.Recovered != res.Lifecycles {
		t.Errorf("recovered %d of %d lifecycles", res.Recovered, res.Lifecycles)
	}
	met, missed := slaTotals(w)
	if got, want := int(met+missed), res.Submitted-res.Errors; got != want {
		t.Errorf("SLA report counts %d queries, want %d", got, want)
	}
	t.Logf("casualties %d, quarantines %d, lifecycles %d (triaged %d), triage %d/%d, attainment %.4f",
		res.Casualties, res.Quarantines, res.Lifecycles, res.Triaged,
		res.TriageEnqueued, res.TriageGranted, res.Attainment)
}

// TestDomainFailTelemetryDeterminism: two fresh same-seed protected storms
// emit byte-identical telemetry — spread acquisition, domain injection,
// triage polling, quarantine, and re-spread all preserve the shared-domain
// determinism contract.
func TestDomainFailTelemetryDeterminism(t *testing.T) {
	dump := func() (string, string) {
		w := domainWorld(t, 12, 1, 3, 3, true, true, 20)
		if _, err := RunDomainFail(w.eng, w.dep, w.cat, w.logs, domainStormConfig()); err != nil {
			t.Fatal(err)
		}
		hub := w.dep.Telemetry()
		var ev, tr bytes.Buffer
		if err := hub.Events.Dump(&ev); err != nil {
			t.Fatal(err)
		}
		if err := hub.Tracer.Dump(&tr); err != nil {
			t.Fatal(err)
		}
		return ev.String(), tr.String()
	}
	ev1, tr1 := dump()
	ev2, tr2 := dump()
	if ev1 != ev2 {
		t.Fatal("same-seed domain-fail runs emitted different event dumps")
	}
	if tr1 != tr2 {
		t.Fatal("same-seed domain-fail runs emitted different trace dumps")
	}
	if len(ev1) == 0 {
		t.Fatal("domain-fail run emitted no events")
	}
}

// TestDomainFailRolling marches outages through consecutive domains with
// overlap, so restoration of one domain races the loss of the next. The
// protected deployment must still absorb the storm.
func TestDomainFailRolling(t *testing.T) {
	w := domainWorld(t, 12, 1, 3, 3, true, true, 25)
	cfg := domainStormConfig()
	cfg.Rolling = true
	cfg.Outages = 3
	cfg.To = 18 * sim.Hour
	cfg.DrainSlack = 60 * time.Hour
	res, err := RunDomainFail(w.eng, w.dep, w.cat, w.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule) != 3 {
		t.Fatalf("rolling schedule has %d outages, want 3", len(res.Schedule))
	}
	doms := map[int]bool{}
	for _, o := range res.Schedule {
		doms[o.Domain] = true
	}
	if len(doms) != 3 {
		t.Errorf("rolling storm hit %d distinct domains, want 3: %+v", len(doms), res.Schedule)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("rolling storm: %v (%+v)", err, res)
	}
}

// TestDomainFailDuringGrayDrain composes the PR-8 and PR-9 failure classes:
// a stuck fail-slow episode overlaps a whole-domain outage, so the gray
// ladder's drain-and-replace races the correlated casualty rush for the same
// scarce pool. Both controllers share the triage without tripping over each
// other.
func TestDomainFailDuringGrayDrain(t *testing.T) {
	w := domainWorld(t, 12, 1, 3, 3, true, true, 25)
	target := w.dep.Groups()[0]
	for _, g := range w.dep.Groups()[1:] {
		if len(g.Members) > len(target.Members) {
			target = g
		}
	}
	cfg := domainStormConfig()
	cfg.Schedule = []DomainOutage{{At: 2 * sim.Hour, Duration: 2 * time.Hour, Domain: 0}}
	cfg.Slowdowns = []Slowdown{{
		At: sim.Hour, Duration: 4 * time.Hour,
		Group: target.Plan.ID, Instance: 0,
		Profile: ProfileStuck, Factor: 0.25,
	}}
	cfg.DrainSlack = 72 * time.Hour
	res, err := RunDomainFail(w.eng, w.dep, w.cat, w.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("outage during gray episode: %v (%+v)", err, res)
	}
	if res.Casualties == 0 {
		t.Fatal("domain outage killed no nodes")
	}
}

// TestDomainRespread forces a collapse: a two-domain pool, a spread group,
// and a long outage of one domain. Mid-outage replacements can only come
// from the surviving domain, so the group collapses onto it; after the
// domain returns, the heartbeat re-spread must live-migrate a replica back
// and end the run spanning both domains again.
func TestDomainRespread(t *testing.T) {
	w := domainWorld(t, 6, 1, 2, 2, true, true, 60)
	cfg := domainStormConfig()
	cfg.Schedule = []DomainOutage{{At: 2 * sim.Hour, Duration: 4 * time.Hour, Domain: 1}}
	cfg.DrainSlack = 96 * time.Hour
	res, err := RunDomainFail(w.eng, w.dep, w.cat, w.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("respread run: %v (%+v)", err, res)
	}
	if res.Respreads == 0 {
		t.Fatalf("no re-spread cutover happened (collapsed groups at end: %d)", res.CollapsedGroups)
	}
	if res.CollapsedGroups != 0 {
		t.Errorf("%d groups still collapsed onto one domain after re-spread", res.CollapsedGroups)
	}
}

// TestDomainOutageValidation rejects malformed schedules, single-domain
// pools, and sharded deployments before any injection runs.
func TestDomainOutageValidation(t *testing.T) {
	if err := ValidateOutages([]DomainOutage{
		{At: sim.Hour, Duration: time.Hour, Domain: 5},
	}, 3, 0, sim.Day); err == nil {
		t.Error("out-of-range domain accepted")
	}
	if err := ValidateOutages([]DomainOutage{
		{At: sim.Hour, Duration: 0, Domain: 0},
	}, 3, 0, sim.Day); err == nil {
		t.Error("zero duration accepted")
	}
	if err := ValidateOutages([]DomainOutage{
		{At: 2 * sim.Day, Duration: time.Hour, Domain: 0},
	}, 3, 0, sim.Day); err == nil {
		t.Error("outage outside the window accepted")
	}
	if err := ValidateOutages([]DomainOutage{
		{At: sim.Hour, Duration: 2 * time.Hour, Domain: 0},
		{At: 2 * sim.Hour, Duration: time.Hour, Domain: 0},
	}, 3, 0, sim.Day); err == nil {
		t.Error("same-domain overlap accepted")
	}
	if err := ValidateOutages([]DomainOutage{
		{At: sim.Hour, Duration: 2 * time.Hour, Domain: 0},
		{At: 2 * sim.Hour, Duration: time.Hour, Domain: 1},
	}, 3, 0, sim.Day); err != nil {
		t.Errorf("cross-domain overlap rejected: %v", err)
	}

	// Single-domain pools cannot host a correlated-failure storm.
	single := newWorld(t, 6, 1, 2, false, 2)
	cfg := DefaultDomainFailConfig()
	cfg.From, cfg.To = 0, sim.Hour
	if _, err := RunDomainFail(single.eng, single.dep, single.cat, single.logs, cfg); err == nil {
		t.Error("single-domain pool accepted")
	}

	// Sharded deployments are rejected (cross-domain injection).
	sharded := newWorld(t, 6, 1, 2, true, 2)
	if _, err := RunDomainFail(sharded.eng, sharded.dep, sharded.cat, sharded.logs, cfg); err == nil {
		t.Error("sharded deployment accepted")
	}
}
