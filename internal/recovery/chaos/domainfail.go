package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// DomainOutage is one scheduled correlated failure: every active node in the
// failure domain dies at At, and the domain's capacity stays unacquirable
// until At+Duration.
type DomainOutage struct {
	// At is when the domain goes down.
	At sim.Time
	// Duration is how long it stays down.
	Duration time.Duration
	// Domain is the pool failure-domain index.
	Domain int
}

// DomainFailConfig parameterizes a seeded correlated-failure storm: a
// schedule of whole-domain outages against the deployment while every tenant
// replays its logged traffic.
type DomainFailConfig struct {
	// Seed fixes the schedule's randomness (domain choice).
	Seed int64
	// From and To bound the run window.
	From, To sim.Time
	// Outages is how many domain outages to schedule (default 2).
	Outages int
	// Duration is each outage's length (default 3 h, clamped so same-domain
	// outages can never overlap).
	Duration time.Duration
	// Rolling switches the schedule from evenly spaced independent outages to
	// a rolling storm: consecutive domains go down back-to-back with a 25%
	// overlap, so recovery of one domain races the loss of the next.
	Rolling bool
	// Schedule, when non-nil, is an explicit outage schedule and overrides
	// the generated one. It is validated either way.
	Schedule []DomainOutage
	// Slowdowns, when non-empty, overlays a fail-slow schedule on top of the
	// outages — the outage-during-gray-drain composition.
	Slowdowns []Slowdown
	// SLASlack scales each replayed query's logged duration into its SLO
	// target (default 2.5, as in the other storms).
	SLASlack float64
	// SampleEvery is the RT-TTP sampling period (default 10 min).
	SampleEvery time.Duration
	// DrainSlack extends the post-window settle time (default one day) so
	// queued triage claims drain and Table 5.1 reloads finish before the pool
	// is tallied.
	DrainSlack time.Duration
}

// DefaultDomainFailConfig returns a two-outage storm.
func DefaultDomainFailConfig() DomainFailConfig {
	return DomainFailConfig{
		Seed:        1,
		Outages:     2,
		Duration:    3 * time.Hour,
		SLASlack:    2.5,
		SampleEvery: 10 * time.Minute,
		DrainSlack:  24 * time.Hour,
	}
}

func (c DomainFailConfig) validate() error {
	if c.To <= c.From {
		return fmt.Errorf("domainfail: window [%v,%v)", c.From, c.To)
	}
	if c.Schedule == nil && (c.Outages < 1 || c.Duration <= 0) {
		return fmt.Errorf("domainfail: Outages=%d Duration=%v", c.Outages, c.Duration)
	}
	return nil
}

// ValidateOutages checks a schedule against the pool shape and window:
// domains in range, positive durations, and no same-domain overlap (the pool
// rejects failing a domain that is already down).
func ValidateOutages(sched []DomainOutage, domains int, from, to sim.Time) error {
	byDomain := map[int][]DomainOutage{}
	for i, o := range sched {
		if o.Domain < 0 || o.Domain >= domains {
			return fmt.Errorf("domainfail: outage %d targets domain %d of %d", i, o.Domain, domains)
		}
		if o.Duration <= 0 {
			return fmt.Errorf("domainfail: outage %d has duration %v", i, o.Duration)
		}
		if o.At < from || o.At >= to {
			return fmt.Errorf("domainfail: outage %d at %v outside [%v,%v)", i, o.At, from, to)
		}
		byDomain[o.Domain] = append(byDomain[o.Domain], o)
	}
	for d, os := range byDomain {
		sort.Slice(os, func(i, j int) bool { return os[i].At < os[j].At })
		for i := 1; i < len(os); i++ {
			if os[i].At < os[i-1].At.Add(os[i-1].Duration) {
				return fmt.Errorf("domainfail: domain %d outages overlap at %v", d, os[i].At)
			}
		}
	}
	return nil
}

// BuildOutages derives the outage schedule. Deterministic in (domains, cfg).
// Plain storms space Outages evenly through the window, each hitting a seeded
// domain; rolling storms march through consecutive domains back-to-back with
// a 25% overlap so restoration of one races the loss of the next.
func BuildOutages(domains int, cfg DomainFailConfig) []DomainOutage {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dur := sim.Duration(cfg.Duration)
	out := make([]DomainOutage, 0, cfg.Outages)
	if cfg.Rolling {
		step := dur * 3 / 4
		start := cfg.From + (cfg.To-cfg.From)/4
		d0 := rng.Intn(domains)
		for i := 0; i < cfg.Outages; i++ {
			at := start + sim.Time(i)*step
			if at >= cfg.To {
				break
			}
			out = append(out, DomainOutage{At: at, Duration: time.Duration(dur), Domain: (d0 + i) % domains})
		}
		return out
	}
	spacing := (cfg.To - cfg.From) / sim.Time(cfg.Outages+1)
	if dur >= spacing {
		dur = spacing * 3 / 4
	}
	for i := 0; i < cfg.Outages; i++ {
		out = append(out, DomainOutage{
			At:       cfg.From + sim.Time(i+1)*spacing - dur/2,
			Duration: time.Duration(dur),
			Domain:   rng.Intn(domains),
		})
	}
	return out
}

// applyOutages schedules the correlated-failure injections. At each outage
// the pool fails the whole domain; every casualty is mirrored onto its
// hosting instance (capped at nodes-1 — §4.4's "stays online" floor), and any
// instance left with at least half its nodes dead is quarantined out of
// routing until repaired — routing is not speed-aware, so without the gate a
// majority-degraded instance keeps drawing its full query share at crawl
// speed for the whole reload. The router re-admits a quarantined instance
// implicitly when it is the last one ready, so no query is ever dropped.
// Affected groups' recovery controllers are notified; restoration is
// scheduled at At+Duration.
func applyOutages(eng *sim.Engine, dep *master.Deployment, sched []DomainOutage, res *DomainFailResult) {
	pool := dep.Pool()
	hub := dep.Telemetry()
	for _, o := range sched {
		o := o
		eng.Schedule(o.At, func(sim.Time) {
			cas, err := pool.FailDomain(o.Domain)
			if err != nil {
				res.InjectErrs = append(res.InjectErrs, err.Error())
				return
			}
			res.Casualties += len(cas)
			// Per-owner casualty counts, first-seen (ascending node ID) order
			// so the injection is deterministic.
			counts := map[string]int{}
			var owners []string
			for _, c := range cas {
				if counts[c.Owner] == 0 {
					owners = append(owners, c.Owner)
				}
				counts[c.Owner]++
			}
			var notify []*master.DeployedGroup
			seen := map[*master.DeployedGroup]bool{}
			for _, owner := range owners {
				g, inst, ok := dep.Plane().InstanceByID(owner)
				if !ok {
					// Respread-staged nodes (owner "X/respread"): the staging
					// abort path reclaims them; nothing serves on them yet.
					continue
				}
				for i := 0; i < counts[owner]; i++ {
					if err := inst.FailNode(); err != nil {
						break // degradation cap; the pool record drives the rest
					}
				}
				if counts[owner] >= inst.Nodes() || 2*inst.FailedNodes() >= inst.Nodes() {
					q0 := g.Router.Quarantined()
					g.Router.SetQuarantine(owner, true)
					res.Quarantines += g.Router.Quarantined() - q0
				}
				if !seen[g] {
					seen[g] = true
					notify = append(notify, g)
				}
			}
			if hub != nil {
				hub.Events.Publish(telemetry.Event{
					Type:  telemetry.EventDomainFailed,
					Value: float64(len(cas)),
					Detail: fmt.Sprintf("domain %d down for %v: %d active nodes failed across %d owners",
						o.Domain, o.Duration, len(cas), len(owners)),
				})
			}
			for _, g := range notify {
				if g.Recovery != nil {
					g.Recovery.Notify()
				}
			}
		})
		eng.Schedule(o.At.Add(o.Duration), func(sim.Time) {
			if err := pool.RestoreDomain(o.Domain); err != nil {
				res.InjectErrs = append(res.InjectErrs, err.Error())
				return
			}
			if hub != nil {
				hub.Events.Publish(telemetry.Event{
					Type:   telemetry.EventDomainRestored,
					Detail: fmt.Sprintf("domain %d restored; hibernated capacity acquirable again", o.Domain),
				})
			}
		})
	}
}

// DomainFailResult condenses a correlated-failure storm run.
type DomainFailResult struct {
	// Schedule is the injected outage schedule.
	Schedule []DomainOutage
	// TriageArmed records whether the deployment ran the scarcity allocator.
	TriageArmed bool
	// Casualties counts pool nodes killed by outages; Quarantines the
	// majority-degraded instances pulled from routing.
	Casualties, Quarantines int
	// InjectErrs records outages or restorations the pool rejected.
	InjectErrs []string
	// Submitted counts scheduled logged submissions; Errors routing failures
	// (the zero-dropped-queries bar).
	Submitted, Errors int
	// Attainment is the per-query SLA attainment across all tenants; worst
	// member in MinAttainment.
	Attainment    float64
	MinAttainment float64
	// MinRTTTP is the lowest sampled RT-TTP across all groups.
	MinRTTTP float64
	// Lifecycles counts recovery lifecycles begun; Recovered those completed;
	// Triaged those that waited in the scarcity queue.
	Lifecycles, Recovered, Triaged int
	// TriageEnqueued and TriageGranted are the allocator's cumulative stats;
	// QueuedClaims the claims still outstanding after the drain.
	TriageEnqueued, TriageGranted, QueuedClaims int
	// Respreads counts post-restoration re-spread cutovers; CollapsedGroups
	// the multi-instance groups still confined to one domain at the end.
	Respreads, CollapsedGroups int
	// InFlight counts recoveries still pending after the drain;
	// ResidualDegraded instances still missing nodes; QuarantinedEnd
	// instances still quarantined; DownDomains domains still down.
	InFlight, ResidualDegraded, QuarantinedEnd, DownDomains int
	// ExpectedActive is the node count the deployment's instances own;
	// Active/Failed/Repairing are the pool's end-state tallies.
	ExpectedActive, ActiveNodes, FailedNodes, RepairingNodes int
}

// Verify checks the structural bar shared by every arm: all injections
// landed, no query was dropped, every domain came back, every recovery and
// triage claim drained, no instance is left degraded or quarantined, and the
// pool is leak-free.
func (r *DomainFailResult) Verify() error {
	if len(r.InjectErrs) > 0 {
		return fmt.Errorf("domainfail: injection errors: %v", r.InjectErrs)
	}
	if r.Errors != 0 {
		return fmt.Errorf("domainfail: %d of %d queries dropped", r.Errors, r.Submitted)
	}
	if r.DownDomains != 0 {
		return fmt.Errorf("domainfail: %d domains still down after the drain", r.DownDomains)
	}
	if r.InFlight != 0 {
		return fmt.Errorf("domainfail: %d recoveries still in flight", r.InFlight)
	}
	if r.QueuedClaims != 0 {
		return fmt.Errorf("domainfail: %d triage claims still queued", r.QueuedClaims)
	}
	if r.ResidualDegraded != 0 {
		return fmt.Errorf("domainfail: %d instances still degraded", r.ResidualDegraded)
	}
	if r.QuarantinedEnd != 0 {
		return fmt.Errorf("domainfail: %d instances still quarantined", r.QuarantinedEnd)
	}
	if r.ActiveNodes != r.ExpectedActive || r.FailedNodes != 0 || r.RepairingNodes != 0 {
		return fmt.Errorf("domainfail: pool leak — active %d (want %d), failed %d, repairing %d",
			r.ActiveNodes, r.ExpectedActive, r.FailedNodes, r.RepairingNodes)
	}
	return nil
}

// RunDomainFail drives a seeded correlated-failure storm against every group
// of a shared-domain deployment on a multi-domain pool: whole failure domains
// go down and come back per the schedule while every tenant replays its
// logged traffic. Spread placement, the scarcity triage, quarantine
// re-routing, and post-restoration re-spread respond when armed; bare
// deployments just eat the outages. Deterministic: same seed and deployment
// ⇒ byte-identical telemetry.
func RunDomainFail(eng *sim.Engine, dep *master.Deployment, cat *queries.Catalog,
	logs []*workload.TenantLog, cfg DomainFailConfig) (*DomainFailResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if dep.Sharded() {
		return nil, fmt.Errorf("domainfail: requires a shared-domain deployment")
	}
	if eng == nil {
		return nil, fmt.Errorf("domainfail: nil engine")
	}
	pool := dep.Pool()
	if pool.Domains() < 2 {
		return nil, fmt.Errorf("domainfail: pool has %d failure domains, need ≥2", pool.Domains())
	}
	if cfg.SLASlack <= 0 {
		cfg.SLASlack = 2.5
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 10 * time.Minute
	}
	if cfg.DrainSlack <= 0 {
		cfg.DrainSlack = 24 * time.Hour
	}
	groups := dep.Groups()
	if len(groups) == 0 {
		return nil, fmt.Errorf("domainfail: empty deployment")
	}
	sched := cfg.Schedule
	if sched == nil {
		sched = BuildOutages(pool.Domains(), cfg)
	}
	if err := ValidateOutages(sched, pool.Domains(), cfg.From, cfg.To); err != nil {
		return nil, err
	}
	res := &DomainFailResult{
		Schedule:    sched,
		TriageArmed: dep.Triage() != nil,
		MinRTTTP:    1,
	}
	if len(cfg.Slowdowns) > 0 {
		if err := ValidateSlowdowns(cfg.Slowdowns, cfg.From, cfg.To); err != nil {
			return nil, err
		}
		if err := applySlowdowns(eng, dep, cfg.Slowdowns); err != nil {
			return nil, err
		}
	}
	applyOutages(eng, dep, sched, res)

	// Schedule every tenant's logged traffic through its group's router.
	logByID := make(map[string]*workload.TenantLog, len(logs))
	for _, tl := range logs {
		logByID[tl.Tenant.ID] = tl
	}
	for _, g := range groups {
		g := g
		for _, tn := range g.Members {
			tl := logByID[tn.ID]
			if tl == nil {
				continue
			}
			for _, ev := range tl.Materialize(cfg.From, cfg.To) {
				ev := ev
				class, ok := cat.ByID(ev.ClassID)
				if !ok {
					return nil, fmt.Errorf("domainfail: unknown class %s", ev.ClassID)
				}
				sla := sim.Time(float64(ev.SLATarget) * cfg.SLASlack)
				res.Submitted++
				eng.Schedule(ev.At, func(sim.Time) {
					if _, err := g.Router.SubmitWithTarget(ev.Tenant, class, sla); err != nil {
						res.Errors++
					}
				})
			}
		}
	}

	// Sample the worst RT-TTP across all groups through the window.
	var sample func(sim.Time)
	sample = func(sim.Time) {
		for _, g := range groups {
			if rt := g.Monitor.RTTTP(); rt < res.MinRTTTP {
				res.MinRTTTP = rt
			}
		}
		if next := eng.Now().Add(cfg.SampleEvery); next < cfg.To {
			eng.Schedule(next, sample)
		}
	}
	eng.Schedule(cfg.From, sample)

	eng.Run(cfg.To)
	eng.Run(cfg.To.Add(cfg.DrainSlack))

	// Condense: recovery/triage/respread tallies, spread end-state, SLA
	// attainment, and the pool leak check.
	for _, g := range groups {
		for _, inst := range g.Instances {
			res.ExpectedActive += inst.Nodes()
			if inst.FailedNodes() > 0 {
				res.ResidualDegraded++
			}
		}
		res.QuarantinedEnd += g.Router.Quarantined()
		if g.Recovery != nil {
			res.InFlight += g.Recovery.InProgress()
			res.Respreads += g.Recovery.Respreads()
			for _, ev := range g.Recovery.Events() {
				res.Lifecycles++
				if ev.Recovered() {
					res.Recovered++
				}
				if ev.Triaged {
					res.Triaged++
				}
			}
		}
		if len(g.Instances) >= 2 {
			doms := map[int]bool{}
			for _, inst := range g.Instances {
				for _, d := range pool.OwnerDomains(inst.ID()) {
					doms[d] = true
				}
			}
			if len(doms) < 2 {
				res.CollapsedGroups++
			}
		}
	}
	if tri := dep.Triage(); tri != nil {
		res.TriageEnqueued, res.TriageGranted = tri.Stats()
		res.QueuedClaims = len(tri.Queued())
	}
	res.DownDomains = len(pool.DownDomains())

	var met, missed int64
	res.MinAttainment = 1
	for _, tn := range dep.Telemetry().SLA.Report() {
		met += tn.Met
		missed += tn.Missed
		if tn.Attainment < res.MinAttainment {
			res.MinAttainment = tn.Attainment
		}
	}
	if met+missed > 0 {
		res.Attainment = float64(met) / float64(met+missed)
	} else {
		res.Attainment = 1
	}
	res.ActiveNodes = pool.CountState(cluster.Active)
	res.FailedNodes = pool.CountState(cluster.Failed)
	res.RepairingNodes = pool.CountState(cluster.Repairing)
	return res, nil
}
