package chaos

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/queries"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/workload"
)

type world struct {
	eng  *sim.Engine
	cat  *queries.Catalog
	dep  *master.Deployment
	logs []*workload.TenantLog
	plan *advisor.Plan
}

// newWorld builds a consolidated deployment and its logs. poolFactor sizes
// the node pool as a multiple of the plan's footprint: 1 leaves no spare
// capacity for replacements.
func newWorld(t *testing.T, tenants, days, r int, sharded bool, poolFactor int) *world {
	t.Helper()
	cat := queries.Default()
	lib, err := workload.BuildLibrary(cat, []int{2}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pop, err := tenant.Population(rng, tenants, 0.8, []int{2}, tenant.ZoneOffsets)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultComposeConfig(3)
	cfg.Days = days
	cfg.Holidays = 0
	logs, err := workload.Compose(lib, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := advisor.DefaultConfig()
	acfg.R = r
	adv, err := advisor.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adv.Plan(logs, cfg.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	pool := cluster.NewPool(poolFactor * plan.NodesUsed())
	m := master.New(eng, pool, master.Options{Immediate: true, Sharded: sharded})
	byID := map[string]*tenant.Tenant{}
	for _, tn := range pop {
		byID[tn.ID] = tn
	}
	dep, err := m.Deploy(plan, byID)
	if err != nil {
		t.Fatal(err)
	}
	return &world{eng: eng, cat: cat, dep: dep, logs: logs, plan: plan}
}

func countEvents(h *telemetry.Hub, typ telemetry.EventType) int {
	n := 0
	for _, ev := range h.Events.Recent(0) {
		if ev.Type == typ {
			n++
		}
	}
	return n
}

// TestChaosEndToEnd is the acceptance run: a sharded R=3 deployment under a
// randomized schedule of crashes, repeat crashes, and bursts. No scripted
// repair exists anywhere — detection is the controllers' heartbeat, repair
// the §4.4 swap + Table 5.1 reload — yet SLA attainment holds above the
// plan's P and the pool ends leak-free.
func TestChaosEndToEnd(t *testing.T) {
	w := newWorld(t, 10, 2, 3, true, 3)
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.From, cfg.To = 0, sim.Day
	cfg.MeanBetween = 90 * time.Minute
	cfg.RepeatProb = 0.3
	cfg.BurstProb = 0.2
	cfg.MaxFailures = 10
	res, err := Run(nil, w.dep, w.cat, w.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied < 3 {
		t.Fatalf("only %d failures applied (schedule %d) — not enough chaos", res.Applied, res.Injected)
	}
	if err := res.Verify(w.plan.Config.P); err != nil {
		t.Error(err)
	}
	// Every applied failure ran one full autonomous lifecycle.
	if len(res.Report.RecoveryEvents) != res.Applied {
		t.Errorf("%d recovery lifecycles for %d applied failures", len(res.Report.RecoveryEvents), res.Applied)
	}
	for _, rec := range res.Report.RecoveryEvents {
		if !rec.Recovered() || rec.Attempts < 1 || rec.Detected <= 0 {
			t.Errorf("incomplete lifecycle %+v", rec)
		}
	}
	h := w.dep.Telemetry()
	if got := countEvents(h, telemetry.EventRecoveryStarted); got != res.Applied {
		t.Errorf("%d recovery_started events, want %d", got, res.Applied)
	}
	if got := countEvents(h, telemetry.EventRecoveryCompleted); got != res.Recovered {
		t.Errorf("%d recovery_completed events, want %d", got, res.Recovered)
	}
}

// TestChaosPoolExhaustion starves the pool (no spare nodes): recovery can
// never complete, but it must degrade loudly — recovery_failed telemetry,
// backoff cycles, the run and drain completing — rather than deadlock.
func TestChaosPoolExhaustion(t *testing.T) {
	w := newWorld(t, 4, 1, 2, false, 1)
	rcfg := recovery.DefaultConfig()
	rcfg.MaxAttempts = 2
	rcfg.CoolDown = 30 * time.Minute
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.From, cfg.To = 0, sim.Day
	cfg.RepeatProb, cfg.BurstProb = 0, 0
	cfg.MaxFailures = 2
	cfg.Recovery = &rcfg
	res, err := Run(w.eng, w.dep, w.cat, w.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied < 1 {
		t.Fatal("no failure applied")
	}
	if res.Recovered != 0 {
		t.Errorf("%d recoveries completed with an empty pool", res.Recovered)
	}
	if res.InFlight != res.Applied {
		t.Errorf("%d recoveries in flight, want %d still retrying", res.InFlight, res.Applied)
	}
	if res.FailedNodes < 1 {
		t.Error("no failed node left in the pool")
	}
	if countEvents(w.dep.Telemetry(), telemetry.EventRecoveryFailed) == 0 {
		t.Error("pool exhaustion produced no recovery_failed events")
	}
	if err := res.Verify(1); err == nil {
		t.Error("Verify passed an unrecovered run")
	}
}

// TestChaosScheduleDeterministic: the schedule is a pure function of the
// deployment shape and config.
func TestChaosScheduleDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.From, cfg.To = 0, sim.Day
	a := BuildSchedule(newWorld(t, 6, 1, 2, false, 2).dep, cfg)
	b := BuildSchedule(newWorld(t, 6, 1, 2, false, 2).dep, cfg)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("schedules diverged:\n%+v\n%+v", a, b)
	}
}

func TestChaosValidation(t *testing.T) {
	w := newWorld(t, 4, 1, 2, false, 2)
	bad := []Config{
		{Seed: 1, From: sim.Day, To: 0, MeanBetween: time.Hour, MaxFailures: 1},
		{Seed: 1, From: 0, To: sim.Day, MeanBetween: 0, MaxFailures: 1},
		{Seed: 1, From: 0, To: sim.Day, MeanBetween: time.Hour, MaxFailures: 0},
		{Seed: 1, From: 0, To: sim.Day, MeanBetween: time.Hour, MaxFailures: 1, RepeatProb: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Run(w.eng, w.dep, w.cat, w.logs, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestChaosTelemetryDeterminism is the determinism guard for chaos on a
// shared clock domain: the same seed against a freshly built world must
// reproduce the telemetry event and trace streams byte for byte.
func TestChaosTelemetryDeterminism(t *testing.T) {
	dump := func() (events, traces []byte) {
		t.Helper()
		w := newWorld(t, 4, 1, 2, false, 3)
		cfg := DefaultConfig()
		cfg.Seed = 99
		cfg.From, cfg.To = 0, sim.Day
		cfg.MaxFailures = 4
		if _, err := Run(w.eng, w.dep, w.cat, w.logs, cfg); err != nil {
			t.Fatal(err)
		}
		var ev, tr bytes.Buffer
		if err := w.dep.Telemetry().Events.Dump(&ev); err != nil {
			t.Fatal(err)
		}
		if err := w.dep.Telemetry().Tracer.Dump(&tr); err != nil {
			t.Fatal(err)
		}
		return ev.Bytes(), tr.Bytes()
	}
	ev1, tr1 := dump()
	ev2, tr2 := dump()
	if !bytes.Equal(ev1, ev2) {
		t.Error("event dumps differ across identically seeded chaos runs")
	}
	if !bytes.Equal(tr1, tr2) {
		t.Error("trace dumps differ across identically seeded chaos runs")
	}
	if len(ev1) == 0 || len(tr1) == 0 {
		t.Error("empty telemetry dumps")
	}
}

// TestChaosSmoke is the bounded -race smoke target for make check: a small
// sharded run that exercises the parallel injection + recovery path.
func TestChaosSmoke(t *testing.T) {
	w := newWorld(t, 4, 1, 2, true, 3)
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.From, cfg.To = 0, 12*sim.Hour
	cfg.MeanBetween = time.Hour
	cfg.MaxFailures = 3
	res, err := Run(nil, w.dep, w.cat, w.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied < 1 {
		t.Fatal("no failure applied")
	}
	if res.Recovered != res.Applied || res.InFlight != 0 {
		t.Errorf("recovered %d of %d, %d in flight", res.Recovered, res.Applied, res.InFlight)
	}
	if res.ActiveNodes != res.ExpectedActive || res.FailedNodes != 0 || res.RepairingNodes != 0 {
		t.Errorf("pool leak: %+v", res)
	}
}
