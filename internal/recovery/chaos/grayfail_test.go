package chaos

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/queries"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// testGrayConfig tunes the detector for the test worlds' sparse traffic: a
// short sample window so the profile mean tracks an onset within a few
// completions, and drain patience longer than any injected episode so
// transient gray resolves by hedging while genuinely stuck instances (the
// soak test shortens DrainAfter) still reach the drain rung.
func testGrayConfig() recovery.GrayConfig {
	cfg := recovery.DefaultGrayConfig()
	cfg.Window = 16
	cfg.MinSamples = 4
	cfg.ConfirmBeats = 2
	cfg.DrainAfter = 4 * time.Hour
	return cfg
}

// grayWorld builds a shared-domain deployment for fail-slow storms. A non-nil
// gray config arms the per-group detector (which auto-arms the crash
// controller its drain rung executes through); the pool is doubled so
// drain-and-replace has spares.
func grayWorld(t *testing.T, tenants, days int, gray *recovery.GrayConfig) *world {
	t.Helper()
	cat := queries.Default()
	lib, err := workload.BuildLibrary(cat, []int{2}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pop, err := tenant.Population(rng, tenants, 0.8, []int{2}, tenant.ZoneOffsets)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := workload.DefaultComposeConfig(3)
	ccfg.Days = days
	ccfg.Holidays = 0
	logs, err := workload.Compose(lib, pop, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := advisor.DefaultConfig()
	acfg.R = 2
	adv, err := advisor.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adv.Plan(logs, ccfg.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	opts := master.Options{Immediate: true, MonitorWindow: time.Hour, Gray: gray}
	eng := sim.NewEngine()
	pool := cluster.NewPool(2 * plan.NodesUsed())
	m := master.New(eng, pool, opts)
	byID := map[string]*tenant.Tenant{}
	for _, tn := range pop {
		byID[tn.ID] = tn
	}
	dep, err := m.Deploy(plan, byID)
	if err != nil {
		t.Fatal(err)
	}
	return &world{eng: eng, cat: cat, dep: dep, logs: logs, plan: plan}
}

func grayStormConfig() GrayFailConfig {
	cfg := DefaultGrayFailConfig()
	cfg.Seed = 11
	cfg.From, cfg.To = 0, 12*sim.Hour
	// Drain-and-replace pays the Table 5.1 reload of the group's data share.
	cfg.DrainSlack = 48 * time.Hour
	return cfg
}

// slaTotals sums met/missed over the deployment's per-tenant SLA report.
func slaTotals(w *world) (met, missed int64) {
	for _, tn := range w.dep.Telemetry().SLA.Report() {
		met += tn.Met
		missed += tn.Missed
	}
	return met, missed
}

// TestGrayFailLadder is the acceptance run: the identical seeded fail-slow
// storm against three fresh deployments — no faults at all, bare, and with
// the detector armed. The bare run has no ladder; the protected run must
// confirm episodes, hedge queries, finish every drain, leave the pool
// leak-free, and restore attainment to within a point of the no-fault
// baseline. The SLA accounting must balance exactly — hedged duplicates
// never double-count.
func TestGrayFailLadder(t *testing.T) {
	cfg := grayStormConfig()

	base := grayWorld(t, 12, 2, nil)
	baseRes, err := RunGrayFail(base.eng, base.dep, base.cat, base.logs, GrayFailConfig{
		Seed: cfg.Seed, From: cfg.From, To: cfg.To, DrainSlack: cfg.DrainSlack,
		Slowdowns: []Slowdown{}, // explicit empty schedule: the no-fault arm
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := baseRes.Verify(); err != nil {
		t.Fatalf("no-fault baseline: %v", err)
	}

	bare := grayWorld(t, 12, 2, nil)
	bareRes, err := RunGrayFail(bare.eng, bare.dep, bare.cat, bare.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bareRes.GrayArmed {
		t.Fatal("bare run unexpectedly has the detector armed")
	}
	if bareRes.Suspected != 0 || bareRes.Hedged != 0 {
		t.Fatalf("bare run shows detector activity: %d suspected, %d hedged",
			bareRes.Suspected, bareRes.Hedged)
	}
	if err := bareRes.Verify(); err != nil {
		t.Fatalf("bare run: %v", err)
	}

	gcfg := testGrayConfig()
	prot := grayWorld(t, 12, 2, &gcfg)
	protRes, err := RunGrayFail(prot.eng, prot.dep, prot.cat, prot.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !protRes.GrayArmed {
		t.Fatal("protected run has no detector")
	}
	if err := protRes.Verify(); err != nil {
		t.Fatalf("protected run: %v (events %+v)", err, protRes.GrayEvents)
	}
	if protRes.Hedged == 0 {
		t.Fatal("protected run never hedged a query")
	}
	if protRes.Attainment < baseRes.Attainment-0.01 {
		t.Errorf("protected attainment %.4f more than a point below no-fault %.4f (bare %.4f)",
			protRes.Attainment, baseRes.Attainment, bareRes.Attainment)
	}
	// Hedge accounting: exactly one SLA-counted record per successful submit,
	// end to end through the monitor into the per-tenant report.
	met, missed := slaTotals(prot)
	if got, want := int(met+missed), protRes.Submitted-protRes.Errors; got != want {
		t.Errorf("SLA report counts %d queries, want %d (submitted %d, errors %d) — hedges double-counted?",
			got, want, protRes.Submitted, protRes.Errors)
	}
	t.Logf("attainment no-fault %.4f / bare %.4f / protected %.4f; episodes %d/%d/%d; hedged %d (%d peer wins)",
		baseRes.Attainment, bareRes.Attainment, protRes.Attainment,
		protRes.Suspected, protRes.Confirmed, protRes.Drained, protRes.Hedged, protRes.HedgeWins)
}

// TestGrayFailTelemetryDeterminism: two fresh same-seed protected storms emit
// byte-identical telemetry — the whole ladder (hedging, cancellation, drain,
// reload) preserves the shared-domain determinism contract.
func TestGrayFailTelemetryDeterminism(t *testing.T) {
	dump := func() (string, string) {
		gcfg := testGrayConfig()
		w := grayWorld(t, 12, 2, &gcfg)
		if _, err := RunGrayFail(w.eng, w.dep, w.cat, w.logs, grayStormConfig()); err != nil {
			t.Fatal(err)
		}
		hub := w.dep.Telemetry()
		var ev, tr bytes.Buffer
		if err := hub.Events.Dump(&ev); err != nil {
			t.Fatal(err)
		}
		if err := hub.Tracer.Dump(&tr); err != nil {
			t.Fatal(err)
		}
		return ev.String(), tr.String()
	}
	ev1, tr1 := dump()
	ev2, tr2 := dump()
	if ev1 != ev2 {
		t.Fatal("same-seed gray-fail runs emitted different event dumps")
	}
	if tr1 != tr2 {
		t.Fatal("same-seed gray-fail runs emitted different trace dumps")
	}
	if len(ev1) == 0 {
		t.Fatal("gray-fail run emitted no events")
	}
}

// TestGraySmoke is the bounded CI gate (make gray-smoke): a short seeded
// storm against a protected deployment must be confirmed and contained.
func TestGraySmoke(t *testing.T) {
	cfg := grayStormConfig()
	cfg.To = 6 * sim.Hour
	cfg.Episodes = 2
	cfg.DrainSlack = 36 * time.Hour
	gcfg := testGrayConfig()
	w := grayWorld(t, 12, 1, &gcfg)
	res, err := RunGrayFail(w.eng, w.dep, w.cat, w.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Hedged == 0 {
		t.Fatalf("smoke storm never hedged: %+v", res)
	}
	met, missed := slaTotals(w)
	if got, want := int(met+missed), res.Submitted-res.Errors; got != want {
		t.Fatalf("SLA report counts %d queries, want %d", got, want)
	}
}

// TestGrayDoubleFailureSoak overlaps a fail-slow episode with hard crashes:
// while instance 0 of the target group is stuck-at-slow (and the ladder
// drains it), instance 1 takes a crash, then a second one after the first
// reload lands. The ladder and the crash controller share the pool and the
// group without tripping over each other: every recovery completes, the
// pool ends leak-free, and no instance is left slow or quarantined.
func TestGrayDoubleFailureSoak(t *testing.T) {
	gcfg := testGrayConfig()
	gcfg.DrainAfter = 30 * time.Minute // eager: the stuck episode must reach the drain rung
	w := grayWorld(t, 12, 2, &gcfg)
	groups := w.dep.Groups()
	target := groups[0]
	for _, g := range groups[1:] {
		if len(g.Members) > len(target.Members) {
			target = g
		}
	}
	if len(target.Instances) < 2 {
		t.Fatalf("target group has %d instances, need 2 for a double failure", len(target.Instances))
	}

	crash := func(at sim.Time, inst interface {
		FailNode() error
		ID() string
	}) {
		w.eng.Schedule(at, func(sim.Time) {
			if err := inst.FailNode(); err != nil {
				t.Errorf("FailNode at %v: %v", at, err)
				return
			}
			if _, err := w.dep.Pool().FailAny(inst.ID()); err != nil {
				t.Errorf("FailAny at %v: %v", at, err)
			}
		})
	}
	// Crash instance 1 mid-episode — while the ladder is draining its stuck
	// peer — and again after the first reload has finished (a two-node
	// instance cannot lose its second node mid-recovery).
	crash(90*sim.Minute, target.Instances[1])
	crash(30*sim.Hour, target.Instances[1])

	cfg := grayStormConfig()
	cfg.DrainSlack = 72 * time.Hour
	cfg.Slowdowns = []Slowdown{{
		At: sim.Hour, Duration: 3 * time.Hour,
		Group: target.Plan.ID, Instance: 0,
		Profile: ProfileStuck, Factor: 0.25,
	}}
	res, err := RunGrayFail(w.eng, w.dep, w.cat, w.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("double-failure soak: %v (gray events %+v)", err, res.GrayEvents)
	}
	if res.Drained == 0 {
		t.Errorf("stuck instance never reached the drain rung: %+v", res.GrayEvents)
	}
	if target.Recovery == nil {
		t.Fatal("protected group has no crash controller")
	}
	evs := target.Recovery.Events()
	if len(evs) < 3 {
		t.Fatalf("%d recovery events, want >= 3 (two crash lifecycles + gray drain): %+v", len(evs), evs)
	}
	for _, ev := range evs {
		if !ev.Recovered() {
			t.Errorf("recovery of %s (detected %v) never completed", ev.MPPDB, ev.Detected)
		}
	}
}

// TestSlowdownScheduleValidation: every malformed schedule is rejected with
// a typed *ScheduleError carrying a stable reason, before anything runs.
func TestSlowdownScheduleValidation(t *testing.T) {
	from, to := sim.Time(0), 12*sim.Hour
	ok := Slowdown{At: sim.Hour, Duration: time.Hour, Group: "TG-0000",
		Profile: ProfileStuck, Factor: 0.3}
	cases := []struct {
		name   string
		reason string
		mut    func(*Slowdown)
	}{
		{"zero duration", "zero_duration", func(s *Slowdown) { s.Duration = 0 }},
		{"negative duration", "zero_duration", func(s *Slowdown) { s.Duration = -time.Hour }},
		{"starts before window", "out_of_horizon", func(s *Slowdown) { s.At = -sim.Hour }},
		{"ends after window", "out_of_horizon", func(s *Slowdown) { s.At = to - sim.Minute }},
		{"factor zero", "bad_factor", func(s *Slowdown) { s.Factor = 0 }},
		{"factor at speedup", "bad_factor", func(s *Slowdown) { s.Factor = 1.2 }},
		{"unknown profile", "bad_profile", func(s *Slowdown) { s.Profile = "meltdown" }},
		{"gradual without steps", "bad_steps", func(s *Slowdown) { s.Profile = ProfileGradual; s.Steps = 0 }},
		{"flapping without period", "bad_period", func(s *Slowdown) { s.Profile = ProfileFlapping; s.Period = 0 }},
		{"flapping period too long", "bad_period", func(s *Slowdown) {
			s.Profile = ProfileFlapping
			s.Period = 2 * time.Hour
		}},
	}
	for _, tc := range cases {
		s := ok
		tc.mut(&s)
		err := ValidateSlowdowns([]Slowdown{s}, from, to)
		var se *ScheduleError
		if !errors.As(err, &se) {
			t.Errorf("%s: error %v, want *ScheduleError", tc.name, err)
			continue
		}
		if se.Reason != tc.reason {
			t.Errorf("%s: reason %q, want %q", tc.name, se.Reason, tc.reason)
		}
		if se.Index != 0 {
			t.Errorf("%s: index %d, want 0", tc.name, se.Index)
		}
	}

	// Overlap on the same (group, instance) is rejected; the same window on
	// a different instance is fine.
	second := ok
	second.At = ok.At + 30*sim.Minute
	err := ValidateSlowdowns([]Slowdown{ok, second}, from, to)
	var se *ScheduleError
	if !errors.As(err, &se) || se.Reason != "overlap" {
		t.Errorf("overlapping schedule: %v, want overlap ScheduleError", err)
	}
	second.Instance = 1
	if err := ValidateSlowdowns([]Slowdown{ok, second}, from, to); err != nil {
		t.Errorf("disjoint-instance schedule rejected: %v", err)
	}
	if err := ValidateSlowdowns([]Slowdown{ok}, from, to); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

// TestGrayFailValidation rejects malformed configs, bad targets, and sharded
// deployments before any injection runs.
func TestGrayFailValidation(t *testing.T) {
	ws := newWorld(t, 6, 1, 2, true, 1) // sharded
	cfg := DefaultGrayFailConfig()
	cfg.From, cfg.To = 0, sim.Hour
	if _, err := RunGrayFail(ws.eng, ws.dep, ws.cat, ws.logs, cfg); err == nil {
		t.Fatal("sharded deployment accepted")
	}

	w := grayWorld(t, 6, 1, nil)
	bad := cfg
	bad.To = 0
	if _, err := RunGrayFail(w.eng, w.dep, w.cat, w.logs, bad); err == nil {
		t.Fatal("empty window accepted")
	}
	bad = cfg
	bad.Factor = 1
	if _, err := RunGrayFail(w.eng, w.dep, w.cat, w.logs, bad); err == nil {
		t.Fatal("Factor outside (0.05,0.95) accepted")
	}
	// Unresolvable targets surface as typed schedule errors at apply time.
	var se *ScheduleError
	err := applySlowdowns(w.eng, w.dep, []Slowdown{{
		At: 0, Duration: time.Hour, Group: "TG-NOPE", Profile: ProfileStuck, Factor: 0.3,
	}})
	if !errors.As(err, &se) || se.Reason != "bad_target" {
		t.Errorf("unknown group: %v, want bad_target ScheduleError", err)
	}
	gid := w.dep.Groups()[0].Plan.ID
	err = applySlowdowns(w.eng, w.dep, []Slowdown{{
		At: 0, Duration: time.Hour, Group: gid, Instance: 99, Profile: ProfileStuck, Factor: 0.3,
	}})
	if !errors.As(err, &se) || se.Reason != "bad_target" {
		t.Errorf("out-of-range instance: %v, want bad_target ScheduleError", err)
	}
}
