package chaos

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/master"
	"repro/internal/sim"
)

// SlowProfile names a fail-slow injection shape.
type SlowProfile string

const (
	// ProfileStuck drops the instance to Factor at At and holds it there for
	// the whole Duration — the classic stuck-at-slow gray failure.
	ProfileStuck SlowProfile = "stuck"
	// ProfileGradual deepens the slowdown in Steps even decrements from
	// healthy to Factor across the Duration — a dying disk or a slowly
	// filling queue.
	ProfileGradual SlowProfile = "gradual"
	// ProfileFlapping alternates between Factor and full speed every Period
	// — the intermittent fault that defeats naive threshold detectors.
	ProfileFlapping SlowProfile = "flapping"
)

// Slowdown is one scheduled fail-slow episode against a group instance.
type Slowdown struct {
	// At and Duration bound the episode.
	At       sim.Time
	Duration time.Duration
	// Group and Instance locate the target (instance is the group-local
	// index, like replay.Failure).
	Group    string
	Instance int
	// Profile shapes the episode; Factor is its depth in (0,1) — the
	// fraction of nominal speed the instance drops to.
	Profile SlowProfile
	Factor  float64
	// Steps is the gradual profile's decrement count (≥1).
	Steps int
	// Period is the flapping profile's half-cycle.
	Period time.Duration
}

// ScheduleError reports an invalid slowdown schedule entry — returned typed
// at construction so a bad schedule can never silently misbehave mid-run.
type ScheduleError struct {
	// Index is the offending entry's position in the schedule.
	Index int
	// Reason is a stable, machine-matchable failure class: "zero_duration",
	// "out_of_horizon", "bad_factor", "bad_profile", "bad_steps",
	// "bad_period", or "overlap".
	Reason string
	// Detail elaborates for humans.
	Detail string
}

func (e *ScheduleError) Error() string {
	return fmt.Sprintf("chaos: slowdown[%d]: %s (%s)", e.Index, e.Reason, e.Detail)
}

// ValidateSlowdowns checks a schedule against the run window [from, to):
// every entry must have positive duration, lie fully inside the horizon,
// carry a sane profile shape, and no two entries may overlap on the same
// (group, instance). The first violation is returned as a *ScheduleError.
func ValidateSlowdowns(entries []Slowdown, from, to sim.Time) error {
	for i, e := range entries {
		if e.Duration <= 0 {
			return &ScheduleError{Index: i, Reason: "zero_duration",
				Detail: fmt.Sprintf("duration %v", e.Duration)}
		}
		end := e.At.Add(e.Duration)
		if e.At < from || end > to {
			return &ScheduleError{Index: i, Reason: "out_of_horizon",
				Detail: fmt.Sprintf("[%v,%v) outside [%v,%v)", e.At, end, from, to)}
		}
		if e.Factor <= 0 || e.Factor >= 1 {
			return &ScheduleError{Index: i, Reason: "bad_factor",
				Detail: fmt.Sprintf("factor %v outside (0,1)", e.Factor)}
		}
		switch e.Profile {
		case ProfileStuck:
		case ProfileGradual:
			if e.Steps < 1 {
				return &ScheduleError{Index: i, Reason: "bad_steps",
					Detail: fmt.Sprintf("gradual profile with %d steps", e.Steps)}
			}
		case ProfileFlapping:
			if e.Period <= 0 || e.Period >= e.Duration {
				return &ScheduleError{Index: i, Reason: "bad_period",
					Detail: fmt.Sprintf("period %v against duration %v", e.Period, e.Duration)}
			}
		default:
			return &ScheduleError{Index: i, Reason: "bad_profile",
				Detail: fmt.Sprintf("unknown profile %q", e.Profile)}
		}
	}
	// Overlap check per (group, instance), preserving original indices.
	type span struct {
		idx      int
		from, to sim.Time
	}
	byTarget := make(map[string][]span)
	for i, e := range entries {
		key := fmt.Sprintf("%s/%d", e.Group, e.Instance)
		byTarget[key] = append(byTarget[key], span{i, e.At, e.At.Add(e.Duration)})
	}
	for _, spans := range byTarget {
		sort.Slice(spans, func(a, b int) bool {
			if spans[a].from != spans[b].from {
				return spans[a].from < spans[b].from
			}
			return spans[a].idx < spans[b].idx
		})
		for k := 1; k < len(spans); k++ {
			if spans[k].from < spans[k-1].to {
				i := spans[k].idx
				return &ScheduleError{Index: i, Reason: "overlap",
					Detail: fmt.Sprintf("entry %d overlaps entry %d on %s/%d",
						i, spans[k-1].idx, entries[i].Group, entries[i].Instance)}
			}
		}
	}
	return nil
}

// applySlowdowns schedules every episode's SetSlowdown steps on the engine.
// The schedule must already be validated and resolvable against the
// deployment. Every episode restores full speed at its end, so residual
// slowdown at drain time means the run itself misbehaved.
func applySlowdowns(eng *sim.Engine, dep *master.Deployment, entries []Slowdown) error {
	byID := make(map[string]*master.DeployedGroup)
	for _, g := range dep.Groups() {
		byID[g.Plan.ID] = g
	}
	for i, e := range entries {
		g, ok := byID[e.Group]
		if !ok {
			return &ScheduleError{Index: i, Reason: "bad_target",
				Detail: fmt.Sprintf("unknown group %s", e.Group)}
		}
		if e.Instance < 0 || e.Instance >= len(g.Instances) {
			return &ScheduleError{Index: i, Reason: "bad_target",
				Detail: fmt.Sprintf("instance %d of %d in %s", e.Instance, len(g.Instances), e.Group)}
		}
		inst := g.Instances[e.Instance]
		end := e.At.Add(e.Duration)
		switch e.Profile {
		case ProfileStuck:
			f := e.Factor
			eng.Schedule(e.At, func(sim.Time) { _ = inst.SetSlowdown(f) })
		case ProfileGradual:
			step := e.Duration / time.Duration(e.Steps)
			for k := 0; k < e.Steps; k++ {
				f := 1 - (1-e.Factor)*float64(k+1)/float64(e.Steps)
				eng.Schedule(e.At.Add(time.Duration(k)*step), func(sim.Time) { _ = inst.SetSlowdown(f) })
			}
		case ProfileFlapping:
			f := e.Factor
			for k, t := 0, e.At; t < end; k, t = k+1, t.Add(e.Period) {
				if k%2 == 0 {
					eng.Schedule(t, func(sim.Time) { _ = inst.SetSlowdown(f) })
				} else {
					eng.Schedule(t, func(sim.Time) { _ = inst.SetSlowdown(1) })
				}
			}
		}
		eng.Schedule(end, func(sim.Time) { _ = inst.SetSlowdown(1) })
	}
	return nil
}
