// Package chaos is the failure-injection harness for the §4.4 recovery loop:
// it derives a randomized-but-seeded failure schedule (lone crashes, repeat
// crashes mid-recovery, cross-group bursts) against a live deployment, drives
// a workload replay under it, and condenses the outcome into the two checks
// that matter — the time-based SLA guarantee held (every group's sampled
// RT-TTP stayed ≥ the plan's P), and the node pool came back leak-free
// (every carted-away node re-imaged, every replacement accounted for).
//
// The schedule is a pure function of (deployment shape, Config): with a fixed
// Seed it is identical run to run, so a chaos run on a shared clock domain is
// as replayable as any other experiment.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/queries"
	"repro/internal/recovery"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config parameterizes a chaos run.
type Config struct {
	// Seed fixes the schedule's randomness.
	Seed int64
	// From and To bound the replay window; failures land inside it.
	From, To sim.Time
	// MeanBetween is the mean gap between failure instants (exponentially
	// distributed).
	MeanBetween time.Duration
	// RepeatProb is the chance a crash is followed by a second crash of the
	// same instance RepeatDelay later — typically while the first recovery
	// is still reloading.
	RepeatProb float64
	// RepeatDelay is the lag of the repeat crash.
	RepeatDelay time.Duration
	// BurstProb is the chance a failure instant hits every group at once
	// instead of one.
	BurstProb float64
	// MaxFailures bounds the schedule.
	MaxFailures int
	// Recovery overrides the recovery controllers' config.
	Recovery *recovery.Config
	// SampleEvery is the replay's statistics sampling period.
	SampleEvery time.Duration
	// DrainSlack extends the post-window settle time (default one day);
	// groups with long Table 5.1 reloads need enough to finish recovering
	// before the leak check tallies the pool.
	DrainSlack time.Duration
}

// DefaultConfig returns a moderate failure mix: a crash every ~2 h, a quarter
// of them repeated mid-recovery, one in ten a cross-group burst.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		MeanBetween: 2 * time.Hour,
		RepeatProb:  0.25,
		RepeatDelay: 10 * time.Minute,
		BurstProb:   0.1,
		MaxFailures: 16,
	}
}

func (c Config) validate() error {
	if c.To <= c.From {
		return fmt.Errorf("chaos: window [%v,%v)", c.From, c.To)
	}
	if c.MeanBetween <= 0 || c.MaxFailures < 1 {
		return fmt.Errorf("chaos: MeanBetween=%v MaxFailures=%d", c.MeanBetween, c.MaxFailures)
	}
	if c.RepeatProb > 0 && c.RepeatDelay <= 0 {
		return fmt.Errorf("chaos: RepeatProb without RepeatDelay")
	}
	return nil
}

// BuildSchedule derives the failure schedule for the deployment. It is
// deterministic in (deployment group order, cfg).
func BuildSchedule(dep *master.Deployment, cfg Config) []replay.Failure {
	rng := rand.New(rand.NewSource(cfg.Seed))
	groups := dep.Groups()
	var out []replay.Failure
	t := cfg.From
	for len(out) < cfg.MaxFailures {
		t = t.Add(time.Duration(rng.ExpFloat64() * float64(cfg.MeanBetween)))
		if t >= cfg.To {
			break
		}
		if rng.Float64() < cfg.BurstProb {
			for _, g := range groups {
				if len(out) >= cfg.MaxFailures {
					break
				}
				out = append(out, replay.Failure{At: t, Group: g.Plan.ID, Instance: rng.Intn(len(g.Instances))})
			}
			continue
		}
		g := groups[rng.Intn(len(groups))]
		f := replay.Failure{At: t, Group: g.Plan.ID, Instance: rng.Intn(len(g.Instances))}
		out = append(out, f)
		if len(out) < cfg.MaxFailures && rng.Float64() < cfg.RepeatProb {
			out = append(out, replay.Failure{At: t.Add(cfg.RepeatDelay), Group: f.Group, Instance: f.Instance})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Result condenses a chaos run.
type Result struct {
	// Report is the underlying replay's report.
	Report *replay.Report
	// Schedule is the injected failure schedule.
	Schedule []replay.Failure
	// Attainment is the run's per-query SLA attainment. Under failures it
	// dips — queries keep completing on degraded instances, just slower —
	// while the paper's actual guarantee (TTP over time, below) holds.
	Attainment float64
	// MinRTTTP is the lowest sampled RT-TTP across all groups — the §4.2
	// guarantee metric the plan's P bounds.
	MinRTTTP float64
	// Injected counts scheduled failures; Applied those that actually took a
	// node down (a repeat crash can be rejected when the instance is already
	// at its minimum); Recovered the completed recovery lifecycles.
	Injected, Applied, Recovered int
	// InFlight counts recoveries still pending at the end of the drain.
	InFlight int
	// ExpectedActive is the node count the deployment's instances own;
	// ActiveNodes/FailedNodes/RepairingNodes are the pool's end-state tallies
	// for the leak check.
	ExpectedActive, ActiveNodes, FailedNodes, RepairingNodes int
}

// Verify checks the acceptance bar: the SLA guarantee held (every group's
// sampled RT-TTP stayed at least p throughout — the thesis' time-based
// attainment, which degraded-but-serving instances preserve), every applied
// failure recovered, and the pool is leak-free — active matches the
// deployment, nothing stuck failed or mid-re-image.
func (r *Result) Verify(p float64) error {
	if r.MinRTTTP < p {
		return fmt.Errorf("chaos: RT-TTP dipped to %.4f < %.4f", r.MinRTTTP, p)
	}
	if r.Recovered < r.Applied {
		return fmt.Errorf("chaos: %d of %d applied failures recovered", r.Recovered, r.Applied)
	}
	if r.InFlight != 0 {
		return fmt.Errorf("chaos: %d recoveries still in flight", r.InFlight)
	}
	if r.ActiveNodes != r.ExpectedActive || r.FailedNodes != 0 || r.RepairingNodes != 0 {
		return fmt.Errorf("chaos: pool leak — active %d (want %d), failed %d, repairing %d",
			r.ActiveNodes, r.ExpectedActive, r.FailedNodes, r.RepairingNodes)
	}
	return nil
}

// Run builds the schedule and replays the logs under it. Sharded deployments
// run via replay.RunParallel (eng may be nil); shared ones via replay.Run on
// eng. The post-window drain (DrainSlack, default one day) gives recoveries
// and re-images time to settle before the pool is tallied.
func Run(eng *sim.Engine, dep *master.Deployment, cat *queries.Catalog,
	logs []*workload.TenantLog, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sched := BuildSchedule(dep, cfg)
	opts := replay.Options{
		From:        cfg.From,
		To:          cfg.To,
		SampleEvery: cfg.SampleEvery,
		Failures:    sched,
		Recovery:    cfg.Recovery,
		DrainSlack:  cfg.DrainSlack,
	}
	var rep *replay.Report
	var err error
	if dep.Sharded() {
		rep, err = replay.RunParallel(dep, cat, logs, opts)
	} else {
		rep, err = replay.Run(eng, dep, cat, logs, opts)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{
		Report:     rep,
		Schedule:   sched,
		Attainment: rep.SLAAttainment(),
		MinRTTTP:   1,
		Injected:   len(sched),
	}
	for group := range rep.Samples {
		if m := rep.MinRTTTP(group); m < res.MinRTTTP {
			res.MinRTTTP = m
		}
	}
	for _, fe := range rep.FailureEvents {
		if fe.Err == "" {
			res.Applied++
		}
	}
	for _, re := range rep.RecoveryEvents {
		if re.Recovered() {
			res.Recovered++
		}
	}
	for _, g := range dep.Groups() {
		g.Domain().Do(func(*sim.Engine) {
			for _, inst := range g.Instances {
				res.ExpectedActive += inst.Nodes()
			}
			if g.Recovery != nil {
				res.InFlight += g.Recovery.InProgress()
			}
		})
	}
	pool := dep.Pool()
	res.ActiveNodes = pool.CountState(cluster.Active)
	res.FailedNodes = pool.CountState(cluster.Failed)
	res.RepairingNodes = pool.CountState(cluster.Repairing)
	return res, nil
}
