package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/admission"
	"repro/internal/master"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OverloadConfig parameterizes a noisy-tenant storm: seeded aggressors in
// the deployment's largest group submit open-loop at Factor times their
// contracted rate while every other member replays its logged traffic.
type OverloadConfig struct {
	// Seed fixes the aggressor choice and nothing else — the storm itself
	// is a deterministic function of the aggressor's contract.
	Seed int64
	// From and To bound the run window.
	From, To sim.Time
	// Aggressors is how many members of the target group run hot
	// (default 1). Zero is the no-storm control: every member replays its
	// logged traffic, which measures the group's intrinsic attainment.
	Aggressors int
	// Factor is the over-contract multiple the aggressors submit at
	// (default 5).
	Factor float64
	// Headroom scales the contracts derived from the aggressors' logs —
	// the same factor the admission config used, so the storm is measured
	// against the enforced contract (default 2).
	Headroom float64
	// MaxStorm bounds each aggressor's storm submissions (default 2000).
	MaxStorm int
	// SLASlack scales each replayed query's logged duration into its SLO
	// target (default 2.5). The logged duration is the zero-headroom
	// pre-consolidation latency, and the advisor's P guarantee already
	// prices in transient <=(1-P) overflow windows — a slack of 2.5 forgives
	// worst-case full-duration sharing with a single co-tenant (processor
	// sharing doubles latency) and flags only the sustained pile-ups a storm
	// causes.
	SLASlack float64
	// SampleEvery is the RT-TTP sampling period (default 10 min).
	SampleEvery time.Duration
	// DrainSlack extends the post-window settle time (default 6 h).
	DrainSlack time.Duration
}

// DefaultOverloadConfig returns a single 5×-over-contract aggressor.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		Seed:        1,
		Aggressors:  1,
		Factor:      5,
		Headroom:    2,
		MaxStorm:    2000,
		SLASlack:    2.5,
		SampleEvery: 10 * time.Minute,
		DrainSlack:  6 * time.Hour,
	}
}

func (c OverloadConfig) validate() error {
	if c.To <= c.From {
		return fmt.Errorf("overload: window [%v,%v)", c.From, c.To)
	}
	if c.Aggressors < 0 || (c.Aggressors > 0 && (c.Factor <= 1 || c.MaxStorm < 1)) {
		return fmt.Errorf("overload: Aggressors=%d Factor=%v MaxStorm=%d",
			c.Aggressors, c.Factor, c.MaxStorm)
	}
	return nil
}

// TenantOutcome is one target-group member's storm outcome.
type TenantOutcome struct {
	Tenant    string
	Aggressor bool
	// Met/Missed/Attainment are the tenant's completed-query SLA tallies.
	Met, Missed int64
	Attainment  float64
	// Admitted/Throttled/Shed are the admission controller's accounting
	// (zero when admission is off).
	Admitted, Throttled, Shed int64
}

// OverloadResult condenses a storm run.
type OverloadResult struct {
	// Group is the target group the storm hit.
	Group string
	// Aggressors are the hot tenants' IDs.
	Aggressors []string
	// AdmissionOn records whether the deployment had admission armed.
	AdmissionOn bool
	// StormSubmitted counts scheduled storm submissions; StormAdmitted
	// those that reached an MPPDB; StormThrottled the typed 429s;
	// StormShed the typed 503s; StormErrors routing failures.
	StormSubmitted, StormAdmitted, StormThrottled, StormShed, StormErrors int
	// NormalSubmitted/NormalThrottled/NormalShed tally the compliant
	// members' logged traffic the same way.
	NormalSubmitted, NormalThrottled, NormalShed int
	// Outcomes has one row per target-group member, aggressors included,
	// in group member order.
	Outcomes []TenantOutcome
	// MinCompliantAttainment is the worst completed-query SLA attainment
	// over the compliant (non-aggressor) members.
	MinCompliantAttainment float64
	// MinRTTTP is the lowest sampled RT-TTP of the target group.
	MinRTTTP float64
}

// Verify checks the overload-protection bar: every compliant member's SLA
// attainment held the guarantee, and — when admission was armed — the storm
// was actually contained (throttled or shed, with typed errors).
func (r *OverloadResult) Verify(p float64) error {
	for _, o := range r.Outcomes {
		if !o.Aggressor && o.Attainment < p {
			return fmt.Errorf("overload: compliant tenant %s attainment %.6f < %.6f",
				o.Tenant, o.Attainment, p)
		}
	}
	if r.AdmissionOn && r.StormThrottled+r.StormShed == 0 {
		return fmt.Errorf("overload: admission armed but the storm was never throttled or shed")
	}
	return nil
}

// RunOverload drives a seeded noisy-tenant storm against the deployment's
// largest group on a shared clock domain: the chosen aggressors submit
// open-loop at Factor times their contracted rate (the contract derived
// from their own logs, whether or not admission is armed — so baseline and
// protected runs face the identical storm) while the remaining members
// replay their logged queries. Submissions go through the group's
// admission controller when armed; typed rejections are tallied, never
// retried. Deterministic: same seed and deployment ⇒ byte-identical
// telemetry.
func RunOverload(eng *sim.Engine, dep *master.Deployment, cat *queries.Catalog,
	logs []*workload.TenantLog, cfg OverloadConfig) (*OverloadResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if dep.Sharded() {
		return nil, fmt.Errorf("overload: requires a shared-domain deployment")
	}
	if eng == nil {
		return nil, fmt.Errorf("overload: nil engine")
	}
	if cfg.Headroom <= 0 {
		cfg.Headroom = 2
	}
	if cfg.SLASlack <= 0 {
		cfg.SLASlack = 2.5
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 10 * time.Minute
	}
	if cfg.DrainSlack <= 0 {
		cfg.DrainSlack = 6 * time.Hour
	}

	// Target the largest group (first on ties — deterministic in plan
	// order).
	groups := dep.Groups()
	if len(groups) == 0 {
		return nil, fmt.Errorf("overload: empty deployment")
	}
	target := groups[0]
	for _, g := range groups[1:] {
		if len(g.Members) > len(target.Members) {
			target = g
		}
	}
	if cfg.Aggressors > 0 && cfg.Aggressors >= len(target.Members) {
		return nil, fmt.Errorf("overload: %d aggressors need a group larger than %d",
			cfg.Aggressors, len(target.Members))
	}
	logByID := make(map[string]*workload.TenantLog, len(logs))
	for _, tl := range logs {
		logByID[tl.Tenant.ID] = tl
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(len(target.Members))
	hot := make(map[string]bool, cfg.Aggressors)
	res := &OverloadResult{
		Group:       target.Plan.ID,
		AdmissionOn: target.Admission != nil,
		MinRTTTP:    1,
	}
	for _, i := range perm[:cfg.Aggressors] {
		id := target.Members[i].ID
		hot[id] = true
		res.Aggressors = append(res.Aggressors, id)
	}

	// submit pushes one query through the group's admission controller
	// (when armed) and router, tallying typed rejections. Runs inside an
	// engine callback, so the domain is already held by the driver.
	submit := func(tenantID string, class *queries.Class, sla sim.Time, storm bool) {
		if ac := target.Admission; ac != nil {
			if err := ac.Admit(tenantID, sla, false); err != nil {
				var ce *admission.ContractExceededError
				var se *admission.ShedError
				switch {
				case errors.As(err, &ce):
					if storm {
						res.StormThrottled++
					} else {
						res.NormalThrottled++
					}
				case errors.As(err, &se):
					if storm {
						res.StormShed++
					} else {
						res.NormalShed++
					}
				}
				return
			}
		}
		if _, err := target.Router.SubmitWithTarget(tenantID, class, sla); err != nil {
			if storm {
				res.StormErrors++
			}
			return
		}
		if storm {
			res.StormAdmitted++
		}
	}

	// Schedule the aggressors' storms: open-loop submissions of the
	// heaviest query in each aggressor's own log, at Factor times the
	// contract derived from that log — an open loop of long queries
	// backlogs the aggressor's instance, so overflow traffic that lands
	// there shares with the whole pile-up.
	for _, id := range res.Aggressors {
		tl := logByID[id]
		if tl == nil {
			return nil, fmt.Errorf("overload: aggressor %s has no log", id)
		}
		var class *queries.Class
		var sla sim.Time
		for _, ref := range tl.Sessions {
			for _, ev := range ref.Log.Events {
				if ev.Duration > sla {
					cl, ok := cat.ByID(ev.ClassID)
					if !ok {
						return nil, fmt.Errorf("overload: unknown class %s", ev.ClassID)
					}
					class, sla = cl, ev.Duration
				}
			}
		}
		if class == nil {
			return nil, fmt.Errorf("overload: aggressor %s logged no queries", id)
		}
		sla = sim.Time(float64(sla) * cfg.SLASlack)
		contract := admission.ContractFromLog(tl, cfg.Headroom)
		interval := sim.Time(float64(sim.Second) / (cfg.Factor * contract.Rate))
		if interval < 1 {
			interval = 1
		}
		tenantID := id
		for i := 0; i < cfg.MaxStorm; i++ {
			at := cfg.From + sim.Time(i)*interval
			if at >= cfg.To {
				break
			}
			res.StormSubmitted++
			eng.Schedule(at, func(sim.Time) { submit(tenantID, class, sla, true) })
		}
	}

	// Schedule the compliant members' logged traffic.
	for _, tn := range target.Members {
		if hot[tn.ID] {
			continue // the storm replaces the aggressor's own traffic
		}
		tl := logByID[tn.ID]
		if tl == nil {
			continue
		}
		for _, ev := range tl.Materialize(cfg.From, cfg.To) {
			ev := ev
			class, ok := cat.ByID(ev.ClassID)
			if !ok {
				return nil, fmt.Errorf("overload: unknown class %s", ev.ClassID)
			}
			sla := sim.Time(float64(ev.SLATarget) * cfg.SLASlack)
			res.NormalSubmitted++
			eng.Schedule(ev.At, func(sim.Time) {
				submit(ev.Tenant, class, sla, false)
			})
		}
	}

	// Sample the target group's RT-TTP through the window.
	var sample func(sim.Time)
	sample = func(sim.Time) {
		if rt := target.Monitor.RTTTP(); rt < res.MinRTTTP {
			res.MinRTTTP = rt
		}
		if next := eng.Now().Add(cfg.SampleEvery); next < cfg.To {
			eng.Schedule(next, sample)
		}
	}
	eng.Schedule(cfg.From, sample)

	eng.Run(cfg.To)
	eng.Run(cfg.To.Add(cfg.DrainSlack))

	// Condense per-tenant outcomes: completed-query SLA tallies from the
	// hub, admission accounting from the controller.
	slo := make(map[string]struct {
		met, missed int64
		attainment  float64
	})
	for _, tn := range dep.Telemetry().SLA.Report() {
		slo[tn.Tenant] = struct {
			met, missed int64
			attainment  float64
		}{tn.Met, tn.Missed, tn.Attainment}
	}
	adm := make(map[string]admission.TenantStat)
	if target.Admission != nil {
		for _, st := range target.Admission.TenantStats() {
			adm[st.Tenant] = st
		}
	}
	res.MinCompliantAttainment = 1
	for _, tn := range target.Members {
		o := TenantOutcome{Tenant: tn.ID, Aggressor: hot[tn.ID], Attainment: 1}
		if s, ok := slo[tn.ID]; ok {
			o.Met, o.Missed, o.Attainment = s.met, s.missed, s.attainment
		}
		if st, ok := adm[tn.ID]; ok {
			o.Admitted, o.Throttled, o.Shed = st.Admitted, st.Throttled, st.Shed
		}
		if !o.Aggressor && o.Attainment < res.MinCompliantAttainment {
			res.MinCompliantAttainment = o.Attainment
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	return res, nil
}
