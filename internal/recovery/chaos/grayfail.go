package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/queries"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/workload"
)

// GrayFailConfig parameterizes a seeded fail-slow storm: a schedule of
// fractional slowdown episodes against the deployment's largest group while
// every member replays its logged traffic.
type GrayFailConfig struct {
	// Seed fixes the schedule's randomness (instance choice, profile order,
	// factor jitter).
	Seed int64
	// From and To bound the run window.
	From, To sim.Time
	// Episodes is how many fail-slow episodes to schedule (default 3). They
	// are spaced evenly through the window, one instance each.
	Episodes int
	// Factor is the episode depth — the fraction of nominal speed a gray
	// instance drops to (default 0.3; jittered ±0.05 by the seed).
	Factor float64
	// Duration is each episode's length (default 2 h, clamped to the
	// inter-episode spacing so a same-instance pair can never overlap).
	Duration time.Duration
	// Slowdowns, when non-nil, is an explicit schedule and overrides the
	// generated one. It is validated either way.
	Slowdowns []Slowdown
	// SLASlack scales each replayed query's logged duration into its SLO
	// target (default 2.5, as in the overload storm).
	SLASlack float64
	// SampleEvery is the RT-TTP sampling period (default 10 min).
	SampleEvery time.Duration
	// DrainSlack extends the post-window settle time (default 6 h) so
	// drain-replacements finish reloading before the pool is tallied.
	DrainSlack time.Duration
}

// DefaultGrayFailConfig returns a three-episode storm cycling through the
// stuck, gradual, and flapping profiles.
func DefaultGrayFailConfig() GrayFailConfig {
	return GrayFailConfig{
		Seed:        1,
		Episodes:    3,
		Factor:      0.3,
		Duration:    2 * time.Hour,
		SLASlack:    2.5,
		SampleEvery: 10 * time.Minute,
		DrainSlack:  6 * time.Hour,
	}
}

func (c GrayFailConfig) validate() error {
	if c.To <= c.From {
		return fmt.Errorf("grayfail: window [%v,%v)", c.From, c.To)
	}
	if c.Slowdowns == nil {
		if c.Episodes < 1 || c.Duration <= 0 {
			return fmt.Errorf("grayfail: Episodes=%d Duration=%v", c.Episodes, c.Duration)
		}
		if c.Factor <= 0.05 || c.Factor >= 0.95 {
			return fmt.Errorf("grayfail: Factor=%v outside (0.05,0.95)", c.Factor)
		}
	}
	return nil
}

// BuildSlowdowns derives the fail-slow schedule for the target group:
// Episodes episodes spaced evenly through the window, each hitting a seeded
// instance with the stuck, gradual, and flapping profiles in rotation. It is
// deterministic in (group shape, cfg) and always returns a schedule that
// passes ValidateSlowdowns.
func BuildSlowdowns(target *master.DeployedGroup, cfg GrayFailConfig) []Slowdown {
	rng := rand.New(rand.NewSource(cfg.Seed))
	profiles := []SlowProfile{ProfileStuck, ProfileGradual, ProfileFlapping}
	spacing := (cfg.To - cfg.From) / sim.Time(cfg.Episodes+1)
	dur := sim.Duration(cfg.Duration)
	if dur >= spacing {
		dur = spacing * 3 / 4
	}
	out := make([]Slowdown, 0, cfg.Episodes)
	for i := 0; i < cfg.Episodes; i++ {
		factor := cfg.Factor + (rng.Float64()-0.5)*0.1
		e := Slowdown{
			At:       cfg.From + sim.Time(i+1)*spacing - dur/2,
			Duration: time.Duration(dur),
			Group:    target.Plan.ID,
			Instance: rng.Intn(len(target.Instances)),
			Profile:  profiles[i%len(profiles)],
			Factor:   factor,
			Steps:    4,
			Period:   time.Duration(dur / 6),
		}
		out = append(out, e)
	}
	return out
}

// GrayFailResult condenses a fail-slow storm run.
type GrayFailResult struct {
	// Group is the target group the storm hit.
	Group string
	// Schedule is the injected fail-slow schedule.
	Schedule []Slowdown
	// GrayArmed records whether the deployment had the detector armed.
	GrayArmed bool
	// Submitted counts scheduled logged submissions; Errors routing
	// failures.
	Submitted, Errors int
	// Attainment is the target group's per-query SLA attainment; worst
	// member in MinAttainment.
	Attainment    float64
	MinAttainment float64
	// MinRTTTP is the lowest sampled RT-TTP of the target group.
	MinRTTTP float64
	// GrayEvents are the detector's episodes (empty when unarmed);
	// Suspected/Confirmed/Drained tally the rungs reached.
	GrayEvents                    []recovery.GrayEvent
	Suspected, Confirmed, Drained int
	// Hedged and HedgeWins are the router's hedge tallies.
	Hedged, HedgeWins int64
	// CrashInFlight counts recoveries still pending after the drain.
	CrashInFlight int
	// ResidualSlow counts instances still below full speed at the end.
	ResidualSlow int
	// ExpectedActive is the node count the deployment's instances own;
	// Active/Failed/Repairing are the pool's end-state tallies.
	ExpectedActive, ActiveNodes, FailedNodes, RepairingNodes int
}

// Verify checks the structural bar shared by bare and protected runs: every
// episode's slowdown was lifted, nothing is stuck mid-recovery, and the pool
// is leak-free. When the detector was armed against a non-empty schedule it
// must also have confirmed at least one episode — a ladder that never fires
// protects nothing.
func (r *GrayFailResult) Verify() error {
	if r.ResidualSlow != 0 {
		return fmt.Errorf("grayfail: %d instances still slow after the drain", r.ResidualSlow)
	}
	if r.CrashInFlight != 0 {
		return fmt.Errorf("grayfail: %d recoveries still in flight", r.CrashInFlight)
	}
	if r.ActiveNodes != r.ExpectedActive || r.FailedNodes != 0 || r.RepairingNodes != 0 {
		return fmt.Errorf("grayfail: pool leak — active %d (want %d), failed %d, repairing %d",
			r.ActiveNodes, r.ExpectedActive, r.FailedNodes, r.RepairingNodes)
	}
	if r.GrayArmed && len(r.Schedule) > 0 && r.Confirmed == 0 {
		return fmt.Errorf("grayfail: detector armed but never confirmed a gray instance")
	}
	return nil
}

// RunGrayFail drives a seeded fail-slow storm against the deployment's
// largest group on a shared clock domain: the schedule's episodes impose
// fractional slowdowns (stuck, gradual, flapping) while every member replays
// its logged traffic. With the gray detector armed the hedge → drain ladder
// responds; bare deployments just eat the slowdown. Deterministic: same seed
// and deployment ⇒ byte-identical telemetry.
func RunGrayFail(eng *sim.Engine, dep *master.Deployment, cat *queries.Catalog,
	logs []*workload.TenantLog, cfg GrayFailConfig) (*GrayFailResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if dep.Sharded() {
		return nil, fmt.Errorf("grayfail: requires a shared-domain deployment")
	}
	if eng == nil {
		return nil, fmt.Errorf("grayfail: nil engine")
	}
	if cfg.SLASlack <= 0 {
		cfg.SLASlack = 2.5
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 10 * time.Minute
	}
	if cfg.DrainSlack <= 0 {
		cfg.DrainSlack = 6 * time.Hour
	}

	// Target the largest group (first on ties — deterministic in plan
	// order).
	groups := dep.Groups()
	if len(groups) == 0 {
		return nil, fmt.Errorf("grayfail: empty deployment")
	}
	target := groups[0]
	for _, g := range groups[1:] {
		if len(g.Members) > len(target.Members) {
			target = g
		}
	}
	sched := cfg.Slowdowns
	if sched == nil {
		sched = BuildSlowdowns(target, cfg)
	}
	if err := ValidateSlowdowns(sched, cfg.From, cfg.To); err != nil {
		return nil, err
	}
	res := &GrayFailResult{
		Group:     target.Plan.ID,
		Schedule:  sched,
		GrayArmed: target.Gray != nil,
		MinRTTTP:  1,
	}
	if err := applySlowdowns(eng, dep, sched); err != nil {
		return nil, err
	}

	// Schedule every member's logged traffic.
	logByID := make(map[string]*workload.TenantLog, len(logs))
	for _, tl := range logs {
		logByID[tl.Tenant.ID] = tl
	}
	for _, tn := range target.Members {
		tl := logByID[tn.ID]
		if tl == nil {
			continue
		}
		for _, ev := range tl.Materialize(cfg.From, cfg.To) {
			ev := ev
			class, ok := cat.ByID(ev.ClassID)
			if !ok {
				return nil, fmt.Errorf("grayfail: unknown class %s", ev.ClassID)
			}
			sla := sim.Time(float64(ev.SLATarget) * cfg.SLASlack)
			res.Submitted++
			eng.Schedule(ev.At, func(sim.Time) {
				if _, err := target.Router.SubmitWithTarget(ev.Tenant, class, sla); err != nil {
					res.Errors++
				}
			})
		}
	}

	// Sample the target group's RT-TTP through the window.
	var sample func(sim.Time)
	sample = func(sim.Time) {
		if rt := target.Monitor.RTTTP(); rt < res.MinRTTTP {
			res.MinRTTTP = rt
		}
		if next := eng.Now().Add(cfg.SampleEvery); next < cfg.To {
			eng.Schedule(next, sample)
		}
	}
	eng.Schedule(cfg.From, sample)

	eng.Run(cfg.To)
	eng.Run(cfg.To.Add(cfg.DrainSlack))

	// Condense: detector ladder, hedge tallies, SLA attainment over the
	// target's members, and the pool leak check.
	if target.Gray != nil {
		res.GrayEvents = target.Gray.Events()
		for _, ev := range res.GrayEvents {
			res.Suspected++
			if ev.Confirmed > 0 {
				res.Confirmed++
			}
			if ev.Drained > 0 {
				res.Drained++
			}
		}
	}
	res.Hedged, res.HedgeWins = target.Router.HedgeStats()
	if target.Recovery != nil {
		res.CrashInFlight = target.Recovery.InProgress()
	}
	for _, g := range dep.Groups() {
		for _, inst := range g.Instances {
			res.ExpectedActive += inst.Nodes()
			if inst.Slowdown() != 1 {
				res.ResidualSlow++
			}
		}
	}
	var met, missed int64
	res.MinAttainment = 1
	byTenant := make(map[string]struct {
		met, missed int64
		attainment  float64
	})
	for _, tn := range dep.Telemetry().SLA.Report() {
		byTenant[tn.Tenant] = struct {
			met, missed int64
			attainment  float64
		}{tn.Met, tn.Missed, tn.Attainment}
	}
	for _, tn := range target.Members {
		s, ok := byTenant[tn.ID]
		if !ok {
			continue
		}
		met += s.met
		missed += s.missed
		if s.attainment < res.MinAttainment {
			res.MinAttainment = s.attainment
		}
	}
	if met+missed > 0 {
		res.Attainment = float64(met) / float64(met+missed)
	} else {
		res.Attainment = 1
	}
	pool := dep.Pool()
	res.ActiveNodes = pool.CountState(cluster.Active)
	res.FailedNodes = pool.CountState(cluster.Failed)
	res.RepairingNodes = pool.CountState(cluster.Repairing)
	return res, nil
}
