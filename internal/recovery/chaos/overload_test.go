package chaos

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/master"
	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// overloadWorld builds a shared-domain deployment for storm runs. admit
// arms per-group admission with contracts derived from the logs; the
// monitor window and brownout tick are tightened so the protection loop
// reacts within the test's short horizon.
func overloadWorld(t *testing.T, tenants, days int, admit bool) *world {
	t.Helper()
	cat := queries.Default()
	lib, err := workload.BuildLibrary(cat, []int{2}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pop, err := tenant.Population(rng, tenants, 0.8, []int{2}, tenant.ZoneOffsets)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := workload.DefaultComposeConfig(3)
	ccfg.Days = days
	ccfg.Holidays = 0
	logs, err := workload.Compose(lib, pop, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := advisor.DefaultConfig()
	acfg.R = 2
	adv, err := advisor.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adv.Plan(logs, ccfg.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	opts := master.Options{Immediate: true, MonitorWindow: time.Hour}
	if admit {
		cfg := admission.DefaultConfig()
		cfg.Contracts = admission.ContractsFromLogs(logs, cfg.Headroom)
		cfg.TickInterval = 5 * time.Second
		opts.Admission = &cfg
	}
	eng := sim.NewEngine()
	pool := cluster.NewPool(plan.NodesUsed())
	m := master.New(eng, pool, opts)
	byID := map[string]*tenant.Tenant{}
	for _, tn := range pop {
		byID[tn.ID] = tn
	}
	dep, err := m.Deploy(plan, byID)
	if err != nil {
		t.Fatal(err)
	}
	return &world{eng: eng, cat: cat, dep: dep, logs: logs, plan: plan}
}

func stormConfig() OverloadConfig {
	cfg := DefaultOverloadConfig()
	cfg.Seed = 11
	cfg.From, cfg.To = 0, 12*sim.Hour
	cfg.DrainSlack = 2 * time.Hour
	return cfg
}

// TestOverloadProtection is the acceptance run: the identical seeded storm
// against two fresh deployments. Without admission the aggressor's open
// loop burns a compliant co-tenant's SLA below the plan's P; with admission
// armed the aggressor is throttled with typed 429s and every compliant
// member's attainment holds the guarantee.
func TestOverloadProtection(t *testing.T) {
	cfg := stormConfig()

	base := overloadWorld(t, 12, 2, false)
	baseRes, err := RunOverload(base.eng, base.dep, base.cat, base.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := base.plan.Config.P
	if baseRes.AdmissionOn {
		t.Fatal("baseline unexpectedly has admission armed")
	}
	if baseRes.MinCompliantAttainment >= p {
		t.Fatalf("baseline storm did no damage: min compliant attainment %.6f >= %.6f",
			baseRes.MinCompliantAttainment, p)
	}

	prot := overloadWorld(t, 12, 2, true)
	protRes, err := RunOverload(prot.eng, prot.dep, prot.cat, prot.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !protRes.AdmissionOn {
		t.Fatal("protected run has no admission")
	}
	if err := protRes.Verify(p); err != nil {
		t.Fatalf("protected run: %v (outcomes %+v)", err, protRes.Outcomes)
	}
	if protRes.StormThrottled == 0 {
		t.Fatalf("aggressor never saw a typed 429: %+v", protRes)
	}
	hub := prot.dep.Telemetry()
	if n := countEvents(hub, telemetry.EventContractExceeded); n == 0 {
		t.Fatal("no contract_exceeded events published")
	}
	// The throttle counters must be visible in the registry.
	var buf bytes.Buffer
	if err := hub.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("thrifty_admission_throttled_total")) {
		t.Fatal("metrics lack thrifty_admission_throttled_total")
	}
	t.Logf("baseline min compliant attainment %.6f; protected %.6f, storm %d submitted / %d admitted / %d throttled / %d shed",
		baseRes.MinCompliantAttainment, protRes.MinCompliantAttainment,
		protRes.StormSubmitted, protRes.StormAdmitted, protRes.StormThrottled, protRes.StormShed)
}

// TestOverloadTelemetryDeterminism: two fresh same-seed storm runs emit
// byte-identical telemetry dumps — the admission layer preserves the
// shared-domain determinism contract.
func TestOverloadTelemetryDeterminism(t *testing.T) {
	dump := func() (string, string) {
		w := overloadWorld(t, 12, 2, true)
		if _, err := RunOverload(w.eng, w.dep, w.cat, w.logs, stormConfig()); err != nil {
			t.Fatal(err)
		}
		hub := w.dep.Telemetry()
		var ev, tr bytes.Buffer
		if err := hub.Events.Dump(&ev); err != nil {
			t.Fatal(err)
		}
		if err := hub.Tracer.Dump(&tr); err != nil {
			t.Fatal(err)
		}
		return ev.String(), tr.String()
	}
	ev1, tr1 := dump()
	ev2, tr2 := dump()
	if ev1 != ev2 {
		t.Fatal("same-seed overload runs emitted different event dumps")
	}
	if tr1 != tr2 {
		t.Fatal("same-seed overload runs emitted different trace dumps")
	}
	if len(ev1) == 0 {
		t.Fatal("overload run emitted no events")
	}
}

// TestOverloadSmoke is the bounded CI gate (make overload-smoke): a short
// seeded storm against a protected deployment must be contained.
func TestOverloadSmoke(t *testing.T) {
	cfg := stormConfig()
	cfg.To = 4 * sim.Hour
	cfg.MaxStorm = 500
	cfg.DrainSlack = time.Hour
	w := overloadWorld(t, 8, 1, true)
	res, err := RunOverload(w.eng, w.dep, w.cat, w.logs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(w.plan.Config.P); err != nil {
		t.Fatal(err)
	}
	if res.StormThrottled == 0 {
		t.Fatalf("smoke storm never throttled: %+v", res)
	}
}

// TestOverloadValidation rejects malformed configs and sharded deployments.
func TestOverloadValidation(t *testing.T) {
	w := newWorld(t, 6, 1, 2, true, 1) // sharded
	cfg := DefaultOverloadConfig()
	cfg.From, cfg.To = 0, sim.Hour
	if _, err := RunOverload(nil, w.dep, w.cat, w.logs, cfg); err == nil {
		t.Fatal("sharded deployment accepted")
	}
	ws := overloadWorld(t, 6, 1, false)
	bad := cfg
	bad.To = 0
	if _, err := RunOverload(ws.eng, ws.dep, ws.cat, ws.logs, bad); err == nil {
		t.Fatal("empty window accepted")
	}
	bad = cfg
	bad.Factor = 1
	if _, err := RunOverload(ws.eng, ws.dep, ws.cat, ws.logs, bad); err == nil {
		t.Fatal("Factor <= 1 accepted")
	}
	bad = cfg
	bad.Aggressors = 100
	if _, err := RunOverload(ws.eng, ws.dep, ws.cat, ws.logs, bad); err == nil {
		t.Fatal("oversized aggressor count accepted")
	}
}
