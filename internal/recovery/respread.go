// Restoration re-spread. A whole-domain outage forces mid-outage
// replacements onto the surviving domains, so a group that was spread across
// racks can come out of the outage collapsed onto one — protected against
// nothing the next time a rack dies. Once the domain returns, the heartbeat
// notices the collapse and live-migrates one replica back onto a fresh
// domain with the PR-6 migration mechanics: the target nodes provision and
// reload in the background (Table 5.1 startup + bulk load) while the old
// nodes keep serving, then the pool flips atomically — the instance's
// backing nodes change domains without dropping a query.
package recovery

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mppdb"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// RespreadConfig arms the post-restoration re-spread check.
type RespreadConfig struct {
	// MinDomains is the spread target: the group should span at least this
	// many failure domains (default 2, capped by the pool's domain count and
	// the group's instance count).
	MinDomains int
	// ParallelLoad selects the Table 5.1 parallel bulk-load model for the
	// migration reload.
	ParallelLoad bool
}

type respreadState struct {
	cfg RespreadConfig
}

// Respreads returns how many re-spread migrations have cut over.
func (c *Controller) Respreads() int { return c.respreads }

// SetRespread arms the collapse check, evaluated on each heartbeat. Call
// before Start. Strictly opt-in: unarmed controllers behave byte-identically
// to the pre-domain code.
func (c *Controller) SetRespread(cfg RespreadConfig) {
	if cfg.MinDomains <= 0 {
		cfg.MinDomains = 2
	}
	c.respread = &respreadState{cfg: cfg}
}

// maybeRespread runs on the heartbeat: when the group is healthy but spans
// fewer failure domains than its target, it starts one live replica
// migration onto an unused domain. One migration at a time; if no fresh
// domain has capacity (e.g. the rack is still down), it simply tries again
// next beat.
func (c *Controller) maybeRespread() {
	if c.respread == nil || c.respreadInFlight || c.InProgress() > 0 {
		return
	}
	if len(c.insts) < 2 || c.pool.Domains() < 2 {
		return
	}
	used := map[int]bool{}
	for _, inst := range c.insts {
		if inst.FailedNodes() > 0 || len(c.pool.FailedNodesOf(inst.ID())) > 0 {
			return // recover first, re-spread after
		}
		for _, d := range c.pool.OwnerDomains(inst.ID()) {
			used[d] = true
		}
	}
	want := c.respread.cfg.MinDomains
	if c.pool.Domains() < want {
		want = c.pool.Domains()
	}
	if len(c.insts) < want {
		want = len(c.insts)
	}
	if len(used) >= want {
		return
	}
	avoid := make([]int, 0, len(used))
	for d := range used {
		avoid = append(avoid, d)
	}
	// Move the highest-index replica: db0 stays put, so a group's primary
	// placement is stable across repeated collapses.
	inst := c.insts[len(c.insts)-1]
	owner := inst.ID()
	tempOwner := owner + "/respread"
	nodes, doms, err := c.pool.AcquireSpread(tempOwner, inst.Nodes(), avoid)
	if err != nil {
		return // pool too tight; retry next beat
	}
	fresh := false
	for _, d := range doms {
		if !used[d] {
			fresh = true
			break
		}
	}
	if !fresh {
		// Only collapsed domains had capacity (the rack is still down);
		// undo and wait.
		c.pool.Release(tempOwner)
		return
	}
	c.respreadInFlight = true
	cost := cluster.StartupTime(inst.Nodes()) +
		cluster.LoadTime(inst.TenantDataGB(), inst.Nodes(), c.respread.cfg.ParallelLoad)
	if c.tel != nil {
		c.tel.Events.Publish(telemetry.Event{
			Type:   telemetry.EventRespread,
			Group:  c.group,
			MPPDB:  owner,
			Value:  cost.Seconds(),
			Detail: fmt.Sprintf("group collapsed onto %d domain(s); migrating replica to domain %v (%d nodes, ready in %v)", len(used), doms, len(nodes), cost),
		})
	}
	c.eng.After(cost, func(sim.Time) { c.finishRespread(inst, owner, tempOwner, doms) })
}

// finishRespread flips (or aborts) the staged migration once the background
// reload is done. If anything died meanwhile — a staged node's domain went
// down, or the instance took a crash — the staging is released and the move
// is retried from scratch by a later beat; the serving nodes were never
// touched, so either way no query is dropped.
func (c *Controller) finishRespread(inst *mppdb.Instance, owner, tempOwner string, doms []int) {
	c.respreadInFlight = false
	abort := func(why string) {
		c.pool.Release(tempOwner)
		if c.tel != nil {
			c.tel.Events.Publish(telemetry.Event{
				Type:   telemetry.EventRespread,
				Group:  c.group,
				MPPDB:  owner,
				Detail: fmt.Sprintf("re-spread aborted: %s; staged nodes released", why),
			})
		}
	}
	if inst.FailedNodes() > 0 || len(c.pool.FailedNodesOf(owner)) > 0 ||
		len(c.pool.FailedNodesOf(tempOwner)) > 0 {
		abort("instance or staged nodes failed during the background reload")
		return
	}
	released, err := c.pool.CompleteRespread(owner, tempOwner)
	if err != nil {
		abort(err.Error())
		return
	}
	c.respreads++
	if c.tel != nil {
		c.tel.Events.Publish(telemetry.Event{
			Type:   telemetry.EventRespread,
			Group:  c.group,
			MPPDB:  owner,
			Value:  float64(len(released)),
			Detail: fmt.Sprintf("re-spread cut over to domain %v; %d source nodes released", doms, len(released)),
		})
	}
}
