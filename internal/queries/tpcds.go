package queries

// tpcdsClasses is a 24-query TPC-DS subset spanning the benchmark's main
// template families: reporting aggregates over a single fact table
// (q3/q42/q52/q55), store-sales drill-downs (q7/q19/q27/q34/q73), catalog
// and web channel joins (q45/q60), cross-channel "rollup" queries
// (q4/q11/q74 — the heavy multi-fact joins), customer-behaviour queries
// (q46/q68/q79), and time-series reports (q59/q63/q89/q96/q98). Profiles
// follow the same component model as TPC-H; the heavy cross-channel
// templates are the TPC-DS counterparts of the paper's non-linear class.
var tpcdsClasses = []*Class{
	{
		ID: "TPCDS-Q3", Suite: TPCDS, Number: 3,
		SQL: `select dt.d_year, item.i_brand_id, item.i_brand, sum(ss_ext_sales_price) sum_agg
from date_dim dt, store_sales, item
where dt.d_date_sk = ss_sold_date_sk and ss_item_sk = i_item_sk
  and i_manufact_id = 128 and dt.d_moy = 11
group by dt.d_year, i_brand, i_brand_id order by dt.d_year, sum_agg desc limit 100`,
		FixedSec: 0.0364, SerialSec: 0.0091, ScanSecGB: 0.0091, ShufSecGB: 0.00091, CoordSec: 0.000455,
	},
	{
		ID: "TPCDS-Q4", Suite: TPCDS, Number: 4,
		SQL: `with year_total as (select c_customer_id, sum(...) year_total, 's' sale_type
  from customer, store_sales, date_dim group by ... union all
  select ..., 'c' from customer, catalog_sales, date_dim ... union all
  select ..., 'w' from customer, web_sales, date_dim ...)
select t_s_secyear.customer_id from year_total t_s_firstyear, ... limit 100`,
		FixedSec: 0.2002, SerialSec: 0.182, ScanSecGB: 0.0455, ShufSecGB: 0.0364, CoordSec: 0.0546,
	},
	{
		ID: "TPCDS-Q7", Suite: TPCDS, Number: 7,
		SQL: `select i_item_id, avg(ss_quantity), avg(ss_list_price), avg(ss_coupon_amt)
from store_sales, customer_demographics, date_dim, item, promotion
where cd_gender = 'M' and cd_marital_status = 'S' and cd_education_status = 'College'
group by i_item_id order by i_item_id limit 100`,
		FixedSec: 0.1092, SerialSec: 0.0455, ScanSecGB: 0.01274, ShufSecGB: 0.0091, CoordSec: 0.00728,
	},
	{
		ID: "TPCDS-Q11", Suite: TPCDS, Number: 11,
		SQL: `with year_total as (select c_customer_id, sum(ss_ext_list_price-ss_ext_discount_amt),
  's' sale_type from customer, store_sales, date_dim group by ... union all
  select ..., 'w' from customer, web_sales, date_dim ...)
select t_s_secyear.customer_id, ... order by ... limit 100`,
		FixedSec: 0.182, SerialSec: 0.1456, ScanSecGB: 0.0364, ShufSecGB: 0.03185, CoordSec: 0.0455,
	},
	{
		ID: "TPCDS-Q19", Suite: TPCDS, Number: 19,
		SQL: `select i_brand_id, i_brand, i_manufact_id, i_manufact, sum(ss_ext_sales_price) ext_price
from date_dim, store_sales, item, customer, customer_address, store
where d_date_sk = ss_sold_date_sk and ss_item_sk = i_item_sk and i_manager_id = 8
  and substr(ca_zip,1,5) <> substr(s_zip,1,5)
group by i_brand, i_brand_id, i_manufact_id, i_manufact order by ext_price desc limit 100`,
		FixedSec: 0.1183, SerialSec: 0.0546, ScanSecGB: 0.01456, ShufSecGB: 0.01274, CoordSec: 0.0091,
	},
	{
		ID: "TPCDS-Q27", Suite: TPCDS, Number: 27,
		SQL: `select i_item_id, s_state, grouping(s_state) g_state, avg(ss_quantity) agg1
from store_sales, customer_demographics, date_dim, store, item
where cd_gender = 'M' and cd_marital_status = 'S' and d_year = 2002
group by rollup (i_item_id, s_state) order by i_item_id, s_state limit 100`,
		FixedSec: 0.1092, SerialSec: 0.0546, ScanSecGB: 0.01365, ShufSecGB: 0.0091, CoordSec: 0.00728,
	},
	{
		ID: "TPCDS-Q34", Suite: TPCDS, Number: 34,
		SQL: `select c_last_name, c_first_name, c_salutation, ss_ticket_number, cnt
from (select ss_ticket_number, ss_customer_sk, count(*) cnt
  from store_sales, date_dim, store, household_demographics
  where (d_dom between 1 and 3 or d_dom between 25 and 28)
  group by ss_ticket_number, ss_customer_sk) dn, customer
where cnt between 15 and 20 order by c_last_name, ...`,
		FixedSec: 0.1001, SerialSec: 0.0455, ScanSecGB: 0.01092, ShufSecGB: 0.00728, CoordSec: 0.00546,
	},
	{
		ID: "TPCDS-Q42", Suite: TPCDS, Number: 42,
		SQL: `select dt.d_year, item.i_category_id, item.i_category, sum(ss_ext_sales_price)
from date_dim dt, store_sales, item
where dt.d_date_sk = ss_sold_date_sk and ss_item_sk = i_item_sk
  and item.i_manager_id = 1 and dt.d_moy = 11 and dt.d_year = 2000
group by dt.d_year, item.i_category_id, item.i_category order by 4 desc limit 100`,
		FixedSec: 0.0273, SerialSec: 0.0091, ScanSecGB: 0.00728, ShufSecGB: 0.00091, CoordSec: 0.000455,
	},
	{
		ID: "TPCDS-Q43", Suite: TPCDS, Number: 43,
		SQL: `select s_store_name, s_store_id, sum(case when (d_day_name='Sunday')
  then ss_sales_price else null end) sun_sales, ...
from date_dim, store_sales, store where d_year = 2000
group by s_store_name, s_store_id order by s_store_name limit 100`,
		FixedSec: 0.0364, SerialSec: 0.0091, ScanSecGB: 0.01001, ShufSecGB: 0.00091, CoordSec: 0.000455,
	},
	{
		ID: "TPCDS-Q45", Suite: TPCDS, Number: 45,
		SQL: `select ca_zip, ca_city, sum(ws_sales_price)
from web_sales, customer, customer_address, date_dim, item
where ws_bill_customer_sk = c_customer_sk and c_current_addr_sk = ca_address_sk
  and (substr(ca_zip,1,5) in ('85669','86197', ...) or i_item_id in (...))
group by ca_zip, ca_city order by ca_zip, ca_city limit 100`,
		FixedSec: 0.1092, SerialSec: 0.0455, ScanSecGB: 0.0091, ShufSecGB: 0.01092, CoordSec: 0.0091,
	},
	{
		ID: "TPCDS-Q46", Suite: TPCDS, Number: 46,
		SQL: `select c_last_name, c_first_name, ca_city, bought_city, ss_ticket_number, amt, profit
from (select ss_ticket_number, ss_customer_sk, ca_city bought_city,
  sum(ss_coupon_amt) amt, sum(ss_net_profit) profit
  from store_sales, date_dim, store, household_demographics, customer_address ...)
  dn, customer, customer_address current_addr ... limit 100`,
		FixedSec: 0.1183, SerialSec: 0.0546, ScanSecGB: 0.01547, ShufSecGB: 0.01365, CoordSec: 0.01092,
	},
	{
		ID: "TPCDS-Q52", Suite: TPCDS, Number: 52,
		SQL: `select dt.d_year, item.i_brand_id brand_id, item.i_brand brand, sum(ss_ext_sales_price)
from date_dim dt, store_sales, item
where dt.d_date_sk = ss_sold_date_sk and ss_item_sk = i_item_sk
  and item.i_manager_id = 1 and dt.d_moy = 11 and dt.d_year = 2000
group by dt.d_year, item.i_brand, item.i_brand_id order by dt.d_year, 4 desc limit 100`,
		FixedSec: 0.0273, SerialSec: 0.0091, ScanSecGB: 0.00637, ShufSecGB: 0.00091, CoordSec: 0.000455,
	},
	{
		ID: "TPCDS-Q53", Suite: TPCDS, Number: 53,
		SQL: `select * from (select i_manufact_id, sum(ss_sales_price) sum_sales,
  avg(sum(ss_sales_price)) over (partition by i_manufact_id) avg_quarterly_sales
  from item, store_sales, date_dim, store where ss_item_sk = i_item_sk ...)
where case when avg_quarterly_sales > 0 then abs(sum_sales-avg_quarterly_sales)/avg_quarterly_sales
  else null end > 0.1 order by avg_quarterly_sales limit 100`,
		FixedSec: 0.1001, SerialSec: 0.0455, ScanSecGB: 0.01092, ShufSecGB: 0.00637, CoordSec: 0.00455,
	},
	{
		ID: "TPCDS-Q55", Suite: TPCDS, Number: 55,
		SQL: `select i_brand_id brand_id, i_brand brand, sum(ss_ext_sales_price) ext_price
from date_dim, store_sales, item
where d_date_sk = ss_sold_date_sk and ss_item_sk = i_item_sk
  and i_manager_id = 28 and d_moy = 11 and d_year = 1999
group by i_brand, i_brand_id order by ext_price desc limit 100`,
		FixedSec: 0.02275, SerialSec: 0.0091, ScanSecGB: 0.00546, ShufSecGB: 0.00091, CoordSec: 0.000455,
	},
	{
		ID: "TPCDS-Q59", Suite: TPCDS, Number: 59,
		SQL: `with wss as (select d_week_seq, ss_store_sk, sum(case when (d_day_name='Sunday')
  then ss_sales_price else null end) sun_sales, ... from store_sales, date_dim
  group by d_week_seq, ss_store_sk)
select s_store_name1, s_store_id1, d_week_seq1, sun_sales1/sun_sales2, ...
from wss y, store, date_dim d, wss x ... limit 100`,
		FixedSec: 0.1274, SerialSec: 0.0728, ScanSecGB: 0.0182, ShufSecGB: 0.01092, CoordSec: 0.0091,
	},
	{
		ID: "TPCDS-Q60", Suite: TPCDS, Number: 60,
		SQL: `with ss as (select i_item_id, sum(ss_ext_sales_price) total_sales from store_sales ...),
 cs as (select i_item_id, sum(cs_ext_sales_price) from catalog_sales ...),
 ws as (select i_item_id, sum(ws_ext_sales_price) from web_sales ...)
select i_item_id, sum(total_sales) from (select * from ss union all ...) tmp
group by i_item_id order by i_item_id, total_sales limit 100`,
		FixedSec: 0.1456, SerialSec: 0.0819, ScanSecGB: 0.02275, ShufSecGB: 0.0182, CoordSec: 0.0182,
	},
	{
		ID: "TPCDS-Q63", Suite: TPCDS, Number: 63,
		SQL: `select * from (select i_manager_id, sum(ss_sales_price) sum_sales,
  avg(sum(ss_sales_price)) over (partition by i_manager_id) avg_monthly_sales
  from item, store_sales, date_dim, store ...) tmp1
where case when avg_monthly_sales > 0 then ... end > 0.1
order by i_manager_id, avg_monthly_sales, sum_sales limit 100`,
		FixedSec: 0.1001, SerialSec: 0.0455, ScanSecGB: 0.01092, ShufSecGB: 0.00637, CoordSec: 0.00455,
	},
	{
		ID: "TPCDS-Q68", Suite: TPCDS, Number: 68,
		SQL: `select c_last_name, c_first_name, ca_city, bought_city, ss_ticket_number,
  extended_price, extended_tax, list_price
from (select ss_ticket_number, ss_customer_sk, ca_city bought_city,
  sum(ss_ext_sales_price) extended_price, ... from store_sales, date_dim, store,
  household_demographics, customer_address ...) dn, customer, customer_address ... limit 100`,
		FixedSec: 0.1092, SerialSec: 0.0546, ScanSecGB: 0.01365, ShufSecGB: 0.01183, CoordSec: 0.0091,
	},
	{
		ID: "TPCDS-Q73", Suite: TPCDS, Number: 73,
		SQL: `select c_last_name, c_first_name, c_salutation, c_preferred_cust_flag,
  ss_ticket_number, cnt from (select ss_ticket_number, ss_customer_sk, count(*) cnt
  from store_sales, date_dim, store, household_demographics
  where d_dom between 1 and 2 ...) dj, customer
where cnt between 5 and 10 order by cnt desc`,
		FixedSec: 0.091, SerialSec: 0.0364, ScanSecGB: 0.0091, ShufSecGB: 0.00637, CoordSec: 0.00455,
	},
	{
		ID: "TPCDS-Q74", Suite: TPCDS, Number: 74,
		SQL: `with year_total as (select c_customer_id customer_id, c_first_name, c_last_name,
  d_year as year, sum(ss_net_paid) year_total, 's' sale_type
  from customer, store_sales, date_dim group by ... union all
  select ..., 'w' from customer, web_sales, date_dim ...)
select t_s_secyear.customer_id, ... order by 1, 1, 1 limit 100`,
		FixedSec: 0.182, SerialSec: 0.1638, ScanSecGB: 0.04095, ShufSecGB: 0.03458, CoordSec: 0.05005,
	},
	{
		ID: "TPCDS-Q79", Suite: TPCDS, Number: 79,
		SQL: `select c_last_name, c_first_name, substr(s_city,1,30), ss_ticket_number, amt, profit
from (select ss_ticket_number, ss_customer_sk, store.s_city,
  sum(ss_coupon_amt) amt, sum(ss_net_profit) profit
  from store_sales, date_dim, store, household_demographics ...) ms, customer
order by c_last_name, c_first_name, substr(s_city,1,30), profit limit 100`,
		FixedSec: 0.1001, SerialSec: 0.0455, ScanSecGB: 0.01183, ShufSecGB: 0.00819, CoordSec: 0.00637,
	},
	{
		ID: "TPCDS-Q89", Suite: TPCDS, Number: 89,
		SQL: `select * from (select i_category, i_class, i_brand, s_store_name, s_company_name,
  d_moy, sum(ss_sales_price) sum_sales,
  avg(sum(ss_sales_price)) over (partition by i_category, i_brand, ...) avg_monthly_sales
  from item, store_sales, date_dim, store ...) tmp1
where case when (avg_monthly_sales <> 0) then ... end > 0.1 order by ... limit 100`,
		FixedSec: 0.1092, SerialSec: 0.0546, ScanSecGB: 0.01274, ShufSecGB: 0.00728, CoordSec: 0.00546,
	},
	{
		ID: "TPCDS-Q96", Suite: TPCDS, Number: 96,
		SQL: `select count(*) from store_sales, household_demographics, time_dim, store
where ss_sold_time_sk = time_dim.t_time_sk and ss_hdemo_sk = household_demographics.hd_demo_sk
  and time_dim.t_hour = 20 and time_dim.t_minute >= 30
  and household_demographics.hd_dep_count = 7 order by count(*) limit 100`,
		FixedSec: 0.0182, SerialSec: 0.00455, ScanSecGB: 0.00546, ShufSecGB: 0.000455, CoordSec: 0.000455,
	},
	{
		ID: "TPCDS-Q98", Suite: TPCDS, Number: 98,
		SQL: `select i_item_id, i_item_desc, i_category, i_class, i_current_price,
  sum(ss_ext_sales_price) as itemrevenue,
  sum(ss_ext_sales_price)*100/sum(sum(ss_ext_sales_price)) over (partition by i_class)
from store_sales, item, date_dim where ss_item_sk = i_item_sk
  and i_category in ('Sports','Books','Home') ...
group by i_item_id, i_item_desc, i_category, i_class, i_current_price order by ...`,
		FixedSec: 0.0455, SerialSec: 0.0182, ScanSecGB: 0.01183, ShufSecGB: 0.00182, CoordSec: 0.00091,
	},
}
