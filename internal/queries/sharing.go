package queries

import (
	"fmt"
	"math"
)

// Shared-work discount model (SharedDB direction, ROADMAP item 2).
//
// When k concurrently-resident queries of the same class execute as one
// shared scan, the batch's service demand is not k× the isolated demand but
//
//	D(k) = isolated × (1 + σ·(k−1))
//
// where σ ∈ (0, 1] is the class's non-shareable fraction. A scan-dominated
// class (TPC-H Q1) re-reads the same pages for every member, so almost all
// of its work is shareable and σ ≪ 1; a shuffle/coordination-heavy class
// (Q19) repartitions per member and σ → 1, degenerating to plain processor
// sharing. σ is derived from the class's own scale-out profile at the
// testbed's deployed density — §7.1 tenants hold 100 GB per node, so the
// Fig 1.1 8-node shape carries 800 GB: the scan component's share of the
// isolated latency there is the shareable fraction.

// sigmaFloor keeps every class's marginal member cost strictly positive:
// even a perfectly scan-bound batch pays per-member result assembly.
const sigmaFloor = 0.02

// shareProbeNodes and shareProbeGBPerNode pin the σ probe to the Fig 1.1
// 8-node shape at the §7.1 deployment density of 100 GB per node.
const (
	shareProbeNodes     = 8
	shareProbeGBPerNode = 100
)

// ShareSigma returns the class's non-shareable work fraction σ: one minus
// the scan component's share of the isolated latency at the 8-node /
// 100 GB-per-node operating point, clamped to [sigmaFloor, 1].
func (c *Class) ShareSigma() float64 {
	total := c.Latency(shareProbeNodes*shareProbeGBPerNode, shareProbeNodes).Seconds()
	if total <= 0 {
		return 1
	}
	scan := c.ScanSecGB * shareProbeGBPerNode
	sigma := 1 - scan/total
	if sigma < sigmaFloor {
		sigma = sigmaFloor
	}
	if sigma > 1 {
		sigma = 1
	}
	return sigma
}

// SharedDemand returns the service demand of a k-member shared batch whose
// per-member isolated demands sum to sumIso with maximum maxIso, under the
// class's discount: the widest member's scan is paid once, every further
// member adds only its non-shareable σ share. With equal isolated demands
// this is exactly isolated × (1 + σ·(k−1)).
func (c *Class) SharedDemand(maxIso, sumIso float64) float64 {
	if sumIso <= maxIso {
		return maxIso
	}
	return maxIso + c.ShareSigma()*(sumIso-maxIso)
}

// ShareModel is the planning-side summary of the executor's discount: how
// much a population of concurrent query streams, drawn from this catalog,
// collapses when same-class streams share. The advisor uses it to relax the
// fuzzy-capacity test (grouping.Problem.Share).
type ShareModel struct {
	// R is the capacity the weights were computed against.
	R int
	// W[i] is the credit weight of an epoch whose raw active count is
	// R+1+i: the fraction of such an epoch that is NOT counted against the
	// violation budget because sharing absorbs the excess. 0 = full
	// violation (today's behaviour), 1 = fully within effective capacity.
	W []float64
}

// shareLevels bounds how far above R the model computes weights; epochs
// deeper in overload than R+shareLevels get no credit (conservative).
const shareLevels = 8

// NewShareModel derives the capacity-relaxation weights for threshold r
// from the catalog's class profiles. streamQueries is the expected number
// of in-flight queries an active stream holds (the workload generator's
// action mix: a single query or a batch of up to 10 — ≈1.9 at the §7.1
// parameters); values ≤ 0 mean one query per stream. The derivation is
// analytic and deterministic:
//
// c concurrent streams hold q = c·g uniform class draws between them
// (g = streamQueries, suites equally likely, uniform within — matching the
// workload generator). The expected effective load under sharing, in query
// units, is
//
//	eff_q(q) = Σ_i [(1−σ_i)·(1−(1−p_i)^q) + σ_i·q·p_i]
//
// — each distinct class present costs one full query slot, each duplicate
// only its σ share — and eff(c) = eff_q(c·g)/g converts back to stream
// units. An epoch at raw count c > r is then credited with weight
//
//	W = 1 − clamp((eff(c) − r) / (c − r), 0, 1)
//
// the first-order interpolation between "effective load within r" (no
// violation) and "no sharing at all" (full violation, eff = c). A strict
// P(eff ≤ r) test was evaluated first and is a dead end: the σ floor makes
// any duplicate exceed r by a hair, so the strict form gives zero credit
// everywhere (see EXPERIMENTS.md).
func NewShareModel(cat *Catalog, r int, streamQueries float64) (*ShareModel, error) {
	if r < 1 {
		return nil, fmt.Errorf("queries: share model capacity %d", r)
	}
	classes := cat.Classes()
	if len(classes) == 0 {
		return nil, fmt.Errorf("queries: share model over empty catalog")
	}
	g := streamQueries
	if g <= 0 {
		g = 1
	}
	// Per-class draw probability: suites equally likely, uniform within.
	suiteSize := make(map[Suite]int)
	for _, cl := range classes {
		suiteSize[cl.Suite]++
	}
	nSuites := float64(len(suiteSize))
	m := &ShareModel{R: r, W: make([]float64, shareLevels)}
	for i := 0; i < shareLevels; i++ {
		c := r + 1 + i
		q := float64(c) * g
		var effQ float64
		for _, cl := range classes {
			p := 1 / (nSuites * float64(suiteSize[cl.Suite]))
			sigma := cl.ShareSigma()
			present := 1 - math.Pow(1-p, q)
			effQ += (1-sigma)*present + sigma*q*p
		}
		eff := effQ / g
		v := (eff - float64(r)) / float64(c-r)
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		m.W[i] = 1 - v
	}
	return m, nil
}

// Weights returns the grouping-layer weight vector: index 0 corresponds to
// raw count R+1. The returned slice is shared, not copied.
func (m *ShareModel) Weights() []float64 { return m.W }
