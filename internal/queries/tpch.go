package queries

// tpchClasses holds the 22 TPC-H query templates. Latency profiles are
// calibrated against the behaviour the paper measures on its commercial
// MPPDB (Fig 1.1): Q1 — a single-table scan/aggregate — scales out nearly
// linearly, while Q19 — a selective multi-predicate join — pays shuffle and
// coordination costs that flatten its speedup curve. Remaining profiles
// follow each query's dominant access pattern (scan-heavy aggregates are
// Scan-dominated; multi-way joins carry Shuffle/Coord terms; top-k and
// correlated-subquery templates carry a Serial tail).
var tpchClasses = []*Class{
	{
		ID: "TPCH-Q1", Suite: TPCH, Number: 1,
		SQL: `select l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice),
  sum(l_extendedprice*(1-l_discount)), avg(l_quantity), count(*)
from lineitem where l_shipdate <= date '1998-12-01' - interval '90' day
group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus`,
		FixedSec: 0.0728, SerialSec: 0.0273, ScanSecGB: 0.05005, ShufSecGB: 0.00182, CoordSec: 0.00182,
	},
	{
		ID: "TPCH-Q2", Suite: TPCH, Number: 2,
		SQL: `select s_acctbal, s_name, n_name, p_partkey, p_mfgr
from part, supplier, partsupp, nation, region
where p_partkey = ps_partkey and s_suppkey = ps_suppkey and p_size = 15
  and r_name = 'EUROPE' and ps_supplycost = (select min(ps_supplycost) ...)
order by s_acctbal desc limit 100`,
		FixedSec: 0.1092, SerialSec: 0.0728, ScanSecGB: 0.00455, ShufSecGB: 0.0091, CoordSec: 0.0091,
	},
	{
		ID: "TPCH-Q3", Suite: TPCH, Number: 3,
		SQL: `select l_orderkey, sum(l_extendedprice*(1-l_discount)) as revenue,
  o_orderdate, o_shippriority
from customer, orders, lineitem
where c_mktsegment = 'BUILDING' and c_custkey = o_custkey and l_orderkey = o_orderkey
group by l_orderkey, o_orderdate, o_shippriority order by revenue desc limit 10`,
		FixedSec: 0.1183, SerialSec: 0.0546, ScanSecGB: 0.01638, ShufSecGB: 0.01092, CoordSec: 0.00728,
	},
	{
		ID: "TPCH-Q4", Suite: TPCH, Number: 4,
		SQL: `select o_orderpriority, count(*) as order_count from orders
where o_orderdate >= date '1993-07-01' and exists
  (select * from lineitem where l_orderkey = o_orderkey and l_commitdate < l_receiptdate)
group by o_orderpriority order by o_orderpriority`,
		FixedSec: 0.1001, SerialSec: 0.0364, ScanSecGB: 0.01092, ShufSecGB: 0.00728, CoordSec: 0.00455,
	},
	{
		ID: "TPCH-Q5", Suite: TPCH, Number: 5,
		SQL: `select n_name, sum(l_extendedprice*(1-l_discount)) as revenue
from customer, orders, lineitem, supplier, nation, region
where r_name = 'ASIA' and o_orderdate >= date '1994-01-01'
group by n_name order by revenue desc`,
		FixedSec: 0.1274, SerialSec: 0.0637, ScanSecGB: 0.0182, ShufSecGB: 0.01638, CoordSec: 0.01092,
	},
	{
		ID: "TPCH-Q6", Suite: TPCH, Number: 6,
		SQL: `select sum(l_extendedprice*l_discount) as revenue from lineitem
where l_shipdate >= date '1994-01-01' and l_discount between 0.05 and 0.07
  and l_quantity < 24`,
		FixedSec: 0.0364, SerialSec: 0.0091, ScanSecGB: 0.00728, ShufSecGB: 0, CoordSec: 0.00091,
	},
	{
		ID: "TPCH-Q7", Suite: TPCH, Number: 7,
		SQL: `select supp_nation, cust_nation, l_year, sum(volume) as revenue
from (select n1.n_name as supp_nation, n2.n_name as cust_nation,
  extract(year from l_shipdate) as l_year, l_extendedprice*(1-l_discount) as volume
  from supplier, lineitem, orders, customer, nation n1, nation n2 ...) as shipping
group by supp_nation, cust_nation, l_year order by 1, 2, 3`,
		FixedSec: 0.1365, SerialSec: 0.0546, ScanSecGB: 0.01638, ShufSecGB: 0.0182, CoordSec: 0.01365,
	},
	{
		ID: "TPCH-Q8", Suite: TPCH, Number: 8,
		SQL: `select o_year, sum(case when nation = 'BRAZIL' then volume else 0 end)/sum(volume)
from (select extract(year from o_orderdate) as o_year,
  l_extendedprice*(1-l_discount) as volume, n2.n_name as nation
  from part, supplier, lineitem, orders, customer, nation n1, nation n2, region ...)
group by o_year order by o_year`,
		FixedSec: 0.1456, SerialSec: 0.0637, ScanSecGB: 0.01365, ShufSecGB: 0.02002, CoordSec: 0.01638,
	},
	{
		ID: "TPCH-Q9", Suite: TPCH, Number: 9,
		SQL: `select nation, o_year, sum(amount) as sum_profit
from (select n_name as nation, extract(year from o_orderdate) as o_year,
  l_extendedprice*(1-l_discount) - ps_supplycost*l_quantity as amount
  from part, supplier, lineitem, partsupp, orders, nation ...)
group by nation, o_year order by nation, o_year desc`,
		FixedSec: 0.1638, SerialSec: 0.1092, ScanSecGB: 0.04095, ShufSecGB: 0.03185, CoordSec: 0.0455,
	},
	{
		ID: "TPCH-Q10", Suite: TPCH, Number: 10,
		SQL: `select c_custkey, c_name, sum(l_extendedprice*(1-l_discount)) as revenue
from customer, orders, lineitem, nation
where l_returnflag = 'R' and c_custkey = o_custkey and l_orderkey = o_orderkey
group by c_custkey, c_name, ... order by revenue desc limit 20`,
		FixedSec: 0.1183, SerialSec: 0.0455, ScanSecGB: 0.01456, ShufSecGB: 0.01092, CoordSec: 0.00728,
	},
	{
		ID: "TPCH-Q11", Suite: TPCH, Number: 11,
		SQL: `select ps_partkey, sum(ps_supplycost*ps_availqty) as value
from partsupp, supplier, nation where n_name = 'GERMANY'
group by ps_partkey having sum(ps_supplycost*ps_availqty) >
  (select sum(ps_supplycost*ps_availqty)*0.0001 from partsupp, supplier, nation ...)`,
		FixedSec: 0.091, SerialSec: 0.0455, ScanSecGB: 0.00364, ShufSecGB: 0.00546, CoordSec: 0.00455,
	},
	{
		ID: "TPCH-Q12", Suite: TPCH, Number: 12,
		SQL: `select l_shipmode, sum(case when o_orderpriority in ('1-URGENT','2-HIGH') then 1 else 0 end)
from orders, lineitem where o_orderkey = l_orderkey
  and l_shipmode in ('MAIL','SHIP') and l_receiptdate >= date '1994-01-01'
group by l_shipmode order by l_shipmode`,
		FixedSec: 0.0364, SerialSec: 0.01365, ScanSecGB: 0.01092, ShufSecGB: 0.00091, CoordSec: 0.000455,
	},
	{
		ID: "TPCH-Q13", Suite: TPCH, Number: 13,
		SQL: `select c_count, count(*) as custdist
from (select c_custkey, count(o_orderkey) as c_count from customer
  left outer join orders on c_custkey = o_custkey
  and o_comment not like '%special%requests%' group by c_custkey) as c_orders
group by c_count order by custdist desc, c_count desc`,
		FixedSec: 0.1092, SerialSec: 0.0728, ScanSecGB: 0.02002, ShufSecGB: 0.01365, CoordSec: 0.0091,
	},
	{
		ID: "TPCH-Q14", Suite: TPCH, Number: 14,
		SQL: `select 100.00 * sum(case when p_type like 'PROMO%'
  then l_extendedprice*(1-l_discount) else 0 end) / sum(l_extendedprice*(1-l_discount))
from lineitem, part where l_partkey = p_partkey and l_shipdate >= date '1995-09-01'`,
		FixedSec: 0.0364, SerialSec: 0.0091, ScanSecGB: 0.0091, ShufSecGB: 0.00091, CoordSec: 0.000455,
	},
	{
		ID: "TPCH-Q15", Suite: TPCH, Number: 15,
		SQL: `with revenue as (select l_suppkey as supplier_no,
  sum(l_extendedprice*(1-l_discount)) as total_revenue from lineitem
  where l_shipdate >= date '1996-01-01' group by l_suppkey)
select s_suppkey, s_name, total_revenue from supplier, revenue
where s_suppkey = supplier_no and total_revenue = (select max(total_revenue) from revenue)`,
		FixedSec: 0.0364, SerialSec: 0.01365, ScanSecGB: 0.01092, ShufSecGB: 0.00091, CoordSec: 0.000455,
	},
	{
		ID: "TPCH-Q16", Suite: TPCH, Number: 16,
		SQL: `select p_brand, p_type, p_size, count(distinct ps_suppkey) as supplier_cnt
from partsupp, part where p_partkey = ps_partkey and p_brand <> 'Brand#45'
group by p_brand, p_type, p_size order by supplier_cnt desc`,
		FixedSec: 0.091, SerialSec: 0.0546, ScanSecGB: 0.00546, ShufSecGB: 0.00728, CoordSec: 0.00546,
	},
	{
		ID: "TPCH-Q17", Suite: TPCH, Number: 17,
		SQL: `select sum(l_extendedprice) / 7.0 as avg_yearly from lineitem, part
where p_partkey = l_partkey and p_brand = 'Brand#23' and p_container = 'MED BOX'
  and l_quantity < (select 0.2*avg(l_quantity) from lineitem where l_partkey = p_partkey)`,
		FixedSec: 0.1365, SerialSec: 0.091, ScanSecGB: 0.0273, ShufSecGB: 0.02275, CoordSec: 0.0273,
	},
	{
		ID: "TPCH-Q18", Suite: TPCH, Number: 18,
		SQL: `select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity)
from customer, orders, lineitem
where o_orderkey in (select l_orderkey from lineitem group by l_orderkey
  having sum(l_quantity) > 300)
group by c_name, c_custkey, o_orderkey, ... order by o_totalprice desc limit 100`,
		FixedSec: 0.1456, SerialSec: 0.0819, ScanSecGB: 0.02548, ShufSecGB: 0.01638, CoordSec: 0.01092,
	},
	{
		ID: "TPCH-Q19", Suite: TPCH, Number: 19,
		SQL: `select sum(l_extendedprice*(1-l_discount)) as revenue from lineitem, part
where (p_partkey = l_partkey and p_brand = 'Brand#12'
    and p_container in ('SM CASE','SM BOX','SM PACK','SM PKG')
    and l_quantity >= 1 and l_quantity <= 11 and p_size between 1 and 5
    and l_shipmode in ('AIR','AIR REG') and l_shipinstruct = 'DELIVER IN PERSON')
   or (p_partkey = l_partkey and p_brand = 'Brand#23' ...)
   or (p_partkey = l_partkey and p_brand = 'Brand#34' ...)`,
		FixedSec: 0.1365, SerialSec: 0.1365, ScanSecGB: 0.0273, ShufSecGB: 0.02275, CoordSec: 0.0455,
	},
	{
		ID: "TPCH-Q20", Suite: TPCH, Number: 20,
		SQL: `select s_name, s_address from supplier, nation
where s_suppkey in (select ps_suppkey from partsupp where ps_partkey in
  (select p_partkey from part where p_name like 'forest%') and ps_availqty >
  (select 0.5*sum(l_quantity) from lineitem ...)) and n_name = 'CANADA'
order by s_name`,
		FixedSec: 0.1274, SerialSec: 0.0728, ScanSecGB: 0.01365, ShufSecGB: 0.01365, CoordSec: 0.01365,
	},
	{
		ID: "TPCH-Q21", Suite: TPCH, Number: 21,
		SQL: `select s_name, count(*) as numwait from supplier, lineitem l1, orders, nation
where s_suppkey = l1.l_suppkey and o_orderstatus = 'F' and l1.l_receiptdate > l1.l_commitdate
  and exists (select * from lineitem l2 where l2.l_orderkey = l1.l_orderkey ...)
  and not exists (select * from lineitem l3 where l3.l_orderkey = l1.l_orderkey ...)
group by s_name order by numwait desc limit 100`,
		FixedSec: 0.1638, SerialSec: 0.1092, ScanSecGB: 0.03185, ShufSecGB: 0.0273, CoordSec: 0.04095,
	},
	{
		ID: "TPCH-Q22", Suite: TPCH, Number: 22,
		SQL: `select cntrycode, count(*) as numcust, sum(c_acctbal) as totacctbal
from (select substring(c_phone from 1 for 2) as cntrycode, c_acctbal from customer
  where substring(c_phone from 1 for 2) in ('13','31','23','29','30','18','17')
  and c_acctbal > (select avg(c_acctbal) from customer where c_acctbal > 0.00) ...)
group by cntrycode order by cntrycode`,
		FixedSec: 0.0819, SerialSec: 0.0364, ScanSecGB: 0.00455, ShufSecGB: 0.00273, CoordSec: 0.00273,
	},
}
