package queries

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultCatalog(t *testing.T) {
	c := Default()
	if got := len(c.Suite(TPCH)); got != 22 {
		t.Errorf("TPC-H count = %d, want 22", got)
	}
	if got := len(c.Suite(TPCDS)); got != 24 {
		t.Errorf("TPC-DS count = %d, want 24", got)
	}
	if c.Len() != 46 {
		t.Errorf("total = %d, want 46", c.Len())
	}
	for _, cl := range c.Classes() {
		if cl.SQL == "" {
			t.Errorf("%s has no SQL text", cl.ID)
		}
		if cl.ScanSecGB < 0 || cl.FixedSec <= 0 {
			t.Errorf("%s has a degenerate profile: %+v", cl.ID, cl)
		}
	}
}

func TestByID(t *testing.T) {
	c := Default()
	q1, ok := c.ByID("TPCH-Q1")
	if !ok || q1.Number != 1 || q1.Suite != TPCH {
		t.Fatalf("ByID(TPCH-Q1) = %+v, %v", q1, ok)
	}
	if !strings.Contains(q1.SQL, "l_returnflag") {
		t.Errorf("Q1 SQL does not look like TPC-H Q1: %q", q1.SQL)
	}
	if _, ok := c.ByID("TPCH-Q99"); ok {
		t.Error("nonexistent query found")
	}
}

func TestNewCatalogRejectsDuplicates(t *testing.T) {
	_, err := NewCatalog([]*Class{{ID: "X"}, {ID: "X"}})
	if err == nil {
		t.Error("duplicate IDs accepted")
	}
	_, err = NewCatalog([]*Class{{}})
	if err == nil {
		t.Error("empty ID accepted")
	}
}

// TestQ1ScalesLinearly reproduces the premise of Figure 1.1a: TPC-H Q1
// scales out (almost) linearly with the number of nodes.
func TestQ1ScalesLinearly(t *testing.T) {
	c := Default()
	q1, _ := c.ByID("TPCH-Q1")
	if !q1.LinearScaleOut() {
		t.Errorf("Q1 classified non-linear; speedup(100GB, 8) = %.2f", q1.Speedup(100, 8))
	}
	// Speedup should grow monotonically through 8 nodes.
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8} {
		s := q1.Speedup(100, n)
		if s <= prev {
			t.Errorf("Q1 speedup not monotone at %d nodes: %.2f <= %.2f", n, s, prev)
		}
		prev = s
	}
	if s := q1.Speedup(100, 8); s < 6.0 || s > 8.0 {
		t.Errorf("Q1 8-node speedup = %.2f, want close-to-linear (6..8)", s)
	}
}

// TestQ19NonLinear reproduces Figure 1.1c: TPC-H Q19 does not scale out
// linearly — its speedup flattens well below the node count.
func TestQ19NonLinear(t *testing.T) {
	c := Default()
	q19, _ := c.ByID("TPCH-Q19")
	if q19.LinearScaleOut() {
		t.Errorf("Q19 classified linear; speedup(100GB, 8) = %.2f", q19.Speedup(100, 8))
	}
	if s := q19.Speedup(100, 8); s > 4.0 {
		t.Errorf("Q19 8-node speedup = %.2f, want a plateau well under linear", s)
	}
	if s := q19.Speedup(100, 2); s < 1.0 {
		t.Errorf("Q19 2-node speedup = %.2f, must still beat 1 node", s)
	}
}

func TestCatalogHasBothScaleOutClasses(t *testing.T) {
	// Requirement R4: tenants run a mix of linear and non-linear queries.
	c := Default()
	linear, nonLinear := 0, 0
	for _, cl := range c.Classes() {
		if cl.LinearScaleOut() {
			linear++
		} else {
			nonLinear++
		}
	}
	if linear == 0 || nonLinear == 0 {
		t.Errorf("catalog must mix classes: %d linear, %d non-linear", linear, nonLinear)
	}
}

// TestLatencyProperties checks basic sanity of the latency model for random
// profiles: positive, decreasing in nodes for scan-dominated queries,
// increasing in data.
func TestLatencyProperties(t *testing.T) {
	f := func(scan10 uint8, data10 uint16) bool {
		cl := &Class{FixedSec: 1, SerialSec: 0.5, ScanSecGB: float64(scan10%50)/10 + 0.05}
		data := float64(data10%5000) + 1
		prev := time.Duration(1<<62 - 1)
		for _, n := range []int{1, 2, 4, 8, 16, 32} {
			l := cl.Latency(data, n)
			if l <= 0 {
				return false
			}
			if l > prev { // no shuffle/coord: strictly better with more nodes
				return false
			}
			prev = l
		}
		// More data ⇒ more time.
		return cl.Latency(2*data, 4) > cl.Latency(data, 4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencyClampsNodes(t *testing.T) {
	cl := &Class{FixedSec: 1, ScanSecGB: 1}
	if cl.Latency(10, 0) != cl.Latency(10, 1) {
		t.Error("nodes<1 not clamped to 1")
	}
}

// TestWorkloadMeanLatencyCalibration pins the calibration target: the mean
// isolated latency of a TPC-H stream on a tenant's requested configuration
// (100 GB per node, §7.1) sits in the seconds for every size class. This is
// the regime in which the paper's ~16-tenant groups are feasible at R=3 /
// P=99.9%: with think times of minutes, tenants are instantaneously active
// only a few percent of their sessions.
func TestWorkloadMeanLatencyCalibration(t *testing.T) {
	c := Default()
	for _, n := range []int{2, 4, 8, 16, 32} {
		data := float64(100 * n)
		for _, s := range []Suite{TPCH, TPCDS} {
			mean := c.MeanLatency(s, data, n)
			if mean < time.Second || mean > 30*time.Second {
				t.Errorf("%v mean latency on %d nodes/%vGB = %v, want 1s..30s", s, n, data, mean)
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	c := Default()
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		qa, qb := c.Random(a, TPCH), c.Random(b, TPCH)
		if qa.ID != qb.ID {
			t.Fatal("Random not deterministic for equal seeds")
		}
		if qa.Suite != TPCH {
			t.Fatalf("Random(TPCH) returned %v", qa.Suite)
		}
	}
	if got := c.Random(rand.New(rand.NewSource(1)), Suite(99)); got != nil {
		t.Error("unknown suite should return nil")
	}
}

func TestSuiteString(t *testing.T) {
	if TPCH.String() != "TPC-H" || TPCDS.String() != "TPC-DS" {
		t.Error("suite names wrong")
	}
	if Suite(9).String() != "Suite(9)" {
		t.Error("unknown suite string wrong")
	}
}
