// Package queries is the analytical query catalog used by the Thrifty
// testbed: the 22 TPC-H queries and a TPC-DS subset, each with a calibrated
// latency profile.
//
// The paper's evaluation (§7.1) runs TPC-H and TPC-DS query streams against a
// commercial MPPDB; since the consolidation machinery only ever observes
// query durations and arrival times, the substrate we need is a latency
// model, not a SQL executor. Each query class carries a four-component
// profile from which its isolated latency on an n-node MPPDB holding D GB is
//
//	L(n, D) = Fixed + Serial + Scan·D/n + Shuffle·D·(n−1)/n² + Coord·(n−1)
//
// Fixed is parse/plan/launch overhead, Serial the non-parallelizable tail
// (final aggregation, top-k merge), Scan the per-GB parallel scan+compute
// work, Shuffle the per-GB repartitioning cost (each node ships (n−1)/n of
// its D/n-GB partition), and Coord the per-extra-node coordination cost that
// makes join-heavy queries stop scaling (the paper's TPC-H Q19, Fig 1.1c).
// Profiles are calibrated so Q1 scales out almost linearly (Fig 1.1a) while
// Q19 plateaus, and so a mixed stream on an n-node tenant (100 GB per node,
// §7.1) yields the office-hour activity levels (≈34% busy sessions, ≈11.9%
// average active tenant ratio) the paper's consolidation results rest on.
package queries

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Suite identifies a benchmark family.
type Suite int

const (
	// TPCH is the TPC-H decision-support benchmark (22 queries).
	TPCH Suite = iota
	// TPCDS is the TPC-DS benchmark (a representative 24-query subset).
	TPCDS
)

// String returns the conventional suite name.
func (s Suite) String() string {
	switch s {
	case TPCH:
		return "TPC-H"
	case TPCDS:
		return "TPC-DS"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// Class describes one query template and its latency profile.
type Class struct {
	// ID is the canonical identifier, e.g. "TPCH-Q1".
	ID string
	// Suite is the benchmark the query belongs to.
	Suite Suite
	// Number is the query number within the suite.
	Number int
	// SQL is representative (abbreviated) SQL text for the template.
	SQL string

	// Latency profile. All values are seconds (per GB where noted).
	FixedSec  float64 // parse/plan/launch overhead
	SerialSec float64 // non-parallelizable tail
	ScanSecGB float64 // parallel scan+compute per GB
	ShufSecGB float64 // repartition cost per GB shipped
	CoordSec  float64 // coordination cost per additional node
}

// Latency returns the isolated (no concurrent queries) execution latency of
// the class against dataGB of data spread over nodes machine nodes.
func (c *Class) Latency(dataGB float64, nodes int) time.Duration {
	if nodes < 1 {
		nodes = 1
	}
	n := float64(nodes)
	sec := c.FixedSec + c.SerialSec + c.ScanSecGB*dataGB/n
	if nodes > 1 {
		sec += c.ShufSecGB * dataGB * (n - 1) / (n * n)
		sec += c.CoordSec * (n - 1)
	}
	return time.Duration(sec * float64(time.Second))
}

// Speedup returns L(1,D)/L(n,D), the scale-out factor relative to a single
// node for the same dataset.
func (c *Class) Speedup(dataGB float64, nodes int) float64 {
	one := c.Latency(dataGB, 1).Seconds()
	at := c.Latency(dataGB, nodes).Seconds()
	if at <= 0 {
		return 0
	}
	return one / at
}

// LinearScaleOut reports whether the class scales out essentially linearly
// (requirement R4 distinguishes linear from non-linear queries). Queries are
// probed at the paper's Fig 1.1 operating point — a fixed 100 GB (TPC-H
// SF100) dataset across 8 nodes — and called linear when the 8-node speedup
// exceeds 5×.
func (c *Class) LinearScaleOut() bool {
	return c.Speedup(100, 8) > 5.0
}

// Catalog is an immutable set of query classes with lookup and sampling
// helpers.
type Catalog struct {
	classes []*Class
	byID    map[string]*Class
}

// NewCatalog builds a catalog from the given classes. IDs must be unique.
func NewCatalog(classes []*Class) (*Catalog, error) {
	c := &Catalog{byID: make(map[string]*Class, len(classes))}
	for _, cl := range classes {
		if cl.ID == "" {
			return nil, fmt.Errorf("queries: class with empty ID")
		}
		if _, dup := c.byID[cl.ID]; dup {
			return nil, fmt.Errorf("queries: duplicate class %q", cl.ID)
		}
		c.byID[cl.ID] = cl
		c.classes = append(c.classes, cl)
	}
	sort.Slice(c.classes, func(i, j int) bool { return c.classes[i].ID < c.classes[j].ID })
	return c, nil
}

// Default returns the full built-in catalog (TPC-H + TPC-DS).
func Default() *Catalog {
	all := append(append([]*Class(nil), tpchClasses...), tpcdsClasses...)
	c, err := NewCatalog(all)
	if err != nil {
		panic(err) // built-in data; unreachable unless the tables are broken
	}
	return c
}

// Len returns the number of classes.
func (c *Catalog) Len() int { return len(c.classes) }

// Classes returns all classes ordered by ID.
func (c *Catalog) Classes() []*Class { return c.classes }

// ByID looks a class up by identifier.
func (c *Catalog) ByID(id string) (*Class, bool) {
	cl, ok := c.byID[id]
	return cl, ok
}

// Suite returns the classes belonging to one suite, ordered by number.
func (c *Catalog) Suite(s Suite) []*Class {
	var out []*Class
	for _, cl := range c.classes {
		if cl.Suite == s {
			out = append(out, cl)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// Random draws a uniformly random query from suite s (the paper's users
// submit "a random TPC-H/DS query", §7.1 step 1, uniform distribution).
func (c *Catalog) Random(rng *rand.Rand, s Suite) *Class {
	set := c.Suite(s)
	if len(set) == 0 {
		return nil
	}
	return set[rng.Intn(len(set))]
}

// MeanLatency returns the mean isolated latency over a suite for the given
// dataset and node count; the workload generator uses it for calibration
// reporting.
func (c *Catalog) MeanLatency(s Suite, dataGB float64, nodes int) time.Duration {
	set := c.Suite(s)
	if len(set) == 0 {
		return 0
	}
	var total time.Duration
	for _, cl := range set {
		total += cl.Latency(dataGB, nodes)
	}
	return total / time.Duration(len(set))
}
