package queries

import "testing"

func TestShareSigmaProfile(t *testing.T) {
	cat := Default()
	q1, ok := cat.ByID("TPCH-Q1")
	if !ok {
		t.Fatal("no TPCH-Q1")
	}
	q19, ok := cat.ByID("TPCH-Q19")
	if !ok {
		t.Fatal("no TPCH-Q19")
	}
	s1, s19 := q1.ShareSigma(), q19.ShareSigma()
	if s1 < sigmaFloor || s1 > 1 || s19 < sigmaFloor || s19 > 1 {
		t.Fatalf("sigmas out of range: Q1 %v Q19 %v", s1, s19)
	}
	// Q1 is the scan-dominated near-linear scaler, Q19 the coordination-bound
	// plateau (Fig 1.1): the shareable fraction must reflect that.
	if s1 >= s19 {
		t.Fatalf("want σ(Q1) < σ(Q19), got %v >= %v", s1, s19)
	}
	if s1 > 0.5 {
		t.Fatalf("scan-dominated Q1 should have σ ≪ 1, got %v", s1)
	}
}

func TestSharedDemand(t *testing.T) {
	cat := Default()
	q1, _ := cat.ByID("TPCH-Q1")
	iso := 100.0
	sigma := q1.ShareSigma()
	// Equal members: isolated × (1 + σ·(k−1)).
	for k := 1; k <= 4; k++ {
		got := q1.SharedDemand(iso, iso*float64(k))
		want := iso * (1 + sigma*float64(k-1))
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("k=%d: demand %v want %v", k, got, want)
		}
	}
	// A batch is never cheaper than its widest member.
	if got := q1.SharedDemand(100, 90); got != 100 {
		t.Fatalf("demand below max member: %v", got)
	}
}

func TestNewShareModel(t *testing.T) {
	cat := Default()
	m, err := NewShareModel(cat, 3, 1.9)
	if err != nil {
		t.Fatal(err)
	}
	if m.R != 3 || len(m.W) != shareLevels {
		t.Fatalf("model shape: R=%d len=%d", m.R, len(m.W))
	}
	for i, w := range m.W {
		if w < 0 || w >= 1 {
			t.Fatalf("W[%d]=%v outside [0,1)", i, w)
		}
	}
	// Sharing must grant real credit just above capacity (duplicate classes
	// are common enough among the in-flight draws of R+1 streams).
	if m.W[0] <= 0.01 {
		t.Fatalf("no credit at R+1: %v", m.W)
	}
	// Denser streams collide more: more in-flight queries per stream must
	// not reduce the credit just above capacity.
	m1, _ := NewShareModel(cat, 3, 1)
	if m.W[0] < m1.W[0] {
		t.Fatalf("batch-aware credit %v below single-query credit %v", m.W[0], m1.W[0])
	}
	// Deterministic: same catalog, same weights.
	m2, _ := NewShareModel(cat, 3, 1.9)
	for i := range m.W {
		if m.W[i] != m2.W[i] {
			t.Fatalf("nondeterministic weights at %d", i)
		}
	}
}
