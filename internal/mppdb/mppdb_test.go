package mppdb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/queries"
	"repro/internal/sim"
)

func testClass(scanSecGB float64) *queries.Class {
	return &queries.Class{ID: "T", FixedSec: 1, ScanSecGB: scanSecGB}
}

func newReady(t *testing.T, nodes int, tenants ...string) (*sim.Engine, *Instance) {
	t.Helper()
	eng := sim.NewEngine()
	m := New(eng, "db0", nodes)
	for _, tn := range tenants {
		m.DeployTenant(tn, float64(100*nodes))
	}
	return eng, m
}

func TestSingleQueryIsolatedLatency(t *testing.T) {
	eng, m := newReady(t, 4, "a")
	cl := testClass(0.2)
	var res *Result
	iso, err := m.Submit("a", cl, func(r Result) { res = &r })
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Duration(cl.Latency(400, 4))
	if iso != want {
		t.Fatalf("isolated = %v, want %v", iso, want)
	}
	if !m.Busy() || m.Running() != 1 || m.TenantRunning("a") != 1 {
		t.Error("busy-state bookkeeping wrong while running")
	}
	eng.RunAll()
	if res == nil {
		t.Fatal("query never completed")
	}
	if res.Latency() != want {
		t.Errorf("latency = %v, want isolated %v", res.Latency(), want)
	}
	if got := res.Slowdown(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("slowdown = %v, want 1.0", got)
	}
	if res.MaxConcurrency != 1 {
		t.Errorf("max concurrency = %d, want 1", res.MaxConcurrency)
	}
	if m.Busy() || m.TenantRunning("a") != 0 {
		t.Error("busy-state bookkeeping wrong after completion")
	}
}

// TestConcurrentSlowdown reproduces the xT-CON observation of Fig 1.1a: two
// identical queries submitted together each take 2× their isolated latency;
// four take 4×.
func TestConcurrentSlowdown(t *testing.T) {
	for _, k := range []int{2, 4} {
		eng, m := newReady(t, 2, "a", "b", "c", "d")
		cl := testClass(0.5)
		var results []Result
		tenants := []string{"a", "b", "c", "d"}
		for i := 0; i < k; i++ {
			if _, err := m.Submit(tenants[i], cl, func(r Result) { results = append(results, r) }); err != nil {
				t.Fatal(err)
			}
		}
		eng.RunAll()
		if len(results) != k {
			t.Fatalf("%d results, want %d", len(results), k)
		}
		for _, r := range results {
			if math.Abs(r.Slowdown()-float64(k)) > 1e-6 {
				t.Errorf("k=%d: slowdown = %v, want %d×", k, r.Slowdown(), k)
			}
			if r.MaxConcurrency != k {
				t.Errorf("k=%d: max concurrency = %d", k, r.MaxConcurrency)
			}
		}
	}
}

// TestSequentialNoSlowdown reproduces the xT-SEQ observation: queries
// executed one after another each run at isolated speed.
func TestSequentialNoSlowdown(t *testing.T) {
	eng, m := newReady(t, 2, "a", "b")
	cl := testClass(0.5)
	var slowdowns []float64
	m.Submit("a", cl, func(r Result) {
		slowdowns = append(slowdowns, r.Slowdown())
		m.Submit("b", cl, func(r2 Result) {
			slowdowns = append(slowdowns, r2.Slowdown())
		})
	})
	eng.RunAll()
	if len(slowdowns) != 2 {
		t.Fatalf("%d completions, want 2", len(slowdowns))
	}
	for i, s := range slowdowns {
		if math.Abs(s-1.0) > 1e-9 {
			t.Errorf("query %d slowdown = %v, want 1.0", i, s)
		}
	}
}

// TestStaggeredProcessorSharing checks PS arithmetic with a late arrival:
// query A (10 s work) runs alone for 5 s, then query B (10 s work) joins.
// They share until A finishes at t=15 (5 remaining × 2), B then has 5 s
// left and finishes at t=20.
func TestStaggeredProcessorSharing(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, "db", 1)
	m.DeployTenant("a", 9) // 1 + 9·1 = 10 s with ScanSecGB=1
	m.DeployTenant("b", 9)
	cl := testClass(1.0)
	var finA, finB sim.Time
	m.Submit("a", cl, func(r Result) { finA = r.Finish })
	eng.Schedule(5*sim.Second, func(sim.Time) {
		m.Submit("b", cl, func(r Result) { finB = r.Finish })
	})
	eng.RunAll()
	if finA != 15*sim.Second {
		t.Errorf("A finished at %v, want 15s", finA)
	}
	if finB != 20*sim.Second {
		t.Errorf("B finished at %v, want 20s", finB)
	}
}

func TestSubmitErrors(t *testing.T) {
	eng, m := newReady(t, 2, "a")
	if _, err := m.Submit("ghost", testClass(1), nil); err == nil {
		t.Error("undeployed tenant accepted")
	}
	m.SetState(Loading)
	if _, err := m.Submit("a", testClass(1), nil); err == nil {
		t.Error("non-ready instance accepted a query")
	}
	_ = eng
}

func TestTenantManagement(t *testing.T) {
	_, m := newReady(t, 2, "b", "a")
	if got := m.Tenants(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Tenants = %v", got)
	}
	if !m.HasTenant("a") || m.HasTenant("z") {
		t.Error("HasTenant wrong")
	}
	if m.TenantDataGB() != 400 {
		t.Errorf("TenantDataGB = %v, want 400", m.TenantDataGB())
	}
	m.RemoveTenant("a")
	if m.HasTenant("a") || m.TenantDataGB() != 200 {
		t.Error("RemoveTenant did not take effect")
	}
}

// TestNodeFailureDegradesThroughput: failing one of two nodes halves the
// progress rate of in-flight queries.
func TestNodeFailureDegradesThroughput(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, "db", 2)
	m.DeployTenant("a", 18) // 1 + 18·1/2 = 10 s isolated on 2 nodes
	cl := testClass(1.0)
	var fin sim.Time
	m.Submit("a", cl, func(r Result) { fin = r.Finish })
	// Fail a node halfway through: 5 s done, 5 s left at half speed = 10 s.
	eng.Schedule(5*sim.Second, func(sim.Time) {
		if err := m.FailNode(); err != nil {
			t.Error(err)
		}
	})
	eng.RunAll()
	if fin != 15*sim.Second {
		t.Errorf("finish = %v, want 15s under degraded operation", fin)
	}
	if m.FailedNodes() != 1 {
		t.Errorf("FailedNodes = %d", m.FailedNodes())
	}
	if err := m.RepairNode(); err != nil {
		t.Error(err)
	}
	if err := m.RepairNode(); err == nil {
		t.Error("repairing with no failures accepted")
	}
}

func TestCannotFailLastNode(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, "db", 2)
	if err := m.FailNode(); err != nil {
		t.Fatal(err)
	}
	if err := m.FailNode(); err == nil {
		t.Error("failing the last live node accepted")
	}
}

// TestWorkConservation: regardless of arrival pattern, total busy time of
// the instance equals the sum of isolated latencies (processor sharing is
// work-conserving), and every query's latency ≥ its isolated latency.
func TestWorkConservation(t *testing.T) {
	g := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		m := New(eng, "db", 4)
		m.DeployTenant("t", 100)
		var results []Result
		var totalIso float64
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			at := sim.Time(rng.Int63n(30)) * sim.Second
			cl := testClass(0.01 + rng.Float64()*0.2)
			eng.Schedule(at, func(sim.Time) {
				iso, err := m.Submit("t", cl, func(r Result) { results = append(results, r) })
				if err != nil {
					t.Fatal(err)
				}
				totalIso += iso.Seconds()
			})
		}
		eng.RunAll()
		if len(results) != n {
			return false
		}
		var lastFinish, firstSubmit sim.Time
		firstSubmit = sim.MaxTime
		for _, r := range results {
			if r.Latency() < r.Isolated-sim.Millisecond {
				t.Logf("latency %v < isolated %v", r.Latency(), r.Isolated)
				return false
			}
			if r.Finish > lastFinish {
				lastFinish = r.Finish
			}
			if r.Submit < firstSubmit {
				firstSubmit = r.Submit
			}
		}
		// Work conservation: the busy span can never be shorter than total
		// work, and if queries overlap end-to-end it is at most span ≥ work
		// is all we can assert generally; check the strongest easy bound:
		// last finish ≥ first submit + total work only when the server never
		// idles. Instead assert: sum of latencies ≥ total isolated work.
		var sumLat float64
		for _, r := range results {
			sumLat += r.Latency().Seconds()
		}
		return sumLat >= totalIso-1e-6
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Provisioning: "provisioning", Loading: "loading", Ready: "ready", Stopped: "stopped",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if State(42).String() == "" {
		t.Error("unknown state string empty")
	}
}

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with 0 nodes did not panic")
		}
	}()
	New(sim.NewEngine(), "bad", 0)
}
