package mppdb

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// runOne submits a single query on a fresh instance prepared by prep and
// returns its observed latency.
func runOne(t *testing.T, nodes int, prep func(*Instance)) sim.Time {
	t.Helper()
	eng, m := newReady(t, nodes, "a")
	if prep != nil {
		prep(m)
	}
	var res *Result
	if _, err := m.Submit("a", testClass(0.3), func(r Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	eng.RunAll()
	if res == nil {
		t.Fatal("query never completed")
	}
	return res.Latency()
}

// TestDegradedLatencyScalesBySpeedFactor is the §4.4 degraded-mode property:
// on an otherwise idle instance with k failed nodes, query latency is exactly
// isolated / SpeedFactor = isolated · nodes/(nodes-k), for every admissible k.
func TestDegradedLatencyScalesBySpeedFactor(t *testing.T) {
	for _, nodes := range []int{2, 3, 4, 8} {
		baseline := runOne(t, nodes, nil)
		for k := 0; k < nodes; k++ {
			k := k
			eng, m := newReady(t, nodes, "a")
			for i := 0; i < k; i++ {
				if err := m.FailNode(); err != nil {
					t.Fatal(err)
				}
			}
			wantSpeed := float64(nodes-k) / float64(nodes)
			if got := m.SpeedFactor(); got != wantSpeed {
				t.Errorf("nodes=%d k=%d: SpeedFactor = %v, want %v", nodes, k, got, wantSpeed)
			}
			var res *Result
			if _, err := m.Submit("a", testClass(0.3), func(r Result) { res = &r }); err != nil {
				t.Fatal(err)
			}
			eng.RunAll()
			if res == nil {
				t.Fatalf("nodes=%d k=%d: query never completed", nodes, k)
			}
			want := baseline.Seconds() / wantSpeed
			if got := res.Latency().Seconds(); math.Abs(got-want) > 1e-3 {
				t.Errorf("nodes=%d k=%d: latency = %.6fs, want baseline/SpeedFactor = %.6fs",
					nodes, k, got, want)
			}
		}
	}
}

// TestFailRepairRoundTripRestoresBaseline: failing k nodes and repairing all
// of them returns the instance to the exact isolated-latency baseline.
func TestFailRepairRoundTripRestoresBaseline(t *testing.T) {
	for _, nodes := range []int{2, 4, 8} {
		baseline := runOne(t, nodes, nil)
		for k := 1; k < nodes; k++ {
			k := k
			got := runOne(t, nodes, func(m *Instance) {
				for i := 0; i < k; i++ {
					if err := m.FailNode(); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < k; i++ {
					if err := m.RepairNode(); err != nil {
						t.Fatal(err)
					}
				}
				if m.FailedNodes() != 0 || m.SpeedFactor() != 1.0 {
					t.Fatalf("round-trip left failed=%d speed=%v", m.FailedNodes(), m.SpeedFactor())
				}
			})
			if got != baseline {
				t.Errorf("nodes=%d k=%d: round-trip latency = %v, want baseline %v",
					nodes, k, got, baseline)
			}
		}
	}
}
