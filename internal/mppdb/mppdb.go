// Package mppdb simulates a massively parallel processing relational
// database instance — the execution substrate the paper runs its tenants on.
//
// The model captures the two behaviours the paper's consolidation design is
// built around (Fig 1.1):
//
//   - Isolated latency follows the query class' scale-out profile (package
//     queries): near-linear for scan-dominated queries, plateauing for
//     shuffle/coordination-heavy ones.
//   - Concurrent analytical queries on the same instance contend for I/O.
//     We model the instance as a processor-sharing server: a query's service
//     demand equals its isolated latency on this instance, and k concurrent
//     queries each progress at rate 1/k. Two concurrent Q1 instances thus
//     take ≈2× their isolated latency (the paper's 2T-CON line), while
//     sequential submissions are unaffected (xT-SEQ).
//
// Instances also model tenant deployment (bulk loading, package cluster's
// timing model), degraded operation under node failure, and report per-query
// results with slowdown relative to both the instance-isolated latency and
// the tenant's SLA target.
package mppdb

import (
	"fmt"
	"sort"

	"repro/internal/queries"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// State is the lifecycle state of an MPPDB instance.
type State int

const (
	// Provisioning: machine nodes are starting and the MPPDB is being
	// initialized.
	Provisioning State = iota
	// Loading: tenant data is being bulk loaded.
	Loading
	// Ready: the instance serves queries.
	Ready
	// Stopped: the instance was shut down.
	Stopped
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Provisioning:
		return "provisioning"
	case Loading:
		return "loading"
	case Ready:
		return "ready"
	case Stopped:
		return "stopped"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Result describes one completed query execution.
type Result struct {
	Tenant string
	Class  *queries.Class
	Submit sim.Time
	Finish sim.Time
	// Isolated is what the query would have taken on this instance with no
	// concurrent queries.
	Isolated sim.Time
	// MaxConcurrency is the largest number of queries that shared the
	// instance at any point during this execution (including this one).
	MaxConcurrency int
}

// Latency returns the observed wall-clock latency.
func (r Result) Latency() sim.Time { return r.Finish - r.Submit }

// Slowdown returns observed latency / isolated latency on this instance;
// 1.0 means the query ran as if alone.
func (r Result) Slowdown() float64 {
	if r.Isolated <= 0 {
		return 1
	}
	return float64(r.Latency()) / float64(r.Isolated)
}

// exec is one in-flight query.
type exec struct {
	id        int64
	tenant    string
	class     *queries.Class
	submit    sim.Time
	isolated  sim.Time
	remaining float64 // seconds of dedicated-instance work left
	maxConc   int
	done      func(Result)
}

// Instance is one simulated MPPDB.
type Instance struct {
	id    string
	nodes int
	eng   *sim.Engine
	state State

	// Tenant deployments: data size per tenant schema.
	tenantGB map[string]float64

	// Processor-sharing executor state.
	execs      map[int64]*exec
	byTenant   map[string]int
	nextExecID int64
	lastTouch  sim.Time
	completion *sim.Event

	failedNodes int

	// Telemetry (optional): service/sojourn histograms and the live
	// concurrency level, labelled by instance.
	tel        *telemetry.Hub
	mService   *telemetry.Histogram
	mSojourn   *telemetry.Histogram
	mRunning   *telemetry.Gauge
	mCompleted *telemetry.Counter
}

// New creates an instance that is immediately Ready (provisioning timing is
// the Deployment Master's concern; tests and the router use ready
// instances directly).
func New(eng *sim.Engine, id string, nodes int) *Instance {
	if nodes < 1 {
		panic(fmt.Sprintf("mppdb: instance %q with %d nodes", id, nodes))
	}
	return &Instance{
		id:       id,
		nodes:    nodes,
		eng:      eng,
		state:    Ready,
		tenantGB: make(map[string]float64),
		execs:    make(map[int64]*exec),
		byTenant: make(map[string]int),
	}
}

// SetTelemetry attaches a telemetry hub: per-query service-demand and
// sojourn-time histograms plus the instance's concurrency level. A nil hub
// disables instrumentation.
func (m *Instance) SetTelemetry(h *telemetry.Hub) {
	m.tel = h
	if h == nil {
		return
	}
	m.mService = h.Registry.Histogram("thrifty_mppdb_service_seconds", nil, "mppdb", m.id)
	m.mSojourn = h.Registry.Histogram("thrifty_mppdb_sojourn_seconds", nil, "mppdb", m.id)
	m.mRunning = h.Registry.Gauge("thrifty_mppdb_running", "mppdb", m.id)
	m.mCompleted = h.Registry.Counter("thrifty_mppdb_completed_total", "mppdb", m.id)
}

// ID returns the instance identifier.
func (m *Instance) ID() string { return m.id }

// Nodes returns the instance's degree of parallelism.
func (m *Instance) Nodes() int { return m.nodes }

// State returns the current lifecycle state.
func (m *Instance) State() State { return m.state }

// SetState transitions the lifecycle state; the Deployment Master drives
// Provisioning → Loading → Ready.
func (m *Instance) SetState(s State) { m.state = s }

// DeployTenant registers a tenant schema of dataGB on this instance. The
// bulk-load *timing* is applied by the caller (Deployment Master / elastic
// scaler) via cluster.LoadTime; Deploy itself is bookkeeping.
func (m *Instance) DeployTenant(tenant string, dataGB float64) {
	m.tenantGB[tenant] = dataGB
}

// RemoveTenant drops a tenant schema.
func (m *Instance) RemoveTenant(tenant string) {
	delete(m.tenantGB, tenant)
}

// HasTenant reports whether the tenant's data is deployed here.
func (m *Instance) HasTenant(tenant string) bool {
	_, ok := m.tenantGB[tenant]
	return ok
}

// Tenants returns the deployed tenant IDs, sorted.
func (m *Instance) Tenants() []string {
	out := make([]string, 0, len(m.tenantGB))
	for t := range m.tenantGB {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// TenantDataGB returns the total deployed data volume in GB.
func (m *Instance) TenantDataGB() float64 {
	var gb float64
	for _, v := range m.tenantGB {
		gb += v
	}
	return gb
}

// Snapshot is a point-in-time copy of an instance's externally visible
// state. Runtime shards hand snapshots across clock-domain boundaries so
// read-only consumers (the service's group endpoints) never touch a live
// instance without holding its domain.
type Snapshot struct {
	ID          string
	Nodes       int
	State       State
	Running     int
	FailedNodes int
}

// Snapshot captures the instance's current state. The caller must hold the
// instance's clock domain (or otherwise be the engine's single driver).
func (m *Instance) Snapshot() Snapshot {
	return Snapshot{
		ID:          m.id,
		Nodes:       m.nodes,
		State:       m.state,
		Running:     len(m.execs),
		FailedNodes: m.failedNodes,
	}
}

// Busy reports whether any query is currently executing (§4.3's definition:
// an MPPDB is free when it is not serving any queries).
func (m *Instance) Busy() bool { return len(m.execs) > 0 }

// Running returns the number of in-flight queries.
func (m *Instance) Running() int { return len(m.execs) }

// TenantRunning returns the number of in-flight queries of one tenant.
func (m *Instance) TenantRunning(tenant string) int { return m.byTenant[tenant] }

// FailNode degrades the instance by one node (the MPPDB "can still stay
// online even with some node failure", §4.4). Execution slows
// proportionally until RepairNode is called.
func (m *Instance) FailNode() error {
	if m.failedNodes >= m.nodes-1 {
		return fmt.Errorf("mppdb %s: cannot fail %d of %d nodes", m.id, m.failedNodes+1, m.nodes)
	}
	m.advance()
	m.failedNodes++
	m.reschedule()
	return nil
}

// RepairNode restores one failed node.
func (m *Instance) RepairNode() error {
	if m.failedNodes == 0 {
		return fmt.Errorf("mppdb %s: no failed node to repair", m.id)
	}
	m.advance()
	m.failedNodes--
	m.reschedule()
	return nil
}

// FailedNodes returns the number of currently failed nodes.
func (m *Instance) FailedNodes() int { return m.failedNodes }

// speed returns the instance's aggregate progress rate: 1.0 healthy, scaled
// down by failed nodes.
func (m *Instance) speed() float64 {
	return float64(m.nodes-m.failedNodes) / float64(m.nodes)
}

// SpeedFactor returns the instance's current progress rate: 1.0 healthy,
// (nodes-failed)/nodes degraded. Query latency scales by exactly its inverse
// while the instance is otherwise idle (§4.4: the MPPDB "can still stay
// online even with some node failure", just slower).
func (m *Instance) SpeedFactor() float64 { return m.speed() }

// IsolatedLatency returns the latency the query class would see on this
// instance, alone and healthy, for the given tenant's data.
func (m *Instance) IsolatedLatency(tenant string, class *queries.Class) (sim.Time, error) {
	gb, ok := m.tenantGB[tenant]
	if !ok {
		return 0, fmt.Errorf("mppdb %s: tenant %q not deployed", m.id, tenant)
	}
	return sim.Duration(class.Latency(gb, m.nodes)), nil
}

// Submit starts executing a query for a deployed tenant. done (optional) is
// invoked when the query completes. Submit returns the isolated latency so
// callers can set expectations without re-deriving it.
func (m *Instance) Submit(tenant string, class *queries.Class, done func(Result)) (sim.Time, error) {
	if m.state != Ready {
		return 0, fmt.Errorf("mppdb %s: not ready (%v)", m.id, m.state)
	}
	iso, err := m.IsolatedLatency(tenant, class)
	if err != nil {
		return 0, err
	}
	m.advance()
	m.nextExecID++
	ex := &exec{
		id:        m.nextExecID,
		tenant:    tenant,
		class:     class,
		submit:    m.eng.Now(),
		isolated:  iso,
		remaining: iso.Seconds(),
		done:      done,
	}
	m.execs[ex.id] = ex
	m.byTenant[tenant]++
	if m.tel != nil {
		m.mService.Observe(iso.Seconds())
		m.mRunning.Set(float64(len(m.execs)))
	}
	conc := len(m.execs)
	for _, other := range m.execs {
		if conc > other.maxConc {
			other.maxConc = conc
		}
	}
	m.reschedule()
	return iso, nil
}

// advance applies elapsed virtual time to all in-flight queries under
// processor sharing: with k queries running, each progresses at speed()/k.
func (m *Instance) advance() {
	now := m.eng.Now()
	if now <= m.lastTouch {
		m.lastTouch = now
		return
	}
	elapsed := (now - m.lastTouch).Seconds()
	m.lastTouch = now
	k := len(m.execs)
	if k == 0 {
		return
	}
	rate := m.speed() / float64(k)
	for _, ex := range m.execs {
		ex.remaining -= elapsed * rate
		if ex.remaining < 0 {
			ex.remaining = 0
		}
	}
}

// reschedule (re)computes the next completion event.
func (m *Instance) reschedule() {
	if m.completion != nil {
		m.eng.Cancel(m.completion)
		m.completion = nil
	}
	if len(m.execs) == 0 {
		return
	}
	var next *exec
	for _, ex := range m.execs {
		if next == nil || ex.remaining < next.remaining ||
			(ex.remaining == next.remaining && ex.id < next.id) {
			next = ex
		}
	}
	k := float64(len(m.execs))
	eta := next.remaining * k / m.speed()
	at := m.eng.Now() + sim.Time(eta*float64(sim.Second))
	id := next.id
	m.completion = m.eng.Schedule(at, func(now sim.Time) { m.complete(id) })
}

// complete finishes the identified query and reschedules.
func (m *Instance) complete(id int64) {
	m.advance()
	ex, ok := m.execs[id]
	if !ok {
		m.reschedule()
		return
	}
	// Guard against float drift: the scheduled completion is authoritative.
	ex.remaining = 0
	delete(m.execs, id)
	m.byTenant[ex.tenant]--
	if m.byTenant[ex.tenant] == 0 {
		delete(m.byTenant, ex.tenant)
	}
	if m.tel != nil {
		m.mSojourn.Observe((m.eng.Now() - ex.submit).Seconds())
		m.mRunning.Set(float64(len(m.execs)))
		m.mCompleted.Inc()
	}
	m.reschedule()
	if ex.done != nil {
		ex.done(Result{
			Tenant:         ex.tenant,
			Class:          ex.class,
			Submit:         ex.submit,
			Finish:         m.eng.Now(),
			Isolated:       ex.isolated,
			MaxConcurrency: ex.maxConc,
		})
	}
}
